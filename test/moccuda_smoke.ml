(* Smoke test for the MocCUDA kernel tier: runs the miniature network
   forward pass with every op as a transpiled kernel, checks the loss
   bitwise against the Tensorlib reference, and verifies the warm-cache
   and arena-reuse invariants.  Exits non-zero on any failure. *)

open Moccuda
open Tensorlib

let failures = ref 0

let check name ok =
  if ok then Printf.printf "  ok: %s\n%!" name
  else begin
    incr failures;
    Printf.printf "  FAIL: %s\n%!" name
  end

let bits (f : float) = Int64.bits_of_float f

let () =
  let batch = 2 and hw = 6 and channels = 4 in
  let m = Resnet.mini_model ~channels in
  let images = Tensor.rand 42 [| batch; 3; hw; hw |] in
  let targets = [| 3; 7 |] in
  let reference =
    Resnet.mini_forward Backends.Moccuda_expert m ~images ~targets
  in

  let km = Kmgr.create ~domains:4 () in
  let ar = Arena.create () in
  let cm = Resnet.mini_compiled m ~batch ~hw in
  let images_b = Graph.buffer_of_tensor images in
  let targets_b = Graph.buffer_of_ints targets in

  Printf.printf "cold forward pass (4 domains):\n%!";
  let cold = Resnet.run_mini_compiled cm km ar ~images:images_b ~targets:targets_b in
  check "loss is finite" (Float.is_finite cold);
  check
    (Printf.sprintf "loss bitwise equal to Tensorlib reference (%.17g)" cold)
    (Int64.equal (bits cold) (bits reference));
  let s = Kmgr.stats km in
  let cold_compiles = s.Kmgr.compiles in
  check "cold pass compiled kernels" (cold_compiles > 0);
  check "no corrupt cache entries" (s.Kmgr.corrupt_dropped = 0);
  check "no kernel degraded off the primary rung" (s.Kmgr.degraded = 0);
  check "no interpreter fallbacks" (s.Kmgr.interp_fallbacks = 0);
  let cold_allocs = Arena.allocs ar in

  Printf.printf "warm forward pass:\n%!";
  let warm = Resnet.run_mini_compiled cm km ar ~images:images_b ~targets:targets_b in
  check "warm loss identical" (Int64.equal (bits warm) (bits cold));
  let s = Kmgr.stats km in
  check
    (Printf.sprintf "warm pass recompiled nothing (%d compiles)"
       s.Kmgr.compiles)
    (s.Kmgr.compiles = cold_compiles);
  check "warm pass hit the cache" (s.Kmgr.hits > 0);
  check
    (Printf.sprintf "warm pass allocated no tensors (%d allocs, %d reuses)"
       (Arena.allocs ar) (Arena.reuses ar))
    (Arena.allocs ar = cold_allocs && Arena.reuses ar > 0);

  Printf.printf "single-domain forward pass:\n%!";
  let km1 = Kmgr.create ~domains:1 () in
  let ar1 = Arena.create () in
  let one =
    Resnet.run_mini_compiled cm km1 ar1 ~images:images_b ~targets:targets_b
  in
  check "1-domain loss identical to 4-domain" (Int64.equal (bits one) (bits cold));

  Printf.printf "ResNet layer sweep (first 3 layers, capped dims):\n%!";
  List.iteri
    (fun i l ->
      let r =
        Resnet.run_conv_layer ~hw_cap:8 ~channel_cap:16 km ar ~batch:1 l
      in
      check
        (Printf.sprintf "layer %d (%dx%dx%d k%d s%d) checksum parity" i
           r.Resnet.lr_shape.Conv.c r.Resnet.lr_shape.Conv.h
           r.Resnet.lr_shape.Conv.k r.Resnet.lr_shape.Conv.r
           r.Resnet.lr_shape.Conv.p.Conv.stride)
        (Int64.equal (bits r.Resnet.lr_checksum)
           (bits r.Resnet.lr_ref_checksum)))
    (List.filteri (fun i _ -> i < 3) Resnet.conv_layers);

  Printf.printf "%s\n" (Kmgr.stats_to_string (Kmgr.stats km));
  if !failures > 0 then begin
    Printf.printf "moccuda smoke: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "moccuda smoke: all checks passed"
