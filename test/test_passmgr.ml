(* The fault-tolerant pass manager: every rung of the degradation ladder
   must engage under the matching injected fault, the degraded module
   must still compute the reference answer, and crash bundles must
   round-trip and replay deterministically.  Also the satellite
   guarantee: a cpuify fixpoint-budget exhaustion degrades to the
   conservative lowering instead of raising [Stuck]. *)

let read_fixture name =
  In_channel.with_open_text (Filename.concat "fixtures" name)
    In_channel.input_all

let reduce_src () = read_fixture "reduce.cu"

let compile src = Cudafe.Codegen.compile src

(* Interpret the reduce fixture: 128 inputs, 2 block sums. *)
let run_reduce m =
  let n = 128 in
  let inp =
    Interp.Mem.of_float_array
      (Array.init n (fun i -> float_of_int ((i * 7 mod 11) + 1) /. 3.0))
  in
  let out = Interp.Mem.of_float_array (Array.make 2 0.0) in
  let _ =
    Interp.Eval.run ~team_size:3 m "run"
      [ Interp.Mem.Buf inp; Interp.Mem.Buf out; Interp.Mem.Int n ]
  in
  Interp.Mem.float_contents out

let finish m = ignore (Core.Omp_lower.run m)

let reference () =
  let m = compile (reduce_src ()) in
  run_reduce m

let check_output what m =
  let got = run_reduce m in
  let want = reference () in
  Alcotest.(check (array (float 1e-4))) what want got

let rungs (r : Core.Passmgr.report) =
  List.map
    (fun (d : Core.Passmgr.degradation) ->
      (d.failure.stage, Core.Passmgr.rung_to_string d.recovered_to))
    r.degradations

let run ?options ?faults ?crash_dir m =
  match Core.Passmgr.run_pipeline ?options ?faults ?crash_dir m with
  | Ok report -> report
  | Error (_, f) ->
    Alcotest.failf "pipeline unrecoverable: %s"
      (Core.Passmgr.failure_to_string f)

let test_clean () =
  let m = compile (reduce_src ()) in
  let report = run m in
  Alcotest.(check bool) "not degraded" false (Core.Passmgr.degraded report);
  Alcotest.(check int) "no barriers" 0 (Core.Cpuify.count_barriers m);
  finish m;
  check_output "clean output" m

let test_raise_no_mincut () =
  let m = compile (reduce_src ()) in
  let report = run ~faults:[ ("cpuify", Core.Fault.Raise) ] m in
  Alcotest.(check (list (pair string string)))
    "recovered via no-mincut"
    [ ("cpuify", "no-mincut") ]
    (rungs report);
  Alcotest.(check bool) "no fallback" false report.fell_back;
  finish m;
  check_output "no-mincut output" m

let test_double_raise_fallback () =
  let m = compile (reduce_src ()) in
  let report =
    run ~faults:[ ("cpuify", Core.Fault.Raise); ("cpuify", Core.Fault.Raise) ] m
  in
  Alcotest.(check bool) "fell back" true report.fell_back;
  Alcotest.(check int) "no barriers" 0 (Core.Cpuify.count_barriers m);
  finish m;
  check_output "fallback output" m

let test_opt_raise_skip () =
  let m = compile (reduce_src ()) in
  let report = run ~faults:[ ("licm", Core.Fault.Raise) ] m in
  Alcotest.(check (list (pair string string)))
    "licm skipped"
    [ ("licm", "skip") ]
    (rungs report);
  finish m;
  check_output "skip output" m

let test_corrupt_caught_by_verifier () =
  let m = compile (reduce_src ()) in
  let report = run ~faults:[ ("cse", Core.Fault.Corrupt) ] m in
  Alcotest.(check (list (pair string string)))
    "cse skipped"
    [ ("cse", "skip") ]
    (rungs report);
  (match report.failures with
   | f :: _ ->
     Alcotest.(check bool)
       "verifier caught the corruption" true
       (String.length f.exn_text >= 22
       && String.sub f.exn_text 0 22 = "IR verification failed")
   | [] -> Alcotest.fail "no failure recorded");
  (* the rollback must leave verifiable IR behind *)
  Ir.Verifier.verify m;
  finish m;
  check_output "corrupt-rollback output" m

let test_exhaust_skip () =
  let m = compile (reduce_src ()) in
  let report = run ~faults:[ ("mem2reg", Core.Fault.Exhaust) ] m in
  Alcotest.(check (list (pair string string)))
    "mem2reg skipped"
    [ ("mem2reg", "skip") ]
    (rungs report);
  (match report.failures with
   | f :: _ ->
     Alcotest.(check bool)
       "fuel exhaustion reported" true
       (let s = f.exn_text in
        let has sub =
          let n = String.length sub in
          let rec go i =
            i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
          in
          go 0
        in
        has "Exhausted" || has "fuel")
   | [] -> Alcotest.fail "no failure recorded");
  finish m;
  check_output "exhaust output" m

(* Satellite: a kernel that exhausts the cpuify fixpoint budget must
   degrade to the conservative lowering, never escape as [Stuck]. *)
let test_budget_degrades_not_stuck () =
  let options = { Core.Cpuify.default_options with opt_budget = 1 } in
  let m = compile (reduce_src ()) in
  let report =
    try run ~options m
    with Core.Cpuify.Stuck msg -> Alcotest.failf "Stuck escaped: %s" msg
  in
  Alcotest.(check bool) "degraded" true (Core.Passmgr.degraded report);
  Alcotest.(check bool) "fell back to no-opt" true report.fell_back;
  Alcotest.(check int) "no barriers" 0 (Core.Cpuify.count_barriers m);
  finish m;
  check_output "budget-exhausted output" m

let test_snapshot_restore () =
  let m = compile (reduce_src ()) in
  let snap = Ir.Clone.snapshot m in
  Alcotest.(check bool)
    "snapshot structurally equal" true
    (Ir.Clone.structural_equal m snap);
  Core.Cpuify.run m;
  Alcotest.(check bool)
    "mutation breaks equality" false
    (Ir.Clone.structural_equal m snap);
  Ir.Clone.restore ~into:m snap;
  Alcotest.(check bool)
    "restore brings it back" true
    (Ir.Clone.structural_equal m snap);
  (* a snapshot survives being restored from more than once *)
  Core.Cpuify.run m;
  Ir.Clone.restore ~into:m snap;
  Alcotest.(check bool)
    "snapshot reusable" true
    (Ir.Clone.structural_equal m snap);
  check_output "restored module still runs" m

let test_bundle_roundtrip () =
  let b =
    { Core.Crashbundle.version = Core.Crashbundle.current_version
    ; stage = "cpuify"
    ; stage_index = 5
    ; rung = "no-mincut"
    ; exn_text = "Fault.Injected(\"cpuify:raise\")"
    ; backtrace = "Raised at Foo.bar\nCalled from Baz.qux"
    ; repro = "polygeist-cpu --cpuify full x.cu"
    ; options = { Core.Cpuify.default_options with opt_budget = 7 }
    ; faults = [ ("cpuify", Core.Fault.Raise); ("cse", Core.Fault.Corrupt) ]
    ; runtime =
        Some
          { Core.Crashbundle.rexec = "parallel"
          ; rdomains = 4
          ; rschedule = "dynamic"
          ; rchunk = Some 8
          ; rseed = None
          ; rtimeout_ms = Some 500
          }
    ; serve =
        Some
          { Core.Crashbundle.sduration_ms = 1234
          ; sretries = 2
          ; squeue_depth = 5
          }
    ; source = "__global__ void k() {}\n"
    ; ir_before = "module {\n}\n"
    }
  in
  match Core.Crashbundle.of_string (Core.Crashbundle.to_string b) with
  | Error e -> Alcotest.failf "bundle did not parse back: %s" e
  | Ok b' ->
    Alcotest.(check string) "stage" b.stage b'.stage;
    Alcotest.(check int) "stage_index" b.stage_index b'.stage_index;
    Alcotest.(check string) "rung" b.rung b'.rung;
    Alcotest.(check string) "exn_text" b.exn_text b'.exn_text;
    (* serialization normalizes the trailing newline *)
    Alcotest.(check string) "backtrace" (String.trim b.backtrace)
      (String.trim b'.backtrace);
    Alcotest.(check string) "repro" b.repro b'.repro;
    Alcotest.(check string) "options"
      (Core.Crashbundle.options_to_string b.options)
      (Core.Crashbundle.options_to_string b'.options);
    Alcotest.(check string) "faults"
      (Core.Fault.plan_to_string b.faults)
      (Core.Fault.plan_to_string b'.faults);
    (match b.runtime, b'.runtime with
     | Some r, Some r' ->
       Alcotest.(check string) "runtime"
         (Core.Crashbundle.runtime_to_string r)
         (Core.Crashbundle.runtime_to_string r')
     | _ -> Alcotest.fail "runtime config lost in round trip");
    (match b.serve, b'.serve with
     | Some s, Some s' ->
       Alcotest.(check string) "serve"
         (Core.Crashbundle.serve_to_string s)
         (Core.Crashbundle.serve_to_string s')
     | _ -> Alcotest.fail "serve config lost in round trip");
    Alcotest.(check int) "version" Core.Crashbundle.current_version b'.version;
    Alcotest.(check string) "source" b.source b'.source;
    Alcotest.(check string) "ir_before" b.ir_before b'.ir_before

(* Bundles written before the format grew the runtime line (v1) must
   still parse: version 1, no runtime configuration. *)
let test_bundle_v1_accepted () =
  let v1_text =
    String.concat "\n"
      [ "polygeist-cpu crash bundle v1"
      ; "stage: cpuify"
      ; "stage-index: 5"
      ; "rung: no-mincut"
      ; "exception: Fault.Injected(\"cpuify:raise\")"
      ; "repro: polygeist-cpu old.cu -cuda-lower"
      ; "options: mincut=true,barrier-elim=true,mem2reg=true,licm=true,budget=7"
      ; "faults: cpuify:raise"
      ; "=== source ==="
      ; "__global__ void k() {}"
      ; "=== pre-stage ir ==="
      ; "module {"
      ; "}"
      ]
  in
  match Core.Crashbundle.of_string v1_text with
  | Error e -> Alcotest.failf "v1 bundle rejected: %s" e
  | Ok b ->
    Alcotest.(check int) "version" 1 b.Core.Crashbundle.version;
    Alcotest.(check string) "stage" "cpuify" b.Core.Crashbundle.stage;
    Alcotest.(check bool) "no runtime cfg" true
      (b.Core.Crashbundle.runtime = None);
    Alcotest.(check string) "faults" "cpuify:raise"
      (Core.Fault.plan_to_string b.Core.Crashbundle.faults)

(* Bundles written before the format grew the serve line (v2) must still
   parse: version 2, runtime configuration kept, no serve context. *)
let test_bundle_v2_accepted () =
  let v2_text =
    String.concat "\n"
      [ "polygeist-cpu crash bundle v2"
      ; "stage: runtime"
      ; "stage-index: 0"
      ; "rung: runtime"
      ; "exception: injected fault"
      ; "repro: polygeist-cpu old.cu -cuda-lower -run main --exec parallel"
      ; "options: mincut=true,barrier-elim=true,mem2reg=true,licm=true,budget=7"
      ; "faults: runtime:raise"
      ; "runtime: exec=parallel,domains=4,schedule=static,chunk=-,seed=-,timeout-ms=500"
      ; "=== source ==="
      ; "__global__ void k() {}"
      ; "=== pre-stage ir ==="
      ; "module {"
      ; "}"
      ]
  in
  match Core.Crashbundle.of_string v2_text with
  | Error e -> Alcotest.failf "v2 bundle rejected: %s" e
  | Ok b ->
    Alcotest.(check int) "version" 2 b.Core.Crashbundle.version;
    Alcotest.(check bool) "runtime cfg kept" true
      (b.Core.Crashbundle.runtime <> None);
    Alcotest.(check bool) "no serve cfg" true (b.Core.Crashbundle.serve = None)

(* A bundle written by the pass manager replays deterministically:
   recompiling the embedded source under the recorded options and fault
   plan reproduces the same failure (stage, rung, exception). *)
let test_bundle_replay () =
  let dir = Filename.temp_file "passmgr" ".crash" in
  Sys.remove dir;
  let src = reduce_src () in
  let faults = [ ("cpuify", Core.Fault.Raise) ] in
  let m = compile src in
  let report =
    match
      Core.Passmgr.run_pipeline ~faults ~crash_dir:dir ~source:src
        ~repro:"test replay" m
    with
    | Ok r -> r
    | Error (r, _) -> r
  in
  let path =
    match report.bundles with
    | [ p ] -> p
    | l -> Alcotest.failf "expected exactly one bundle, got %d" (List.length l)
  in
  let b =
    match Core.Crashbundle.read path with
    | Ok b -> b
    | Error e -> Alcotest.failf "unreadable bundle: %s" e
  in
  let m2 = compile b.source in
  let report2 =
    match Core.Passmgr.run_pipeline ~options:b.options ~faults:b.faults m2 with
    | Ok r -> r
    | Error (r, _) -> r
  in
  let reproduced =
    List.exists
      (fun (f : Core.Passmgr.stage_failure) ->
        f.stage = b.stage
        && Core.Passmgr.rung_to_string f.rung = b.rung
        && f.exn_text = b.exn_text)
      report2.failures
  in
  Alcotest.(check bool) "failure reproduced" true reproduced;
  (* clean up the bundle directory *)
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

(* Unrecoverable: even the fallback faulted out -> Error, not an
   uncaught exception.  Two cpuify entries take down both split rungs,
   the third fault fires inside the fallback itself. *)
let test_unrecoverable_is_error () =
  let m = compile (reduce_src ()) in
  let faults =
    [ ("cpuify", Core.Fault.Raise)
    ; ("cpuify", Core.Fault.Raise)
    ; ("no-opt-fallback", Core.Fault.Raise)
    ]
  in
  match Core.Passmgr.run_pipeline ~faults m with
  | Ok _ -> Alcotest.fail "expected the fallback itself to fail"
  | Error (report, f) ->
    Alcotest.(check string) "final failure is the fallback" "no-opt-fallback"
      f.stage;
    Alcotest.(check int) "three failures recorded" 3
      (List.length report.failures)

let tests =
  [ Alcotest.test_case "clean pipeline: no degradation" `Quick test_clean
  ; Alcotest.test_case "cpuify raise -> no-mincut rung" `Quick
      test_raise_no_mincut
  ; Alcotest.test_case "cpuify raise x2 -> whole-pipeline fallback" `Quick
      test_double_raise_fallback
  ; Alcotest.test_case "optimization raise -> skip" `Quick test_opt_raise_skip
  ; Alcotest.test_case "corrupt caught by verifier -> skip" `Quick
      test_corrupt_caught_by_verifier
  ; Alcotest.test_case "fuel exhaust -> skip" `Quick test_exhaust_skip
  ; Alcotest.test_case "budget exhaustion degrades, not Stuck" `Quick
      test_budget_degrades_not_stuck
  ; Alcotest.test_case "snapshot / restore / structural_equal" `Quick
      test_snapshot_restore
  ; Alcotest.test_case "crash bundle round-trip" `Quick test_bundle_roundtrip
  ; Alcotest.test_case "v2 crash bundle still accepted" `Quick
      test_bundle_v2_accepted
  ; Alcotest.test_case "v1 crash bundle still accepted" `Quick
      test_bundle_v1_accepted
  ; Alcotest.test_case "crash bundle replays deterministically" `Quick
      test_bundle_replay
  ; Alcotest.test_case "unrecoverable pipeline returns Error" `Quick
      test_unrecoverable_is_error
  ]
