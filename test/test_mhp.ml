(* Tests of the MHP barrier-interval dataflow (lib/analysis/mhp) and of
   the analysis-guided repair search built on it (lib/core/repair): the
   interval structure of loop-carried and guarded barriers, the
   redundant-barrier query, and the three seeded racy fixtures whose
   known-good minimal repair the search must find — validated against
   the differential oracle like the driver's --repair path. *)

open Ir
open Analysis

let build_kernel src =
  let m = Cudafe.Codegen.compile src in
  Core.Canonicalize.run m;
  Core.Cse.run m;
  ignore (Core.Mem2reg.run m);
  Core.Canonicalize.run m;
  m

let find_block_par m =
  let found = ref None in
  Op.iter
    (fun o -> if o.Op.kind = Op.Parallel Op.Block then found := Some o)
    m;
  Option.get !found

let find_barriers m =
  let acc = ref [] in
  Op.iter (fun o -> if o.Op.kind = Op.Barrier then acc := o :: !acc) m;
  List.rev !acc

let analyze m =
  let par = find_block_par m in
  let info = Info.build m in
  let ctx = Effects.make_ctx ~modul:m ~par info in
  Mhp.analyze ctx par

let read_fixture name =
  In_channel.with_open_text (Filename.concat "fixtures" name)
    In_channel.input_all

(* A barrier inside a loop closes the entry interval on the unshifted
   path and its own interval again through the back edge — the
   loop-carried interval structure. *)
let test_loop_carried_intervals () =
  let m =
    build_kernel
      {|
__global__ void k(float* out, float* in) {
  __shared__ float s[8];
  int t = threadIdx.x;
  s[t] = in[t];
  for (int i = 0; i < 3; i++) {
    __syncthreads();
    s[t] = s[t] * 0.5f;
  }
  out[t] = s[t];
}
void launch(float* out, float* in) { k<<<1, 8>>>(out, in); }
|}
  in
  let mhp = analyze m in
  Alcotest.(check int) "entry + one barrier" 2 (Mhp.interval_count mhp);
  match find_barriers m with
  | [ b ] -> begin
    Alcotest.(check (option int)) "barrier opens interval 1" (Some 1)
      (Mhp.barrier_opens mhp b);
    match Mhp.barrier_closes mhp b with
    | Some (unshifted, shifted) ->
      Alcotest.(check (list int)) "entry interval arrives unshifted" [ 0 ]
        unshifted;
      Alcotest.(check (list int)) "own interval arrives via back edge" [ 1 ]
        shifted
    | None -> Alcotest.fail "barrier not reached by the dataflow"
  end
  | l -> Alcotest.failf "expected 1 barrier, got %d" (List.length l)

(* A barrier under a (block-uniform) branch splits interval membership:
   ops after the join are reachable both with the entry interval (branch
   skipped) and the barrier's interval (branch taken). *)
let test_guarded_barrier_splits () =
  let m =
    build_kernel
      {|
__global__ void k(float* out, float* in) {
  __shared__ float s[8];
  int t = threadIdx.x;
  int b = blockIdx.x;
  s[t] = in[b * 8 + t];
  if (b % 2 == 0) {
    __syncthreads();
  }
  out[b * 8 + t] = s[t];
}
void launch(float* out, float* in) { k<<<2, 8>>>(out, in); }
|}
  in
  let mhp = analyze m in
  Alcotest.(check int) "entry + one barrier" 2 (Mhp.interval_count mhp);
  let out_leaf =
    List.find
      (fun (l : Mhp.leaf) ->
        List.exists
          (fun (a : Effects.access) ->
            match a.Effects.base with
            | Some (v : Value.t) -> v.Value.name = Some "out"
            | None -> false)
          l.Mhp.l_accs)
      (Mhp.leaves mhp)
  in
  match Mhp.intervals_at mhp out_leaf.Mhp.l_op with
  | Some (unshifted, _) ->
    Alcotest.(check (list int)) "both paths reach the final store" [ 0; 1 ]
      unshifted
  | None -> Alcotest.fail "final store not reached by the dataflow"

(* Back-to-back barriers: each one individually separates nothing (the
   other still fences the write from the mirrored read), so both are
   reported — the query is per-barrier, removal must re-analyze (see the
   mli).  With a real conflict across a single barrier, none is. *)
let test_redundant_barriers () =
  let doubled =
    build_kernel
      {|
__global__ void k(float* out, float* in) {
  __shared__ float s[8];
  int t = threadIdx.x;
  s[t] = in[t];
  __syncthreads();
  __syncthreads();
  out[t] = s[7 - t];
}
void launch(float* out, float* in) { k<<<1, 8>>>(out, in); }
|}
  in
  Alcotest.(check int) "each of the pair is individually removable" 2
    (List.length (Mhp.redundant_barriers (analyze doubled)));
  let single =
    build_kernel
      {|
__global__ void k(float* out, float* in) {
  __shared__ float s[8];
  int t = threadIdx.x;
  s[t] = in[t];
  __syncthreads();
  out[t] = s[7 - t];
}
void launch(float* out, float* in) { k<<<1, 8>>>(out, in); }
|}
  in
  Alcotest.(check int) "a load-bearing barrier is kept" 0
    (List.length (Mhp.redundant_barriers (analyze single)))

(* The seeded racy fixtures: the sanitizer must flag each, and the
   repair search must find the known-good minimal fix — one inserted
   barrier — that the differential oracle then validates against the
   serial interpreter. *)
let dirty m =
  List.filter Core.Repair.target_diag
    (Kernelcheck.check_module ~report_possible:true m)

let test_fixture_repair name =
  let m = build_kernel (read_fixture name) in
  Alcotest.(check bool) (name ^ " is sanitizer-dirty") true (dirty m <> []);
  let validate m' =
    match Fuzz.Oracle.run_module m' with
    | Fuzz.Oracle.Passed -> Ok ()
    | Fuzz.Oracle.Failed f -> Error (Fuzz.Oracle.failure_to_string f)
  in
  let out = Core.Repair.run ~validate m in
  match out.Core.Repair.status with
  | Core.Repair.Repaired edits ->
    Alcotest.(check int) (name ^ " minimal repair is one edit") 1
      (List.length edits);
    List.iter
      (fun (e : Core.Repair.edit) ->
        Alcotest.(check bool) (name ^ " repair inserts a barrier") true
          (e.Core.Repair.e_action = `Insert))
      edits;
    Alcotest.(check int) (name ^ " sanitizer-clean after repair") 0
      (List.length (dirty m))
  | Core.Repair.Clean -> Alcotest.failf "%s came out clean" name
  | Core.Repair.Failed why -> Alcotest.failf "%s not repaired: %s" name why

let test_repair_raw () = test_fixture_repair "missing_raw_barrier.cu"
let test_repair_loop () = test_fixture_repair "loop_race.cu"
let test_repair_war () = test_fixture_repair "missing_war_barrier.cu"

let tests =
  [ Alcotest.test_case "loop-carried barrier intervals" `Quick
      test_loop_carried_intervals
  ; Alcotest.test_case "guarded barrier splits membership" `Quick
      test_guarded_barrier_splits
  ; Alcotest.test_case "redundant barrier collapse" `Quick
      test_redundant_barriers
  ; Alcotest.test_case "RAW fixture repaired with one barrier" `Quick
      test_repair_raw
  ; Alcotest.test_case "loop-race fixture repaired with one barrier" `Quick
      test_repair_loop
  ; Alcotest.test_case "WAR fixture repaired with one barrier" `Quick
      test_repair_war
  ]
