__global__ void racy(float* out, float* in, int n) {
  __shared__ float s[64];
  int t = threadIdx.x;
  s[t] = in[t];
  out[0] = s[t];
  __syncthreads();
  out[t] = s[t] + 1.0f;
}
void run(float* out, float* in, int n) {
  racy<<<1, 64>>>(out, in, n);
}
