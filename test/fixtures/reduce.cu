__global__ void reduce(float* in, float* out, int n) {
  __shared__ float buf[64];
  int t = threadIdx.x;
  int i = blockIdx.x * 64 + t;
  if (i < n) buf[t] = in[i];
  else buf[t] = 0.0f;
  __syncthreads();
  for (int s = 32; s > 0; s = s / 2) {
    if (t < s) buf[t] = buf[t] + buf[t + s];
    __syncthreads();
  }
  if (t == 0) out[blockIdx.x] = buf[0];
}
void run(float* in, float* out, int n) {
  reduce<<<(n + 63) / 64, 64>>>(in, out, n);
}
