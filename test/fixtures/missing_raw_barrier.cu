// Seeded read-after-write race: every thread stores into shared memory
// and then immediately reads ANOTHER thread's slot with no barrier in
// between.  The known-good minimal repair is a single __syncthreads()
// between the store and the mirrored load (before line 7).
__global__ void k(float* out, float* in) {
  __shared__ float s[8];
  int t = threadIdx.x;
  int b = blockIdx.x;
  s[t] = in[b * 8 + t];
  out[b * 8 + t] = s[7 - t];
}
void launch(float* out, float* in) { k<<<2, 8>>>(out, in); }
