__global__ void divergent(float* out, int n) {
  __shared__ float s[64];
  int t = threadIdx.x;
  s[t] = out[t];
  if (t < 4) {
    __syncthreads();
  }
  out[t] = s[63 - t];
}
void run(float* out, int n) {
  divergent<<<1, 64>>>(out, n);
}
