// Seeded loop-carried race: each iteration reads a neighbour's slot,
// syncs, and writes its own — but nothing separates the write from the
// NEXT iteration's read, so the wrap-around pair races.  The known-good
// minimal repair is a single __syncthreads() cutting the back edge (at
// the end of the loop body).
__global__ void k(float* out, float* in) {
  __shared__ float s[8];
  int t = threadIdx.x;
  int b = blockIdx.x;
  s[t] = in[b * 8 + t];
  __syncthreads();
  for (int i = 0; i < 3; i++) {
    float v = s[(t + 1) % 8];
    __syncthreads();
    s[t] = v * 0.5f;
  }
  __syncthreads();
  out[b * 8 + t] = s[t];
}
void launch(float* out, float* in) { k<<<2, 8>>>(out, in); }
