// Seeded write-after-read race: threads read a rotated neighbour slot
// and then overwrite their own slot with no barrier in between, so a
// slow reader can observe another thread's new value.  The known-good
// minimal repair is a single __syncthreads() between the rotated read
// and the overwrite.
__global__ void k(float* out, float* in) {
  __shared__ float s[8];
  int t = threadIdx.x;
  int b = blockIdx.x;
  s[t] = in[b * 8 + t];
  __syncthreads();
  float v = s[(t + 3) % 8] + s[t];
  s[t] = v * 2.0f;
  __syncthreads();
  out[b * 8 + t] = s[t] + v;
}
void launch(float* out, float* in) { k<<<2, 8>>>(out, in); }
