(* Tests of the static kernel checker (lib/analysis/check): the seeded-bug
   fixtures must be flagged at exact source locations, every Rodinia
   kernel must come out clean, and checker-clean kernels must execute to
   completion under the fiber interpreter — the run-time counterpart of
   the absence of divergence diagnostics. *)

open Ir
open Analysis

let cleanup m =
  Core.Canonicalize.run m;
  Core.Cse.run m;
  ignore (Core.Mem2reg.run m);
  Core.Canonicalize.run m

let check_src src =
  let m = Cudafe.Codegen.compile src in
  cleanup m;
  Kernelcheck.check_module m

let read_fixture name =
  In_channel.with_open_text (Filename.concat "fixtures" name)
    In_channel.input_all

let loc_str = function
  | Some l -> Srcloc.to_string l
  | None -> "<none>"

(* racy.cu line 5: [out[0] = s[t];] — every thread writes the same global
   address with a different value, no barrier in between. *)
let test_racy_fixture () =
  let diags = check_src (read_fixture "racy.cu") in
  match List.filter Diag.is_error diags with
  | [ d ] ->
    Alcotest.(check string) "check name" "race" d.Diag.check;
    Alcotest.(check string) "location" "5:3" (loc_str d.Diag.loc)
  | l -> Alcotest.failf "expected exactly 1 error, got %d" (List.length l)

(* divergent.cu line 6: [__syncthreads()] under [if (t < 4)]. *)
let test_divergent_fixture () =
  let diags = check_src (read_fixture "divergent.cu") in
  match List.filter Diag.is_error diags with
  | [ d ] -> begin
    Alcotest.(check string) "check name" "divergence" d.Diag.check;
    Alcotest.(check string) "location" "6:5" (loc_str d.Diag.loc);
    match d.Diag.notes with
    | [ n ] ->
      Alcotest.(check string) "note points at the guard" "5:3"
        (loc_str n.Diag.n_loc)
    | l -> Alcotest.failf "expected 1 note, got %d" (List.length l)
  end
  | l -> Alcotest.failf "expected exactly 1 error, got %d" (List.length l)

let test_shared_init () =
  (* a shared array read but never written: error *)
  let diags =
    check_src
      {|
__global__ void k(float* out) {
  __shared__ float s[64];
  int t = threadIdx.x;
  out[t] = s[t];
}
void run(float* out) { k<<<1, 64>>>(out); }
|}
  in
  Alcotest.(check bool) "never-written read is an error" true
    (List.exists
       (fun (d : Diag.t) -> d.Diag.check = "shared-init" && Diag.is_error d)
       diags);
  (* written, but only at a later program point: warning, not error *)
  let diags =
    check_src
      {|
__global__ void k(float* out) {
  __shared__ float s[64];
  int t = threadIdx.x;
  out[t] = s[t];
  __syncthreads();
  s[t] = out[t];
}
void run(float* out) { k<<<1, 64>>>(out); }
|}
  in
  let si = List.filter (fun (d : Diag.t) -> d.Diag.check = "shared-init") diags in
  Alcotest.(check int) "one shared-init diagnostic" 1 (List.length si);
  Alcotest.(check bool) "read-before-first-write is a warning" false
    (Diag.is_error (List.hd si));
  (* the canonical load-compute-store pattern stays silent *)
  let diags =
    check_src
      {|
__global__ void k(float* out) {
  __shared__ float s[64];
  int t = threadIdx.x;
  s[t] = out[t];
  __syncthreads();
  out[t] = s[63 - t];
}
void run(float* out) { k<<<1, 64>>>(out); }
|}
  in
  Alcotest.(check int) "initialized use is clean" 0 (List.length diags)

(* The other end of the location-threading chain: the printer can show
   the frontend positions (off by default, so golden IR tests are
   unaffected). *)
let test_printer_locs () =
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  let m = Cudafe.Codegen.compile (read_fixture "racy.cu") in
  Alcotest.(check bool) "printed IR carries loc(5:3)" true
    (contains (Printer.op_to_string ~locs:true m) "loc(5:3)");
  Alcotest.(check bool) "locations hidden by default" false
    (contains (Printer.op_to_string m) "loc(")

let all_benches () = Rodinia.Registry.matmul :: Rodinia.Registry.all

let test_rodinia_clean () =
  List.iter
    (fun (b : Rodinia.Bench_def.t) ->
      let m = Cudafe.Codegen.compile b.cuda_src in
      cleanup m;
      match Kernelcheck.check_module m with
      | [] -> ()
      | d :: _ ->
        Alcotest.failf "%s not clean: %s" b.name
          (Diag.to_string ~file:(b.name ^ ".cu") d))
    (all_benches ())

(* Differential: a kernel the checker accepts must run to completion
   under the interpreter (a divergent barrier would deadlock the fiber
   scheduler, a verifier-visible break would raise). *)
let test_clean_kernels_execute () =
  List.iter
    (fun (b : Rodinia.Bench_def.t) ->
      let m = Cudafe.Codegen.compile b.cuda_src in
      cleanup m;
      Alcotest.(check int)
        (b.name ^ " checker-clean")
        0
        (List.length (Kernelcheck.check_module m));
      let w = b.mk_workload b.test_size in
      let _, _ =
        Interp.Eval.run m b.entry (Rodinia.Bench_def.args_of_workload w)
      in
      ())
    (all_benches ())

let tests =
  [ Alcotest.test_case "racy fixture flagged at 5:3" `Quick test_racy_fixture
  ; Alcotest.test_case "divergent fixture flagged at 6:5" `Quick
      test_divergent_fixture
  ; Alcotest.test_case "shared-init tiers" `Quick test_shared_init
  ; Alcotest.test_case "printer location flag" `Quick test_printer_locs
  ; Alcotest.test_case "rodinia kernels clean" `Quick test_rodinia_clean
  ; Alcotest.test_case "clean kernels execute" `Quick
      test_clean_kernels_execute
  ]
