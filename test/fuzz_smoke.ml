(* @fuzz-smoke (wired into `dune runtest`): a fixed-seed budget of
   generated kernels through the full differential oracle.  On a healthy
   compiler the campaign finds nothing; re-introducing a barrier-lowering
   bug (dropping a min-cut crossing value, skipping the while-condition
   thread-0 capture, ignoring write-after-read in barrier elimination)
   produces findings within this budget, each shrunk to a small
   replayable witness.  Deterministic: the seeds are fixed and no
   assertion involves wall clock — the cases/min line in the report is
   informational only. *)

let cases = 50
let seed = 1

let failures = ref 0

let fail fmt =
  incr failures;
  Printf.printf fmt

let () =
  (* generator contract: deterministic in the seed, and compilable *)
  if not (String.equal (Fuzz.Gen.source ~seed:7) (Fuzz.Gen.source ~seed:7))
  then fail "generator is not deterministic for a fixed seed\n";
  if Fuzz.Reduce.ir_ops (Fuzz.Gen.source ~seed) = max_int then
    fail "generated seed %d does not compile\n" seed;
  (* the campaign itself: every rung of the pipeline and both executors
     must agree with GPU semantics on every generated kernel *)
  let r = Fuzz.Fuzzer.run_campaign ~seed ~cases () in
  print_string (Fuzz.Fuzzer.report_to_string r);
  List.iter
    (fun (f : Fuzz.Fuzzer.finding) ->
      incr failures;
      Printf.printf "divergence at seed %d — reduced witness:\n%s\n" f.fseed
        f.freduced)
    r.findings;
  (* tensor-shaped generator (--gen-tensor): same contract, the kernel
     tier's dataflow shapes *)
  if
    not
      (String.equal
         (Fuzz.Gen.tensor_source ~seed:7)
         (Fuzz.Gen.tensor_source ~seed:7))
  then fail "tensor generator is not deterministic for a fixed seed\n";
  if Fuzz.Reduce.ir_ops (Fuzz.Gen.tensor_source ~seed) = max_int then
    fail "generated tensor seed %d does not compile\n" seed;
  let rt = Fuzz.Fuzzer.run_campaign ~tensor:true ~seed ~cases:25 () in
  print_string (Fuzz.Fuzzer.report_to_string rt);
  List.iter
    (fun (f : Fuzz.Fuzzer.finding) ->
      incr failures;
      Printf.printf
        "tensor divergence at seed %d — reduced witness:\n%s\n" f.fseed
        f.freduced)
    rt.findings;
  (* replay honesty: a bundle recording a failure that no longer
     reproduces must come back stale, never "reproduced" *)
  let stale_bundle : Core.Crashbundle.t =
    { version = Core.Crashbundle.current_version
    ; stage = "barrier-elim"
    ; stage_index = 0
    ; rung = "fuzz"
    ; exn_text = "checksum: synthetic failure for the stale-replay check"
    ; backtrace = ""
    ; repro = "fuzz-smoke stale-replay check"
    ; options = Core.Cpuify.default_options
    ; faults = []
    ; runtime =
        Some
          { rexec = "parallel"
          ; rdomains = 4
          ; rschedule = "static"
          ; rchunk = None
          ; rseed = Some seed
          ; rtimeout_ms = Some 5000
          }
    ; serve = None
    ; source = Fuzz.Gen.source ~seed
    ; ir_before = ""
    }
  in
  (match Fuzz.Fuzzer.replay stale_bundle with
   | Error msg
     when String.length msg >= 5 && String.equal (String.sub msg 0 5) "stale"
     -> ()
   | Ok s -> fail "stale fuzz bundle replayed as reproduced: %s\n" s
   | Error msg -> fail "stale replay reported an unexpected error: %s\n" msg);
  if !failures > 0 then begin
    Printf.printf "%d fuzz-smoke failure(s)\n" !failures;
    exit 1
  end
  else print_endline "fuzz-smoke: clean"
