(* The fault matrix (wired into `dune runtest` via the @faults alias):

   1. In-process: for EVERY pipeline stage and EVERY fault kind, over the
      whole Rodinia registry, inject the fault, run the fault-tolerant
      pass manager and check that the degraded module still computes
      exactly what the conservative no-opt lowering computes.

   2. Through the CLI driver (path given as argv(1)): with a fault
      injected into each stage, `polygeist-cpu --run` must exit 1
      (degraded — never crash), print the same output checksum as
      `--cpuify no-opt`, and the crash bundle it writes must replay
      deterministically (`--replay` exits 0). *)

let failures = ref 0

let fail fmt =
  incr failures;
  Printf.printf fmt

let rel_close a b =
  let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) /. scale < 1e-4

let checksum_of (m : Ir.Op.op) (b : Rodinia.Bench_def.t) : float =
  let w = b.mk_workload b.test_size in
  ignore
    (Interp.Eval.run ~team_size:3 m b.entry
       (Rodinia.Bench_def.args_of_workload w));
  Rodinia.Bench_def.checksum w

let no_opt_checksum (b : Rodinia.Bench_def.t) : float =
  let m = Cudafe.Codegen.compile b.cuda_src in
  Core.Cpuify.run ~use_mincut:false m;
  ignore (Core.Omp_lower.run m);
  checksum_of m b

(* --- part 1: the in-process matrix --- *)

let matrix () =
  let stages = Core.Cpuify.stage_names () in
  let kinds = [ Core.Fault.Raise; Core.Fault.Corrupt; Core.Fault.Exhaust ] in
  let cells = ref 0 in
  List.iter
    (fun (b : Rodinia.Bench_def.t) ->
      let baseline = no_opt_checksum b in
      List.iter
        (fun stage ->
          List.iter
            (fun kind ->
              incr cells;
              let what =
                Printf.sprintf "%s under %s" b.name
                  (Core.Fault.entry_to_string (stage, kind))
              in
              let m = Cudafe.Codegen.compile b.cuda_src in
              match Core.Passmgr.run_pipeline ~faults:[ (stage, kind) ] m with
              | exception e ->
                fail "%-40s ESCAPED EXCEPTION: %s\n" what (Printexc.to_string e)
              | Error (_, f) ->
                fail "%-40s UNRECOVERABLE: %s\n" what
                  (Core.Passmgr.failure_to_string f)
              | Ok report ->
                if not (Core.Passmgr.degraded report) then
                  fail "%-40s fault did not fire\n" what
                else begin
                  ignore (Core.Omp_lower.run m);
                  match checksum_of m b with
                  | exception e ->
                    fail "%-40s degraded module does not run: %s\n" what
                      (Printexc.to_string e)
                  | got ->
                    if not (rel_close baseline got) then
                      fail "%-40s output differs from no-opt: %g vs %g\n" what
                        got baseline
                end)
            kinds)
        stages)
    Rodinia.Registry.all;
  Printf.printf "fault matrix: %d cells (%d benchmarks x %d stages x %d kinds)\n"
    !cells
    (List.length Rodinia.Registry.all)
    (List.length stages) 3

(* --- part 2: through the CLI driver --- *)

let sh (cmd : string) : int =
  let code = Sys.command cmd in
  (* Sys.command goes through /bin/sh, which reports signals as 128+n *)
  code

let slurp path = In_channel.with_open_text path In_channel.input_all

(* The "output checksum @..." line printed by --run. *)
let checksum_line out =
  String.split_on_char '\n' out
  |> List.find_opt (fun l ->
      String.length l >= 15 && String.sub l 0 15 = "output checksum")

let cli_checks (driver : string) =
  let fixture = Filename.concat "fixtures" "reduce.cu" in
  let tmp = Filename.temp_file "faults" ".out" in
  let crash_dir = Filename.temp_file "faults" ".crash" in
  Sys.remove crash_dir;
  let run args =
    let cmd =
      Printf.sprintf "%s %s %s > %s 2>/dev/null" (Filename.quote driver) args
        (Filename.quote fixture) (Filename.quote tmp)
    in
    let code = sh cmd in
    (code, slurp tmp)
  in
  (* the reference: conservative lowering, exits 0 *)
  let base_code, base_out =
    run "--cuda-lower --cpuify no-opt --run run --size 128"
  in
  if base_code <> 0 then fail "CLI: no-opt run exited %d, want 0\n" base_code;
  let base_ck =
    match checksum_line base_out with
    | Some l -> l
    | None ->
      fail "CLI: no-opt run printed no checksum line\n";
      ""
  in
  (* a clean optimized run exits 0 and computes the same answer *)
  let full_code, full_out = run "--cuda-lower --run run --size 128" in
  if full_code <> 0 then fail "CLI: clean run exited %d, want 0\n" full_code;
  if checksum_line full_out <> Some base_ck then
    fail "CLI: clean run checksum differs from no-opt\n";
  (* the parallel runtime computes the same answer as the serial
     interpreter, at 1 and 4 domains and under every schedule policy *)
  List.iter
    (fun extra ->
      let code, out =
        run (Printf.sprintf "--cuda-lower --run run --size 128 %s" extra)
      in
      if code <> 0 then
        fail "CLI: parallel run (%s) exited %d, want 0\n" extra code;
      if checksum_line out <> Some base_ck then
        fail "CLI: parallel run (%s) checksum differs from serial\n" extra)
    [ "--exec parallel --domains 1"
    ; "--exec parallel --domains 4"
    ; "--exec parallel --domains 4 --schedule dynamic"
    ; "--exec parallel --domains 4 --schedule guided"
    ; "--exec parallel --domains 4 --no-team-reuse"
    ];
  (* a runtime fault degrades the parallel path to the serial
     interpreter: exit 1, same answer *)
  let code, out =
    run
      "--cuda-lower --run run --size 128 --exec parallel --domains 4 \
       --inject-fault runtime:raise"
  in
  if code <> 1 then
    fail "CLI: runtime fault exited %d, want 1 (degraded to serial)\n" code;
  if checksum_line out <> Some base_ck then
    fail "CLI: runtime-fault fallback changed the output checksum\n";
  (* the watchdog: a hang-injected parallel launch under --timeout-ms
     terminates instead of hanging the driver, degrades to the serial
     interpreter (exit 1) with the reference checksum, and the runtime
     crash bundle it writes replays deterministically *)
  let rt_dir = Filename.temp_file "faults" ".rtcrash" in
  Sys.remove rt_dir;
  let code, out =
    run
      (Printf.sprintf
         "--cuda-lower --run run --size 128 --exec parallel --domains 4 \
          --timeout-ms 500 --inject-fault runtime:hang --crash-dir %s"
         (Filename.quote rt_dir))
  in
  if code <> 1 then
    fail "CLI: hang under the watchdog exited %d, want 1 (degraded)\n" code;
  if checksum_line out <> Some base_ck then
    fail "CLI: watchdog fallback changed the output checksum\n";
  (match try Sys.readdir rt_dir with Sys_error _ -> [||] with
   | [||] -> fail "CLI: no runtime crash bundle was written\n"
   | rt_bundles ->
     Array.iter
       (fun bundle ->
         let cmd =
           Printf.sprintf "%s --replay %s > %s 2>/dev/null"
             (Filename.quote driver)
             (Filename.quote (Filename.concat rt_dir bundle))
             (Filename.quote tmp)
         in
         let code = sh cmd in
         if code <> 0 then
           fail "CLI: runtime --replay %s exited %d, want 0 (reproduced)\n"
             bundle code)
       rt_bundles);
  (try
     Array.iter
       (fun f -> Sys.remove (Filename.concat rt_dir f))
       (Sys.readdir rt_dir);
     Sys.rmdir rt_dir
   with Sys_error _ -> ());
  (* the fuzz subcommand: a tiny fixed-seed campaign on a healthy build
     finds nothing and exits 0 (the real budget lives in @fuzz-smoke) *)
  let code =
    sh
      (Printf.sprintf "%s fuzz --seed 1 --cases 3 > %s 2>/dev/null"
         (Filename.quote driver) (Filename.quote tmp))
  in
  if code <> 0 then fail "CLI: fuzz --cases 3 exited %d, want 0\n" code;
  (* every stage, faulted: exit 1 (degraded, never a crash), same answer *)
  List.iter
    (fun stage ->
      let code, out =
        run
          (Printf.sprintf
             "--cuda-lower --run run --size 128 --inject-fault %s:raise \
              --crash-dir %s"
             stage (Filename.quote crash_dir))
      in
      if code <> 1 then
        fail "CLI: fault in %s exited %d, want 1 (degraded)\n" stage code;
      if checksum_line out <> Some base_ck then
        fail "CLI: fault in %s changed the output checksum\n" stage)
    (Core.Cpuify.stage_names ());
  (* a written bundle replays deterministically *)
  let bundles = Sys.readdir crash_dir in
  if Array.length bundles = 0 then fail "CLI: no crash bundles were written\n"
  else
    Array.iter
      (fun bundle ->
        let cmd =
          Printf.sprintf "%s --replay %s > %s 2>/dev/null"
            (Filename.quote driver)
            (Filename.quote (Filename.concat crash_dir bundle))
            (Filename.quote tmp)
        in
        let code = sh cmd in
        if code <> 0 then
          fail "CLI: --replay %s exited %d, want 0 (reproduced)\n" bundle code)
      bundles;
  (* an unparseable file is a clean diagnostic (exit 2), not a backtrace *)
  let bad = Filename.temp_file "faults" ".cu" in
  Out_channel.with_open_text bad (fun oc ->
      Out_channel.output_string oc "this is not CUDA\n");
  let cmd =
    Printf.sprintf "%s --cuda-lower %s > %s 2>&1" (Filename.quote driver)
      (Filename.quote bad) (Filename.quote tmp)
  in
  let code = sh cmd in
  if code <> 2 then fail "CLI: parse error exited %d, want 2\n" code;
  Printf.printf "CLI checks: exit codes, checksum parity (serial, \
                 parallel and watchdog fallback) and replay over %d stages\n"
    (List.length (Core.Cpuify.stage_names ()));
  Sys.remove tmp;
  Sys.remove bad;
  Array.iter
    (fun f -> Sys.remove (Filename.concat crash_dir f))
    (Sys.readdir crash_dir);
  Sys.rmdir crash_dir

let () =
  matrix ();
  if Array.length Sys.argv > 1 then cli_checks Sys.argv.(1);
  if !failures > 0 then begin
    Printf.printf "%d fault-matrix failure(s)\n" !failures;
    exit 1
  end
  else print_endline "all faults degrade to the no-opt baseline"
