(* Differential and unit tests for the multicore runtime (lib/runtime).

   The heart is the differential suite: for every Rodinia benchmark, the
   parallel engine at d domains must produce the exact commutative
   checksum of the serial GPU-semantics interpreter at team_size = d —
   bitwise, no tolerance, since a correct race-free execution is
   schedule-independent.  The domain counts come from RUNTIME_DOMAINS
   (comma-separated, default "1,2,4"); the @runtime dune alias runs this
   executable once with RUNTIME_DOMAINS=1 and once with =2,4,8.

   Unit tests cover the sense-reversing barrier under contention and
   poisoning, domain-pool reuse and exception propagation, schedule
   partition/exactly-once properties and the balanced static partition
   (single source of truth in Interp.Eval), the compiled access paths
   (a QCheck differential of strided loads/stores against the
   interpreter, including out-of-bounds ranges that must be rejected at
   loop entry), the per-compile unbound-register sentinel, the
   zero-allocation relaunch contract and the --chunk knob, worksharing
   via builder-built IR under many team sizes and all three schedules
   (including a skewed load for dynamic work stealing), the
   interpreter's team-size plumbing (wsloops inside GPU block regions
   must NOT be chunked), and fault injection through the parallel
   path. *)

open Ir

let domains_under_test : int list =
  match Sys.getenv_opt "RUNTIME_DOMAINS" with
  | None | Some "" -> [ 1; 2; 4 ]
  | Some s ->
    String.split_on_char ',' s
    |> List.filter_map (fun x -> int_of_string_opt (String.trim x))

(* --- Rodinia differential --- *)

let build_bench (b : Rodinia.Bench_def.t) : Op.op =
  let m = Cudafe.Codegen.compile b.cuda_src in
  Core.Cpuify.run m;
  ignore (Core.Omp_lower.run m);
  Core.Canonicalize.run m;
  m

let serial_checksum (m : Op.op) (b : Rodinia.Bench_def.t) ~team_size : float =
  let w = b.mk_workload b.test_size in
  ignore
    (Interp.Eval.run ~team_size m b.entry
       (Rodinia.Bench_def.args_of_workload w));
  Interp.Mem.checksum w.Rodinia.Bench_def.buffers

let parallel_checksum (m : Op.op) (b : Rodinia.Bench_def.t) ~domains
    ~schedule : float =
  let w = b.mk_workload b.test_size in
  ignore
    (Runtime.Exec.run_module ~domains ~schedule m b.entry
       (Rodinia.Bench_def.args_of_workload w));
  Interp.Mem.checksum w.Rodinia.Bench_def.buffers

let test_rodinia_differential (b : Rodinia.Bench_def.t) () =
  let m = build_bench b in
  List.iter
    (fun d ->
      let expect = serial_checksum m b ~team_size:d in
      let got =
        parallel_checksum m b ~domains:d ~schedule:Runtime.Schedule.Static
      in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "%s @ %d domains (static)" b.name d)
        expect got)
    domains_under_test

(* --- barrier --- *)

let test_barrier_contention () =
  let size = 8 and phases = 200 in
  let b = Runtime.Barrier.create size in
  let counter = Atomic.make 0 in
  let errors = Atomic.make 0 in
  let work () =
    for p = 1 to phases do
      Atomic.incr counter;
      Runtime.Barrier.wait b;
      (* every thread's increment for phase [p] must be visible; the
         second barrier keeps anyone from racing into phase [p+1]
         before all checks are done *)
      if Atomic.get counter <> p * size then Atomic.incr errors;
      Runtime.Barrier.wait b
    done
  in
  let ds = Array.init (size - 1) (fun _ -> Domain.spawn work) in
  work ();
  Array.iter Domain.join ds;
  Alcotest.(check int) "no torn phases" 0 (Atomic.get errors);
  Alcotest.(check int) "phase count" (2 * phases) (Runtime.Barrier.phases b)

let test_barrier_poison () =
  let b = Runtime.Barrier.create 3 in
  let poisoned = Atomic.make 0 in
  let ds =
    Array.init 2 (fun _ ->
        Domain.spawn (fun () ->
            match Runtime.Barrier.wait b with
            | () -> ()
            | exception Runtime.Barrier.Poisoned -> Atomic.incr poisoned))
  in
  (* let the waiters block (they fall through the spin phase onto the
     condvar on this single-core machine), then poison *)
  Unix.sleepf 0.05;
  Runtime.Barrier.poison b;
  Array.iter Domain.join ds;
  Alcotest.(check int) "both waiters unblocked with Poisoned" 2
    (Atomic.get poisoned)

(* --- pool --- *)

let test_pool_reuse () =
  Runtime.Pool.shutdown_cached ();
  let s0 = Runtime.Pool.total_spawns () in
  let p = Runtime.Pool.get ~domains:4 ~reuse:true in
  let hits = Atomic.make 0 in
  Runtime.Pool.run p (fun _ -> Atomic.incr hits);
  Alcotest.(check int) "all ranks ran" 4 (Atomic.get hits);
  Alcotest.(check int) "first acquisition spawns n-1 domains" 3
    (Runtime.Pool.total_spawns () - s0);
  let p2 = Runtime.Pool.get ~domains:4 ~reuse:true in
  Runtime.Pool.run p2 (fun _ -> Atomic.incr hits);
  Alcotest.(check int) "reuse spawns nothing" 3
    (Runtime.Pool.total_spawns () - s0);
  let p3 = Runtime.Pool.get ~domains:4 ~reuse:false in
  Runtime.Pool.run p3 (fun _ -> Atomic.incr hits);
  Runtime.Pool.release p3;
  Alcotest.(check int) "no-reuse pays the spawn cost again" 6
    (Runtime.Pool.total_spawns () - s0);
  Runtime.Pool.shutdown_cached ()

exception Boom

let test_pool_exception () =
  Runtime.Pool.shutdown_cached ();
  let p = Runtime.Pool.get ~domains:4 ~reuse:true in
  let raised =
    match Runtime.Pool.run p (fun rank -> if rank = 2 then raise Boom) with
    | () -> false
    | exception Boom -> true
  in
  Alcotest.(check bool) "worker exception re-raised at the join" true raised;
  (* the pool must survive a failed job *)
  let hits = Atomic.make 0 in
  Runtime.Pool.run p (fun _ -> Atomic.incr hits);
  Alcotest.(check int) "pool healthy after a failed job" 4 (Atomic.get hits);
  Runtime.Pool.shutdown_cached ()

(* --- schedule --- *)

let covers_exactly_once ~n (ranges : (int * int) list) : bool =
  let seen = Array.make (max n 1) 0 in
  List.iter
    (fun (lo, hi) ->
      for i = lo to hi - 1 do
        if i >= 0 && i < n then seen.(i) <- seen.(i) + 1
      done)
    ranges;
  n = 0 || Array.for_all (fun c -> c = 1) seen

let test_schedule_partition () =
  List.iter
    (fun n ->
      List.iter
        (fun size ->
          (* static: per-rank chunks partition the space *)
          let static =
            List.init size (fun rank ->
                Runtime.Schedule.static_chunk ~rank ~size ~n)
          in
          Alcotest.(check bool)
            (Printf.sprintf "static n=%d size=%d" n size)
            true
            (covers_exactly_once ~n static);
          (* dynamic/guided: interleaved grabbing exhausts the space with
             no overlap *)
          List.iter
            (fun p ->
              let s = Runtime.Schedule.make_shared () in
              let out = ref [] in
              let exhausted = ref 0 in
              while !exhausted < size do
                (* round-robin the "threads" to interleave grabs *)
                match Runtime.Schedule.next s p ~size ~n with
                | Some r ->
                  out := r :: !out;
                  exhausted := 0
                | None -> incr exhausted
              done;
              Alcotest.(check bool)
                (Printf.sprintf "%s n=%d size=%d"
                   (Runtime.Schedule.to_string p)
                   n size)
                true
                (covers_exactly_once ~n !out))
            [ Runtime.Schedule.Dynamic; Runtime.Schedule.Guided ])
        [ 1; 3; 4; 8 ])
    [ 0; 1; 7; 64; 1000 ]

(* --- builder-built worksharing IR --- *)

(* func @k(buf : memref<n x f64>) { omp.parallel { omp.wsloop i in
   [0,n) { buf[i] <- buf[i] + 1.0 } } } — every element must end up
   exactly 1.0 no matter the team size or schedule. *)
let mk_wsloop_module n : Op.op =
  Builder.module_
    [ Builder.func "k"
        [ ("buf", Types.memref Types.F64 [ Some n ]) ]
        (fun params ->
          let buf = params.(0) in
          let s = Builder.Seq.create () in
          let c0 = Builder.Seq.emitv s (Builder.const_int ~dtype:Types.Index 0) in
          let c1 = Builder.Seq.emitv s (Builder.const_int ~dtype:Types.Index 1) in
          let cn = Builder.Seq.emitv s (Builder.const_int ~dtype:Types.Index n) in
          let one =
            Builder.Seq.emitv s (Builder.const_float ~dtype:Types.F64 1.0)
          in
          ignore
            (Builder.Seq.emit s
               (Builder.omp_parallel
                  [ Builder.omp_wsloop ~lbs:[ c0 ] ~ubs:[ cn ] ~steps:[ c1 ]
                      (fun ivs ->
                        let s2 = Builder.Seq.create () in
                        let v =
                          Builder.Seq.emitv s2 (Builder.load buf [ ivs.(0) ])
                        in
                        let v' =
                          Builder.Seq.emitv s2 (Builder.binop Op.Add v one)
                        in
                        ignore
                          (Builder.Seq.emit s2
                             (Builder.store v' buf [ ivs.(0) ]));
                        Builder.Seq.to_list s2)
                  ]));
          Builder.Seq.to_list s)
    ]

let run_k ?schedule ~domains (m : Op.op) (n : int) : float array =
  let buf = Interp.Mem.alloc_buffer Types.F64 [| n |] in
  ignore
    (Runtime.Exec.run_module ?schedule ~domains m "k" [ Interp.Mem.Buf buf ]);
  Interp.Mem.float_contents buf

let test_wsloop_exactly_once () =
  List.iter
    (fun n ->
      let m = mk_wsloop_module n in
      List.iter
        (fun domains ->
          List.iter
            (fun schedule ->
              let got = run_k ~schedule ~domains m n in
              Alcotest.(check bool)
                (Printf.sprintf "n=%d domains=%d %s" n domains
                   (Runtime.Schedule.to_string schedule))
                true
                (Array.for_all (fun x -> x = 1.0) got))
            [ Runtime.Schedule.Static
            ; Runtime.Schedule.Dynamic
            ; Runtime.Schedule.Guided
            ])
        [ 1; 2; 3; 4; 5; 6; 7 ])
    [ 5; 64; 101 ]

(* Skewed load: iteration i does i+1 increments of buf[i], so late
   iterations carry almost all the work — the shape where dynamic/guided
   stealing matters.  Every schedule must still produce buf[i] = i+1,
   matching the serial interpreter bit-for-bit. *)
let mk_skewed_module n : Op.op =
  Builder.module_
    [ Builder.func "k"
        [ ("buf", Types.memref Types.F64 [ Some n ]) ]
        (fun params ->
          let buf = params.(0) in
          let s = Builder.Seq.create () in
          let c0 = Builder.Seq.emitv s (Builder.const_int ~dtype:Types.Index 0) in
          let c1 = Builder.Seq.emitv s (Builder.const_int ~dtype:Types.Index 1) in
          let cn = Builder.Seq.emitv s (Builder.const_int ~dtype:Types.Index n) in
          let one =
            Builder.Seq.emitv s (Builder.const_float ~dtype:Types.F64 1.0)
          in
          ignore
            (Builder.Seq.emit s
               (Builder.omp_parallel
                  [ Builder.omp_wsloop ~lbs:[ c0 ] ~ubs:[ cn ] ~steps:[ c1 ]
                      (fun ivs ->
                        let s2 = Builder.Seq.create () in
                        let hi =
                          Builder.Seq.emitv s2
                            (Builder.binop Op.Add ivs.(0) c1)
                        in
                        ignore
                          (Builder.Seq.emit s2
                             (Builder.for_ ~lo:c0 ~hi ~step:c1 (fun _j ->
                                  let s3 = Builder.Seq.create () in
                                  let v =
                                    Builder.Seq.emitv s3
                                      (Builder.load buf [ ivs.(0) ])
                                  in
                                  let v' =
                                    Builder.Seq.emitv s3
                                      (Builder.binop Op.Add v one)
                                  in
                                  ignore
                                    (Builder.Seq.emit s3
                                       (Builder.store v' buf [ ivs.(0) ]));
                                  Builder.Seq.to_list s3)));
                        Builder.Seq.to_list s2)
                  ]));
          Builder.Seq.to_list s)
    ]

let test_dynamic_skewed_load () =
  let n = 97 in
  let m = mk_skewed_module n in
  (* serial interpreter ground truth *)
  let expect =
    let buf = Interp.Mem.alloc_buffer Types.F64 [| n |] in
    ignore (Interp.Eval.run ~team_size:4 m "k" [ Interp.Mem.Buf buf ]);
    Interp.Mem.float_contents buf
  in
  Array.iteri
    (fun i x ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "ground truth buf[%d]" i)
        (float_of_int (i + 1))
        x)
    expect;
  List.iter
    (fun schedule ->
      List.iter
        (fun domains ->
          let got = run_k ~schedule ~domains m n in
          Alcotest.(check bool)
            (Printf.sprintf "skewed %s @ %d domains"
               (Runtime.Schedule.to_string schedule)
               domains)
            true (got = expect))
        [ 2; 4; 8 ])
    [ Runtime.Schedule.Dynamic; Runtime.Schedule.Guided ]

(* --- interpreter team-size plumbing (the Eval.run ?team_size fix) --- *)

(* GPU threads are not an OpenMP team: a wsloop nested inside a
   [scf.parallel Block] region (with a barrier, so the fiber scheduler
   runs it) inside an [omp.parallel] must be executed IN FULL by every
   GPU thread.  With team_size = 3 and 2 GPU threads, every element
   gets 3 * 2 increments; a team-flag leak would chunk the wsloop and
   leave every element at 2. *)
let mk_gpu_in_team_module n : Op.op =
  Builder.module_
    [ Builder.func "k"
        [ ("buf", Types.memref Types.F64 [ Some n ]) ]
        (fun params ->
          let buf = params.(0) in
          let s = Builder.Seq.create () in
          let c0 = Builder.Seq.emitv s (Builder.const_int ~dtype:Types.Index 0) in
          let c1 = Builder.Seq.emitv s (Builder.const_int ~dtype:Types.Index 1) in
          let c2 = Builder.Seq.emitv s (Builder.const_int ~dtype:Types.Index 2) in
          let cn = Builder.Seq.emitv s (Builder.const_int ~dtype:Types.Index n) in
          let one =
            Builder.Seq.emitv s (Builder.const_float ~dtype:Types.F64 1.0)
          in
          ignore
            (Builder.Seq.emit s
               (Builder.omp_parallel
                  [ Builder.parallel Op.Block ~lbs:[ c0 ] ~ubs:[ c2 ]
                      ~steps:[ c1 ] (fun _tids ->
                        [ Builder.omp_wsloop ~lbs:[ c0 ] ~ubs:[ cn ]
                            ~steps:[ c1 ] (fun ivs ->
                              let s2 = Builder.Seq.create () in
                              let v =
                                Builder.Seq.emitv s2
                                  (Builder.load buf [ ivs.(0) ])
                              in
                              let v' =
                                Builder.Seq.emitv s2
                                  (Builder.binop Op.Add v one)
                              in
                              ignore
                                (Builder.Seq.emit s2
                                   (Builder.store v' buf [ ivs.(0) ]));
                              Builder.Seq.to_list s2)
                        ; Builder.barrier ()
                        ])
                  ]));
          Builder.Seq.to_list s)
    ]

let test_interp_gpu_threads_not_a_team () =
  let n = 11 in
  let m = mk_gpu_in_team_module n in
  let buf = Interp.Mem.alloc_buffer Types.F64 [| n |] in
  ignore (Interp.Eval.run ~team_size:3 m "k" [ Interp.Mem.Buf buf ]);
  Array.iteri
    (fun i x ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "buf[%d] = team_size * gpu_threads" i)
        6.0 x)
    (Interp.Mem.float_contents buf)

let test_interp_wsloop_exactly_once () =
  let n = 37 in
  let m = mk_wsloop_module n in
  List.iter
    (fun t ->
      let buf = Interp.Mem.alloc_buffer Types.F64 [| n |] in
      ignore (Interp.Eval.run ~team_size:t m "k" [ Interp.Mem.Buf buf ]);
      Alcotest.(check bool)
        (Printf.sprintf "team_size=%d" t)
        true
        (Array.for_all
           (fun x -> x = 1.0)
           (Interp.Mem.float_contents buf)))
    [ 1; 2; 3; 4; 5; 6; 7 ]

(* The engine must refuse GPU-barrier IR at compile time (the driver
   degrades to the fiber interpreter on this). *)
let test_exec_rejects_gpu_barriers () =
  let m = mk_gpu_in_team_module 4 in
  let rejected =
    match Runtime.Exec.compile m "k" with
    | _ -> false
    | exception Runtime.Exec.Unsupported _ -> true
  in
  Alcotest.(check bool) "Unsupported raised" true rejected

(* --- fault injection through the parallel path --- *)

let mk_barrier_team_module n : Op.op =
  Builder.module_
    [ Builder.func "k"
        [ ("buf", Types.memref Types.F64 [ Some n ]) ]
        (fun params ->
          let buf = params.(0) in
          let s = Builder.Seq.create () in
          let c0 = Builder.Seq.emitv s (Builder.const_int ~dtype:Types.Index 0) in
          let c1 = Builder.Seq.emitv s (Builder.const_int ~dtype:Types.Index 1) in
          let cn = Builder.Seq.emitv s (Builder.const_int ~dtype:Types.Index n) in
          let one =
            Builder.Seq.emitv s (Builder.const_float ~dtype:Types.F64 1.0)
          in
          let incr_loop () =
            Builder.omp_wsloop ~lbs:[ c0 ] ~ubs:[ cn ] ~steps:[ c1 ]
              (fun ivs ->
                let s2 = Builder.Seq.create () in
                let v = Builder.Seq.emitv s2 (Builder.load buf [ ivs.(0) ]) in
                let v' = Builder.Seq.emitv s2 (Builder.binop Op.Add v one) in
                ignore (Builder.Seq.emit s2 (Builder.store v' buf [ ivs.(0) ]));
                Builder.Seq.to_list s2)
          in
          ignore
            (Builder.Seq.emit s
               (Builder.omp_parallel
                  [ incr_loop (); Builder.omp_barrier (); incr_loop () ]));
          Builder.Seq.to_list s)
    ]

let test_inject_fault_parallel () =
  let n = 16 in
  let m = mk_barrier_team_module n in
  let c = Runtime.Exec.compile m "k" in
  List.iter
    (fun domains ->
      let buf = Interp.Mem.alloc_buffer Types.F64 [| n |] in
      let injected =
        match
          Runtime.Exec.run ~domains ~inject_fault:true c
            [ Interp.Mem.Buf buf ]
        with
        | _ -> false
        | exception Runtime.Exec.Injected -> true
      in
      Alcotest.(check bool)
        (Printf.sprintf "Injected surfaces at %d domains" domains)
        true injected;
      (* the poisoned barrier must not wedge the cached pool: a clean
         re-run on the same compiled function still works *)
      let buf2 = Interp.Mem.alloc_buffer Types.F64 [| n |] in
      ignore (Runtime.Exec.run ~domains c [ Interp.Mem.Buf buf2 ]);
      Alcotest.(check bool)
        (Printf.sprintf "clean run after fault at %d domains" domains)
        true
        (Array.for_all
           (fun x -> x = 2.0)
           (Interp.Mem.float_contents buf2)))
    [ 1; 4 ]

(* --- watchdog --- *)

let test_watchdog_unit () =
  let hit = Atomic.make 0 in
  let t =
    Runtime.Watchdog.arm ~timeout_ms:50 ~on_timeout:(fun () ->
        Atomic.incr hit)
  in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while (not (Runtime.Watchdog.fired t)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  Alcotest.(check bool) "armed entry fires" true (Runtime.Watchdog.fired t);
  Alcotest.(check int) "action ran exactly once" 1 (Atomic.get hit);
  let t2 =
    Runtime.Watchdog.arm ~timeout_ms:5000 ~on_timeout:(fun () ->
        Atomic.incr hit)
  in
  Runtime.Watchdog.disarm t2;
  Unix.sleepf 0.05;
  Alcotest.(check bool) "disarmed entry never fires" false
    (Runtime.Watchdog.fired t2);
  Alcotest.(check int) "disarmed action did not run" 1 (Atomic.get hit);
  let rejected =
    match Runtime.Watchdog.arm ~timeout_ms:0 ~on_timeout:(fun () -> ()) with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "timeout_ms <= 0 rejected" true rejected

(* A genuinely non-terminating kernel from the frontend: in[0] starts at
   0.0 and nothing ever writes it, so the while condition holds forever.
   The compiled engine observes the watchdog's cancel flag at while-loop
   back-edges, so the launch must end in Timeout — this is the "no test
   can hang indefinitely" guarantee exercised end-to-end. *)
let infinite_src =
  "__global__ void k(float* out, float* in) {\n\
  \  int t = threadIdx.x;\n\
  \  while (in[0] < 1.0f) { out[t] = out[t] + 1.0f; }\n\
   }\n\
   void launch(float* out, float* in) { k<<<1, 4>>>(out, in); }\n"

let test_watchdog_cancels_infinite_loop () =
  let m = Cudafe.Codegen.compile infinite_src in
  Core.Cpuify.run m;
  ignore (Core.Omp_lower.run m);
  Core.Canonicalize.run m;
  List.iter
    (fun domains ->
      let out = Interp.Mem.alloc_buffer Types.F32 [| 4 |] in
      let inp = Interp.Mem.alloc_buffer Types.F32 [| 4 |] in
      let timed_out =
        match
          Runtime.Exec.run_module ~domains ~timeout_ms:300 m "launch"
            [ Interp.Mem.Buf out; Interp.Mem.Buf inp ]
        with
        | _ -> false
        | exception Runtime.Exec.Timeout ms -> ms = 300
      in
      Alcotest.(check bool)
        (Printf.sprintf "Timeout(300) at %d domains" domains)
        true timed_out)
    [ 1; 4 ]

(* inject_hang parks one rank in a loop only the watchdog's cancel ends;
   the other ranks park at the team barrier, so the timeout path must
   both flip the cancel flag and poison the barrier to unwind everyone.
   Afterwards the poisoned team state must be rebuilt transparently: a
   clean launch of the same compiled function still computes. *)
let test_watchdog_hang_injection () =
  let n = 16 in
  let m = mk_barrier_team_module n in
  let c = Runtime.Exec.compile m "k" in
  let buf = Interp.Mem.alloc_buffer Types.F64 [| n |] in
  let timed_out =
    match
      Runtime.Exec.run ~domains:4 ~inject_hang:true ~timeout_ms:300 c
        [ Interp.Mem.Buf buf ]
    with
    | _ -> false
    | exception Runtime.Exec.Timeout _ -> true
  in
  Alcotest.(check bool) "hang cancelled by the watchdog" true timed_out;
  let buf2 = Interp.Mem.alloc_buffer Types.F64 [| n |] in
  ignore (Runtime.Exec.run ~domains:4 c [ Interp.Mem.Buf buf2 ]);
  Alcotest.(check bool) "clean run after a timeout" true
    (Array.for_all (fun x -> x = 2.0) (Interp.Mem.float_contents buf2))

(* The driver's default bound (60 s) must never fire on real kernels:
   every Rodinia benchmark completes under it at 4 domains with the
   serial interpreter's exact checksum. *)
let test_watchdog_no_false_fire () =
  List.iter
    (fun (b : Rodinia.Bench_def.t) ->
      let m = build_bench b in
      let expect = serial_checksum m b ~team_size:4 in
      let w = b.mk_workload b.test_size in
      ignore
        (Runtime.Exec.run_module ~domains:4 ~timeout_ms:60000 m b.entry
           (Rodinia.Bench_def.args_of_workload w));
      Alcotest.(check (float 0.0))
        (b.name ^ " completes under the default watchdog bound")
        expect
        (Interp.Mem.checksum w.Rodinia.Bench_def.buffers))
    Rodinia.Registry.all

(* One rank raising mid-wsloop at 4 domains: the poison broadcast must
   wake the ranks parked on the barrier condvar promptly.  The generous
   5 s bound guards against a deadlock-until-watchdog regression in the
   wakeup broadcast, not a performance number. *)
let test_poison_wakeup_latency () =
  let n = 64 in
  let m = mk_barrier_team_module n in
  let c = Runtime.Exec.compile m "k" in
  let buf = Interp.Mem.alloc_buffer Types.F64 [| n |] in
  let t0 = Unix.gettimeofday () in
  let injected =
    match
      Runtime.Exec.run ~domains:4 ~inject_fault:true c [ Interp.Mem.Buf buf ]
    with
    | _ -> false
    | exception Runtime.Exec.Injected -> true
  in
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "Injected surfaced" true injected;
  Alcotest.(check bool)
    (Printf.sprintf "all ranks unblocked in %.3f s (bound 5 s)" dt)
    true (dt < 5.0)

(* --- balanced static partition --- *)

(* The partition is defined once, in Interp.Eval.static_chunk;
   Runtime.Schedule delegates to it.  Beyond exactly-once cover (tested
   above), the balanced partition must be contiguous ascending and give
   every rank within one iteration of every other — the old ceil-chunk
   partition left trailing ranks empty (e.g. n=64 size=7: 10,10,10,10,
   10,10,4), which is a tail-imbalance bug, not just an aesthetic one. *)
let test_static_chunk_balanced () =
  List.iter
    (fun n ->
      List.iter
        (fun size ->
          let chunks =
            List.init size (fun rank ->
                Runtime.Schedule.static_chunk ~rank ~size ~n)
          in
          List.iteri
            (fun rank c ->
              Alcotest.(check (pair int int))
                (Printf.sprintf "runtime = interp, n=%d size=%d rank=%d" n
                   size rank)
                (Interp.Eval.static_chunk ~rank ~size ~n)
                c)
            chunks;
          Alcotest.(check bool)
            (Printf.sprintf "cover n=%d size=%d" n size)
            true
            (covers_exactly_once ~n chunks);
          ignore
            (List.fold_left
               (fun prev_hi (lo, hi) ->
                 Alcotest.(check int)
                   (Printf.sprintf "contiguous n=%d size=%d" n size)
                   prev_hi lo;
                 Alcotest.(check bool) "nonnegative length" true (hi >= lo);
                 hi)
               0 chunks);
          let lens = List.map (fun (lo, hi) -> hi - lo) chunks in
          let mx = List.fold_left max 0 lens in
          let mn = List.fold_left min max_int lens in
          Alcotest.(check bool)
            (Printf.sprintf "balanced (max-min<=1) n=%d size=%d" n size)
            true
            (mx - mn <= 1))
        [ 1; 2; 3; 4; 5; 7; 8; 16 ])
    [ 0; 1; 2; 3; 5; 7; 8; 63; 64; 65; 100; 1000 ]

(* --- access paths: compiled strided access vs the interpreter --- *)

(* func @k(buf : memref<rows x cols x f64>) { for i in [lo,hi):
   buf[row][i] <- buf[row][i] + 1.0 } with row/lo/hi baked in as
   constants — exactly the innermost-affine shape the engine compiles to
   a guarded unchecked access path (raw array + hoisted row base).
   In-bounds runs must match the interpreter bit-for-bit; any
   out-of-bounds range must raise Runtime_error from BOTH engines — the
   loop-entry guard may never turn a bounds violation into a silent
   unsafe access. *)
let mk_strided_module ~rows ~cols ~row ~lo ~hi : Op.op =
  Builder.module_
    [ Builder.func "k"
        [ ("buf", Types.memref Types.F64 [ Some rows; Some cols ]) ]
        (fun params ->
          let buf = params.(0) in
          let s = Builder.Seq.create () in
          let ci k =
            Builder.Seq.emitv s (Builder.const_int ~dtype:Types.Index k)
          in
          let crow = ci row in
          let clo = ci lo in
          let chi = ci hi in
          let c1 = ci 1 in
          let one =
            Builder.Seq.emitv s (Builder.const_float ~dtype:Types.F64 1.0)
          in
          ignore
            (Builder.Seq.emit s
               (Builder.for_ ~lo:clo ~hi:chi ~step:c1 (fun i ->
                    let s2 = Builder.Seq.create () in
                    let v =
                      Builder.Seq.emitv s2 (Builder.load buf [ crow; i ])
                    in
                    let v' =
                      Builder.Seq.emitv s2 (Builder.binop Op.Add v one)
                    in
                    ignore
                      (Builder.Seq.emit s2
                         (Builder.store v' buf [ crow; i ]));
                    Builder.Seq.to_list s2)));
          Builder.Seq.to_list s)
    ]

let strided_outcome ~rows ~cols (run : Interp.Mem.buffer -> unit) :
  (float array, string) result =
  let buf =
    Interp.Mem.of_float_array
      ~dims:[| rows; cols |]
      (Array.init (rows * cols) (fun k -> (float_of_int k *. 0.5) +. 0.25))
  in
  match run buf with
  | () -> Ok (Interp.Mem.float_contents buf)
  | exception Interp.Mem.Runtime_error msg -> Error msg

let prop_strided_access =
  let gen =
    QCheck.Gen.(
      int_range 1 4 >>= fun rows ->
      int_range 1 16 >>= fun cols ->
      int_range (-1) rows >>= fun row ->
      int_range (-2) (cols + 2) >>= fun lo ->
      int_range lo (cols + 3) >>= fun hi -> return (rows, cols, row, lo, hi))
  in
  let print (rows, cols, row, lo, hi) =
    Printf.sprintf "rows=%d cols=%d row=%d lo=%d hi=%d" rows cols row lo hi
  in
  QCheck.Test.make ~count:200
    ~name:"compiled strided access = interpreter (incl. OOB)"
    (QCheck.make ~print gen)
    (fun (rows, cols, row, lo, hi) ->
      let m = mk_strided_module ~rows ~cols ~row ~lo ~hi in
      let interp =
        strided_outcome ~rows ~cols (fun b ->
            ignore (Interp.Eval.run m "k" [ Interp.Mem.Buf b ]))
      in
      let engine =
        strided_outcome ~rows ~cols (fun b ->
            ignore (Runtime.Exec.run_module m "k" [ Interp.Mem.Buf b ]))
      in
      match (interp, engine) with
      | Ok a, Ok b -> a = b
      | Error _, Error _ -> true
      | Ok _, Error e ->
        QCheck.Test.fail_reportf "engine raised but interp succeeded: %s" e
      | Error e, Ok _ ->
        QCheck.Test.fail_reportf "interp raised (%s) but engine succeeded" e)

(* Deterministic pin of the same shape against the bounds-checked typed
   accessor API (Mem.lindex + get_f/set_f), so a bug that broke both
   engines identically would still be caught. *)
let test_strided_expected () =
  let rows = 3 and cols = 8 and row = 1 and lo = 2 and hi = 7 in
  let init () =
    Interp.Mem.of_float_array
      ~dims:[| rows; cols |]
      (Array.init (rows * cols) (fun k -> float_of_int k))
  in
  let buf = init () in
  let m = mk_strided_module ~rows ~cols ~row ~lo ~hi in
  ignore (Runtime.Exec.run_module m "k" [ Interp.Mem.Buf buf ]);
  let expect = init () in
  for i = lo to hi - 1 do
    let li = Interp.Mem.lindex expect [| row; i |] in
    Interp.Mem.set_f expect li (Interp.Mem.get_f expect li +. 1.0)
  done;
  Alcotest.(check bool) "unchecked path = Mem.lindex + typed accessors" true
    (Interp.Mem.float_contents buf = Interp.Mem.float_contents expect)

let test_strided_oob_rejected () =
  (* hi one past the row: the loop-entry guard must refuse the unchecked
     path and the checked body must then raise, in both engines *)
  let m = mk_strided_module ~rows:2 ~cols:8 ~row:1 ~lo:0 ~hi:9 in
  let raises run =
    let buf =
      Interp.Mem.of_float_array ~dims:[| 2; 8 |] (Array.make 16 0.0)
    in
    match run buf with
    | () -> false
    | exception Interp.Mem.Runtime_error _ -> true
  in
  Alcotest.(check bool) "interp rejects OOB" true
    (raises (fun b -> ignore (Interp.Eval.run m "k" [ Interp.Mem.Buf b ])));
  Alcotest.(check bool) "engine rejects OOB" true
    (raises (fun b ->
         ignore (Runtime.Exec.run_module m "k" [ Interp.Mem.Buf b ])))

(* --- unbound buffer register: the per-compile sentinel --- *)

let contains_substring ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* Malformed IR (a load from an SSA memref value no op ever defines)
   must die with a located "unbound buffer register" error, not a bounds
   failure on a shared zero-length dummy buffer. *)
let test_unbound_buffer_register () =
  let dangling =
    Value.fresh ~name:"phantom" (Types.memref Types.F64 [ Some 4 ])
  in
  let m =
    Builder.module_
      [ Builder.func "k"
          [ ("buf", Types.memref Types.F64 [ Some 4 ]) ]
          (fun _params ->
            let s = Builder.Seq.create () in
            let c0 =
              Builder.Seq.emitv s (Builder.const_int ~dtype:Types.Index 0)
            in
            ignore (Builder.Seq.emit s (Builder.load dangling [ c0 ]));
            Builder.Seq.to_list s)
      ]
  in
  let buf = Interp.Mem.alloc_buffer Types.F64 [| 4 |] in
  match Runtime.Exec.run_module m "k" [ Interp.Mem.Buf buf ] with
  | _ -> Alcotest.fail "expected Runtime_error on the dangling load"
  | exception Interp.Mem.Runtime_error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "error names the unbound register (got: %s)" msg)
      true
      (contains_substring ~sub:"unbound buffer register" msg)

(* --- launch lifecycle: zero-allocation relaunch, --chunk plumbing --- *)

let test_zero_alloc_relaunch () =
  Runtime.Pool.shutdown_cached ();
  let n = 64 in
  let m = mk_barrier_team_module n in
  let c = Runtime.Exec.compile m "k" in
  let go () =
    let buf = Interp.Mem.alloc_buffer Types.F64 [| n |] in
    let _, st = Runtime.Exec.run ~domains:4 c [ Interp.Mem.Buf buf ] in
    (st, Interp.Mem.float_contents buf)
  in
  let st1, out1 = go () in
  Alcotest.(check bool) "cold run builds entry + team frames (>= 5)" true
    (st1.Runtime.Exec.frames_allocated >= 5);
  Alcotest.(check bool) "cold run grabs chunks" true
    (st1.Runtime.Exec.chunks_grabbed > 0);
  let st2, out2 = go () in
  Alcotest.(check int) "warm relaunch allocates zero frames" 0
    st2.Runtime.Exec.frames_allocated;
  Alcotest.(check int) "warm relaunch spawns zero domains" 0
    st2.Runtime.Exec.domain_spawns;
  Alcotest.(check int) "one team launch per run" 1
    st2.Runtime.Exec.launches;
  Alcotest.(check bool) "the omp.barrier is counted" true
    (st2.Runtime.Exec.barrier_phases >= 1);
  Alcotest.(check bool) "warm result identical" true (out1 = out2);
  Runtime.Pool.shutdown_cached ()

let test_chunk_flag () =
  let n = 101 in
  let m = mk_wsloop_module n in
  List.iter
    (fun chunk ->
      List.iter
        (fun schedule ->
          List.iter
            (fun domains ->
              let buf = Interp.Mem.alloc_buffer Types.F64 [| n |] in
              let _, st =
                Runtime.Exec.run_module ~domains ~schedule ~chunk m "k"
                  [ Interp.Mem.Buf buf ]
              in
              Alcotest.(check bool)
                (Printf.sprintf "chunk=%d %s @ %d domains: exactly once"
                   chunk
                   (Runtime.Schedule.to_string schedule)
                   domains)
                true
                (Array.for_all
                   (fun x -> x = 1.0)
                   (Interp.Mem.float_contents buf));
              (* with an explicit chunk, dynamic grabs are exactly
                 ceil(n/chunk) batches — the contention knob is real *)
              if schedule = Runtime.Schedule.Dynamic && domains > 1 then
                Alcotest.(check int)
                  (Printf.sprintf "dynamic chunk=%d grab count" chunk)
                  ((n + chunk - 1) / chunk)
                  st.Runtime.Exec.chunks_grabbed)
            [ 1; 2; 4 ])
        [ Runtime.Schedule.Static
        ; Runtime.Schedule.Dynamic
        ; Runtime.Schedule.Guided
        ])
    [ 1; 3; 16; 200 ]

(* --- stats: team reuse visible end-to-end --- *)

let test_exec_team_reuse_stats () =
  Runtime.Pool.shutdown_cached ();
  let n = 8 in
  let m = mk_barrier_team_module n in
  let c = Runtime.Exec.compile m "k" in
  let run ~team_reuse =
    let buf = Interp.Mem.alloc_buffer Types.F64 [| n |] in
    let _, st =
      Runtime.Exec.run ~domains:4 ~team_reuse c [ Interp.Mem.Buf buf ]
    in
    st
  in
  let st1 = run ~team_reuse:true in
  Alcotest.(check int) "first run spawns the team" 3
    st1.Runtime.Exec.domain_spawns;
  let st2 = run ~team_reuse:true in
  Alcotest.(check int) "second run reuses it" 0 st2.Runtime.Exec.domain_spawns;
  let st3 = run ~team_reuse:false in
  Alcotest.(check int) "ablation re-spawns per launch" 3
    st3.Runtime.Exec.domain_spawns;
  Alcotest.(check int) "one launch each" 1 st3.Runtime.Exec.launches;
  Runtime.Pool.shutdown_cached ()

let () =
  let rodinia =
    List.map
      (fun (b : Rodinia.Bench_def.t) ->
        Alcotest.test_case b.name `Quick (test_rodinia_differential b))
      Rodinia.Registry.all
  in
  Alcotest.run "runtime"
    [ ("rodinia-differential", rodinia)
    ; ( "barrier",
        [ Alcotest.test_case "contention 8x200" `Quick test_barrier_contention
        ; Alcotest.test_case "poison unblocks" `Quick test_barrier_poison
        ] )
    ; ( "pool",
        [ Alcotest.test_case "team reuse" `Quick test_pool_reuse
        ; Alcotest.test_case "exception propagation" `Quick
            test_pool_exception
        ] )
    ; ( "schedule",
        [ Alcotest.test_case "partition / exactly-once" `Quick
            test_schedule_partition
        ; Alcotest.test_case "static partition balanced + lockstep" `Quick
            test_static_chunk_balanced
        ] )
    ; ( "access-paths",
        [ Alcotest.test_case "strided vs typed accessors" `Quick
            test_strided_expected
        ; Alcotest.test_case "OOB rejected by both engines" `Quick
            test_strided_oob_rejected
        ; QCheck_alcotest.to_alcotest prop_strided_access
        ; Alcotest.test_case "unbound buffer register located error" `Quick
            test_unbound_buffer_register
        ] )
    ; ( "launch-lifecycle",
        [ Alcotest.test_case "zero-allocation relaunch" `Quick
            test_zero_alloc_relaunch
        ; Alcotest.test_case "chunk flag: exactly-once + grab count" `Quick
            test_chunk_flag
        ] )
    ; ( "wsloop",
        [ Alcotest.test_case "exactly-once, all schedules x team sizes"
            `Quick test_wsloop_exactly_once
        ; Alcotest.test_case "dynamic work stealing, skewed load" `Quick
            test_dynamic_skewed_load
        ] )
    ; ( "interp-team-plumbing",
        [ Alcotest.test_case "GPU threads are not a team" `Quick
            test_interp_gpu_threads_not_a_team
        ; Alcotest.test_case "wsloop exactly-once, team sizes 1..7" `Quick
            test_interp_wsloop_exactly_once
        ; Alcotest.test_case "engine rejects GPU barriers" `Quick
            test_exec_rejects_gpu_barriers
        ] )
    ; ( "faults",
        [ Alcotest.test_case "inject through parallel path" `Quick
            test_inject_fault_parallel
        ; Alcotest.test_case "team-reuse stats" `Quick
            test_exec_team_reuse_stats
        ] )
    ; ( "watchdog",
        [ Alcotest.test_case "arm / disarm / fired" `Quick test_watchdog_unit
        ; Alcotest.test_case "infinite while loop cancelled" `Quick
            test_watchdog_cancels_infinite_loop
        ; Alcotest.test_case "hang injection cancelled, team rebuilt" `Quick
            test_watchdog_hang_injection
        ; Alcotest.test_case "no false fire on Rodinia at 60 s" `Quick
            test_watchdog_no_false_fire
        ; Alcotest.test_case "poison wakeup latency at 4 domains" `Quick
            test_poison_wakeup_latency
        ] )
    ]
