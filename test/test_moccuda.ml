(* Tensor / MocCUDA tests: the conv backends agree numerically, the
   transpiled NLL kernel matches the reference loss, the CUDART emulation
   behaves, and the cost model reproduces the Fig.-15 ordering on the
   A64FX machine model. *)

open Tensorlib

let feq = Alcotest.(check (float 1e-4))

let test_gemm_blocked_matches_naive () =
  let a = Tensor.rand 1 [| 13; 17 |] in
  let b = Tensor.rand 2 [| 17; 9 |] in
  let c1 = Tensor.create [| 13; 9 |] in
  let c2 = Tensor.create [| 13; 9 |] in
  Gemm.naive ~a ~b ~c:c1;
  Gemm.blocked ~tile:4 ~a ~b ~c:c2 ();
  Alcotest.(check bool) "identical" true (Tensor.max_abs_diff c1 c2 < 1e-9)

let test_conv_backends_agree () =
  let input = Tensor.rand 3 [| 2; 3; 9; 9 |] in
  let weight = Tensor.rand 4 [| 4; 3; 3; 3 |] in
  List.iter
    (fun p ->
      let reference = Conv.naive ~input ~weight ~p in
      let gemm = Conv.im2col_gemm ~input ~weight ~p in
      Alcotest.(check bool)
        (Printf.sprintf "stride %d pad %d" p.Conv.stride p.Conv.pad)
        true
        (Tensor.max_abs_diff reference gemm < 1e-6))
    [ { Conv.stride = 1; pad = 1 }; { Conv.stride = 2; pad = 1 }
    ; { Conv.stride = 1; pad = 0 } ]

let test_nll_kernel_matches_reference () =
  let n = 20 and classes = 10 in
  let probs = Tensor.rand 7 [| n; classes |] in
  let log_probs =
    Tensor.of_array [| n; classes |]
      (Array.map (fun x -> log (Float.abs x +. 0.1)) probs.Tensor.data)
  in
  let targets = Array.init n (fun i -> (i * 3) mod classes) in
  let expected = Layers.nll_loss ~log_probs ~targets in
  let got = Moccuda.Nll_kernel.forward ~log_probs ~targets in
  feq "loss" expected got;
  (* gradient: -1/n at target positions, 0 elsewhere *)
  let grad = Moccuda.Nll_kernel.backward ~n ~nclasses:classes ~targets in
  for i = 0 to n - 1 do
    for j = 0 to classes - 1 do
      let expect = if j = targets.(i) then -1.0 /. float_of_int n else 0.0 in
      feq (Printf.sprintf "grad[%d][%d]" i j) expect (Tensor.get2 grad i j)
    done
  done

let test_mini_resnet_backends_agree () =
  let m = Moccuda.Resnet.mini_model ~channels:4 in
  let images = Tensor.rand 10 [| 2; 3; 8; 8 |] in
  let targets = [| 3; 7 |] in
  let losses =
    List.map
      (fun b -> Moccuda.Resnet.mini_forward b m ~images ~targets)
      Moccuda.Backends.all
  in
  match losses with
  | reference :: rest ->
    List.iteri
      (fun i l -> feq (Printf.sprintf "backend %d" (i + 1)) reference l)
      rest
  | [] -> assert false

let test_cudart_memory_and_streams () =
  let st = Moccuda.Cudart.create () in
  let _, count = Moccuda.Cudart.cuda_get_device_count st in
  Alcotest.(check int) "one device per NUMA domain" 4 count;
  let _, props = Moccuda.Cudart.cuda_get_device_properties st 0 in
  Alcotest.(check string)
    "props dump" "NVIDIA GeForce RTX 2080 Ti"
    (Option.get props).Moccuda.Cudart.prop_name;
  let err, ptr = Moccuda.Cudart.cuda_malloc st 64 in
  Alcotest.(check bool) "malloc ok" true (err = Moccuda.Cudart.Success);
  let host = Array.init 16 float_of_int in
  let err =
    Moccuda.Cudart.cuda_memcpy st ~dst:(`Device ptr) ~src:(`Host host)
      ~count:64 Moccuda.Cudart.Host_to_device
  in
  Alcotest.(check bool) "h2d ok" true (err = Moccuda.Cudart.Success);
  let back = Array.make 16 0.0 in
  let _ =
    Moccuda.Cudart.cuda_memcpy st ~dst:(`Host back) ~src:(`Device ptr)
      ~count:64 Moccuda.Cudart.Device_to_host
  in
  Alcotest.(check bool) "roundtrip" true (back = host);
  (* stream ordering *)
  let _, sid = Moccuda.Cudart.cuda_stream_create st in
  let log = ref [] in
  ignore (Moccuda.Cudart.enqueue st sid (fun () -> log := 1 :: !log));
  ignore (Moccuda.Cudart.enqueue st sid (fun () -> log := 2 :: !log));
  Alcotest.(check (list int)) "lazy until sync" [] !log;
  ignore (Moccuda.Cudart.cuda_stream_synchronize st sid);
  Alcotest.(check (list int)) "FIFO order" [ 2; 1 ] !log;
  Alcotest.(check bool) "free ok" true
    (Moccuda.Cudart.cuda_free st ptr = Moccuda.Cudart.Success);
  Alcotest.(check bool) "double free rejected" true
    (Moccuda.Cudart.cuda_free st ptr = Moccuda.Cudart.Invalid_value)

(* Fig. 15 shape: on the A64FX model MocCUDA beats tuned oneDNN clearly
   (paper: geomean 2.7x, min 1.2x, max 4.5x), and the native backend is
   far slower than everything. *)
let test_fig15_ordering_on_a64fx () =
  let machine = Runtime.Machine.a64fx in
  List.iter
    (fun batch ->
      let t b = Moccuda.Resnet.throughput b machine ~batch ~threads:12 in
      let moc = t Moccuda.Backends.Moccuda_polygeist in
      let onednn = t Moccuda.Backends.One_dnn in
      let native = t Moccuda.Backends.Native in
      let ratio = moc /. onednn in
      Alcotest.(check bool)
        (Printf.sprintf "batch %d: moc/onednn = %.2f in [1.2, 6]" batch ratio)
        true
        (ratio >= 1.2 && ratio <= 6.0);
      Alcotest.(check bool)
        (Printf.sprintf "batch %d: native slowest (%.1f vs %.1f)" batch native
           onednn)
        true (native < onednn))
    [ 1; 4; 12 ]

let test_expert_close_to_polygeist () =
  let machine = Runtime.Machine.a64fx in
  let t b = Moccuda.Resnet.throughput b machine ~batch:8 ~threads:12 in
  let e = t Moccuda.Backends.Moccuda_expert in
  let p = t Moccuda.Backends.Moccuda_polygeist in
  Alcotest.(check bool)
    (Printf.sprintf "expert %.1f ~ polygeist %.1f" e p)
    true
    (p /. e > 0.85 && p /. e <= 1.0)

let test_resnet50_has_53_convs () =
  (* 1 stem + 3*3+1 + 4*3+1 + 6*3+1 + 3*3+1 = 53 *)
  Alcotest.(check int) "conv count" 53 Moccuda.Resnet.n_convs

(* --- the kernel tier: every tensor op as a transpiled mini-CUDA
   kernel, checked bitwise against the Tensorlib reference at 1 and 4
   domains --- *)

module G = Moccuda.Graph

let csum b = Interp.Mem.checksum [| b |]
let csum_t t = csum (G.buffer_of_tensor t)

(* [build g] returns (feeds, output vid, reference tensor); the kernel
   output must checksum bit-identically to the reference. *)
let kernel_agrees name
    (build :
      G.t -> (G.vid * Interp.Mem.buffer) list * G.vid * Tensor.t) : unit =
  List.iter
    (fun domains ->
      let km = Moccuda.Kmgr.create ~domains () in
      let ar = Moccuda.Arena.create () in
      let g = G.create () in
      let feeds, out, reference = build g in
      match G.run g km ar ~feeds [ out ] with
      | [ b ] ->
        Alcotest.(check bool)
          (Printf.sprintf "%s bitwise at %d domain(s)" name domains)
          true
          (Int64.equal
             (Int64.bits_of_float (csum b))
             (Int64.bits_of_float (csum_t reference)))
      | _ -> assert false)
    [ 1; 4 ]

let feed g t = (G.input g t.Tensor.shape, G.buffer_of_tensor t)

let test_kernel_ops_match_reference () =
  let x4 = Tensor.rand 11 [| 2; 3; 5; 5 |] in
  kernel_agrees "conv2d s1p1" (fun g ->
      let w = Tensor.rand 12 [| 4; 3; 3; 3 |] in
      let p = { Conv.stride = 1; pad = 1 } in
      let xv, xb = feed g x4 and wv, wb = feed g w in
      ( [ (xv, xb); (wv, wb) ]
      , G.conv2d g ~input:xv ~weight:wv ~p
      , Conv.im2col_gemm ~input:x4 ~weight:w ~p ));
  kernel_agrees "conv2d s2p1" (fun g ->
      let w = Tensor.rand 13 [| 5; 3; 3; 3 |] in
      let p = { Conv.stride = 2; pad = 1 } in
      let xv, xb = feed g x4 and wv, wb = feed g w in
      ( [ (xv, xb); (wv, wb) ]
      , G.conv2d g ~input:xv ~weight:wv ~p
      , Conv.im2col_gemm ~input:x4 ~weight:w ~p ));
  kernel_agrees "relu" (fun g ->
      let xv, xb = feed g x4 in
      ([ (xv, xb) ], G.relu g xv, Layers.relu x4));
  kernel_agrees "bias_relu" (fun g ->
      let bias = [| 0.3; -0.1; 0.05 |] in
      let bt = Tensor.of_array [| 3 |] bias in
      let xv, xb = feed g x4 and bv, bb = feed g bt in
      ( [ (xv, xb); (bv, bb) ]
      , G.bias_relu g ~input:xv ~bias:bv
      , Layers.bias_relu ~bias x4 ));
  kernel_agrees "add" (fun g ->
      let y4 = Tensor.rand 14 [| 2; 3; 5; 5 |] in
      let out = Tensor.copy x4 in
      Tensor.add_inplace out y4;
      let xv, xb = feed g x4 and yv, yb = feed g y4 in
      ([ (xv, xb); (yv, yb) ], G.add g xv yv, out));
  kernel_agrees "maxpool 2/2" (fun g ->
      let x = Tensor.rand 15 [| 2; 3; 6; 6 |] in
      let xv, xb = feed g x in
      ( [ (xv, xb) ]
      , G.maxpool g ~size:2 ~stride:2 xv
      , Layers.maxpool ~size:2 ~stride:2 x ));
  kernel_agrees "maxpool 3/2" (fun g ->
      let x = Tensor.rand 16 [| 1; 4; 7; 7 |] in
      let xv, xb = feed g x in
      ( [ (xv, xb) ]
      , G.maxpool g ~size:3 ~stride:2 xv
      , Layers.maxpool ~size:3 ~stride:2 x ));
  kernel_agrees "global avgpool" (fun g ->
      let xv, xb = feed g x4 in
      ([ (xv, xb) ], G.global_avgpool g xv, Layers.avgpool_global x4));
  kernel_agrees "batchnorm" (fun g ->
      let gamma = [| 1.2; 0.8; 1.0 |]
      and beta = [| 0.1; -0.2; 0.0 |]
      and mean = [| 0.05; -0.03; 0.2 |]
      and var = [| 0.9; 1.1; 0.7 |] in
      let arr a = Tensor.of_array [| 3 |] a in
      let xv, xb = feed g x4 in
      let gv, gb = feed g (arr gamma) and bv, bb = feed g (arr beta) in
      let mv, mb = feed g (arr mean) and vv, vb = feed g (arr var) in
      ( [ (xv, xb); (gv, gb); (bv, bb); (mv, mb); (vv, vb) ]
      , G.batchnorm g ~input:xv ~gamma:gv ~beta:bv ~mean:mv ~var:vv
      , Layers.batchnorm ~gamma ~beta ~mean ~var x4 ));
  kernel_agrees "linear" (fun g ->
      let x = Tensor.rand 17 [| 3; 5 |] in
      let w = Tensor.rand 18 [| 4; 5 |] in
      let xv, xb = feed g x and wv, wb = feed g w in
      ( [ (xv, xb); (wv, wb) ]
      , G.linear g ~input:xv ~weight:wv
      , Layers.linear ~weight:w x ));
  kernel_agrees "softmax" (fun g ->
      let x = Tensor.rand 19 [| 4; 7 |] in
      let xv, xb = feed g x in
      ([ (xv, xb) ], G.softmax g xv, Layers.softmax x));
  kernel_agrees "log" (fun g ->
      let x = Layers.softmax (Tensor.rand 20 [| 4; 7 |]) in
      let xv, xb = feed g x in
      ( [ (xv, xb) ]
      , G.log_ g xv
      , Tensor.of_array (Array.copy x.Tensor.shape)
          (Array.map log x.Tensor.data) ))

(* nll yields a scalar, so it gets its own harness. *)
let test_kernel_nll_matches_reference () =
  let n = 6 and classes = 5 in
  let probs = Layers.softmax (Tensor.rand 21 [| n; classes |]) in
  let log_probs =
    Tensor.of_array [| n; classes |] (Array.map log probs.Tensor.data)
  in
  let targets = Array.init n (fun i -> (i * 2) mod classes) in
  let expected = Layers.nll_loss ~log_probs ~targets in
  List.iter
    (fun domains ->
      let km = Moccuda.Kmgr.create ~domains () in
      let ar = Moccuda.Arena.create () in
      let g = G.create () in
      let lv, lb = feed g log_probs in
      let tv = G.input_int g n in
      let loss = G.nll_loss g ~log_probs:lv ~targets:tv in
      match
        G.run g km ar
          ~feeds:[ (lv, lb); (tv, G.buffer_of_ints targets) ]
          [ loss ]
      with
      | [ b ] ->
        Alcotest.(check bool)
          (Printf.sprintf "nll bitwise at %d domain(s)" domains)
          true
          (Int64.equal
             (Int64.bits_of_float (Interp.Mem.get_f b 0))
             (Int64.bits_of_float expected))
      | _ -> assert false)
    [ 1; 4 ]

let expect_graph_error name part (f : unit -> G.vid) =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
  | exception Invalid_argument msg ->
    let contains s sub =
      let n = String.length sub in
      let rec go i =
        i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "%s: %S mentions %S" name msg part)
      true (contains msg part)

let test_graph_shape_errors () =
  let g = G.create () in
  let x = G.input g [| 2; 3; 5; 5 |] in
  let w_bad = G.input g [| 4; 7; 3; 3 |] in
  expect_graph_error "conv2d channel mismatch" "channels" (fun () ->
      G.conv2d g ~input:x ~weight:w_bad ~p:{ Conv.stride = 1; pad = 1 });
  let bias_bad = G.input g [| 5 |] in
  expect_graph_error "bias_relu bias size" "channels" (fun () ->
      G.bias_relu g ~input:x ~bias:bias_bad);
  let y = G.input g [| 2; 3; 4; 4 |] in
  expect_graph_error "add size mismatch" "element count" (fun () ->
      G.add g x y);
  let flat = G.input g [| 2; 15 |] in
  let w_fc = G.input g [| 10; 16 |] in
  expect_graph_error "linear feature mismatch" "features" (fun () ->
      G.linear g ~input:flat ~weight:w_fc);
  let targets = G.input_int g 3 in
  expect_graph_error "nll batch mismatch" "targets" (fun () ->
      G.nll_loss g ~log_probs:flat ~targets);
  expect_graph_error "softmax wants rank 2" "rank" (fun () ->
      G.softmax g x);
  expect_graph_error "maxpool window too large" "window" (fun () ->
      G.maxpool g ~size:9 ~stride:1 x)

(* Kernel-cache discipline: second pass over the same shapes compiles
   nothing; a different shape is a different entry. *)
let test_kernel_cache_reuse () =
  let km = Moccuda.Kmgr.create ~domains:2 () in
  let ar = Moccuda.Arena.create () in
  let run_relu n =
    let g = G.create () in
    let x = Tensor.rand (100 + n) [| n |] in
    let xv, xb = feed g x in
    ignore (G.run g km ar ~feeds:[ (xv, xb) ] [ G.relu g xv ]);
    Moccuda.Arena.reset ar
  in
  run_relu 32;
  let s = Moccuda.Kmgr.stats km in
  Alcotest.(check int) "cold compile" 1 s.Moccuda.Kmgr.compiles;
  run_relu 32;
  let s = Moccuda.Kmgr.stats km in
  Alcotest.(check int) "warm: no recompile" 1 s.Moccuda.Kmgr.compiles;
  Alcotest.(check bool) "warm: cache hit" true (s.Moccuda.Kmgr.hits >= 1);
  run_relu 48;
  let s = Moccuda.Kmgr.stats km in
  Alcotest.(check int) "new shape: new entry" 2 s.Moccuda.Kmgr.compiles;
  Alcotest.(check int) "nothing degraded" 0 s.Moccuda.Kmgr.degraded

let tests =
  [ Alcotest.test_case "blocked gemm = naive" `Quick
      test_gemm_blocked_matches_naive
  ; Alcotest.test_case "conv backends agree" `Quick test_conv_backends_agree
  ; Alcotest.test_case "transpiled NLL kernel" `Quick
      test_nll_kernel_matches_reference
  ; Alcotest.test_case "mini resnet backends agree" `Quick
      test_mini_resnet_backends_agree
  ; Alcotest.test_case "cudart memory and streams" `Quick
      test_cudart_memory_and_streams
  ; Alcotest.test_case "fig15 ordering on a64fx" `Quick
      test_fig15_ordering_on_a64fx
  ; Alcotest.test_case "expert ~ polygeist" `Quick
      test_expert_close_to_polygeist
  ; Alcotest.test_case "resnet50 conv count" `Quick test_resnet50_has_53_convs
  ; Alcotest.test_case "kernel ops match reference" `Quick
      test_kernel_ops_match_reference
  ; Alcotest.test_case "kernel nll matches reference" `Quick
      test_kernel_nll_matches_reference
  ; Alcotest.test_case "graph shape errors" `Quick test_graph_shape_errors
  ; Alcotest.test_case "kernel cache reuse" `Quick test_kernel_cache_reuse
  ]
