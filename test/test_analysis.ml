(* Analysis-layer tests: affine derivation, the per-dimension cross-thread
   verdicts (validated by brute force over small domains), barrier
   interval sets, call effect summaries, and aliasing. *)

open Ir
open Analysis

(* --- affine expression algebra --- *)

let v1 = Value.fresh ~name:"a" (Types.Scalar Types.Index)
let v2 = Value.fresh ~name:"b" (Types.Scalar Types.Index)

let test_affine_algebra () =
  let open Affine in
  let e = add (scale 3 (var v1)) (add (var v2) (const 5)) in
  Alcotest.(check int) "coeff a" 3 (coeff e v1);
  Alcotest.(check int) "coeff b" 1 (coeff e v2);
  Alcotest.(check int) "const" 5 e.const;
  let z = sub e e in
  Alcotest.(check bool) "x - x = 0" true (is_const z && z.const = 0);
  Alcotest.(check bool) "equal reflexive" true (equal e e);
  Alcotest.(check bool) "scale 0" true (is_const (scale 0 e))

(* Brute-force validation of [compare_dim]: enumerate two affine
   expressions over one thread iv (domain 0..7) plus one shared symbol
   (domain 0..3), and check the verdict against exhaustive evaluation. *)
let test_compare_dim_brute_force =
  QCheck.Test.make ~name:"compare_dim agrees with brute force" ~count:500
    QCheck.(
      tup4
        (pair (int_range (-3) 3) (int_range (-3) 3)) (* tid coeffs *)
        (pair (int_range (-2) 2) (int_range (-2) 2)) (* sym coeffs *)
        (pair (int_range (-4) 4) (int_range (-4) 4)) (* consts *)
        unit)
    (fun ((ca, cb), (sa, sb), (ka, kb), ()) ->
      let tid = Value.fresh ~name:"t" (Types.Scalar Types.Index) in
      let sym = Value.fresh ~name:"s" (Types.Scalar Types.Index) in
      let open Affine in
      let mk c s k = add (scale c (var tid)) (add (scale s (var sym)) (const k)) in
      let ea = mk ca sa ka and eb = mk cb sb kb in
      let tids = Value.Set.singleton tid in
      let verdict = compare_dim ~tids ea eb in
      (* brute force: can the two expressions be equal with t1 <> t2 under
         some shared symbol value?  and does equality force t1 = t2? *)
      let eval c s k t sv = (c * t) + (s * sv) + k in
      let can_equal_diff = ref false in
      let equal_forces_t = ref true in
      for sv = 0 to 3 do
        for t1 = 0 to 7 do
          for t2 = 0 to 7 do
            if eval ca sa ka t1 sv = eval cb sb kb t2 sv then begin
              if t1 <> t2 then can_equal_diff := true;
              if t1 <> t2 then equal_forces_t := false
            end
          done
        done
      done;
      match verdict with
      | Disjoint ->
        (* claims never equal under ANY valuation: check none found (also
           with equal threads) *)
        let any_equal = ref false in
        for sv = 0 to 3 do
          for t = 0 to 7 do
            if eval ca sa ka t sv = eval cb sb kb t sv then any_equal := true
          done
        done;
        (* Disjoint must at least rule out the cross-thread case *)
        (not !can_equal_diff) && not !any_equal
      | Forces s when Value.Set.mem tid s ->
        (* claims cross-thread equality impossible *)
        !equal_forces_t
      | Forces _ | Maybe -> true (* conservative answers are always sound *))

(* --- effects / barrier intervals on a concrete kernel --- *)

let build_kernel src =
  let m = Cudafe.Codegen.compile src in
  Core.Canonicalize.run m;
  Core.Cse.run m;
  ignore (Core.Mem2reg.run m);
  Core.Canonicalize.run m;
  m

let find_block_par m =
  let found = ref None in
  Op.iter
    (fun o -> if o.Op.kind = Op.Parallel Op.Block then found := Some o)
    m;
  Option.get !found

let find_barriers m =
  let acc = ref [] in
  Op.iter (fun o -> if o.Op.kind = Op.Barrier then acc := o :: !acc) m;
  List.rev !acc

let test_barrier_intervals_stop_at_barriers () =
  let m =
    build_kernel
      {|
__global__ void k(float* a, float* b, float* c) {
  int t = threadIdx.x;
  a[t] = 1.0f;
  __syncthreads();
  b[t] = 2.0f;
  __syncthreads();
  c[t] = 3.0f;
}
void launch(float* a, float* b, float* c) { k<<<1, 8>>>(a, b, c); }
|}
  in
  let par = find_block_par m in
  let info = Info.build m in
  let ctx = Effects.make_ctx ~modul:m ~par info in
  match find_barriers m with
  | [ b1; b2 ] ->
    let before1, after1 = Effects.barrier_intervals ctx ~par b1 in
    let bases accs =
      List.filter_map (fun (a : Effects.access) -> a.Effects.base) accs
      |> List.map (fun (v : Value.t) -> Option.value ~default:"?" v.Value.name)
      |> List.sort_uniq compare
    in
    Alcotest.(check (list string)) "before b1 touches a" [ "a" ] (bases before1);
    Alcotest.(check (list string)) "after b1 stops at b2" [ "b" ] (bases after1);
    let before2, after2 = Effects.barrier_intervals ctx ~par b2 in
    Alcotest.(check (list string)) "before b2" [ "b" ] (bases before2);
    Alcotest.(check (list string)) "after b2" [ "c" ] (bases after2)
  | l -> Alcotest.failf "expected 2 barriers, got %d" (List.length l)

let test_loop_wrap_included () =
  (* the interval of an in-loop barrier must include the loop entry path:
     the pre-loop write to s2 is visible before the in-loop barrier *)
  let m =
    build_kernel
      {|
__global__ void k(float* s2) {
  int t = threadIdx.x;
  s2[t] = 1.0f;
  for (int i = 0; i < 2; i++) {
    __syncthreads();
  }
}
void launch(float* s2) { k<<<1, 8>>>(s2); }
|}
  in
  let par = find_block_par m in
  let info = Info.build m in
  let ctx = Effects.make_ctx ~modul:m ~par info in
  match find_barriers m with
  | [ b ] ->
    let before, _ = Effects.barrier_intervals ctx ~par b in
    Alcotest.(check bool) "pre-loop write visible" true
      (List.exists
         (fun (a : Effects.access) -> a.Effects.acc_kind = Effects.Write)
         before)
  | l -> Alcotest.failf "expected 1 barrier, got %d" (List.length l)

let test_wrap_around_shifted () =
  (* a write AFTER the in-loop barrier reaches the barrier's before-set
     through the wrap-around path of the next iteration, marked
     [shifted] and with the iv-dependent affine info dropped (the iv is
     not comparable across the iteration boundary) *)
  let m =
    build_kernel
      {|
__global__ void k(float* a) {
  int t = threadIdx.x;
  for (int i = 0; i < 4; i++) {
    __syncthreads();
    a[t + i] = 1.0f;
  }
}
void launch(float* a) { k<<<1, 8>>>(a); }
|}
  in
  let par = find_block_par m in
  let info = Info.build m in
  let ctx = Effects.make_ctx ~modul:m ~par info in
  match find_barriers m with
  | [ b ] ->
    let before, after = Effects.barrier_intervals ctx ~par b in
    let wrapped =
      List.filter
        (fun (a : Effects.access) ->
          a.Effects.shifted && a.Effects.acc_kind = Effects.Write)
        before
    in
    Alcotest.(check bool) "wrap-around write reaches the before set" true
      (wrapped <> []);
    Alcotest.(check bool) "wrapped access drops iv-dependent affine info"
      true
      (List.for_all
         (fun (a : Effects.access) ->
           match a.Effects.idx with
           | Some dims -> List.for_all (fun d -> d = None) dims
           | None -> true)
         wrapped);
    Alcotest.(check bool) "same-iteration write in the after set not shifted"
      true
      (List.exists
         (fun (a : Effects.access) ->
           a.Effects.acc_kind = Effects.Write && not a.Effects.shifted)
         after)
  | l -> Alcotest.failf "expected 1 barrier, got %d" (List.length l)

(* --- call summaries --- *)

let test_call_summaries () =
  let src =
    {|
__device__ float reader(float* p, int n) {
  float s = 0.0f;
  for (int i = 0; i < n; i++) s += p[i];
  return s;
}
__device__ void writer(float* q, float v) { q[0] = v; }
__device__ float chained(float* p, float* q, int n) {
  float s = reader(p, n);
  writer(q, s);
  return s;
}
void dummy(float* p, float* q, int n) {
  float x = chained(p, q, n);
  q[1] = x;
}
|}
  in
  let m = Cudafe.Codegen.compile src in
  let tbl = Effects.new_summaries () in
  let reader_sum = Effects.summarize m tbl "reader" in
  Alcotest.(check bool) "reader only reads param 0" true
    (List.for_all
       (fun (it : Effects.summary_item) ->
         it.Effects.s_kind = Effects.Read && it.Effects.s_param = Some 0)
       reader_sum
     && reader_sum <> []);
  let chained_sum = Effects.summarize m tbl "chained" in
  Alcotest.(check bool) "chained reads p and writes q" true
    (List.exists
       (fun (it : Effects.summary_item) ->
         it.Effects.s_kind = Effects.Read && it.Effects.s_param = Some 0)
       chained_sum
     && List.exists
          (fun (it : Effects.summary_item) ->
            it.Effects.s_kind = Effects.Write && it.Effects.s_param = Some 1)
          chained_sum)

(* --- aliasing --- *)

let test_alias_rules () =
  let src =
    {|
void f(float* p, float* q, int n) {
  float* a = (float*)malloc(n * sizeof(float));
  float* b = (float*)malloc(n * sizeof(float));
  a[0] = p[0];
  b[0] = q[0];
  free(a);
  free(b);
}
|}
  in
  let m = Cudafe.Codegen.compile src in
  let info = Info.build m in
  let f = Option.get (Op.find_func m "f") in
  let params = f.Op.regions.(0).rargs in
  let allocs = ref [] in
  Op.iter
    (fun o -> if o.Op.kind = Op.Alloc then allocs := Op.result o :: !allocs)
    m;
  (match !allocs with
   | [ b; a ] ->
     Alcotest.(check bool) "distinct allocs don't alias" false
       (Effects.bases_may_alias info a b);
     Alcotest.(check bool) "alloc vs param don't alias" false
       (Effects.bases_may_alias info a params.(0));
     Alcotest.(check bool) "distinct params assumed noalias" false
       (Effects.bases_may_alias info params.(0) params.(1));
     Alcotest.(check bool) "same base aliases" true
       (Effects.bases_may_alias info a a)
   | l -> Alcotest.failf "expected 2 allocs, got %d" (List.length l));
  (* Info utilities *)
  let par_of v = Info.defining_op info v in
  Alcotest.(check bool) "param has no defining op" true
    (par_of params.(0) = None)

let test_alias_corner_cases () =
  let src =
    {|
void f(float* p, int n) {
  float* a = (float*)malloc(n * sizeof(float));
  a[0] = p[0];
  free(a);
}
|}
  in
  let m = Cudafe.Codegen.compile src in
  let f = Option.get (Op.find_func m "f") in
  let params = f.Op.regions.(0).rargs in
  let alloc = ref None in
  Op.iter
    (fun o -> if o.Op.kind = Op.Alloc then alloc := Some (Op.result o))
    m;
  let a = Option.get !alloc in
  (* graft a cast of the allocation and an opaque (select-defined) base
     into the function, then rebuild the index: origin must chase the
     cast and give up on the select *)
  let mk_memref name =
    Value.fresh ~name
      (Types.Memref { elem = Types.F32; shape = [ None ]; space = Types.Global })
  in
  let c = mk_memref "cast" in
  let castop = Op.mk (Op.Cast Types.F32) ~operands:[| a |] ~results:[| c |] in
  let cond = Value.fresh ~name:"c" (Types.Scalar Types.I1) in
  let s = mk_memref "sel" in
  let selop =
    Op.mk Op.Select ~operands:[| cond; a; c |] ~results:[| s |]
  in
  f.Op.regions.(0).body <- f.Op.regions.(0).body @ [ castop; selop ];
  let info = Info.build m in
  Alcotest.(check bool) "cast of alloc aliases the alloc" true
    (Effects.bases_may_alias info c a);
  Alcotest.(check bool) "cast of alloc still noalias with a param" false
    (Effects.bases_may_alias info c params.(0));
  Alcotest.(check bool) "select-defined base may alias a param" true
    (Effects.bases_may_alias info s params.(0));
  Alcotest.(check bool) "select-defined base may alias the alloc" true
    (Effects.bases_may_alias info s a);
  (* values with no defining op anywhere behave like distinct parameters *)
  let x1 = mk_memref "x1" and x2 = mk_memref "x2" in
  Alcotest.(check bool) "distinct externals assumed noalias" false
    (Effects.bases_may_alias info x1 x2);
  Alcotest.(check bool) "an external aliases itself" true
    (Effects.bases_may_alias info x1 x1)

let tests =
  [ Alcotest.test_case "affine algebra" `Quick test_affine_algebra
  ; QCheck_alcotest.to_alcotest test_compare_dim_brute_force
  ; Alcotest.test_case "barrier intervals stop at barriers" `Quick
      test_barrier_intervals_stop_at_barriers
  ; Alcotest.test_case "loop entry path included" `Quick
      test_loop_wrap_included
  ; Alcotest.test_case "wrap-around accesses are shifted" `Quick
      test_wrap_around_shifted
  ; Alcotest.test_case "call summaries" `Quick test_call_summaries
  ; Alcotest.test_case "alias rules" `Quick test_alias_rules
  ; Alcotest.test_case "alias corner cases" `Quick test_alias_corner_cases
  ]
