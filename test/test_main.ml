let () =
  Alcotest.run "polygeist-cpu"
    [ ("ir", Test_ir.tests)
    ; ("frontend", Test_frontend.tests)
    ; ("interp", Test_interp.tests)
    ; ("transforms", Test_transforms.tests)
    ; ("omp", Test_omp.tests)
    ; ("rodinia", Test_rodinia.tests)
    ; ("moccuda", Test_moccuda.tests)
    ; ("random", Test_random.tests)
    ; ("analysis", Test_analysis.tests)
    ; ("check", Test_check.tests)
    ; ("mhp", Test_mhp.tests)
    ; ("passmgr", Test_passmgr.tests)
    ; ("serve", Test_serve.tests)
    ]
