(* Property-based differential testing: randomly generated (race-free by
   construction) CUDA kernels with shared memory, barriers, thread guards
   and small serial loops must produce identical results under

   - original GPU semantics,
   - the full optimization + barrier-lowering + OpenMP pipeline,
   - the MCUDA-style baseline lowering,

   for several OpenMP team sizes.  Phases alternate between per-thread
   statements (race-free without synchronization) and cross-thread reads
   guarded by an explicit __syncthreads, so every generated program is
   deterministic and the comparison is exact. *)

let nthreads = 8

(* One per-thread statement: reads/writes only index [t] of shared arrays
   (plus the input), so it is race-free within a phase. *)
let per_thread_stmt rng =
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let dst = pick [ "s1"; "s2" ] in
  let src = pick [ "s1"; "s2" ] in
  let c = 1 + Random.State.int rng 5 in
  pick
    [ Printf.sprintf "%s[t] = %s[t] + %d.0f;" dst src c
    ; Printf.sprintf "%s[t] = %s[t] * 0.%df + in[b * %d + t];" dst src c
        nthreads
    ; Printf.sprintf "%s[t] = in[b * %d + t] - %s[t];" dst nthreads src
    ; Printf.sprintf "if (t < %d) { %s[t] = %s[t] + 1.0f; }"
        (1 + Random.State.int rng (nthreads - 1))
        dst dst
    ; (* only the thread's own slot: reading another thread's slot here
         would race with its write in the same barrier interval *)
      Printf.sprintf "if (t == 0) { %s[0] = %s[0] * 2.0f; }" dst src
    ]

(* A cross-thread phase: each thread reads a rotated index of one array
   and writes the other.  The read races with any same-interval write to
   the source array, so the whole phase is fenced by barriers on both
   sides. *)
let cross_thread_phase rng =
  let k = 1 + Random.State.int rng (nthreads - 1) in
  let a, b = if Random.State.bool rng then ("s1", "s2") else ("s2", "s1") in
  Printf.sprintf
    "__syncthreads();\n  %s[t] = %s[(t + %d) %% %d] * 0.5f;\n  __syncthreads();"
    a b k nthreads

let loop_phase rng =
  let trips = 1 + Random.State.int rng 3 in
  let body = per_thread_stmt rng in
  let sync = if Random.State.bool rng then "\n    __syncthreads();" else "" in
  Printf.sprintf "for (int i = 0; i < %d; i++) {\n    %s%s\n  }" trips body
    sync

let gen_kernel seed =
  let rng = Random.State.make [| seed |] in
  let n_phases = 3 + Random.State.int rng 5 in
  let phases =
    List.init n_phases (fun _ ->
        match Random.State.int rng 4 with
        | 0 | 1 -> per_thread_stmt rng
        | 2 -> cross_thread_phase rng
        | _ -> loop_phase rng)
  in
  Printf.sprintf
    {|
__global__ void k(float* out, float* in) {
  __shared__ float s1[%d];
  __shared__ float s2[%d];
  int t = threadIdx.x;
  int b = blockIdx.x;
  s1[t] = in[b * %d + t];
  s2[t] = 0.0f;
  __syncthreads();
  %s
  __syncthreads();
  out[b * %d + t] = s1[t] + s2[t];
}
void launch(float* out, float* in) { k<<<2, %d>>>(out, in); }
|}
    nthreads nthreads nthreads
    (String.concat "\n  " phases)
    nthreads nthreads

let checksum ?(team_size = 3) m =
  let n = 2 * nthreads in
  let inp =
    Interp.Mem.of_float_array
      (Array.init n (fun i -> float_of_int ((i * 7 mod 11) + 1) /. 3.0))
  in
  let out = Interp.Mem.of_float_array (Array.make n 0.0) in
  let _ =
    Interp.Eval.run ~team_size m "launch"
      [ Interp.Mem.Buf out; Interp.Mem.Buf inp ]
  in
  Interp.Mem.float_contents out

let arrays_close a b =
  Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-4) a b

let differential_property transform seed =
  let src = gen_kernel seed in
  let reference = checksum (Cudafe.Codegen.compile src) in
  let m = Cudafe.Codegen.compile src in
  transform m;
  (match Ir.Verifier.verify_result m with
   | Ok () -> ()
   | Error e ->
     QCheck.Test.fail_reportf "seed %d: lowered IR does not verify: %s\n%s"
       seed e src);
  List.for_all
    (fun ts ->
      let got = checksum ~team_size:ts m in
      arrays_close reference got
      ||
      QCheck.Test.fail_reportf
        "seed %d (team %d): results differ\nsource:\n%s" seed ts src)
    [ 1; 4; 5 ]

let test_pipeline =
  QCheck.Test.make ~name:"random kernels: full pipeline differential"
    ~count:60 QCheck.small_nat
    (differential_property (fun m ->
         Core.Cpuify.pipeline m;
         ignore (Core.Omp_lower.run m);
         Core.Canonicalize.run m))

let test_pipeline_inner_par =
  QCheck.Test.make ~name:"random kernels: inner-parallel differential"
    ~count:30 QCheck.small_nat
    (differential_property (fun m ->
         Core.Cpuify.pipeline m;
         ignore (Core.Omp_lower.run ~options:Core.Omp_lower.inner_par_options m);
         Core.Canonicalize.run m))

let test_mcuda =
  QCheck.Test.make ~name:"random kernels: MCUDA baseline differential"
    ~count:30 QCheck.small_nat
    (differential_property Mcuda.lower)

let test_affine_unroll =
  QCheck.Test.make ~name:"random kernels: affine unroll differential"
    ~count:30 QCheck.small_nat
    (differential_property (fun m ->
         ignore (Core.Affine_opt.run m);
         Core.Cpuify.pipeline m;
         ignore (Core.Omp_lower.run m);
         Core.Canonicalize.run m))

(* Random fault plans through the fault-tolerant pass manager: whatever
   the plan takes down, the pipeline must recover via the degradation
   ladder and the degraded module must still match the original GPU
   semantics exactly.

   The plan is part of the QCheck input (not regrown from the seed
   inside the property), so a failing case SHRINKS: QCheck drops plan
   entries one at a time, simplifies kinds toward Raise and shrinks the
   kernel seed, and the counterexample prints as the smallest
   (seed, plan) pair that still breaks. *)
let arb_seeded_plan =
  let gen =
    QCheck.Gen.(
      small_nat >>= fun seed ->
      list_size (int_range 1 3)
        (pair
           (oneofl (Core.Cpuify.stage_names ()))
           (oneofl Core.Fault.[ Raise; Corrupt; Exhaust; Hang ]))
      >>= fun plan -> return (seed, plan))
  in
  let print (seed, plan) =
    Printf.sprintf "seed=%d plan=%s" seed (Core.Fault.plan_to_string plan)
  in
  let shrink (seed, plan) yield =
    let rec drops pre = function
      | [] -> ()
      | e :: rest ->
        yield (seed, List.rev_append pre rest);
        drops (e :: pre) rest
    in
    drops [] plan;
    List.iteri
      (fun i (s, k) ->
        if k <> Core.Fault.Raise then
          yield
            ( seed
            , List.mapi
                (fun j e -> if j = i then (s, Core.Fault.Raise) else e)
                plan ))
      plan;
    QCheck.Shrink.int seed (fun seed' -> yield (seed', plan))
  in
  QCheck.make ~print ~shrink gen

let test_faulted_passmgr =
  QCheck.Test.make ~name:"random kernels: seeded-fault pass-manager differential"
    ~count:40 arb_seeded_plan (fun (seed, faults) ->
      let src = gen_kernel seed in
      let reference = checksum (Cudafe.Codegen.compile src) in
      let m = Cudafe.Codegen.compile src in
      (match Core.Passmgr.run_pipeline ~faults m with
       | Ok _ -> ()
       | Error (_, f) ->
         QCheck.Test.fail_reportf "seed %d: unrecoverable under plan %s: %s\n%s"
           seed
           (Core.Fault.plan_to_string faults)
           (Core.Passmgr.failure_to_string f)
           src);
      ignore (Core.Omp_lower.run m);
      Core.Canonicalize.run m;
      (match Ir.Verifier.verify_result m with
       | Ok () -> ()
       | Error e ->
         QCheck.Test.fail_reportf
           "seed %d: degraded IR does not verify under plan %s: %s\n%s" seed
           (Core.Fault.plan_to_string faults)
           e src);
      List.for_all
        (fun ts ->
          let got = checksum ~team_size:ts m in
          arrays_close reference got
          ||
          QCheck.Test.fail_reportf
            "seed %d (team %d, plan %s): results differ\nsource:\n%s" seed ts
            (Core.Fault.plan_to_string faults)
            src)
        [ 1; 4; 5 ])

(* Min-cut sanity on random SSA graphs: the cut never exceeds the number
   of sinks or sources (either side is a trivial cut). *)
let test_mincut_bound =
  QCheck.Test.make ~name:"mincut: flow bounded by trivial cuts" ~count:100
    QCheck.(pair small_nat small_nat)
    (fun (seed, extra) ->
      let rng = Random.State.make [| seed; extra |] in
      let n = 2 + Random.State.int rng 12 in
      (* node-split graph: 2n + s + t *)
      let g = Core.Mincut.create ~nnodes:((2 * n) + 2) in
      let s = 2 * n and t = (2 * n) + 1 in
      let sources = ref 0 and sinks = ref 0 in
      for i = 0 to n - 1 do
        Core.Mincut.add_edge g (2 * i) ((2 * i) + 1) ~cap:1;
        if Random.State.int rng 3 = 0 then begin
          incr sources;
          Core.Mincut.add_edge g s (2 * i) ~cap:Core.Mincut.inf
        end;
        if Random.State.int rng 3 = 0 then begin
          incr sinks;
          Core.Mincut.add_edge g ((2 * i) + 1) t ~cap:Core.Mincut.inf
        end;
        (* forward edges to later nodes *)
        for j = i + 1 to n - 1 do
          if Random.State.int rng 4 = 0 then
            Core.Mincut.add_edge g ((2 * i) + 1) (2 * j) ~cap:Core.Mincut.inf
        done
      done;
      let flow = Core.Mincut.max_flow g ~s ~t in
      flow <= min !sources !sinks || flow <= n)

let tests =
  List.map QCheck_alcotest.to_alcotest
    [ test_pipeline; test_pipeline_inner_par; test_mcuda; test_affine_unroll
    ; test_faulted_passmgr; test_mincut_bound
    ]
