(* The chaos campaign smoke test (wired into `dune runtest` via the
   @chaos-smoke alias).  The CLI driver's path arrives as argv(1).

   1. In-process campaign: the fixed-seed schedule from Serve.Chaos —
      clean jobs, serve:* fault jobs, executor wedges and crashes, and
      admission bursts past the queue cap — against a 4-executor fleet
      with the cache journal and in-flight journal attached.  The
      campaign's own invariants (every accepted ticket answered, clean
      checksums bit-identical to the one-shot oracle, wedges detected,
      journal replay verified) must all hold, and the schedule must
      have met its volume floors: >= 100 jobs submitted, >= 20 faults,
      >= 2 wedges.

   2. Hard-restart leg: spawn `polygeist-cpu serve --cache-dir`,
      complete one clean job (its artifact is journaled), park an
      executor:hang job in flight, SIGKILL the daemon mid-flight, and
      restart it on the same state dir.  The restart must (a) report
      exactly the parked ticket as lost via the in-flight journal,
      (b) replay the cache journal so the clean job's checksum is
      bit-identical across the kill, and (c) drain cleanly. *)

let failures = ref 0

let fail fmt =
  incr failures;
  Printf.printf fmt

let sh cmd = Sys.command cmd
let slurp path = In_channel.with_open_text path In_channel.input_all

let contains (hay : string) (needle : string) : bool =
  let n = String.length needle and l = String.length hay in
  let rec scan i = i + n <= l && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

let fresh_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  d

(* --- part 1: the in-process campaign --- *)

let campaign () =
  let state_dir = fresh_dir "chaos_state" in
  let crash_dir = fresh_dir "chaos_crash" in
  let cfg =
    { Serve.Chaos.default_config with
      state_dir = Some state_dir
    ; crash_dir = Some crash_dir
    }
  in
  let r = Serve.Chaos.run cfg in
  print_string (Serve.Chaos.report_to_string r);
  List.iter (fun v -> fail "campaign: invariant violated: %s\n" v)
    r.Serve.Chaos.violations;
  if r.Serve.Chaos.submitted < 100 then
    fail "campaign: only %d jobs submitted, want >= 100\n"
      r.Serve.Chaos.submitted;
  if r.Serve.Chaos.faults_injected < 20 then
    fail "campaign: only %d faults injected, want >= 20\n"
      r.Serve.Chaos.faults_injected;
  if r.Serve.Chaos.wedges_injected < 2 then
    fail "campaign: only %d wedges injected, want >= 2\n"
      r.Serve.Chaos.wedges_injected;
  if r.Serve.Chaos.executor_kills < 2 then
    fail "campaign: only %d executor kills, want >= 2\n"
      r.Serve.Chaos.executor_kills;
  if r.Serve.Chaos.accepted + r.Serve.Chaos.overloaded
     <> r.Serve.Chaos.submitted
  then
    fail "campaign: %d accepted + %d overloaded != %d submitted\n"
      r.Serve.Chaos.accepted r.Serve.Chaos.overloaded r.Serve.Chaos.submitted;
  (* determinism: the same seed must produce the same schedule *)
  let again = Serve.Chaos.run { cfg with state_dir = None; crash_dir = None } in
  if
    again.Serve.Chaos.submitted <> r.Serve.Chaos.submitted
    || again.Serve.Chaos.faults_injected <> r.Serve.Chaos.faults_injected
    || again.Serve.Chaos.wedges_injected <> r.Serve.Chaos.wedges_injected
  then
    fail "campaign: seed %d is not a reproducer (schedules differ)\n"
      cfg.Serve.Chaos.seed;
  List.iter (fun v -> fail "campaign rerun: invariant violated: %s\n" v)
    again.Serve.Chaos.violations

(* --- part 2: SIGKILL and restart on the same state dir --- *)

let saxpy_src =
  {|__global__ void saxpy(float* x, float* y, int n) {
  int i = blockIdx.x * 64 + threadIdx.x;
  if (i < n) y[i] = 2.0f * x[i] + y[i];
}
void run(float* x, float* y, int n) {
  saxpy<<<(n + 63) / 64, 64>>>(x, y, n);
}
|}

let checksum_line out =
  String.split_on_char '\n' out
  |> List.find_opt (fun l ->
      String.length l >= 15 && String.sub l 0 15 = "output checksum")

let hard_restart (driver : string) =
  let socket = Filename.temp_file "chaos_smoke" ".sock" in
  Sys.remove socket;
  let cache_dir = fresh_dir "chaos_cache" in
  let cu = Filename.temp_file "chaos_smoke" ".cu" in
  Out_channel.with_open_text cu (fun oc ->
      Out_channel.output_string oc saxpy_src);
  let spawn log =
    let fd =
      Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    in
    let pid =
      Unix.create_process driver
        [| driver
         ; "serve"
         ; "--socket"
         ; socket
         ; "--cache-dir"
         ; cache_dir
         ; "--executors"
         ; "2"
         ; "--deadline-ms"
         ; "2000"
        |]
        Unix.stdin fd fd
    in
    Unix.close fd;
    pid
  in
  let tmp = Filename.temp_file "chaos_smoke" ".out" in
  let client args =
    let code =
      sh
        (Printf.sprintf "%s client --socket %s %s > %s 2>/dev/null"
           (Filename.quote driver) (Filename.quote socket) args
           (Filename.quote tmp))
    in
    (code, slurp tmp)
  in
  let job_args =
    Printf.sprintf "%s --run run --size 128 --exec interp --domains 2"
      (Filename.quote cu)
  in
  let log1 = Filename.temp_file "chaos_smoke" ".log" in
  let pid = spawn log1 in
  if not (Serve.Client.wait_ready ~socket ~timeout_ms:10_000) then begin
    fail "restart: daemon never became ready\n";
    try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()
  end
  else begin
    (* one clean job completes: its artifact reaches the cache journal
       (fsynced on store) and its ticket gets an E record *)
    let pre_code, pre_out = client job_args in
    if pre_code <> 0 then fail "restart: pre-kill job exited %d\n" pre_code;
    let pre_ck = checksum_line pre_out in
    if pre_ck = None then fail "restart: pre-kill job printed no checksum\n";
    (* park a wedged job in flight: executor:hang never returns, so its
       S record has no E when the SIGKILL lands *)
    let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    let cpid =
      Unix.create_process driver
        [| driver
         ; "client"
         ; "--socket"
         ; socket
         ; cu
         ; "--run"
         ; "run"
         ; "--size"
         ; "128"
         ; "--exec"
         ; "interp"
         ; "--domains"
         ; "2"
         ; "--inject-fault"
         ; "executor:hang"
        |]
        Unix.stdin devnull devnull
    in
    Unix.close devnull;
    Unix.sleepf 0.6 (* let the hang job be admitted and journaled *);
    Unix.kill pid Sys.sigkill;
    ignore (Unix.waitpid [] pid);
    ignore (Unix.waitpid [] cpid) (* EOF'd client; just reap it *);
    (* restart on the same state dir *)
    let log2 = Filename.temp_file "chaos_smoke" ".log" in
    let pid2 = spawn log2 in
    if not (Serve.Client.wait_ready ~socket ~timeout_ms:10_000) then begin
      fail "restart: daemon never came back after SIGKILL\n";
      try Unix.kill pid2 Sys.sigkill with Unix.Unix_error _ -> ()
    end
    else begin
      (* (b) the cache journal replayed: the same job must come back
         bit-identical across process death *)
      let post_code, post_out = client job_args in
      if post_code <> 0 then
        fail "restart: post-kill job exited %d\n" post_code;
      if checksum_line post_out <> pre_ck then
        fail "restart: checksum changed across SIGKILL+restart\n";
      let sd_code, _ = client "--shutdown" in
      if sd_code <> 0 then fail "restart: --shutdown exited %d\n" sd_code;
      let _, status = Unix.waitpid [] pid2 in
      (match status with
       | Unix.WEXITED 0 -> ()
       | Unix.WEXITED n -> fail "restart: daemon exited %d after drain\n" n
       | Unix.WSIGNALED n | Unix.WSTOPPED n ->
         fail "restart: daemon killed/stopped by signal %d\n" n);
      (* (a) the in-flight journal named the lost ticket *)
      let banner = slurp log2 in
      if not (contains banner "previous run died with 1 job(s) in flight")
      then
        fail
          "restart: recovery banner missing or wrong (want exactly 1 lost \
           job); daemon said:\n%s\n"
          banner;
      Printf.printf
        "chaos restart: SIGKILL mid-flight, journal reported the lost \
         ticket, cache replay bit-identical, clean drain\n"
    end
  end

let () =
  let driver =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else "../bin/polygeist_cpu.exe"
  in
  campaign ();
  hard_restart driver;
  if !failures > 0 then begin
    Printf.printf "chaos smoke: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "chaos smoke: all checks passed"
