(* The serve fault matrix and smoke test (wired into `dune runtest` via
   the @serve-smoke alias).  The CLI driver's path arrives as argv(1).

   1. In-process fault matrix: drive the daemon core through 100
      poisoned jobs (cycling serve:raise / serve:corrupt /
      serve:exhaust / serve:hang) interleaved with 100 clean jobs.
      The daemon must survive all of them, every clean job must
      produce the same checksum, every poisoned job must recover on
      retry to that same checksum, and each poisoned job must leave
      exactly one replayable rung="serve" crash bundle.

   2. Cross-process smoke: spawn `polygeist-cpu serve` on a Unix
      socket, replay a mixed hot/cold job list with two injected
      serve:* faults through `polygeist-cpu client`, and check that
      cache hits are bit-identical to the cold results and that exit
      codes and checksums match the equivalent one-shot CLI runs.
      Finally drain the daemon with --shutdown and --replay one of the
      serve bundles it wrote. *)

let failures = ref 0

let fail fmt =
  incr failures;
  Printf.printf fmt

let sh cmd = Sys.command cmd

let reduce_src =
  {|__global__ void reduce(float* in, float* out, int n) {
  __shared__ float buf[64];
  int t = threadIdx.x;
  int i = blockIdx.x * 64 + t;
  if (i < n) buf[t] = in[i];
  else buf[t] = 0.0f;
  __syncthreads();
  for (int s = 32; s > 0; s = s / 2) {
    if (t < s) buf[t] = buf[t] + buf[t + s];
    __syncthreads();
  }
  if (t == 0) out[blockIdx.x] = buf[0];
}
void run(float* in, float* out, int n) {
  reduce<<<(n + 63) / 64, 64>>>(in, out, n);
}
|}

(* a second source so the cold/hot replay has more than one cache key *)
let saxpy_src =
  {|__global__ void saxpy(float* x, float* y, int n) {
  int i = blockIdx.x * 64 + threadIdx.x;
  if (i < n) y[i] = 2.0f * x[i] + y[i];
}
void run(float* x, float* y, int n) {
  saxpy<<<(n + 63) / 64, 64>>>(x, y, n);
}
|}

let fresh_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  d

let mk_job ?(faults = "") ?(exec = "interp") source =
  { Serve.Proto.source
  ; entry = Some "run"
  ; sizes = [ 128 ]
  ; mode = "inner-serial"
  ; exec
  ; domains = 2
  ; schedule = "static"
  ; faults
  }

(* --- part 1: the in-process fault matrix --- *)

let matrix () =
  let crash_dir = fresh_dir "serve_smoke_crash" in
  let t =
    Serve.Server.create
      { Serve.Server.queue_cap = 8
      ; cache_dir = None
      ; executors = 1 (* legacy shape: the fleet must be bit-compatible *)
      ; executor_deadline_ms = 0
      ; sup =
          { Serve.Supervisor.default_config with
            deadline_ms = 250 (* short: serve:hang burns one deadline *)
          ; crash_dir = Some crash_dir
          ; backoff =
              { Serve.Backoff.default with base_ms = 1; cap_ms = 5 }
          }
      }
  in
  let run job =
    match Serve.Server.run t job with
    | Serve.Proto.Done o -> o
    | Serve.Proto.Overloaded _ | Serve.Proto.Rejected _ ->
      fail "matrix: synchronous submit rejected\n";
      { Serve.Proto.exit_code = 2; checksum = "-"; cached = false
      ; retries = 0; breaker = false; log = "" }
  in
  let reference = run (mk_job reduce_src) in
  if reference.Serve.Proto.exit_code <> 0 then
    fail "matrix: reference job exited %d, want 0\n"
      reference.Serve.Proto.exit_code;
  let ck = reference.Serve.Proto.checksum in
  let kinds = [| "raise"; "corrupt"; "exhaust"; "hang" |] in
  let poisoned = 100 in
  for i = 0 to poisoned - 1 do
    (* poisoned job: must recover on retry to the clean checksum *)
    let kind = kinds.(i mod 4) in
    (* alternate executors so the matrix covers the pool fault wall *)
    let exec = if i mod 2 = 0 then "interp" else "parallel" in
    let o = run (mk_job ~faults:("serve:" ^ kind) ~exec reduce_src) in
    if o.Serve.Proto.exit_code <> 0 then
      fail "matrix: poisoned job %d (serve:%s, %s) exited %d, want 0\n" i kind
        exec o.Serve.Proto.exit_code;
    if o.Serve.Proto.retries <> 1 then
      fail "matrix: poisoned job %d (serve:%s) took %d retries, want 1\n" i
        kind o.Serve.Proto.retries;
    if o.Serve.Proto.checksum <> ck then
      fail "matrix: poisoned job %d (serve:%s) checksum %s, want %s\n" i kind
        o.Serve.Proto.checksum ck;
    if o.Serve.Proto.cached then
      fail "matrix: poisoned job %d served from cache\n" i;
    (* interleaved clean job: bit-identical, and a cache hit after the
       first of each executor flavor *)
    let c = run (mk_job ~exec reduce_src) in
    if c.Serve.Proto.exit_code <> 0 then
      fail "matrix: clean job %d exited %d, want 0\n" i
        c.Serve.Proto.exit_code;
    if c.Serve.Proto.checksum <> ck then
      fail "matrix: clean job %d checksum %s, want %s\n" i
        c.Serve.Proto.checksum ck;
    if i > 1 && not c.Serve.Proto.cached then
      fail "matrix: clean job %d missed the cache\n" i
  done;
  let s = Serve.Server.agg_stats t in
  let bundles = Array.length (Sys.readdir crash_dir) in
  if bundles <> poisoned then
    fail "matrix: %d poisoned jobs left %d crash bundles, want exactly one \
          each\n"
      poisoned bundles;
  if s.Serve.Supervisor.failed <> 0 then
    fail "matrix: %d jobs failed outright, want 0\n" s.Serve.Supervisor.failed;
  Serve.Server.drain t;
  Printf.printf
    "serve matrix: %d poisoned + %d clean jobs, %d retries, %d bundles, %d \
     pool rebuilds, daemon alive throughout\n"
    poisoned (poisoned + 1) s.Serve.Supervisor.retries bundles
    s.Serve.Supervisor.pool_rebuilds;
  crash_dir

(* --- part 2: the cross-process smoke --- *)

let slurp path = In_channel.with_open_text path In_channel.input_all

let checksum_line out =
  String.split_on_char '\n' out
  |> List.find_opt (fun l ->
      String.length l >= 15 && String.sub l 0 15 = "output checksum")

let smoke (driver : string) =
  let socket = Filename.temp_file "serve_smoke" ".sock" in
  Sys.remove socket;
  let crash_dir = fresh_dir "serve_smoke_crash2" in
  let cu = Filename.temp_file "serve_smoke" ".cu" in
  Out_channel.with_open_text cu (fun oc ->
      Out_channel.output_string oc reduce_src);
  let cu2 = Filename.temp_file "serve_smoke2" ".cu" in
  Out_channel.with_open_text cu2 (fun oc ->
      Out_channel.output_string oc saxpy_src);
  let daemon_out = Filename.temp_file "serve_smoke" ".log" in
  let out_fd =
    Unix.openfile daemon_out [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
      0o644
  in
  let pid =
    Unix.create_process driver
      [| driver
       ; "serve"
       ; "--socket"
       ; socket
       ; "--crash-dir"
       ; crash_dir
       ; "--deadline-ms"
       ; "2000"
       ; "--executors"
       ; "1"
      |]
      Unix.stdin out_fd out_fd
  in
  Unix.close out_fd;
  if not (Serve.Client.wait_ready ~socket ~timeout_ms:10_000) then begin
    fail "smoke: daemon never became ready\n";
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
  end
  else begin
    let tmp = Filename.temp_file "serve_smoke" ".out" in
    let client args =
      let code =
        sh
          (Printf.sprintf "%s client --socket %s %s > %s 2>/dev/null"
             (Filename.quote driver) (Filename.quote socket) args
             (Filename.quote tmp))
      in
      (code, slurp tmp)
    in
    let oneshot args file =
      let code =
        sh
          (Printf.sprintf "%s %s %s > %s 2>/dev/null" (Filename.quote driver)
             args (Filename.quote file) (Filename.quote tmp))
      in
      (code, slurp tmp)
    in
    (* the one-shot CLI is the reference for exit code and checksum *)
    let ref_code, ref_out =
      oneshot "--cuda-lower --run run --size 128 --exec parallel --domains 2"
        cu
    in
    let ref_ck = checksum_line ref_out in
    if ref_code <> 0 then fail "smoke: one-shot reference exited %d\n" ref_code;
    if ref_ck = None then fail "smoke: one-shot reference printed no checksum\n";
    let job_args file =
      Printf.sprintf "%s --run run --size 128 --exec parallel --domains 2"
        (Filename.quote file)
    in
    (* cold *)
    let cold_code, cold_out = client (job_args cu) in
    if cold_code <> ref_code then
      fail "smoke: served job exited %d, one-shot CLI %d\n" cold_code ref_code;
    if checksum_line cold_out <> ref_ck then
      fail "smoke: served checksum differs from the one-shot CLI\n";
    (* hot: bit-identical to the cold result *)
    let hot_code, hot_out = client (job_args cu) in
    if hot_code <> cold_code then
      fail "smoke: cache hit exited %d, cold run %d\n" hot_code cold_code;
    if checksum_line hot_out <> checksum_line cold_out then
      fail "smoke: cache hit checksum differs from the cold result\n";
    (* a second source, cold then hot *)
    let b_cold, b_out = client (job_args cu2) in
    let b_hot, b_hot_out = client (job_args cu2) in
    if b_cold <> 0 || b_hot <> 0 then
      fail "smoke: second source exited %d/%d, want 0/0\n" b_cold b_hot;
    if checksum_line b_hot_out <> checksum_line b_out then
      fail "smoke: second source cache hit differs from its cold result\n";
    if checksum_line b_out = ref_ck then
      fail "smoke: distinct sources produced the same checksum line\n";
    (* two injected serve faults: contained, retried, same answer *)
    List.iter
      (fun kind ->
        let code, out =
          client (job_args cu ^ " --inject-fault serve:" ^ kind)
        in
        if code <> ref_code then
          fail "smoke: serve:%s job exited %d, want %d\n" kind code ref_code;
        if checksum_line out <> ref_ck then
          fail "smoke: serve:%s checksum differs after recovery\n" kind)
      [ "raise"; "exhaust" ];
    (* the daemon survived everything above *)
    let alive_code, _ = client (job_args cu) in
    if alive_code <> 0 then
      fail "smoke: daemon not serving after the fault jobs (exit %d)\n"
        alive_code;
    (* graceful drain *)
    let sd_code, _ = client "--shutdown" in
    if sd_code <> 0 then fail "smoke: --shutdown exited %d\n" sd_code;
    let _, status = Unix.waitpid [] pid in
    (match status with
     | Unix.WEXITED 0 -> ()
     | Unix.WEXITED n -> fail "smoke: daemon exited %d after drain\n" n
     | Unix.WSIGNALED n | Unix.WSTOPPED n ->
       fail "smoke: daemon killed/stopped by signal %d\n" n);
    (* the injected faults left replayable bundles *)
    (match Sys.readdir crash_dir with
     | [||] -> fail "smoke: injected faults left no crash bundles\n"
     | entries ->
       if Array.length entries <> 2 then
         fail "smoke: %d bundles for 2 injected faults\n"
           (Array.length entries);
       let bundle = Filename.concat crash_dir entries.(0) in
       let code =
         sh
           (Printf.sprintf "%s --replay %s > %s 2>/dev/null"
              (Filename.quote driver) (Filename.quote bundle)
              (Filename.quote tmp))
       in
       if code <> 0 then
         fail "smoke: --replay %s exited %d, want 0 (reproduced)\n" bundle
           code);
    Printf.printf "serve smoke: daemon served hot/cold replay with injected \
                   faults and drained cleanly\n"
  end

let () =
  let driver =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else "../bin/polygeist_cpu.exe"
  in
  let crash_dir = matrix () in
  ignore crash_dir;
  smoke driver;
  if !failures > 0 then begin
    Printf.printf "serve smoke: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "serve smoke: all checks passed"
