(* @repair-smoke (wired into `dune runtest`): a fixed-seed scan for
   sanitizer-dirty racy mutants ({!Fuzz.Gen.racy_source} drops one
   barrier from a generated kernel) that the analysis-guided repair
   search must fix automatically.  Every repair is accepted only when
   the sanitizer has nothing left to say AND the differential oracle
   finds the repaired kernel checksum-identical to the serial
   interpreter at 1 and 4 domains — the same double gate as the
   driver's --repair.  Deterministic: fixed seeds, no wall-clock in any
   pass/fail decision (the median-ms line is informational only). *)

let racy = 20
let seed = 1

let () =
  let r = Fuzz.Fuzzer.run_repair_campaign ~seed ~racy () in
  print_string (Fuzz.Fuzzer.repair_report_to_string r);
  let unrepaired =
    List.filter
      (fun (f : Fuzz.Fuzzer.repair_finding) -> Result.is_error f.presult)
      r.rfindings
  in
  if r.rracy < racy then begin
    Printf.printf
      "repair-smoke: only %d racy mutants in %d seeds (wanted %d) — \
       generator or sanitizer drift\n"
      r.rracy r.rscanned racy;
    exit 1
  end;
  if unrepaired <> [] then begin
    Printf.printf "%d repair-smoke failure(s)\n" (List.length unrepaired);
    exit 1
  end;
  print_endline "repair-smoke: clean"
