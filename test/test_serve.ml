(* Unit and property tests for the compile service's pure pieces:
   the retry/backoff policy (QCheck properties over policies and
   seeds), the wire protocol round trip, the content-addressed cache's
   never-serve-corruption guarantee, the circuit breaker's trip /
   half-open state machine, and the supervisor's fault wall driven
   in-process (no socket). *)

let reduce_src =
  {|__global__ void reduce(float* in, float* out, int n) {
  __shared__ float buf[64];
  int t = threadIdx.x;
  int i = blockIdx.x * 64 + t;
  if (i < n) buf[t] = in[i];
  else buf[t] = 0.0f;
  __syncthreads();
  for (int s = 32; s > 0; s = s / 2) {
    if (t < s) buf[t] = buf[t] + buf[t + s];
    __syncthreads();
  }
  if (t == 0) out[blockIdx.x] = buf[0];
}
void run(float* in, float* out, int n) {
  reduce<<<(n + 63) / 64, 64>>>(in, out, n);
}
|}

(* --- backoff: QCheck properties --- *)

let policy_gen =
  QCheck.Gen.(
    let* base_ms = int_range 0 200 in
    let* extra = int_range 0 2000 in
    let* max_retries = int_range 0 5 in
    return { Serve.Backoff.base_ms; cap_ms = base_ms + extra; max_retries })

let policy_arb =
  QCheck.make policy_gen ~print:(fun (p : Serve.Backoff.policy) ->
      Printf.sprintf "{base=%d; cap=%d; retries=%d}" p.base_ms p.cap_ms
        p.max_retries)

let seed_attempt_prev =
  QCheck.(
    triple (int_bound 1_000_000) (int_range 1 10) (int_bound 5000))

let test_delay_in_bounds =
  QCheck.Test.make ~name:"backoff: delay always within [base, cap]" ~count:500
    (QCheck.pair policy_arb seed_attempt_prev)
    (fun (p, (seed, attempt, prev_ms)) ->
      let d = Serve.Backoff.delay_ms p ~seed ~attempt ~prev_ms in
      d >= p.Serve.Backoff.base_ms && d <= p.Serve.Backoff.cap_ms)

let test_delay_deterministic =
  QCheck.Test.make ~name:"backoff: same inputs, same delay" ~count:500
    (QCheck.pair policy_arb seed_attempt_prev)
    (fun (p, (seed, attempt, prev_ms)) ->
      Serve.Backoff.delay_ms p ~seed ~attempt ~prev_ms
      = Serve.Backoff.delay_ms p ~seed ~attempt ~prev_ms)

(* A run of consecutive delays stays capped even when the previous
   delay feeds back in — the decorrelated-jitter recurrence must not
   escape the window. *)
let test_delay_sequence_capped =
  QCheck.Test.make ~name:"backoff: delay sequence respects the cap" ~count:200
    (QCheck.pair policy_arb (QCheck.int_bound 1_000_000))
    (fun (p, seed) ->
      let prev = ref p.Serve.Backoff.base_ms in
      let ok = ref true in
      for attempt = 1 to 8 do
        let d = Serve.Backoff.delay_ms p ~seed ~attempt ~prev_ms:!prev in
        if d < p.Serve.Backoff.base_ms || d > p.Serve.Backoff.cap_ms then
          ok := false;
        prev := d
      done;
      !ok)

let test_deterministic_never_retried =
  QCheck.Test.make ~name:"backoff: deterministic failures never retried"
    ~count:200
    (QCheck.pair policy_arb (QCheck.int_range 1 10))
    (fun (p, attempt) ->
      not (Serve.Backoff.retryable p Serve.Backoff.Deterministic ~attempt))

let test_transient_bounded =
  QCheck.Test.make ~name:"backoff: transient retries stop at max_retries"
    ~count:200
    (QCheck.pair policy_arb (QCheck.int_range 1 10))
    (fun (p, attempt) ->
      Serve.Backoff.retryable p Serve.Backoff.Transient ~attempt
      = (attempt <= p.Serve.Backoff.max_retries))

(* --- protocol round trips --- *)

let test_proto_roundtrip () =
  let job =
    { Serve.Proto.source = "line one\nline \"two\"\n\ttab"
    ; entry = Some "run"
    ; sizes = [ 128; 7 ]
    ; mode = "inner-parallel"
    ; exec = "parallel"
    ; domains = 3
    ; schedule = "dynamic"
    ; faults = "serve:raise,cpuify:corrupt"
    }
  in
  (match Serve.Proto.request_of_string
           (Serve.Proto.request_to_string ~id:7 (Serve.Proto.Submit job))
   with
   | Ok (7, Serve.Proto.Submit j) ->
     Alcotest.(check bool) "job round-trips" true (j = job)
   | _ -> Alcotest.fail "submit did not round-trip (with its id)");
  (match Serve.Proto.request_of_string
           (Serve.Proto.request_to_string Serve.Proto.Shutdown)
   with
   | Ok (0, Serve.Proto.Shutdown) -> ()
   | _ -> Alcotest.fail "shutdown did not round-trip");
  let outcome =
    { Serve.Proto.exit_code = 1
    ; checksum = "4.28806987e+14"
    ; cached = true
    ; retries = 2
    ; breaker = false
    ; log = "several\nlines\n"
    }
  in
  List.iter
    (fun resp ->
      match
        Serve.Proto.response_of_string
          (Serve.Proto.response_to_string ~id:9 resp)
      with
      | Ok (id, r) ->
        Alcotest.(check int) "response echoes the id" 9 id;
        Alcotest.(check bool) "response round-trips" true (r = resp)
      | Error e -> Alcotest.fail ("response parse failed: " ^ e))
    [ Serve.Proto.Done outcome
    ; Serve.Proto.Overloaded { depth = 32; cap = 32 }
    ; Serve.Proto.Rejected "draining"
    ];
  (match Serve.Proto.request_of_string "polygeist-serve/9 nonsense\n" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown request kind must be rejected")

(* Version-1 frames (no id line) predate the fleet; an old client or a
   recorded frame must still parse, with id 0. *)
let test_proto_v1_compat () =
  let job =
    { Serve.Proto.source = "__global__ void k() {}\n"
    ; entry = None
    ; sizes = []
    ; mode = "inner-serial"
    ; exec = "interp"
    ; domains = 2
    ; schedule = "static"
    ; faults = ""
    }
  in
  (match
     Serve.Proto.request_of_string
       ("polygeist-serve/1 submit\n" ^ Serve.Proto.job_to_string job)
   with
   | Ok (0, Serve.Proto.Submit j) ->
     Alcotest.(check bool) "v1 submit parses, id 0" true (j = job)
   | _ -> Alcotest.fail "v1 submit frame did not parse");
  (match Serve.Proto.request_of_string "polygeist-serve/1 shutdown\n" with
   | Ok (0, Serve.Proto.Shutdown) -> ()
   | _ -> Alcotest.fail "v1 shutdown frame did not parse");
  let o =
    { Serve.Proto.exit_code = 0
    ; checksum = "1.5"
    ; cached = false
    ; retries = 0
    ; breaker = false
    ; log = "ok\n"
    }
  in
  (match
     Serve.Proto.response_of_string
       ("polygeist-serve/1 done\n" ^ Serve.Proto.outcome_to_string o)
   with
   | Ok (0, Serve.Proto.Done o') ->
     Alcotest.(check bool) "v1 done parses, id 0" true (o' = o)
   | _ -> Alcotest.fail "v1 done frame did not parse");
  (* the id lives in the response envelope, NOT the cached artifact:
     v2 must not have changed the cache payload bytes *)
  Alcotest.(check bool) "outcome payload has no id field" true
    (not
       (String.split_on_char '\n' (Serve.Proto.outcome_to_string o)
        |> List.exists (fun l ->
            String.length l >= 3 && String.sub l 0 3 = "id=")))

(* --- cache: content addressing and corruption eviction --- *)

let test_cache_corruption () =
  let c = Serve.Cache.create () in
  let k = Serve.Cache.key ~source:"src" ~flags:"flags" in
  Alcotest.(check (option string)) "empty cache misses" None (Serve.Cache.find c k);
  Serve.Cache.store c k "payload-bytes";
  Alcotest.(check (option string)) "stored artifact found"
    (Some "payload-bytes") (Serve.Cache.find c k);
  Alcotest.(check bool) "corrupt hook flips the artifact" true
    (Serve.Cache.corrupt c k);
  Alcotest.(check (option string)) "corrupt artifact is NEVER served" None
    (Serve.Cache.find c k);
  let s = Serve.Cache.stats c in
  Alcotest.(check int) "corruption counted" 1 s.Serve.Cache.corrupt_dropped;
  Alcotest.(check int) "entry dropped" 0 s.Serve.Cache.entries;
  (* distinct flags must give distinct keys *)
  Alcotest.(check bool) "flags are part of the key" true
    (Serve.Cache.key ~source:"s" ~flags:"a"
     <> Serve.Cache.key ~source:"s" ~flags:"b")

let fresh_tmp_dir () =
  let dir = Filename.temp_file "serve" ".cache" in
  Sys.remove dir;
  dir

(* The write-ahead property: a store is on disk the moment [store]
   returns — no flush, no clean shutdown.  Closing the cache without
   compacting stands in for SIGKILL. *)
let test_cache_wal_durability () =
  let dir = fresh_tmp_dir () in
  let c = Serve.Cache.create () in
  Alcotest.(check int) "fresh dir loads empty" 0 (Serve.Cache.load c ~dir);
  Serve.Cache.store c "k1" "payload one";
  Serve.Cache.store c "k2" "payload\ntwo with spaces";
  Serve.Cache.close c (* no flush: the journal alone must carry both *);
  let c2 = Serve.Cache.create () in
  Alcotest.(check int) "journal replay recovers unflushed stores" 2
    (Serve.Cache.load c2 ~dir);
  Alcotest.(check (option string)) "replayed payload verifies"
    (Some "payload\ntwo with spaces")
    (Serve.Cache.find c2 "k2");
  Serve.Cache.close c2;
  (* compaction on clean shutdown: flush rewrites, nothing is lost *)
  let c3 = Serve.Cache.create () in
  ignore (Serve.Cache.load c3 ~dir);
  (match Serve.Cache.flush c3 ~dir with
   | Ok _ -> ()
   | Error e -> Alcotest.fail ("compaction failed: " ^ e));
  Serve.Cache.close c3;
  let c4 = Serve.Cache.create () in
  Alcotest.(check int) "compacted journal still holds both" 2
    (Serve.Cache.load c4 ~dir);
  Serve.Cache.close c4

(* A SIGKILL mid-append leaves a torn final record: replay must keep
   every complete record, skip (and count) the torn one. *)
let test_cache_journal_truncation () =
  let dir = fresh_tmp_dir () in
  let c = Serve.Cache.create () in
  ignore (Serve.Cache.load c ~dir);
  Serve.Cache.store c "k1" "first payload";
  Serve.Cache.store c "k2" "second payload";
  Serve.Cache.close c;
  let path = Filename.concat dir "cache-journal.v2" in
  let text = In_channel.with_open_bin path In_channel.input_all in
  (* chop the file mid-way through the last record *)
  let cut = String.length text - 7 in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub text 0 cut));
  let c2 = Serve.Cache.create () in
  Alcotest.(check int) "complete records survive the torn tail" 1
    (Serve.Cache.load c2 ~dir);
  let s = Serve.Cache.stats c2 in
  Alcotest.(check bool) "torn record counted as skipped" true
    (s.Serve.Cache.journal_skipped >= 1);
  Serve.Cache.close c2;
  (* a bit flip inside a record (not just truncation) is also dropped *)
  let dir2 = fresh_tmp_dir () in
  let c3 = Serve.Cache.create () in
  ignore (Serve.Cache.load c3 ~dir:dir2);
  Serve.Cache.store c3 "ka" "aaaa";
  Serve.Cache.store c3 "kb" "bbbb";
  Serve.Cache.close c3;
  let path2 = Filename.concat dir2 "cache-journal.v2" in
  let text2 = In_channel.with_open_bin path2 In_channel.input_all in
  let b = Bytes.of_string text2 in
  (* flip a byte in the middle of the first record's payload *)
  let pos = String.index text2 '\n' + 40 in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x01));
  Out_channel.with_open_bin path2 (fun oc ->
      Out_channel.output_string oc (Bytes.to_string b));
  let c4 = Serve.Cache.create () in
  Alcotest.(check int) "bit-flipped record dropped, sibling loads" 1
    (Serve.Cache.load c4 ~dir:dir2);
  Alcotest.(check int) "replayed cache passes verify_all" 0
    (Serve.Cache.verify_all c4);
  Serve.Cache.close c4

(* Replay is idempotent: re-storing a key appends again, and duplicate
   records collapse to the last write at replay. *)
let test_cache_journal_duplicates () =
  let dir = fresh_tmp_dir () in
  let c = Serve.Cache.create () in
  ignore (Serve.Cache.load c ~dir);
  Serve.Cache.store c "k" "version one";
  Serve.Cache.store c "k" "version two";
  Serve.Cache.store c "k" "version two" (* identical duplicate append *);
  Serve.Cache.close c;
  let c2 = Serve.Cache.create () in
  ignore (Serve.Cache.load c2 ~dir);
  let s = Serve.Cache.stats c2 in
  Alcotest.(check int) "duplicate appends collapse to one entry" 1
    s.Serve.Cache.entries;
  Alcotest.(check (option string)) "last write wins" (Some "version two")
    (Serve.Cache.find c2 "k");
  Serve.Cache.close c2

(* Generation handling around compaction crashes: a temp journal NEWER
   than the main one is a finished-but-unrenamed compaction and must be
   promoted; a temp at or below the main generation is stale debris and
   must be discarded. *)
let test_cache_journal_generations () =
  let dir = fresh_tmp_dir () in
  let c = Serve.Cache.create () in
  ignore (Serve.Cache.load c ~dir);
  Serve.Cache.store c "old" "old payload";
  (match Serve.Cache.flush c ~dir with
   | Ok _ -> () (* journal is now gen 1 *)
   | Error e -> Alcotest.fail ("flush failed: " ^ e));
  Serve.Cache.close c;
  let main = Filename.concat dir "cache-journal.v2" in
  let tmp = main ^ ".tmp" in
  (* stale temp (gen 0 < main's gen): must be removed, main replayed *)
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc
        "polygeist-serve cache journal v2 gen=0\ngarbage\n");
  let c2 = Serve.Cache.create () in
  Alcotest.(check int) "stale temp ignored, main journal replayed" 1
    (Serve.Cache.load c2 ~dir);
  Alcotest.(check bool) "stale temp deleted" false (Sys.file_exists tmp);
  Serve.Cache.close c2;
  (* newer temp (interrupted compaction): build a genuine gen-9 snapshot
     in a scratch cache, park it as the temp, and expect promotion *)
  let scratch_dir = fresh_tmp_dir () in
  let sc = Serve.Cache.create () in
  ignore (Serve.Cache.load sc ~dir:scratch_dir);
  Serve.Cache.store sc "new" "new payload";
  Serve.Cache.close sc;
  let scratch = Filename.concat scratch_dir "cache-journal.v2" in
  let text = In_channel.with_open_bin scratch In_channel.input_all in
  let bumped =
    "polygeist-serve cache journal v2 gen=9\n"
    ^ String.concat "\n"
        (List.tl (String.split_on_char '\n' text))
  in
  Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc bumped);
  let c3 = Serve.Cache.create () in
  Alcotest.(check int) "interrupted compaction promoted" 1
    (Serve.Cache.load c3 ~dir);
  Alcotest.(check (option string)) "promoted snapshot's entry served"
    (Some "new payload")
    (Serve.Cache.find c3 "new");
  Alcotest.(check (option string)) "pre-compaction entry superseded" None
    (Serve.Cache.find c3 "old");
  Serve.Cache.close c3

(* The legacy flush-on-shutdown index still loads when no journal
   exists, and the first load migrates it into a journal. *)
let test_cache_v1_index_compat () =
  let dir = fresh_tmp_dir () in
  Sys.mkdir dir 0o755;
  let payload = "legacy payload\nwith a second line" in
  let d = Digest.to_hex (Digest.string payload) in
  Out_channel.with_open_text (Filename.concat dir "cache-index.v1") (fun oc ->
      Out_channel.output_string oc
        (Printf.sprintf "polygeist-serve cache index v1\n%s %s %s\n" "oldkey" d
           (String.escaped payload)));
  let c = Serve.Cache.create () in
  Alcotest.(check int) "v1 index loads without a journal" 1
    (Serve.Cache.load c ~dir);
  Alcotest.(check (option string)) "v1 entry verifies and serves"
    (Some payload) (Serve.Cache.find c "oldkey");
  (* a store after migration lands in the new journal *)
  Serve.Cache.store c "newkey" "journaled";
  Serve.Cache.close c;
  Alcotest.(check bool) "journal created alongside the v1 index" true
    (Sys.file_exists (Filename.concat dir "cache-journal.v2"))

(* Corrupt artifacts are quarantined on disk, not silently dropped. *)
let test_cache_quarantine () =
  let dir = fresh_tmp_dir () in
  let c = Serve.Cache.create () in
  ignore (Serve.Cache.load c ~dir);
  let k = Serve.Cache.key ~source:"src" ~flags:"flags" in
  Serve.Cache.store c k "soon to rot";
  Alcotest.(check bool) "corrupt hook flips the artifact" true
    (Serve.Cache.corrupt c k);
  Alcotest.(check (option string)) "corrupt artifact not served" None
    (Serve.Cache.find c k);
  let s = Serve.Cache.stats c in
  Alcotest.(check int) "quarantine counted in stats" 1
    s.Serve.Cache.quarantined;
  let qdir = Filename.concat dir "quarantine" in
  Alcotest.(check bool) "quarantine dir holds the evidence" true
    (Sys.file_exists qdir && Array.length (Sys.readdir qdir) = 1);
  Serve.Cache.close c

(* Property: whatever bytes go through [store], a fresh replay of the
   journal serves them all back verbatim — spaces, newlines, quotes,
   binary escapes included. *)
let test_wal_replay_roundtrip =
  QCheck.Test.make ~name:"cache journal: replay serves every stored payload"
    ~count:20
    QCheck.(small_list (string_of_size (QCheck.Gen.int_range 0 64)))
    (fun payloads ->
      let dir = fresh_tmp_dir () in
      let c = Serve.Cache.create () in
      ignore (Serve.Cache.load c ~dir);
      List.iteri
        (fun i p ->
          Serve.Cache.store c
            (Serve.Cache.key ~source:p ~flags:(string_of_int i))
            p)
        payloads;
      Serve.Cache.close c;
      let c2 = Serve.Cache.create () in
      ignore (Serve.Cache.load c2 ~dir);
      let ok =
        List.mapi
          (fun i p ->
            Serve.Cache.find c2
              (Serve.Cache.key ~source:p ~flags:(string_of_int i))
            = Some p)
          payloads
        |> List.for_all Fun.id
      in
      Serve.Cache.close c2;
      ok)

(* --- the in-flight job journal --- *)

let test_inflight_journal () =
  let dir = fresh_tmp_dir () in
  (match Serve.Journal.open_ ~dir with
   | Error e -> Alcotest.fail ("journal open failed: " ^ e)
   | Ok j ->
     Serve.Journal.start j ~id:1 ~digest:"d-one";
     Serve.Journal.start j ~id:2 ~digest:"d-two";
     Serve.Journal.start j ~id:3 ~digest:"d-three";
     Serve.Journal.finish j ~id:2 ~status:"done";
     Serve.Journal.close j (* no E for 1 and 3: a SIGKILL here *));
  let r = Serve.Journal.recover ~dir in
  Alcotest.(check (list (pair int string)))
    "exactly the unanswered tickets are lost"
    [ (1, "d-one"); (3, "d-three") ]
    r.Serve.Journal.lost;
  Alcotest.(check int) "completed records counted" 1
    r.Serve.Journal.completed;
  (* a torn final record is skipped, not misread *)
  let path = Filename.concat dir "inflight.v1" in
  let text = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub text 0 (String.length text - 5)));
  let r2 = Serve.Journal.recover ~dir in
  Alcotest.(check bool) "torn record skipped" true
    (r2.Serve.Journal.skipped >= 1);
  Alcotest.(check (list (pair int string)))
    "torn E for ticket 2 resurfaces it as lost"
    [ (1, "d-one"); (2, "d-two"); (3, "d-three") ]
    r2.Serve.Journal.lost;
  (* re-opening starts a fresh generation: old flights are not replayed *)
  (match Serve.Journal.open_ ~dir with
   | Error e -> Alcotest.fail ("journal re-open failed: " ^ e)
   | Ok j -> Serve.Journal.close j);
  let r3 = Serve.Journal.recover ~dir in
  Alcotest.(check (list (pair int string))) "open_ truncates" []
    r3.Serve.Journal.lost

(* --- circuit breaker state machine --- *)

let test_breaker () =
  let b = Serve.Supervisor.Breaker.create ~threshold:3 ~recovery:2 in
  let h = "deadbeef" in
  Alcotest.(check bool) "fresh source not tripped" false
    (Serve.Supervisor.Breaker.tripped b h);
  Serve.Supervisor.Breaker.record_failure b h;
  Serve.Supervisor.Breaker.record_failure b h;
  (* a success between failures resets the streak *)
  Serve.Supervisor.Breaker.record_success b h ~conservative:false;
  Serve.Supervisor.Breaker.record_failure b h;
  Serve.Supervisor.Breaker.record_failure b h;
  Alcotest.(check bool) "streak below threshold" false
    (Serve.Supervisor.Breaker.tripped b h);
  Serve.Supervisor.Breaker.record_failure b h;
  Alcotest.(check bool) "third consecutive failure trips" true
    (Serve.Supervisor.Breaker.tripped b h);
  (* half-open: conservative successes untrip after [recovery] in a row *)
  Serve.Supervisor.Breaker.record_success b h ~conservative:true;
  Alcotest.(check bool) "one conservative success is not enough" true
    (Serve.Supervisor.Breaker.tripped b h);
  Serve.Supervisor.Breaker.record_success b h ~conservative:true;
  Alcotest.(check bool) "recovery streak untrips" false
    (Serve.Supervisor.Breaker.tripped b h);
  Alcotest.(check bool) "other sources unaffected" false
    (Serve.Supervisor.Breaker.tripped b "other")

(* --- the supervisor fault wall, driven in-process --- *)

let sup_config ~crash_dir =
  { Serve.Supervisor.default_config with
    deadline_ms = 2000
  ; crash_dir
  ; backoff = { Serve.Backoff.default with base_ms = 1; cap_ms = 5 }
  }

let mk_job ?(faults = "") ?(exec = "interp") () =
  { Serve.Proto.source = reduce_src
  ; entry = Some "run"
  ; sizes = [ 128 ]
  ; mode = "inner-serial"
  ; exec
  ; domains = 2
  ; schedule = "static"
  ; faults
  }

let test_supervisor_clean_and_cached () =
  let t = Serve.Supervisor.create (sup_config ~crash_dir:None) in
  let cache = Serve.Cache.create () in
  let o1 =
    Serve.Supervisor.run_job t ~cache ~queue_depth:0 ~job_id:0 (mk_job ())
  in
  Alcotest.(check int) "clean job exits 0" 0 o1.Serve.Proto.exit_code;
  Alcotest.(check bool) "cold run not cached" false o1.Serve.Proto.cached;
  Alcotest.(check bool) "a checksum was computed" true
    (o1.Serve.Proto.checksum <> "-");
  let o2 =
    Serve.Supervisor.run_job t ~cache ~queue_depth:0 ~job_id:1 (mk_job ())
  in
  Alcotest.(check bool) "second run served from cache" true
    o2.Serve.Proto.cached;
  Alcotest.(check string) "cached checksum is bit-identical"
    o1.Serve.Proto.checksum o2.Serve.Proto.checksum

let test_supervisor_serve_faults () =
  let dir = Filename.temp_file "serve" ".crash" in
  Sys.remove dir;
  let t = Serve.Supervisor.create (sup_config ~crash_dir:(Some dir)) in
  let cache = Serve.Cache.create () in
  let clean =
    Serve.Supervisor.run_job t ~cache ~queue_depth:0 ~job_id:0 (mk_job ())
  in
  List.iteri
    (fun i kind ->
      let o =
        Serve.Supervisor.run_job t ~cache ~queue_depth:1 ~job_id:(i + 1)
          (mk_job ~faults:("serve:" ^ kind) ())
      in
      (* the injection is one-shot: the first attempt dies (and writes
         a bundle), the retry succeeds with the clean checksum *)
      Alcotest.(check int) (kind ^ ": retried once") 1 o.Serve.Proto.retries;
      Alcotest.(check int) (kind ^ ": job recovers") 0 o.Serve.Proto.exit_code;
      Alcotest.(check string) (kind ^ ": checksum matches clean run")
        clean.Serve.Proto.checksum o.Serve.Proto.checksum;
      Alcotest.(check bool) (kind ^ ": poisoned job never cached") false
        o.Serve.Proto.cached)
    [ "raise"; "corrupt"; "exhaust"; "hang" ];
  let bundles = Array.to_list (Sys.readdir dir) in
  Alcotest.(check int) "exactly one bundle per poisoned job" 4
    (List.length bundles);
  List.iter
    (fun f ->
      match Core.Crashbundle.read (Filename.concat dir f) with
      | Error e -> Alcotest.fail ("unreadable bundle " ^ f ^ ": " ^ e)
      | Ok b ->
        Alcotest.(check string) "bundle rung" "serve" b.Core.Crashbundle.rung;
        (match b.Core.Crashbundle.serve with
         | None -> Alcotest.fail "serve bundle missing v3 serve header"
         | Some s ->
           Alcotest.(check int) "queue depth recorded" 1
             s.Core.Crashbundle.squeue_depth))
    bundles

let test_supervisor_deterministic_failure () =
  let t = Serve.Supervisor.create (sup_config ~crash_dir:None) in
  let cache = Serve.Cache.create () in
  let o =
    Serve.Supervisor.run_job t ~cache ~queue_depth:0 ~job_id:0
      { (mk_job ()) with Serve.Proto.source = "this is not CUDA" }
  in
  Alcotest.(check int) "parse error fails the job" 2 o.Serve.Proto.exit_code;
  Alcotest.(check int) "deterministic failure is NOT retried" 0
    o.Serve.Proto.retries

let test_supervisor_breaker_trip () =
  let t =
    Serve.Supervisor.create
      { (sup_config ~crash_dir:None) with
        backoff = { Serve.Backoff.base_ms = 1; cap_ms = 2; max_retries = 0 }
      ; breaker_threshold = 2
      }
  in
  let cache = Serve.Cache.create () in
  (* a source that keeps dying in the serving layer: no retries, so
     each submission is one failed attempt *)
  for i = 0 to 1 do
    let o =
      Serve.Supervisor.run_job t ~cache ~queue_depth:0 ~job_id:i
        (mk_job ~faults:"serve:raise" ())
    in
    Alcotest.(check int) "poisoned job fails" 2 o.Serve.Proto.exit_code
  done;
  Alcotest.(check int) "breaker tripped after the threshold" 1
    (Serve.Supervisor.breaker_trips t);
  (* the same source, now clean: served conservatively via the breaker *)
  let o =
    Serve.Supervisor.run_job t ~cache ~queue_depth:0 ~job_id:2 (mk_job ())
  in
  Alcotest.(check bool) "served via the breaker" true o.Serve.Proto.breaker;
  Alcotest.(check int) "conservative service is degraded" 1
    o.Serve.Proto.exit_code

(* --- executor fleet: wedge detection and replacement --- *)

let test_fleet_wedge_replaced () =
  let dir = Filename.temp_file "serve" ".crash" in
  Sys.remove dir;
  let t =
    Serve.Server.create
      { Serve.Server.queue_cap = 16
      ; cache_dir = None
      ; executors = 2
      ; executor_deadline_ms = 400
      ; sup =
          { Serve.Supervisor.default_config with
            deadline_ms = 5000
          ; crash_dir = Some dir
          ; backoff = { Serve.Backoff.base_ms = 1; cap_ms = 2; max_retries = 0 }
          }
      }
  in
  let submit job =
    match Serve.Server.submit t job with
    | `Ticket tk -> tk
    | `Overloaded _ | `Draining -> Alcotest.fail "submit rejected"
  in
  let wedged = submit (mk_job ~faults:"executor:hang" ()) in
  let clean = submit (mk_job ()) in
  Serve.Server.drain t;
  (match Serve.Server.peek wedged with
   | None -> Alcotest.fail "wedged ticket never answered"
   | Some o ->
     Alcotest.(check int) "wedged ticket fails" 2 o.Serve.Proto.exit_code;
     Alcotest.(check bool) "failure names the wedge" true
       (let log = o.Serve.Proto.log in
        let needle = "wedged" in
        let n = String.length needle and l = String.length log in
        let rec scan i =
          i + n <= l && (String.sub log i n = needle || scan (i + 1))
        in
        scan 0));
  (match Serve.Server.peek clean with
   | None -> Alcotest.fail "clean ticket never answered"
   | Some o ->
     Alcotest.(check int) "clean job survives the wedge next door" 0
       o.Serve.Proto.exit_code);
  Alcotest.(check bool) "the wedged incarnation was killed" true
    (Serve.Server.executor_kills t >= 1);
  (* the monitor's kill wrote a rung="serve" bundle for the wedge *)
  let bundles = if Sys.file_exists dir then Sys.readdir dir else [||] in
  Alcotest.(check bool) "wedge produced a crash bundle" true
    (Array.length bundles >= 1)

let tests =
  [ QCheck_alcotest.to_alcotest test_delay_in_bounds
  ; QCheck_alcotest.to_alcotest test_delay_deterministic
  ; QCheck_alcotest.to_alcotest test_delay_sequence_capped
  ; QCheck_alcotest.to_alcotest test_deterministic_never_retried
  ; QCheck_alcotest.to_alcotest test_transient_bounded
  ; Alcotest.test_case "protocol round trips" `Quick test_proto_roundtrip
  ; Alcotest.test_case "protocol v1 frames still parse (id 0)" `Quick
      test_proto_v1_compat
  ; Alcotest.test_case "cache never serves corruption" `Quick
      test_cache_corruption
  ; Alcotest.test_case "cache journal: stores durable without flush" `Quick
      test_cache_wal_durability
  ; Alcotest.test_case "cache journal: torn tail and bit flips dropped"
      `Quick test_cache_journal_truncation
  ; Alcotest.test_case "cache journal: duplicate appends idempotent" `Quick
      test_cache_journal_duplicates
  ; Alcotest.test_case "cache journal: compaction generations" `Quick
      test_cache_journal_generations
  ; Alcotest.test_case "cache: legacy v1 index migrates" `Quick
      test_cache_v1_index_compat
  ; Alcotest.test_case "cache: corrupt artifacts quarantined on disk" `Quick
      test_cache_quarantine
  ; QCheck_alcotest.to_alcotest test_wal_replay_roundtrip
  ; Alcotest.test_case "in-flight journal: lost tickets recovered" `Quick
      test_inflight_journal
  ; Alcotest.test_case "fleet: wedged executor killed, work rerouted" `Quick
      test_fleet_wedge_replaced
  ; Alcotest.test_case "circuit breaker trip and half-open recovery" `Quick
      test_breaker
  ; Alcotest.test_case "supervisor: clean job, then bit-identical cache hit"
      `Quick test_supervisor_clean_and_cached
  ; Alcotest.test_case "supervisor: every serve:* fault contained + bundled"
      `Quick test_supervisor_serve_faults
  ; Alcotest.test_case "supervisor: deterministic failures not retried"
      `Quick test_supervisor_deterministic_failure
  ; Alcotest.test_case "supervisor: circuit breaker degrades hot failures"
      `Quick test_supervisor_breaker_trip
  ]
