(* Unit and property tests for the compile service's pure pieces:
   the retry/backoff policy (QCheck properties over policies and
   seeds), the wire protocol round trip, the content-addressed cache's
   never-serve-corruption guarantee, the circuit breaker's trip /
   half-open state machine, and the supervisor's fault wall driven
   in-process (no socket). *)

let reduce_src =
  {|__global__ void reduce(float* in, float* out, int n) {
  __shared__ float buf[64];
  int t = threadIdx.x;
  int i = blockIdx.x * 64 + t;
  if (i < n) buf[t] = in[i];
  else buf[t] = 0.0f;
  __syncthreads();
  for (int s = 32; s > 0; s = s / 2) {
    if (t < s) buf[t] = buf[t] + buf[t + s];
    __syncthreads();
  }
  if (t == 0) out[blockIdx.x] = buf[0];
}
void run(float* in, float* out, int n) {
  reduce<<<(n + 63) / 64, 64>>>(in, out, n);
}
|}

(* --- backoff: QCheck properties --- *)

let policy_gen =
  QCheck.Gen.(
    let* base_ms = int_range 0 200 in
    let* extra = int_range 0 2000 in
    let* max_retries = int_range 0 5 in
    return { Serve.Backoff.base_ms; cap_ms = base_ms + extra; max_retries })

let policy_arb =
  QCheck.make policy_gen ~print:(fun (p : Serve.Backoff.policy) ->
      Printf.sprintf "{base=%d; cap=%d; retries=%d}" p.base_ms p.cap_ms
        p.max_retries)

let seed_attempt_prev =
  QCheck.(
    triple (int_bound 1_000_000) (int_range 1 10) (int_bound 5000))

let test_delay_in_bounds =
  QCheck.Test.make ~name:"backoff: delay always within [base, cap]" ~count:500
    (QCheck.pair policy_arb seed_attempt_prev)
    (fun (p, (seed, attempt, prev_ms)) ->
      let d = Serve.Backoff.delay_ms p ~seed ~attempt ~prev_ms in
      d >= p.Serve.Backoff.base_ms && d <= p.Serve.Backoff.cap_ms)

let test_delay_deterministic =
  QCheck.Test.make ~name:"backoff: same inputs, same delay" ~count:500
    (QCheck.pair policy_arb seed_attempt_prev)
    (fun (p, (seed, attempt, prev_ms)) ->
      Serve.Backoff.delay_ms p ~seed ~attempt ~prev_ms
      = Serve.Backoff.delay_ms p ~seed ~attempt ~prev_ms)

(* A run of consecutive delays stays capped even when the previous
   delay feeds back in — the decorrelated-jitter recurrence must not
   escape the window. *)
let test_delay_sequence_capped =
  QCheck.Test.make ~name:"backoff: delay sequence respects the cap" ~count:200
    (QCheck.pair policy_arb (QCheck.int_bound 1_000_000))
    (fun (p, seed) ->
      let prev = ref p.Serve.Backoff.base_ms in
      let ok = ref true in
      for attempt = 1 to 8 do
        let d = Serve.Backoff.delay_ms p ~seed ~attempt ~prev_ms:!prev in
        if d < p.Serve.Backoff.base_ms || d > p.Serve.Backoff.cap_ms then
          ok := false;
        prev := d
      done;
      !ok)

let test_deterministic_never_retried =
  QCheck.Test.make ~name:"backoff: deterministic failures never retried"
    ~count:200
    (QCheck.pair policy_arb (QCheck.int_range 1 10))
    (fun (p, attempt) ->
      not (Serve.Backoff.retryable p Serve.Backoff.Deterministic ~attempt))

let test_transient_bounded =
  QCheck.Test.make ~name:"backoff: transient retries stop at max_retries"
    ~count:200
    (QCheck.pair policy_arb (QCheck.int_range 1 10))
    (fun (p, attempt) ->
      Serve.Backoff.retryable p Serve.Backoff.Transient ~attempt
      = (attempt <= p.Serve.Backoff.max_retries))

(* --- protocol round trips --- *)

let test_proto_roundtrip () =
  let job =
    { Serve.Proto.source = "line one\nline \"two\"\n\ttab"
    ; entry = Some "run"
    ; sizes = [ 128; 7 ]
    ; mode = "inner-parallel"
    ; exec = "parallel"
    ; domains = 3
    ; schedule = "dynamic"
    ; faults = "serve:raise,cpuify:corrupt"
    }
  in
  (match Serve.Proto.request_of_string
           (Serve.Proto.request_to_string (Serve.Proto.Submit job))
   with
   | Ok (Serve.Proto.Submit j) ->
     Alcotest.(check bool) "job round-trips" true (j = job)
   | _ -> Alcotest.fail "submit did not round-trip");
  (match Serve.Proto.request_of_string
           (Serve.Proto.request_to_string Serve.Proto.Shutdown)
   with
   | Ok Serve.Proto.Shutdown -> ()
   | _ -> Alcotest.fail "shutdown did not round-trip");
  let outcome =
    { Serve.Proto.exit_code = 1
    ; checksum = "4.28806987e+14"
    ; cached = true
    ; retries = 2
    ; breaker = false
    ; log = "several\nlines\n"
    }
  in
  List.iter
    (fun resp ->
      match Serve.Proto.response_of_string (Serve.Proto.response_to_string resp)
      with
      | Ok r -> Alcotest.(check bool) "response round-trips" true (r = resp)
      | Error e -> Alcotest.fail ("response parse failed: " ^ e))
    [ Serve.Proto.Done outcome
    ; Serve.Proto.Overloaded { depth = 32; cap = 32 }
    ; Serve.Proto.Rejected "draining"
    ];
  (match Serve.Proto.request_of_string "polygeist-serve/9 nonsense\n" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown request kind must be rejected")

(* --- cache: content addressing and corruption eviction --- *)

let test_cache_corruption () =
  let c = Serve.Cache.create () in
  let k = Serve.Cache.key ~source:"src" ~flags:"flags" in
  Alcotest.(check (option string)) "empty cache misses" None (Serve.Cache.find c k);
  Serve.Cache.store c k "payload-bytes";
  Alcotest.(check (option string)) "stored artifact found"
    (Some "payload-bytes") (Serve.Cache.find c k);
  Alcotest.(check bool) "corrupt hook flips the artifact" true
    (Serve.Cache.corrupt c k);
  Alcotest.(check (option string)) "corrupt artifact is NEVER served" None
    (Serve.Cache.find c k);
  let s = Serve.Cache.stats c in
  Alcotest.(check int) "corruption counted" 1 s.Serve.Cache.corrupt_dropped;
  Alcotest.(check int) "entry dropped" 0 s.Serve.Cache.entries;
  (* distinct flags must give distinct keys *)
  Alcotest.(check bool) "flags are part of the key" true
    (Serve.Cache.key ~source:"s" ~flags:"a"
     <> Serve.Cache.key ~source:"s" ~flags:"b")

let test_cache_persistence () =
  let dir = Filename.temp_file "serve" ".cache" in
  Sys.remove dir;
  let c = Serve.Cache.create () in
  Serve.Cache.store c "k1" "payload one";
  Serve.Cache.store c "k2" "payload\ntwo";
  (match Serve.Cache.flush c ~dir with
   | Ok _ -> ()
   | Error e -> Alcotest.fail ("flush failed: " ^ e));
  let c2 = Serve.Cache.create () in
  Alcotest.(check int) "both entries load" 2 (Serve.Cache.load c2 ~dir);
  Alcotest.(check (option string)) "loaded payload verifies"
    (Some "payload\ntwo") (Serve.Cache.find c2 "k2");
  (* damage the file: the bad line is dropped, the rest load *)
  let path = Filename.concat dir "cache-index.v1" in
  let text = In_channel.with_open_text path In_channel.input_all in
  let damaged =
    String.concat "\n"
      (List.map
         (fun line ->
           if String.length line > 3 && String.sub line 0 2 = "k1" then
             line ^ "damage"
           else line)
         (String.split_on_char '\n' text))
  in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc damaged);
  let c3 = Serve.Cache.create () in
  Alcotest.(check int) "damaged entry dropped at load" 1
    (Serve.Cache.load c3 ~dir);
  Alcotest.(check (option string)) "damaged entry gone" None
    (Serve.Cache.find c3 "k1");
  Alcotest.(check (option string)) "survivor still verifies"
    (Some "payload\ntwo") (Serve.Cache.find c3 "k2")

(* --- circuit breaker state machine --- *)

let test_breaker () =
  let b = Serve.Supervisor.Breaker.create ~threshold:3 ~recovery:2 in
  let h = "deadbeef" in
  Alcotest.(check bool) "fresh source not tripped" false
    (Serve.Supervisor.Breaker.tripped b h);
  Serve.Supervisor.Breaker.record_failure b h;
  Serve.Supervisor.Breaker.record_failure b h;
  (* a success between failures resets the streak *)
  Serve.Supervisor.Breaker.record_success b h ~conservative:false;
  Serve.Supervisor.Breaker.record_failure b h;
  Serve.Supervisor.Breaker.record_failure b h;
  Alcotest.(check bool) "streak below threshold" false
    (Serve.Supervisor.Breaker.tripped b h);
  Serve.Supervisor.Breaker.record_failure b h;
  Alcotest.(check bool) "third consecutive failure trips" true
    (Serve.Supervisor.Breaker.tripped b h);
  (* half-open: conservative successes untrip after [recovery] in a row *)
  Serve.Supervisor.Breaker.record_success b h ~conservative:true;
  Alcotest.(check bool) "one conservative success is not enough" true
    (Serve.Supervisor.Breaker.tripped b h);
  Serve.Supervisor.Breaker.record_success b h ~conservative:true;
  Alcotest.(check bool) "recovery streak untrips" false
    (Serve.Supervisor.Breaker.tripped b h);
  Alcotest.(check bool) "other sources unaffected" false
    (Serve.Supervisor.Breaker.tripped b "other")

(* --- the supervisor fault wall, driven in-process --- *)

let sup_config ~crash_dir =
  { Serve.Supervisor.default_config with
    deadline_ms = 2000
  ; crash_dir
  ; backoff = { Serve.Backoff.default with base_ms = 1; cap_ms = 5 }
  }

let mk_job ?(faults = "") ?(exec = "interp") () =
  { Serve.Proto.source = reduce_src
  ; entry = Some "run"
  ; sizes = [ 128 ]
  ; mode = "inner-serial"
  ; exec
  ; domains = 2
  ; schedule = "static"
  ; faults
  }

let test_supervisor_clean_and_cached () =
  let t = Serve.Supervisor.create (sup_config ~crash_dir:None) in
  let cache = Serve.Cache.create () in
  let o1 =
    Serve.Supervisor.run_job t ~cache ~queue_depth:0 ~job_id:0 (mk_job ())
  in
  Alcotest.(check int) "clean job exits 0" 0 o1.Serve.Proto.exit_code;
  Alcotest.(check bool) "cold run not cached" false o1.Serve.Proto.cached;
  Alcotest.(check bool) "a checksum was computed" true
    (o1.Serve.Proto.checksum <> "-");
  let o2 =
    Serve.Supervisor.run_job t ~cache ~queue_depth:0 ~job_id:1 (mk_job ())
  in
  Alcotest.(check bool) "second run served from cache" true
    o2.Serve.Proto.cached;
  Alcotest.(check string) "cached checksum is bit-identical"
    o1.Serve.Proto.checksum o2.Serve.Proto.checksum

let test_supervisor_serve_faults () =
  let dir = Filename.temp_file "serve" ".crash" in
  Sys.remove dir;
  let t = Serve.Supervisor.create (sup_config ~crash_dir:(Some dir)) in
  let cache = Serve.Cache.create () in
  let clean =
    Serve.Supervisor.run_job t ~cache ~queue_depth:0 ~job_id:0 (mk_job ())
  in
  List.iteri
    (fun i kind ->
      let o =
        Serve.Supervisor.run_job t ~cache ~queue_depth:1 ~job_id:(i + 1)
          (mk_job ~faults:("serve:" ^ kind) ())
      in
      (* the injection is one-shot: the first attempt dies (and writes
         a bundle), the retry succeeds with the clean checksum *)
      Alcotest.(check int) (kind ^ ": retried once") 1 o.Serve.Proto.retries;
      Alcotest.(check int) (kind ^ ": job recovers") 0 o.Serve.Proto.exit_code;
      Alcotest.(check string) (kind ^ ": checksum matches clean run")
        clean.Serve.Proto.checksum o.Serve.Proto.checksum;
      Alcotest.(check bool) (kind ^ ": poisoned job never cached") false
        o.Serve.Proto.cached)
    [ "raise"; "corrupt"; "exhaust"; "hang" ];
  let bundles = Array.to_list (Sys.readdir dir) in
  Alcotest.(check int) "exactly one bundle per poisoned job" 4
    (List.length bundles);
  List.iter
    (fun f ->
      match Core.Crashbundle.read (Filename.concat dir f) with
      | Error e -> Alcotest.fail ("unreadable bundle " ^ f ^ ": " ^ e)
      | Ok b ->
        Alcotest.(check string) "bundle rung" "serve" b.Core.Crashbundle.rung;
        (match b.Core.Crashbundle.serve with
         | None -> Alcotest.fail "serve bundle missing v3 serve header"
         | Some s ->
           Alcotest.(check int) "queue depth recorded" 1
             s.Core.Crashbundle.squeue_depth))
    bundles

let test_supervisor_deterministic_failure () =
  let t = Serve.Supervisor.create (sup_config ~crash_dir:None) in
  let cache = Serve.Cache.create () in
  let o =
    Serve.Supervisor.run_job t ~cache ~queue_depth:0 ~job_id:0
      { (mk_job ()) with Serve.Proto.source = "this is not CUDA" }
  in
  Alcotest.(check int) "parse error fails the job" 2 o.Serve.Proto.exit_code;
  Alcotest.(check int) "deterministic failure is NOT retried" 0
    o.Serve.Proto.retries

let test_supervisor_breaker_trip () =
  let t =
    Serve.Supervisor.create
      { (sup_config ~crash_dir:None) with
        backoff = { Serve.Backoff.base_ms = 1; cap_ms = 2; max_retries = 0 }
      ; breaker_threshold = 2
      }
  in
  let cache = Serve.Cache.create () in
  (* a source that keeps dying in the serving layer: no retries, so
     each submission is one failed attempt *)
  for i = 0 to 1 do
    let o =
      Serve.Supervisor.run_job t ~cache ~queue_depth:0 ~job_id:i
        (mk_job ~faults:"serve:raise" ())
    in
    Alcotest.(check int) "poisoned job fails" 2 o.Serve.Proto.exit_code
  done;
  Alcotest.(check int) "breaker tripped after the threshold" 1
    (Serve.Supervisor.breaker_trips t);
  (* the same source, now clean: served conservatively via the breaker *)
  let o =
    Serve.Supervisor.run_job t ~cache ~queue_depth:0 ~job_id:2 (mk_job ())
  in
  Alcotest.(check bool) "served via the breaker" true o.Serve.Proto.breaker;
  Alcotest.(check int) "conservative service is degraded" 1
    o.Serve.Proto.exit_code

let tests =
  [ QCheck_alcotest.to_alcotest test_delay_in_bounds
  ; QCheck_alcotest.to_alcotest test_delay_deterministic
  ; QCheck_alcotest.to_alcotest test_delay_sequence_capped
  ; QCheck_alcotest.to_alcotest test_deterministic_never_retried
  ; QCheck_alcotest.to_alcotest test_transient_bounded
  ; Alcotest.test_case "protocol round trips" `Quick test_proto_roundtrip
  ; Alcotest.test_case "cache never serves corruption" `Quick
      test_cache_corruption
  ; Alcotest.test_case "cache index flush/load re-verifies" `Quick
      test_cache_persistence
  ; Alcotest.test_case "circuit breaker trip and half-open recovery" `Quick
      test_breaker
  ; Alcotest.test_case "supervisor: clean job, then bit-identical cache hit"
      `Quick test_supervisor_clean_and_cached
  ; Alcotest.test_case "supervisor: every serve:* fault contained + bundled"
      `Quick test_supervisor_serve_faults
  ; Alcotest.test_case "supervisor: deterministic failures not retried"
      `Quick test_supervisor_deterministic_failure
  ; Alcotest.test_case "supervisor: circuit breaker degrades hot failures"
      `Quick test_supervisor_breaker_trip
  ]
