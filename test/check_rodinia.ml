(* Regression harness for the static kernel checker: every benchmark of
   the Rodinia registry must come out clean (wired into `dune runtest`
   via the check-rodinia alias).

   These kernels execute correctly under the differential interpreter
   tests, so any diagnostic here is a checker false positive — except
   for warnings a benchmark legitimately triggers, which are listed in
   [expected] with a reason. *)

let expected : (string * string * string) list =
  (* benchmark, check, reason *) []

let () =
  let failures = ref 0 in
  let benches = Rodinia.Registry.matmul :: Rodinia.Registry.all in
  List.iter
    (fun (b : Rodinia.Bench_def.t) ->
      let m = Cudafe.Codegen.compile b.cuda_src in
      Core.Canonicalize.run m;
      Core.Cse.run m;
      ignore (Core.Mem2reg.run m);
      Core.Canonicalize.run m;
      let diags = Analysis.Kernelcheck.check_module m in
      let unexpected =
        List.filter
          (fun (d : Analysis.Diag.t) ->
            not
              (List.exists
                 (fun (name, check, _) -> name = b.name && check = d.check)
                 expected))
          diags
      in
      if unexpected = [] then
        Printf.printf "%-16s clean (%d expected diagnostic(s))\n" b.name
          (List.length diags)
      else begin
        incr failures;
        Printf.printf "%-16s UNEXPECTED DIAGNOSTICS:\n" b.name;
        List.iter
          (fun d ->
            print_endline
              ("  " ^ Analysis.Diag.to_string ~file:(b.name ^ ".cu") d))
          unexpected
      end;
      (* And the full lowering pipeline, re-verifying the IR and
         re-running the race check after every pass: a definite race must
         never appear mid-lowering in a race-free kernel. *)
      let m2 = Cudafe.Codegen.compile b.cuda_src in
      List.iter
        (fun (pass, f) ->
          f m2;
          (match Ir.Verifier.verify_result m2 with
           | Ok () -> ()
           | Error e ->
             incr failures;
             Printf.printf "%-16s IR DOES NOT VERIFY after %s: %s\n" b.name
               pass e);
          let races =
            List.filter Analysis.Diag.is_error
              (Analysis.Kernelcheck.check_module_races m2)
          in
          if races <> [] then begin
            incr failures;
            Printf.printf "%-16s RACE INTRODUCED by pass %s:\n" b.name pass;
            List.iter
              (fun d ->
                print_endline
                  ("  " ^ Analysis.Diag.to_string ~file:(b.name ^ ".cu") d))
              races
          end)
        (Core.Cpuify.pipeline_stages ()))
    benches;
  if !failures > 0 then begin
    Printf.printf "%d benchmark(s) with unexpected diagnostics\n" !failures;
    exit 1
  end
  else print_endline "all Rodinia kernels pass the static checker"
