(* polygeist-cpu: the command-line driver, mirroring the paper's drop-in
   usage (Sec. III-C).  It accepts a mini-CUDA file and, like the real
   tool, [-cuda-lower] selects GPU-to-CPU translation while [-cpuify]
   picks the lowering/optimization recipe.  [-check] runs the static
   kernel sanitizer (races, barrier divergence, shared-memory init)
   instead of lowering.

     polygeist-cpu kernel.cu -cuda-lower -emit-ir
     polygeist-cpu kernel.cu -cuda-lower -cpuify=inner-serial -run main 1024
     polygeist-cpu kernel.cu -mcuda -time 32
     polygeist-cpu kernel.cu -check
     polygeist-cpu kernel.cu -check-after-each-pass *)

open Cmdliner

type cpuify_mode =
  | Inner_serial
  | Inner_parallel
  | No_opt

(* The checks compare index expressions syntactically, so give them the
   same normalized IR the barrier optimizations see. *)
let cleanup (m : Ir.Op.op) : unit =
  Core.Canonicalize.run m;
  Core.Cse.run m;
  ignore (Core.Mem2reg.run m);
  Core.Canonicalize.run m

let print_diags ~file diags =
  List.iter
    (fun d -> print_endline (Analysis.Diag.to_string ~file d))
    diags

(* -check: frontend, cleanup, sanitize; nonzero exit iff errors. *)
let check_source ~file (m : Ir.Op.op) : (unit, [ `Msg of string ]) result =
  cleanup m;
  let diags = Analysis.Kernelcheck.check_module m in
  print_diags ~file diags;
  let errs = List.filter Analysis.Diag.is_error diags in
  if diags = [] then begin
    Printf.printf "%s: no issues found\n" file;
    Ok ()
  end
  else if errs = [] then Ok ()
  else
    Error
      (`Msg
        (Printf.sprintf "kernel check failed: %d error(s) in %s"
           (List.length errs) file))

(* -check-after-each-pass: run the full cpuify pipeline one pass at a
   time, re-verifying the IR and re-running the race check after every
   pass — a definite race must never APPEAR mid-pipeline in a race-free
   program, so any new one is a miscompilation. *)
let check_after_each_pass ~file (m : Ir.Op.op) :
  (unit, [ `Msg of string ]) result =
  let stage name =
    match Ir.Verifier.verify_result m with
    | Error e ->
      Error (`Msg (Printf.sprintf "IR does not verify after %s: %s" name e))
    | Ok () ->
      let races =
        List.filter Analysis.Diag.is_error
          (Analysis.Kernelcheck.check_module_races m)
      in
      if races = [] then Ok ()
      else begin
        print_diags ~file races;
        Error
          (`Msg
            (if name = "frontend" then
               Printf.sprintf
                 "input kernel already has %d data race(s); fix them before \
                  lowering"
                 (List.length races)
             else
               Printf.sprintf "race introduced by pass %s (%d diagnostic(s))"
                 name (List.length races)))
      end
  in
  let rec go = function
    | [] ->
      Printf.printf "%s: pipeline clean (verifier + race check after every \
                     pass)\n" file;
      Ok ()
    | (name, f) :: rest -> begin
      f m;
      match stage name with Ok () -> go rest | Error _ as e -> e
    end
  in
  match stage "frontend" with
  | Error _ as e -> e
  | Ok () -> go (Core.Cpuify.pipeline_stages ())

let build ~(mcuda : bool) ~(cuda_lower : bool) ~(mode : cpuify_mode)
    (src : string) : Ir.Op.op =
  let m = Cudafe.Codegen.compile src in
  if mcuda then Mcuda.lower m
  else if cuda_lower then begin
    (match mode with
     | Inner_serial ->
       Core.Cpuify.pipeline m;
       ignore (Core.Omp_lower.run m)
     | Inner_parallel ->
       Core.Cpuify.pipeline m;
       ignore (Core.Omp_lower.run ~options:Core.Omp_lower.inner_par_options m)
     | No_opt ->
       Core.Cpuify.run ~use_mincut:false m;
       ignore (Core.Omp_lower.run m));
    Core.Canonicalize.run m
  end;
  (match Ir.Verifier.verify_result m with
   | Ok () -> ()
   | Error e -> failwith ("internal error: lowered IR does not verify: " ^ e));
  m

let run_entry (m : Ir.Op.op) (entry : string) (sizes : int list) :
  (unit, [ `Msg of string ]) result =
  (* integer arguments are passed through; every pointer parameter gets a
     zero-initialized float/int buffer of the first size argument *)
  match Ir.Op.find_func m entry with
  | None -> Error (`Msg (Printf.sprintf "no function @%s in the module" entry))
  | Some f ->
    let default_n = match sizes with n :: _ -> n | [] -> 64 in
    let sizes = ref sizes in
    let args =
      Array.to_list f.Ir.Op.regions.(0).rargs
      |> List.map (fun (p : Ir.Value.t) ->
          match p.Ir.Value.typ with
          | Ir.Types.Memref { elem; _ } ->
            if Ir.Types.is_float_dtype elem then
              Interp.Mem.Buf (Interp.Mem.of_float_array (Array.make default_n 0.0))
            else Interp.Mem.Buf (Interp.Mem.of_int_array (Array.make default_n 0))
          | Ir.Types.Scalar d when Ir.Types.is_int_dtype d -> begin
            match !sizes with
            | n :: rest ->
              sizes := rest;
              Interp.Mem.Int n
            | [] -> Interp.Mem.Int default_n
          end
          | Ir.Types.Scalar _ -> Interp.Mem.Flt 1.0)
    in
    let _, stats = Interp.Eval.run m entry args in
    Printf.printf
      "executed @%s: %d ops, %d loads, %d stores, %d barrier waits\n" entry
      stats.Interp.Eval.ops stats.Interp.Eval.loads stats.Interp.Eval.stores
      stats.Interp.Eval.barriers;
    Ok ()

let time_entry (m : Ir.Op.op) ~(machine : string) ~(threads : int)
    (run_name : string option) (sizes : int list) :
  (unit, [ `Msg of string ]) result =
  let mach = Runtime.Machine.by_name machine in
  let entry =
    match run_name with
    | Some e -> Some e
    | None -> begin
      match Ir.Op.funcs m with
      | f :: _ -> Some (Ir.Op.func_name f)
      | [] -> None
    end
  in
  match entry with
  | None -> Error (`Msg "empty module: nothing to time")
  | Some entry -> begin
    match Ir.Op.find_func m entry with
    | None -> Error (`Msg (Printf.sprintf "no function @%s" entry))
    | Some f ->
      let sizes = ref sizes in
      let args =
        Array.to_list f.Ir.Op.regions.(0).rargs
        |> List.map (fun (p : Ir.Value.t) ->
            match p.Ir.Value.typ with
            | Ir.Types.Scalar d when Ir.Types.is_int_dtype d -> begin
              match !sizes with
              | n :: rest ->
                sizes := rest;
                Runtime.Cost.Ki n
              | [] -> Runtime.Cost.Ki 1024
            end
            | _ -> Runtime.Cost.Unk)
      in
      let r = Runtime.Cost.of_func mach ~threads m entry args in
      Printf.printf "simulated time @%s on %s with %d threads: %.4e s\n" entry
        mach.Runtime.Machine.name threads r.Runtime.Cost.seconds;
      Ok ()
  end

let main file cuda_lower mcuda mode emit_ir run_name sizes time_threads
    machine check check_each : (unit, [ `Msg of string ]) result =
  let src = In_channel.with_open_text file In_channel.input_all in
  if check || check_each then begin
    (* the flags compose: with both, the full pre-lowering check gates the
       per-pass sweep (which only re-runs the race check — divergence and
       shared-init lose meaning mid-lowering) *)
    let first =
      if check then check_source ~file (Cudafe.Codegen.compile src)
      else Ok ()
    in
    match first with
    | Error _ as e -> e
    | Ok () ->
      if check_each then
        check_after_each_pass ~file (Cudafe.Codegen.compile src)
      else Ok ()
  end
  else begin
    let m = build ~mcuda ~cuda_lower:(cuda_lower || mcuda) ~mode src in
    if emit_ir then print_string (Ir.Printer.op_to_string m);
    let ran =
      match run_name with
      | Some entry -> run_entry m entry sizes
      | None -> Ok ()
    in
    match ran with
    | Error _ as e -> e
    | Ok () -> begin
      match time_threads with
      | Some threads -> time_entry m ~machine ~threads run_name sizes
      | None -> Ok ()
    end
  end

let cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.cu"
           ~doc:"mini-CUDA source file")
  in
  let cuda_lower =
    Arg.(value & flag & info [ "cuda-lower" ]
           ~doc:"translate GPU constructs to CPU (the paper's -cuda-lower)")
  in
  let mcuda =
    Arg.(value & flag & info [ "mcuda" ]
           ~doc:"use the MCUDA-style baseline lowering instead")
  in
  let cpuify =
    let modes =
      [ ("inner-serial", Inner_serial)
      ; ("inner-parallel", Inner_parallel)
      ; ("no-opt", No_opt)
      ]
    in
    Arg.(value & opt (enum modes) Inner_serial & info [ "cpuify" ]
           ~doc:(Printf.sprintf "lowering recipe, one of %s"
                   (Arg.doc_alts_enum modes)))
  in
  let emit_ir =
    Arg.(value & flag & info [ "emit-ir" ] ~doc:"print the (lowered) IR")
  in
  let run_name =
    Arg.(value & opt (some string) None & info [ "run" ]
           ~doc:"interpret the given host function")
  in
  let sizes =
    Arg.(value & opt_all int [] & info [ "size" ]
           ~doc:"integer argument(s) for -run/-time (repeatable)")
  in
  let time_threads =
    Arg.(value & opt (some int) None & info [ "time" ]
           ~doc:"report simulated time with this many threads")
  in
  let machine =
    Arg.(value & opt string "commodity" & info [ "machine" ]
           ~doc:"machine model: commodity | a64fx")
  in
  let check =
    Arg.(value & flag & info [ "check" ]
           ~doc:"run the static kernel sanitizer (data races, barrier \
                 divergence, uninitialized __shared__ reads) on the \
                 pre-lowering IR and exit; nonzero exit iff errors")
  in
  let check_each =
    Arg.(value & flag & info [ "check-after-each-pass" ]
           ~doc:"run the -cpuify pipeline one pass at a time, re-running \
                 the IR verifier and the race check after every pass")
  in
  Cmd.v
    (Cmd.info "polygeist-cpu" ~doc:"CUDA to CPU transpiler (paper reproduction)")
    Term.(
      term_result
        (const main $ file $ cuda_lower $ mcuda $ cpuify $ emit_ir $ run_name
         $ sizes $ time_threads $ machine $ check $ check_each))

let () = exit (Cmd.eval cmd)
