(* polygeist-cpu: the command-line driver, mirroring the paper's drop-in
   usage (Sec. III-C).  It accepts a mini-CUDA file and, like the real
   tool, [-cuda-lower] selects GPU-to-CPU translation while [-cpuify]
   picks the lowering/optimization recipe.  [-check] runs the static
   kernel sanitizer (races, barrier divergence, shared-memory init)
   instead of lowering.

     polygeist-cpu kernel.cu -cuda-lower -emit-ir
     polygeist-cpu kernel.cu -cuda-lower -cpuify=inner-serial -run main 1024
     polygeist-cpu kernel.cu -mcuda -time 32
     polygeist-cpu kernel.cu -check
     polygeist-cpu kernel.cu -check-after-each-pass

   The optimized pipeline runs under the fault-tolerant pass manager:
   a failing stage is rolled back and the degradation ladder engages
   (min-cut split -> cache-everything split -> skip -> conservative
   no-opt lowering), so translation degrades instead of crashing.

   Exit codes: 0 = success, 1 = success but degraded (a stage failed
   and a ladder rung engaged), 2 = failure (every pipeline error is
   reported as a message, never as a raw exception/backtrace), 124/125 =
   CLI parse error / internal error (Cmdliner conventions).

     polygeist-cpu kernel.cu -cuda-lower --crash-dir crashes -run main
     polygeist-cpu kernel.cu -cuda-lower --inject-fault cpuify:raise
     polygeist-cpu kernel.cu -cuda-lower --fault-seed 42
     polygeist-cpu --replay crashes/crash-000-cpuify.bundle *)

open Cmdliner

type cpuify_mode =
  | Inner_serial
  | Inner_parallel
  | No_opt

(* Map any escaping exception to a term_result error message: the user
   sees a diagnostic, not a backtrace, and the process exits 2. *)
let guard (what : string) (f : unit -> ('a, [ `Msg of string ]) result) :
  ('a, [ `Msg of string ]) result =
  match f () with
  | r -> r
  | exception Cudafe.Parser.Error e -> Error (`Msg ("parse error: " ^ e))
  | exception Cudafe.Codegen.Error e -> Error (`Msg ("codegen error: " ^ e))
  | exception Core.Cpuify.Stuck e -> Error (`Msg ("cpuify: " ^ e))
  | exception Interp.Mem.Runtime_error e ->
    Error (`Msg ("runtime error: " ^ e))
  | exception e ->
    Error (`Msg (Printf.sprintf "%s: %s" what (Printexc.to_string e)))

(* The checks compare index expressions syntactically, so give them the
   same normalized IR the barrier optimizations see. *)
let cleanup (m : Ir.Op.op) : unit =
  Core.Canonicalize.run m;
  Core.Cse.run m;
  ignore (Core.Mem2reg.run m);
  Core.Canonicalize.run m

let print_diags ~file diags =
  List.iter
    (fun d -> print_endline (Analysis.Diag.to_string ~file d))
    diags

(* -check: frontend, cleanup, sanitize.  Exit 0 when clean (or only
   warnings), EXIT_CHECK_FINDINGS (4) when the sanitizer reports errors
   — distinct from 2 so CI can tell "the kernel is buggy" from "the
   tool failed". *)
let exit_check_findings = 4

let check_source ~file ~format (m : Ir.Op.op) :
  (int, [ `Msg of string ]) result =
  cleanup m;
  let diags = Analysis.Kernelcheck.check_module m in
  (match format with
   | `Text ->
     print_diags ~file diags;
     if diags = [] then Printf.printf "%s: no issues found\n" file
   | `Json -> print_endline (Analysis.Diag.list_to_json ~file diags));
  let errs = List.filter Analysis.Diag.is_error diags in
  if errs = [] then Ok 0
  else begin
    if format = `Text then
      Printf.eprintf "polygeist-cpu: kernel check failed: %d error(s) in %s\n"
        (List.length errs) file;
    Ok exit_check_findings
  end

(* -repair: frontend, cleanup, sanitize, then the analysis-guided
   barrier-repair search.  A repair is accepted only when the sanitizer
   comes back clean AND — for programs following the fuzzer's [launch]
   differential contract — the repaired module matches the GPU-semantics
   reference on the whole differential oracle (every pipeline stage,
   both executors at 1 and 4 domains).  Prints the patch as
   file:line:col edits followed by the repaired pre-lowering IR. *)
let repair_source ~file (m : Ir.Op.op) : (int, [ `Msg of string ]) result =
  cleanup m;
  let validate m' =
    match Ir.Op.find_func m' Fuzz.Oracle.entry with
    | None -> Ok () (* no differential contract: sanitizer-only *)
    | Some _ -> (
      match Fuzz.Oracle.run_module m' with
      | Fuzz.Oracle.Passed -> Ok ()
      | Fuzz.Oracle.Failed f -> Error (Fuzz.Oracle.failure_to_string f))
  in
  let initial_definite =
    List.exists Analysis.Diag.is_error
      (List.filter Core.Repair.target_diag
         (Analysis.Kernelcheck.check_module ~report_possible:true m))
  in
  let out = Core.Repair.run ~validate m in
  let tried = out.Core.Repair.stats.Core.Repair.candidates_tried in
  match out.Core.Repair.status with
  | Core.Repair.Clean ->
    Printf.printf "%s: no issues found, nothing to repair\n" file;
    Ok 0
  | Core.Repair.Repaired edits ->
    Printf.printf "%s: repaired with %d barrier edit(s) (%d candidate(s) \
                   tried):\n" file (List.length edits) tried;
    List.iter
      (fun e -> print_endline ("  " ^ Core.Repair.edit_to_string ~file e))
      edits;
    print_newline ();
    print_string (Ir.Printer.op_to_string m);
    Ok 0
  | Core.Repair.Failed why when not initial_definite ->
    (* Only warning-level possible races (opaque indices the analysis
       cannot prove disjoint) — kernel findings, not a tool failure. *)
    Printf.printf
      "%s: no definite errors; possible races remain unproven and no \
       barrier edit discharges them (%s)\n"
      file why;
    Ok exit_check_findings
  | Core.Repair.Failed why ->
    Error (`Msg (Printf.sprintf "repair failed for %s: %s" file why))

(* -check-after-each-pass: run the full cpuify pipeline one pass at a
   time, re-verifying the IR and re-running the race check after every
   pass — a definite race must never APPEAR mid-pipeline in a race-free
   program, so any new one is a miscompilation. *)
let check_after_each_pass ~file (m : Ir.Op.op) :
  (unit, [ `Msg of string ]) result =
  let stage name =
    match Ir.Verifier.verify_result m with
    | Error e ->
      Error (`Msg (Printf.sprintf "IR does not verify after %s: %s" name e))
    | Ok () ->
      let races =
        List.filter Analysis.Diag.is_error
          (Analysis.Kernelcheck.check_module_races m)
      in
      if races = [] then Ok ()
      else begin
        print_diags ~file races;
        Error
          (`Msg
            (if name = "frontend" then
               Printf.sprintf
                 "input kernel already has %d data race(s); fix them before \
                  lowering"
                 (List.length races)
             else
               Printf.sprintf "race introduced by pass %s (%d diagnostic(s))"
                 name (List.length races)))
      end
  in
  let rec go = function
    | [] ->
      Printf.printf "%s: pipeline clean (verifier + race check after every \
                     pass)\n" file;
      Ok ()
    | (name, f) :: rest -> begin
      f m;
      match stage name with Ok () -> go rest | Error _ as e -> e
    end
  in
  match stage "frontend" with
  | Error _ as e -> e
  | Ok () -> go (Core.Cpuify.pipeline_stages ())

(* Build the lowered module.  The optimized recipes run under the
   fault-tolerant pass manager; [`Degraded] reports how far the
   degradation ladder had to descend. *)
let build ~(mcuda : bool) ~(cuda_lower : bool) ~(mode : cpuify_mode)
    ~(faults : Core.Fault.plan) ~(crash_dir : string option)
    ~(repro : string) (src : string) :
  (Ir.Op.op * [ `Full | `Degraded of Core.Passmgr.report ],
   [ `Msg of string ])
  result =
  let m = Cudafe.Codegen.compile src in
  let status = ref `Full in
  let lower () =
    if mcuda then begin
      Mcuda.lower m;
      Ok ()
    end
    else if cuda_lower then begin
      match mode with
      | No_opt -> begin
        match Core.Cpuify.run_result ~use_mincut:false m with
        | Ok () ->
          ignore (Core.Omp_lower.run m);
          Ok ()
        | Error e -> Error (`Msg ("cpuify: " ^ Core.Cpuify.error_to_string e))
      end
      | Inner_serial | Inner_parallel -> begin
        match
          Core.Passmgr.run_pipeline ~faults ?crash_dir ~source:src ~repro m
        with
        | Ok report ->
          if Core.Passmgr.degraded report then begin
            prerr_string
              ("polygeist-cpu: pipeline degraded:\n"
               ^ Core.Passmgr.report_to_string report);
            status := `Degraded report
          end;
          (* after the whole-pipeline fallback the module is exactly the
             no-opt lowering: keep the OpenMP step conservative too *)
          let omp_options =
            if report.Core.Passmgr.fell_back then
              Core.Omp_lower.default_options
            else begin
              match mode with
              | Inner_parallel -> Core.Omp_lower.inner_par_options
              | _ -> Core.Omp_lower.default_options
            end
          in
          ignore (Core.Omp_lower.run ~options:omp_options m);
          Ok ()
        | Error (report, failure) ->
          prerr_string (Core.Passmgr.report_to_string report);
          Error
            (`Msg
              ("pipeline failed beyond recovery: "
               ^ Core.Passmgr.failure_to_string failure))
      end
    end
    else Ok ()
  in
  match lower () with
  | Error _ as e -> e
  | Ok () ->
    if cuda_lower && not mcuda then Core.Canonicalize.run m;
    (match Ir.Verifier.verify_result m with
     | Ok () -> Ok (m, !status)
     | Error e ->
       Error (`Msg ("internal error: lowered IR does not verify: " ^ e)))

(* Argument synthesis for -run: integer arguments come from --size;
   every pointer parameter gets a float/int buffer of the first size
   argument, filled with a deterministic pattern so the output checksum
   is meaningful.  The definition lives in [Serve.Supervisor] so the
   compile daemon and the one-shot CLI can never drift apart — the
   smoke test asserts their checksums match.  Callers that retry
   execution (runtime degradation) must call this again: a failed
   parallel run may have half-mutated the previous buffers. *)
let make_args = Serve.Supervisor.make_args

(* Commutative digest of the final buffer contents: the semantic output,
   identical across correct lowerings AND across serial/parallel
   executions of the same race-free program (the sum of per-element
   hashes does not depend on which thread wrote an element when). *)
let print_checksum (entry : string) (args : Interp.Mem.rv list) : unit =
  let bufs =
    List.filter_map
      (function Interp.Mem.Buf b -> Some b | _ -> None)
      args
    |> Array.of_list
  in
  Printf.printf "output checksum @%s: %.9g\n" entry (Interp.Mem.checksum bufs)

let run_serial (m : Ir.Op.op) (f : Ir.Op.op) (entry : string)
    (sizes : int list) : unit =
  let args = make_args f sizes in
  let _, stats = Interp.Eval.run m entry args in
  Printf.printf
    "executed @%s: %d ops, %d loads, %d stores, %d barrier waits\n" entry
    stats.Interp.Eval.ops stats.Interp.Eval.loads stats.Interp.Eval.stores
    stats.Interp.Eval.barriers;
  print_checksum entry args

let schedule_name = function
  | Runtime.Schedule.Static -> "static"
  | Runtime.Schedule.Dynamic -> "dynamic"
  | Runtime.Schedule.Guided -> "guided"

let schedule_of_name = function
  | "dynamic" -> Runtime.Schedule.Dynamic
  | "guided" -> Runtime.Schedule.Guided
  | _ -> Runtime.Schedule.Static

(* Why a parallel execution failed, as the one-line diagnostic that also
   identifies the failure in a runtime crash bundle. *)
let runtime_why = function
  | Runtime.Exec.Unsupported s -> "unsupported: " ^ s
  | Runtime.Exec.Injected -> "injected fault"
  | Runtime.Exec.Timeout ms ->
    Printf.sprintf "timeout: launch exceeded %d ms (watchdog cancel)" ms
  | Interp.Mem.Runtime_error s -> s
  | e -> Printexc.to_string e

(* Returns [Ok true] when the parallel runtime failed and execution
   degraded to the serial interpreter (one more degradation rung, exit
   code 1).  On such a failure, [crash_dir] (when given) receives a
   replayable runtime crash bundle recording the execution
   configuration alongside the usual pipeline context. *)
let run_entry ~(exec : [ `Interp | `Parallel ]) ~(domains : int)
    ~(schedule : Runtime.Schedule.policy) ~(chunk : int option)
    ~(team_reuse : bool) ~(stats : bool)
    ~(runtime_fault : Core.Fault.kind option) ~(timeout_ms : int)
    ~(crash_dir : string option) ~(faults : Core.Fault.plan)
    ~(src : string) ~(repro : string) (m : Ir.Op.op) (entry : string)
    (sizes : int list) : (bool, [ `Msg of string ]) result =
  match Ir.Op.find_func m entry with
  | None -> Error (`Msg (Printf.sprintf "no function @%s in the module" entry))
  | Some f -> begin
    match exec with
    | `Interp ->
      run_serial m f entry sizes;
      Ok false
    | `Parallel -> begin
      let args = make_args f sizes in
      (* [hang] parks a team thread until the watchdog cancels; every
         other runtime fault kind raises mid-launch *)
      let inject_hang = runtime_fault = Some Core.Fault.Hang in
      let inject_fault = runtime_fault <> None && not inject_hang in
      match
        Runtime.Exec.run_module ~domains ~schedule ?chunk ~team_reuse
          ~inject_fault ~inject_hang ~timeout_ms m entry args
      with
      | _, rstats ->
        Printf.printf
          "executed @%s: parallel runtime, %d domains, %d launches, %d \
           barrier phases, %d domain spawns\n"
          entry domains rstats.Runtime.Exec.launches
          rstats.Runtime.Exec.barrier_phases
          rstats.Runtime.Exec.domain_spawns;
        if stats then
          Printf.printf
            "runtime stats @%s: launches=%d barrier_phases=%d \
             domain_spawns=%d chunks_grabbed=%d frames_allocated=%d\n"
            entry rstats.Runtime.Exec.launches
            rstats.Runtime.Exec.barrier_phases
            rstats.Runtime.Exec.domain_spawns
            rstats.Runtime.Exec.chunks_grabbed
            rstats.Runtime.Exec.frames_allocated;
        print_checksum entry args;
        Ok false
      | exception e ->
        (* runtime failure is one more degradation rung: report, then
           fall back to the serial interpreter on FRESH arguments (the
           failed run may have partially mutated the buffers) *)
        let why = runtime_why e in
        Printf.eprintf
          "polygeist-cpu: parallel runtime failed (%s); degrading to the \
           serial interpreter\n"
          why;
        (match crash_dir with
         | None -> ()
         | Some dir ->
           let bundle =
             { Core.Crashbundle.version = Core.Crashbundle.current_version
             ; stage = "runtime"
             ; stage_index = 0
             ; rung = "runtime"
             ; exn_text = why
             ; backtrace = ""
             ; repro
             ; options = Core.Cpuify.default_options
             ; faults
             ; runtime =
                 Some
                   { rexec = "parallel"
                   ; rdomains = domains
                   ; rschedule = schedule_name schedule
                   ; rchunk = chunk
                   ; rseed = None
                   ; rtimeout_ms =
                       (if timeout_ms > 0 then Some timeout_ms else None)
                   }
             ; serve = None
             ; source = src
             ; ir_before = Ir.Printer.op_to_string m
             }
           in
           (match Core.Crashbundle.write ~dir bundle with
            | Ok path ->
              Printf.eprintf "polygeist-cpu: wrote runtime crash bundle %s\n"
                path
            | Error msg ->
              Printf.eprintf "polygeist-cpu: could not write crash bundle: %s\n"
                msg));
        (* this degradation rung abandons the parallel engine: tear the
           cached pool down (leaking any wedged worker) so the serial
           re-run does not share the process with a poisoned team *)
        Runtime.Pool.shutdown_cached ();
        run_serial m f entry sizes;
        Ok true
    end
  end

let time_entry (m : Ir.Op.op) ~(machine : string) ~(threads : int)
    (run_name : string option) (sizes : int list) :
  (unit, [ `Msg of string ]) result =
  let mach = Runtime.Machine.by_name machine in
  let entry =
    match run_name with
    | Some e -> Some e
    | None -> begin
      match Ir.Op.funcs m with
      | f :: _ -> Some (Ir.Op.func_name f)
      | [] -> None
    end
  in
  match entry with
  | None -> Error (`Msg "empty module: nothing to time")
  | Some entry -> begin
    match Ir.Op.find_func m entry with
    | None -> Error (`Msg (Printf.sprintf "no function @%s" entry))
    | Some f ->
      let sizes = ref sizes in
      let args =
        Array.to_list f.Ir.Op.regions.(0).rargs
        |> List.map (fun (p : Ir.Value.t) ->
            match p.Ir.Value.typ with
            | Ir.Types.Scalar d when Ir.Types.is_int_dtype d -> begin
              match !sizes with
              | n :: rest ->
                sizes := rest;
                Runtime.Cost.Ki n
              | [] -> Runtime.Cost.Ki 1024
            end
            | _ -> Runtime.Cost.Unk)
      in
      let r = Runtime.Cost.of_func mach ~threads m entry args in
      Printf.printf "simulated time @%s on %s with %d threads: %.4e s\n" entry
        mach.Runtime.Machine.name threads r.Runtime.Cost.seconds;
      Ok ()
  end

(* Replaying a fuzz bundle (rung "fuzz"): re-run the differential
   oracle on the embedded reduced source and require the same stage and
   failure class. *)
let replay_fuzz (b : Core.Crashbundle.t) : (int, [ `Msg of string ]) result =
  guard "replay" (fun () ->
      match Fuzz.Fuzzer.replay b with
      | Ok s ->
        Printf.printf "replay: reproduced the recorded fuzz failure\n  %s\n" s;
        Ok 0
      | Error msg ->
        Printf.printf
          "replay: %s\n\
           replay: the recorded failure did NOT reproduce (stale bundle?)\n"
          msg;
        Ok 3)

(* Replaying a runtime bundle (stage "runtime"): rebuild the lowered
   module from the embedded source under the recorded options and fault
   plan, then re-run the recorded parallel execution configuration; the
   recorded failure text must recur. *)
let replay_runtime (b : Core.Crashbundle.t) : (int, [ `Msg of string ]) result
    =
  guard "replay" (fun () ->
      let m = Cudafe.Codegen.compile b.Core.Crashbundle.source in
      (match
         Core.Passmgr.run_pipeline ~options:b.Core.Crashbundle.options
           ~faults:b.Core.Crashbundle.faults
           ~source:b.Core.Crashbundle.source ~repro:b.Core.Crashbundle.repro
           m
       with
       | Ok _ -> ()
       | Error (_, f) ->
         Printf.printf "replay: pipeline failed first: %s\n"
           (Core.Passmgr.failure_to_string f));
      ignore (Core.Omp_lower.run m);
      Core.Canonicalize.run m;
      let rt =
        match b.Core.Crashbundle.runtime with
        | Some rt -> rt
        | None ->
          { Core.Crashbundle.rexec = "parallel"
          ; rdomains = 4
          ; rschedule = "static"
          ; rchunk = None
          ; rseed = None
          ; rtimeout_ms = None
          }
      in
      (* the entry name and --size arguments live in the recorded
         command line *)
      let entry, sizes =
        let entry = ref None and sizes = ref [] in
        let rec scan = function
          | ("-run" | "--run") :: v :: rest ->
            entry := Some v;
            scan rest
          | ("-size" | "--size") :: v :: rest ->
            (match int_of_string_opt v with
             | Some n -> sizes := !sizes @ [ n ]
             | None -> ());
            scan rest
          | _ :: rest -> scan rest
          | [] -> ()
        in
        scan (String.split_on_char ' ' b.Core.Crashbundle.repro);
        let entry =
          match !entry with
          | Some e -> e
          | None -> begin
            match Ir.Op.funcs m with
            | f :: _ -> Ir.Op.func_name f
            | [] -> ""
          end
        in
        (entry, !sizes)
      in
      match Ir.Op.find_func m entry with
      | None -> Error (`Msg (Printf.sprintf "replay: no function @%s" entry))
      | Some f ->
        let args = make_args f sizes in
        let runtime_faults =
          List.filter
            (fun (s, _) -> s = "runtime")
            b.Core.Crashbundle.faults
        in
        let inject_hang =
          List.exists (fun (_, k) -> k = Core.Fault.Hang) runtime_faults
        in
        let inject_fault = (not inject_hang) && runtime_faults <> [] in
        let why =
          match
            Runtime.Exec.run_module ~domains:rt.rdomains
              ~schedule:(schedule_of_name rt.rschedule)
              ?chunk:rt.rchunk ~inject_fault ~inject_hang
              ~timeout_ms:(Option.value rt.rtimeout_ms ~default:0)
              m entry args
          with
          | _ -> None
          | exception e -> Some (runtime_why e)
        in
        (match why with
         | Some why when String.equal why b.Core.Crashbundle.exn_text ->
           Printf.printf
             "replay: reproduced the recorded runtime failure\n  %s\n" why;
           Ok 0
         | Some why ->
           Printf.printf
             "replay: saw instead: %s\n\
              replay: the recorded failure did NOT reproduce (stale \
              bundle?)\n"
             why;
           Ok 3
         | None ->
           Printf.printf
             "replay: parallel execution now succeeds\n\
              replay: the recorded failure did NOT reproduce (stale \
              bundle?)\n";
           Ok 3))

(* Replaying a serve bundle (rung "serve"): rebuild the job the daemon
   was running from the bundle (source, recorded execution config, the
   entry/sizes embedded in the repro line, the full fault plan) and run
   ONE unsupervised attempt through the same fault wall.  The recorded
   failure text must recur. *)
let replay_serve (b : Core.Crashbundle.t) : (int, [ `Msg of string ]) result =
  guard "replay" (fun () ->
      let entry = ref None and sizes = ref [] and mode = ref "inner-serial" in
      let rec scan = function
        | ("-run" | "--run") :: v :: rest ->
          entry := Some v;
          scan rest
        | ("-size" | "--size") :: v :: rest ->
          (match int_of_string_opt v with
           | Some n -> sizes := !sizes @ [ n ]
           | None -> ());
          scan rest
        | ("-cpuify" | "--cpuify") :: v :: rest ->
          mode := v;
          scan rest
        | _ :: rest -> scan rest
        | [] -> ()
      in
      scan (String.split_on_char ' ' b.Core.Crashbundle.repro);
      let rt =
        match b.Core.Crashbundle.runtime with
        | Some rt -> rt
        | None ->
          { Core.Crashbundle.rexec = "parallel"
          ; rdomains = 4
          ; rschedule = "static"
          ; rchunk = None
          ; rseed = None
          ; rtimeout_ms = None
          }
      in
      let job =
        { Serve.Proto.source = b.Core.Crashbundle.source
        ; entry = !entry
        ; sizes = !sizes
        ; mode = !mode
        ; exec = rt.Core.Crashbundle.rexec
        ; domains = rt.Core.Crashbundle.rdomains
        ; schedule = rt.Core.Crashbundle.rschedule
        ; faults = Core.Fault.plan_to_string b.Core.Crashbundle.faults
        }
      in
      let deadline_ms = Option.value rt.Core.Crashbundle.rtimeout_ms ~default:0 in
      match Serve.Supervisor.replay_attempt ~deadline_ms job with
      | Error why when String.equal why b.Core.Crashbundle.exn_text ->
        Printf.printf "replay: reproduced the recorded serve failure\n  %s\n"
          why;
        Ok 0
      | Error why ->
        Printf.printf
          "replay: saw instead: %s\n\
           replay: the recorded failure did NOT reproduce (stale bundle?)\n"
          why;
        Ok 3
      | Ok _ ->
        Printf.printf
          "replay: the job now succeeds\n\
           replay: the recorded failure did NOT reproduce (stale bundle?)\n";
        Ok 3)

(* --replay: recompile the bundle's embedded source and re-run the
   pipeline under the recorded options and fault plan; the pipeline is
   deterministic, so the recorded failure must recur.  Exit 0 when it
   does, 3 when the bundle is stale and it does not.  Fuzz, runtime and
   serve bundles dispatch to their own replay logic. *)
let do_replay (path : string) : (int, [ `Msg of string ]) result =
  match Core.Crashbundle.read path with
  | Error e -> Error (`Msg e)
  | Ok b when b.Core.Crashbundle.rung = "fuzz" -> replay_fuzz b
  | Ok b when b.Core.Crashbundle.rung = "serve" -> replay_serve b
  | Ok b when b.Core.Crashbundle.stage = "runtime" -> replay_runtime b
  | Ok b ->
    guard "replay" (fun () ->
        let m = Cudafe.Codegen.compile b.Core.Crashbundle.source in
        let outcome =
          Core.Passmgr.run_pipeline ~options:b.Core.Crashbundle.options
            ~faults:b.Core.Crashbundle.faults
            ~source:b.Core.Crashbundle.source ~repro:b.Core.Crashbundle.repro
            m
        in
        let failures =
          match outcome with
          | Ok report -> report.Core.Passmgr.failures
          | Error (report, f) -> report.Core.Passmgr.failures @ [ f ]
        in
        let matches (f : Core.Passmgr.stage_failure) =
          f.Core.Passmgr.stage = b.Core.Crashbundle.stage
          && Core.Passmgr.rung_to_string f.Core.Passmgr.rung
             = b.Core.Crashbundle.rung
          && f.Core.Passmgr.exn_text = b.Core.Crashbundle.exn_text
        in
        match List.find_opt matches failures with
        | Some f ->
          Printf.printf
            "replay: reproduced the recorded failure\n  %s\n"
            (Core.Passmgr.failure_to_string f);
          Ok 0
        | None ->
          List.iter
            (fun f ->
              Printf.printf "replay: saw instead: %s\n"
                (Core.Passmgr.failure_to_string f))
            failures;
          Printf.printf
            "replay: the recorded failure did NOT reproduce (stale bundle?)\n";
          Ok 3)

let main file cuda_lower mcuda mode emit_ir run_name sizes exec domains
    schedule chunk no_team_reuse stats timeout_ms time_threads machine check
    check_format check_each repair inject_faults fault_seed crash_dir replay :
  (int, [ `Msg of string ]) result =
  match replay with
  | Some bundle -> do_replay bundle
  | None ->
  match file with
  | None -> Error (`Msg "missing FILE.cu argument (or --replay <bundle>)")
  | Some file ->
    guard "internal error" (fun () ->
        let src = In_channel.with_open_text file In_channel.input_all in
        if repair then repair_source ~file (Cudafe.Codegen.compile src)
        else if check || check_each then begin
          (* the flags compose: with both, the full pre-lowering check gates
             the per-pass sweep (which only re-runs the race check —
             divergence and shared-init lose meaning mid-lowering) *)
          let first =
            if check then
              check_source ~file ~format:check_format
                (Cudafe.Codegen.compile src)
            else Ok 0
          in
          match first with
          | Error _ as e -> e
          | Ok code when code <> 0 -> Ok code
          | Ok _ ->
            if check_each then
              Result.map (fun () -> 0)
                (check_after_each_pass ~file (Cudafe.Codegen.compile src))
            else Ok 0
        end
        else begin
          let faults =
            match fault_seed with
            | Some seed ->
              let plan =
                Core.Fault.random_plan ~seed (Core.Cpuify.stage_names ())
              in
              Printf.eprintf "polygeist-cpu: seeded fault plan (%d): %s\n" seed
                (Core.Fault.plan_to_string plan);
              inject_faults @ plan
            | None -> inject_faults
          in
          let repro =
            "polygeist-cpu "
            ^ String.concat " " (List.tl (Array.to_list Sys.argv))
          in
          match
            build ~mcuda ~cuda_lower:(cuda_lower || mcuda) ~mode ~faults
              ~crash_dir ~repro src
          with
          | Error _ as e -> e
          | Ok (m, status) ->
            if emit_ir then print_string (Ir.Printer.op_to_string m);
            let ran =
              match run_name with
              | Some entry ->
                (* faults aimed at the "runtime" stage are not a pass-
                   manager concern: they fire inside the parallel
                   execution engine (the [hang] kind parks a thread for
                   the watchdog to cancel) *)
                let runtime_fault =
                  List.find_map
                    (fun (s, k) -> if s = "runtime" then Some k else None)
                    faults
                in
                run_entry ~exec ~domains ~schedule ~chunk
                  ~team_reuse:(not no_team_reuse) ~stats ~runtime_fault
                  ~timeout_ms ~crash_dir ~faults ~src ~repro m entry sizes
              | None -> Ok false
            in
            (match ran with
             | Error _ as e -> e
             | Ok runtime_degraded -> begin
               let timed =
                 match time_threads with
                 | Some threads ->
                   time_entry m ~machine ~threads run_name sizes
                 | None -> Ok ()
               in
               match timed with
               | Error _ as e -> e
               | Ok () -> begin
                 match status with
                 | `Full -> if runtime_degraded then Ok 1 else Ok 0
                 | `Degraded _ -> Ok 1
               end
             end)
        end)

let cmd =
  let file =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.cu"
           ~doc:"mini-CUDA source file")
  in
  let cuda_lower =
    Arg.(value & flag & info [ "cuda-lower" ]
           ~doc:"translate GPU constructs to CPU (the paper's -cuda-lower)")
  in
  let mcuda =
    Arg.(value & flag & info [ "mcuda" ]
           ~doc:"use the MCUDA-style baseline lowering instead")
  in
  let cpuify =
    let modes =
      [ ("inner-serial", Inner_serial)
      ; ("inner-parallel", Inner_parallel)
      ; ("no-opt", No_opt)
      ]
    in
    Arg.(value & opt (enum modes) Inner_serial & info [ "cpuify" ]
           ~doc:(Printf.sprintf "lowering recipe, one of %s"
                   (Arg.doc_alts_enum modes)))
  in
  let emit_ir =
    Arg.(value & flag & info [ "emit-ir" ] ~doc:"print the (lowered) IR")
  in
  let run_name =
    Arg.(value & opt (some string) None & info [ "run" ]
           ~doc:"interpret the given host function")
  in
  let sizes =
    Arg.(value & opt_all int [] & info [ "size" ]
           ~doc:"integer argument(s) for -run/-time (repeatable)")
  in
  let exec =
    let modes = [ ("interp", `Interp); ("parallel", `Parallel) ] in
    Arg.(value & opt (enum modes) `Interp & info [ "exec" ]
           ~doc:(Printf.sprintf
                   "execution engine for -run, one of %s: the serial \
                    GPU-semantics interpreter, or the multicore runtime \
                    executing omp.parallel regions on OCaml domains"
                   (Arg.doc_alts_enum modes)))
  in
  let domains =
    Arg.(value & opt int 4 & info [ "domains" ]
           ~doc:"team size for --exec parallel; 1 is the deterministic \
                 single-domain mode")
  in
  let schedule =
    let policies =
      [ ("static", Runtime.Schedule.Static)
      ; ("dynamic", Runtime.Schedule.Dynamic)
      ; ("guided", Runtime.Schedule.Guided)
      ]
    in
    Arg.(value & opt (enum policies) Runtime.Schedule.Static
         & info [ "schedule" ]
             ~doc:(Printf.sprintf "worksharing schedule for --exec \
                                   parallel, one of %s"
                     (Arg.doc_alts_enum policies)))
  in
  let chunk =
    Arg.(value & opt (some int) None & info [ "chunk" ]
           ~doc:"chunk size of each dynamic/guided atomic grab for \
                 --exec parallel (default: dynamic batches at least 8 \
                 iterations, guided decays to 1)")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"print extended runtime counters after --exec parallel: \
                 launches, barrier phases, domain spawns, worksharing \
                 chunks grabbed, and register-file frames allocated \
                 (0 on repeated launches in team-reuse mode)")
  in
  let no_team_reuse =
    Arg.(value & flag & info [ "no-team-reuse" ]
           ~doc:"spawn and join a fresh domain team for every \
                 omp.parallel launch instead of reusing the persistent \
                 pool (ablation for the paper's thread-reuse \
                 optimization)")
  in
  let timeout_ms =
    Arg.(value & opt int 60000 & info [ "timeout-ms" ]
           ~doc:"watchdog bound on the wall-clock of each --exec parallel \
                 launch, in milliseconds; on expiry the launch is \
                 cancelled (barriers poisoned, workers unparked) and \
                 execution degrades to the serial interpreter with exit \
                 code 1.  0 disables the watchdog")
  in
  let time_threads =
    Arg.(value & opt (some int) None & info [ "time" ]
           ~doc:"report simulated time with this many threads")
  in
  let machine =
    Arg.(value & opt string "commodity" & info [ "machine" ]
           ~doc:"machine model: commodity | a64fx")
  in
  let check =
    Arg.(value & flag & info [ "check" ]
           ~doc:"run the static kernel sanitizer (data races, barrier \
                 divergence, uninitialized __shared__ reads) on the \
                 pre-lowering IR and exit; nonzero exit iff errors")
  in
  let check_format =
    let formats = [ ("text", `Text); ("json", `Json) ] in
    Arg.(value & opt (enum formats) `Text & info [ "check-format" ]
           ~doc:(Printf.sprintf
                   "output format for --check findings, one of %s: \
                    human-readable text, or a JSON array with one object \
                    per finding (kind, severity, file/line/col, message, \
                    barrier intervals, notes) for CI"
                   (Arg.doc_alts_enum formats)))
  in
  let check_each =
    Arg.(value & flag & info [ "check-after-each-pass" ]
           ~doc:"run the -cpuify pipeline one pass at a time, re-running \
                 the IR verifier and the race check after every pass")
  in
  let repair =
    Arg.(value & flag & info [ "repair" ]
           ~doc:"run the analysis-guided barrier repair search on the \
                 sanitizer's findings: insert barriers at interval \
                 separation points of racing pairs and hoist/delete \
                 divergent barriers, greedily with rollback, until the \
                 sanitizer is clean; a candidate repair of a program \
                 with a launch(out, in) entry must also match the \
                 GPU-semantics reference on the full differential \
                 oracle.  Prints the patch (file:line:col edits) and the \
                 repaired pre-lowering IR")
  in
  let fault_conv =
    let parse s =
      match Core.Fault.entry_of_string s with
      | Ok e -> Ok e
      | Error msg -> Error (`Msg msg)
    in
    let print ppf e = Format.pp_print_string ppf (Core.Fault.entry_to_string e) in
    Arg.conv (parse, print)
  in
  let inject_faults =
    Arg.(value & opt_all fault_conv [] & info [ "inject-fault" ]
           ~docv:"STAGE:KIND"
           ~doc:"inject a deterministic one-shot fault into the named \
                 pipeline stage; KIND is raise, corrupt, exhaust or hang \
                 (repeatable; each entry fires once, so two entries for \
                 the same stage take down successive ladder rungs).  The \
                 stage \"runtime\" targets the parallel execution engine \
                 instead of a pass: runtime:hang parks a team thread \
                 until the --timeout-ms watchdog cancels the launch")
  in
  let fault_seed =
    Arg.(value & opt (some int) None & info [ "fault-seed" ]
           ~doc:"append a seeded random fault plan (1-3 faults over the \
                 pipeline stages) to the injected faults")
  in
  let crash_dir =
    Arg.(value & opt (some string) None & info [ "crash-dir" ]
           ~docv:"DIR"
           ~doc:"write a replayable crash bundle into DIR for every \
                 stage failure the pass manager recovers from (or dies \
                 on)")
  in
  let replay =
    Arg.(value & opt (some file) None & info [ "replay" ]
           ~docv:"BUNDLE"
           ~doc:"re-run the pipeline recorded in a crash bundle and \
                 report whether the failure reproduces (exit 0 when it \
                 does, 3 when stale)")
  in
  Cmd.v
    (Cmd.info "polygeist-cpu" ~doc:"CUDA to CPU transpiler (paper reproduction)"
       ~exits:
         (Cmd.Exit.info 0 ~doc:"success" :: Cmd.Exit.info 1
            ~doc:"success, but degraded: a pipeline stage failed and a \
                  degradation-ladder rung engaged, or the parallel \
                  runtime failed (fault, error or watchdog timeout) and \
                  execution fell back to the serial interpreter"
          :: Cmd.Exit.info 2 ~doc:"failure (pipeline, runtime or check error)"
          :: Cmd.Exit.info 4
               ~doc:"--check found kernel errors (races, divergence, \
                     uninitialized shared reads)"
          :: Cmd.Exit.defaults))
    Term.(
      term_result
        (const main $ file $ cuda_lower $ mcuda $ cpuify $ emit_ir $ run_name
         $ sizes $ exec $ domains $ schedule $ chunk $ no_team_reuse $ stats
         $ timeout_ms $ time_threads $ machine $ check $ check_format
         $ check_each $ repair $ inject_faults $ fault_seed $ crash_dir
         $ replay))

(* [polygeist-cpu fuzz ...]: the differential fuzzing campaign.  It is
   dispatched on the first argument rather than via [Cmd.group] so the
   primary positional-FILE interface keeps working unchanged. *)
let fuzz_cmd =
  let seed =
      Arg.(value & opt int 1 & info [ "seed" ]
             ~doc:"first generator seed; case $(i,i) uses seed + i, so a \
                   campaign is fully determined by --seed and --cases")
    in
    let cases =
      Arg.(value & opt int 200 & info [ "cases" ]
             ~doc:"number of generated kernels to run through the \
                   differential oracle")
    in
    let fuzz_crash_dir =
      Arg.(value & opt (some string) None & info [ "crash-dir" ]
             ~docv:"DIR"
             ~doc:"write each reduced finding as a replayable crash \
                   bundle into DIR (replay with --replay)")
    in
    let fuzz_timeout_ms =
      Arg.(value & opt int 5000 & info [ "timeout-ms" ]
             ~doc:"watchdog bound for the oracle's parallel-execution \
                   rungs, in milliseconds")
    in
    let no_reduce =
      Arg.(value & flag & info [ "no-reduce" ]
             ~doc:"report raw failing kernels without shrinking them")
    in
    let gen_racy =
      Arg.(value & flag & info [ "gen-racy" ]
             ~doc:"racy-repair mode: generate seeded RACY mutants (each a \
                   race-free kernel with one __syncthreads deleted), \
                   keep the ones the static sanitizer flags until \
                   --cases of them are collected, and run the \
                   analysis-guided repair search on each, validating \
                   every repair against the differential oracle.  Exit 1 \
                   if any racy mutant cannot be repaired")
    in
    let gen_tensor =
      Arg.(value & flag & info [ "gen-tensor" ]
             ~doc:"draw tensor-shaped kernels (cooperative-load shared \
                   GEMMs, ring stencils, tree reductions — the MocCUDA \
                   kernel tier's dataflow shapes) instead of the default \
                   phase mix")
    in
    let fuzz_main seed cases crash_dir timeout_ms no_reduce gen_racy
        gen_tensor : (int, [ `Msg of string ]) result =
      guard "fuzz" (fun () ->
          if gen_racy && gen_tensor then
            Error (`Msg "--gen-racy and --gen-tensor are mutually exclusive")
          else if gen_racy then begin
            let progress scanned racy =
              if scanned mod 20 = 0 then
                Printf.eprintf "fuzz --gen-racy: %d seeds scanned, %d racy \
                                mutant(s)\n%!" scanned racy
            in
            let r =
              Fuzz.Fuzzer.run_repair_campaign ~timeout_ms ~progress ~seed
                ~racy:cases ()
            in
            print_string (Fuzz.Fuzzer.repair_report_to_string r);
            let unrepaired =
              List.exists
                (fun (f : Fuzz.Fuzzer.repair_finding) ->
                  Result.is_error f.Fuzz.Fuzzer.presult)
                r.Fuzz.Fuzzer.rfindings
            in
            Ok (if unrepaired then 1 else 0)
          end
          else begin
            let progress done_ found =
              if done_ mod 50 = 0 then
                Printf.eprintf "fuzz: %d/%d cases, %d finding(s)\n%!" done_
                  cases found
            in
            let r =
              Fuzz.Fuzzer.run_campaign ?crash_dir ~timeout_ms
                ~reduce:(not no_reduce) ~tensor:gen_tensor ~progress ~seed
                ~cases ()
            in
            print_string (Fuzz.Fuzzer.report_to_string r);
            Ok (if r.Fuzz.Fuzzer.findings = [] then 0 else 1)
          end)
    in
    Cmd.v
      (Cmd.info "fuzz"
         ~doc:"differential kernel fuzzing: generate seeded race-free \
               mini-CUDA kernels, compare every pipeline stage and both \
               executors against the GPU-semantics interpreter, and \
               shrink each divergence to a small replayable witness"
         ~exits:
           (Cmd.Exit.info 0 ~doc:"no divergence found"
            :: Cmd.Exit.info 1 ~doc:"at least one divergence found"
            :: Cmd.Exit.defaults))
      Term.(
        term_result
          (const fuzz_main $ seed $ cases $ fuzz_crash_dir $ fuzz_timeout_ms
           $ no_reduce $ gen_racy $ gen_tensor))

(* [polygeist-cpu serve ...]: the supervised compile daemon.  Jobs are
   accepted over a Unix-domain socket, run inside the job fault wall
   (deadline, retry/backoff, circuit breaker, crash bundles) and cached
   by content address — see DESIGN.md section 12. *)
let serve_cmd =
  let socket =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket path to listen on (required unless \
                 --chaos)")
  in
  let queue_cap =
    Arg.(value & opt int 32 & info [ "queue-cap" ]
           ~doc:"admission bound: submissions beyond this many queued \
                 jobs are rejected with an explicit overloaded response")
  in
  let deadline_ms =
    Arg.(value & opt int 10000 & info [ "deadline-ms" ]
           ~doc:"per-job wall-clock budget enforced by the watchdog; 0 \
                 disables it (and with it the cancellation of hung jobs)")
  in
  let max_retries =
    Arg.(value & opt int 2 & info [ "max-retries" ]
           ~doc:"retries for transient job failures (timeouts, injected \
                 faults); deterministic failures are never retried")
  in
  let serve_crash_dir =
    Arg.(value & opt (some string) None & info [ "crash-dir" ] ~docv:"DIR"
           ~doc:"write a replayable rung=serve crash bundle for every \
                 failed job attempt")
  in
  let cache_dir =
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"persist the artifact cache (write-ahead journal, fsync \
                 per store) and the in-flight job journal in DIR; after \
                 a hard crash, restart replays the journals and reports \
                 exactly which tickets were lost")
  in
  let executors =
    Arg.(value & opt int 1 & info [ "executors" ] ~docv:"N"
           ~doc:"executor lanes; each owns its own supervisor, circuit \
                 breaker and domain pool, and jobs are routed to lanes \
                 by source-hash affinity")
  in
  let executor_deadline_ms =
    Arg.(value & opt int 0 & info [ "executor-deadline-ms" ]
           ~doc:"wall-clock bound before the fleet monitor declares an \
                 executor wedged, fails its job and replaces the lane; \
                 0 derives it from --deadline-ms and the retry schedule")
  in
  let chaos =
    Arg.(value & flag & info [ "chaos" ]
           ~doc:"instead of listening, run the seeded chaos campaign \
                 against the in-process daemon core (faults, wedges, \
                 executor crashes, admission bursts) and check the \
                 delivery invariants; exit 0 iff all held")
  in
  let chaos_seed =
    Arg.(value & opt int 42 & info [ "chaos-seed" ]
           ~doc:"seed of the chaos campaign's event schedule (a seed is \
                 a complete reproducer)")
  in
  let chaos_events =
    Arg.(value & opt int 60 & info [ "chaos-events" ]
           ~doc:"length of the chaos schedule (bursts count as one)")
  in
  let serve_main socket queue_cap deadline_ms max_retries crash_dir cache_dir
      executors executor_deadline_ms chaos chaos_seed chaos_events :
    (int, [ `Msg of string ]) result =
    guard "serve" (fun () ->
        if chaos then begin
          let r =
            Serve.Chaos.run
              { Serve.Chaos.default_config with
                seed = chaos_seed
              ; events = chaos_events
              ; executors = (if executors > 1 then executors else 4)
              ; queue_cap
              ; state_dir = cache_dir
              ; crash_dir
              }
          in
          print_string (Serve.Chaos.report_to_string r);
          Ok (if r.Serve.Chaos.violations = [] then 0 else 1)
        end
        else
          match socket with
          | None -> Error (`Msg "--socket is required (unless --chaos)")
          | Some socket ->
            let cfg =
              { Serve.Server.queue_cap
              ; cache_dir
              ; executors
              ; executor_deadline_ms
              ; sup =
                  { Serve.Supervisor.default_config with
                    deadline_ms
                  ; crash_dir
                  ; backoff =
                      { Serve.Backoff.default with max_retries }
                  }
              }
            in
            let t = Serve.Server.create cfg in
            (match Serve.Server.recovered t with
             | Some r when r.Serve.Journal.lost <> [] ->
               Printf.eprintf
                 "polygeist-cpu serve: previous run died with %d job(s) in \
                  flight:\n"
                 (List.length r.Serve.Journal.lost);
               List.iter
                 (fun (id, digest) ->
                   Printf.eprintf
                     "polygeist-cpu serve:   lost ticket %d (job %s) — \
                      resubmit it\n"
                     id digest)
                 r.Serve.Journal.lost
             | _ -> ());
            Printf.eprintf
              "polygeist-cpu serve: listening on %s (queue cap %d, deadline \
               %d ms, %d executor(s))\n%!"
              socket queue_cap deadline_ms (Serve.Server.executors t);
            let admitted = Serve.Server.serve_unix ~socket t in
            let s = Serve.Server.agg_stats t in
            let cs = Serve.Cache.stats (Serve.Server.cache t) in
            Printf.eprintf
              "polygeist-cpu serve: drained after %d admitted job(s): %d \
               completed, %d failed, %d retries, %d crash bundle(s), %d pool \
               rebuild(s), %d executor kill(s); cache %d hit(s) / %d \
               miss(es), %d quarantined; %d overloaded rejection(s)\n"
              admitted s.Serve.Supervisor.completed s.Serve.Supervisor.failed
              s.Serve.Supervisor.retries s.Serve.Supervisor.bundles
              s.Serve.Supervisor.pool_rebuilds
              (Serve.Server.executor_kills t)
              cs.Serve.Cache.hits cs.Serve.Cache.misses
              cs.Serve.Cache.quarantined
              (Serve.Server.overloaded_count t);
            Ok 0)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"run the supervised compile daemon on a Unix-domain socket: \
             bounded-queue admission, a fleet of supervised executor \
             lanes, per-job deadlines and retry with backoff, per-source \
             circuit breakers, a crash-durable content-addressed artifact \
             cache, and a crash bundle for every job death (the daemon \
             itself never dies)"
       ~exits:(Cmd.Exit.info 0 ~doc:"drained gracefully" :: Cmd.Exit.defaults))
    Term.(
      term_result
        (const serve_main $ socket $ queue_cap $ deadline_ms $ max_retries
         $ serve_crash_dir $ cache_dir $ executors $ executor_deadline_ms
         $ chaos $ chaos_seed $ chaos_events))

(* [polygeist-cpu client ...]: submit one job (or a shutdown request)
   to a running daemon and adopt the job's exit code, so a client call
   is a drop-in for the equivalent one-shot invocation. *)
let exit_overloaded = 75 (* EX_TEMPFAIL: try again later *)

let client_cmd =
  let socket =
    Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket of a running polygeist-cpu serve")
  in
  let file =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.cu"
           ~doc:"mini-CUDA source file to submit")
  in
  let shutdown =
    Arg.(value & flag & info [ "shutdown" ]
           ~doc:"ask the daemon to drain and exit instead of submitting a \
                 job")
  in
  let run_name =
    Arg.(value & opt (some string) None & info [ "run" ]
           ~doc:"interpret the given host function after lowering")
  in
  let sizes =
    Arg.(value & opt_all int [] & info [ "size" ]
           ~doc:"integer argument(s) for --run (repeatable)")
  in
  let mode =
    Arg.(value & opt string "inner-serial" & info [ "cpuify" ]
           ~doc:"lowering recipe: inner-serial | inner-parallel | no-opt")
  in
  let exec =
    Arg.(value & opt string "parallel" & info [ "exec" ]
           ~doc:"execution engine for --run: interp | parallel")
  in
  let domains =
    Arg.(value & opt int 4 & info [ "domains" ]
           ~doc:"team size for --exec parallel")
  in
  let schedule =
    Arg.(value & opt string "static" & info [ "schedule" ]
           ~doc:"worksharing schedule: static | dynamic | guided")
  in
  let faults =
    Arg.(value & opt string "" & info [ "inject-fault" ] ~docv:"PLAN"
           ~doc:"fault plan forwarded to the daemon's fault wall (e.g. \
                 serve:raise or cpuify:raise,serve:hang); faulted jobs \
                 are never cached")
  in
  let client_main socket file shutdown run_name sizes mode exec domains
      schedule faults : (int, [ `Msg of string ]) result =
    guard "client" (fun () ->
        let req =
          if shutdown then Ok Serve.Proto.Shutdown
          else
            match file with
            | None ->
              Error (`Msg "missing FILE.cu argument (or --shutdown)")
            | Some file ->
              let source =
                In_channel.with_open_text file In_channel.input_all
              in
              Ok
                (Serve.Proto.Submit
                   { Serve.Proto.source
                   ; entry = run_name
                   ; sizes
                   ; mode
                   ; exec
                   ; domains
                   ; schedule
                   ; faults
                   })
        in
        match req with
        | Error _ as e -> e
        | Ok req -> begin
          (* the pid is as good a correlation id as any for a one-shot
             client; the daemon echoes it and Client.request verifies *)
          match Serve.Client.request ~id:(Unix.getpid ()) ~socket req with
          | Error e -> Error (`Msg e)
          | Ok (Serve.Proto.Rejected why) ->
            Error (`Msg ("rejected by the daemon: " ^ why))
          | Ok (Serve.Proto.Overloaded { depth; cap }) ->
            Printf.eprintf
              "polygeist-cpu client: daemon overloaded (queue %d/%d), try \
               again later\n"
              depth cap;
            Ok exit_overloaded
          | Ok (Serve.Proto.Done o) ->
            print_string o.Serve.Proto.log;
            if o.Serve.Proto.cached then
              Printf.eprintf "polygeist-cpu client: served from cache\n";
            if o.Serve.Proto.retries > 0 then
              Printf.eprintf "polygeist-cpu client: succeeded after %d \
                              retr%s\n"
                o.Serve.Proto.retries
                (if o.Serve.Proto.retries = 1 then "y" else "ies");
            if o.Serve.Proto.breaker then
              Printf.eprintf
                "polygeist-cpu client: served conservatively (circuit \
                 breaker tripped for this source)\n";
            Ok o.Serve.Proto.exit_code
        end)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"submit one compile(/run) job to a running polygeist-cpu \
             serve daemon and exit with the job's one-shot exit code"
       ~exits:
         (Cmd.Exit.info 0 ~doc:"job succeeded"
          :: Cmd.Exit.info 1 ~doc:"job succeeded degraded"
          :: Cmd.Exit.info 2 ~doc:"job failed"
          :: Cmd.Exit.info exit_overloaded
               ~doc:"the daemon's admission queue is full; retry later"
          :: Cmd.Exit.defaults))
    Term.(
      term_result
        (const client_main $ socket $ file $ shutdown $ run_name $ sizes
         $ mode $ exec $ domains $ schedule $ faults))

let () =
  (* distinct exit codes: 0 ok, 1 degraded (via main's return value),
     2 pipeline/check failure (term_result errors), 124/125 cmdliner's
     usual CLI/internal errors *)
  let eval =
    let argv = Sys.argv in
    let sub name c =
      Cmd.eval_value
        ~argv:
          (Array.append
             [| argv.(0) ^ " " ^ name |]
             (Array.sub argv 2 (Array.length argv - 2)))
        c
    in
    if Array.length argv > 1 && argv.(1) = "fuzz" then sub "fuzz" fuzz_cmd
    else if Array.length argv > 1 && argv.(1) = "serve" then
      sub "serve" serve_cmd
    else if Array.length argv > 1 && argv.(1) = "client" then
      sub "client" client_cmd
    else Cmd.eval_value cmd
  in
  match eval with
  | Ok (`Ok code) -> exit code
  | Ok (`Version | `Help) -> exit 0
  | Error `Term -> exit 2
  | Error `Parse -> exit 124
  | Error `Exn -> exit 125
