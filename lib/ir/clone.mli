(** Deep copy of ops/regions with SSA value remapping.

    Cloning allocates fresh result values and region arguments and
    rewrites every operand through the substitution table, so the clone
    is valid independent IR.  Pre-seed the table to redirect free uses
    (e.g. replace an induction variable when moving a loop body under a
    new loop). *)

type subst = Value.t Value.Tbl.t

val create_subst : unit -> subst
val add_subst : subst -> from:Value.t -> to_:Value.t -> unit

(** Identity on unmapped values. *)
val lookup : subst -> Value.t -> Value.t

(** Clone one op; results are remapped in [subst] so later clones see
    them. *)
val clone_op : subst -> Op.op -> Op.op

val clone_region : subst -> Op.region -> Op.region

(** Clone with a fresh private substitution. *)
val clone_op_fresh : Op.op -> Op.op

(** Clone a list sharing one substitution (defs in earlier ops are
    visible to later ones). *)
val clone_ops : subst -> Op.op list -> Op.op list

(** Deep snapshot of an op (a fresh clone): later in-place mutation of
    the original leaves the snapshot untouched. *)
val snapshot : Op.op -> Op.op

(** [restore ~into snap] transplants a fresh clone of [snap]'s mutable
    fields (operands, regions, attrs, loc) into [into], rolling the op
    back to the snapshotted state.  The snapshot itself is not consumed:
    it can be restored any number of times.  Intended for module roots
    (ops whose results have no external uses). *)
val restore : into:Op.op -> Op.op -> unit

(** Equality up to SSA renaming: kinds, attributes and region shapes
    match, and values correspond under one consistent bijection.  Used
    by tests to check a rollback restored the pre-stage IR exactly. *)
val structural_equal : Op.op -> Op.op -> bool
