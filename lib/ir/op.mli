(** Operations of the mini-MLIR.

    An operation has operands (SSA uses), results (SSA definitions),
    nested regions and attributes.  Regions carry block arguments (loop
    induction variables, function parameters) and a straight-line body —
    the IR is restricted to {e structured} control flow, like the paper's
    SCF-level representation, so no basic-block CFG exists.

    Dialects are encoded in {!kind}:
    - arith/math: [Constant], [Binop], [Cmp], [Select], [Cast], [Math]
    - memref: [Alloc], [Alloca], [Dealloc], [Load], [Store], [Copy], [Dim]
    - scf: [For], [While], [If], [Parallel]
    - func: [Func], [Call], [Return]
    - polygeist: [Barrier]
    - omp: [OmpParallel], [OmpWsloop], [OmpBarrier] *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Min
  | Max
  | And
  | Or
  | Xor
  | Shl
  | Shr

type cmp_pred =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type math_fn =
  | Sqrt
  | Exp
  | Log
  | Fabs
  | Floor
  | Neg
  | Not
  | Sin
  | Cos
  | Tanh
  | Erf
  | Pow (** two operands *)
  | Log2

type const =
  | Cint of int * Types.dtype
  | Cfloat of float * Types.dtype

(** Which level of the SIMT hierarchy a parallel loop iterates: [Grid]
    ranges over blocks, [Block] over the threads of one block (the level
    barriers synchronize), [Flat] is a generic/collapsed parallel loop
    with no synchronization inside. *)
type par_kind =
  | Grid
  | Block
  | Flat

type attr =
  | Aint of int
  | Afloat of float
  | Astr of string
  | Abool of bool

type kind =
  | Module
  | Func of
      { name : string
      ; ret : Types.typ option
      ; is_kernel : bool
      }
  | Return
  | Call of string
  | Constant of const
  | Binop of binop
  | Cmp of cmp_pred
  | Select
  | Cast of Types.dtype
  | Math of math_fn
  | Alloc (** heap; operands are the dynamic extents *)
  | Alloca (** stack; static shape only *)
  | Dealloc
  | Load (** operands: memref, indices... *)
  | Store (** operands: value, memref, indices... *)
  | Copy (** operands: src, dst *)
  | Dim of int
  | For (** operands: lo, hi, step; one region arg: the iv *)
  | While (** regions: cond (ends in [Condition]), body *)
  | If (** operand: cond (i1); regions: then, else *)
  | Parallel of par_kind
    (** operands: lbs, ubs, steps (n each); region args: the n ivs *)
  | Barrier (** [polygeist.barrier] *)
  | Yield
  | Condition (** operand: i1; terminator of a While cond region *)
  | OmpParallel (** region executed by every thread of the team *)
  | OmpWsloop
    (** like [Parallel Flat] but iterations are shared across the team;
        carries NO implicit trailing barrier *)
  | OmpBarrier

type op =
  { oid : int (** unique id; op identity *)
  ; kind : kind
  ; mutable operands : Value.t array
  ; results : Value.t array
  ; mutable regions : region array
  ; mutable attrs : (string * attr) list
  ; mutable loc : Srcloc.t option
    (** source position of the frontend construct this op was lowered
        from; [None] for ops synthesized by transformation passes *)
  }

and region =
  { mutable rargs : Value.t array
  ; mutable body : op list
  }

(** Allocate an op with a fresh [oid]. *)
val mk :
  ?operands:Value.t array ->
  ?results:Value.t array ->
  ?regions:region array ->
  ?attrs:(string * attr) list ->
  ?loc:Srcloc.t ->
  kind ->
  op

(** ["line:col"] of the op's location, or ["?:?"] if unknown. *)
val loc_string : op -> string

val region : ?args:Value.t array -> op list -> region

val attr : op -> string -> attr option
val attr_int : op -> string -> int option
val attr_bool : op -> string -> bool option
val attr_str : op -> string -> string option
val set_attr : op -> string -> attr -> unit

(** The op's single result. @raise Invalid_argument otherwise. *)
val result : op -> Value.t

(** Accessors for [Parallel]/[OmpWsloop] bounds (n = number of ivs). *)
val par_dims : op -> int

val par_lo : op -> int -> Value.t
val par_hi : op -> int -> Value.t
val par_step : op -> int -> Value.t

(** Accessors for [For]. *)
val for_lo : op -> Value.t

val for_hi : op -> Value.t
val for_step : op -> Value.t
val for_iv : op -> Value.t

val body_region : op -> region
val is_terminatorless_region_op : op -> bool

(** Pre-order traversal of the op and everything nested inside it. *)
val iter : (op -> unit) -> op -> unit

val iter_region : (op -> unit) -> region -> unit

(** Post-order traversal (children first). *)
val iter_post : (op -> unit) -> op -> unit

val exists : (op -> bool) -> op -> bool
val region_exists : (op -> bool) -> region -> bool
val contains_barrier_region : region -> bool
val contains_barrier : op -> bool

(** Functions of a module, in order. @raise Invalid_argument otherwise. *)
val funcs : op -> op list

val find_func : op -> string -> op option

(** @raise Invalid_argument if not a [Func]. *)
val func_name : op -> string

val binop_to_string : binop -> string
val cmp_to_string : cmp_pred -> string
val math_to_string : math_fn -> string
val par_kind_to_string : par_kind -> string
