(* MLIR-flavoured textual printer.  Used for golden tests, debugging and
   the CLI's [-emit-ir] mode.  The format is not re-parsed; programs are
   constructed through [Builder] or the CUDA frontend. *)

let buf_add = Buffer.add_string

let value v = Value.to_string v

let values vs = String.concat ", " (List.map value (Array.to_list vs))

let const_to_string = function
  | Op.Cint (n, d) -> Printf.sprintf "%d : %s" n (Types.dtype_to_string d)
  | Op.Cfloat (f, d) -> Printf.sprintf "%g : %s" f (Types.dtype_to_string d)

let attr_to_string (name, a) =
  let v =
    match a with
    | Op.Aint i -> string_of_int i
    | Op.Afloat f -> string_of_float f
    | Op.Astr s -> Printf.sprintf "%S" s
    | Op.Abool b -> string_of_bool b
  in
  Printf.sprintf "%s = %s" name v

let attrs_to_string = function
  | [] -> ""
  | l -> " {" ^ String.concat ", " (List.map attr_to_string l) ^ "}"

let rec print_op ?(locs = false) b indent (op : Op.op) =
  let pad = String.make indent ' ' in
  let res =
    if Array.length op.results = 0 then ""
    else values op.results ^ " = "
  in
  let lsuf =
    match op.loc with
    | Some l when locs -> Printf.sprintf " loc(%s)" (Srcloc.to_string l)
    | _ -> ""
  in
  let line s =
    buf_add b (pad ^ res ^ s ^ attrs_to_string op.attrs ^ lsuf ^ "\n")
  in
  let line_no_attr s = buf_add b (pad ^ res ^ s ^ lsuf ^ "\n") in
  let print_op = print_op ~locs in
  let region ?(hdr = "") i =
    buf_add b (pad ^ hdr ^ "{\n");
    List.iter (print_op b (indent + 2)) op.regions.(i).body;
    buf_add b (pad ^ "}\n")
  in
  match op.kind with
  | Module ->
    buf_add b (pad ^ "module {\n");
    List.iter (print_op b (indent + 2)) op.regions.(0).body;
    buf_add b (pad ^ "}\n")
  | Func { name; ret; is_kernel } ->
    let params =
      Array.to_list op.regions.(0).rargs
      |> List.map (fun (a : Value.t) ->
          Printf.sprintf "%s: %s" (value a) (Types.to_string a.typ))
      |> String.concat ", "
    in
    let rets =
      match ret with
      | None -> ""
      | Some t -> " -> " ^ Types.to_string t
    in
    let kernel = if is_kernel then " kernel" else "" in
    buf_add b
      (Printf.sprintf "%sfunc.func @%s(%s)%s%s {\n" pad name params rets
         kernel);
    List.iter (print_op b (indent + 2)) op.regions.(0).body;
    buf_add b (pad ^ "}\n")
  | Return -> line_no_attr (Printf.sprintf "func.return %s" (values op.operands))
  | Call name ->
    line
      (Printf.sprintf "func.call @%s(%s)" name (values op.operands))
  | Constant c -> line_no_attr (Printf.sprintf "arith.constant %s" (const_to_string c))
  | Binop k ->
    let d = (Op.result op).typ in
    let pre = if Types.is_float_dtype (Types.scalar_dtype d) then "f" else "i" in
    line
      (Printf.sprintf "arith.%s%s %s : %s" (Op.binop_to_string k) pre
         (values op.operands) (Types.to_string d))
  | Cmp p ->
    line
      (Printf.sprintf "arith.cmp %s, %s" (Op.cmp_to_string p)
         (values op.operands))
  | Select -> line (Printf.sprintf "arith.select %s" (values op.operands))
  | Cast d ->
    line
      (Printf.sprintf "arith.cast %s : %s" (values op.operands)
         (Types.dtype_to_string d))
  | Math f ->
    line (Printf.sprintf "math.%s %s" (Op.math_to_string f) (values op.operands))
  | Alloc ->
    line
      (Printf.sprintf "memref.alloc(%s) : %s" (values op.operands)
         (Types.to_string (Op.result op).typ))
  | Alloca ->
    line (Printf.sprintf "memref.alloca : %s" (Types.to_string (Op.result op).typ))
  | Dealloc -> line (Printf.sprintf "memref.dealloc %s" (values op.operands))
  | Load ->
    line
      (Printf.sprintf "memref.load %s[%s]"
         (value op.operands.(0))
         (values (Array.sub op.operands 1 (Array.length op.operands - 1))))
  | Store ->
    line
      (Printf.sprintf "memref.store %s, %s[%s]"
         (value op.operands.(0))
         (value op.operands.(1))
         (values (Array.sub op.operands 2 (Array.length op.operands - 2))))
  | Copy ->
    line
      (Printf.sprintf "memref.copy %s, %s"
         (value op.operands.(0))
         (value op.operands.(1)))
  | Dim i -> line (Printf.sprintf "memref.dim %s, %d" (value op.operands.(0)) i)
  | For ->
    buf_add b
      (Printf.sprintf "%sscf.for %s = %s to %s step %s " pad
         (value (Op.for_iv op))
         (value (Op.for_lo op))
         (value (Op.for_hi op))
         (value (Op.for_step op)));
    buf_add b "{\n";
    List.iter (print_op b (indent + 2)) op.regions.(0).body;
    buf_add b (pad ^ "}\n")
  | While ->
    region ~hdr:"scf.while cond " 0;
    region ~hdr:"do " 1
  | If ->
    buf_add b (Printf.sprintf "%sscf.if %s {\n" pad (value op.operands.(0)));
    List.iter (print_op b (indent + 2)) op.regions.(0).body;
    if op.regions.(1).body <> [] then begin
      buf_add b (pad ^ "} else {\n");
      List.iter (print_op b (indent + 2)) op.regions.(1).body
    end;
    buf_add b (pad ^ "}\n")
  | Parallel k ->
    let n = Op.par_dims op in
    let ivs = values op.regions.(0).rargs in
    let sub o l = values (Array.sub op.operands o l) in
    buf_add b
      (Printf.sprintf "%sscf.parallel<%s> (%s) = (%s) to (%s) step (%s) {\n"
         pad (Op.par_kind_to_string k) ivs (sub 0 n) (sub n n) (sub (2 * n) n));
    List.iter (print_op b (indent + 2)) op.regions.(0).body;
    buf_add b (pad ^ "}\n")
  | Barrier -> line "polygeist.barrier"
  | Yield -> line "scf.yield"
  | Condition ->
    line (Printf.sprintf "scf.condition %s" (value op.operands.(0)))
  | OmpParallel ->
    buf_add b (pad ^ "omp.parallel" ^ attrs_to_string op.attrs ^ " {\n");
    List.iter (print_op b (indent + 2)) op.regions.(0).body;
    buf_add b (pad ^ "}\n")
  | OmpWsloop ->
    let n = Op.par_dims op in
    let ivs = values op.regions.(0).rargs in
    let sub o l = values (Array.sub op.operands o l) in
    buf_add b
      (Printf.sprintf "%somp.wsloop (%s) = (%s) to (%s) step (%s) {\n" pad ivs
         (sub 0 n) (sub n n) (sub (2 * n) n));
    List.iter (print_op b (indent + 2)) op.regions.(0).body;
    buf_add b (pad ^ "}\n")
  | OmpBarrier -> line "omp.barrier"

let op_to_string ?locs op =
  let b = Buffer.create 1024 in
  print_op ?locs b 0 op;
  Buffer.contents b

let region_to_string ?locs (r : Op.region) =
  let b = Buffer.create 1024 in
  List.iter (print_op ?locs b 0) r.body;
  Buffer.contents b
