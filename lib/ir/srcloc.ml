(* Source locations (1-based line/column), carried from the CUDA frontend
   down to IR ops so analyses can report `file:line:col` diagnostics.  The
   file name is not stored per-location: a module comes from a single
   translation unit, so printers take it as a parameter. *)

type t =
  { line : int
  ; col : int
  }

let v ~line ~col = { line; col }

let unknown = { line = 0; col = 0 }

let is_known l = l.line > 0

let to_string l =
  if is_known l then Printf.sprintf "%d:%d" l.line l.col else "?:?"

let compare (a : t) (b : t) =
  match Int.compare a.line b.line with
  | 0 -> Int.compare a.col b.col
  | c -> c
