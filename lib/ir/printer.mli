(** MLIR-flavoured textual printer, used for golden tests, debugging and
    the CLI's [--emit-ir] mode.  The format is write-only; programs are
    constructed through {!Builder} or the CUDA frontend.

    [~locs:true] appends a [loc(line:col)] suffix to ops that carry a
    source location (default off, keeping golden output stable). *)

val op_to_string : ?locs:bool -> Op.op -> string
val region_to_string : ?locs:bool -> Op.region -> string
