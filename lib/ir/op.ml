(* Operations of the mini-MLIR.

   An operation has operands (SSA uses), results (SSA definitions), nested
   regions and attributes.  Regions carry block arguments (e.g. loop
   induction variables) and a straight-line body of operations — the IR is
   restricted to *structured* control flow, as in the paper's
   SCF/affine-level representation, so no basic-block CFG is needed.

   Dialects are encoded in [kind]:
   - arith/math : Constant, Binop, Cmp, Select, Cast, Math
   - memref     : Alloc, Alloca, Dealloc, Load, Store, Copy, Dim
   - scf        : For, While (cond region + body region), If, Parallel
   - func       : Func, Call, Return
   - polygeist  : Barrier (the paper's [polygeist.barrier])
   - omp        : OmpParallel, OmpWsloop, OmpBarrier
   - builtin    : Module, Yield, Condition *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Min
  | Max
  | And
  | Or
  | Xor
  | Shl
  | Shr

type cmp_pred =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type math_fn =
  | Sqrt
  | Exp
  | Log
  | Fabs
  | Floor
  | Neg
  | Not
  | Sin
  | Cos
  | Tanh
  | Erf
  | Pow (* two operands *)
  | Log2

type const =
  | Cint of int * Types.dtype
  | Cfloat of float * Types.dtype

(* Which level of the SIMT hierarchy a parallel loop iterates.  [Grid]
   ranges over blocks, [Block] over threads of one block (this is the level
   barriers synchronize), [Flat] is a collapsed or generic parallel loop
   with no barrier semantics left inside. *)
type par_kind =
  | Grid
  | Block
  | Flat

type attr =
  | Aint of int
  | Afloat of float
  | Astr of string
  | Abool of bool

type kind =
  | Module
  | Func of
      { name : string
      ; ret : Types.typ option
      ; is_kernel : bool
      }
  | Return
  | Call of string
  | Constant of const
  | Binop of binop
  | Cmp of cmp_pred
  | Select
  | Cast of Types.dtype
  | Math of math_fn
  | Alloc
  | Alloca
  | Dealloc
  | Load
  | Store (* operands: value, memref, indices... *)
  | Copy (* operands: src, dst memrefs of identical shape *)
  | Dim of int
  | For (* operands: lo, hi, step; region args: [iv] *)
  | While (* regions: [cond (ends in Condition)] [body] *)
  | If (* operand: cond; regions: [then] [else] *)
  | Parallel of par_kind (* operands: lo*n, hi*n, step*n; region args: ivs *)
  | Barrier
  | Yield
  | Condition (* operand: i1; terminator of While's cond region *)
  | OmpParallel (* region executed by every thread of the team *)
  | OmpWsloop (* as Parallel Flat but iterations shared across the team *)
  | OmpBarrier

type op =
  { oid : int
  ; kind : kind
  ; mutable operands : Value.t array
  ; results : Value.t array
  ; mutable regions : region array
  ; mutable attrs : (string * attr) list
  ; mutable loc : Srcloc.t option
    (* source position of the frontend construct this op was lowered
       from; [None] for ops synthesized by transformation passes *)
  }

and region =
  { mutable rargs : Value.t array
  ; mutable body : op list
  }

(* Atomic: modules are built concurrently by the compile service's
   executor domains, and op ids must stay unique within each module
   (each lane's sequence is strictly increasing). *)
let op_counter = Atomic.make 0

let mk ?(operands = [||]) ?(results = [||]) ?(regions = [||]) ?(attrs = [])
    ?loc kind =
  { oid = 1 + Atomic.fetch_and_add op_counter 1
  ; kind
  ; operands
  ; results
  ; regions
  ; attrs
  ; loc
  }

let loc_string (op : op) =
  match op.loc with
  | Some l -> Srcloc.to_string l
  | None -> "?:?"

let region ?(args = [||]) body = { rargs = args; body }

let attr op name = List.assoc_opt name op.attrs

let attr_int op name =
  match attr op name with Some (Aint i) -> Some i | _ -> None

let attr_bool op name =
  match attr op name with Some (Abool b) -> Some b | _ -> None

let attr_str op name =
  match attr op name with Some (Astr s) -> Some s | _ -> None

let set_attr op name v =
  op.attrs <- (name, v) :: List.remove_assoc name op.attrs

let result op =
  match op.results with
  | [| r |] -> r
  | _ -> invalid_arg "Op.result: op does not have exactly one result"

(* Number of induction variables of a Parallel/OmpWsloop op. *)
let par_dims op = Array.length op.regions.(0).rargs

let par_lo op i = op.operands.(i)
let par_hi op i = op.operands.(par_dims op + i)
let par_step op i = op.operands.(2 * par_dims op + i)

let for_lo op = op.operands.(0)
let for_hi op = op.operands.(1)
let for_step op = op.operands.(2)
let for_iv op = op.regions.(0).rargs.(0)

let body_region op = op.regions.(0)

let is_terminatorless_region_op op =
  match op.kind with
  | For | If | Parallel _ | While | OmpParallel | OmpWsloop | Func _ | Module
    ->
    true
  | _ -> false

(* Structural iteration over an op and everything nested inside it
   (pre-order). *)
let rec iter f op =
  f op;
  Array.iter (fun r -> List.iter (iter f) r.body) op.regions

let iter_region f (r : region) = List.iter (iter f) r.body

(* Post-order iteration: children before the op itself. *)
let rec iter_post f op =
  Array.iter (fun r -> List.iter (iter_post f) r.body) op.regions;
  f op

let exists p op =
  let found = ref false in
  iter (fun o -> if p o then found := true) op;
  !found

let region_exists p r =
  List.exists (fun o -> exists p o) r.body

let contains_barrier_region r = region_exists (fun o -> o.kind = Barrier) r

let contains_barrier op =
  Array.exists contains_barrier_region op.regions

(* All funcs of a module, in order. *)
let funcs m =
  match m.kind with
  | Module ->
    List.filter (fun o -> match o.kind with Func _ -> true | _ -> false)
      m.regions.(0).body
  | _ -> invalid_arg "Op.funcs: not a module"

let find_func m name =
  List.find_opt
    (fun o -> match o.kind with Func f -> f.name = name | _ -> false)
    (funcs m)

let func_name op =
  match op.kind with
  | Func f -> f.name
  | _ -> invalid_arg "Op.func_name: not a func"

let binop_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | Min -> "min"
  | Max -> "max"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"

let cmp_to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let math_to_string = function
  | Sqrt -> "sqrt"
  | Exp -> "exp"
  | Log -> "log"
  | Fabs -> "fabs"
  | Floor -> "floor"
  | Neg -> "neg"
  | Not -> "not"
  | Sin -> "sin"
  | Cos -> "cos"
  | Tanh -> "tanh"
  | Erf -> "erf"
  | Pow -> "pow"
  | Log2 -> "log2"

let par_kind_to_string = function
  | Grid -> "grid"
  | Block -> "block"
  | Flat -> "flat"
