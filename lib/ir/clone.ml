(* Deep copy of ops/regions with SSA value remapping.

   Cloning allocates fresh result values and region arguments and rewrites
   every operand through the substitution table, so the clone is a valid
   independent piece of IR.  The substitution table can be pre-seeded to
   redirect free uses (e.g. replace an induction variable when duplicating
   a loop body into a new loop). *)

type subst = Value.t Value.Tbl.t

let create_subst () : subst = Value.Tbl.create 64

let add_subst (s : subst) ~from ~to_ = Value.Tbl.replace s from to_

let lookup (s : subst) v =
  match Value.Tbl.find_opt s v with Some v' -> v' | None -> v

let rec clone_op (s : subst) (op : Op.op) : Op.op =
  let operands = Array.map (lookup s) op.operands in
  let results =
    Array.map
      (fun (r : Value.t) ->
        let r' = Value.fresh ?name:r.name r.typ in
        Value.Tbl.replace s r r';
        r')
      op.results
  in
  (* Results must be remapped before regions are cloned: ops inside a
     region may not reference sibling results lexically later, but region
     args must be fresh before the body is visited. *)
  let regions = Array.map (clone_region s) op.regions in
  Op.mk op.kind ~operands ~results ~regions ~attrs:op.attrs ?loc:op.loc

and clone_region (s : subst) (r : Op.region) : Op.region =
  let rargs =
    Array.map
      (fun (a : Value.t) ->
        let a' = Value.fresh ?name:a.name a.typ in
        Value.Tbl.replace s a a';
        a')
      r.rargs
  in
  let body = List.map (clone_op s) r.body in
  { rargs; body }

let clone_op_fresh op = clone_op (create_subst ()) op

(* Clone a list of ops sharing one substitution (so defs in earlier ops are
   visible to later ones). *)
let clone_ops (s : subst) ops = List.map (clone_op s) ops
