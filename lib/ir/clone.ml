(* Deep copy of ops/regions with SSA value remapping.

   Cloning allocates fresh result values and region arguments and rewrites
   every operand through the substitution table, so the clone is a valid
   independent piece of IR.  The substitution table can be pre-seeded to
   redirect free uses (e.g. replace an induction variable when duplicating
   a loop body into a new loop). *)

type subst = Value.t Value.Tbl.t

let create_subst () : subst = Value.Tbl.create 64

let add_subst (s : subst) ~from ~to_ = Value.Tbl.replace s from to_

let lookup (s : subst) v =
  match Value.Tbl.find_opt s v with Some v' -> v' | None -> v

let rec clone_op (s : subst) (op : Op.op) : Op.op =
  let operands = Array.map (lookup s) op.operands in
  let results =
    Array.map
      (fun (r : Value.t) ->
        let r' = Value.fresh ?name:r.name r.typ in
        Value.Tbl.replace s r r';
        r')
      op.results
  in
  (* Results must be remapped before regions are cloned: ops inside a
     region may not reference sibling results lexically later, but region
     args must be fresh before the body is visited. *)
  let regions = Array.map (clone_region s) op.regions in
  Op.mk op.kind ~operands ~results ~regions ~attrs:op.attrs ?loc:op.loc

and clone_region (s : subst) (r : Op.region) : Op.region =
  let rargs =
    Array.map
      (fun (a : Value.t) ->
        let a' = Value.fresh ?name:a.name a.typ in
        Value.Tbl.replace s a a';
        a')
      r.rargs
  in
  let body = List.map (clone_op s) r.body in
  { rargs; body }

let clone_op_fresh op = clone_op (create_subst ()) op

(* Clone a list of ops sharing one substitution (so defs in earlier ops are
   visible to later ones). *)
let clone_ops (s : subst) ops = List.map (clone_op s) ops

(* --- snapshots (the fault-tolerant pass manager) --- *)

(* A snapshot is just a deep clone: passes mutate the original in place,
   so the clone is untouched by whatever happens afterwards. *)
let snapshot (op : Op.op) : Op.op = clone_op_fresh op

(* Restoring clones the snapshot again before moving its mutable pieces
   into [into]: the snapshot stays pristine, so the same snapshot can be
   restored several times (one rollback per rung of a degradation
   ladder).  Only the mutable fields are transplanted — [into] keeps its
   oid and result values — so this is meant for ops whose results carry
   no external uses, i.e. module roots. *)
let restore ~(into : Op.op) (snap : Op.op) : unit =
  let c = clone_op_fresh snap in
  into.Op.operands <- c.Op.operands;
  into.Op.regions <- c.Op.regions;
  into.Op.attrs <- c.Op.attrs;
  into.Op.loc <- c.Op.loc

(* Equality up to SSA renaming: two ops are structurally equal when their
   kinds/attrs/shapes match and their values correspond under one
   consistent bijection.  This is how tests check that a rollback really
   restored the pre-stage IR (printing is not stable: value ids are
   global, so a clone prints differently). *)
let structural_equal (a : Op.op) (b : Op.op) : bool =
  let fwd : Value.t Value.Tbl.t = Value.Tbl.create 64 in
  let bwd : Value.t Value.Tbl.t = Value.Tbl.create 64 in
  let val_eq (x : Value.t) (y : Value.t) =
    match (Value.Tbl.find_opt fwd x, Value.Tbl.find_opt bwd y) with
    | Some y', Some x' -> Value.equal y y' && Value.equal x x'
    | None, None ->
      Value.Tbl.replace fwd x y;
      Value.Tbl.replace bwd y x;
      x.Value.typ = y.Value.typ
    | _ -> false
  in
  let vals_eq xs ys =
    Array.length xs = Array.length ys && Array.for_all2 val_eq xs ys
  in
  let rec op_eq (a : Op.op) (b : Op.op) =
    a.Op.kind = b.Op.kind
    && a.Op.attrs = b.Op.attrs
    && vals_eq a.Op.operands b.Op.operands
    && vals_eq a.Op.results b.Op.results
    && Array.length a.Op.regions = Array.length b.Op.regions
    && Array.for_all2 region_eq a.Op.regions b.Op.regions
  and region_eq (ra : Op.region) (rb : Op.region) =
    vals_eq ra.Op.rargs rb.Op.rargs
    && List.length ra.Op.body = List.length rb.Op.body
    && List.for_all2 op_eq ra.Op.body rb.Op.body
  in
  op_eq a b
