type policy =
  | Static
  | Dynamic
  | Guided

let to_string = function
  | Static -> "static"
  | Dynamic -> "dynamic"
  | Guided -> "guided"

let of_string = function
  | "static" -> Some Static
  | "dynamic" -> Some Dynamic
  | "guided" -> Some Guided
  | _ -> None

(* Must match the serial interpreter's partition exactly: the
   differential tests compare bitwise checksums, and for the (racy but
   tolerated) benchmarks whose result depends on the partition, static
   at [size] must reproduce interp at [team_size = size].  The balanced
   partition itself lives in [Interp.Eval] for that reason. *)
let static_chunk ~rank ~size ~n = Interp.Eval.static_chunk ~rank ~size ~n

type shared = int Atomic.t

let make_shared () = Atomic.make 0

let next ?chunk (s : shared) (p : policy) ~size ~n : (int * int) option =
  let grab chunk =
    let lo = Atomic.fetch_and_add s chunk in
    if lo >= n then None else Some (lo, min n (lo + chunk))
  in
  match p with
  | Static -> invalid_arg "Schedule.next: static is not a grabbing policy"
  | Dynamic ->
    (* fixed chunks; default batches at least 8 iterations per grab so
       fine-grained spaces don't pay one fetch_and_add per iteration *)
    let c =
      match chunk with
      | Some c when c > 0 -> c
      | _ -> max 8 (n / (16 * size))
    in
    grab c
  | Guided ->
    let remaining = max 0 (n - Atomic.get s) in
    let floor_ =
      match chunk with
      | Some c when c > 0 -> c
      | _ -> 1
    in
    grab (max floor_ (remaining / (2 * size)))
