type policy =
  | Static
  | Dynamic
  | Guided

let to_string = function
  | Static -> "static"
  | Dynamic -> "dynamic"
  | Guided -> "guided"

let of_string = function
  | "static" -> Some Static
  | "dynamic" -> Some Dynamic
  | "guided" -> Some Guided
  | _ -> None

(* Must match the serial interpreter's partition exactly: the
   differential tests compare bitwise checksums, and for the (racy but
   tolerated) benchmarks whose result depends on the partition, static
   at [size] must reproduce interp at [team_size = size]. *)
let static_chunk ~rank ~size ~n =
  let chunk = (n + size - 1) / size in
  let lo = min n (rank * chunk) in
  let hi = min n (lo + chunk) in
  (lo, hi)

type shared = int Atomic.t

let make_shared () = Atomic.make 0

let next (s : shared) (p : policy) ~size ~n : (int * int) option =
  let grab chunk =
    let lo = Atomic.fetch_and_add s chunk in
    if lo >= n then None else Some (lo, min n (lo + chunk))
  in
  match p with
  | Static -> invalid_arg "Schedule.next: static is not a grabbing policy"
  | Dynamic ->
    (* fixed chunks, ~16 grabs per thread over the whole space *)
    grab (max 1 (n / (16 * size)))
  | Guided ->
    let remaining = max 0 (n - Atomic.get s) in
    grab (max 1 (remaining / (2 * size)))
