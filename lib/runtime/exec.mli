(** Multicore execution engine for the lowered OpenMP dialect.

    Where {!Interp.Eval} is a tree-walking interpreter (hashtable SSA
    environments, boxed runtime values, cooperative fibers), this engine
    {e compiles} a function to OCaml closures over three typed register
    files — an [int array], a [float array] and a [buffer array] indexed
    by dense per-function slots — and runs [omp.parallel] regions on
    OCaml 5 domains from a persistent {!Pool}.

    {2 Access paths}

    Loads and stores compile to a {e checked} path with the bounds test
    and the [Fdata]/[Idata] dtype dispatch inlined into the closure (no
    [Mem.get_f] call, no index-array allocation), or — for the
    innermost-affine pattern [buf[i1;..;ik; iv]] with loop-invariant
    buffer and prefix indices — to an {e unchecked} path: a guard at
    loop entry validates rank, dtype and the whole [iv] range once,
    precomputes the row base, and the loop body variant then accesses
    the raw data array with [unsafe_get]/[unsafe_set].  Guard failure
    falls back to the checked body for that loop entry, so bounds
    violations fail with exactly the interpreter's error.

    {2 Launch lifecycle}

    The first team launch builds a persistent team state: one
    cache-line-padded frame per thread plus the team barrier.  Every
    later launch (same domain count) only blits the master's register
    files into those frames and posts a cached job closure — the steady
    state allocates nothing, which {!stats.frames_allocated} proves.
    SSA scalars are per-thread (the blit), buffers stay shared by
    reference — exactly the interpreter's sharing structure.

    [omp.wsloop] partitions its linearized iteration space by
    {!Schedule.policy}; [Static] reproduces the serial interpreter's
    balanced contiguous chunks bit-for-bit.  [omp.barrier] is a
    sense-reversing {!Barrier}; a team member that dies poisons it so
    the team unwinds instead of deadlocking (and the poisoned team
    state is rebuilt on the next launch).

    Scalar semantics mirror the interpreter exactly: all float
    arithmetic in double precision, f32 rounding only at [f32]
    constants and [cast] to f32, integer division by zero fails.

    GPU-dialect ops that need fiber scheduling ([polygeist.barrier],
    [scf.parallel] containing barriers) are rejected at compile time
    with {!Unsupported} — the driver treats that, like any runtime
    failure, as one more degradation rung and falls back to the serial
    interpreter. *)

open Ir
open Interp

(** The module/function cannot be compiled for multicore execution
    (e.g. it still contains GPU barrier semantics). *)
exception Unsupported of string

(** Raised inside a team by [--inject-fault runtime:...]: exercises the
    poison/unwind path and the driver's degradation to serial. *)
exception Injected

(** The run exceeded its wall-clock bound ([timeout_ms], carried) and
    the {!Watchdog} cancelled it: the cancel flag is observed at
    while-loop back-edges and worksharing grabs, and ranks asleep at a
    barrier are woken by poisoning it.  The driver treats this like any
    other runtime failure — degrade to the serial interpreter on fresh
    arguments, exit 1. *)
exception Timeout of int

type stats =
  { mutable launches : int (** [omp.parallel] team launches *)
  ; mutable barrier_phases : int (** completed barrier phases, summed *)
  ; mutable domain_spawns : int (** [Domain.spawn]s this run caused *)
  ; mutable chunks_grabbed : int
    (** worksharing ranges executed: one per thread per static wsloop,
        one per successful atomic grab for dynamic/guided *)
  ; mutable frames_allocated : int
    (** register-file frames built this run; 0 on the second and later
        runs of a compiled kernel in team-reuse mode *)
  }

type compiled

(** Compile [name] (and everything it calls) in [modul].
    @raise Unsupported if the function uses GPU-only constructs. *)
val compile : Op.op -> string -> compiled

(** Execute a compiled function.

    [domains] (default 4) is the team size of every top-level
    [omp.parallel]; [1] is the deterministic single-domain mode (no
    worker domains, everything on the caller, static partition).
    [schedule] (default [Static]) picks the worksharing policy, and
    [chunk] the batch size of each dynamic/guided atomic grab (see
    {!Schedule.next}).  [team_reuse] (default true) keeps the team
    state (frames, barrier) and the process-wide domain pool across
    launches; [false] rebuilds both per launch (the [--no-team-reuse]
    ablation — visible as nonzero {!stats.frames_allocated} on every
    run).  [inject_fault] raises {!Injected} from inside a team thread
    mid-launch; [inject_hang] instead parks that thread in a
    non-terminating loop that only the watchdog's cancel ends (use it
    with [timeout_ms]).  [timeout_ms] (default [0] = unbounded) arms
    the {!Watchdog} for the whole run and raises {!Timeout} on
    expiry.

    Not thread-safe: one [run] at a time per [compiled].  The entry
    frame and team frames persist inside [compiled] between runs (they
    are what makes repeated launches allocation-free), so a [compiled]
    value retains its last run's buffers until the next run rebinds
    them.

    @raise Mem.Runtime_error on the same conditions as the interpreter. *)
val run :
  ?domains:int ->
  ?schedule:Schedule.policy ->
  ?chunk:int ->
  ?team_reuse:bool ->
  ?inject_fault:bool ->
  ?inject_hang:bool ->
  ?timeout_ms:int ->
  compiled ->
  Mem.rv list ->
  Mem.rv option * stats

(** [compile] + [run] in one step. *)
val run_module :
  ?domains:int ->
  ?schedule:Schedule.policy ->
  ?chunk:int ->
  ?team_reuse:bool ->
  ?inject_fault:bool ->
  ?inject_hang:bool ->
  ?timeout_ms:int ->
  Op.op ->
  string ->
  Mem.rv list ->
  Mem.rv option * stats
