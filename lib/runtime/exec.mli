(** Multicore execution engine for the lowered OpenMP dialect.

    Where {!Interp.Eval} is a tree-walking interpreter (hashtable SSA
    environments, boxed runtime values, cooperative fibers), this engine
    {e compiles} a function to OCaml closures over three typed register
    files — an [int array], a [float array] and a [buffer array] indexed
    by dense per-function slots — and runs [omp.parallel] regions on
    OCaml 5 domains from a persistent {!Pool}.

    At a team launch every thread gets a {e per-thread memory view}: a
    shallow copy of the register files, so SSA scalars defined before
    the region are private (and [alloca]s executed inside the region
    create private buffers), while buffers allocated outside are shared
    by reference — exactly the interpreter's sharing structure.

    [omp.wsloop] partitions its linearized iteration space by
    {!Schedule.policy}; [Static] reproduces the serial interpreter's
    contiguous chunks bit-for-bit.  [omp.barrier] is a sense-reversing
    {!Barrier}; a team member that dies poisons it so the team unwinds
    instead of deadlocking.

    Scalar semantics mirror the interpreter exactly: all float
    arithmetic in double precision, f32 rounding only at [f32]
    constants and [cast] to f32, integer division by zero fails.

    GPU-dialect ops that need fiber scheduling ([polygeist.barrier],
    [scf.parallel] containing barriers) are rejected at compile time
    with {!Unsupported} — the driver treats that, like any runtime
    failure, as one more degradation rung and falls back to the serial
    interpreter. *)

open Ir
open Interp

(** The module/function cannot be compiled for multicore execution
    (e.g. it still contains GPU barrier semantics). *)
exception Unsupported of string

(** Raised inside a team by [--inject-fault runtime:...]: exercises the
    poison/unwind path and the driver's degradation to serial. *)
exception Injected

type stats =
  { mutable launches : int (** [omp.parallel] team launches *)
  ; mutable barrier_phases : int (** completed barrier phases, summed *)
  ; mutable domain_spawns : int (** [Domain.spawn]s this run caused *)
  }

type compiled

(** Compile [name] (and everything it calls) in [modul].
    @raise Unsupported if the function uses GPU-only constructs. *)
val compile : Op.op -> string -> compiled

(** Execute a compiled function.

    [domains] (default 4) is the team size of every top-level
    [omp.parallel]; [1] is the deterministic single-domain mode (no
    worker domains, everything on the caller, static partition).
    [schedule] (default [Static]) picks the worksharing policy.
    [team_reuse] (default true) uses the process-wide cached pool;
    [false] spawns and joins a fresh pool per launch (the
    [--no-team-reuse] ablation).  [inject_fault] raises {!Injected}
    from inside a team thread mid-launch.

    Not thread-safe: one [run] at a time per [compiled].

    @raise Mem.Runtime_error on the same conditions as the interpreter. *)
val run :
  ?domains:int ->
  ?schedule:Schedule.policy ->
  ?team_reuse:bool ->
  ?inject_fault:bool ->
  compiled ->
  Mem.rv list ->
  Mem.rv option * stats

(** [compile] + [run] in one step. *)
val run_module :
  ?domains:int ->
  ?schedule:Schedule.policy ->
  ?team_reuse:bool ->
  ?inject_fault:bool ->
  Op.op ->
  string ->
  Mem.rv list ->
  Mem.rv option * stats
