(** Worksharing schedules for [omp.wsloop]: how a team partitions an
    iteration space of [n] (linearized) iterations.

    - [Static]: balanced contiguous chunks computed from the rank alone
      — no shared state, deterministic assignment, and the exact
      partition the serial interpreter uses (chunk sizes differ by at
      most 1 across the team).
    - [Dynamic]: threads repeatedly grab fixed-size chunks from a shared
      atomic counter — work stealing for skewed iteration loads.
    - [Guided]: like dynamic, but the chunk size starts at
      [remaining / (2*size)] and decays, trading fewer atomic
      operations against tail balance. *)

type policy =
  | Static
  | Dynamic
  | Guided

val to_string : policy -> string
val of_string : string -> policy option

(** [static_chunk ~rank ~size ~n] is the contiguous [lo, hi) range of
    rank [rank] in a team of [size] over [n] iterations.  Delegates to
    {!Interp.Eval.static_chunk}, the single source of truth for the
    static partition, so runtime and interpreter stay bit-compatible. *)
val static_chunk : rank:int -> size:int -> n:int -> int * int

(** Shared grab state for one dynamic/guided worksharing region. *)
type shared

val make_shared : unit -> shared

(** [next ?chunk shared policy ~size ~n] grabs the next [lo, hi) chunk,
    or [None] when the space is exhausted.  [chunk] overrides the batch
    size of each atomic grab: for [Dynamic] it is the fixed chunk size
    (default [max 8 (n / (16*size))]); for [Guided] it is the minimum
    chunk the decaying schedule will hand out (default 1).  [Static] is
    not a grabbing policy and must not be passed here. *)
val next :
  ?chunk:int -> shared -> policy -> size:int -> n:int -> (int * int) option
