(** Worksharing schedules for [omp.wsloop]: how a team partitions an
    iteration space of [n] (linearized) iterations.

    - [Static]: contiguous chunks of [ceil(n/size)], computed from the
      rank alone — no shared state, deterministic assignment, and the
      exact partition the serial interpreter uses.
    - [Dynamic]: threads repeatedly grab fixed-size chunks from a shared
      atomic counter — work stealing for skewed iteration loads.
    - [Guided]: like dynamic, but the chunk size starts at
      [remaining / (2*size)] and decays, trading fewer atomic
      operations against tail balance. *)

type policy =
  | Static
  | Dynamic
  | Guided

val to_string : policy -> string
val of_string : string -> policy option

(** [static_chunk ~rank ~size ~n] is the contiguous [lo, hi) range of
    rank [rank] in a team of [size] over [n] iterations. *)
val static_chunk : rank:int -> size:int -> n:int -> int * int

(** Shared grab state for one dynamic/guided worksharing region. *)
type shared

val make_shared : unit -> shared

(** [next shared policy ~size ~n] grabs the next [lo, hi) chunk, or
    [None] when the space is exhausted.  [Static] is not a grabbing
    policy and must not be passed here. *)
val next : shared -> policy -> size:int -> n:int -> (int * int) option
