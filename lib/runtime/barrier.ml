(* Sense-reversing barrier with a bounded spin phase and a
   mutex/condvar sleep path.

   The classic structure: a shared [sense] bit and an arrival counter.
   Each thread computes the sense of the phase it is entering (the
   negation of the current global sense); the last arriver resets the
   counter and flips the global sense, releasing everyone.  Reversing
   the sense every phase makes the barrier reusable without waiting for
   stragglers of the previous phase to drain.

   The spin phase matters when domains map to real cores; the sleep
   path matters when they do not (this container has one core, so a
   pure spin barrier would burn a scheduler quantum per waiter per
   phase).  The sense flip and the broadcast happen under the mutex, and
   sleepers re-check the sense under the same mutex before waiting, so
   no wakeup can be lost. *)

type t =
  { size : int
  ; arrived : int Atomic.t
  ; sense : bool Atomic.t
  ; poisoned : bool Atomic.t
  ; phases : int Atomic.t
  ; m : Mutex.t
  ; cv : Condition.t
  }

exception Poisoned

let create size =
  if size < 1 then invalid_arg "Barrier.create: size must be >= 1";
  { size
  ; arrived = Atomic.make 0
  ; sense = Atomic.make false
  ; poisoned = Atomic.make false
  ; phases = Atomic.make 0
  ; m = Mutex.create ()
  ; cv = Condition.create ()
  }

let phases t = Atomic.get t.phases
let is_poisoned t = Atomic.get t.poisoned

(* Poison must broadcast immediately, not wait for the next arrival: a
   rank asleep in [Condition.wait] has to observe it promptly.  Setting
   the flag and broadcasting under the mutex closes the lost-wakeup
   window — a sleeper holds the mutex between its re-check of the wait
   condition and the [Condition.wait] call, so the broadcast cannot
   slot into that gap. *)
let poison t =
  Mutex.lock t.m;
  Atomic.set t.poisoned true;
  Condition.broadcast t.cv;
  Mutex.unlock t.m

let spin_budget = 200

let wait t =
  if t.size > 1 then begin
    if Atomic.get t.poisoned then raise Poisoned;
    let my = not (Atomic.get t.sense) in
    if Atomic.fetch_and_add t.arrived 1 = t.size - 1 then begin
      (* last arriver: reset for the next phase, then release.  The
         counter reset must precede the sense flip — released threads
         may re-enter the barrier immediately. *)
      Atomic.set t.arrived 0;
      Atomic.incr t.phases;
      Mutex.lock t.m;
      Atomic.set t.sense my;
      Condition.broadcast t.cv;
      Mutex.unlock t.m
    end
    else begin
      let spins = ref 0 in
      while
        Atomic.get t.sense <> my
        && (not (Atomic.get t.poisoned))
        && !spins < spin_budget
      do
        incr spins;
        Domain.cpu_relax ()
      done;
      if Atomic.get t.sense <> my then begin
        Mutex.lock t.m;
        while Atomic.get t.sense <> my && not (Atomic.get t.poisoned) do
          Condition.wait t.cv t.m
        done;
        Mutex.unlock t.m
      end;
      if Atomic.get t.sense <> my && Atomic.get t.poisoned then
        raise Poisoned
    end
  end
