(* Wall-clock watchdog for parallel launches.

   One lazily-spawned monitor domain sleeps in short quanta and fires
   the action of any armed entry whose deadline has passed.  Arming is
   cheap (a list push under a mutex plus a condvar signal), so the
   runtime can arm per [Exec.run] without measurable overhead; the
   monitor blocks on the condvar whenever nothing is armed, so an idle
   process pays nothing.

   The monitor never joins: like the {!Pool} worker domains it blocks
   until process exit.  Actions run on the monitor domain, so they must
   be async-signal-ish: set a flag, poison a barrier — never block. *)

type token =
  { deadline : float
  ; action : unit -> unit
  ; mutable armed : bool
  ; mutable fired : bool
  }

let m = Mutex.create ()
let cv = Condition.create ()
let entries : token list ref = ref []
let monitor_running = ref false

(* Polling quantum: 5 ms bounds how late an expiry fires, which is
   plenty for timeouts counted in hundreds of milliseconds. *)
let quantum = 0.005

let monitor_loop () =
  while true do
    Mutex.lock m;
    while !entries = [] do
      Condition.wait cv m
    done;
    let now = Unix.gettimeofday () in
    let due, rest = List.partition (fun e -> now >= e.deadline) !entries in
    entries := rest;
    List.iter
      (fun e ->
        if e.armed then begin
          e.armed <- false;
          e.fired <- true
        end)
      due;
    Mutex.unlock m;
    List.iter (fun e -> if e.fired then try e.action () with _ -> ()) due;
    Unix.sleepf quantum
  done

let ensure_monitor () =
  (* called with [m] held *)
  if not !monitor_running then begin
    monitor_running := true;
    ignore (Domain.spawn monitor_loop)
  end

let arm ~(timeout_ms : int) ~(on_timeout : unit -> unit) : token =
  if timeout_ms <= 0 then invalid_arg "Watchdog.arm: timeout_ms must be > 0";
  let e =
    { deadline = Unix.gettimeofday () +. (float_of_int timeout_ms /. 1000.0)
    ; action = on_timeout
    ; armed = true
    ; fired = false
    }
  in
  Mutex.lock m;
  ensure_monitor ();
  entries := e :: !entries;
  Condition.signal cv;
  Mutex.unlock m;
  e

let disarm (e : token) : unit =
  Mutex.lock m;
  e.armed <- false;
  entries := List.filter (fun e' -> e' != e) !entries;
  Mutex.unlock m

let fired (e : token) : bool =
  Mutex.lock m;
  let f = e.fired in
  Mutex.unlock m;
  f
