(** Persistent domain pool: the paper's "avoid re-spawning threads"
    runtime optimization (Sec. IV-D).

    A pool of [n] threads is the calling domain (rank 0) plus [n-1]
    worker domains parked on a condition variable.  {!run} hands every
    member the same job and returns when all of them finish, so a kernel
    launch costs two condvar round-trips instead of [n-1]
    [Domain.spawn]s.

    {!get} returns the calling domain's cached pool when [reuse] is
    true (creating or resizing it as needed) — teams persist across
    kernel launches.  The cache is domain-local, so each of the compile
    service's executor lanes owns an independent pool and a poisoned or
    rebuilt team in one lane never touches another; a single-domain
    process (the one-shot CLI) sees exactly the old process-wide
    behavior.  With [reuse:false] a fresh pool is created and must be
    {!release}d after the launch; this deliberately pays the spawn cost
    every time and exists as the [--no-team-reuse] ablation.

    A pool of size 1 has no workers: {!run} calls the job directly on
    the caller, which is the deterministic single-domain mode. *)

type t

val size : t -> int

(** Cumulative number of [Domain.spawn]s performed by this module, for
    stats and for testing team reuse. *)
val total_spawns : unit -> int

(** [get ~domains ~reuse] returns a pool of [domains] threads.  With
    [reuse:true] the calling domain's cached pool is returned, created
    on first use and recreated when the size changes.  With
    [reuse:false] a fresh, caller-owned pool is returned. *)
val get : domains:int -> reuse:bool -> t

(** [run t job] executes [job rank] on every member (rank 0 on the
    caller) and waits for all of them.  If members raise, one of the
    exceptions is re-raised here after every member has stopped. *)
val run : t -> (int -> unit) -> unit

(** Stop and join the pool's workers.  Required for [reuse:false] pools;
    a no-op on the cached pool (use {!shutdown_cached}). *)
val release : t -> unit

(** Fault-wall teardown: signal every worker to stop, join the ones
    that are between jobs and abandon any that are wedged mid-job (an
    OCaml domain cannot be killed; a leaked worker exits on its own if
    its job ever returns).  Returns the number of leaked domains.
    Unlike {!release} this never blocks on a poisoned/hung team, so it
    is safe to call from a supervisor after a failed launch. *)
val shutdown : t -> int

(** Stop the calling domain's cached pool, if any, via {!shutdown}.
    Executor lanes call this as they exit so their teams don't outlive
    them; a wedged lane's pool is simply leaked with the lane. *)
val shutdown_cached : unit -> unit

(** [rebuild ~domains] tears down the calling domain's cached pool with
    {!shutdown} and creates a fresh cached pool of [domains] threads,
    returning it plus the number of worker domains the teardown had to
    leak.  The job fault wall calls this after any launch failure so
    the next job runs on known-good domains. *)
val rebuild : domains:int -> t * int
