(** Persistent domain pool: the paper's "avoid re-spawning threads"
    runtime optimization (Sec. IV-D).

    A pool of [n] threads is the calling domain (rank 0) plus [n-1]
    worker domains parked on a condition variable.  {!run} hands every
    member the same job and returns when all of them finish, so a kernel
    launch costs two condvar round-trips instead of [n-1]
    [Domain.spawn]s.

    {!get} returns the process-wide cached pool when [reuse] is true
    (creating or resizing it as needed) — teams persist across kernel
    launches.  With [reuse:false] a fresh pool is created and must be
    {!release}d after the launch; this deliberately pays the spawn cost
    every time and exists as the [--no-team-reuse] ablation.

    A pool of size 1 has no workers: {!run} calls the job directly on
    the caller, which is the deterministic single-domain mode. *)

type t

val size : t -> int

(** Cumulative number of [Domain.spawn]s performed by this module, for
    stats and for testing team reuse. *)
val total_spawns : unit -> int

(** [get ~domains ~reuse] returns a pool of [domains] threads.  With
    [reuse:true] the process-wide pool is returned, created on first use
    and recreated when the size changes.  With [reuse:false] a fresh,
    caller-owned pool is returned. *)
val get : domains:int -> reuse:bool -> t

(** [run t job] executes [job rank] on every member (rank 0 on the
    caller) and waits for all of them.  If members raise, one of the
    exceptions is re-raised here after every member has stopped. *)
val run : t -> (int -> unit) -> unit

(** Stop and join the pool's workers.  Required for [reuse:false] pools;
    a no-op on the cached pool (use {!shutdown_cached}). *)
val release : t -> unit

(** Stop and join the process-wide cached pool, if any. *)
val shutdown_cached : unit -> unit
