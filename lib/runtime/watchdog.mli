(** Wall-clock watchdog for parallel launches.

    A single lazily-spawned monitor domain tracks armed deadlines and
    runs each entry's [on_timeout] action once its deadline passes
    (within a ~5 ms polling quantum).  {!Exec.run} arms one entry per
    execution when given a timeout; the action sets the engine's cancel
    flag and poisons the live team barrier, so a launch stuck at a
    barrier (or spinning in a [while] loop) unwinds through the
    existing poison path instead of hanging the driver.

    Actions run on the monitor domain: they must only flip flags and
    poison barriers, never block. *)

type token

(** Arm a deadline [timeout_ms] milliseconds from now.  [on_timeout]
    runs once if the deadline passes before {!disarm}.
    @raise Invalid_argument if [timeout_ms <= 0]. *)
val arm : timeout_ms:int -> on_timeout:(unit -> unit) -> token

(** Cancel an armed entry.  If the action already started firing this
    is a no-op; {!fired} tells which happened. *)
val disarm : token -> unit

(** Whether the entry's deadline passed and its action was invoked. *)
val fired : token -> bool
