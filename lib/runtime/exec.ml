(* Compile-to-closures multicore engine for the lowered OpenMP dialect.

   Compilation assigns every SSA value of a function a dense slot in one
   of three typed register files — ints, floats, buffers — chosen by the
   value's static type, and turns each op into an OCaml closure over a
   [frame] holding those files.  Compared to the tree-walking
   interpreter this removes the per-op hashtable lookups, the [Mem.rv]
   boxing of every intermediate (floats live unboxed in a [float
   array]), and the per-iteration environment allocations; loops become
   plain [while] loops over precompiled bodies.

   Scalar semantics mirror {!Interp.Eval} exactly: all float arithmetic
   in double precision with f32 rounding only at f32 constants and
   casts-to-f32, integer division/modulo by zero failing, [scf.for]
   bounds evaluated once.  [scf.parallel] regions are executed as
   serial nested loops in the interpreter's iteration order; if they
   still contain GPU barriers, the function is rejected at compile time
   ({!Unsupported}) so the driver can degrade to the fiber interpreter.

   Memory accesses compile to one of two paths.  The checked path
   inlines the bounds test and the [Fdata]/[Idata] dispatch into the
   access closure (no [Mem.get_f] call, no index array).  The unchecked
   path exists for the innermost-affine pattern [buf[i1;..;ik; iv]]
   where [iv] is the iv of the innermost enclosing loop and the buffer
   and prefix indices are loop-invariant: a guard at loop entry
   validates the buffer's rank, dtype and the whole [iv] range once,
   binds the raw data array and precomputed row base into per-frame
   caches, and the loop then runs a body variant whose accesses are
   single [unsafe_get]/[unsafe_set]s.  Any guard failure falls back to
   the checked body for the whole loop entry, so safety semantics and
   error messages are unchanged.

   Team execution ([omp.parallel]) launches one frame per thread on a
   {!Pool}.  The frames live in a persistent, cache-line-padded team
   state owned by the compiled function: a launch blits the master's
   register files into them and posts a cached job closure, so the
   steady-state launch path allocates nothing.  [omp.wsloop] linearizes
   its iteration space and partitions it per {!Schedule}; because
   wsloops carry no implicit trailing barrier, team members may enter
   the same dynamic loop different numbers of times concurrently, so the
   shared grab state is keyed by (loop oid, per-thread encounter count)
   — the "generation" — and discarded by the last finisher. *)

open Ir
open Interp

exception Unsupported of string
exception Injected

(* The run exceeded its wall-clock bound and the watchdog cancelled it;
   carries the bound in milliseconds. *)
exception Timeout of int

type stats =
  { mutable launches : int
  ; mutable barrier_phases : int
  ; mutable domain_spawns : int
  ; mutable chunks_grabbed : int
  ; mutable frames_allocated : int
  }

(* What --inject-fault runtime:KIND does inside a team: [Inject_raise]
   kills one rank outright (exercising poison/unwind), [Inject_hang]
   parks one rank in a non-terminating loop that only the watchdog's
   cancel ends (exercising timeout/poison/degradation). *)
type inject =
  | Inject_none
  | Inject_raise
  | Inject_hang

(* Mutated by [run] before execution starts; read from inside compiled
   closures via the frame. *)
type config =
  { mutable domains : int
  ; mutable schedule : Schedule.policy
  ; mutable chunk : int option
  ; mutable team_reuse : bool
  ; mutable inject : inject
  ; mutable timeout_ms : int (* 0 = no watchdog *)
  }

(* One dynamic/guided worksharing region instance (one generation of one
   wsloop).  [finishers] counts team members that exhausted it; the last
   one removes the entry from the team table. *)
type wshare =
  { grab : Schedule.shared
  ; mutable finishers : int
  }

type team =
  { size : int
  ; barrier : Barrier.t
  ; wmutex : Mutex.t
  ; wtbl : (int * int, wshare) Hashtbl.t (* (wsloop oid, generation) *)
  }

(* Per-thread launch context: which team, which rank, and how many times
   this thread has entered each wsloop (the generation counter). *)
type launch_ctx =
  { team : team
  ; rank : int
  ; ws_seen : (int, int) Hashtbl.t
  }

(* [chunks]/[frames] are atomics because worker threads bump them; they
   are snapshotted into the launcher-owned [stats] record when [run]
   returns.  [ts] is the persistent team state (frames + barrier) that
   makes repeated launches allocation-free. *)
type glob =
  { cfg : config
  ; stats : stats
  ; chunks : int Atomic.t
  ; frames : int Atomic.t
  ; cancel : bool Atomic.t
    (* set by the watchdog; observed at while-loop back-edges, wsloop
       grabs and launch boundaries, which all raise [Timeout] *)
  ; live : team option Atomic.t
    (* the team currently inside Pool.run, so the watchdog can poison
       its barrier and wake ranks sleeping there *)
  ; mutable ts : tstate option
  }

and frame =
  { iregs : int array
  ; fregs : float array
  ; bregs : Mem.buffer array
  ; fdat : float array array (* hoisted-access data caches, per cand *)
  ; idat : int array array
  ; abase : int array (* hoisted-access row bases, per cand *)
  ; lc : launch_ctx option
  ; glob : glob
  }

and tstate =
  { tsize : int
  ; tteam : team
  ; tframes : frame array
  ; mutable tphases : int (* barrier phases already accounted *)
  }

type code = frame -> unit

exception Ret of Mem.rv option

type slot =
  | SI of int
  | SF of int
  | SB of int

(* One hoistable access: [ckind]/[cbuf]/[cprefix] describe the access,
   [civ] is the iv slot it is affine in, [ccache] indexes the frame's
   [fdat]/[idat]/[abase] caches. *)
type akind =
  | KF
  | KI

type cand =
  { ckind : akind
  ; ccache : int
  ; civ : int
  ; cbuf : int
  ; cprefix : (frame -> int) array
  }

(* One loop currently being compiled for hoisting: its iv slot, the set
   of slots its body defines (for invariance tests) and the candidates
   found so far. *)
type hctx =
  { hiv : int
  ; hdefs : (int, unit) Hashtbl.t
  ; mutable hcands : cand list
  }

type cfunc =
  { mutable ni : int
  ; mutable nf : int
  ; mutable nb : int
  ; mutable nc : int
  ; mutable params : slot array
  ; mutable body : code
  }

type cmod =
  { modul : Op.op
  ; cfuncs : (string, cfunc) Hashtbl.t
  ; sentinel : Mem.buffer
    (* per-compile unbound-register marker; never a user buffer *)
  }

(* [hstack] is the stack of loops being compiled (innermost first);
   [emit_ivs] lists the ivs whose unchecked body variant is currently
   being emitted; [cands] dedups candidates per access op so the two
   body variants of a loop share one cache slot. *)
type cenv =
  { cm : cmod
  ; slots : (int, slot) Hashtbl.t (* Value.id -> slot *)
  ; mutable ni : int
  ; mutable nf : int
  ; mutable nb : int
  ; mutable nc : int
  ; mutable hstack : hctx list
  ; mutable emit_ivs : int list
  ; cands : (int, cand) Hashtbl.t (* access op oid -> candidate *)
  }

(* --- slot assignment and typed accessors --- *)

let slot_of (ce : cenv) (v : Value.t) : slot =
  match Hashtbl.find_opt ce.slots v.Value.id with
  | Some s -> s
  | None ->
    let s =
      match v.Value.typ with
      | Types.Scalar d when Types.is_float_dtype d ->
        let k = ce.nf in
        ce.nf <- k + 1;
        SF k
      | Types.Scalar _ ->
        let k = ce.ni in
        ce.ni <- k + 1;
        SI k
      | Types.Memref _ ->
        let k = ce.nb in
        ce.nb <- k + 1;
        SB k
    in
    Hashtbl.add ce.slots v.Value.id s;
    s

let slot_key = function
  | SI k -> 3 * k
  | SF k -> (3 * k) + 1
  | SB k -> (3 * k) + 2

let iget ce v : frame -> int =
  match slot_of ce v with
  | SI k -> fun fr -> fr.iregs.(k)
  | SF _ -> fun _ -> Mem.fail "expected integer value, got float"
  | SB _ -> fun _ -> Mem.fail "expected integer value, got buffer"

let fget ce v : frame -> float =
  match slot_of ce v with
  | SF k -> fun fr -> fr.fregs.(k)
  | SI k -> fun fr -> float_of_int fr.iregs.(k)
  | SB _ -> fun _ -> Mem.fail "expected float value, got buffer"

(* Truncating integer view, mirroring [Mem.as_int_or_trunc] (casts). *)
let tget ce v : frame -> int =
  match slot_of ce v with
  | SI k -> fun fr -> fr.iregs.(k)
  | SF k -> fun fr -> int_of_float fr.fregs.(k)
  | SB _ -> fun _ -> Mem.fail "expected scalar value, got buffer"

(* Buffer reads check the per-compile sentinel: a register that was
   never bound fails with the op's location and the value's name
   instead of a bounds error on a shared zero-length dummy. *)
let unbound (op : Op.op) (v : Value.t) =
  Mem.fail "%s: read of unbound buffer register %s" (Op.loc_string op)
    (Value.to_string v)

let bget ce (op : Op.op) v : frame -> Mem.buffer =
  let sent = ce.cm.sentinel in
  match slot_of ce v with
  | SB k ->
    fun fr ->
      let b = fr.bregs.(k) in
      if b == sent then unbound op v else b
  | SI _ | SF _ -> fun _ -> Mem.fail "expected buffer value"

let iset ce v : frame -> int -> unit =
  match slot_of ce v with
  | SI k -> fun fr x -> fr.iregs.(k) <- x
  | SF _ | SB _ -> fun _ _ -> Mem.fail "type mismatch: integer result"

let fset ce v : frame -> float -> unit =
  match slot_of ce v with
  | SF k -> fun fr x -> fr.fregs.(k) <- x
  | SI _ | SB _ -> fun _ _ -> Mem.fail "type mismatch: float result"

let bset ce v : frame -> Mem.buffer -> unit =
  match slot_of ce v with
  | SB k -> fun fr b -> fr.bregs.(k) <- b
  | SI _ | SF _ -> fun _ _ -> Mem.fail "type mismatch: buffer result"

let rv_get ce (op : Op.op) v : frame -> Mem.rv =
  let sent = ce.cm.sentinel in
  match slot_of ce v with
  | SI k -> fun fr -> Mem.Int fr.iregs.(k)
  | SF k -> fun fr -> Mem.Flt fr.fregs.(k)
  | SB k ->
    fun fr ->
      let b = fr.bregs.(k) in
      if b == sent then unbound op v else Mem.Buf b

(* Read-side conversions, like the interpreter's [as_*] on lookup. *)
let bind_slot (fr : frame) (s : slot) (v : Mem.rv) : unit =
  match s with
  | SI k -> fr.iregs.(k) <- Mem.as_int v
  | SF k -> fr.fregs.(k) <- Mem.as_float v
  | SB k -> fr.bregs.(k) <- Mem.as_buf v

let is_float_value (v : Value.t) =
  match v.Value.typ with
  | Types.Scalar d -> Types.is_float_dtype d
  | Types.Memref _ -> false

let f32 x = Int32.float_of_bits (Int32.bits_of_float x)

(* --- scalar op semantics (identical formulas to Interp.Eval) --- *)

let fbinop : Op.binop -> float -> float -> float = function
  | Op.Add -> ( +. )
  | Op.Sub -> ( -. )
  | Op.Mul -> ( *. )
  | Op.Div -> ( /. )
  | Op.Rem -> Float.rem
  | Op.Min -> Float.min
  | Op.Max -> Float.max
  | Op.And | Op.Or | Op.Xor | Op.Shl | Op.Shr ->
    fun _ _ -> Mem.fail "bitwise op on float"

let ibinop : Op.binop -> int -> int -> int = function
  | Op.Add -> ( + )
  | Op.Sub -> ( - )
  | Op.Mul -> ( * )
  | Op.Div ->
    fun x y -> if y = 0 then Mem.fail "integer division by zero" else x / y
  | Op.Rem ->
    fun x y -> if y = 0 then Mem.fail "integer modulo by zero" else x mod y
  | Op.Min -> min
  | Op.Max -> max
  | Op.And -> ( land )
  | Op.Or -> ( lor )
  | Op.Xor -> ( lxor )
  | Op.Shl -> ( lsl )
  | Op.Shr -> ( asr )

let fcmp : Op.cmp_pred -> float -> float -> bool = function
  | Op.Eq -> fun x y -> x = y
  | Op.Ne -> fun x y -> x <> y
  | Op.Lt -> fun x y -> x < y
  | Op.Le -> fun x y -> x <= y
  | Op.Gt -> fun x y -> x > y
  | Op.Ge -> fun x y -> x >= y

let icmp : Op.cmp_pred -> int -> int -> bool = function
  | Op.Eq -> fun x y -> x = y
  | Op.Ne -> fun x y -> x <> y
  | Op.Lt -> fun x y -> x < y
  | Op.Le -> fun x y -> x <= y
  | Op.Gt -> fun x y -> x > y
  | Op.Ge -> fun x y -> x >= y

(* Same Abramowitz–Stegun expression as the interpreter, same
   association, so results are bit-identical. *)
let erf_as x =
  let s = if x < 0.0 then -1.0 else 1.0 in
  let x = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
  let y =
    1.0
    -. ((((((1.061405429 *. t) -. 1.453152027) *. t) +. 1.421413741) *. t
         -. 0.284496736)
        *. t
        +. 0.254829592)
       *. t
       *. exp (-.x *. x)
  in
  s *. y

let fmath : Op.math_fn -> float -> float = function
  | Op.Sqrt -> sqrt
  | Op.Exp -> exp
  | Op.Log -> log
  | Op.Log2 -> fun x -> log x /. log 2.0
  | Op.Fabs -> Float.abs
  | Op.Floor -> Float.floor
  | Op.Neg -> fun x -> -.x
  | Op.Sin -> sin
  | Op.Cos -> cos
  | Op.Tanh -> tanh
  | Op.Erf -> erf_as
  | Op.Not | Op.Pow -> fun _ -> Mem.fail "math: bad arity"

let oob (b : Mem.buffer) ix d =
  Mem.fail "buffer #%d: index %d out of bounds [0,%d) in dim %d" b.Mem.bufid ix
    b.Mem.dims.(d) d

(* --- hoisting analysis --- *)

(* All slots defined inside an op list, including nested region
   arguments: the "varies inside this loop body" set. *)
let rec defs_of_ops ce tbl (ops : Op.op list) : unit =
  List.iter
    (fun (o : Op.op) ->
      Array.iter
        (fun r -> Hashtbl.replace tbl (slot_key (slot_of ce r)) ())
        o.Op.results;
      Array.iter
        (fun (r : Op.region) ->
          Array.iter
            (fun a -> Hashtbl.replace tbl (slot_key (slot_of ce a)) ())
            r.Op.rargs;
          defs_of_ops ce tbl r.Op.body)
        o.Op.regions)
    ops

(* Is [buf[i1;..;ik; last]] hoistable out of some loop currently being
   compiled?  Requires [last] to be that loop's iv and the buffer and
   every prefix index to be invariant in the loop's body.  Registers the
   candidate (one cache slot per access op, shared by both body
   variants) with the loop it hoists out of. *)
let hoist_candidate ce (op : Op.op) ~(bufv : Value.t)
    ~(idxv : Value.t array) ~(kind : akind) : cand option =
  let n = Array.length idxv in
  if n = 0 || ce.hstack = [] then None
  else begin
    match slot_of ce idxv.(n - 1) with
    | SF _ | SB _ -> None
    | SI ivk -> begin
      let rec find = function
        | [] -> None
        | h :: rest -> if h.hiv = ivk then Some h else find rest
      in
      match find ce.hstack with
      | None -> None
      | Some h ->
        let invariant s = not (Hashtbl.mem h.hdefs (slot_key s)) in
        let buf_ok =
          match slot_of ce bufv with
          | SB _ as s -> invariant s
          | SI _ | SF _ -> false
        in
        let prefix_ok = ref buf_ok in
        for i = 0 to n - 2 do
          match slot_of ce idxv.(i) with
          | SI _ as s -> if not (invariant s) then prefix_ok := false
          | SF _ | SB _ -> prefix_ok := false
        done;
        if not !prefix_ok then None
        else begin
          let c =
            match Hashtbl.find_opt ce.cands op.Op.oid with
            | Some c -> c
            | None ->
              let ccache = ce.nc in
              ce.nc <- ccache + 1;
              let cbuf =
                match slot_of ce bufv with
                | SB k -> k
                | SI _ | SF _ -> assert false
              in
              let c =
                { ckind = kind
                ; ccache
                ; civ = ivk
                ; cbuf
                ; cprefix =
                    Array.map (iget ce) (Array.sub idxv 0 (n - 1))
                }
              in
              Hashtbl.add ce.cands op.Op.oid c;
              c
          in
          h.hcands <- c :: h.hcands;
          Some c
        end
    end
  end

(* The loop-entry guard for one hoisted access: validates rank, dtype,
   prefix indices and the whole [iv] value range once, then binds the
   raw data array and row base into the executing frame's caches.
   Returns false — fall back to the checked body for this loop entry —
   on any mismatch, including an unbound buffer register, whose located
   error the checked body raises only if the access actually runs. *)
let guard_of_cand (sent : Mem.buffer) (c : cand) :
    frame -> int -> int -> bool =
  let np = Array.length c.cprefix in
  fun fr ivlo ivlast ->
    let b = fr.bregs.(c.cbuf) in
    if b == sent then false
    else begin
      let dims = b.Mem.dims in
      if Array.length dims <> np + 1 then false
      else begin
        let off = ref 0 and ok = ref true in
        for i = 0 to np - 1 do
          let ix = c.cprefix.(i) fr in
          if ix < 0 || ix >= dims.(i) then ok := false
          else off := (!off * dims.(i)) + ix
        done;
        let dlast = dims.(np) in
        if (not !ok) || ivlo < 0 || ivlast >= dlast then false
        else begin
          let base = !off * dlast in
          match b.Mem.data, c.ckind with
          | Mem.Fdata a, KF when base + dlast <= Array.length a ->
            fr.fdat.(c.ccache) <- a;
            fr.abase.(c.ccache) <- base;
            true
          | Mem.Idata a, KI when base + dlast <= Array.length a ->
            fr.idat.(c.ccache) <- a;
            fr.abase.(c.ccache) <- base;
            true
          | _ -> false
        end
      end
    end

(* --- teams --- *)

let new_team size =
  { size
  ; barrier = Barrier.create size
  ; wmutex = Mutex.create ()
  ; wtbl = Hashtbl.create 16
  }

(* A nested [omp.parallel] runs its ranks sequentially on the current
   thread (the interpreter runs them as cooperative fibers — identical
   memory effects for race-free regions), so its barrier must be a
   no-op. *)
let nested_team size =
  { size
  ; barrier = Barrier.create 1
  ; wmutex = Mutex.create ()
  ; wtbl = Hashtbl.create 8
  }

let new_lc team rank = { team; rank; ws_seen = Hashtbl.create 8 }

(* Pad a register file to a multiple of 8 slots (one 64-byte cache line
   of 8-byte words) so the hot mutable slots of adjacent per-thread
   frames never share a line. *)
let pad n = if n = 0 then 0 else ((n + 7) / 8) * 8

let new_frame (cf : cfunc) (sent : Mem.buffer) lc glob : frame =
  Atomic.incr glob.frames;
  { iregs = Array.make cf.ni 0
  ; fregs = Array.make cf.nf 0.0
  ; bregs = Array.make cf.nb sent
  ; fdat = Array.make cf.nc [||]
  ; idat = Array.make cf.nc [||]
  ; abase = Array.make cf.nc 0
  ; lc
  ; glob
  }

(* --- compilation --- *)

let rec compile_region (ce : cenv) (ops : Op.op list) : code =
  let codes = Array.of_list (List.map (compile_op ce) ops) in
  match Array.length codes with
  | 0 -> fun _ -> ()
  | 1 -> codes.(0)
  | n ->
    fun fr ->
      for i = 0 to n - 1 do
        codes.(i) fr
      done

and compile_op (ce : cenv) (op : Op.op) : code =
  match op.Op.kind with
  | Op.Module | Op.Func _ ->
    fun _ -> Mem.fail "cannot execute module/func as a statement"
  | Op.Yield | Op.Dealloc -> fun _ -> ()
  | Op.Condition -> fun _ -> Mem.fail "scf.condition outside while handling"
  | Op.Constant c -> begin
    match c with
    | Op.Cint (n, _) ->
      let set = iset ce (Op.result op) in
      fun fr -> set fr n
    | Op.Cfloat (f, Types.F32) ->
      let v = f32 f in
      let set = fset ce (Op.result op) in
      fun fr -> set fr v
    | Op.Cfloat (f, _) ->
      let set = fset ce (Op.result op) in
      fun fr -> set fr f
  end
  | Op.Binop kind ->
    if is_float_value op.Op.operands.(0) then begin
      let a = fget ce op.Op.operands.(0) in
      let b = fget ce op.Op.operands.(1) in
      let f = fbinop kind in
      let set = fset ce (Op.result op) in
      fun fr -> set fr (f (a fr) (b fr))
    end
    else begin
      let a = iget ce op.Op.operands.(0) in
      let b = iget ce op.Op.operands.(1) in
      let f = ibinop kind in
      let set = iset ce (Op.result op) in
      fun fr -> set fr (f (a fr) (b fr))
    end
  | Op.Cmp pred ->
    let set = iset ce (Op.result op) in
    if is_float_value op.Op.operands.(0) then begin
      let a = fget ce op.Op.operands.(0) in
      let b = fget ce op.Op.operands.(1) in
      let p = fcmp pred in
      fun fr -> set fr (if p (a fr) (b fr) then 1 else 0)
    end
    else begin
      let a = iget ce op.Op.operands.(0) in
      let b = iget ce op.Op.operands.(1) in
      let p = icmp pred in
      fun fr -> set fr (if p (a fr) (b fr) then 1 else 0)
    end
  | Op.Select -> begin
    let c = iget ce op.Op.operands.(0) in
    match slot_of ce (Op.result op) with
    | SF k ->
      let a = fget ce op.Op.operands.(1) in
      let b = fget ce op.Op.operands.(2) in
      fun fr -> fr.fregs.(k) <- (if c fr <> 0 then a fr else b fr)
    | SI k ->
      let a = iget ce op.Op.operands.(1) in
      let b = iget ce op.Op.operands.(2) in
      fun fr -> fr.iregs.(k) <- (if c fr <> 0 then a fr else b fr)
    | SB k ->
      let a = bget ce op op.Op.operands.(1) in
      let b = bget ce op op.Op.operands.(2) in
      fun fr -> fr.bregs.(k) <- (if c fr <> 0 then a fr else b fr)
  end
  | Op.Cast d -> begin
    match d with
    | Types.F32 ->
      let g = fget ce op.Op.operands.(0) in
      let set = fset ce (Op.result op) in
      fun fr -> set fr (f32 (g fr))
    | Types.F64 ->
      let g = fget ce op.Op.operands.(0) in
      let set = fset ce (Op.result op) in
      fun fr -> set fr (g fr)
    | Types.I1 ->
      let g = tget ce op.Op.operands.(0) in
      let set = iset ce (Op.result op) in
      fun fr -> set fr (if g fr <> 0 then 1 else 0)
    | Types.I32 | Types.I64 | Types.Index ->
      let g = tget ce op.Op.operands.(0) in
      let set = iset ce (Op.result op) in
      fun fr -> set fr (g fr)
  end
  | Op.Math Op.Not ->
    let a = iget ce op.Op.operands.(0) in
    let set = iset ce (Op.result op) in
    fun fr -> set fr (if a fr = 0 then 1 else 0)
  | Op.Math Op.Pow ->
    let a = fget ce op.Op.operands.(0) in
    let b = fget ce op.Op.operands.(1) in
    let set = fset ce (Op.result op) in
    fun fr -> set fr (Float.pow (a fr) (b fr))
  | Op.Math fn ->
    let a = fget ce op.Op.operands.(0) in
    let f = fmath fn in
    let set = fset ce (Op.result op) in
    fun fr -> set fr (f (a fr))
  | Op.Alloc | Op.Alloca -> begin
    match (Op.result op).Value.typ with
    | Types.Memref { elem; shape; _ } ->
      let next_dyn = ref 0 in
      let dimfs =
        Array.of_list
          (List.map
             (fun d ->
               match d with
               | Some n -> fun (_ : frame) -> n
               | None ->
                 let k = !next_dyn in
                 incr next_dyn;
                 if k < Array.length op.Op.operands then
                   iget ce op.Op.operands.(k)
                 else fun _ -> Mem.fail "alloc: missing dynamic size")
             shape)
      in
      let set = bset ce (Op.result op) in
      fun fr ->
        set fr (Mem.alloc_buffer elem (Array.map (fun g -> g fr) dimfs))
    | Types.Scalar _ -> fun _ -> Mem.fail "alloc of non-memref"
  end
  | Op.Load -> compile_load ce op
  | Op.Store -> compile_store ce op
  | Op.Copy ->
    let s = bget ce op op.Op.operands.(0) in
    let d = bget ce op op.Op.operands.(1) in
    fun fr -> Mem.copy ~src:(s fr) ~dst:(d fr)
  | Op.Dim i ->
    let b = bget ce op op.Op.operands.(0) in
    let set = iset ce (Op.result op) in
    fun fr -> set fr (b fr).Mem.dims.(i)
  | Op.For -> begin
    let log = iget ce (Op.for_lo op) in
    let hig = iget ce (Op.for_hi op) in
    let stg = iget ce (Op.for_step op) in
    let iv =
      match slot_of ce (Op.for_iv op) with
      | SI k -> k
      | SF _ | SB _ -> raise (Unsupported "scf.for: non-integer iv")
    in
    match compile_hoisted ce ~iv op.Op.regions.(0) with
    | body, None ->
      fun fr ->
        let lo = log fr and hi = hig fr and step = stg fr in
        if step <= 0 then Mem.fail "scf.for: non-positive step %d" step;
        let i = ref lo in
        while !i < hi do
          fr.iregs.(iv) <- !i;
          body fr;
          i := !i + step
        done
    | checked, Some (all_pass, unchecked) ->
      fun fr ->
        let lo = log fr and hi = hig fr and step = stg fr in
        if step <= 0 then Mem.fail "scf.for: non-positive step %d" step;
        if lo < hi then begin
          let last = lo + (((hi - 1 - lo) / step) * step) in
          let body = if all_pass fr lo last then unchecked else checked in
          let i = ref lo in
          while !i < hi do
            fr.iregs.(iv) <- !i;
            body fr;
            i := !i + step
          done
        end
  end
  | Op.While ->
    let cond_ops, cond_val =
      match List.rev op.Op.regions.(0).Op.body with
      | ({ Op.kind = Op.Condition; _ } as c) :: rest ->
        (compile_region ce (List.rev rest), iget ce c.Op.operands.(0))
      | _ ->
        ( (fun (_ : frame) -> ())
        , fun (_ : frame) ->
            Mem.fail "while cond region missing scf.condition" )
    in
    let body = compile_region ce op.Op.regions.(1).Op.body in
    fun fr ->
      let g = fr.glob in
      let continue_ = ref true in
      while !continue_ do
        (* while loops are the one compiled construct with no static
           trip bound, so they carry the cancellation check (a plain
           atomic load — negligible against any real loop body) *)
        if Atomic.get g.cancel then raise (Timeout g.cfg.timeout_ms);
        cond_ops fr;
        if cond_val fr <> 0 then body fr else continue_ := false
      done
  | Op.If ->
    let c = iget ce op.Op.operands.(0) in
    let t = compile_region ce op.Op.regions.(0).Op.body in
    let e =
      if Array.length op.Op.regions > 1 then
        compile_region ce op.Op.regions.(1).Op.body
      else fun _ -> ()
    in
    fun fr -> if c fr <> 0 then t fr else e fr
  | Op.Barrier ->
    raise
      (Unsupported "polygeist.barrier requires the fiber interpreter")
  | Op.Parallel _ ->
    if Op.contains_barrier_region op.Op.regions.(0) then
      raise
        (Unsupported
           "scf.parallel with barriers requires the fiber interpreter")
    else compile_serial_parallel ce op
  | Op.OmpParallel -> compile_omp_parallel ce op
  | Op.OmpWsloop -> compile_wsloop ce op
  | Op.OmpBarrier ->
    fun fr ->
      (match fr.lc with
       | None -> () (* orphaned barrier: team of one *)
       | Some lc -> Barrier.wait lc.team.barrier)
  | Op.Return ->
    if Array.length op.Op.operands = 1 then begin
      let g = rv_get ce op op.Op.operands.(0) in
      fun fr -> raise (Ret (Some (g fr)))
    end
    else fun _ -> raise (Ret None)
  | Op.Call name -> compile_call ce op name

(* Compile a loop region twice when it contains hoistable accesses: the
   checked variant (always safe) and an unchecked variant whose hoisted
   accesses are raw array reads/writes, selected at loop entry by the
   conjunction of the candidates' guards.  Candidate discovery happens
   during the checked pass; [emit_ivs] makes the second pass emit the
   unsafe form for exactly the accesses hoisted out of THIS loop. *)
and compile_hoisted ce ~(iv : int) (r : Op.region) :
    code * ((frame -> int -> int -> bool) * code) option =
  let defs = Hashtbl.create 32 in
  Array.iter
    (fun a -> Hashtbl.replace defs (slot_key (slot_of ce a)) ())
    r.Op.rargs;
  defs_of_ops ce defs r.Op.body;
  let h = { hiv = iv; hdefs = defs; hcands = [] } in
  ce.hstack <- h :: ce.hstack;
  let checked = compile_region ce r.Op.body in
  ce.hstack <- List.tl ce.hstack;
  match h.hcands with
  | [] -> (checked, None)
  | cands ->
    let cands =
      List.sort_uniq (fun a b -> compare a.ccache b.ccache) cands
    in
    let h2 = { hiv = iv; hdefs = defs; hcands = [] } in
    ce.hstack <- h2 :: ce.hstack;
    ce.emit_ivs <- iv :: ce.emit_ivs;
    let unchecked = compile_region ce r.Op.body in
    ce.emit_ivs <- List.tl ce.emit_ivs;
    ce.hstack <- List.tl ce.hstack;
    let guards =
      Array.of_list (List.map (guard_of_cand ce.cm.sentinel) cands)
    in
    let ng = Array.length guards in
    let all_pass fr ivlo ivlast =
      let ok = ref true and i = ref 0 in
      while !ok && !i < ng do
        if not (guards.(!i) fr ivlo ivlast) then ok := false;
        incr i
      done;
      !ok
    in
    (checked, Some (all_pass, unchecked))

and compile_load ce op : code =
  let bufv = op.Op.operands.(0) in
  let n = Array.length op.Op.operands - 1 in
  let idxv = Array.init n (fun i -> op.Op.operands.(i + 1)) in
  let res = slot_of ce (Op.result op) in
  let cand =
    match res with
    | SF _ -> hoist_candidate ce op ~bufv ~idxv ~kind:KF
    | SI _ -> hoist_candidate ce op ~bufv ~idxv ~kind:KI
    | SB _ -> None
  in
  match cand, res with
  | Some c, SF k when List.mem c.civ ce.emit_ivs ->
    let cc = c.ccache in
    fun fr ->
      fr.fregs.(k) <-
        Array.unsafe_get fr.fdat.(cc) (fr.abase.(cc) + fr.iregs.(c.civ))
  | Some c, SI k when List.mem c.civ ce.emit_ivs ->
    let cc = c.ccache in
    fun fr ->
      fr.iregs.(k) <-
        Array.unsafe_get fr.idat.(cc) (fr.abase.(cc) + fr.iregs.(c.civ))
  | _, res -> begin
    let bg = bget ce op bufv in
    let idxg = Array.map (iget ce) idxv in
    match n, res with
    | 1, SF k ->
      let i0 = idxg.(0) in
      fun fr ->
        let b = bg fr in
        let i = i0 fr in
        if Array.length b.Mem.dims = 1 then begin
          if i < 0 || i >= b.Mem.dims.(0) then oob b i 0;
          match b.Mem.data with
          | Mem.Fdata a -> fr.fregs.(k) <- a.(i)
          | Mem.Idata a -> fr.fregs.(k) <- float_of_int a.(i)
        end
        else fr.fregs.(k) <- Mem.get_f b (Mem.lindex b [| i |])
    | 1, SI k ->
      let i0 = idxg.(0) in
      fun fr ->
        let b = bg fr in
        let i = i0 fr in
        if Array.length b.Mem.dims = 1 then begin
          if i < 0 || i >= b.Mem.dims.(0) then oob b i 0;
          match b.Mem.data with
          | Mem.Idata a -> fr.iregs.(k) <- a.(i)
          | Mem.Fdata a -> fr.iregs.(k) <- int_of_float a.(i)
        end
        else fr.iregs.(k) <- Mem.get_i b (Mem.lindex b [| i |])
    | 2, SF k ->
      let i0 = idxg.(0) and i1 = idxg.(1) in
      fun fr ->
        let b = bg fr in
        let i = i0 fr and j = i1 fr in
        if Array.length b.Mem.dims = 2 then begin
          let d1 = b.Mem.dims.(1) in
          if i < 0 || i >= b.Mem.dims.(0) then oob b i 0;
          if j < 0 || j >= d1 then oob b j 1;
          match b.Mem.data with
          | Mem.Fdata a -> fr.fregs.(k) <- a.((i * d1) + j)
          | Mem.Idata a -> fr.fregs.(k) <- float_of_int a.((i * d1) + j)
        end
        else fr.fregs.(k) <- Mem.get_f b (Mem.lindex b [| i; j |])
    | 2, SI k ->
      let i0 = idxg.(0) and i1 = idxg.(1) in
      fun fr ->
        let b = bg fr in
        let i = i0 fr and j = i1 fr in
        if Array.length b.Mem.dims = 2 then begin
          let d1 = b.Mem.dims.(1) in
          if i < 0 || i >= b.Mem.dims.(0) then oob b i 0;
          if j < 0 || j >= d1 then oob b j 1;
          match b.Mem.data with
          | Mem.Idata a -> fr.iregs.(k) <- a.((i * d1) + j)
          | Mem.Fdata a -> fr.iregs.(k) <- int_of_float a.((i * d1) + j)
        end
        else fr.iregs.(k) <- Mem.get_i b (Mem.lindex b [| i; j |])
    | _, SF k ->
      fun fr ->
        let b = bg fr in
        fr.fregs.(k) <-
          Mem.get_f b (Mem.lindex b (Array.map (fun g -> g fr) idxg))
    | _, SI k ->
      fun fr ->
        let b = bg fr in
        fr.iregs.(k) <-
          Mem.get_i b (Mem.lindex b (Array.map (fun g -> g fr) idxg))
    | _, SB _ -> fun _ -> Mem.fail "load of buffer value"
  end

and compile_store ce op : code =
  let vs = slot_of ce op.Op.operands.(0) in
  let bufv = op.Op.operands.(1) in
  let n = Array.length op.Op.operands - 2 in
  let idxv = Array.init n (fun i -> op.Op.operands.(i + 2)) in
  let cand =
    match vs with
    | SF _ -> hoist_candidate ce op ~bufv ~idxv ~kind:KF
    | SI _ -> hoist_candidate ce op ~bufv ~idxv ~kind:KI
    | SB _ -> None
  in
  match cand, vs with
  | Some c, SF k when List.mem c.civ ce.emit_ivs ->
    let cc = c.ccache in
    fun fr ->
      Array.unsafe_set fr.fdat.(cc)
        (fr.abase.(cc) + fr.iregs.(c.civ))
        fr.fregs.(k)
  | Some c, SI k when List.mem c.civ ce.emit_ivs ->
    let cc = c.ccache in
    fun fr ->
      Array.unsafe_set fr.idat.(cc)
        (fr.abase.(cc) + fr.iregs.(c.civ))
        fr.iregs.(k)
  | _, vs -> begin
    let bg = bget ce op bufv in
    let idxg = Array.map (iget ce) idxv in
    match n, vs with
    | 1, SF k ->
      let i0 = idxg.(0) in
      fun fr ->
        let b = bg fr in
        let i = i0 fr in
        if Array.length b.Mem.dims = 1 then begin
          if i < 0 || i >= b.Mem.dims.(0) then oob b i 0;
          match b.Mem.data with
          | Mem.Fdata a -> a.(i) <- fr.fregs.(k)
          | Mem.Idata a -> a.(i) <- int_of_float fr.fregs.(k)
        end
        else Mem.set_f b (Mem.lindex b [| i |]) fr.fregs.(k)
    | 1, SI k ->
      let i0 = idxg.(0) in
      fun fr ->
        let b = bg fr in
        let i = i0 fr in
        if Array.length b.Mem.dims = 1 then begin
          if i < 0 || i >= b.Mem.dims.(0) then oob b i 0;
          match b.Mem.data with
          | Mem.Idata a -> a.(i) <- fr.iregs.(k)
          | Mem.Fdata a -> a.(i) <- float_of_int fr.iregs.(k)
        end
        else Mem.set_i b (Mem.lindex b [| i |]) fr.iregs.(k)
    | 2, SF k ->
      let i0 = idxg.(0) and i1 = idxg.(1) in
      fun fr ->
        let b = bg fr in
        let i = i0 fr and j = i1 fr in
        if Array.length b.Mem.dims = 2 then begin
          let d1 = b.Mem.dims.(1) in
          if i < 0 || i >= b.Mem.dims.(0) then oob b i 0;
          if j < 0 || j >= d1 then oob b j 1;
          match b.Mem.data with
          | Mem.Fdata a -> a.((i * d1) + j) <- fr.fregs.(k)
          | Mem.Idata a -> a.((i * d1) + j) <- int_of_float fr.fregs.(k)
        end
        else Mem.set_f b (Mem.lindex b [| i; j |]) fr.fregs.(k)
    | 2, SI k ->
      let i0 = idxg.(0) and i1 = idxg.(1) in
      fun fr ->
        let b = bg fr in
        let i = i0 fr and j = i1 fr in
        if Array.length b.Mem.dims = 2 then begin
          let d1 = b.Mem.dims.(1) in
          if i < 0 || i >= b.Mem.dims.(0) then oob b i 0;
          if j < 0 || j >= d1 then oob b j 1;
          match b.Mem.data with
          | Mem.Idata a -> a.((i * d1) + j) <- fr.iregs.(k)
          | Mem.Fdata a -> a.((i * d1) + j) <- float_of_int fr.iregs.(k)
        end
        else Mem.set_i b (Mem.lindex b [| i; j |]) fr.iregs.(k)
    | _, SF k ->
      fun fr ->
        let b = bg fr in
        Mem.set_f b
          (Mem.lindex b (Array.map (fun g -> g fr) idxg))
          fr.fregs.(k)
    | _, SI k ->
      fun fr ->
        let b = bg fr in
        Mem.set_i b
          (Mem.lindex b (Array.map (fun g -> g fr) idxg))
          fr.iregs.(k)
    | _, SB _ -> fun _ -> Mem.fail "cannot store a buffer into a buffer"
  end

(* [scf.parallel] without barriers: iterations in the interpreter's
   enumeration order (dim 0 fastest).  GPU threads are not an OpenMP
   team, so no worksharing chunking applies — every nested wsloop sees
   the launch context of the enclosing omp construct, as in the
   interpreter. *)
and compile_serial_parallel ce op : code =
  let nd = Op.par_dims op in
  let log = Array.init nd (fun i -> iget ce (Op.par_lo op i)) in
  let hig = Array.init nd (fun i -> iget ce (Op.par_hi op i)) in
  let stg = Array.init nd (fun i -> iget ce (Op.par_step op i)) in
  let ivslots =
    Array.map
      (fun v ->
        match slot_of ce v with
        | SI k -> k
        | SF _ | SB _ -> raise (Unsupported "parallel: non-integer iv"))
      op.Op.regions.(0).Op.rargs
  in
  let body = compile_region ce op.Op.regions.(0).Op.body in
  fun fr ->
    let lo = Array.map (fun g -> g fr) log in
    let hi = Array.map (fun g -> g fr) hig in
    let step = Array.map (fun g -> g fr) stg in
    Array.iteri
      (fun d s -> if s <= 0 then Mem.fail "parallel: non-positive step %d" d)
      step;
    let rec go d =
      if d < 0 then body fr
      else begin
        let v = ref lo.(d) in
        while !v < hi.(d) do
          fr.iregs.(ivslots.(d)) <- !v;
          go (d - 1);
          v := !v + step.(d)
        done
      end
    in
    go (nd - 1)

(* A top-level team launch.  The frames (and the barrier) live in the
   compiled function's persistent [tstate]; a launch validates it (same
   size, not poisoned, large enough register files), blits the master's
   registers into the team frames, and posts a per-op cached job
   closure to the pool — in the steady state nothing is allocated.
   Hoisting must not cross this boundary: the guards would bind caches
   in the master frame while the body runs on team frames, so the body
   is compiled with an empty hoist stack. *)
and compile_omp_parallel ce op : code =
  let saved_hstack = ce.hstack in
  ce.hstack <- [];
  let body = compile_region ce op.Op.regions.(0).Op.body in
  ce.hstack <- saved_hstack;
  let sent = ce.cm.sentinel in
  let jobcache : (tstate * (int -> unit)) option ref = ref None in
  fun fr ->
    let g = fr.glob in
    let size = g.cfg.domains in
    match fr.lc with
    | Some _ ->
      (* Nested team: ranks run sequentially on this thread, sharing its
         register files (sound for SSA: each rank's defs precede its
         uses).  The interpreter runs them as fibers — same memory
         effects for race-free regions. *)
      let team = nested_team size in
      for rank = 0 to size - 1 do
        body { fr with lc = Some (new_lc team rank) }
      done
    | None ->
      g.stats.launches <- g.stats.launches + 1;
      let ni = Array.length fr.iregs
      and nf = Array.length fr.fregs
      and nb = Array.length fr.bregs
      and nc = Array.length fr.abase in
      let ts =
        match g.ts with
        | Some t
          when g.cfg.team_reuse && t.tsize = size
               && (not (Barrier.is_poisoned t.tteam.barrier))
               && Array.length t.tframes.(0).iregs >= ni
               && Array.length t.tframes.(0).fregs >= nf
               && Array.length t.tframes.(0).bregs >= nb
               && Array.length t.tframes.(0).abase >= nc -> t
        | _ ->
          let team = new_team size in
          let frames =
            Array.init size (fun rank ->
                { iregs = Array.make (pad ni) 0
                ; fregs = Array.make (pad nf) 0.0
                ; bregs = Array.make (pad nb) sent
                ; fdat = Array.make (pad nc) [||]
                ; idat = Array.make (pad nc) [||]
                ; abase = Array.make (pad nc) 0
                ; lc = Some (new_lc team rank)
                ; glob = g
                })
          in
          ignore (Atomic.fetch_and_add g.frames size);
          let t = { tsize = size; tteam = team; tframes = frames; tphases = 0 } in
          if g.cfg.team_reuse then g.ts <- Some t;
          t
      in
      let job =
        match !jobcache with
        | Some (t, j) when t == ts -> j
        | _ ->
          let j rank =
            try
              (match g.cfg.inject with
               | Inject_raise when rank = size - 1 -> raise Injected
               | Inject_hang when rank = size - 1 ->
                 (* the fault-injected non-terminating loop: models a
                    mis-lowered kernel spinning forever while the rest
                    of the team piles up at the next barrier; only the
                    watchdog's cancel ends it *)
                 let n = ref 0 in
                 while not (Atomic.get g.cancel) do
                   incr n;
                   if !n land 4095 = 0 then Unix.sleepf 0.0005
                   else Domain.cpu_relax ()
                 done;
                 raise (Timeout g.cfg.timeout_ms)
               | _ -> ());
              body ts.tframes.(rank)
            with
            | Barrier.Poisoned ->
              (* another team member died and poisoned the barrier;
                 its exception carries the cause *)
              ()
            | e ->
              Barrier.poison ts.tteam.barrier;
              raise e
          in
          jobcache := Some (ts, j);
          j
      in
      (* per-thread memory views: scalar registers are blitted (so SSA
         values defined before the region are private, and alloca
         inside the region stays private), buffers are shared by
         reference *)
      for r = 0 to size - 1 do
        let t = ts.tframes.(r) in
        Array.blit fr.iregs 0 t.iregs 0 ni;
        Array.blit fr.fregs 0 t.fregs 0 nf;
        Array.blit fr.bregs 0 t.bregs 0 nb
      done;
      let finish () =
        Atomic.set g.live None;
        let ph = Barrier.phases ts.tteam.barrier in
        g.stats.barrier_phases <- g.stats.barrier_phases + (ph - ts.tphases);
        ts.tphases <- ph
      in
      Atomic.set g.live (Some ts.tteam);
      (match
         if size = 1 then job 0
         else begin
           let pool = Pool.get ~domains:size ~reuse:g.cfg.team_reuse in
           Fun.protect
             ~finally:(fun () -> Pool.release pool)
             (fun () -> Pool.run pool job)
         end
       with
       | () ->
         finish ();
         (* a watchdog-poisoned team unwinds with every rank swallowing
            [Barrier.Poisoned], so the launch "succeeds" with partial
            results; surface the cancellation here *)
         if Atomic.get g.cancel then begin
           g.ts <- None;
           raise (Timeout g.cfg.timeout_ms)
         end
       | exception e ->
         finish ();
         g.ts <- None;
         raise e)

and compile_wsloop ce op : code =
  let nd = Op.par_dims op in
  let log = Array.init nd (fun i -> iget ce (Op.par_lo op i)) in
  let hig = Array.init nd (fun i -> iget ce (Op.par_hi op i)) in
  let stg = Array.init nd (fun i -> iget ce (Op.par_step op i)) in
  let ivslots =
    Array.map
      (fun v ->
        match slot_of ce v with
        | SI k -> k
        | SF _ | SB _ -> raise (Unsupported "wsloop: non-integer iv"))
      op.Op.regions.(0).Op.rargs
  in
  (* hoisting applies to the (ubiquitous after coalescing) 1-d case,
     where the linear position maps affinely to the single iv *)
  let body, hoisted =
    if nd = 1 then compile_hoisted ce ~iv:ivslots.(0) op.Op.regions.(0)
    else (compile_region ce op.Op.regions.(0).Op.body, None)
  in
  let oid = op.Op.oid in
  fun fr ->
    let lo = Array.map (fun g -> g fr) log in
    let hi = Array.map (fun g -> g fr) hig in
    let step = Array.map (fun g -> g fr) stg in
    Array.iteri
      (fun d s -> if s <= 0 then Mem.fail "parallel: non-positive step %d" d)
      step;
    let counts =
      Array.init nd (fun d ->
          if hi.(d) <= lo.(d) then 0
          else (hi.(d) - lo.(d) + step.(d) - 1) / step.(d))
    in
    let n = Array.fold_left ( * ) 1 counts in
    (* run the linearized range [a, b); linear order matches the
       interpreter's enumeration (dim 0 fastest) *)
    let run_range =
      if nd = 1 then begin
        let l0 = lo.(0) and s0 = step.(0) and iv0 = ivslots.(0) in
        match hoisted with
        | None ->
          fun a b ->
            for p = a to b - 1 do
              fr.iregs.(iv0) <- l0 + (p * s0);
              body fr
            done
        | Some (all_pass, unchecked) ->
          fun a b ->
            if a < b then begin
              let bdy =
                if all_pass fr (l0 + (a * s0)) (l0 + ((b - 1) * s0)) then
                  unchecked
                else body
              in
              for p = a to b - 1 do
                fr.iregs.(iv0) <- l0 + (p * s0);
                bdy fr
              done
            end
      end
      else
        fun a b ->
          for p = a to b - 1 do
            let rem = ref p in
            for d = 0 to nd - 1 do
              fr.iregs.(ivslots.(d)) <- lo.(d) + (!rem mod counts.(d) * step.(d));
              rem := !rem / counts.(d)
            done;
            body fr
          done
    in
    match fr.lc with
    | None ->
      (* orphaned wsloop: team of one *)
      run_range 0 n;
      Atomic.incr fr.glob.chunks
    | Some lc ->
      let size = lc.team.size in
      if size = 1 then begin
        run_range 0 n;
        Atomic.incr fr.glob.chunks
      end
      else begin
        match fr.glob.cfg.schedule with
        | Schedule.Static ->
          let l, h = Schedule.static_chunk ~rank:lc.rank ~size ~n in
          run_range l h;
          Atomic.incr fr.glob.chunks
        | (Schedule.Dynamic | Schedule.Guided) as p ->
          (* Wsloops have no implicit trailing barrier, so team members
             may concurrently be in different encounters (generations)
             of this loop; the shared grab state is keyed by the
             per-thread encounter count and torn down by the last
             finisher. *)
          let gen =
            match Hashtbl.find_opt lc.ws_seen oid with
            | Some g -> g
            | None -> 0
          in
          Hashtbl.replace lc.ws_seen oid (gen + 1);
          let tm = lc.team in
          Mutex.lock tm.wmutex;
          let ws =
            match Hashtbl.find_opt tm.wtbl (oid, gen) with
            | Some ws -> ws
            | None ->
              let ws = { grab = Schedule.make_shared (); finishers = 0 } in
              Hashtbl.add tm.wtbl (oid, gen) ws;
              ws
          in
          Mutex.unlock tm.wmutex;
          let chunk = fr.glob.cfg.chunk in
          let grabbed = ref 0 in
          let rec grab_loop () =
            if Atomic.get fr.glob.cancel then
              raise (Timeout fr.glob.cfg.timeout_ms);
            match Schedule.next ?chunk ws.grab p ~size ~n with
            | Some (l, h) ->
              incr grabbed;
              run_range l h;
              grab_loop ()
            | None -> ()
          in
          grab_loop ();
          if !grabbed > 0 then
            ignore (Atomic.fetch_and_add fr.glob.chunks !grabbed);
          Mutex.lock tm.wmutex;
          ws.finishers <- ws.finishers + 1;
          if ws.finishers = size then Hashtbl.remove tm.wtbl (oid, gen);
          Mutex.unlock tm.wmutex
      end

and compile_call ce op name : code =
  match get_cfunc ce.cm name with
  | None -> fun _ -> Mem.fail "call to unknown function @%s" name
  | Some cf ->
    let sent = ce.cm.sentinel in
    let argg = Array.map (rv_get ce op) op.Op.operands in
    let has_res = Array.length op.Op.results = 1 in
    let res_slot = if has_res then Some (slot_of ce (Op.result op)) else None in
    fun fr ->
      if Array.length cf.params <> Array.length argg then
        Mem.fail "@%s: arity mismatch" name;
      let cfr = new_frame cf sent fr.lc fr.glob in
      Array.iteri (fun i g -> bind_slot cfr cf.params.(i) (g fr)) argg;
      let r = match cf.body cfr with () -> None | exception Ret v -> v in
      match res_slot, r with
      | Some s, Some v -> bind_slot fr s v
      | Some _, None -> Mem.fail "function @%s returned no value" name
      | None, _ -> ()

and get_cfunc (cm : cmod) (name : string) : cfunc option =
  match Hashtbl.find_opt cm.cfuncs name with
  | Some cf -> Some cf
  | None -> begin
    match Op.find_func cm.modul name with
    | None -> None
    | Some f ->
      (* insert a placeholder first so recursive calls resolve *)
      let cf =
        { ni = 0
        ; nf = 0
        ; nb = 0
        ; nc = 0
        ; params = [||]
        ; body = (fun _ -> Mem.fail "@%s: incomplete compilation" name)
        }
      in
      Hashtbl.add cm.cfuncs name cf;
      let ce =
        { cm
        ; slots = Hashtbl.create 64
        ; ni = 0
        ; nf = 0
        ; nb = 0
        ; nc = 0
        ; hstack = []
        ; emit_ivs = []
        ; cands = Hashtbl.create 16
        }
      in
      cf.params <- Array.map (slot_of ce) f.Op.regions.(0).Op.rargs;
      let body = compile_region ce f.Op.regions.(0).Op.body in
      cf.ni <- ce.ni;
      cf.nf <- ce.nf;
      cf.nb <- ce.nb;
      cf.nc <- ce.nc;
      cf.body <- body;
      Some cf
  end

(* --- public API --- *)

type compiled =
  { entry : cfunc
  ; sentinel : Mem.buffer
  ; glob : glob
  ; mutable eframe : frame option (* persistent entry frame *)
  }

let compile (modul : Op.op) (name : string) : compiled =
  let cm =
    { modul
    ; cfuncs = Hashtbl.create 8
    ; sentinel = Mem.alloc_buffer Types.Index [| 0 |]
    }
  in
  match get_cfunc cm name with
  | None -> Mem.fail "no function @%s in module" name
  | Some entry ->
    { entry
    ; sentinel = cm.sentinel
    ; glob =
        { cfg =
            { domains = 4
            ; schedule = Schedule.Static
            ; chunk = None
            ; team_reuse = true
            ; inject = Inject_none
            ; timeout_ms = 0
            }
        ; stats =
            { launches = 0
            ; barrier_phases = 0
            ; domain_spawns = 0
            ; chunks_grabbed = 0
            ; frames_allocated = 0
            }
        ; chunks = Atomic.make 0
        ; frames = Atomic.make 0
        ; cancel = Atomic.make false
        ; live = Atomic.make None
        ; ts = None
        }
    ; eframe = None
    }

let run ?(domains = 4) ?(schedule = Schedule.Static) ?chunk
    ?(team_reuse = true) ?(inject_fault = false) ?(inject_hang = false)
    ?(timeout_ms = 0) (c : compiled) (args : Mem.rv list) :
  Mem.rv option * stats =
  if domains < 1 then invalid_arg "Exec.run: domains must be >= 1";
  (match chunk with
   | Some k when k < 1 -> invalid_arg "Exec.run: chunk must be >= 1"
   | _ -> ());
  if timeout_ms < 0 then invalid_arg "Exec.run: timeout_ms must be >= 0";
  let g = c.glob in
  g.cfg.domains <- domains;
  g.cfg.schedule <- schedule;
  g.cfg.chunk <- chunk;
  g.cfg.team_reuse <- team_reuse;
  g.cfg.inject <-
    (if inject_hang then Inject_hang
     else if inject_fault then Inject_raise
     else Inject_none);
  g.cfg.timeout_ms <- timeout_ms;
  g.stats.launches <- 0;
  g.stats.barrier_phases <- 0;
  Atomic.set g.chunks 0;
  Atomic.set g.frames 0;
  Atomic.set g.cancel false;
  Atomic.set g.live None;
  let spawns0 = Pool.total_spawns () in
  let cf = c.entry in
  let args = Array.of_list args in
  if Array.length cf.params <> Array.length args then
    Mem.fail "entry: arity mismatch (%d args for %d params)"
      (Array.length args) (Array.length cf.params);
  (* the entry frame persists across runs: a repeated launch of the
     same compiled kernel allocates no frame at all *)
  let fr =
    match c.eframe with
    | Some fr -> fr
    | None ->
      let fr = new_frame cf c.sentinel None g in
      c.eframe <- Some fr;
      fr
  in
  Array.iteri (fun i s -> bind_slot fr s args.(i)) cf.params;
  (* the watchdog bounds the whole run's wall clock: on expiry it flips
     the cancel flag (observed at while back-edges and wsloop grabs)
     and poisons the live team's barrier (waking ranks sleeping there),
     so the run unwinds with [Timeout] instead of hanging *)
  let tok =
    if timeout_ms > 0 then
      Some
        (Watchdog.arm ~timeout_ms ~on_timeout:(fun () ->
             Atomic.set g.cancel true;
             match Atomic.get g.live with
             | Some team -> Barrier.poison team.barrier
             | None -> ()))
    else None
  in
  let result =
    Fun.protect
      ~finally:(fun () -> Option.iter Watchdog.disarm tok)
      (fun () -> match cf.body fr with () -> None | exception Ret v -> v)
  in
  g.stats.domain_spawns <- Pool.total_spawns () - spawns0;
  g.stats.chunks_grabbed <- Atomic.get g.chunks;
  g.stats.frames_allocated <- Atomic.get g.frames;
  ( result
  , { launches = g.stats.launches
    ; barrier_phases = g.stats.barrier_phases
    ; domain_spawns = g.stats.domain_spawns
    ; chunks_grabbed = g.stats.chunks_grabbed
    ; frames_allocated = g.stats.frames_allocated
    } )

let run_module ?domains ?schedule ?chunk ?team_reuse ?inject_fault
    ?inject_hang ?timeout_ms modul name args =
  run ?domains ?schedule ?chunk ?team_reuse ?inject_fault ?inject_hang
    ?timeout_ms
    (compile modul name) args
