(* Compile-to-closures multicore engine for the lowered OpenMP dialect.

   Compilation assigns every SSA value of a function a dense slot in one
   of three typed register files — ints, floats, buffers — chosen by the
   value's static type, and turns each op into an OCaml closure over a
   [frame] holding those files.  Compared to the tree-walking
   interpreter this removes the per-op hashtable lookups, the [Mem.rv]
   boxing of every intermediate (floats live unboxed in a [float
   array]), and the per-iteration environment allocations; loops become
   plain [while] loops over precompiled bodies.

   Scalar semantics mirror {!Interp.Eval} exactly: all float arithmetic
   in double precision with f32 rounding only at f32 constants and
   casts-to-f32, integer division/modulo by zero failing, [scf.for]
   bounds evaluated once.  [scf.parallel] regions are executed as
   serial nested loops in the interpreter's iteration order; if they
   still contain GPU barriers, the function is rejected at compile time
   ({!Unsupported}) so the driver can degrade to the fiber interpreter.

   Team execution ([omp.parallel]) launches one frame per thread on a
   {!Pool}: the register files are shallow-copied, making SSA scalars
   per-thread while buffers stay shared by reference — the per-thread
   memory view.  [omp.wsloop] linearizes its iteration space and
   partitions it per {!Schedule}; because wsloops carry no implicit
   trailing barrier, team members may enter the same dynamic loop
   different numbers of times concurrently, so the shared grab state is
   keyed by (loop oid, per-thread encounter count) — the "generation" —
   and discarded by the last finisher. *)

open Ir
open Interp

exception Unsupported of string
exception Injected

type stats =
  { mutable launches : int
  ; mutable barrier_phases : int
  ; mutable domain_spawns : int
  }

(* Mutated by [run] before execution starts; read from inside compiled
   closures via the frame. *)
type config =
  { mutable domains : int
  ; mutable schedule : Schedule.policy
  ; mutable team_reuse : bool
  ; mutable inject : bool
  }

(* One dynamic/guided worksharing region instance (one generation of one
   wsloop).  [finishers] counts team members that exhausted it; the last
   one removes the entry from the team table. *)
type wshare =
  { grab : Schedule.shared
  ; mutable finishers : int
  }

type team =
  { size : int
  ; barrier : Barrier.t
  ; wmutex : Mutex.t
  ; wtbl : (int * int, wshare) Hashtbl.t (* (wsloop oid, generation) *)
  }

(* Per-thread launch context: which team, which rank, and how many times
   this thread has entered each wsloop (the generation counter). *)
type launch_ctx =
  { team : team
  ; rank : int
  ; ws_seen : (int, int) Hashtbl.t
  }

type glob =
  { cfg : config
  ; stats : stats
  }

type frame =
  { iregs : int array
  ; fregs : float array
  ; bregs : Mem.buffer array
  ; lc : launch_ctx option
  ; glob : glob
  }

type code = frame -> unit

exception Ret of Mem.rv option

type slot =
  | SI of int
  | SF of int
  | SB of int

type cfunc =
  { mutable ni : int
  ; mutable nf : int
  ; mutable nb : int
  ; mutable params : slot array
  ; mutable body : code
  }

type cmod =
  { modul : Op.op
  ; cfuncs : (string, cfunc) Hashtbl.t
  }

type cenv =
  { cm : cmod
  ; slots : (int, slot) Hashtbl.t (* Value.id -> slot *)
  ; mutable ni : int
  ; mutable nf : int
  ; mutable nb : int
  }

(* --- slot assignment and typed accessors --- *)

let slot_of (ce : cenv) (v : Value.t) : slot =
  match Hashtbl.find_opt ce.slots v.Value.id with
  | Some s -> s
  | None ->
    let s =
      match v.Value.typ with
      | Types.Scalar d when Types.is_float_dtype d ->
        let k = ce.nf in
        ce.nf <- k + 1;
        SF k
      | Types.Scalar _ ->
        let k = ce.ni in
        ce.ni <- k + 1;
        SI k
      | Types.Memref _ ->
        let k = ce.nb in
        ce.nb <- k + 1;
        SB k
    in
    Hashtbl.add ce.slots v.Value.id s;
    s

let iget ce v : frame -> int =
  match slot_of ce v with
  | SI k -> fun fr -> fr.iregs.(k)
  | SF _ -> fun _ -> Mem.fail "expected integer value, got float"
  | SB _ -> fun _ -> Mem.fail "expected integer value, got buffer"

let fget ce v : frame -> float =
  match slot_of ce v with
  | SF k -> fun fr -> fr.fregs.(k)
  | SI k -> fun fr -> float_of_int fr.iregs.(k)
  | SB _ -> fun _ -> Mem.fail "expected float value, got buffer"

(* Truncating integer view, mirroring [Mem.as_int_or_trunc] (casts). *)
let tget ce v : frame -> int =
  match slot_of ce v with
  | SI k -> fun fr -> fr.iregs.(k)
  | SF k -> fun fr -> int_of_float fr.fregs.(k)
  | SB _ -> fun _ -> Mem.fail "expected scalar value, got buffer"

let bget ce v : frame -> Mem.buffer =
  match slot_of ce v with
  | SB k -> fun fr -> fr.bregs.(k)
  | SI _ | SF _ -> fun _ -> Mem.fail "expected buffer value"

let iset ce v : frame -> int -> unit =
  match slot_of ce v with
  | SI k -> fun fr x -> fr.iregs.(k) <- x
  | SF _ | SB _ -> fun _ _ -> Mem.fail "type mismatch: integer result"

let fset ce v : frame -> float -> unit =
  match slot_of ce v with
  | SF k -> fun fr x -> fr.fregs.(k) <- x
  | SI _ | SB _ -> fun _ _ -> Mem.fail "type mismatch: float result"

let bset ce v : frame -> Mem.buffer -> unit =
  match slot_of ce v with
  | SB k -> fun fr b -> fr.bregs.(k) <- b
  | SI _ | SF _ -> fun _ _ -> Mem.fail "type mismatch: buffer result"

let rv_get ce v : frame -> Mem.rv =
  match slot_of ce v with
  | SI k -> fun fr -> Mem.Int fr.iregs.(k)
  | SF k -> fun fr -> Mem.Flt fr.fregs.(k)
  | SB k -> fun fr -> Mem.Buf fr.bregs.(k)

(* Read-side conversions, like the interpreter's [as_*] on lookup. *)
let bind_slot (fr : frame) (s : slot) (v : Mem.rv) : unit =
  match s with
  | SI k -> fr.iregs.(k) <- Mem.as_int v
  | SF k -> fr.fregs.(k) <- Mem.as_float v
  | SB k -> fr.bregs.(k) <- Mem.as_buf v

let is_float_value (v : Value.t) =
  match v.Value.typ with
  | Types.Scalar d -> Types.is_float_dtype d
  | Types.Memref _ -> false

let f32 x = Int32.float_of_bits (Int32.bits_of_float x)

(* --- scalar op semantics (identical formulas to Interp.Eval) --- *)

let fbinop : Op.binop -> float -> float -> float = function
  | Op.Add -> ( +. )
  | Op.Sub -> ( -. )
  | Op.Mul -> ( *. )
  | Op.Div -> ( /. )
  | Op.Rem -> Float.rem
  | Op.Min -> Float.min
  | Op.Max -> Float.max
  | Op.And | Op.Or | Op.Xor | Op.Shl | Op.Shr ->
    fun _ _ -> Mem.fail "bitwise op on float"

let ibinop : Op.binop -> int -> int -> int = function
  | Op.Add -> ( + )
  | Op.Sub -> ( - )
  | Op.Mul -> ( * )
  | Op.Div ->
    fun x y -> if y = 0 then Mem.fail "integer division by zero" else x / y
  | Op.Rem ->
    fun x y -> if y = 0 then Mem.fail "integer modulo by zero" else x mod y
  | Op.Min -> min
  | Op.Max -> max
  | Op.And -> ( land )
  | Op.Or -> ( lor )
  | Op.Xor -> ( lxor )
  | Op.Shl -> ( lsl )
  | Op.Shr -> ( asr )

let fcmp : Op.cmp_pred -> float -> float -> bool = function
  | Op.Eq -> fun x y -> x = y
  | Op.Ne -> fun x y -> x <> y
  | Op.Lt -> fun x y -> x < y
  | Op.Le -> fun x y -> x <= y
  | Op.Gt -> fun x y -> x > y
  | Op.Ge -> fun x y -> x >= y

let icmp : Op.cmp_pred -> int -> int -> bool = function
  | Op.Eq -> fun x y -> x = y
  | Op.Ne -> fun x y -> x <> y
  | Op.Lt -> fun x y -> x < y
  | Op.Le -> fun x y -> x <= y
  | Op.Gt -> fun x y -> x > y
  | Op.Ge -> fun x y -> x >= y

(* Same Abramowitz–Stegun expression as the interpreter, same
   association, so results are bit-identical. *)
let erf_as x =
  let s = if x < 0.0 then -1.0 else 1.0 in
  let x = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
  let y =
    1.0
    -. ((((((1.061405429 *. t) -. 1.453152027) *. t) +. 1.421413741) *. t
         -. 0.284496736)
        *. t
        +. 0.254829592)
       *. t
       *. exp (-.x *. x)
  in
  s *. y

let fmath : Op.math_fn -> float -> float = function
  | Op.Sqrt -> sqrt
  | Op.Exp -> exp
  | Op.Log -> log
  | Op.Log2 -> fun x -> log x /. log 2.0
  | Op.Fabs -> Float.abs
  | Op.Floor -> Float.floor
  | Op.Neg -> fun x -> -.x
  | Op.Sin -> sin
  | Op.Cos -> cos
  | Op.Tanh -> tanh
  | Op.Erf -> erf_as
  | Op.Not | Op.Pow -> fun _ -> Mem.fail "math: bad arity"

(* --- fast bounds-checked linear addressing --- *)

let oob (b : Mem.buffer) ix d =
  Mem.fail "buffer #%d: index %d out of bounds [0,%d) in dim %d" b.Mem.bufid ix
    b.Mem.dims.(d) d

let lin1 (b : Mem.buffer) (i : int) : int =
  if Array.length b.Mem.dims = 1 then begin
    if i < 0 || i >= b.Mem.dims.(0) then oob b i 0;
    i
  end
  else Mem.lindex b [| i |]

let lin2 (b : Mem.buffer) (i : int) (j : int) : int =
  if Array.length b.Mem.dims = 2 then begin
    if i < 0 || i >= b.Mem.dims.(0) then oob b i 0;
    if j < 0 || j >= b.Mem.dims.(1) then oob b j 1;
    (i * b.Mem.dims.(1)) + j
  end
  else Mem.lindex b [| i; j |]

(* --- teams --- *)

let new_team size =
  { size
  ; barrier = Barrier.create size
  ; wmutex = Mutex.create ()
  ; wtbl = Hashtbl.create 16
  }

(* A nested [omp.parallel] runs its ranks sequentially on the current
   thread (the interpreter runs them as cooperative fibers — identical
   memory effects for race-free regions), so its barrier must be a
   no-op. *)
let nested_team size =
  { size
  ; barrier = Barrier.create 1
  ; wmutex = Mutex.create ()
  ; wtbl = Hashtbl.create 8
  }

let new_lc team rank = { team; rank; ws_seen = Hashtbl.create 8 }

let dummy_buf = lazy (Mem.alloc_buffer Types.Index [| 0 |])

let new_frame (cf : cfunc) lc glob : frame =
  { iregs = Array.make cf.ni 0
  ; fregs = Array.make cf.nf 0.0
  ; bregs = Array.make cf.nb (Lazy.force dummy_buf)
  ; lc
  ; glob
  }

(* --- compilation --- *)

let rec compile_region (ce : cenv) (ops : Op.op list) : code =
  let codes = Array.of_list (List.map (compile_op ce) ops) in
  match Array.length codes with
  | 0 -> fun _ -> ()
  | 1 -> codes.(0)
  | n ->
    fun fr ->
      for i = 0 to n - 1 do
        codes.(i) fr
      done

and compile_op (ce : cenv) (op : Op.op) : code =
  match op.Op.kind with
  | Op.Module | Op.Func _ ->
    fun _ -> Mem.fail "cannot execute module/func as a statement"
  | Op.Yield | Op.Dealloc -> fun _ -> ()
  | Op.Condition -> fun _ -> Mem.fail "scf.condition outside while handling"
  | Op.Constant c -> begin
    match c with
    | Op.Cint (n, _) ->
      let set = iset ce (Op.result op) in
      fun fr -> set fr n
    | Op.Cfloat (f, Types.F32) ->
      let v = f32 f in
      let set = fset ce (Op.result op) in
      fun fr -> set fr v
    | Op.Cfloat (f, _) ->
      let set = fset ce (Op.result op) in
      fun fr -> set fr f
  end
  | Op.Binop kind ->
    if is_float_value op.Op.operands.(0) then begin
      let a = fget ce op.Op.operands.(0) in
      let b = fget ce op.Op.operands.(1) in
      let f = fbinop kind in
      let set = fset ce (Op.result op) in
      fun fr -> set fr (f (a fr) (b fr))
    end
    else begin
      let a = iget ce op.Op.operands.(0) in
      let b = iget ce op.Op.operands.(1) in
      let f = ibinop kind in
      let set = iset ce (Op.result op) in
      fun fr -> set fr (f (a fr) (b fr))
    end
  | Op.Cmp pred ->
    let set = iset ce (Op.result op) in
    if is_float_value op.Op.operands.(0) then begin
      let a = fget ce op.Op.operands.(0) in
      let b = fget ce op.Op.operands.(1) in
      let p = fcmp pred in
      fun fr -> set fr (if p (a fr) (b fr) then 1 else 0)
    end
    else begin
      let a = iget ce op.Op.operands.(0) in
      let b = iget ce op.Op.operands.(1) in
      let p = icmp pred in
      fun fr -> set fr (if p (a fr) (b fr) then 1 else 0)
    end
  | Op.Select -> begin
    let c = iget ce op.Op.operands.(0) in
    match slot_of ce (Op.result op) with
    | SF k ->
      let a = fget ce op.Op.operands.(1) in
      let b = fget ce op.Op.operands.(2) in
      fun fr -> fr.fregs.(k) <- (if c fr <> 0 then a fr else b fr)
    | SI k ->
      let a = iget ce op.Op.operands.(1) in
      let b = iget ce op.Op.operands.(2) in
      fun fr -> fr.iregs.(k) <- (if c fr <> 0 then a fr else b fr)
    | SB k ->
      let a = bget ce op.Op.operands.(1) in
      let b = bget ce op.Op.operands.(2) in
      fun fr -> fr.bregs.(k) <- (if c fr <> 0 then a fr else b fr)
  end
  | Op.Cast d -> begin
    match d with
    | Types.F32 ->
      let g = fget ce op.Op.operands.(0) in
      let set = fset ce (Op.result op) in
      fun fr -> set fr (f32 (g fr))
    | Types.F64 ->
      let g = fget ce op.Op.operands.(0) in
      let set = fset ce (Op.result op) in
      fun fr -> set fr (g fr)
    | Types.I1 ->
      let g = tget ce op.Op.operands.(0) in
      let set = iset ce (Op.result op) in
      fun fr -> set fr (if g fr <> 0 then 1 else 0)
    | Types.I32 | Types.I64 | Types.Index ->
      let g = tget ce op.Op.operands.(0) in
      let set = iset ce (Op.result op) in
      fun fr -> set fr (g fr)
  end
  | Op.Math Op.Not ->
    let a = iget ce op.Op.operands.(0) in
    let set = iset ce (Op.result op) in
    fun fr -> set fr (if a fr = 0 then 1 else 0)
  | Op.Math Op.Pow ->
    let a = fget ce op.Op.operands.(0) in
    let b = fget ce op.Op.operands.(1) in
    let set = fset ce (Op.result op) in
    fun fr -> set fr (Float.pow (a fr) (b fr))
  | Op.Math fn ->
    let a = fget ce op.Op.operands.(0) in
    let f = fmath fn in
    let set = fset ce (Op.result op) in
    fun fr -> set fr (f (a fr))
  | Op.Alloc | Op.Alloca -> begin
    match (Op.result op).Value.typ with
    | Types.Memref { elem; shape; _ } ->
      let next_dyn = ref 0 in
      let dimfs =
        Array.of_list
          (List.map
             (fun d ->
               match d with
               | Some n -> fun (_ : frame) -> n
               | None ->
                 let k = !next_dyn in
                 incr next_dyn;
                 if k < Array.length op.Op.operands then
                   iget ce op.Op.operands.(k)
                 else fun _ -> Mem.fail "alloc: missing dynamic size")
             shape)
      in
      let set = bset ce (Op.result op) in
      fun fr ->
        set fr (Mem.alloc_buffer elem (Array.map (fun g -> g fr) dimfs))
    | Types.Scalar _ -> fun _ -> Mem.fail "alloc of non-memref"
  end
  | Op.Load -> compile_load ce op
  | Op.Store -> compile_store ce op
  | Op.Copy ->
    let s = bget ce op.Op.operands.(0) in
    let d = bget ce op.Op.operands.(1) in
    fun fr -> Mem.copy ~src:(s fr) ~dst:(d fr)
  | Op.Dim i ->
    let b = bget ce op.Op.operands.(0) in
    let set = iset ce (Op.result op) in
    fun fr -> set fr (b fr).Mem.dims.(i)
  | Op.For ->
    let log = iget ce (Op.for_lo op) in
    let hig = iget ce (Op.for_hi op) in
    let stg = iget ce (Op.for_step op) in
    let iv = slot_of ce (Op.for_iv op) in
    let iv =
      match iv with
      | SI k -> k
      | SF _ | SB _ -> raise (Unsupported "scf.for: non-integer iv")
    in
    let body = compile_region ce op.Op.regions.(0).Op.body in
    fun fr ->
      let lo = log fr and hi = hig fr and step = stg fr in
      if step <= 0 then Mem.fail "scf.for: non-positive step %d" step;
      let i = ref lo in
      while !i < hi do
        fr.iregs.(iv) <- !i;
        body fr;
        i := !i + step
      done
  | Op.While ->
    let cond_ops, cond_val =
      match List.rev op.Op.regions.(0).Op.body with
      | ({ Op.kind = Op.Condition; _ } as c) :: rest ->
        (compile_region ce (List.rev rest), iget ce c.Op.operands.(0))
      | _ ->
        ( (fun (_ : frame) -> ())
        , fun (_ : frame) ->
            Mem.fail "while cond region missing scf.condition" )
    in
    let body = compile_region ce op.Op.regions.(1).Op.body in
    fun fr ->
      let continue_ = ref true in
      while !continue_ do
        cond_ops fr;
        if cond_val fr <> 0 then body fr else continue_ := false
      done
  | Op.If ->
    let c = iget ce op.Op.operands.(0) in
    let t = compile_region ce op.Op.regions.(0).Op.body in
    let e =
      if Array.length op.Op.regions > 1 then
        compile_region ce op.Op.regions.(1).Op.body
      else fun _ -> ()
    in
    fun fr -> if c fr <> 0 then t fr else e fr
  | Op.Barrier ->
    raise
      (Unsupported "polygeist.barrier requires the fiber interpreter")
  | Op.Parallel _ ->
    if Op.contains_barrier_region op.Op.regions.(0) then
      raise
        (Unsupported
           "scf.parallel with barriers requires the fiber interpreter")
    else compile_serial_parallel ce op
  | Op.OmpParallel -> compile_omp_parallel ce op
  | Op.OmpWsloop -> compile_wsloop ce op
  | Op.OmpBarrier ->
    fun fr ->
      (match fr.lc with
       | None -> () (* orphaned barrier: team of one *)
       | Some lc -> Barrier.wait lc.team.barrier)
  | Op.Return ->
    if Array.length op.Op.operands = 1 then begin
      let g = rv_get ce op.Op.operands.(0) in
      fun fr -> raise (Ret (Some (g fr)))
    end
    else fun _ -> raise (Ret None)
  | Op.Call name -> compile_call ce op name

and compile_load ce op : code =
  let bg = bget ce op.Op.operands.(0) in
  let n = Array.length op.Op.operands - 1 in
  let idxg = Array.init n (fun i -> iget ce op.Op.operands.(i + 1)) in
  match n, slot_of ce (Op.result op) with
  | 1, SF k ->
    let i0 = idxg.(0) in
    fun fr ->
      let b = bg fr in
      fr.fregs.(k) <- Mem.get_f b (lin1 b (i0 fr))
  | 1, SI k ->
    let i0 = idxg.(0) in
    fun fr ->
      let b = bg fr in
      fr.iregs.(k) <- Mem.get_i b (lin1 b (i0 fr))
  | 2, SF k ->
    let i0 = idxg.(0) and i1 = idxg.(1) in
    fun fr ->
      let b = bg fr in
      fr.fregs.(k) <- Mem.get_f b (lin2 b (i0 fr) (i1 fr))
  | 2, SI k ->
    let i0 = idxg.(0) and i1 = idxg.(1) in
    fun fr ->
      let b = bg fr in
      fr.iregs.(k) <- Mem.get_i b (lin2 b (i0 fr) (i1 fr))
  | _, SF k ->
    fun fr ->
      let b = bg fr in
      fr.fregs.(k) <- Mem.get_f b (Mem.lindex b (Array.map (fun g -> g fr) idxg))
  | _, SI k ->
    fun fr ->
      let b = bg fr in
      fr.iregs.(k) <- Mem.get_i b (Mem.lindex b (Array.map (fun g -> g fr) idxg))
  | _, SB _ -> fun _ -> Mem.fail "load of buffer value"

and compile_store ce op : code =
  let vs = slot_of ce op.Op.operands.(0) in
  let bg = bget ce op.Op.operands.(1) in
  let n = Array.length op.Op.operands - 2 in
  let idxg = Array.init n (fun i -> iget ce op.Op.operands.(i + 2)) in
  match n, vs with
  | 1, SF k ->
    let i0 = idxg.(0) in
    fun fr ->
      let b = bg fr in
      Mem.set_f b (lin1 b (i0 fr)) fr.fregs.(k)
  | 1, SI k ->
    let i0 = idxg.(0) in
    fun fr ->
      let b = bg fr in
      Mem.set_i b (lin1 b (i0 fr)) fr.iregs.(k)
  | 2, SF k ->
    let i0 = idxg.(0) and i1 = idxg.(1) in
    fun fr ->
      let b = bg fr in
      Mem.set_f b (lin2 b (i0 fr) (i1 fr)) fr.fregs.(k)
  | 2, SI k ->
    let i0 = idxg.(0) and i1 = idxg.(1) in
    fun fr ->
      let b = bg fr in
      Mem.set_i b (lin2 b (i0 fr) (i1 fr)) fr.iregs.(k)
  | _, SF k ->
    fun fr ->
      let b = bg fr in
      Mem.set_f b (Mem.lindex b (Array.map (fun g -> g fr) idxg)) fr.fregs.(k)
  | _, SI k ->
    fun fr ->
      let b = bg fr in
      Mem.set_i b (Mem.lindex b (Array.map (fun g -> g fr) idxg)) fr.iregs.(k)
  | _, SB _ -> fun _ -> Mem.fail "cannot store a buffer into a buffer"

(* [scf.parallel] without barriers: iterations in the interpreter's
   enumeration order (dim 0 fastest).  GPU threads are not an OpenMP
   team, so no worksharing chunking applies — every nested wsloop sees
   the launch context of the enclosing omp construct, as in the
   interpreter. *)
and compile_serial_parallel ce op : code =
  let nd = Op.par_dims op in
  let log = Array.init nd (fun i -> iget ce (Op.par_lo op i)) in
  let hig = Array.init nd (fun i -> iget ce (Op.par_hi op i)) in
  let stg = Array.init nd (fun i -> iget ce (Op.par_step op i)) in
  let ivslots =
    Array.map
      (fun v ->
        match slot_of ce v with
        | SI k -> k
        | SF _ | SB _ -> raise (Unsupported "parallel: non-integer iv"))
      op.Op.regions.(0).Op.rargs
  in
  let body = compile_region ce op.Op.regions.(0).Op.body in
  fun fr ->
    let lo = Array.map (fun g -> g fr) log in
    let hi = Array.map (fun g -> g fr) hig in
    let step = Array.map (fun g -> g fr) stg in
    Array.iteri
      (fun d s -> if s <= 0 then Mem.fail "parallel: non-positive step %d" d)
      step;
    let rec go d =
      if d < 0 then body fr
      else begin
        let v = ref lo.(d) in
        while !v < hi.(d) do
          fr.iregs.(ivslots.(d)) <- !v;
          go (d - 1);
          v := !v + step.(d)
        done
      end
    in
    go (nd - 1)

and compile_omp_parallel ce op : code =
  let body = compile_region ce op.Op.regions.(0).Op.body in
  fun fr ->
    let g = fr.glob in
    let size = g.cfg.domains in
    match fr.lc with
    | Some _ ->
      (* Nested team: ranks run sequentially on this thread, sharing its
         register files (sound for SSA: each rank's defs precede its
         uses).  The interpreter runs them as fibers — same memory
         effects for race-free regions. *)
      let team = nested_team size in
      for rank = 0 to size - 1 do
        body { fr with lc = Some (new_lc team rank) }
      done
    | None ->
      g.stats.launches <- g.stats.launches + 1;
      let team = new_team size in
      if size = 1 then begin
        (* deterministic single-domain mode: no pool round-trip *)
        if g.cfg.inject then raise Injected;
        body { fr with lc = Some (new_lc team 0) }
      end
      else begin
        let pool = Pool.get ~domains:size ~reuse:g.cfg.team_reuse in
        (* per-thread memory views: scalar registers are copied (so SSA
           values defined before the region are private), buffers are
           shared by reference *)
        let frames =
          Array.init size (fun rank ->
              { iregs = Array.copy fr.iregs
              ; fregs = Array.copy fr.fregs
              ; bregs = Array.copy fr.bregs
              ; lc = Some (new_lc team rank)
              ; glob = g
              })
        in
        Fun.protect
          ~finally:(fun () ->
            g.stats.barrier_phases <-
              g.stats.barrier_phases + Barrier.phases team.barrier;
            Pool.release pool)
          (fun () ->
            Pool.run pool (fun rank ->
                try
                  if g.cfg.inject && rank = size - 1 then raise Injected;
                  body frames.(rank)
                with
                | Barrier.Poisoned ->
                  (* another team member died and poisoned the barrier;
                     its exception carries the cause *)
                  ()
                | e ->
                  Barrier.poison team.barrier;
                  raise e))
      end

and compile_wsloop ce op : code =
  let nd = Op.par_dims op in
  let log = Array.init nd (fun i -> iget ce (Op.par_lo op i)) in
  let hig = Array.init nd (fun i -> iget ce (Op.par_hi op i)) in
  let stg = Array.init nd (fun i -> iget ce (Op.par_step op i)) in
  let ivslots =
    Array.map
      (fun v ->
        match slot_of ce v with
        | SI k -> k
        | SF _ | SB _ -> raise (Unsupported "wsloop: non-integer iv"))
      op.Op.regions.(0).Op.rargs
  in
  let body = compile_region ce op.Op.regions.(0).Op.body in
  let oid = op.Op.oid in
  fun fr ->
    let lo = Array.map (fun g -> g fr) log in
    let hi = Array.map (fun g -> g fr) hig in
    let step = Array.map (fun g -> g fr) stg in
    Array.iteri
      (fun d s -> if s <= 0 then Mem.fail "parallel: non-positive step %d" d)
      step;
    let counts =
      Array.init nd (fun d ->
          if hi.(d) <= lo.(d) then 0
          else (hi.(d) - lo.(d) + step.(d) - 1) / step.(d))
    in
    let n = Array.fold_left ( * ) 1 counts in
    (* run the linearized range [a, b); linear order matches the
       interpreter's enumeration (dim 0 fastest) *)
    let run_range =
      if nd = 1 then begin
        let l0 = lo.(0) and s0 = step.(0) and iv0 = ivslots.(0) in
        fun a b ->
          for p = a to b - 1 do
            fr.iregs.(iv0) <- l0 + (p * s0);
            body fr
          done
      end
      else
        fun a b ->
          for p = a to b - 1 do
            let rem = ref p in
            for d = 0 to nd - 1 do
              fr.iregs.(ivslots.(d)) <- lo.(d) + (!rem mod counts.(d) * step.(d));
              rem := !rem / counts.(d)
            done;
            body fr
          done
    in
    match fr.lc with
    | None -> run_range 0 n (* orphaned wsloop: team of one *)
    | Some lc ->
      let size = lc.team.size in
      if size = 1 then run_range 0 n
      else begin
        match fr.glob.cfg.schedule with
        | Schedule.Static ->
          let l, h = Schedule.static_chunk ~rank:lc.rank ~size ~n in
          run_range l h
        | (Schedule.Dynamic | Schedule.Guided) as p ->
          (* Wsloops have no implicit trailing barrier, so team members
             may concurrently be in different encounters (generations)
             of this loop; the shared grab state is keyed by the
             per-thread encounter count and torn down by the last
             finisher. *)
          let gen =
            match Hashtbl.find_opt lc.ws_seen oid with
            | Some g -> g
            | None -> 0
          in
          Hashtbl.replace lc.ws_seen oid (gen + 1);
          let tm = lc.team in
          Mutex.lock tm.wmutex;
          let ws =
            match Hashtbl.find_opt tm.wtbl (oid, gen) with
            | Some ws -> ws
            | None ->
              let ws = { grab = Schedule.make_shared (); finishers = 0 } in
              Hashtbl.add tm.wtbl (oid, gen) ws;
              ws
          in
          Mutex.unlock tm.wmutex;
          let rec grab_loop () =
            match Schedule.next ws.grab p ~size ~n with
            | Some (l, h) ->
              run_range l h;
              grab_loop ()
            | None -> ()
          in
          grab_loop ();
          Mutex.lock tm.wmutex;
          ws.finishers <- ws.finishers + 1;
          if ws.finishers = size then Hashtbl.remove tm.wtbl (oid, gen);
          Mutex.unlock tm.wmutex
      end

and compile_call ce op name : code =
  match get_cfunc ce.cm name with
  | None -> fun _ -> Mem.fail "call to unknown function @%s" name
  | Some cf ->
    let argg = Array.map (rv_get ce) op.Op.operands in
    let has_res = Array.length op.Op.results = 1 in
    let res_slot = if has_res then Some (slot_of ce (Op.result op)) else None in
    fun fr ->
      if Array.length cf.params <> Array.length argg then
        Mem.fail "@%s: arity mismatch" name;
      let cfr = new_frame cf fr.lc fr.glob in
      Array.iteri (fun i g -> bind_slot cfr cf.params.(i) (g fr)) argg;
      let r = match cf.body cfr with () -> None | exception Ret v -> v in
      match res_slot, r with
      | Some s, Some v -> bind_slot fr s v
      | Some _, None -> Mem.fail "function @%s returned no value" name
      | None, _ -> ()

and get_cfunc (cm : cmod) (name : string) : cfunc option =
  match Hashtbl.find_opt cm.cfuncs name with
  | Some cf -> Some cf
  | None -> begin
    match Op.find_func cm.modul name with
    | None -> None
    | Some f ->
      (* insert a placeholder first so recursive calls resolve *)
      let cf =
        { ni = 0
        ; nf = 0
        ; nb = 0
        ; params = [||]
        ; body = (fun _ -> Mem.fail "@%s: incomplete compilation" name)
        }
      in
      Hashtbl.add cm.cfuncs name cf;
      let ce = { cm; slots = Hashtbl.create 64; ni = 0; nf = 0; nb = 0 } in
      cf.params <- Array.map (slot_of ce) f.Op.regions.(0).Op.rargs;
      let body = compile_region ce f.Op.regions.(0).Op.body in
      cf.ni <- ce.ni;
      cf.nf <- ce.nf;
      cf.nb <- ce.nb;
      cf.body <- body;
      Some cf
  end

(* --- public API --- *)

type compiled =
  { entry : cfunc
  ; glob : glob
  }

let compile (modul : Op.op) (name : string) : compiled =
  let cm = { modul; cfuncs = Hashtbl.create 8 } in
  match get_cfunc cm name with
  | None -> Mem.fail "no function @%s in module" name
  | Some entry ->
    { entry
    ; glob =
        { cfg =
            { domains = 4
            ; schedule = Schedule.Static
            ; team_reuse = true
            ; inject = false
            }
        ; stats = { launches = 0; barrier_phases = 0; domain_spawns = 0 }
        }
    }

let run ?(domains = 4) ?(schedule = Schedule.Static) ?(team_reuse = true)
    ?(inject_fault = false) (c : compiled) (args : Mem.rv list) :
    Mem.rv option * stats =
  if domains < 1 then invalid_arg "Exec.run: domains must be >= 1";
  let g = c.glob in
  g.cfg.domains <- domains;
  g.cfg.schedule <- schedule;
  g.cfg.team_reuse <- team_reuse;
  g.cfg.inject <- inject_fault;
  g.stats.launches <- 0;
  g.stats.barrier_phases <- 0;
  let spawns0 = Pool.total_spawns () in
  let cf = c.entry in
  let args = Array.of_list args in
  if Array.length cf.params <> Array.length args then
    Mem.fail "entry: arity mismatch (%d args for %d params)"
      (Array.length args) (Array.length cf.params);
  let fr = new_frame cf None g in
  Array.iteri (fun i s -> bind_slot fr s args.(i)) cf.params;
  let result = match cf.body fr with () -> None | exception Ret v -> v in
  g.stats.domain_spawns <- Pool.total_spawns () - spawns0;
  ( result
  , { launches = g.stats.launches
    ; barrier_phases = g.stats.barrier_phases
    ; domain_spawns = g.stats.domain_spawns
    } )

let run_module ?domains ?schedule ?team_reuse ?inject_fault modul name args =
  run ?domains ?schedule ?team_reuse ?inject_fault (compile modul name) args
