(* Persistent domain pool (see the .mli).

   Each worker owns a mutex/condvar pair used in both directions: the
   caller posts a job and signals; the worker runs it, marks itself done
   and signals back.  One pair per worker (not a shared queue) keeps
   wakeups targeted: posting N jobs wakes exactly the N workers. *)

(* [idle_job] is a sentinel so posting a job writes a closure that
   already exists instead of wrapping it in [Some] — launch hot paths
   must not allocate (see Exec's zero-allocation launch contract). *)
let idle_job (_ : int) = ()

type worker =
  { rank : int
  ; m : Mutex.t
  ; cv : Condition.t
  ; mutable job : int -> unit
  ; mutable has_job : bool
  ; mutable done_ : bool
  ; mutable exn_ : exn option
  ; mutable stop : bool
  }

type t =
  { size : int
  ; workers : worker array (* size - 1 entries, ranks 1.. *)
  ; mutable domains : unit Domain.t array
  ; cached : bool
  }

let spawns = Atomic.make 0
let total_spawns () = Atomic.get spawns
let size t = t.size

let worker_loop (w : worker) : unit =
  let running = ref true in
  while !running do
    Mutex.lock w.m;
    while (not w.has_job) && not w.stop do
      Condition.wait w.cv w.m
    done;
    if w.stop then begin
      Mutex.unlock w.m;
      running := false
    end
    else begin
      let job = w.job in
      Mutex.unlock w.m;
      let exn_ = match job w.rank with () -> None | exception e -> Some e in
      Mutex.lock w.m;
      w.exn_ <- exn_;
      w.job <- idle_job;
      w.has_job <- false;
      w.done_ <- true;
      Condition.broadcast w.cv;
      Mutex.unlock w.m
    end
  done

let create ~cached size : t =
  if size < 1 then invalid_arg "Pool.get: domains must be >= 1";
  let workers =
    Array.init (size - 1) (fun i ->
        { rank = i + 1
        ; m = Mutex.create ()
        ; cv = Condition.create ()
        ; job = idle_job
        ; has_job = false
        ; done_ = false
        ; exn_ = None
        ; stop = false
        })
  in
  let domains =
    Array.map
      (fun w ->
        Atomic.incr spawns;
        Domain.spawn (fun () -> worker_loop w))
      workers
  in
  { size; workers; domains; cached }

let release_pool (t : t) : unit =
  Array.iter
    (fun w ->
      Mutex.lock w.m;
      w.stop <- true;
      Condition.broadcast w.cv;
      Mutex.unlock w.m)
    t.workers;
  Array.iter Domain.join t.domains;
  t.domains <- [||]

(* Fault-wall teardown.  [release_pool] joins every worker, which is
   correct for a healthy pool but blocks forever if a worker is wedged
   mid-job (a hung launch whose watchdog never fired, or a rank parked
   on a barrier whose poison broadcast it missed).  [shutdown] instead
   signals stop, joins only the workers that are demonstrably between
   jobs, and abandons the rest: an OCaml domain cannot be killed, so a
   wedged worker is leaked (it exits on its own if the job ever
   returns) and the count of leaked domains is reported so callers can
   surface it.  The racy [has_job && not done_] read is conservative —
   a worker finishing right after the check is leaked-but-exiting, not
   blocked. *)
let shutdown (t : t) : int =
  let leaked = ref 0 in
  Array.iteri
    (fun i w ->
      Mutex.lock w.m;
      w.stop <- true;
      Condition.broadcast w.cv;
      let busy = w.has_job && not w.done_ in
      Mutex.unlock w.m;
      if busy then incr leaked
      else if i < Array.length t.domains then
        try Domain.join t.domains.(i) with _ -> ())
    t.workers;
  t.domains <- [||];
  !leaked

(* The cached pool is DOMAIN-LOCAL: each domain that launches kernels
   (the CLI's main domain, or one of the compile service's executor
   lanes) owns its own persistent team.  This is what lets the serving
   tier run N executors concurrently — a poisoned or rebuilt pool in
   one lane never stalls or steals the team of another. *)
let cached_pool : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let shutdown_cached () =
  let cell = Domain.DLS.get cached_pool in
  match !cell with
  | None -> ()
  | Some p ->
    cell := None;
    ignore (shutdown p)

(* Tear down the calling domain's cached pool (tolerating wedged
   workers) and build a fresh one of the given size: the job fault wall
   calls this after any launch failure that may have left the team
   poisoned or a rank parked, so the next job starts from known-good
   domains. *)
let rebuild ~(domains : int) : t * int =
  let cell = Domain.DLS.get cached_pool in
  let leaked =
    match !cell with
    | None -> 0
    | Some p ->
      cell := None;
      shutdown p
  in
  let p = create ~cached:true domains in
  cell := Some p;
  (p, leaked)

let get ~domains ~reuse : t =
  if reuse then begin
    let cell = Domain.DLS.get cached_pool in
    match !cell with
    | Some p when p.size = domains -> p
    | existing ->
      (match existing with Some p -> release_pool p | None -> ());
      let p = create ~cached:true domains in
      cell := Some p;
      p
  end
  else create ~cached:false domains

let release (t : t) : unit = if not t.cached then release_pool t

let run (t : t) (job : int -> unit) : unit =
  if t.size = 1 then job 0
  else begin
    Array.iter
      (fun w ->
        Mutex.lock w.m;
        w.done_ <- false;
        w.exn_ <- None;
        w.job <- job;
        w.has_job <- true;
        Condition.broadcast w.cv;
        Mutex.unlock w.m)
      t.workers;
    (* the caller is rank 0 of the team *)
    let first_exn =
      ref (match job 0 with () -> None | exception e -> Some e)
    in
    Array.iter
      (fun w ->
        Mutex.lock w.m;
        while not w.done_ do
          Condition.wait w.cv w.m
        done;
        (match w.exn_ with
         | Some e when Option.is_none !first_exn -> first_exn := Some e
         | _ -> ());
        Mutex.unlock w.m)
      t.workers;
    match !first_exn with
    | Some e -> raise e
    | None -> ()
  end
