(** Sense-reversing barrier for a fixed-size team of OCaml domains.

    Each phase flips a global sense flag; arriving threads wait until the
    flag flips to the sense of the phase they are in, so the barrier is
    reusable with no reinitialization between phases.  Waiters spin
    briefly (cheap when domains have real cores) and then block on a
    condition variable (mandatory when domains oversubscribe the
    machine, as in this single-core container).

    A team member that dies with an exception must {!poison} the barrier
    so the surviving members unblock instead of waiting forever; their
    pending and subsequent waits raise {!Poisoned}. *)

type t

exception Poisoned

(** [create n] makes a barrier for a team of [n] threads.  [n = 1]
    barriers are free (waits return immediately). *)
val create : int -> t

(** Block until all [n] team members have called [wait] for the current
    phase.  @raise Poisoned if the barrier was poisoned. *)
val wait : t -> unit

(** Unblock every current and future waiter with {!Poisoned}. *)
val poison : t -> unit

(** Whether {!poison} has been called.  A poisoned barrier is dead: a
    persistent team built around one must be rebuilt, never reused. *)
val is_poisoned : t -> bool

(** Number of completed phases (all threads arrived), for tests. *)
val phases : t -> int
