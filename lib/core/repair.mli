(** Analysis-guided kernel auto-repair (GPURepair-style).

    Given a module whose kernels the static sanitizer
    ({!Analysis.Kernelcheck}) flags, search for a minimal sequence of
    barrier edits — insertions at the {!Analysis.Mhp.separation_points}
    of each racing pair, and deletions/hoists of divergent barriers —
    that makes the sanitizer clean.  Candidates are ranked (race
    findings first, closest separating point first) and tried greedily
    with backtracking: each is applied under
    {!Passmgr.with_rollback} and kept only when it strictly decreases
    the error count; a candidate that leads into a dead end is rolled
    back and the next one tried.  A repair is only reported once the
    caller-supplied [validate] hook — in the driver, the differential
    oracle of [lib/fuzz] — accepts the edited module; otherwise the
    module is restored to its original state. *)

type edit =
  { e_action : [ `Insert | `Delete ]
  ; e_loc : Ir.Srcloc.t option
    (** anchor: the statement the barrier is inserted before (or the
        enclosing construct for end-of-block points), or the deleted
        barrier itself *)
  ; e_text : string (** human-readable patch line, location-free *)
  }

(** [file:line:col: <text>] — the driver's patch rendering. *)
val edit_to_string : file:string -> edit -> string

(** The repair objective: diagnostics the search drives to zero —
    errors of any check plus race findings of any strength (the search
    runs the sanitizer with possible races surfaced; a conservative
    may-race is exactly what a missing barrier produces).  Exposed so
    campaigns count "dirty" kernels the same way the search does. *)
val target_diag : Analysis.Diag.t -> bool

type status =
  | Clean (** the sanitizer had no errors; module untouched *)
  | Repaired of edit list (** edits applied, in application order *)
  | Failed of string (** module restored to its original state *)

type stats =
  { candidates_tried : int (** speculative applications attempted *)
  ; rechecks : int (** sanitizer re-runs consumed by the search *)
  }

type outcome =
  { status : status
  ; stats : stats
  }

(** Run the search on (and, on success, mutate) the module.
    [max_edits] bounds the accepted-edit depth (default 4);
    [max_candidates] the total speculative applications (default 64);
    [validate] is consulted once, on the first sanitizer-clean variant
    reached (default: accept). *)
val run :
  ?max_edits:int ->
  ?max_candidates:int ->
  ?validate:(Ir.Op.op -> (unit, string) result) ->
  Ir.Op.op ->
  outcome
