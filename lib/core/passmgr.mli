(** The fault-tolerant pass manager.

    Runs every stage of {!Cpuify.pipeline_stages} under a recovery
    harness: deep snapshot before the stage, exception isolation plus a
    fuel budget around it, IR verification after it, and on any failure
    a rollback to the snapshot followed by a descent of the degradation
    ladder — min-cut split, cache-everything split, skip the
    optimization, and finally a whole-pipeline fallback to the
    conservative no-opt lowering, so the pipeline always produces
    runnable barrier-free IR.  Failures are recorded in the {!report}
    and, when [crash_dir] is set, serialized as replayable
    {!Crashbundle} files. *)

type rung =
  | Primary (** the stage as configured (for cpuify: min-cut split) *)
  | No_mincut (** cpuify retried with cache-everything splitting *)
  | Skip (** optimization stage rolled back and skipped *)
  | Fallback (** whole-pipeline conservative no-opt lowering *)

val rung_to_string : rung -> string

type stage_failure =
  { stage : string
  ; stage_index : int
  ; rung : rung (** ladder rung being attempted when it failed *)
  ; exn_text : string
  ; backtrace : string
  ; bundle : string option (** crash bundle path, when one was written *)
  }

type degradation =
  { failure : stage_failure (** the failure that forced the descent *)
  ; recovered_to : rung
  }

type report =
  { degradations : degradation list (** in pipeline order *)
  ; failures : stage_failure list
        (** every failure encountered, at every rung, in order — what
            [--replay] matches a bundle against *)
  ; fell_back : bool (** the whole-pipeline no-opt fallback engaged *)
  ; bundles : string list (** crash bundle paths written *)
  }

(** Did anything have to recover? *)
val degraded : report -> bool

val failure_to_string : stage_failure -> string

(** Multi-line human-readable degradation report ("" when clean). *)
val report_to_string : report -> string

(** Speculative-edit harness over {!Ir.Clone.snapshot}/[restore]: run
    the thunk and keep its edits to the module only when it returns
    [true]; on [false] or an exception the module is restored to its
    pre-call state and the call returns [false].  Restore transplants
    fresh clones, so op/region references taken before the call dangle
    after a rollback — re-derive them.  This is the rollback substrate
    of the {!Repair} candidate search. *)
val with_rollback : Ir.Op.op -> (unit -> bool) -> bool

(** Run the full pre-OpenMP pipeline on the module, fault-tolerantly.
    [faults] is a deterministic injection plan (each entry one-shot);
    [source], [repro] and [runtime] (the active execution
    configuration, if any) are recorded verbatim in crash bundles.
    [Ok report] means the module now holds runnable barrier-free IR
    (possibly degraded — check {!degraded} / [fell_back]); [Error]
    means even the conservative fallback failed, with the report of
    everything tried plus the final failure. *)
val run_pipeline :
  ?options:Cpuify.options ->
  ?faults:Fault.plan ->
  ?crash_dir:string ->
  ?source:string ->
  ?repro:string ->
  ?runtime:Crashbundle.runtime_cfg ->
  Ir.Op.op ->
  (report, report * stage_failure) result
