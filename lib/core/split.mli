(** Parallel loop splitting (Sec. III-B1): fission of a block-parallel
    loop at a top-level barrier, with SSA values crossing the fission
    either cached in per-thread slabs or recomputed — a min vertex cut
    over the SSA graph picks the cheapest mix (Fig. 6).  Thread-local
    allocas that must survive the fission are first expanded into
    per-thread slabs allocated outside the loop. *)

exception Unsupported of string

(** Index of the first top-level barrier in a region body. *)
val top_barrier_index : Ir.Op.op list -> int option

type split_stats =
  { mutable cached_values : int
  ; mutable recomputed_ops : int
  }

(** Cumulative statistics since the last {!reset_stats} (the Fig.-6
    test and the mincut ablation read these). *)
val stats : split_stats

val reset_stats : unit -> unit

(** Hoist the loop's top-level allocas into per-thread slabs; returns the
    ops to place before the loop. *)
val expand_allocas : Ir.Op.op -> Ir.Op.op list

(** Split at the first top-level barrier; [None] when there is none.
    With [use_mincut:false] every live value is cached (the MCUDA
    behaviour / ablation baseline). *)
val split_parallel : use_mincut:bool -> Ir.Op.op -> Ir.Op.op list option

(** {!split_parallel} with [Unsupported] reified as [Error] — the
    structured boundary the fault-tolerant pass manager consumes. *)
val split_result :
  use_mincut:bool -> Ir.Op.op -> (Ir.Op.op list option, string) result
