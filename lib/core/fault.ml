(* Deterministic fault injection for the pass pipeline.

   A fault plan is an ordered list of (stage-name, kind) entries.  Each
   entry is one-shot: it fires the first time a stage with that name is
   attempted and is then spent, so `cpuify:raise` hits the min-cut rung
   of the degradation ladder while a second `cpuify:raise` entry also
   takes down the cache-everything retry and forces the whole-pipeline
   fallback.  Plans serialize to `stage:kind[,stage:kind...]`, the same
   syntax the CLI's --inject-fault flag and crash bundles use, so a
   recorded failure replays bit-for-bit. *)

type kind =
  | Raise (* the stage raises before doing any work *)
  | Corrupt (* the stage completes, then the IR is made unverifiable *)
  | Exhaust (* the stage's fuel budget is exhausted immediately *)
  | Hang
    (* the target spins forever: meaningful for the "runtime" stage,
       where one team rank blocks until the watchdog cancels the
       launch; pass-pipeline stages treat it like [Raise] (the pass
       manager's fuel budget already covers diverging passes) *)

type entry = string * kind
type plan = entry list

exception Injected of string

let kind_to_string = function
  | Raise -> "raise"
  | Corrupt -> "corrupt"
  | Exhaust -> "exhaust"
  | Hang -> "hang"

let kind_of_string = function
  | "raise" -> Some Raise
  | "corrupt" -> Some Corrupt
  | "exhaust" -> Some Exhaust
  | "hang" -> Some Hang
  | _ -> None

let entry_to_string (stage, kind) = stage ^ ":" ^ kind_to_string kind

let entry_of_string (s : string) : (entry, string) result =
  match String.index_opt s ':' with
  | None ->
    Error
      (Printf.sprintf
         "invalid fault %S: expected STAGE:KIND with KIND one of \
          raise|corrupt|exhaust|hang" s)
  | Some i ->
    let stage = String.sub s 0 i in
    let kind = String.sub s (i + 1) (String.length s - i - 1) in
    if stage = "" then Error (Printf.sprintf "invalid fault %S: empty stage" s)
    else begin
      match kind_of_string kind with
      | Some k -> Ok (stage, k)
      | None ->
        Error
          (Printf.sprintf
             "invalid fault kind %S: expected raise|corrupt|exhaust|hang"
             kind)
    end

let plan_to_string (p : plan) = String.concat "," (List.map entry_to_string p)

let plan_of_string (s : string) : (plan, string) result =
  if String.trim s = "" then Ok []
  else
    String.split_on_char ',' s
    |> List.fold_left
         (fun acc part ->
           match acc with
           | Error _ as e -> e
           | Ok entries -> begin
             match entry_of_string (String.trim part) with
             | Ok e -> Ok (e :: entries)
             | Error _ as e -> e
           end)
         (Ok [])
    |> Result.map List.rev

(* Seeded random plan over the given stage names: 1-3 faults, any kind.
   Deterministic in [seed], for reproducible randomized testing. *)
let random_plan ~(seed : int) (stages : string list) : plan =
  match stages with
  | [] -> []
  | _ ->
    let rng = Random.State.make [| seed; 0xfa17 |] in
    let n = 1 + Random.State.int rng 3 in
    List.init n (fun _ ->
        let stage = List.nth stages (Random.State.int rng (List.length stages)) in
        let kind =
          match Random.State.int rng 3 with
          | 0 -> Raise
          | 1 -> Corrupt
          | _ -> Exhaust
        in
        (stage, kind))

(* One-shot consumption: take the first pending entry matching [stage]. *)
type pending = entry list ref

let pending_of_plan (p : plan) : pending = ref p

let take (pending : pending) (stage : string) : kind option =
  let rec go acc = function
    | [] -> None
    | (s, k) :: rest when s = stage ->
      pending := List.rev_append acc rest;
      Some k
    | e :: rest -> go (e :: acc) rest
  in
  go [] !pending
