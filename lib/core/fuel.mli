(** Cooperative step budget for pass execution.

    The pass manager runs stages under a budget so diverging fixpoints
    (or injected [exhaust] faults) raise a catchable {!Exhausted} instead
    of hanging.  Budgets are dynamically scoped and nest. *)

exception Exhausted of string

(** Consume one unit of the innermost budget; no-op when unlimited.
    @raise Exhausted when the budget runs out ([what] names the pass). *)
val tick : string -> unit

(** Run the callback under a budget of [n] ticks, restoring the
    enclosing scope afterwards (also on exceptions). *)
val with_budget : int -> (unit -> 'a) -> 'a

(** Run the callback with no budget, shadowing any enclosing one (the
    always-succeeds conservative fallback runs here). *)
val unlimited : (unit -> 'a) -> 'a
