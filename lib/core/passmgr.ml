(* The fault-tolerant pass manager.

   Wraps every stage of [Cpuify.pipeline_stages] in a recovery harness:

     1. deep-snapshot the module ([Ir.Clone.snapshot]) before the stage;
     2. run the stage under exception isolation and a fuel budget;
     3. verify the IR afterwards ([Ir.Verifier]);
     4. on any failure — exception, structured error, unverifiable IR —
        roll back to the snapshot and descend the degradation ladder:

          min-cut split  →  cache-everything split (~use_mincut:false)
                         →  skip the optimization
                         →  whole-pipeline fallback: restore the ORIGINAL
                            module and run the conservative no-opt
                            lowering (plain cache-everything splitting,
                            no optimizations), which always succeeds.

   Optimization stages (canonicalize, cse, mem2reg, licm, barrier-elim)
   recover by skipping; only cpuify — mandatory, since no barrier may
   survive — walks the split rungs and, failing those, triggers the
   whole-pipeline fallback.  Every failure is recorded in the report and
   (when --crash-dir is set) serialized as a replayable crash bundle.
   If even the conservative fallback fails the pipeline is unrecoverable
   and the last failure is returned as an error — the driver maps it to
   a nonzero exit instead of an uncaught exception.

   Deterministic fault injection ([Fault]) hooks in right here: each
   one-shot plan entry fires the first time its stage is attempted, so
   tests can force any rung of the ladder to engage. *)

open Ir

type rung =
  | Primary (* the stage as configured (for cpuify: min-cut split) *)
  | No_mincut (* cpuify retried with cache-everything splitting *)
  | Skip (* optimization stage rolled back and skipped *)
  | Fallback (* whole-pipeline conservative no-opt lowering *)

let rung_to_string = function
  | Primary -> "primary"
  | No_mincut -> "no-mincut"
  | Skip -> "skip"
  | Fallback -> "no-opt-fallback"

type stage_failure =
  { stage : string
  ; stage_index : int
  ; rung : rung (* ladder rung being attempted when it failed *)
  ; exn_text : string
  ; backtrace : string
  ; bundle : string option (* crash bundle path, when one was written *)
  }

type degradation =
  { failure : stage_failure (* the failure that forced the descent *)
  ; recovered_to : rung
  }

type report =
  { degradations : degradation list (* in pipeline order *)
  ; failures : stage_failure list (* every failure, all rungs, in order *)
  ; fell_back : bool
  ; bundles : string list
  }

let degraded (r : report) : bool = r.degradations <> []

let failure_to_string (f : stage_failure) : string =
  Printf.sprintf "stage %d '%s' (%s rung): %s" f.stage_index f.stage
    (rung_to_string f.rung) f.exn_text

let report_to_string (r : report) : string =
  let b = Buffer.create 256 in
  List.iter
    (fun d ->
      Buffer.add_string b
        (Printf.sprintf "  %s\n    -> recovered via %s\n"
           (failure_to_string d.failure)
           (rung_to_string d.recovered_to)))
    r.degradations;
  if r.fell_back then
    Buffer.add_string b
      "  whole-pipeline fallback engaged: conservative no-opt lowering\n";
  List.iter
    (fun p -> Buffer.add_string b (Printf.sprintf "  crash bundle: %s\n" p))
    r.bundles;
  Buffer.contents b

(* Make the module unverifiable — the `corrupt` fault: a barrier at
   module top level violates the placement invariant, so the post-stage
   verification catches it deterministically. *)
let corrupt_module (m : Op.op) : unit =
  let r = m.Op.regions.(0) in
  r.Op.body <- r.Op.body @ [ Op.mk Op.Barrier ]

(* Speculative-edit harness: the same snapshot/restore substrate the
   ladder uses, exposed for the repair search.  Runs [f]; when it
   returns [false] or raises, the module is transplanted back to its
   pre-call state (note restore replaces the regions with FRESH clones,
   so op/region references into the module taken before the call are
   dangling afterwards — callers must re-derive them). *)
let with_rollback (m : Op.op) (f : unit -> bool) : bool =
  let snap = Clone.snapshot m in
  match f () with
  | true -> true
  | false ->
    Clone.restore ~into:m snap;
    false
  | exception _ ->
    Clone.restore ~into:m snap;
    false

(* Per-stage fuel: generous — real stages tick once per fixpoint
   iteration, so only a diverging pass (or an injected exhaust) hits it. *)
let stage_fuel = 1_000_000

exception Abort of stage_failure

let run_pipeline ?(options = Cpuify.default_options) ?(faults = [])
    ?crash_dir ?(source = "") ?(repro = "") ?runtime (m : Op.op) :
  (report, report * stage_failure) result =
  Printexc.record_backtrace true;
  let pending = Fault.pending_of_plan faults in
  let initial = Clone.snapshot m in
  let degradations = ref [] in
  let failures = ref [] in
  let bundles = ref [] in
  let fell_back = ref false in

  let write_bundle ~(snap : Op.op) ~stage ~stage_index ~rung ~exn_text
      ~backtrace : string option =
    match crash_dir with
    | None -> None
    | Some dir -> begin
      let b =
        { Crashbundle.version = Crashbundle.current_version
        ; stage
        ; stage_index
        ; rung = rung_to_string rung
        ; exn_text
        ; backtrace
        ; repro
        ; options
        ; faults
        ; runtime
        ; serve = None
        ; source
        ; ir_before = Printer.op_to_string snap
        }
      in
      match Crashbundle.write ~dir b with
      | Ok path ->
        bundles := path :: !bundles;
        Some path
      | Error _ -> None
    end
  in

  (* One isolated attempt: snapshot, run, verify; on failure roll back
     and produce the failure record (plus a crash bundle). *)
  let attempt ~stage ~stage_index ~rung (f : Op.op -> (unit, string) result) :
    (unit, stage_failure) result =
    let snap = Clone.snapshot m in
    let outcome =
      match Fuel.with_budget stage_fuel (fun () -> f m) with
      | Ok () -> begin
        match Verifier.verify_result m with
        | Ok () -> Ok ()
        | Error e -> Error ("IR verification failed: " ^ e, "")
      end
      | Error e -> Error (e, "")
      | exception e -> Error (Printexc.to_string e, Printexc.get_backtrace ())
    in
    match outcome with
    | Ok () -> Ok ()
    | Error (exn_text, backtrace) ->
      Clone.restore ~into:m snap;
      let bundle =
        write_bundle ~snap ~stage ~stage_index ~rung ~exn_text ~backtrace
      in
      let f = { stage; stage_index; rung; exn_text; backtrace; bundle } in
      failures := f :: !failures;
      Error f
  in

  (* The stage body at a given rung, through the structured boundaries:
     cpuify reports via [Cpuify.run_result]; the other passes are
     unit-returning and rely on exception isolation. *)
  let base_stage ~rung name fn (m : Op.op) : (unit, string) result =
    if name = "cpuify" then
      let use_mincut =
        match rung with No_mincut -> false | _ -> options.Cpuify.opt_mincut
      in
      Result.map_error Cpuify.error_to_string
        (Cpuify.run_result ~use_mincut ~budget:options.Cpuify.opt_budget m)
    else begin
      fn m;
      Ok ()
    end
  in

  (* Apply the next pending one-shot fault for this stage, if any. *)
  let faulted ~stage (body : Op.op -> (unit, string) result) (m : Op.op) :
    (unit, string) result =
    match Fault.take pending stage with
    | None -> body m
    | Some (Fault.Raise | Fault.Hang) ->
      (* [Hang] only means "spin forever" inside the parallel runtime;
         a pass stage has the fuel budget for divergence, so here it
         degrades to an immediate raise *)
      raise (Fault.Injected (Fault.entry_to_string (stage, Fault.Raise)))
    | Some Fault.Exhaust ->
      Fuel.with_budget 0 (fun () ->
          Fuel.tick stage;
          body m)
    | Some Fault.Corrupt ->
      let r = body m in
      (match r with Ok () -> corrupt_module m | Error _ -> ());
      r
  in

  let record failure recovered_to =
    degradations := { failure; recovered_to } :: !degradations
  in

  (* Restore the pristine input and run the conservative lowering that
     must always succeed: cache-everything splitting, no optimizations,
     no fuel limit.  Fault injection still applies (stage name
     "no-opt-fallback"), so tests can exercise the unrecoverable path. *)
  let whole_pipeline_fallback ~stage_index (cause : stage_failure) : unit =
    Clone.restore ~into:m initial;
    match
      attempt ~stage:"no-opt-fallback" ~stage_index ~rung:Fallback
        (faulted ~stage:"no-opt-fallback" (fun m ->
             Fuel.unlimited (fun () ->
                 Result.map_error Cpuify.error_to_string
                   (Cpuify.run_result ~use_mincut:false
                      ~budget:Cpuify.default_budget m))))
    with
    | Ok () ->
      fell_back := true;
      record cause Fallback
    | Error f -> raise (Abort f)
  in

  let run_stage idx (name, fn) =
    if not !fell_back then begin
      match
        attempt ~stage:name ~stage_index:idx ~rung:Primary
          (faulted ~stage:name (base_stage ~rung:Primary name fn))
      with
      | Ok () -> ()
      | Error fail1 ->
        if name = "cpuify" then begin
          match
            attempt ~stage:name ~stage_index:idx ~rung:No_mincut
              (faulted ~stage:name (base_stage ~rung:No_mincut name fn))
          with
          | Ok () -> record fail1 No_mincut
          | Error fail2 -> whole_pipeline_fallback ~stage_index:idx fail2
        end
        else
          (* the rollback already put the pre-stage IR back: skipping an
             optimization is always sound *)
          record fail1 Skip
    end
  in

  let stages = Cpuify.pipeline_stages ~options () in
  let mk_report () =
    { degradations = List.rev !degradations
    ; failures = List.rev !failures
    ; fell_back = !fell_back
    ; bundles = List.rev !bundles
    }
  in
  match List.iteri run_stage stages with
  | () -> Ok (mk_report ())
  | exception Abort f -> Error (mk_report (), f)
