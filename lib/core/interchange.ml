(* Parallel loop interchange (Sec. III-B2).

   After isolation splits, a block-parallel loop M whose body still
   contains a barrier has the shape

     parallel ivs { prefix...; C; suffix... }

   where C is the single top-level op containing barriers, the prefix is
   pure ops and loads (typically the cache loads/recomputation the split
   inserted), and the suffix is stores of prefix-derived values (caches
   for the next fission).  The prefix is safe to re-execute anywhere as
   long as its loads cannot conflict with C's writes (checked); that lets
   us move the parallel loop *inside* C:

   - serial for: bounds must be uniform across threads (a GPU-semantics
     requirement — every thread must reach each barrier the same number
     of times).  If the bound values are computed per-thread, thread
     (0,..,0) publishes them through helper memrefs first.

         for .. { parallel { prefix; body } }

   - if: uniform condition, published through a helper when needed:

         if c { parallel { prefix; then } } else { parallel { prefix; else } }

   - while: the condition must be evaluated by every thread each
     iteration; thread (0,..,0) stores its copy into a helper that
     decides the next iteration (Fig. 8):

         while { cond = parallel { prefix; K; if tid==0 store c };
                 load helper }
         do    { parallel { prefix; body } }

   The regions moved inside the new parallel loops may themselves still
   contain barriers; the cpuify driver re-processes them. *)

open Ir
open Analysis

exception Unsupported of string

let fail fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

let is_pure (op : Op.op) =
  match op.kind with
  | Op.Constant _ | Op.Binop _ | Op.Cmp _ | Op.Select | Op.Cast _ | Op.Math _
  | Op.Dim _ ->
    true
  | _ -> false

(* Split M's body into (prefix, C, suffix) around the unique
   barrier-containing top-level op. *)
let isolate_body (body : Op.op list) : (Op.op list * Op.op * Op.op list) option =
  let rec go pre = function
    | [] -> None
    | (c : Op.op) :: rest when Op.contains_barrier c ->
      if List.exists Op.contains_barrier rest then None
      else Some (List.rev pre, c, rest)
    | op :: rest -> go (op :: pre) rest
  in
  go [] body

(* Check the prefix/suffix movability conditions. *)
let check_movable (ctx : Effects.ctx) ~(c : Op.op) (prefix : Op.op list)
    (suffix : Op.op list) : unit =
  let c_effs = Effects.collect ctx [ c ] in
  let c_writes =
    List.filter (fun (a : Effects.access) -> a.Effects.acc_kind = Effects.Write) c_effs
  in
  List.iter
    (fun (op : Op.op) ->
      if is_pure op then ()
      else
        match op.kind with
        | Op.Load ->
          let effs = Effects.collect_op ctx ~pinned:Value.Set.empty op in
          if
            List.exists
              (fun r ->
                List.exists (fun w -> Effects.any_thread_conflict ctx r w) c_writes)
              effs
          then fail "prefix load conflicts with the isolated construct"
        | _ -> fail "prefix contains a non-pure, non-load op")
    prefix;
  List.iter
    (fun (op : Op.op) ->
      if is_pure op then ()
      else
        match op.kind with
        | Op.Store ->
          let effs = Effects.collect_op ctx ~pinned:Value.Set.empty op in
          if
            List.exists
              (fun w ->
                List.exists (fun e -> Effects.any_thread_conflict ctx w e) c_effs)
              effs
          then fail "suffix store conflicts with the isolated construct"
        | _ -> fail "suffix contains a non-pure, non-store op")
    suffix

(* Build [parallel ivs' { clone(prefix); clone(extra) }] with a fresh
   substitution seeded by ivs -> ivs'.  Returns (op, subst, ivs'). *)
let clone_parallel (m_par : Op.op) (prefix : Op.op list) (extra : Op.op list)
    : Op.op * Clone.subst * Value.t array =
  let ivs = m_par.Op.regions.(0).rargs in
  let subst = Clone.create_subst () in
  let ivs' =
    Array.map
      (fun (iv : Value.t) ->
        let iv' = Value.fresh ?name:iv.name iv.typ in
        Clone.add_subst subst ~from:iv ~to_:iv';
        iv')
      ivs
  in
  let body = Clone.clone_ops subst (prefix @ extra) in
  let p =
    Op.mk (Op.Parallel Op.Block) ~operands:m_par.Op.operands
      ~regions:[| Op.region ~args:ivs' body |]
  in
  (p, subst, ivs')

(* Emit [if (ivs' == 0) { stores }] — the thread-(0,0,0) publication used
   by the helper-variable trick. *)
let thread0_publish (seq : Builder.Seq.t) (ivs' : Value.t array)
    (stores : Op.op list) : unit =
  let c0 = Builder.Seq.emitv seq (Builder.const_int 0) in
  let conds =
    Array.to_list
      (Array.map (fun iv -> Builder.Seq.emitv seq (Builder.cmp Op.Eq iv c0)) ivs')
  in
  let all =
    match conds with
    | [] -> Builder.Seq.emitv seq (Builder.const_int ~dtype:Types.I1 1)
    | c :: rest ->
      List.fold_left
        (fun acc c' -> Builder.Seq.emitv seq (Builder.binop Op.And acc c'))
        c rest
  in
  ignore (Builder.Seq.emit seq (Builder.if_ all stores))

(* Publish per-thread values through rank-0 helpers so they become
   available outside the parallel loop.  Returns (ops before, loaded
   values) — the "before" ops include a full parallel loop executing the
   prefix and the thread-0 stores. *)
let publish_via_helpers (m_par : Op.op) (prefix : Op.op list)
    (values : Value.t list) : Op.op list * Value.t list =
  let out = Builder.Seq.create () in
  let helpers =
    List.map
      (fun (v : Value.t) ->
        let elem =
          match v.typ with
          | Types.Scalar d -> d
          | Types.Memref _ -> fail "cannot publish a memref through a helper"
        in
        Builder.Seq.emitv out (Builder.alloc elem [] []))
      values
  in
  let p, subst, ivs' = clone_parallel m_par prefix [] in
  let inner = Builder.Seq.create () in
  let stores =
    List.map2
      (fun v h -> Builder.store (Clone.lookup subst v) h [])
      values helpers
  in
  thread0_publish inner ivs' stores;
  p.Op.regions.(0).body <- p.Op.regions.(0).body @ Builder.Seq.to_list inner;
  ignore (Builder.Seq.emit out p);
  let loaded =
    List.map (fun h -> Builder.Seq.emitv out (Builder.load h [])) helpers
  in
  (Builder.Seq.to_list out, loaded)

(* Values among [vs] that are defined inside M (hence unavailable outside). *)
let inside_values (info : Info.t) (m_par : Op.op) (vs : Value.t list) :
  Value.t list =
  List.filter (fun v -> Info.defined_inside info ~container:m_par v) vs
  |> List.sort_uniq Value.compare

(* The suffix re-emitted as its own trailing parallel loop. *)
let suffix_loop (m_par : Op.op) (prefix : Op.op list) (suffix : Op.op list) :
  Op.op list =
  if suffix = [] then []
  else begin
    let p, _, _ = clone_parallel m_par prefix suffix in
    [ p ]
  end

(* --- the three interchanges --- *)

let interchange_for (info : Info.t) (m_par : Op.op) (prefix : Op.op list)
    (c : Op.op) (suffix : Op.op list) : Op.op list =
  let bounds = [ Op.for_lo c; Op.for_hi c; Op.for_step c ] in
  let need_helpers = inside_values info m_par bounds in
  let pre_ops, resolve =
    if need_helpers = [] then ([], fun v -> v)
    else begin
      let ops, loaded = publish_via_helpers m_par prefix need_helpers in
      let table = List.combine need_helpers loaded in
      (ops, fun v -> match List.assq_opt v table with Some l -> l | None -> v)
    end
  in
  let lo = resolve (Op.for_lo c)
  and hi = resolve (Op.for_hi c)
  and step = resolve (Op.for_step c) in
  let new_for =
    Builder.for_ ~lo ~hi ~step (fun iv ->
        let p, subst, _ = clone_parallel m_par prefix [] in
        (* the for iv is uniform: the inner body refers to the new iv *)
        Clone.add_subst subst ~from:(Op.for_iv c) ~to_:iv;
        let inner_body = Clone.clone_ops subst c.Op.regions.(0).body in
        p.Op.regions.(0).body <- p.Op.regions.(0).body @ inner_body;
        [ p ])
  in
  pre_ops @ [ new_for ] @ suffix_loop m_par prefix suffix

let interchange_if (info : Info.t) (m_par : Op.op) (prefix : Op.op list)
    (c : Op.op) (suffix : Op.op list) : Op.op list =
  let cond = c.Op.operands.(0) in
  let pre_ops, cond' =
    if inside_values info m_par [ cond ] = [] then ([], cond)
    else begin
      let ops, loaded = publish_via_helpers m_par prefix [ cond ] in
      (ops, List.hd loaded)
    end
  in
  let branch region_idx =
    if c.Op.regions.(region_idx).Op.body = [] then []
    else begin
      let p, subst, _ = clone_parallel m_par prefix [] in
      let body = Clone.clone_ops subst c.Op.regions.(region_idx).Op.body in
      p.Op.regions.(0).body <- p.Op.regions.(0).body @ body;
      [ p ]
    end
  in
  let new_if = Builder.if_ cond' (branch 0) ~else_:(branch 1) in
  pre_ops @ [ new_if ] @ suffix_loop m_par prefix suffix

let interchange_while (_info : Info.t) (m_par : Op.op) (prefix : Op.op list)
    (c : Op.op) (suffix : Op.op list) : Op.op list =
  (* helper for the loop condition (Fig. 8) *)
  let out = Builder.Seq.create () in
  let helper = Builder.Seq.emitv out (Builder.alloc Types.I1 [] []) in
  let cond_region_body =
    (* parallel { prefix; K; if tid==0 store c }; %c = load helper;
       condition %c *)
    let p, subst, ivs' = clone_parallel m_par prefix [] in
    let k_ops = c.Op.regions.(0).Op.body in
    (* the Condition terminator carries the per-thread condition value *)
    let rec split_cond acc = function
      | [] -> fail "while cond region has no scf.condition"
      | [ ({ Op.kind = Op.Condition; _ } as last) ] -> (List.rev acc, last)
      | op :: rest -> split_cond (op :: acc) rest
    in
    let k_body, cond_op = split_cond [] k_ops in
    let cloned_k = Clone.clone_ops subst k_body in
    let cv = Clone.lookup subst cond_op.Op.operands.(0) in
    let inner = Builder.Seq.create () in
    thread0_publish inner ivs' [ Builder.store cv helper [] ];
    p.Op.regions.(0).body <-
      p.Op.regions.(0).body @ cloned_k @ Builder.Seq.to_list inner;
    let ld = Builder.load helper [] in
    [ p; ld; Builder.condition (Op.result ld) ]
  in
  let body_region_body =
    if c.Op.regions.(1).Op.body = [] then []
    else begin
      let p, subst, _ = clone_parallel m_par prefix [] in
      let body = Clone.clone_ops subst c.Op.regions.(1).Op.body in
      p.Op.regions.(0).body <- p.Op.regions.(0).body @ body;
      [ p ]
    end
  in
  let new_while =
    Op.mk Op.While
      ~regions:[| Op.region cond_region_body; Op.region body_region_body |]
  in
  Builder.Seq.to_list out @ [ new_while ] @ suffix_loop m_par prefix suffix

(* --- entry point --- *)

(* Interchange M with the single barrier-containing op of its body.
   Returns the replacement sequence, or None when the body shape does not
   match (caller should then fall back to isolation splitting). *)
let interchange (modul : Op.op) (m_par : Op.op) : Op.op list option =
  match isolate_body m_par.Op.regions.(0).body with
  | None -> None
  | Some (prefix, c, suffix) ->
    let info = Info.build modul in
    let ctx = Effects.make_ctx ~modul ~par:m_par info in
    check_movable ctx ~c prefix suffix;
    (match c.Op.kind with
     | Op.For -> Some (interchange_for info m_par prefix c suffix)
     | Op.If -> Some (interchange_if info m_par prefix c suffix)
     | Op.While -> Some (interchange_while info m_par prefix c suffix)
     | _ -> fail "cannot interchange a parallel loop with %s"
              (Printer.op_to_string c |> String.trim))

(* Structured-result boundary for the pass manager: the same rewrite,
   with [Unsupported] reified instead of escaping as an exception. *)
let interchange_result (modul : Op.op) (m_par : Op.op) :
  (Op.op list option, string) result =
  match interchange modul m_par with
  | v -> Ok v
  | exception Unsupported msg -> Error msg
