(** Crash bundles: self-contained failure reports written by the pass
    manager on stage failure, replayable with
    [polygeist-cpu --replay <bundle>].

    A bundle records the failing stage and degradation-ladder rung, the
    exception and backtrace, the pipeline options and complete fault
    plan, a CLI repro line, the original source and the pre-stage IR
    dump.  The pipeline is deterministic, so re-running the embedded
    source under the recorded options and fault plan reproduces the
    failure. *)

type t =
  { stage : string
  ; stage_index : int (** occurrence index within the pipeline *)
  ; rung : string (** ladder rung being attempted when it failed *)
  ; exn_text : string
  ; backtrace : string
  ; repro : string (** CLI line that led here *)
  ; options : Cpuify.options
  ; faults : Fault.plan
  ; source : string (** original CUDA translation unit *)
  ; ir_before : string (** pre-stage IR dump *)
  }

val to_string : t -> string
val of_string : string -> (t, string) result

(** Serialize into [dir] (created if missing) as
    [crash-NNN-<stage>.bundle], NNN picked fresh; returns the path. *)
val write : dir:string -> t -> (string, string) result

val read : string -> (t, string) result

(**/**)

val options_to_string : Cpuify.options -> string
val options_of_string : string -> (Cpuify.options, string) result
