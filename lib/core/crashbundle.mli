(** Crash bundles: self-contained failure reports written by the pass
    manager on stage failure, replayable with
    [polygeist-cpu --replay <bundle>].

    A bundle records the failing stage and degradation-ladder rung, the
    exception and backtrace, the pipeline options and complete fault
    plan, a CLI repro line, the original source and the pre-stage IR
    dump.  The pipeline is deterministic, so re-running the embedded
    source under the recorded options and fault plan reproduces the
    failure. *)

(** Runtime-side configuration recorded since format v2, so runtime and
    fuzz-oracle failures replay under the exact execution setup that
    produced them (plain strings/ints: Core does not depend on
    Runtime). *)
type runtime_cfg =
  { rexec : string (** ["interp"] or ["parallel"] *)
  ; rdomains : int
  ; rschedule : string (** ["static"], ["dynamic"] or ["guided"] *)
  ; rchunk : int option
  ; rseed : int option (** fuzz generator seed, when applicable *)
  ; rtimeout_ms : int option
  }

(** Serving-side job context recorded since format v3: wall-clock of the
    failing attempt, retries already burned and the admission-queue
    depth at failure (plain ints: Core does not depend on Serve). *)
type serve_cfg =
  { sduration_ms : int (** wall-clock of the failing attempt *)
  ; sretries : int (** retries already performed when it failed *)
  ; squeue_depth : int (** admission-queue depth at failure *)
  }

type t =
  { version : int (** bundle format version this file was parsed from *)
  ; stage : string
  ; stage_index : int (** occurrence index within the pipeline *)
  ; rung : string (** ladder rung being attempted when it failed *)
  ; exn_text : string
  ; backtrace : string
  ; repro : string (** CLI line that led here *)
  ; options : Cpuify.options
  ; faults : Fault.plan
  ; runtime : runtime_cfg option
    (** [None] in v1 bundles and pure pass-pipeline failures *)
  ; serve : serve_cfg option
    (** [None] in v1/v2 bundles and one-shot (non-daemon) failures *)
  ; source : string (** original CUDA translation unit *)
  ; ir_before : string (** pre-stage IR dump *)
  }

(** The format version {!to_string}/{!write} emit (3).  {!of_string}
    also accepts v2 bundles (no [serve] line) and v1 bundles (no
    [runtime] line either). *)
val current_version : int

val to_string : t -> string
val of_string : string -> (t, string) result

(** Serialize into [dir] (created if missing) as
    [crash-NNN-<stage>.bundle], NNN picked fresh; returns the path. *)
val write : dir:string -> t -> (string, string) result

val read : string -> (t, string) result

(**/**)

val options_to_string : Cpuify.options -> string
val options_of_string : string -> (Cpuify.options, string) result
val runtime_to_string : runtime_cfg -> string
val runtime_of_string : string -> (runtime_cfg, string) result
val serve_to_string : serve_cfg -> string
val serve_of_string : string -> (serve_cfg, string) result
