(** Parallel loop interchange (Sec. III-B2): moving a block-parallel loop
    inside the single barrier-containing construct of its body — a serial
    [for] (uniform bounds, published by thread (0,..,0) through helper
    memrefs when computed per-thread), an [if] (uniform condition,
    likewise), or a [while] (the Fig. 8 helper-variable pattern). *)

exception Unsupported of string

(** [interchange modul par] rewrites [par]; [None] when the body shape
    does not match (caller falls back to isolation splitting).
    @raise Unsupported when the prefix/suffix cannot legally move. *)
val interchange : Ir.Op.op -> Ir.Op.op -> Ir.Op.op list option

(** {!interchange} with [Unsupported] reified as [Error] — the
    structured boundary the fault-tolerant pass manager consumes. *)
val interchange_result :
  Ir.Op.op -> Ir.Op.op -> (Ir.Op.op list option, string) result
