(* A cooperative step budget for pass execution.

   The fault-tolerant pass manager runs every stage under a fuel budget so
   a diverging fixpoint (or an injected `exhaust` fault) surfaces as a
   catchable [Exhausted] instead of a hang.  Budgets are dynamically
   scoped: [with_budget] installs one for the extent of a callback and
   restores the previous scope on the way out, so nested stages compose.
   Long-running passes cooperate by calling [tick] at each iteration of
   their driving loop; outside any [with_budget] scope ticking is free.

   The scope is DOMAIN-LOCAL: the compile service runs one job per
   executor domain, and a budget installed by one lane must never leak
   into (or be exhausted by) a job running concurrently on another. *)

exception Exhausted of string

(* [None] = unlimited (the default, outside any pass-manager scope).
   One cell per domain, so concurrent executors have independent
   budgets. *)
let remaining : int ref option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let tick (what : string) : unit =
  match !(Domain.DLS.get remaining) with
  | None -> ()
  | Some r ->
    decr r;
    if !r < 0 then
      raise (Exhausted (Printf.sprintf "%s: fuel budget exhausted" what))

let with_budget (n : int) (f : unit -> 'a) : 'a =
  let cell = Domain.DLS.get remaining in
  let saved = !cell in
  cell := Some (ref n);
  Fun.protect ~finally:(fun () -> cell := saved) f

let unlimited (f : unit -> 'a) : 'a =
  let cell = Domain.DLS.get remaining in
  let saved = !cell in
  cell := None;
  Fun.protect ~finally:(fun () -> cell := saved) f
