(* Analysis-guided kernel auto-repair.

   The search space is the GPURepair one restricted to barriers: insert
   a [polygeist.barrier] (CUDA __syncthreads) at a legal separation
   point of a racing pair, or delete / hoist a divergent barrier out of
   its thread-dependent construct.  Candidates come straight from the
   sanitizer's structured findings:

     - each definite race ({!Race.findings}) contributes one insertion
       per {!Mhp.separation_points} point, already ranked best-first
       (the point just before the later access of the pair, i.e. the
       closest interval split);
     - each divergent barrier ({!Divergence.findings}) contributes a
       hoist past its OUTERMOST thread-dependent ancestor (re-insert
       after it, then the before-it variant) and a plain deletion.

   The search is greedy with backtracking: candidates are tried in rank
   order under {!Passmgr.with_rollback}; one is kept only when it
   strictly decreases the sanitizer error count (so progress is
   monotone and the edit sequence minimal for the greedy order), then
   the search recurses on the residual errors.  A branch that dead-ends
   rolls back — [with_rollback] restores the pre-candidate tree — and
   the next candidate is tried.  Rollback transplants fresh clones, so
   the candidate list is RE-PROPOSED from the live tree before every
   speculative application and candidates are addressed by rank index,
   never by retained op references.

   A sanitizer-clean tree is only accepted once the caller's [validate]
   hook (the differential oracle, in the driver) passes; any failure
   restores the original module bit-for-bit. *)

open Ir
open Analysis

type edit =
  { e_action : [ `Insert | `Delete ]
  ; e_loc : Srcloc.t option
  ; e_text : string
  }

let edit_to_string ~file (e : edit) =
  Printf.sprintf "%s: %s" (Diag.loc_to_string ~file e.e_loc) e.e_text

type status =
  | Clean
  | Repaired of edit list
  | Failed of string

type stats =
  { candidates_tried : int
  ; rechecks : int
  }

type outcome =
  { status : status
  ; stats : stats
  }

(* --- candidate edits over the live tree --- *)

type action =
  | Ins of Op.region * int (* insert a barrier at body index *)
  | Del of Op.region * Op.op (* delete this barrier from its region *)

type candidate =
  { c_actions : action list (* applied in order *)
  ; c_edits : edit list (* matching patch records *)
  }

let insert_at (r : Op.region) (i : int) (b : Op.op) : unit =
  let rec go k l =
    if k <= 0 then b :: l
    else
      match l with
      | [] -> [ b ]
      | x :: tl -> x :: go (k - 1) tl
  in
  r.Op.body <- go i r.Op.body

let delete_in (r : Op.region) (o : Op.op) : unit =
  r.Op.body <- List.filter (fun x -> x.Op.oid <> o.Op.oid) r.Op.body

let apply (c : candidate) : unit =
  List.iter
    (function
      | Ins (r, i) -> insert_at r i (Op.mk Op.Barrier)
      | Del (r, o) -> delete_in r o)
    c.c_actions

(* The region of [p]'s regions holding [o], and [o]'s index in it. *)
let container (info : Info.t) (o : Op.op) : (Op.region * int) option =
  match Info.parent info o with
  | None -> None
  | Some p ->
    let found = ref None in
    Array.iter
      (fun (r : Op.region) ->
        if !found = None then
          List.iteri
            (fun i (x : Op.op) ->
              if x.Op.oid = o.Op.oid && !found = None then found := Some (r, i))
            r.Op.body)
      p.Op.regions;
    !found

let block_pars (m : Op.op) : Op.op list =
  let acc = ref [] in
  Op.iter
    (fun o ->
      match o.Op.kind with
      | Op.Parallel Op.Block -> acc := o :: !acc
      | _ -> ())
    m;
  List.rev !acc

(* Source location an insertion at (r, i) lands before, for the patch
   line; falls back to [fb] past the end of the body. *)
let loc_at (r : Op.region) (i : int) (fb : Srcloc.t option) : Srcloc.t option =
  match List.nth_opt r.Op.body i with
  | Some o -> if o.Op.loc <> None then o.Op.loc else fb
  | None -> fb

(* Identity of a candidate's effect on the tree, for deduplication:
   several findings routinely propose the same insertion point.
   Regions carry no ids, so number them by physical equality within
   one [propose] pass. *)
let action_keys () =
  let regs = ref [] in
  let rid (r : Op.region) =
    match List.find_opt (fun (r', _) -> r' == r) !regs with
    | Some (_, i) -> i
    | None ->
      let i = List.length !regs in
      regs := (r, i) :: !regs;
      i
  in
  fun (c : candidate) ->
    List.map
      (function
        | Ins (r, i) -> `I (rid r, i)
        | Del (_, o) -> `D o.Op.oid)
      c.c_actions

(* One ranked candidate group per divergent barrier, hoisting past its
   OUTERMOST thread-dependent ancestor — re-insert after it (rank 0),
   before it (rank 1), or plain deletion (rank 2).  The findings list
   ancestors innermost-first, so the last anchor per barrier wins. *)
let div_candidates (info : Info.t) (mhp : Mhp.t) : (int * candidate) list =
  let anchor_of : (int, Op.op) Hashtbl.t = Hashtbl.create 8 in
  let barriers = ref [] in
  List.iter
    (fun (f : Divergence.finding) ->
      let k = f.Divergence.dv_barrier.Op.oid in
      if not (Hashtbl.mem anchor_of k) then
        barriers := f.Divergence.dv_barrier :: !barriers;
      Hashtbl.replace anchor_of k f.Divergence.dv_anchor)
    (Divergence.findings mhp);
  List.concat_map
    (fun (b : Op.op) ->
      let anchor = Hashtbl.find anchor_of b.Op.oid in
      match container info b, container info anchor with
      | Some (rb, _), Some (ra, ia) ->
        let del = Del (rb, b) in
        let del_edit =
          { e_action = `Delete
          ; e_loc = b.Op.loc
          ; e_text = "delete this __syncthreads() (not all threads reach it)"
          }
        in
        let hoist i =
          { c_actions = [ del; Ins (ra, i) ]
          ; c_edits =
              [ del_edit
              ; { e_action = `Insert
                ; e_loc = loc_at ra i anchor.Op.loc
                ; e_text =
                    "insert __syncthreads() before this point (hoisted out \
                     of thread-dependent control flow)"
                }
              ]
          }
        in
        (* deleting [b] first never shifts [ia]: the barrier lives
           strictly inside the anchor's subtree, not in [ra] *)
        [ (0, hoist (ia + 1))
        ; (1, hoist ia)
        ; (2, { c_actions = [ del ]; c_edits = [ del_edit ] })
        ]
      | _ -> [])
    (List.rev !barriers)

(* All candidates of the module, best-first, from the live tree.
   Candidates are INTERLEAVED across findings by rank — every
   finding's rank-0 point precedes any finding's rank-1 point — so one
   pair with a long tail of mediocre points (a wrap-around race can
   have dozens) cannot starve the others within the search budget.
   Duplicates (the same edit proposed by several findings) are kept
   once, at their best rank.  Deterministic: driven by
   program-ordered findings and ranked separation points, so
   re-proposing after a rollback (which clones the tree but preserves
   structure and locations) yields the same list. *)
let propose (m : Op.op) : candidate list =
  let info = Info.build m in
  let ranked =
    List.concat_map
      (fun par ->
        let ctx = Effects.make_ctx ~modul:m ~par info in
        let mhp = Mhp.analyze ctx par in
        let race_cands =
          List.concat_map
            (fun (f : Race.finding) ->
              match f.Race.f_a, f.Race.f_b with
              | Some a, Some b ->
                List.map
                  (fun (pt : Mhp.point) ->
                    ( pt.Mhp.pt_rank
                    , { c_actions =
                          [ Ins (pt.Mhp.pt_region, pt.Mhp.pt_index) ]
                      ; c_edits =
                          [ { e_action = `Insert
                            ; e_loc = pt.Mhp.pt_loc
                            ; e_text =
                                "insert __syncthreads() before this point"
                            }
                          ]
                      } ))
                  (Mhp.separation_points mhp ~shifted:f.Race.f_shifted a b)
              | _ -> [])
            (Race.findings ~report_possible:true mhp)
        in
        let div_cands = div_candidates info mhp in
        race_cands @ div_cands)
      (block_pars m)
  in
  let sorted =
    List.stable_sort (fun (ra, _) (rb, _) -> compare ra rb) ranked
  in
  let key_of = action_keys () in
  let seen = Hashtbl.create 32 in
  List.filter_map
    (fun (_, c) ->
      let k = key_of c in
      if Hashtbl.mem seen k then None
      else begin
        Hashtbl.add seen k ();
        Some c
      end)
    sorted


(* --- the greedy backtracking search --- *)

(* The repair objective is CONSERVATIVE, GPUVerify-style: a kernel is
   only "repaired" when the sanitizer — with possible races surfaced —
   has nothing left to say about races or divergence.  A possible race
   (e.g. a rotated [s[(t+k) % T]] read, beyond the affine equality
   argument) is exactly the kind a missing barrier produces, so
   suppressing it would declare victory while the kernel still races.
   Non-race warnings stay out of the objective: barriers cannot fix
   them, and counting them would make progress impossible. *)
let target_diag (d : Diag.t) : bool =
  Diag.is_error d || d.Diag.check = "race"

let run ?(max_edits = 4) ?(max_candidates = 64)
    ?(validate = fun _ -> Ok ()) (m : Op.op) : outcome =
  let rechecks = ref 0 in
  let errors () =
    incr rechecks;
    List.filter target_diag (Kernelcheck.check_module ~report_possible:true m)
  in
  let tried = ref 0 in
  let stats () = { candidates_tried = !tried; rechecks = !rechecks } in
  match List.length (errors ()) with
  | 0 -> { status = Clean; stats = stats () }
  | n0 ->
    let initial = Clone.snapshot m in
    (* accepted candidates' edit groups, innermost (latest) first *)
    let groups : edit list list ref = ref [] in
    let rec search depth nerrs =
      if nerrs = 0 then true
      else if depth >= max_edits then false
      else begin
        let ncands = List.length (propose m) in
        let rec try_k k =
          if k >= ncands || !tried >= max_candidates then false
          else begin
            incr tried;
            let kept =
              Passmgr.with_rollback m (fun () ->
                (* re-propose from the live tree: any earlier rollback
                   invalidated retained region references *)
                match List.nth_opt (propose m) k with
                | None -> false
                | Some c ->
                  apply c;
                  let nerrs' = List.length (errors ()) in
                  if nerrs' >= nerrs then false
                  else begin
                    groups := c.c_edits :: !groups;
                    if search (depth + 1) nerrs' then true
                    else begin
                      (* dead end: with_rollback restores the tree;
                         drop the edit record too *)
                      groups := List.tl !groups;
                      false
                    end
                  end)
            in
            kept || try_k (k + 1)
          end
        in
        try_k 0
      end
    in
    if not (search 0 n0) then begin
      Clone.restore ~into:m initial;
      { status =
          Failed
            (Printf.sprintf
               "no barrier edit sequence fixes the %d sanitizer error%s \
                within budget (%d candidates tried)"
               n0
               (if n0 = 1 then "" else "s")
               !tried)
      ; stats = stats ()
      }
    end
    else begin
      match validate m with
      | Ok () ->
        { status = Repaired (List.concat (List.rev !groups))
        ; stats = stats ()
        }
      | Error why ->
        Clone.restore ~into:m initial;
        { status =
            Failed
              (Printf.sprintf
                 "sanitizer-clean repair rejected by validation: %s" why)
        ; stats = stats ()
        }
    end
