(* The barrier-lowering driver (-cpuify): repeatedly applies parallel loop
   splitting and interchange until no [polygeist.barrier] remains, then
   the program consists only of barrier-free parallel loops that any CPU
   backend can execute with plain work sharing.

   One step, for each block-parallel loop that still contains a barrier:
   - a barrier at the top level of the loop body: split there (Sec. III-B1);
   - otherwise, if exactly one top-level op contains barriers and the rest
     of the body is movable prefix/suffix: interchange (Sec. III-B2);
   - otherwise: isolation — insert fictitious barriers around the first
     barrier-containing op (always legal: extra barriers only reduce
     parallelism), which the next iteration splits.

   Options mirror the paper's ablations: [use_mincut] selects min-cut
   cache minimization vs. caching every live value; [pre_optimize] runs
   barrier elimination and mem2reg first (always on in the real pipeline,
   off for the "fission at source level" comparison).

   Failures are reified: [run_result] returns a structured [error]
   (non-convergence, an unliftable barrier with its source location and
   the count of barriers still standing, ...) so the fault-tolerant pass
   manager can roll back and degrade instead of dying; [run] keeps the
   historical [Stuck]-raising interface on top of it. *)

open Ir

exception Stuck of string

type error =
  | Did_not_converge of { budget : int }
  | Cannot_lower of
      { op_text : string
      ; loc : Srcloc.t option
      ; remaining_barriers : int
      }
  | Unsupported of
      { what : string
      ; loc : Srcloc.t option
      ; remaining_barriers : int
      }
  | Barriers_remain of { remaining_barriers : int }

let count_barriers (op : Op.op) : int =
  let n = ref 0 in
  Op.iter (fun o -> if o.Op.kind = Op.Barrier then incr n) op;
  !n

(* Source location of the first remaining barrier that carries one — the
   anchor for `file:line:col` in Stuck/degradation diagnostics. *)
let first_barrier_loc (op : Op.op) : Srcloc.t option =
  let found = ref None in
  Op.iter (fun o ->
      if o.Op.kind = Op.Barrier && !found = None then begin
        match o.Op.loc with
        | Some l when Srcloc.is_known l -> found := Some l
        | _ -> ()
      end)
    op;
  !found

let loc_str = function
  | Some l -> Srcloc.to_string l
  | None -> "?:?"

let error_to_string = function
  | Did_not_converge { budget } ->
    Printf.sprintf "cpuify did not converge within %d fixpoint iterations"
      budget
  | Cannot_lower { op_text; loc; remaining_barriers } ->
    Printf.sprintf
      "cannot lower barrier at %s (%d barrier(s) remain):\n%s"
      (loc_str loc) remaining_barriers op_text
  | Unsupported { what; loc; remaining_barriers } ->
    Printf.sprintf
      "barrier split unsupported at %s (%d barrier(s) remain): %s"
      (loc_str loc) remaining_barriers what
  | Barriers_remain { remaining_barriers } ->
    Printf.sprintf "%d barrier(s) remain after cpuify" remaining_barriers

let default_budget = 10_000

exception Fail of error

let insert_isolation_barriers (par : Op.op) : bool =
  let body = par.Op.regions.(0).body in
  let rec go pre = function
    | [] -> None
    | (c : Op.op) :: rest when Op.contains_barrier c ->
      let mid = if pre = [] then [] else [ Builder.barrier () ] in
      let post = if rest = [] then [] else [ Builder.barrier () ] in
      if mid = [] && post = [] then None
      else Some (List.rev pre @ mid @ (c :: post) @ rest)
    | op :: rest -> go (op :: pre) rest
  in
  match go [] body with
  | Some body' ->
    par.Op.regions.(0).body <- body';
    true
  | None -> false

let run_result ?(use_mincut = true) ?(budget = default_budget) (m : Op.op) :
  (unit, error) result =
  Split.reset_stats ();
  let fuel = ref budget in
  try
    let changed = ref true in
    while !changed do
      changed := false;
      decr fuel;
      Fuel.tick "cpuify";
      if !fuel <= 0 then raise (Fail (Did_not_converge { budget }));
      let rec visit (op : Op.op) : Op.op list =
        Array.iter
          (fun (r : Op.region) -> r.body <- List.concat_map visit r.body)
          op.Op.regions;
        match op.Op.kind with
        | Op.Parallel Op.Block when Op.contains_barrier op -> begin
          match Split.top_barrier_index op.Op.regions.(0).body with
          | Some _ -> begin
            match Split.split_result ~use_mincut op with
            | Ok (Some ops) ->
              changed := true;
              ops
            | Ok None -> [ op ]
            | Error what ->
              raise
                (Fail
                   (Unsupported
                      { what
                      ; loc = first_barrier_loc op
                      ; remaining_barriers = count_barriers m
                      }))
          end
          | None -> begin
            (* interchange when the body shape allows it; otherwise isolate
               the offending construct with fictitious barriers so the next
               round splits around it *)
            match Interchange.interchange_result m op with
            | Ok (Some ops) ->
              changed := true;
              ops
            | Ok None | Error _ ->
              if insert_isolation_barriers op then begin
                changed := true;
                [ op ]
              end
              else
                raise
                  (Fail
                     (Cannot_lower
                        { op_text = Printer.op_to_string op
                        ; loc = first_barrier_loc op
                        ; remaining_barriers = count_barriers m
                        }))
          end
        end
        | _ -> [ op ]
      in
      match visit m with [ _ ] -> () | _ -> ()
    done;
    (* Nothing may be left synchronizing. *)
    if Op.contains_barrier m then
      Error (Barriers_remain { remaining_barriers = count_barriers m })
    else Ok ()
  with Fail e -> Error e

let run ?use_mincut ?budget (m : Op.op) : unit =
  match run_result ?use_mincut ?budget m with
  | Ok () -> ()
  | Error e -> raise (Stuck (error_to_string e))

(* The standard pipeline used before lowering to OpenMP: generic cleanups,
   barrier-specific optimizations, then barrier lowering. *)
type options =
  { opt_mincut : bool (* min-cut cache minimization (ablation: mincut) *)
  ; opt_barrier_elim : bool (* redundant-barrier elimination *)
  ; opt_mem2reg : bool (* forwarding across barriers *)
  ; opt_licm : bool (* parallel loop-invariant code motion *)
  ; opt_budget : int (* cpuify fixpoint iteration budget *)
  }

let default_options =
  { opt_mincut = true
  ; opt_barrier_elim = true
  ; opt_mem2reg = true
  ; opt_licm = true
  ; opt_budget = default_budget
  }

let pipeline_stages ?(options = default_options) () :
  (string * (Op.op -> unit)) list =
  let opt name enabled fn = if enabled then [ (name, fn) ] else [] in
  [ ("canonicalize", Canonicalize.run); ("cse", Cse.run) ]
  @ opt "mem2reg" options.opt_mem2reg (fun m -> ignore (Mem2reg.run m))
  @ [ ("canonicalize", Canonicalize.run); ("cse", Cse.run) ]
  @ opt "licm" options.opt_licm (fun m -> ignore (Licm.run m))
  @ opt "barrier-elim" options.opt_barrier_elim (fun m ->
        ignore (Barrier_elim.run m);
        ignore (Barrier_elim.hoist_edge_barriers m);
        ignore (Barrier_elim.run m))
  @ [ ("cpuify", run ~use_mincut:options.opt_mincut ~budget:options.opt_budget)
    ; ("canonicalize", Canonicalize.run)
    ; ("cse", Cse.run)
    ]
  @ opt "mem2reg" options.opt_mem2reg (fun m -> ignore (Mem2reg.run m))
  @ opt "licm" options.opt_licm (fun m -> ignore (Licm.run m))
  @ [ ("canonicalize", Canonicalize.run) ]

(* Unique stage names, in pipeline order — the vocabulary --inject-fault
   and random fault plans draw from. *)
let stage_names ?options () : string list =
  List.fold_left
    (fun acc (name, _) -> if List.mem name acc then acc else name :: acc)
    []
    (pipeline_stages ?options ())
  |> List.rev

let pipeline ?options (m : Op.op) : unit =
  List.iter (fun (_, f) -> f m) (pipeline_stages ?options ())
