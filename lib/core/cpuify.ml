(* The barrier-lowering driver (-cpuify): repeatedly applies parallel loop
   splitting and interchange until no [polygeist.barrier] remains, then
   the program consists only of barrier-free parallel loops that any CPU
   backend can execute with plain work sharing.

   One step, for each block-parallel loop that still contains a barrier:
   - a barrier at the top level of the loop body: split there (Sec. III-B1);
   - otherwise, if exactly one top-level op contains barriers and the rest
     of the body is movable prefix/suffix: interchange (Sec. III-B2);
   - otherwise: isolation — insert fictitious barriers around the first
     barrier-containing op (always legal: extra barriers only reduce
     parallelism), which the next iteration splits.

   Options mirror the paper's ablations: [use_mincut] selects min-cut
   cache minimization vs. caching every live value; [pre_optimize] runs
   barrier elimination and mem2reg first (always on in the real pipeline,
   off for the "fission at source level" comparison). *)

open Ir

exception Stuck of string

let insert_isolation_barriers (par : Op.op) : bool =
  let body = par.Op.regions.(0).body in
  let rec go pre = function
    | [] -> None
    | (c : Op.op) :: rest when Op.contains_barrier c ->
      let mid = if pre = [] then [] else [ Builder.barrier () ] in
      let post = if rest = [] then [] else [ Builder.barrier () ] in
      if mid = [] && post = [] then None
      else Some (List.rev pre @ mid @ (c :: post) @ rest)
    | op :: rest -> go (op :: pre) rest
  in
  match go [] body with
  | Some body' ->
    par.Op.regions.(0).body <- body';
    true
  | None -> false

let run ?(use_mincut = true) (m : Op.op) : unit =
  Split.reset_stats ();
  let budget = ref 10_000 in
  let changed = ref true in
  while !changed do
    changed := false;
    decr budget;
    if !budget <= 0 then raise (Stuck "cpuify did not converge");
    let rec visit (op : Op.op) : Op.op list =
      Array.iter
        (fun (r : Op.region) -> r.body <- List.concat_map visit r.body)
        op.Op.regions;
      match op.Op.kind with
      | Op.Parallel Op.Block when Op.contains_barrier op -> begin
        match Split.top_barrier_index op.Op.regions.(0).body with
        | Some _ -> begin
          match Split.split_parallel ~use_mincut op with
          | Some ops ->
            changed := true;
            ops
          | None -> [ op ]
        end
        | None -> begin
          (* interchange when the body shape allows it; otherwise isolate
             the offending construct with fictitious barriers so the next
             round splits around it *)
          match Interchange.interchange m op with
          | Some ops ->
            changed := true;
            ops
          | None | (exception Interchange.Unsupported _) ->
            if insert_isolation_barriers op then begin
              changed := true;
              [ op ]
            end
            else
              raise
                (Stuck
                   (Printf.sprintf "cannot lower barrier in:\n%s"
                      (Printer.op_to_string op)))
        end
      end
      | _ -> [ op ]
    in
    match visit m with [ _ ] -> () | _ -> ()
  done;
  (* Nothing may be left synchronizing. *)
  if Op.contains_barrier m then raise (Stuck "barriers remain after cpuify")

(* The standard pipeline used before lowering to OpenMP: generic cleanups,
   barrier-specific optimizations, then barrier lowering. *)
type options =
  { opt_mincut : bool (* min-cut cache minimization (ablation: mincut) *)
  ; opt_barrier_elim : bool (* redundant-barrier elimination *)
  ; opt_mem2reg : bool (* forwarding across barriers *)
  ; opt_licm : bool (* parallel loop-invariant code motion *)
  }

let default_options =
  { opt_mincut = true
  ; opt_barrier_elim = true
  ; opt_mem2reg = true
  ; opt_licm = true
  }

let pipeline_stages ?(options = default_options) () :
  (string * (Op.op -> unit)) list =
  let opt name enabled fn = if enabled then [ (name, fn) ] else [] in
  [ ("canonicalize", Canonicalize.run); ("cse", Cse.run) ]
  @ opt "mem2reg" options.opt_mem2reg (fun m -> ignore (Mem2reg.run m))
  @ [ ("canonicalize", Canonicalize.run); ("cse", Cse.run) ]
  @ opt "licm" options.opt_licm (fun m -> ignore (Licm.run m))
  @ opt "barrier-elim" options.opt_barrier_elim (fun m ->
        ignore (Barrier_elim.run m);
        ignore (Barrier_elim.hoist_edge_barriers m);
        ignore (Barrier_elim.run m))
  @ [ ("cpuify", run ~use_mincut:options.opt_mincut)
    ; ("canonicalize", Canonicalize.run)
    ; ("cse", Cse.run)
    ]
  @ opt "mem2reg" options.opt_mem2reg (fun m -> ignore (Mem2reg.run m))
  @ opt "licm" options.opt_licm (fun m -> ignore (Licm.run m))
  @ [ ("canonicalize", Canonicalize.run) ]

let pipeline ?options (m : Op.op) : unit =
  List.iter (fun (_, f) -> f m) (pipeline_stages ?options ())
