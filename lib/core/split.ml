(* Parallel loop splitting (Sec. III-B1): fission of a block-parallel loop
   at a top-level barrier.

     parallel { A; barrier; B }   ==>   parallel { A; <stores> }
                                        parallel { <loads/recompute>; B }

   SSA values defined in A and used in B must cross the fission in memory
   or be recomputed.  A min vertex cut over the SSA graph (sources:
   non-recomputable definitions such as loads and calls; sinks: the values
   B uses) picks the cheapest set to cache — Fig. 6's example stores the
   two loaded values and recomputes the three arithmetic results.

   Thread-local allocas that would have to survive the fission are first
   expanded into per-thread slabs allocated outside the loop (one extra
   dimension per thread iv), the standard expansion also used by VGPU. *)

open Ir

exception Unsupported of string

let fail fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

let is_pure (op : Op.op) =
  match op.kind with
  | Op.Constant _ | Op.Binop _ | Op.Cmp _ | Op.Select | Op.Cast _ | Op.Math _
  | Op.Dim _ ->
    true
  | _ -> false

(* --- alloca expansion --- *)

(* Hoist every top-level alloca/alloc of [par]'s body out of the loop,
   adding one leading dimension per thread iv; loads/stores through it get
   the thread ivs prepended.  Returns the ops to place before the loop. *)
let expand_allocas (par : Op.op) : Op.op list =
  let body = par.Op.regions.(0).body in
  let ivs = par.Op.regions.(0).rargs in
  let n = Op.par_dims par in
  let pre = Builder.Seq.create () in
  let emitv op = Builder.Seq.emitv pre op in
  (* iteration extents of the parallel loop *)
  let extents =
    lazy
      (List.init n (fun i ->
           let lo = Op.par_lo par i in
           let hi = Op.par_hi par i in
           let step = Op.par_step par i in
           let d = emitv (Builder.binop Op.Sub hi lo) in
           let sm1 =
             emitv
               (Builder.binop Op.Add d
                  (emitv
                     (Builder.binop Op.Sub step
                        (emitv (Builder.const_int 1)))))
           in
           emitv (Builder.binop Op.Div sm1 step)))
  in
  let expanded = ref [] in
  let new_body =
    List.filter_map
      (fun (op : Op.op) ->
        match op.Op.kind with
        | Op.Alloca | Op.Alloc -> begin
          match (Op.result op).typ with
          | Types.Memref { elem; shape; _ } ->
            let dyn = Array.to_list op.Op.operands in
            let slab =
              Builder.alloc ~space:Types.Local elem
                (List.init n (fun _ -> None) @ shape)
                (Lazy.force extents @ dyn)
            in
            ignore (Builder.Seq.emit pre slab);
            expanded := (Op.result op, Op.result slab) :: !expanded;
            None
          | Types.Scalar _ -> Some op
        end
        | _ -> Some op)
      body
  in
  if !expanded = [] then []
  else begin
    (* rewrite loads/stores through the expanded bases; drop their
       deallocs; reject any other kind of use *)
    let lookup v = List.assq_opt v !expanded in
    let prepend_ivs idxs = Array.append (Array.copy ivs) idxs in
    let rec rw (o : Op.op) : Op.op list =
      Array.iter
        (fun (r : Op.region) -> r.body <- List.concat_map rw r.body)
        o.Op.regions;
      match o.Op.kind with
      | Op.Load when lookup o.Op.operands.(0) <> None ->
        let slab = Option.get (lookup o.Op.operands.(0)) in
        o.Op.operands <-
          Array.append [| slab |]
            (prepend_ivs (Array.sub o.Op.operands 1 (Array.length o.Op.operands - 1)));
        [ o ]
      | Op.Store when lookup o.Op.operands.(1) <> None ->
        let slab = Option.get (lookup o.Op.operands.(1)) in
        o.Op.operands <-
          Array.append
            [| o.Op.operands.(0); slab |]
            (prepend_ivs (Array.sub o.Op.operands 2 (Array.length o.Op.operands - 2)));
        [ o ]
      | Op.Dealloc when lookup o.Op.operands.(0) <> None -> []
      | _ ->
        Array.iter
          (fun v ->
            if lookup v <> None then
              fail "alloca escapes through a non-load/store use")
          o.Op.operands;
        [ o ]
    in
    par.Op.regions.(0).body <- List.concat_map rw new_body;
    Builder.Seq.to_list pre
  end

(* --- the split itself --- *)

(* Index of the first top-level barrier in a region body. *)
let top_barrier_index (body : Op.op list) : int option =
  let rec go i = function
    | [] -> None
    | { Op.kind = Op.Barrier; _ } :: _ -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 body

type split_stats =
  { mutable cached_values : int
  ; mutable recomputed_ops : int
  }

let stats = { cached_values = 0; recomputed_ops = 0 }

let reset_stats () =
  stats.cached_values <- 0;
  stats.recomputed_ops <- 0

(* Split [par] at its first top-level barrier.  Returns the replacement op
   sequence, or None if there is no top-level barrier. *)
let split_parallel ~(use_mincut : bool) (par : Op.op) : Op.op list option =
  match top_barrier_index par.Op.regions.(0).body with
  | None -> None
  | Some bi ->
    ignore bi;
    let pre_allocs = expand_allocas par in
    (* positions may have shifted: allocas were removed from the body *)
    let body = par.Op.regions.(0).body in
    let bi =
      match top_barrier_index body with Some i -> i | None -> assert false
    in
    let rec take k = function
      | [] -> ([], [])
      | l when k = 0 -> ([], l)
      | x :: rest ->
        let a, b = take (k - 1) rest in
        (x :: a, b)
    in
    let a_ops, rest = take bi body in
    let b_ops = match rest with _barrier :: b -> b | [] -> [] in
    let ivs = par.Op.regions.(0).rargs in
    let n = Op.par_dims par in
    let lbs = List.init n (Op.par_lo par) in
    let ubs = List.init n (Op.par_hi par) in
    let steps = List.init n (Op.par_step par) in
    (* values defined at the top level of A *)
    let defined_in_a = Value.Tbl.create 16 in
    List.iter
      (fun (o : Op.op) ->
        Array.iter (fun v -> Value.Tbl.replace defined_in_a v o) o.Op.results)
      a_ops;
    (* values B needs from A *)
    let b_free = Rewrite.free_values b_ops in
    let need =
      Value.Set.filter (fun v -> Value.Tbl.mem defined_in_a v) b_free
    in
    let pre = Builder.Seq.create () in
    let emit_pre op = Builder.Seq.emit pre op in
    let stored, recompute =
      if Value.Set.is_empty need then (Value.Set.empty, Value.Set.empty)
      else if not use_mincut then (need, Value.Set.empty)
      else begin
        (* backward closure over operands of A-defined values *)
        let closure = Value.Tbl.create 16 in
        let rec close v =
          if not (Value.Tbl.mem closure v) then begin
            match Value.Tbl.find_opt defined_in_a v with
            | None -> () (* free: defined outside A or an iv *)
            | Some def ->
              Value.Tbl.replace closure v def;
              Array.iter close def.Op.operands
          end
        in
        Value.Set.iter close need;
        let nodes = Value.Tbl.fold (fun v _ acc -> v :: acc) closure [] in
        let index = Value.Tbl.create 16 in
        List.iteri (fun i v -> Value.Tbl.replace index v i) nodes;
        let nn = List.length nodes in
        (* node 2i = v_in, 2i+1 = v_out; s = 2nn, t = 2nn+1 *)
        let g = Mincut.create ~nnodes:((2 * nn) + 2) in
        let s = 2 * nn and t = (2 * nn) + 1 in
        List.iteri
          (fun i v ->
            let def = Value.Tbl.find closure v in
            Mincut.add_edge g (2 * i) ((2 * i) + 1) ~cap:1;
            if not (is_pure def) then Mincut.add_edge g s (2 * i) ~cap:Mincut.inf;
            (* def -> use edges *)
            Array.iter
              (fun u ->
                match Value.Tbl.find_opt index u with
                | Some j -> Mincut.add_edge g ((2 * j) + 1) (2 * i) ~cap:Mincut.inf
                | None -> ())
              def.Op.operands;
            if Value.Set.mem v need then
              Mincut.add_edge g ((2 * i) + 1) t ~cap:Mincut.inf)
          nodes;
        ignore (Mincut.max_flow g ~s ~t);
        let reach = Mincut.residual_reachable g ~s in
        let stored = ref Value.Set.empty in
        List.iteri
          (fun i v ->
            if reach.(2 * i) && not reach.((2 * i) + 1) then
              stored := Value.Set.add v !stored)
          nodes;
        (* whatever is needed (transitively from `need`) but not stored
           gets recomputed *)
        let recompute = ref Value.Set.empty in
        let rec mark v =
          if
            (not (Value.Set.mem v !stored))
            && not (Value.Set.mem v !recompute)
          then begin
            match Value.Tbl.find_opt closure v with
            | None -> ()
            | Some def ->
              recompute := Value.Set.add v !recompute;
              Array.iter mark def.Op.operands
          end
        in
        Value.Set.iter mark need;
        (!stored, !recompute)
      end
    in
    stats.cached_values <- stats.cached_values + Value.Set.cardinal stored;
    (* extents for cache sizing *)
    let extents =
      List.map2
        (fun (lo : Value.t) (hi, step) ->
          let d = Builder.Seq.emitv pre (Builder.binop Op.Sub hi lo) in
          let c1 = Builder.Seq.emitv pre (Builder.const_int 1) in
          let sm1 = Builder.Seq.emitv pre (Builder.binop Op.Sub step c1) in
          let num = Builder.Seq.emitv pre (Builder.binop Op.Add d sm1) in
          Builder.Seq.emitv pre (Builder.binop Op.Div num step))
        lbs
        (List.combine ubs steps)
    in
    (* one cache per stored value *)
    let caches =
      Value.Set.fold
        (fun (v : Value.t) acc ->
          let elem =
            match v.typ with
            | Types.Scalar d -> d
            | Types.Memref _ ->
              fail "cannot cache a memref-typed value across a barrier split"
          in
          let c =
            Builder.alloc ~space:Types.Local elem
              (List.map (fun _ -> None) extents)
              extents
          in
          ignore (emit_pre c);
          (v, Op.result c) :: acc)
        stored []
    in
    (* first loop: A plus the cache stores *)
    let loop1 =
      Op.mk (Op.Parallel Op.Block)
        ~operands:par.Op.operands
        ~regions:
          [| Op.region ~args:ivs
               (a_ops
                @ List.map
                    (fun (v, cache) ->
                      Builder.store v cache (Array.to_list ivs))
                    caches)
          |]
    in
    (* second loop: loads + recomputation + B *)
    let subst = Clone.create_subst () in
    let ivs2 =
      Array.map
        (fun (iv : Value.t) ->
          let iv' = Value.fresh ?name:iv.name iv.typ in
          Clone.add_subst subst ~from:iv ~to_:iv';
          iv')
        ivs
    in
    let prefix = Builder.Seq.create () in
    List.iter
      (fun (op : Op.op) ->
        let result_needed which =
          Array.exists (fun v -> Value.Set.mem v which) op.Op.results
        in
        if result_needed stored then begin
          (* load each stored result *)
          Array.iter
            (fun v ->
              if Value.Set.mem v stored then begin
                let cache = List.assoc v caches in
                let ld = Builder.load cache (Array.to_list ivs2) in
                ignore (Builder.Seq.emit prefix ld);
                Clone.add_subst subst ~from:v ~to_:(Op.result ld)
              end)
            op.Op.results
        end
        else if result_needed recompute then begin
          assert (is_pure op);
          stats.recomputed_ops <- stats.recomputed_ops + 1;
          let c = Clone.clone_op subst op in
          ignore (Builder.Seq.emit prefix c)
        end)
      a_ops;
    (* substitute into B *)
    let b_ops = List.map (Clone.clone_op subst) b_ops in
    let loop2 =
      Op.mk (Op.Parallel Op.Block)
        ~operands:par.Op.operands
        ~regions:[| Op.region ~args:ivs2 (Builder.Seq.to_list prefix @ b_ops) |]
    in
    let deallocs = List.map (fun (_, c) -> Builder.dealloc c) caches in
    Some
      (pre_allocs @ Builder.Seq.to_list pre @ [ loop1; loop2 ] @ deallocs)

(* Structured-result boundary for the pass manager: the same split, with
   [Unsupported] reified instead of escaping as an exception. *)
let split_result ~(use_mincut : bool) (par : Op.op) :
  (Op.op list option, string) result =
  match split_parallel ~use_mincut par with
  | v -> Ok v
  | exception Unsupported msg -> Error msg
