(** The barrier-lowering driver (the paper's [-cpuify]): applies parallel
    loop splitting and interchange to fixpoint until no
    [polygeist.barrier] remains, plus the standard optimization pipeline
    run around it. *)

exception Stuck of string

(** Why barrier lowering failed, reified so the fault-tolerant pass
    manager can roll back and degrade instead of unwinding. *)
type error =
  | Did_not_converge of { budget : int }
  | Cannot_lower of
      { op_text : string
      ; loc : Ir.Srcloc.t option
            (** source location of the first remaining barrier *)
      ; remaining_barriers : int
      }
  | Unsupported of
      { what : string
      ; loc : Ir.Srcloc.t option
      ; remaining_barriers : int
      }
  | Barriers_remain of { remaining_barriers : int }

val error_to_string : error -> string

(** Number of [polygeist.barrier] ops anywhere inside the op. *)
val count_barriers : Ir.Op.op -> int

(** Default fixpoint iteration budget (10000). *)
val default_budget : int

(** Barrier lowering only; [budget] bounds the fixpoint iteration count
    (default {!default_budget}). *)
val run_result :
  ?use_mincut:bool -> ?budget:int -> Ir.Op.op -> (unit, error) result

(** {!run_result} with failures raised as [Stuck]; the message carries
    the remaining-barrier count and the [line:col] of the first
    remaining barrier.  @raise Stuck if a barrier cannot be lowered. *)
val run : ?use_mincut:bool -> ?budget:int -> Ir.Op.op -> unit

type options =
  { opt_mincut : bool
  ; opt_barrier_elim : bool
  ; opt_mem2reg : bool
  ; opt_licm : bool
  ; opt_budget : int (** cpuify fixpoint iteration budget *)
  }

val default_options : options

(** The passes of {!pipeline} as a named list, so drivers can interleave
    verification or checking between them ([-check-after-each-pass]). *)
val pipeline_stages :
  ?options:options -> unit -> (string * (Ir.Op.op -> unit)) list

(** Unique stage names of {!pipeline_stages}, in pipeline order — the
    vocabulary fault plans draw from. *)
val stage_names : ?options:options -> unit -> string list

(** Cleanups, barrier-specific optimizations, barrier lowering, cleanups —
    the full pipeline preceding OpenMP lowering. *)
val pipeline : ?options:options -> Ir.Op.op -> unit
