(** The barrier-lowering driver (the paper's [-cpuify]): applies parallel
    loop splitting and interchange to fixpoint until no
    [polygeist.barrier] remains, plus the standard optimization pipeline
    run around it. *)

exception Stuck of string

(** Barrier lowering only.  @raise Stuck if a barrier cannot be lowered. *)
val run : ?use_mincut:bool -> Ir.Op.op -> unit

type options =
  { opt_mincut : bool
  ; opt_barrier_elim : bool
  ; opt_mem2reg : bool
  ; opt_licm : bool
  }

val default_options : options

(** The passes of {!pipeline} as a named list, so drivers can interleave
    verification or checking between them ([-check-after-each-pass]). *)
val pipeline_stages :
  ?options:options -> unit -> (string * (Ir.Op.op -> unit)) list

(** Cleanups, barrier-specific optimizations, barrier lowering, cleanups —
    the full pipeline preceding OpenMP lowering. *)
val pipeline : ?options:options -> Ir.Op.op -> unit
