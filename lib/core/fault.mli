(** Deterministic fault injection for the pass pipeline.

    A fault plan is an ordered list of one-shot (stage, kind) entries:
    an entry fires the first time a stage with that name is attempted
    and is then spent.  Two `cpuify:raise` entries therefore take down
    both split rungs of the degradation ladder and force the
    whole-pipeline fallback. *)

type kind =
  | Raise (** the stage raises before doing any work *)
  | Corrupt (** the stage completes, then the IR is made unverifiable *)
  | Exhaust (** the stage's fuel budget is exhausted immediately *)
  | Hang
    (** the target spins forever — meaningful for the ["runtime"]
        stage, where one team rank blocks until the watchdog cancels
        the launch; pass-pipeline stages treat it like [Raise] *)

type entry = string * kind
type plan = entry list

(** Raised by the pass manager when a [Raise] fault fires. *)
exception Injected of string

val kind_to_string : kind -> string
val kind_of_string : string -> kind option
val entry_to_string : entry -> string

(** Parse ["STAGE:KIND"] (the --inject-fault syntax). *)
val entry_of_string : string -> (entry, string) result

(** Comma-separated entries, the crash-bundle wire format. *)
val plan_to_string : plan -> string

val plan_of_string : string -> (plan, string) result

(** 1-3 faults over the given stage names, deterministic in [seed]. *)
val random_plan : seed:int -> string list -> plan

(** Mutable one-shot view of a plan, consumed entry by entry. *)
type pending

val pending_of_plan : plan -> pending

(** Take (and spend) the first pending entry for [stage], if any. *)
val take : pending -> string -> kind option
