(* Crash bundles: self-contained failure reports the pass manager drops
   into --crash-dir whenever a stage dies.

   A bundle is a single text file holding everything needed to reproduce
   the failure offline: the failing stage (and which rung of the
   degradation ladder was being attempted), the exception and backtrace,
   the pipeline options and the complete fault plan, a CLI repro line,
   the original source, and a dump of the IR as it stood when the stage
   started.  `polygeist-cpu --replay <bundle>` parses one back,
   recompiles the embedded source and re-runs the pipeline under the
   same options and fault plan — the whole pipeline is deterministic, so
   the recorded failure recurs (or the bundle is stale and the replay
   says so). *)

(* Runtime-side configuration, recorded since format v2 so runtime and
   fuzz-oracle failures replay under the exact execution setup that
   produced them.  Plain strings/ints: Core must not depend on Runtime. *)
type runtime_cfg =
  { rexec : string (* "interp" | "parallel" *)
  ; rdomains : int
  ; rschedule : string (* "static" | "dynamic" | "guided" *)
  ; rchunk : int option
  ; rseed : int option (* fuzz generator seed, when applicable *)
  ; rtimeout_ms : int option
  }

(* Serving-side job context, recorded since format v3 so a bundle from
   the compile daemon shows how the job was doing when it died: how long
   the failing attempt ran, how many retries the supervisor had already
   burned, and how deep the admission queue was.  Plain ints: Core must
   not depend on Serve. *)
type serve_cfg =
  { sduration_ms : int (* wall-clock of the failing attempt *)
  ; sretries : int (* retries already performed when it failed *)
  ; squeue_depth : int (* admission-queue depth at failure *)
  }

type t =
  { version : int (* bundle format version this file was parsed from *)
  ; stage : string
  ; stage_index : int (* occurrence index within pipeline_stages *)
  ; rung : string (* ladder rung being attempted when it failed *)
  ; exn_text : string
  ; backtrace : string
  ; repro : string (* CLI line that led here *)
  ; options : Cpuify.options
  ; faults : Fault.plan
  ; runtime : runtime_cfg option (* None in v1 bundles and pure pass failures *)
  ; serve : serve_cfg option (* None in v1/v2 bundles and one-shot failures *)
  ; source : string (* original CUDA translation unit *)
  ; ir_before : string (* pre-stage IR dump *)
  }

let current_version = 3
let magic_v1 = "polygeist-cpu crash bundle v1"
let magic_v2 = "polygeist-cpu crash bundle v2"
let magic = "polygeist-cpu crash bundle v3"
let source_marker = "=== source ==="
let ir_marker = "=== pre-stage ir ==="

let options_to_string (o : Cpuify.options) : string =
  Printf.sprintf "mincut=%b,barrier-elim=%b,mem2reg=%b,licm=%b,budget=%d"
    o.Cpuify.opt_mincut o.Cpuify.opt_barrier_elim o.Cpuify.opt_mem2reg
    o.Cpuify.opt_licm o.Cpuify.opt_budget

let options_of_string (s : string) : (Cpuify.options, string) result =
  let o = ref Cpuify.default_options in
  let err = ref None in
  String.split_on_char ',' s
  |> List.iter (fun kv ->
      match String.index_opt kv '=' with
      | None -> err := Some (Printf.sprintf "bad option %S" kv)
      | Some i ->
        let k = String.sub kv 0 i in
        let v = String.sub kv (i + 1) (String.length kv - i - 1) in
        let b () =
          match bool_of_string_opt v with
          | Some b -> b
          | None ->
            err := Some (Printf.sprintf "bad boolean %S for %s" v k);
            false
        in
        (match k with
         | "mincut" -> o := { !o with Cpuify.opt_mincut = b () }
         | "barrier-elim" -> o := { !o with Cpuify.opt_barrier_elim = b () }
         | "mem2reg" -> o := { !o with Cpuify.opt_mem2reg = b () }
         | "licm" -> o := { !o with Cpuify.opt_licm = b () }
         | "budget" -> begin
           match int_of_string_opt v with
           | Some n -> o := { !o with Cpuify.opt_budget = n }
           | None -> err := Some (Printf.sprintf "bad budget %S" v)
         end
         | _ -> err := Some (Printf.sprintf "unknown option %S" k)));
  match !err with Some e -> Error e | None -> Ok !o

let opt_int_to_string = function None -> "-" | Some n -> string_of_int n

let opt_int_of_string (k : string) (v : string) :
  (int option, string) result =
  if v = "-" then Ok None
  else begin
    match int_of_string_opt v with
    | Some n -> Ok (Some n)
    | None -> Error (Printf.sprintf "bad integer %S for %s" v k)
  end

let runtime_to_string (r : runtime_cfg) : string =
  Printf.sprintf "exec=%s,domains=%d,schedule=%s,chunk=%s,seed=%s,timeout-ms=%s"
    r.rexec r.rdomains r.rschedule
    (opt_int_to_string r.rchunk)
    (opt_int_to_string r.rseed)
    (opt_int_to_string r.rtimeout_ms)

let runtime_of_string (s : string) : (runtime_cfg, string) result =
  let r =
    ref
      { rexec = "interp"
      ; rdomains = 1
      ; rschedule = "static"
      ; rchunk = None
      ; rseed = None
      ; rtimeout_ms = None
      }
  in
  let err = ref None in
  String.split_on_char ',' s
  |> List.iter (fun kv ->
      match String.index_opt kv '=' with
      | None -> err := Some (Printf.sprintf "bad runtime field %S" kv)
      | Some i ->
        let k = String.sub kv 0 i in
        let v = String.sub kv (i + 1) (String.length kv - i - 1) in
        let opt setter =
          match opt_int_of_string k v with
          | Ok o -> r := setter !r o
          | Error e -> err := Some e
        in
        (match k with
         | "exec" -> r := { !r with rexec = v }
         | "schedule" -> r := { !r with rschedule = v }
         | "domains" -> begin
           match int_of_string_opt v with
           | Some n -> r := { !r with rdomains = n }
           | None -> err := Some (Printf.sprintf "bad domains %S" v)
         end
         | "chunk" -> opt (fun r o -> { r with rchunk = o })
         | "seed" -> opt (fun r o -> { r with rseed = o })
         | "timeout-ms" -> opt (fun r o -> { r with rtimeout_ms = o })
         | _ -> err := Some (Printf.sprintf "unknown runtime field %S" k)));
  match !err with Some e -> Error e | None -> Ok !r

let serve_to_string (s : serve_cfg) : string =
  Printf.sprintf "duration-ms=%d,retries=%d,queue-depth=%d" s.sduration_ms
    s.sretries s.squeue_depth

let serve_of_string (str : string) : (serve_cfg, string) result =
  let s = ref { sduration_ms = 0; sretries = 0; squeue_depth = 0 } in
  let err = ref None in
  String.split_on_char ',' str
  |> List.iter (fun kv ->
      match String.index_opt kv '=' with
      | None -> err := Some (Printf.sprintf "bad serve field %S" kv)
      | Some i ->
        let k = String.sub kv 0 i in
        let v = String.sub kv (i + 1) (String.length kv - i - 1) in
        let int setter =
          match int_of_string_opt v with
          | Some n -> s := setter !s n
          | None -> err := Some (Printf.sprintf "bad integer %S for %s" v k)
        in
        (match k with
         | "duration-ms" -> int (fun s n -> { s with sduration_ms = n })
         | "retries" -> int (fun s n -> { s with sretries = n })
         | "queue-depth" -> int (fun s n -> { s with squeue_depth = n })
         | _ -> err := Some (Printf.sprintf "unknown serve field %S" k)));
  match !err with Some e -> Error e | None -> Ok !s

let to_string (b : t) : string =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "%s" magic;
  line "stage: %s" b.stage;
  line "stage-index: %d" b.stage_index;
  line "rung: %s" b.rung;
  line "exception: %s" (String.map (fun c -> if c = '\n' then ' ' else c) b.exn_text);
  line "repro: %s" b.repro;
  line "options: %s" (options_to_string b.options);
  line "faults: %s" (Fault.plan_to_string b.faults);
  (match b.runtime with
   | Some r -> line "runtime: %s" (runtime_to_string r)
   | None -> ());
  (match b.serve with
   | Some s -> line "serve: %s" (serve_to_string s)
   | None -> ());
  line "backtrace:";
  String.split_on_char '\n' b.backtrace
  |> List.iter (fun l -> if String.trim l <> "" then line "| %s" l);
  line "%s" source_marker;
  Buffer.add_string buf b.source;
  if b.source = "" || b.source.[String.length b.source - 1] <> '\n' then
    Buffer.add_char buf '\n';
  line "%s" ir_marker;
  Buffer.add_string buf b.ir_before;
  Buffer.contents buf

let of_string (s : string) : (t, string) result =
  let lines = String.split_on_char '\n' s in
  match lines with
  | m :: rest when m = magic || m = magic_v2 || m = magic_v1 -> begin
    let version =
      if m = magic_v1 then 1 else if m = magic_v2 then 2 else current_version
    in
    let stage = ref "" in
    let stage_index = ref 0 in
    let rung = ref "" in
    let exn_text = ref "" in
    let repro = ref "" in
    let options = ref Cpuify.default_options in
    let faults = ref [] in
    let runtime = ref None in
    let serve = ref None in
    let backtrace = Buffer.create 256 in
    let source = Buffer.create 1024 in
    let ir = Buffer.create 1024 in
    let err = ref None in
    let fail fmt = Printf.ksprintf (fun e -> err := Some e) fmt in
    let section = ref `Header in
    List.iter
      (fun l ->
        if l = source_marker then section := `Source
        else if l = ir_marker then section := `Ir
        else begin
          match !section with
          | `Source ->
            Buffer.add_string source l;
            Buffer.add_char source '\n'
          | `Ir ->
            Buffer.add_string ir l;
            Buffer.add_char ir '\n'
          | `Header ->
            let strip prefix =
              if String.length l >= String.length prefix
                 && String.sub l 0 (String.length prefix) = prefix
              then
                Some
                  (String.sub l (String.length prefix)
                     (String.length l - String.length prefix))
              else None
            in
            (match strip "stage: " with
             | Some v -> stage := v
             | None ->
             match strip "stage-index: " with
             | Some v ->
               stage_index := Option.value ~default:0 (int_of_string_opt v)
             | None ->
             match strip "rung: " with
             | Some v -> rung := v
             | None ->
             match strip "exception: " with
             | Some v -> exn_text := v
             | None ->
             match strip "repro: " with
             | Some v -> repro := v
             | None ->
             match strip "options: " with
             | Some v -> begin
               match options_of_string v with
               | Ok o -> options := o
               | Error e -> fail "bad options line: %s" e
             end
             | None ->
             match strip "faults: " with
             | Some v -> begin
               match Fault.plan_of_string v with
               | Ok p -> faults := p
               | Error e -> fail "bad faults line: %s" e
             end
             | None ->
             match strip "runtime: " with
             | Some v -> begin
               match runtime_of_string v with
               | Ok r -> runtime := Some r
               | Error e -> fail "bad runtime line: %s" e
             end
             | None ->
             match strip "serve: " with
             | Some v -> begin
               match serve_of_string v with
               | Ok s -> serve := Some s
               | Error e -> fail "bad serve line: %s" e
             end
             | None ->
             match strip "| " with
             | Some v ->
               Buffer.add_string backtrace v;
               Buffer.add_char backtrace '\n'
             | None -> ())
        end)
      rest;
    match !err with
    | Some e -> Error e
    | None ->
      if !stage = "" then Error "bundle has no stage line"
      else
        Ok
          { version
          ; stage = !stage
          ; stage_index = !stage_index
          ; rung = !rung
          ; exn_text = !exn_text
          ; backtrace = Buffer.contents backtrace
          ; repro = !repro
          ; options = !options
          ; faults = !faults
          ; runtime = !runtime
          ; serve = !serve
          ; source = Buffer.contents source
          ; ir_before =
              (* drop the final '\n' the line-splitting round trip adds *)
              (let s = Buffer.contents ir in
               if s <> "" && s.[String.length s - 1] = '\n' then
                 String.sub s 0 (String.length s - 1)
               else s)
          }
  end
  | _ -> Error "not a polygeist-cpu crash bundle (bad magic line)"

let rec mkdir_p (dir : string) : unit =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

(* Sanitize the stage name for use in a filename. *)
let slug (s : string) : string =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '_')
    s

(* Concurrent executor domains write bundles into the same directory;
   picking the next free sequence number and creating the file must be
   one atomic step per process or two lanes can claim the same name. *)
let write_mutex = Mutex.create ()

let write ~(dir : string) (b : t) : (string, string) result =
  try
    Mutex.lock write_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock write_mutex)
      (fun () ->
        mkdir_p dir;
        let rec pick n =
          let path =
            Filename.concat dir
              (Printf.sprintf "crash-%03d-%s.bundle" n (slug b.stage))
          in
          if Sys.file_exists path then pick (n + 1) else path
        in
        let path = pick 0 in
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc (to_string b));
        Ok path)
  with Sys_error e -> Error (Printf.sprintf "cannot write crash bundle: %s" e)

let read (path : string) : (t, string) result =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error e -> Error (Printf.sprintf "cannot read bundle: %s" e)
