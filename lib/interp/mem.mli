(** Runtime memory for the interpreter: buffers backing memrefs and
    runtime scalar values.  Loads/stores are bounds-checked, so
    transformation bugs surface as failures instead of silent
    corruption. *)

type data =
  | Fdata of float array
  | Idata of int array

type buffer =
  { elem : Ir.Types.dtype
  ; dims : int array
  ; data : data
  ; bufid : int
  }

type rv =
  | Int of int
  | Flt of float
  | Buf of buffer

exception Runtime_error of string

(** Raise {!Runtime_error} with a formatted message. *)
val fail : ('a, unit, string, 'b) format4 -> 'a

val alloc_buffer : Ir.Types.dtype -> int array -> buffer
val size : buffer -> int
val load : buffer -> int array -> rv
val store : buffer -> int array -> rv -> unit

(** Bounds-checked row-major linear index (same checks as
    {!load}/{!store}); feeds the typed accessors below, which the
    compiled multicore runtime uses to avoid boxing an {!rv} per
    access.  Cross-dtype accesses convert like {!store} does. *)
val lindex : buffer -> int array -> int

val get_f : buffer -> int -> float
val get_i : buffer -> int -> int
val set_f : buffer -> int -> float -> unit
val set_i : buffer -> int -> int -> unit

(** Commutative digest of the given buffers: the sum of per-element
    hashes of (buffer position, element index, bit pattern).  Integer
    summation makes it independent of traversal and execution order, so
    serial and parallel executions of the same race-free program produce
    bit-identical checksums; any single-element difference changes it
    with overwhelming probability. *)
val checksum : buffer array -> float
val copy : src:buffer -> dst:buffer -> unit
val as_int : rv -> int
val as_int_or_trunc : rv -> int
val as_float : rv -> float
val as_buf : rv -> buffer
val of_float_array : ?dims:int array -> float array -> buffer
val of_int_array : ?dims:int array -> int array -> buffer
val float_contents : buffer -> float array
val int_contents : buffer -> int array
