(* The GPU-semantics interpreter: ground truth for every transformation.

   Parallel loops over blocks run block-by-block; the threads of a block
   run as cooperative fibers (OCaml 5 effect handlers) that all stop at
   each [polygeist.barrier] before any proceeds — exactly CUDA's
   __syncthreads contract, at barrier granularity.  OpenMP constructs are
   interpreted with a configurable team size: every team thread executes
   the whole [omp.parallel] region, worksharing loops execute static
   contiguous chunks, and [omp.barrier] synchronizes the team.

   Divergent barriers (not all threads reaching the same barrier) raise,
   which turns CUDA undefined behaviour into a test failure. *)

open Ir

exception Return_exc of Mem.rv option

type _ Effect.t += Sync : unit Effect.t

(* Execution statistics, also used as a sanity check against the static
   cost model. *)
type stats =
  { mutable ops : int
  ; mutable loads : int
  ; mutable stores : int
  ; mutable flops : int
  ; mutable barriers : int
  }

let new_stats () = { ops = 0; loads = 0; stores = 0; flops = 0; barriers = 0 }

type env =
  { tbl : Mem.rv Value.Tbl.t
  ; parent : env option
  }

let new_env ?parent () = { tbl = Value.Tbl.create 32; parent }

let rec lookup env (v : Value.t) : Mem.rv =
  match Value.Tbl.find_opt env.tbl v with
  | Some rv -> rv
  | None -> begin
    match env.parent with
    | Some p -> lookup p v
    | None -> Mem.fail "unbound SSA value %s" (Value.to_string v)
  end

let bind env (v : Value.t) rv = Value.Tbl.replace env.tbl v rv

type state =
  { modul : Op.op
  ; stats : stats
  ; team_size : int (* interpreted OpenMP team size *)
  ; mutable team_rank : int (* rank of the currently-executing team thread *)
  ; mutable in_team : bool
  ; mutable fuel : int (* remaining op budget; negative = unbounded *)
  }

let f32 x = Int32.float_of_bits (Int32.bits_of_float x)

let eval_const = function
  | Op.Cint (n, _) -> Mem.Int n
  | Op.Cfloat (f, Types.F32) -> Mem.Flt (f32 f)
  | Op.Cfloat (f, _) -> Mem.Flt f

let is_float_value (v : Value.t) =
  match v.typ with
  | Types.Scalar d -> Types.is_float_dtype d
  | Types.Memref _ -> false

let eval_binop kind ~is_float a b : Mem.rv =
  if is_float then begin
    let x = Mem.as_float a and y = Mem.as_float b in
    let r =
      match kind with
      | Op.Add -> x +. y
      | Op.Sub -> x -. y
      | Op.Mul -> x *. y
      | Op.Div -> x /. y
      | Op.Rem -> Float.rem x y
      | Op.Min -> Float.min x y
      | Op.Max -> Float.max x y
      | Op.And | Op.Or | Op.Xor | Op.Shl | Op.Shr ->
        Mem.fail "bitwise op on float"
    in
    Mem.Flt r
  end
  else begin
    let x = Mem.as_int a and y = Mem.as_int b in
    let r =
      match kind with
      | Op.Add -> x + y
      | Op.Sub -> x - y
      | Op.Mul -> x * y
      | Op.Div -> if y = 0 then Mem.fail "integer division by zero" else x / y
      | Op.Rem -> if y = 0 then Mem.fail "integer modulo by zero" else x mod y
      | Op.Min -> min x y
      | Op.Max -> max x y
      | Op.And -> x land y
      | Op.Or -> x lor y
      | Op.Xor -> x lxor y
      | Op.Shl -> x lsl y
      | Op.Shr -> x asr y
    in
    Mem.Int r
  end

let eval_cmp pred ~is_float a b : Mem.rv =
  let c =
    if is_float then begin
      let x = Mem.as_float a and y = Mem.as_float b in
      match pred with
      | Op.Eq -> x = y
      | Op.Ne -> x <> y
      | Op.Lt -> x < y
      | Op.Le -> x <= y
      | Op.Gt -> x > y
      | Op.Ge -> x >= y
    end
    else begin
      let x = Mem.as_int a and y = Mem.as_int b in
      match pred with
      | Op.Eq -> x = y
      | Op.Ne -> x <> y
      | Op.Lt -> x < y
      | Op.Le -> x <= y
      | Op.Gt -> x > y
      | Op.Ge -> x >= y
    end
  in
  Mem.Int (if c then 1 else 0)

let eval_math fn (args : Mem.rv list) : Mem.rv =
  match fn, args with
  | Op.Neg, [ a ] -> Mem.Flt (-.Mem.as_float a)
  | Op.Not, [ a ] -> Mem.Int (if Mem.as_int a = 0 then 1 else 0)
  | Op.Sqrt, [ a ] -> Mem.Flt (sqrt (Mem.as_float a))
  | Op.Exp, [ a ] -> Mem.Flt (exp (Mem.as_float a))
  | Op.Log, [ a ] -> Mem.Flt (log (Mem.as_float a))
  | Op.Log2, [ a ] -> Mem.Flt (log (Mem.as_float a) /. log 2.0)
  | Op.Fabs, [ a ] -> Mem.Flt (Float.abs (Mem.as_float a))
  | Op.Floor, [ a ] -> Mem.Flt (Float.floor (Mem.as_float a))
  | Op.Sin, [ a ] -> Mem.Flt (sin (Mem.as_float a))
  | Op.Cos, [ a ] -> Mem.Flt (cos (Mem.as_float a))
  | Op.Tanh, [ a ] -> Mem.Flt (tanh (Mem.as_float a))
  | Op.Erf, [ a ] ->
    (* Abramowitz–Stegun approximation; plenty for test kernels. *)
    let x = Mem.as_float a in
    let s = if x < 0.0 then -1.0 else 1.0 in
    let x = Float.abs x in
    let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
    let y =
      1.0
      -. ((((((1.061405429 *. t) -. 1.453152027) *. t) +. 1.421413741) *. t
           -. 0.284496736)
          *. t
          +. 0.254829592)
         *. t
         *. exp (-.x *. x)
    in
    Mem.Flt (s *. y)
  | Op.Pow, [ a; b ] -> Mem.Flt (Float.pow (Mem.as_float a) (Mem.as_float b))
  | _ -> Mem.fail "math %s: bad arity" (Op.math_to_string fn)

let eval_cast dtype (v : Mem.rv) : Mem.rv =
  match dtype with
  | Types.F32 -> Mem.Flt (f32 (Mem.as_float v))
  | Types.F64 -> Mem.Flt (Mem.as_float v)
  | Types.I1 -> Mem.Int (if Mem.as_int_or_trunc v <> 0 then 1 else 0)
  | Types.I32 | Types.I64 | Types.Index -> Mem.Int (Mem.as_int_or_trunc v)

(* The one static worksharing partition, shared with the parallel
   runtime ([Runtime.Schedule] delegates here): a balanced contiguous
   split where the first [n mod size] ranks take one extra iteration,
   so chunk sizes differ by at most 1 and no rank is ever empty while
   another holds two chunks' worth.  The differential tests compare
   bitwise checksums, and for the (racy but tolerated) benchmarks whose
   result depends on the partition, the runtime at [size] domains must
   reproduce the interpreter at [team_size = size] — which is why this
   lives here and not in two places. *)
let static_chunk ~rank ~size ~n =
  if size <= 0 then invalid_arg "static_chunk: size must be positive";
  let base = n / size and rem = n mod size in
  let lo = (rank * base) + min rank rem in
  let len = base + (if rank < rem then 1 else 0) in
  (lo, lo + len)

(* --- fiber scheduling for barrier semantics --- *)

type fiber_status =
  | Finished
  | Suspended of (unit, fiber_status) Effect.Deep.continuation

let start_fiber (f : unit -> unit) : fiber_status =
  Effect.Deep.match_with f ()
    { retc = (fun () -> Finished)
    ; exnc = raise
    ; effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sync ->
            Some
              (fun (k : (a, fiber_status) Effect.Deep.continuation) ->
                Suspended k)
          | _ -> None)
    }

(* Run a set of logical threads to completion, synchronizing them at every
   Sync effect.  Threads run in index order within each barrier interval
   (deterministic).  [before_slice i] runs before thread [i] starts or
   resumes — used to re-establish per-thread interpreter state such as the
   OpenMP team rank. *)
let run_threads ?(before_slice = fun (_ : int) -> ()) (thunks : (unit -> unit) array) =
  let statuses =
    Array.mapi
      (fun i f ->
        before_slice i;
        start_fiber f)
      thunks
  in
  let all_done a = Array.for_all (fun s -> s = Finished) a in
  let current = ref statuses in
  while not (all_done !current) do
    let finished = Array.exists (fun s -> s = Finished) !current in
    if finished then
      Mem.fail
        "barrier divergence: some threads finished while others wait at a \
         barrier";
    current :=
      Array.mapi
        (fun i s ->
          match s with
          | Suspended k ->
            before_slice i;
            Effect.Deep.continue k ()
          | Finished -> Finished)
        !current
  done

(* --- the interpreter --- *)

let rec exec_ops (st : state) (env : env) (ops : Op.op list) : unit =
  List.iter (exec_op st env) ops

and exec_op (st : state) (env : env) (op : Op.op) : unit =
  st.stats.ops <- st.stats.ops + 1;
  if st.fuel >= 0 then begin
    if st.fuel = 0 then
      Mem.fail "interpreter fuel exhausted after %d ops" st.stats.ops;
    st.fuel <- st.fuel - 1
  end;
  match op.kind with
  | Op.Module | Op.Func _ -> Mem.fail "cannot execute module/func as a statement"
  | Op.Yield -> ()
  | Op.Condition -> Mem.fail "scf.condition outside while handling"
  | Op.Constant c -> bind env (Op.result op) (eval_const c)
  | Op.Binop kind ->
    let a = lookup env op.operands.(0) in
    let b = lookup env op.operands.(1) in
    let isf = is_float_value op.operands.(0) in
    if isf then st.stats.flops <- st.stats.flops + 1;
    bind env (Op.result op) (eval_binop kind ~is_float:isf a b)
  | Op.Cmp pred ->
    let a = lookup env op.operands.(0) in
    let b = lookup env op.operands.(1) in
    bind env (Op.result op)
      (eval_cmp pred ~is_float:(is_float_value op.operands.(0)) a b)
  | Op.Select ->
    let c = Mem.as_int (lookup env op.operands.(0)) in
    bind env (Op.result op)
      (lookup env (if c <> 0 then op.operands.(1) else op.operands.(2)))
  | Op.Cast d -> bind env (Op.result op) (eval_cast d (lookup env op.operands.(0)))
  | Op.Math fn ->
    st.stats.flops <- st.stats.flops + 1;
    let args = Array.to_list (Array.map (lookup env) op.operands) in
    bind env (Op.result op) (eval_math fn args)
  | Op.Alloc | Op.Alloca -> begin
    match (Op.result op).typ with
    | Types.Memref { elem; shape; _ } ->
      let dyn = ref (Array.to_list (Array.map (lookup env) op.operands)) in
      let dims =
        List.map
          (fun d ->
            match d with
            | Some n -> n
            | None -> begin
              match !dyn with
              | v :: rest ->
                dyn := rest;
                Mem.as_int v
              | [] -> Mem.fail "alloc: missing dynamic size"
            end)
          shape
      in
      bind env (Op.result op) (Mem.Buf (Mem.alloc_buffer elem (Array.of_list dims)))
    | Types.Scalar _ -> Mem.fail "alloc of non-memref"
  end
  | Op.Dealloc -> ()
  | Op.Load ->
    st.stats.loads <- st.stats.loads + 1;
    let b = Mem.as_buf (lookup env op.operands.(0)) in
    let idxs =
      Array.init
        (Array.length op.operands - 1)
        (fun i -> Mem.as_int (lookup env op.operands.(i + 1)))
    in
    bind env (Op.result op) (Mem.load b idxs)
  | Op.Store ->
    st.stats.stores <- st.stats.stores + 1;
    let v = lookup env op.operands.(0) in
    let b = Mem.as_buf (lookup env op.operands.(1)) in
    let idxs =
      Array.init
        (Array.length op.operands - 2)
        (fun i -> Mem.as_int (lookup env op.operands.(i + 2)))
    in
    Mem.store b idxs v
  | Op.Copy ->
    let src = Mem.as_buf (lookup env op.operands.(0)) in
    let dst = Mem.as_buf (lookup env op.operands.(1)) in
    Mem.copy ~src ~dst
  | Op.Dim i ->
    let b = Mem.as_buf (lookup env op.operands.(0)) in
    bind env (Op.result op) (Mem.Int b.dims.(i))
  | Op.For ->
    let lo = Mem.as_int (lookup env (Op.for_lo op)) in
    let hi = Mem.as_int (lookup env (Op.for_hi op)) in
    let step = Mem.as_int (lookup env (Op.for_step op)) in
    if step <= 0 then Mem.fail "scf.for: non-positive step %d" step;
    let iv = Op.for_iv op in
    let i = ref lo in
    while !i < hi do
      let env' = new_env ~parent:env () in
      bind env' iv (Mem.Int !i);
      exec_ops st env' op.regions.(0).body;
      i := !i + step
    done
  | Op.While ->
    let rec loop () =
      let env' = new_env ~parent:env () in
      let cond_region = op.regions.(0).body in
      let rec run_cond = function
        | [] -> Mem.fail "while cond region missing scf.condition"
        | [ ({ Op.kind = Op.Condition; _ } as c) ] ->
          Mem.as_int (lookup env' c.operands.(0)) <> 0
        | o :: rest ->
          exec_op st env' o;
          run_cond rest
      in
      if run_cond cond_region then begin
        let env'' = new_env ~parent:env () in
        exec_ops st env'' op.regions.(1).body;
        loop ()
      end
    in
    loop ()
  | Op.If ->
    let c = Mem.as_int (lookup env op.operands.(0)) in
    let region = if c <> 0 then op.regions.(0) else op.regions.(1) in
    let env' = new_env ~parent:env () in
    exec_ops st env' region.body
  | Op.Parallel kind -> exec_parallel st env op kind
  | Op.Barrier ->
    st.stats.barriers <- st.stats.barriers + 1;
    Effect.perform Sync
  | Op.Call name -> begin
    let callee =
      match Op.find_func st.modul name with
      | Some f -> f
      | None -> Mem.fail "call to unknown function @%s" name
    in
    let args = Array.map (lookup env) op.operands in
    match call_func st callee args with
    | Some rv when Array.length op.results = 1 -> bind env (Op.result op) rv
    | Some _ -> ()
    | None ->
      if Array.length op.results = 1 then
        Mem.fail "function @%s returned no value" name
  end
  | Op.Return ->
    let v =
      if Array.length op.operands = 1 then Some (lookup env op.operands.(0))
      else None
    in
    raise (Return_exc v)
  | Op.OmpParallel -> exec_omp_parallel st env op
  | Op.OmpWsloop -> exec_wsloop st env op
  | Op.OmpBarrier ->
    st.stats.barriers <- st.stats.barriers + 1;
    if st.in_team then Effect.perform Sync

(* Enumerate the (multi-dimensional) iteration space of a parallel op. *)
and par_space env (op : Op.op) : int array list =
  let n = Op.par_dims op in
  let lo = Array.init n (fun i -> Mem.as_int (lookup env (Op.par_lo op i))) in
  let hi = Array.init n (fun i -> Mem.as_int (lookup env (Op.par_hi op i))) in
  let step =
    Array.init n (fun i -> Mem.as_int (lookup env (Op.par_step op i)))
  in
  Array.iteri
    (fun i s -> if s <= 0 then Mem.fail "parallel: non-positive step %d" i)
    step;
  let rec build dim acc =
    if dim < 0 then [ acc ]
    else begin
      let out = ref [] in
      let v = ref lo.(dim) in
      while !v < hi.(dim) do
        out := !out @ build (dim - 1) (!v :: acc);
        v := !v + step.(dim)
      done;
      !out
    end
  in
  List.map Array.of_list (build (n - 1) [])

and exec_parallel st env (op : Op.op) (kind : Op.par_kind) : unit =
  let space = par_space env op in
  let ivs = op.regions.(0).rargs in
  match kind with
  | Op.Block when Op.contains_barrier_region op.regions.(0) ->
    (* Cooperative fibers synchronizing at barriers.  GPU threads are
       NOT an OpenMP team: any worksharing loop nested inside this
       region must be executed in full by every thread, so the team
       flag of an enclosing [omp.parallel] is masked for the duration
       (and re-masked at every slice, in case a nested omp region
       toggled it before a barrier suspension). *)
    let was_team = st.in_team in
    let was_rank = st.team_rank in
    let thunks =
      List.map
        (fun idx () ->
          let env' = new_env ~parent:env () in
          Array.iteri (fun i _ -> bind env' ivs.(i) (Mem.Int idx.(i))) ivs;
          exec_ops st env' op.regions.(0).body)
        space
    in
    Fun.protect
      ~finally:(fun () ->
        st.in_team <- was_team;
        st.team_rank <- was_rank)
      (fun () ->
        run_threads
          ~before_slice:(fun _ -> st.in_team <- false)
          (Array.of_list thunks))
  | Op.Grid | Op.Block | Op.Flat ->
    (* No synchronization inside: iterations run in order. *)
    List.iter
      (fun idx ->
        let env' = new_env ~parent:env () in
        Array.iteri (fun i _ -> bind env' ivs.(i) (Mem.Int idx.(i))) ivs;
        exec_ops st env' op.regions.(0).body)
      space

and exec_omp_parallel st env (op : Op.op) : unit =
  (* The team size comes uniformly from [?team_size] (default 4): it
     sets both how many team threads execute the region AND the
     worksharing chunk denominator in [exec_wsloop], so the two can
     never disagree. *)
  let t = st.team_size in
  let was_team = st.in_team in
  let was_rank = st.team_rank in
  st.in_team <- true;
  let thunks =
    Array.init t (fun _rank () ->
        let env' = new_env ~parent:env () in
        exec_ops st env' op.regions.(0).body)
  in
  (* The scheduler re-establishes the executing thread's rank before every
     slice, so worksharing loops after a barrier still read the right
     rank.  The restore is exception-safe: a runtime error inside the
     region must not leave the interpreter believing it is still in a
     team. *)
  Fun.protect
    ~finally:(fun () ->
      st.in_team <- was_team;
      st.team_rank <- was_rank)
    (fun () ->
      run_threads
        ~before_slice:(fun rank ->
          st.in_team <- true;
          st.team_rank <- rank)
        thunks)

and exec_wsloop st env (op : Op.op) : unit =
  let space = par_space env op in
  let ivs = op.regions.(0).rargs in
  let iters = Array.of_list space in
  let n = Array.length iters in
  let lo, hi =
    if st.in_team then
      (* balanced static contiguous chunking across the team *)
      static_chunk ~rank:st.team_rank ~size:st.team_size ~n
    else (0, n)
  in
  for i = lo to hi - 1 do
    let env' = new_env ~parent:env () in
    Array.iteri (fun d _ -> bind env' ivs.(d) (Mem.Int iters.(i).(d))) ivs;
    exec_ops st env' op.regions.(0).body
  done

and call_func st (f : Op.op) (args : Mem.rv array) : Mem.rv option =
  let env = new_env () in
  let params = f.regions.(0).rargs in
  if Array.length params <> Array.length args then
    Mem.fail "@%s: arity mismatch" (Op.func_name f);
  Array.iteri (fun i p -> bind env p args.(i)) params;
  match exec_ops st env f.regions.(0).body with
  | () -> None
  | exception Return_exc v -> v

(* --- public API --- *)

let create ?(team_size = 4) ?fuel (modul : Op.op) : state =
  { modul
  ; stats = new_stats ()
  ; team_size
  ; team_rank = 0
  ; in_team = false
  ; fuel = (match fuel with Some n when n >= 0 -> n | _ -> -1)
  }

let run ?(team_size = 4) ?fuel (modul : Op.op) (name : string)
    (args : Mem.rv list) : Mem.rv option * stats =
  let st = create ~team_size ?fuel modul in
  let f =
    match Op.find_func modul name with
    | Some f -> f
    | None -> Mem.fail "no function @%s in module" name
  in
  let r = call_func st f (Array.of_list args) in
  (r, st.stats)
