(* Runtime memory: buffers backing memrefs, and runtime scalar values. *)

open Ir

type data =
  | Fdata of float array
  | Idata of int array

type buffer =
  { elem : Types.dtype
  ; dims : int array
  ; data : data
  ; bufid : int
  }

type rv =
  | Int of int (* all integer dtypes; I1 is 0/1 *)
  | Flt of float
  | Buf of buffer

exception Runtime_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

(* Atomic so the parallel runtime may allocate from worker domains
   (per-iteration scratch allocs inside worksharing loops). *)
let buf_counter = Atomic.make 0
let next_bufid () = Atomic.fetch_and_add buf_counter 1 + 1

let alloc_buffer elem dims =
  let size = Array.fold_left ( * ) 1 dims in
  let data =
    if Types.is_float_dtype elem then Fdata (Array.make size 0.0)
    else Idata (Array.make size 0)
  in
  { elem; dims; data; bufid = next_bufid () }

let size (b : buffer) = Array.fold_left ( * ) 1 b.dims

(* Row-major linearization with bounds checking. *)
let linear_index (b : buffer) (idxs : int array) =
  let n = Array.length b.dims in
  if Array.length idxs <> n then
    fail "buffer #%d: rank mismatch (%d indices for rank %d)" b.bufid
      (Array.length idxs) n;
  let off = ref 0 in
  for i = 0 to n - 1 do
    let ix = idxs.(i) in
    if ix < 0 || ix >= b.dims.(i) then
      fail "buffer #%d: index %d out of bounds [0,%d) in dim %d" b.bufid ix
        b.dims.(i) i;
    off := (!off * b.dims.(i)) + ix
  done;
  !off

(* Typed linear accessors for the compiled (multicore) runtime: the
   engine resolves the element type at compile time, so loads and stores
   go straight to the backing array without boxing an [rv].  [lindex]
   performs the same bounds checking as [load]/[store]. *)
let lindex = linear_index

let get_f (b : buffer) (i : int) : float =
  match b.data with
  | Fdata a -> a.(i)
  | Idata a -> float_of_int a.(i)

let get_i (b : buffer) (i : int) : int =
  match b.data with
  | Idata a -> a.(i)
  | Fdata a -> int_of_float a.(i)

let set_f (b : buffer) (i : int) (v : float) : unit =
  match b.data with
  | Fdata a -> a.(i) <- v
  | Idata a -> a.(i) <- int_of_float v

let set_i (b : buffer) (i : int) (v : int) : unit =
  match b.data with
  | Idata a -> a.(i) <- v
  | Fdata a -> a.(i) <- float_of_int v

let load (b : buffer) idxs : rv =
  let i = linear_index b idxs in
  match b.data with
  | Fdata a -> Flt a.(i)
  | Idata a -> Int a.(i)

let store (b : buffer) idxs (v : rv) =
  let i = linear_index b idxs in
  match b.data, v with
  | Fdata a, Flt f -> a.(i) <- f
  | Fdata a, Int n -> a.(i) <- float_of_int n
  | Idata a, Int n -> a.(i) <- n
  | Idata a, Flt f -> a.(i) <- int_of_float f
  | _, Buf _ -> fail "cannot store a buffer into a buffer"

let copy ~(src : buffer) ~(dst : buffer) =
  if size src <> size dst then fail "copy: size mismatch";
  match src.data, dst.data with
  | Fdata s, Fdata d -> Array.blit s 0 d 0 (Array.length s)
  | Idata s, Idata d -> Array.blit s 0 d 0 (Array.length s)
  | _ -> fail "copy: element type mismatch"

let as_int = function
  | Int n -> n
  | Flt f -> fail "expected integer value, got float %g" f
  | Buf _ -> fail "expected integer value, got buffer"

(* Integer view with C-style truncation for floats (used by casts). *)
let as_int_or_trunc = function
  | Int n -> n
  | Flt f -> int_of_float f
  | Buf _ -> fail "expected scalar value, got buffer"

let as_float = function
  | Flt f -> f
  | Int n -> float_of_int n
  | Buf _ -> fail "expected float value, got buffer"

let as_buf = function
  | Buf b -> b
  | Int _ | Flt _ -> fail "expected buffer value"

(* Convenience constructors for tests and drivers. *)
let of_float_array ?(dims = [||]) (a : float array) =
  let dims = if dims = [||] then [| Array.length a |] else dims in
  { elem = Types.F32; dims; data = Fdata a; bufid = next_bufid () }

let of_int_array ?(dims = [||]) (a : int array) =
  let dims = if dims = [||] then [| Array.length a |] else dims in
  { elem = Types.Index; dims; data = Idata a; bufid = next_bufid () }

let float_contents (b : buffer) =
  match b.data with
  | Fdata a -> Array.copy a
  | Idata a -> Array.map float_of_int a

let int_contents (b : buffer) =
  match b.data with
  | Idata a -> Array.copy a
  | Fdata a -> Array.map int_of_float a

(* --- commutative output checksum --- *)

(* splitmix64 finalizer: a cheap full-avalanche 64-bit mixer. *)
let mix64 (z : int64) : int64 =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Sum of per-element hashes: every element contributes a hash of its
   (buffer position, index, bit pattern), and the contributions are
   combined with integer addition — associative and commutative, so the
   digest is identical no matter which thread touched which element or
   in which order the buffers are walked.  Masked to 52 bits so the
   float conversion is exact. *)
let checksum (bufs : buffer array) : float =
  let total = ref 0L in
  Array.iteri
    (fun bi b ->
      let salt = mix64 (Int64.of_int (bi + 1)) in
      let add i bits =
        let h =
          mix64
            (Int64.logxor bits
               (Int64.add salt (mix64 (Int64.of_int (i + 1)))))
        in
        total := Int64.add !total h
      in
      match b.data with
      | Fdata a -> Array.iteri (fun i x -> add i (Int64.bits_of_float x)) a
      | Idata a -> Array.iteri (fun i x -> add i (Int64.of_int x)) a)
    bufs;
  Int64.to_float (Int64.logand !total 0xF_FFFF_FFFF_FFFFL)
