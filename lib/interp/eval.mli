(** The GPU-semantics interpreter: ground truth for every transformation.

    Block-parallel loops run their threads as cooperative fibers (OCaml 5
    effect handlers) that all stop at each [polygeist.barrier] before any
    proceeds; OpenMP constructs run with a configurable team size, static
    worksharing chunks and explicit [omp.barrier] joins.  Divergent
    barriers (CUDA UB) and out-of-bounds accesses raise. *)

type stats =
  { mutable ops : int
  ; mutable loads : int
  ; mutable stores : int
  ; mutable flops : int
  ; mutable barriers : int
  }

type state

(** [team_size] (default [4]) is the OpenMP team size, honored uniformly:
    it is both the number of team threads executing an [omp.parallel]
    region and the chunk denominator of [omp.wsloop] worksharing.  It
    does NOT affect GPU-level [scf.parallel] loops — those always run
    one logical thread per iteration-space point (the CUDA contract) and
    are never an OpenMP team, so a worksharing loop nested inside a
    barrier-synchronized block region is executed in full by every
    thread.  An [omp.wsloop] outside any [omp.parallel] behaves as a
    team of one (all iterations, in order). *)
val create : ?team_size:int -> ?fuel:int -> Ir.Op.op -> state

(** [static_chunk ~rank ~size ~n] is the contiguous [lo, hi) slice of
    rank [rank] in a team of [size] over [n] iterations: a balanced
    partition in which the first [n mod size] ranks take one extra
    iteration, so the ranges form a disjoint cover of [0, n) with
    chunk sizes differing by at most 1.  This is the single source of
    truth for static worksharing — [Runtime.Schedule.static_chunk]
    delegates here so the parallel runtime and the interpreter always
    agree bit-for-bit on partition-dependent results. *)
val static_chunk : rank:int -> size:int -> n:int -> int * int

(** [run ?team_size modul fname args] interprets the named host function;
    returns its result (if any) and the execution statistics.
    [team_size] defaults to [4]; see {!create} for its exact contract.
    [fuel], when given and non-negative, bounds the total op count:
    exceeding it raises [Mem.Runtime_error] ("interpreter fuel
    exhausted").  The fuzzer and test-case reducer rely on this so a
    reduction candidate that loops forever fails instead of hanging.
    @raise Mem.Runtime_error on memory faults, barrier divergence, etc. *)
val run :
  ?team_size:int ->
  ?fuel:int ->
  Ir.Op.op ->
  string ->
  Mem.rv list ->
  Mem.rv option * stats
