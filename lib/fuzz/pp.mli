(** Mini-CUDA AST pretty-printer: inverse of [Cudafe.Parser], used by
    the test-case reducer to re-source an edited AST.  Every compound
    expression is parenthesized, so a reparse rebuilds the same tree
    shape regardless of precedence. *)

val expr : Cudafe.Ast.expr -> string

(** Print a whole program back to parseable source.  Not reentrant (one
    shared buffer) — fine for the single-threaded reducer. *)
val program : Cudafe.Ast.program -> string
