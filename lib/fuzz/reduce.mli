(** Automatic test-case reducer (llvm-reduce style): greedy source-level
    shrinking of a failing program, keeping each edit iff the program
    still fails with the same oracle stage and class.

    Edit families: statement deletion, region deletion (a branch or a
    loop body replaces its construct), integer/float constant shrinking,
    and collapsing compound expressions to an operand.  Candidates that
    no longer compile fail with a different class and are rejected
    automatically. *)

(** [run src failure] shrinks [src] while {!Oracle.run} keeps reporting
    a failure with the same stage and class as [failure]; returns the
    smallest source found (or [src] unchanged if it cannot reproduce).
    [max_checks] (default 1500) bounds the number of oracle
    invocations. *)
val run :
  ?options:Core.Cpuify.options ->
  ?timeout_ms:int ->
  ?max_checks:int ->
  string ->
  Oracle.failure ->
  string

(** Number of IR ops inside the compiled kernel's block-level parallel
    region(s) — the code the barrier-lowering passes transform, i.e. the
    witness size with the fixed launch scaffolding excluded.  [max_int]
    if the source no longer compiles. *)
val ir_ops : string -> int
