(** Differential oracle for one mini-CUDA program.

    Runs the program through every stage of
    [Core.Cpuify.pipeline_stages] individually — verifying the IR and
    comparing an interpreter checksum against the pristine module after
    each, so a divergence is attributed to the first stage that
    introduced it — then through OpenMP lowering (interpreted at team
    sizes 1 and 4) and the compiled multicore engine at 1 and 4 domains,
    watchdog-armed via [timeout_ms].

    The program must follow the {!Gen} contract: host entry
    [void launch(float* out, float* in)]. *)

type failure =
  { f_stage : string
    (** pipeline stage name, or ["frontend"], ["omp-lower"],
        ["post-canonicalize"], ["exec-d1"], ["exec-d4"] *)
  ; f_class : string
    (** ["verifier"], ["checksum"], ["error-mismatch"], ["crash"],
        ["stuck"], ["timeout"], ["exec-unsupported"] or ["frontend"] *)
  ; f_detail : string
  }

type outcome =
  | Passed
  | Failed of failure

val failure_to_string : failure -> string

(** The {!Gen} execution contract's host entry name ([launch]) — what a
    module must define for {!run_module} to be applicable. *)
val entry : string

(** Stage and class equal — the invariant the reducer preserves. *)
val same_failure : failure -> failure -> bool

(** [run src] is [Passed], or the first failing rung.  [timeout_ms]
    (default 5000) bounds each parallel execution; the interpreter runs
    are fuel-bounded, so no rung can hang. *)
val run :
  ?options:Core.Cpuify.options -> ?timeout_ms:int -> string -> outcome

(** [run] starting from a frontend-level module (which must follow the
    same [launch] contract) instead of source; the input module is
    deep-cloned, never mutated.  The validation entry the repair search
    uses on its edited kernels. *)
val run_module :
  ?options:Core.Cpuify.options -> ?timeout_ms:int -> Ir.Op.op -> outcome

(** The IR as it stood {e before} the named stage (the crash bundle's
    pre-stage section); for ["frontend"] or executor stages, the
    frontend output resp. fully-lowered IR. *)
val ir_before : ?options:Core.Cpuify.options -> string -> string -> string
