(* Automatic test-case reducer, llvm-reduce style: given a program and
   the oracle failure it witnesses, greedily apply source-level edits
   and keep each one iff the edited program still fails the same way
   (same stage, same failure class — {!Oracle.same_failure}).

   Edit families, tried in order on every program point:
   - statement deletion (including barriers),
   - region deletion: replace an [if]/[for]/[while]/[do]/block by one of
     its branches or its body (a [for] body keeps the header's init
     declaration so the induction variable stays defined),
   - loop-bound / constant shrinking: integer literals step toward 0,
     float literals toward 1.0 then 0.0,
   - expression simplification: a compound expression collapses to one
     of its operands.

   Every edit strictly shrinks the program (fewer statements, smaller
   literals, or a smaller expression tree), so the greedy fixpoint
   terminates; [max_checks] additionally bounds the oracle budget.
   Candidates that no longer compile simply fail with a different class
   ("frontend") and are rejected — no validity analysis needed. *)

open Cudafe.Ast

(* Pre-order counter-indexed rewriting of every statement in a body.
   [f i st] returning [Some l] replaces statement [i] by [l] (no
   recursion into the replacement — indices refer to the input tree). *)
let rec map_stmts f ctr (l : stmt list) : stmt list =
  List.concat_map
    (fun st ->
      let i = !ctr in
      incr ctr;
      match f i st with
      | Some repl -> repl
      | None -> [ { st with s = map_kind f ctr st.s } ])
    l

and map_kind f ctr (k : stmt_kind) : stmt_kind =
  match k with
  | S_if (c, a, b) -> S_if (c, map_stmts f ctr a, map_stmts f ctr b)
  | S_for (h, b) -> S_for (h, map_stmts f ctr b)
  | S_omp_for (h, b) -> S_omp_for (h, map_stmts f ctr b)
  | S_while (c, b) -> S_while (c, map_stmts f ctr b)
  | S_do_while (b, c) -> S_do_while (map_stmts f ctr b, c)
  | S_block b -> S_block (map_stmts f ctr b)
  | (S_decl _ | S_expr _ | S_return _ | S_sync | S_launch _) as k -> k

let map_program_stmts f (p : program) : program =
  let ctr = ref 0 in
  List.map (fun fn -> { fn with fn_body = map_stmts f ctr fn.fn_body }) p

(* Statement count = how far the traversal's own counter runs. *)
let count_stmts (p : program) : int =
  let ctr = ref 0 in
  ignore (List.map (fun fn -> map_stmts (fun _ _ -> None) ctr fn.fn_body) p);
  !ctr

(* The region-deletion replacements for one statement (deletion itself,
   [Some []], is always tried first by the driver loop). *)
let stmt_variants (st : stmt) : stmt list list =
  let keep_init h body =
    match h.f_init with Some s0 -> s0 :: body | None -> body
  in
  match st.s with
  | S_if (_, a, []) -> [ a ]
  | S_if (_, a, b) -> [ a; b ]
  | S_for (h, b) | S_omp_for (h, b) -> [ keep_init h b ]
  | S_while (_, b) -> [ b ]
  | S_do_while (b, _) -> [ b ]
  | S_block b -> [ b ]
  | S_decl _ | S_expr _ | S_return _ | S_sync | S_launch _ -> []

(* Pre-order counter-indexed rewriting of every expression. *)
let rec map_expr f ctr (e : expr) : expr =
  let i = !ctr in
  incr ctr;
  match f i e with
  | Some e' -> e'
  | None -> (
    match e with
    | E_int _ | E_float _ | E_id _ | E_builtin _ -> e
    | E_bin (op, a, b) -> E_bin (op, map_expr f ctr a, map_expr f ctr b)
    | E_un (op, a) -> E_un (op, map_expr f ctr a)
    | E_call (g, l) -> E_call (g, List.map (map_expr f ctr) l)
    | E_index (a, l) ->
      let a = map_expr f ctr a in
      E_index (a, List.map (map_expr f ctr) l)
    | E_deref a -> E_deref (map_expr f ctr a)
    | E_cast (t, a) -> E_cast (t, map_expr f ctr a)
    | E_cond (c, a, b) ->
      let c = map_expr f ctr c in
      let a = map_expr f ctr a in
      E_cond (c, a, b |> map_expr f ctr)
    | E_assign (l, r) ->
      let l = map_expr f ctr l in
      E_assign (l, map_expr f ctr r)
    | E_opassign (op, l, r) ->
      let l = map_expr f ctr l in
      E_opassign (op, l, map_expr f ctr r)
    | E_incr a -> E_incr (map_expr f ctr a)
    | E_decr a -> E_decr (map_expr f ctr a))

let map_decl_exprs f ctr (d : decl) =
  { d with
    d_dims = List.map (map_expr f ctr) d.d_dims
  ; d_init = Option.map (map_expr f ctr) d.d_init
  }

let rec map_header_exprs f ctr (h : for_header) =
  { f_init = Option.map (fun s -> stmt_map_expr f ctr s) h.f_init
  ; f_cond = Option.map (map_expr f ctr) h.f_cond
  ; f_step = Option.map (map_expr f ctr) h.f_step
  }

and stmt_map_expr f ctr (st : stmt) : stmt =
  let k =
    match st.s with
    | S_decl d -> S_decl (map_decl_exprs f ctr d)
    | S_expr e -> S_expr (map_expr f ctr e)
    | S_if (c, a, b) ->
      let c = map_expr f ctr c in
      let a = List.map (stmt_map_expr f ctr) a in
      S_if (c, a, List.map (stmt_map_expr f ctr) b)
    | S_for (h, b) ->
      let h = map_header_exprs f ctr h in
      S_for (h, List.map (stmt_map_expr f ctr) b)
    | S_omp_for (h, b) ->
      let h = map_header_exprs f ctr h in
      S_omp_for (h, List.map (stmt_map_expr f ctr) b)
    | S_while (c, b) ->
      let c = map_expr f ctr c in
      S_while (c, List.map (stmt_map_expr f ctr) b)
    | S_do_while (b, c) ->
      let b = List.map (stmt_map_expr f ctr) b in
      S_do_while (b, map_expr f ctr c)
    | S_return e -> S_return (Option.map (map_expr f ctr) e)
    | S_launch (name, (g1, g2, g3), (b1, b2, b3), args) ->
      let m = map_expr f ctr in
      let g = (m g1, Option.map m g2, Option.map m g3) in
      let bl = (m b1, Option.map m b2, Option.map m b3) in
      S_launch (name, g, bl, List.map m args)
    | S_sync -> S_sync
    | S_block b -> S_block (List.map (stmt_map_expr f ctr) b)
  in
  { st with s = k }

let map_program_exprs f (p : program) : program =
  let ctr = ref 0 in
  List.map
    (fun fn -> { fn with fn_body = List.map (stmt_map_expr f ctr) fn.fn_body })
    p

let count_exprs (p : program) : int =
  let ctr = ref 0 in
  ignore
    (List.map
       (fun fn -> List.map (stmt_map_expr (fun _ _ -> None) ctr) fn.fn_body)
       p);
  !ctr

(* Simpler replacements for one expression, in decreasing preference. *)
let expr_variants (e : expr) : expr list =
  match e with
  | E_int n when n > 1 ->
    List.sort_uniq compare [ E_int 1; E_int (n / 2); E_int (n - 1) ]
  | E_int 1 -> [ E_int 0 ]
  | E_float (f, d) when f <> 0.0 && f <> 1.0 ->
    [ E_float (1.0, d); E_float (0.0, d) ]
  | E_float (1.0, d) -> [ E_float (0.0, d) ]
  | E_bin (_, a, b) -> [ a; b ]
  | E_un (_, a) | E_cast (_, a) -> [ a ]
  | E_cond (_, a, b) -> [ a; b ]
  | _ -> []

(* IR size of the witness: ops inside the kernel's block-level parallel
   region(s) as the barrier-lowering passes see them — i.e. after the
   pipeline's cleanup prefix (canonicalize/cse/mem2reg), which promotes
   the frontend's mutable-local allocas.  The host-side launch
   scaffolding (function, grid loop, bound constants) is fixed overhead
   of every witness and is excluded, so the number measures how small
   the reducer got the kernel itself. *)
let ir_ops (src : string) : int =
  match Cudafe.Codegen.compile src with
  | exception _ -> max_int
  | m ->
    (match
       Core.Canonicalize.run m;
       Core.Cse.run m;
       ignore (Core.Mem2reg.run m);
       Core.Canonicalize.run m;
       Core.Cse.run m
     with
     | () -> ()
     | exception _ -> ());
    let n = ref 0 in
    Ir.Op.iter
      (fun op ->
        if op.Ir.Op.kind = Ir.Op.Parallel Ir.Op.Block then begin
          (* subtree minus the parallel wrapper itself *)
          decr n;
          Ir.Op.iter (fun _ -> incr n) op
        end)
      m;
    !n

let run ?options ?timeout_ms ?(max_checks = 1500) (src : string)
    (failure : Oracle.failure) : string =
  let checks = ref 0 in
  let still_fails src' =
    !checks < max_checks
    && begin
      incr checks;
      match Oracle.run ?options ?timeout_ms src' with
      | Oracle.Failed f' -> Oracle.same_failure failure f'
      | Oracle.Passed -> false
    end
  in
  match Cudafe.Parser.parse_program src with
  | exception _ -> src
  | prog ->
    let cur = ref prog in
    let cur_src = ref (Pp.program prog) in
    (* Reducing only makes sense if the reprinted program still fails
       the same way (it should — printing is semantics-preserving). *)
    if not (still_fails !cur_src) then src
    else begin
      let adopt cand =
        let s = Pp.program cand in
        if String.equal s !cur_src then false
        else if still_fails s then begin
          cur := cand;
          cur_src := s;
          true
        end
        else false
      in
      let stmt_pass () =
        let changed = ref false in
        let i = ref 0 in
        while !i < count_stmts !cur && !checks < max_checks do
          let target = !i in
          (* collect this statement's variants from the current tree *)
          let variants = ref [ [] (* delete *) ] in
          ignore
            (map_program_stmts
               (fun j st ->
                 if j = target then variants := !variants @ stmt_variants st;
                 None)
               !cur);
          let adopted =
            List.exists
              (fun repl ->
                adopt
                  (map_program_stmts
                     (fun j _ -> if j = target then Some repl else None)
                     !cur))
              !variants
          in
          if adopted then changed := true else incr i
          (* on success the tree shifted under [target]; rescan the same
             index, which now names the next statement *)
        done;
        !changed
      in
      let expr_pass () =
        let changed = ref false in
        let i = ref 0 in
        while !i < count_exprs !cur && !checks < max_checks do
          let target = !i in
          let variants = ref [] in
          ignore
            (map_program_exprs
               (fun j e ->
                 if j = target then variants := expr_variants e;
                 None)
               !cur);
          let adopted =
            List.exists
              (fun repl ->
                adopt
                  (map_program_exprs
                     (fun j _ -> if j = target then Some repl else None)
                     !cur))
              !variants
          in
          if adopted then changed := true;
          (* expression edits keep the index space mostly stable; moving
             on either way converges because later fixpoint rounds
             revisit everything *)
          incr i
        done;
        !changed
      in
      let progress = ref true in
      while !progress && !checks < max_checks do
        let a = stmt_pass () in
        let b = expr_pass () in
        progress := a || b
      done;
      !cur_src
    end
