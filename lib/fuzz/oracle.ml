(* The differential oracle: runs one mini-CUDA program through every
   rung of the lowering pipeline and both executors, comparing each rung
   against the GPU-semantics interpreter on the pristine module.

   Rungs, in order:
   - every stage of [Cpuify.pipeline_stages] individually (verify the
     IR, then interpret and compare checksums after each — so a
     divergence is pinned to the first stage that introduced it),
   - OpenMP lowering and the final canonicalization, interpreted at
     team sizes 1 and 4,
   - the compiled multicore engine ([Runtime.Exec]) at 1 and 4 domains,
     watchdog-armed so a miscompiled loop times out instead of hanging
     the fuzzer.

   A rung fails on verifier rejection, checksum divergence, runtime
   error text that differs from the reference's (located-error
   mismatch), a pass crash, or failure to lower.  The failure carries
   the stage name and a coarse class; the reducer preserves both while
   shrinking, so a reduced case still witnesses the same bug. *)

type failure =
  { f_stage : string (* pipeline stage (or "frontend" / "exec-dN") *)
  ; f_class : string
    (* "verifier" | "checksum" | "error-mismatch" | "crash" | "stuck"
       | "timeout" | "exec-unsupported" | "frontend" *)
  ; f_detail : string
  }

type outcome =
  | Passed
  | Failed of failure

let failure_to_string f =
  Printf.sprintf "[%s] %s: %s" f.f_stage f.f_class f.f_detail

let same_failure a b = a.f_stage = b.f_stage && a.f_class = b.f_class

(* The execution contract shared with {!Gen}: the host entry is
   [void launch(float* out, float* in)].  The buffers are sized for any
   generated grid (and any reduction of one), with the driver's
   deterministic input pattern. *)
let entry = "launch"
let buf_elems = 64

(* Generated kernels run well under 100k interpreter ops; anything that
   needs more (a reduction candidate whose loop no longer terminates) is
   cut off cheaply rather than spinning the reference for seconds. *)
let fuel = 300_000

let make_args () =
  let inp =
    Interp.Mem.of_float_array
      (Array.init buf_elems (fun i -> float_of_int ((i * 7 mod 11) + 1) /. 3.0))
  in
  let out = Interp.Mem.of_float_array (Array.make buf_elems 0.0) in
  (out, [ Interp.Mem.Buf out; Interp.Mem.Buf inp ])

(* Every rung computes the same double-precision operation sequence, so
   results should be bit-identical; the tolerance is slack against
   checksum-order effects only. *)
let close x y = Float.abs (x -. y) <= 1e-6 *. (1.0 +. Float.abs x)

let arrays_close a b =
  Array.length a = Array.length b && Array.for_all2 close a b

(* A rung's result: the output array, or the runtime error text. *)
type rv = (float array, string) result

let interp_run ?team_size m : rv =
  let out, args = make_args () in
  match Interp.Eval.run ?team_size ~fuel m entry args with
  | _ -> Ok (Interp.Mem.float_contents out)
  | exception Interp.Mem.Runtime_error msg -> Error msg

let compare_rv ~(stage : string) (reference : rv) (got : rv) : failure option =
  match (reference, got) with
  | Ok a, Ok b ->
    if arrays_close a b then None
    else
      Some
        { f_stage = stage
        ; f_class = "checksum"
        ; f_detail =
            Printf.sprintf "output diverges from reference (%d elements)"
              (Array.length a)
        }
  | Error a, Error b ->
    if String.equal a b then None
    else
      Some
        { f_stage = stage
        ; f_class = "error-mismatch"
        ; f_detail = Printf.sprintf "reference error %S, got %S" a b
        }
  | Ok _, Error b ->
    Some
      { f_stage = stage
      ; f_class = "error-mismatch"
      ; f_detail = Printf.sprintf "reference succeeded, rung failed: %s" b
      }
  | Error a, Ok _ ->
    Some
      { f_stage = stage
      ; f_class = "error-mismatch"
      ; f_detail = Printf.sprintf "reference failed (%s), rung succeeded" a
      }

(* The stage sequence after the frontend: cpuify's own stages, then
   OpenMP lowering and a final cleanup.  [`Lowered] marks the point
   after which team size is meaningful to the interpreter. *)
let stage_list options =
  List.map
    (fun (name, pass) -> (name, pass, `Gpu))
    (Core.Cpuify.pipeline_stages ~options ())
  @ [ ("omp-lower", (fun m -> ignore (Core.Omp_lower.run m)), `Lowered)
    ; ("post-canonicalize", Core.Canonicalize.run, `Lowered)
    ]

let classify_pass_exn exn =
  match exn with
  | Core.Cpuify.Stuck msg -> ("stuck", msg)
  | exn -> ("crash", Printexc.to_string exn)

(* [run] on a frontend-level module instead of source: the reference is
   a pristine deep clone interpreted under GPU semantics, the working
   copy another clone the rungs mutate — the input module is left
   untouched.  This is the validation entry the repair search uses on
   its edited (no longer source-backed) kernels. *)
let run_module ?(options = Core.Cpuify.default_options) ?(timeout_ms = 5000)
    (m0 : Ir.Op.op) : outcome =
  let reference = Ir.Clone.snapshot m0 in
  let ref_rv = interp_run reference in
  match ref_rv with
  | Error msg
    when String.length msg >= 24
         && String.equal (String.sub msg 0 24) "interpreter fuel exhaust" ->
    (* a nonterminating reference is not a valid differential subject
       (this only arises for reduction candidates); bail before the
       stage walk re-burns the fuel once per rung *)
    Failed
      { f_stage = "reference"; f_class = "nonterminating"; f_detail = msg }
  | _ ->
    let m = Ir.Clone.snapshot m0 in
    let check_stage (name, pass, kind) : failure option =
      match pass m with
      | exception exn ->
        let cls, detail = classify_pass_exn exn in
        Some { f_stage = name; f_class = cls; f_detail = detail }
      | () -> (
        match Ir.Verifier.verify_result m with
        | Error e ->
          Some { f_stage = name; f_class = "verifier"; f_detail = e }
        | Ok () ->
          let teams = match kind with `Gpu -> [ 4 ] | `Lowered -> [ 1; 4 ] in
          List.find_map
            (fun ts -> compare_rv ~stage:name ref_rv (interp_run ~team_size:ts m))
            teams)
    in
    let exec_stage domains : failure option =
      let stage = Printf.sprintf "exec-d%d" domains in
      match
        let out, args = make_args () in
        let _ = Runtime.Exec.run_module ~domains ~timeout_ms m entry args in
        Ok (Interp.Mem.float_contents out)
      with
      | got -> compare_rv ~stage ref_rv got
      | exception Interp.Mem.Runtime_error msg ->
        compare_rv ~stage ref_rv (Error msg)
      | exception Runtime.Exec.Unsupported msg ->
        Some { f_stage = stage; f_class = "exec-unsupported"; f_detail = msg }
      | exception Runtime.Exec.Timeout ms ->
        Some
          { f_stage = stage
          ; f_class = "timeout"
          ; f_detail =
              Printf.sprintf "parallel execution exceeded %d ms (watchdog)" ms
          }
    in
    let rungs =
      List.map (fun st () -> check_stage st) (stage_list options)
      @ List.map (fun d () -> exec_stage d) [ 1; 4 ]
    in
    (match List.find_map (fun rung -> rung ()) rungs with
     | Some f -> Failed f
     | None -> Passed)

let run ?options ?timeout_ms src : outcome =
  match Cudafe.Codegen.compile src with
  | exception Cudafe.Parser.Error e ->
    Failed { f_stage = "frontend"; f_class = "frontend"; f_detail = e }
  | exception Cudafe.Codegen.Error e ->
    Failed { f_stage = "frontend"; f_class = "frontend"; f_detail = e }
  | m0 -> run_module ?options ?timeout_ms m0

let ir_before ?(options = Core.Cpuify.default_options) src stage : string =
  match Cudafe.Codegen.compile src with
  | exception _ -> ""
  | m ->
    let rec walk = function
      | [] -> Ir.Printer.op_to_string m (* exec-dN / unknown: final IR *)
      | (name, _, _) :: _ when String.equal name stage ->
        Ir.Printer.op_to_string m
      | (_, pass, _) :: rest -> (
        match pass m with
        | () -> walk rest
        | exception _ -> Ir.Printer.op_to_string m)
    in
    if String.equal stage "frontend" then Ir.Printer.op_to_string m
    else walk (stage_list options)
