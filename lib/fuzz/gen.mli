(** Seeded generator of well-formed mini-CUDA kernels.

    Every program is race-free and deterministic by construction (the
    [test_random] discipline: own-slot accesses within a barrier
    interval, cross-thread reads fenced on both sides), so the
    GPU-semantics interpreter's result is the unique correct answer and
    any post-stage divergence found by {!Oracle} is a transformation
    bug.  The phase mix is biased toward the constructs the
    barrier-lowering passes must get right: values live across barriers
    (min-cut), loops containing uniform barriers (interchange, thread-0
    [while]-condition capture), write-after-read-protecting barriers
    (redundant-barrier elimination), thread-0 reductions and
    block-uniform branches. *)

(** Grid width of every generated program (the launch is always
    [k<<<blocks, threads>>>]). *)
val blocks : int

type cfg =
  { threads : int (** block width: 4 or 8, drawn from the seed *)
  ; n : int (** total output elements, [blocks * threads] *)
  }

val cfg_of_seed : int -> cfg

(** The generated program: kernel [k] plus host entry
    [void launch(float* out, float* in)].  Same seed, same source. *)
val source : seed:int -> string

(** Tensor-shaped programs ([fuzz --gen-tensor]): seeded
    cooperative-load shared-memory GEMMs, ring stencils with double
    buffering, and unrolled tree reductions — the dataflow shapes of
    the MocCUDA kernel tier, still race-free by construction.  Same
    [launch] contract as {!source}. *)
val tensor_source : seed:int -> string

(** [source ~seed] with one seeded [__syncthreads] deleted — the racy
    mutant whose known-good minimal repair is re-inserting it.  Not
    every mutant is actually racy (some fences are redundant for the
    drawn phases): the repair campaign keeps only the ones the
    sanitizer flags. *)
val racy_source : seed:int -> string
