(* Mini-CUDA AST pretty-printer: inverse of the parser, used by the
   test-case reducer to turn an edited AST back into source the frontend
   re-accepts.  Every compound expression is parenthesized, so printing
   never has to reason about precedence and a reparse is guaranteed to
   rebuild the same tree shape. *)

open Cudafe.Ast

let binop_str = function
  | Badd -> "+"
  | Bsub -> "-"
  | Bmul -> "*"
  | Bdiv -> "/"
  | Bmod -> "%"
  | Blt -> "<"
  | Ble -> "<="
  | Bgt -> ">"
  | Bge -> ">="
  | Beq -> "=="
  | Bne -> "!="
  | Bland -> "&&"
  | Blor -> "||"
  | Bband -> "&"
  | Bbor -> "|"
  | Bxor -> "^"
  | Bshl -> "<<"
  | Bshr -> ">>"

let unop_str = function
  | Uneg -> "-"
  | Unot -> "!"
  | Ubnot -> "~"

let builtin_str b d =
  let base =
    match b with
    | Thread_idx -> "threadIdx"
    | Block_idx -> "blockIdx"
    | Block_dim -> "blockDim"
    | Grid_dim -> "gridDim"
  in
  let dim = match d with X -> "x" | Y -> "y" | Z -> "z" in
  base ^ "." ^ dim

(* A float literal the lexer reads back as the same value: [%.9g] is
   exact for the f32-rounded constants the generator and reducer emit;
   doubles need a '.' or exponent to lex as FLOAT, floats take the 'f'
   suffix directly. *)
let float_lit f is_double =
  let s = Printf.sprintf "%.9g" f in
  let has_mark =
    String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s
  in
  let s = if is_double then (if has_mark then s else s ^ ".0") else s ^ "f" in
  if f < 0.0 then "(" ^ s ^ ")" else s

let rec expr = function
  | E_int i -> if i < 0 then Printf.sprintf "(%d)" i else string_of_int i
  | E_float (f, d) -> float_lit f d
  | E_id x -> x
  | E_builtin (b, d) -> builtin_str b d
  | E_bin (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr a) (binop_str op) (expr b)
  | E_un (op, a) -> Printf.sprintf "(%s%s)" (unop_str op) (expr a)
  | E_call (f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr args))
  | E_index (a, idxs) ->
    expr a ^ String.concat "" (List.map (fun i -> "[" ^ expr i ^ "]") idxs)
  | E_deref a -> Printf.sprintf "(*%s)" (expr a)
  | E_cast (t, a) -> Printf.sprintf "((%s)%s)" (ctype_to_string t) (expr a)
  | E_cond (c, a, b) ->
    Printf.sprintf "(%s ? %s : %s)" (expr c) (expr a) (expr b)
  | E_assign (l, r) -> Printf.sprintf "(%s = %s)" (expr l) (expr r)
  | E_opassign (op, l, r) ->
    Printf.sprintf "(%s %s= %s)" (expr l) (binop_str op) (expr r)
  | E_incr a -> Printf.sprintf "(%s++)" (expr a)
  | E_decr a -> Printf.sprintf "(%s--)" (expr a)

let dim3_str ((a, b, c) : dim3) =
  match (b, c) with
  | None, None -> expr a
  | _ ->
    Printf.sprintf "dim3(%s, %s, %s)" (expr a)
      (expr (Option.value b ~default:(E_int 1)))
      (expr (Option.value c ~default:(E_int 1)))

let decl_str (d : decl) =
  Printf.sprintf "%s%s %s%s%s"
    (if d.d_shared then "__shared__ " else "")
    (ctype_to_string d.d_type) d.d_name
    (String.concat "" (List.map (fun e -> "[" ^ expr e ^ "]") d.d_dims))
    (match d.d_init with None -> "" | Some e -> " = " ^ expr e)

let buf = Buffer.create 4096

let rec stmt ind (s : stmt) =
  let pad = String.make ind ' ' in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (pad ^ s ^ "\n")) fmt in
  match s.s with
  | S_decl d -> line "%s;" (decl_str d)
  | S_expr e -> line "%s;" (expr e)
  | S_sync -> line "__syncthreads();"
  | S_return None -> line "return;"
  | S_return (Some e) -> line "return %s;" (expr e)
  | S_block body ->
    line "{";
    List.iter (stmt (ind + 2)) body;
    line "}"
  | S_if (c, a, []) ->
    line "if (%s) {" (expr c);
    List.iter (stmt (ind + 2)) a;
    line "}"
  | S_if (c, a, b) ->
    line "if (%s) {" (expr c);
    List.iter (stmt (ind + 2)) a;
    line "} else {";
    List.iter (stmt (ind + 2)) b;
    line "}"
  | S_for (h, body) | S_omp_for (h, body) ->
    (match s.s with
     | S_omp_for _ -> line "#pragma omp parallel for"
     | _ -> ());
    let init =
      match h.f_init with
      | None -> ""
      | Some { s = S_decl d; _ } -> decl_str d
      | Some { s = S_expr e; _ } -> expr e
      | Some _ -> ""
    in
    line "for (%s; %s; %s) {" init
      (match h.f_cond with None -> "" | Some e -> expr e)
      (match h.f_step with None -> "" | Some e -> expr e);
    List.iter (stmt (ind + 2)) body;
    line "}"
  | S_while (c, body) ->
    line "while (%s) {" (expr c);
    List.iter (stmt (ind + 2)) body;
    line "}"
  | S_do_while (body, c) ->
    line "do {";
    List.iter (stmt (ind + 2)) body;
    line "} while (%s);" (expr c)
  | S_launch (f, grid, block, args) ->
    line "%s<<<%s, %s>>>(%s);" f (dim3_str grid) (dim3_str block)
      (String.concat ", " (List.map expr args))

let func (f : func) =
  let qual =
    match f.fn_qual with
    | Q_global -> "__global__ "
    | Q_device -> "__device__ "
    | Q_host -> ""
  in
  Buffer.add_string buf
    (Printf.sprintf "%s%s %s(%s) {\n" qual
       (ctype_to_string f.fn_ret)
       f.fn_name
       (String.concat ", "
          (List.map
             (fun (t, x) -> ctype_to_string t ^ " " ^ x)
             f.fn_params)));
  List.iter (stmt 2) f.fn_body;
  Buffer.add_string buf "}\n"

let program (p : program) =
  Buffer.clear buf;
  List.iter
    (fun f ->
      func f;
      Buffer.add_char buf '\n')
    p;
  Buffer.contents buf
