(** The differential fuzzing campaign: {!Gen} → {!Oracle} → {!Reduce} →
    crash bundle, deterministic given the seed.  Wall-clock appears only
    in the stats report, never in pass/fail decisions. *)

type finding =
  { fseed : int
  ; ffailure : Oracle.failure
  ; fsource : string (** the generated program *)
  ; freduced : string (** after shrinking; [= fsource] if irreducible *)
  ; fops : int (** IR ops of the reduced witness ({!Reduce.ir_ops}) *)
  ; fbundle : string option (** written bundle path, if any *)
  }

type report =
  { cases : int
  ; findings : finding list
  ; secs : float
  }

(** Run [cases] seeds starting at [seed].  Each failure is shrunk
    (unless [reduce] is [false]) and, when [crash_dir] is given, written
    as a v2 crash bundle with rung ["fuzz"] and the generator seed in
    its runtime line.  [tensor] draws from {!Gen.tensor_source} instead
    of {!Gen.source}.  [progress done_ found] is called after each
    case. *)
val run_campaign :
  ?options:Core.Cpuify.options ->
  ?timeout_ms:int ->
  ?crash_dir:string ->
  ?reduce:bool ->
  ?tensor:bool ->
  ?progress:(int -> int -> unit) ->
  seed:int ->
  cases:int ->
  unit ->
  report

(** Human-readable stats: cases, cases/min, findings with their reduced
    sizes and bundle paths. *)
val report_to_string : report -> string

(** {2 The racy-repair campaign ([fuzz --gen-racy])} *)

type repair_finding =
  { pseed : int
  ; perrors : int (** sanitizer errors before repair *)
  ; pedits : int (** barrier edits applied (0 on failure) *)
  ; ptried : int (** candidates speculatively applied *)
  ; psecs : float (** search + validation wall-clock *)
  ; presult : (string list, string) result
    (** patch lines, or the failure reason *)
  }

type repair_report =
  { rscanned : int (** seeds examined *)
  ; rracy : int (** sanitizer-dirty mutants among them *)
  ; rfindings : repair_finding list (** one per racy mutant, seed order *)
  ; rsecs : float
  }

(** Scan seeds from [seed] until [racy] sanitizer-dirty mutants
    ({!Gen.racy_source}) are found (or [max_seeds], default
    [racy * 20], are scanned) and run the analysis-guided repair search
    ({!Core.Repair}) on each, validating every sanitizer-clean repair
    against the differential oracle ({!Oracle.run_module}).
    Deterministic apart from the timing fields. *)
val run_repair_campaign :
  ?options:Core.Cpuify.options ->
  ?timeout_ms:int ->
  ?max_seeds:int ->
  ?progress:(int -> int -> unit) ->
  seed:int ->
  racy:int ->
  unit ->
  repair_report

val repair_report_to_string : repair_report -> string

(** Re-run the oracle on a fuzz bundle's embedded source; [Ok] iff the
    recorded stage and class still fail (the [--replay] path for bundles
    whose rung is ["fuzz"]). *)
val replay : Core.Crashbundle.t -> (string, string) result
