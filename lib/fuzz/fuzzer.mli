(** The differential fuzzing campaign: {!Gen} → {!Oracle} → {!Reduce} →
    crash bundle, deterministic given the seed.  Wall-clock appears only
    in the stats report, never in pass/fail decisions. *)

type finding =
  { fseed : int
  ; ffailure : Oracle.failure
  ; fsource : string (** the generated program *)
  ; freduced : string (** after shrinking; [= fsource] if irreducible *)
  ; fops : int (** IR ops of the reduced witness ({!Reduce.ir_ops}) *)
  ; fbundle : string option (** written bundle path, if any *)
  }

type report =
  { cases : int
  ; findings : finding list
  ; secs : float
  }

(** Run [cases] seeds starting at [seed].  Each failure is shrunk
    (unless [reduce] is [false]) and, when [crash_dir] is given, written
    as a v2 crash bundle with rung ["fuzz"] and the generator seed in
    its runtime line.  [progress done_ found] is called after each
    case. *)
val run_campaign :
  ?options:Core.Cpuify.options ->
  ?timeout_ms:int ->
  ?crash_dir:string ->
  ?reduce:bool ->
  ?progress:(int -> int -> unit) ->
  seed:int ->
  cases:int ->
  unit ->
  report

(** Human-readable stats: cases, cases/min, findings with their reduced
    sizes and bundle paths. *)
val report_to_string : report -> string

(** Re-run the oracle on a fuzz bundle's embedded source; [Ok] iff the
    recorded stage and class still fail (the [--replay] path for bundles
    whose rung is ["fuzz"]). *)
val replay : Core.Crashbundle.t -> (string, string) result
