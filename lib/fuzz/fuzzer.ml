(* The fuzzing campaign: generate seeded kernels, run each through the
   differential {!Oracle}, shrink every failure with {!Reduce}, and
   persist each (reduced) witness as a replayable crash bundle in the
   existing [Crashbundle] format — so [--replay] works on fuzz findings
   exactly as it does on pass-manager crashes.

   Everything is deterministic given [seed] and [cases]: the generator
   is seed-indexed, the oracle's executions are race-free, and the
   reducer is a deterministic greedy fixpoint.  Wall-clock only appears
   in the stats report, never in a pass/fail decision. *)

type finding =
  { fseed : int
  ; ffailure : Oracle.failure
  ; fsource : string (* the generated program *)
  ; freduced : string (* after shrinking; = fsource if irreducible *)
  ; fops : int (* IR ops of the reduced witness *)
  ; fbundle : string option (* bundle path, when a crash dir was given *)
  }

type report =
  { cases : int
  ; findings : finding list
  ; secs : float
  }

let bundle_of_finding ?(options = Core.Cpuify.default_options) ~timeout_ms
    (f : finding) : Core.Crashbundle.t =
  { version = Core.Crashbundle.current_version
  ; stage = f.ffailure.f_stage
  ; stage_index = 0
  ; rung = "fuzz"
  ; exn_text = f.ffailure.f_class ^ ": " ^ f.ffailure.f_detail
  ; backtrace = ""
  ; repro =
      Printf.sprintf "polygeist-cpu fuzz --seed %d --cases 1 (reduced to %d ops)"
        f.fseed f.fops
  ; options
  ; faults = []
  ; runtime =
      Some
        { rexec = "parallel"
        ; rdomains = 4
        ; rschedule = "static"
        ; rchunk = None
        ; rseed = Some f.fseed
        ; rtimeout_ms = Some timeout_ms
        }
  ; serve = None
  ; source = f.freduced
  ; ir_before = Oracle.ir_before ~options f.freduced f.ffailure.f_stage
  }

let run_campaign ?(options = Core.Cpuify.default_options) ?(timeout_ms = 5000)
    ?crash_dir ?(reduce = true) ?(tensor = false)
    ?(progress = fun _ _ -> ()) ~seed ~cases () : report =
  let t0 = Unix.gettimeofday () in
  let findings = ref [] in
  for i = 0 to cases - 1 do
    let case_seed = seed + i in
    let src =
      if tensor then Gen.tensor_source ~seed:case_seed
      else Gen.source ~seed:case_seed
    in
    (match Oracle.run ~options ~timeout_ms src with
     | Oracle.Passed -> ()
     | Oracle.Failed failure ->
       let reduced =
         if reduce then Reduce.run ~options ~timeout_ms src failure else src
       in
       let finding =
         { fseed = case_seed
         ; ffailure = failure
         ; fsource = src
         ; freduced = reduced
         ; fops = Reduce.ir_ops reduced
         ; fbundle = None
         }
       in
       let finding =
         match crash_dir with
         | None -> finding
         | Some dir -> (
           let b = bundle_of_finding ~options ~timeout_ms finding in
           match Core.Crashbundle.write ~dir b with
           | Ok path -> { finding with fbundle = Some path }
           | Error _ -> finding)
       in
       findings := finding :: !findings);
    progress (i + 1) (List.length !findings)
  done;
  { cases; findings = List.rev !findings; secs = Unix.gettimeofday () -. t0 }

let report_to_string (r : report) : string =
  let b = Buffer.create 256 in
  let per_min =
    if r.secs > 0.0 then float_of_int r.cases /. (r.secs /. 60.0) else 0.0
  in
  Buffer.add_string b
    (Printf.sprintf
       "fuzz: %d cases in %.1fs (%.0f cases/min), %d divergence%s found\n"
       r.cases r.secs per_min
       (List.length r.findings)
       (if List.length r.findings = 1 then "" else "s"));
  List.iter
    (fun f ->
      Buffer.add_string b
        (Printf.sprintf "  seed %d: %s — reduced to %d IR ops%s\n" f.fseed
           (Oracle.failure_to_string f.ffailure)
           f.fops
           (match f.fbundle with
            | Some p -> Printf.sprintf " (bundle: %s)" p
            | None -> "")))
    r.findings;
  Buffer.contents b

(* --- the racy-repair campaign ([fuzz --gen-racy]) --- *)

(* Closing the loop between the three correctness tools: generate a
   racy mutant ({!Gen.racy_source}), hand it to the analysis-guided
   repair search ({!Core.Repair}), and accept a repair only when the
   differential oracle agrees the fixed kernel matches the pristine
   reference on every rung.  Deterministic given the seed range. *)

type repair_finding =
  { pseed : int
  ; perrors : int (* sanitizer errors before repair *)
  ; pedits : int (* barrier edits applied (0 on failure) *)
  ; ptried : int (* candidates speculatively applied *)
  ; psecs : float (* search + validation wall-clock *)
  ; presult : (string list, string) result (* patch lines, or why not *)
  }

type repair_report =
  { rscanned : int (* seeds examined *)
  ; rracy : int (* sanitizer-dirty mutants among them *)
  ; rfindings : repair_finding list (* one per racy mutant, seed order *)
  ; rsecs : float
  }

(* The sanitizer's precision contract (see [Kernelcheck]): clean the IR
   before checking — same sequence as the driver's -check path. *)
let cleanup (m : Ir.Op.op) : unit =
  Core.Canonicalize.run m;
  Core.Cse.run m;
  ignore (Core.Mem2reg.run m);
  Core.Canonicalize.run m

let run_repair_campaign ?(options = Core.Cpuify.default_options)
    ?(timeout_ms = 5000) ?max_seeds ?(progress = fun _ _ -> ()) ~seed ~racy ()
  : repair_report =
  let t0 = Unix.gettimeofday () in
  let max_seeds = match max_seeds with Some n -> n | None -> racy * 20 in
  let findings = ref [] in
  let nracy = ref 0 in
  let scanned = ref 0 in
  while !scanned < max_seeds && !nracy < racy do
    let case_seed = seed + !scanned in
    incr scanned;
    (match Cudafe.Codegen.compile (Gen.racy_source ~seed:case_seed) with
     | exception _ -> () (* mutation broke the frontend contract: skip *)
     | m ->
       cleanup m;
       let errs =
         List.filter Core.Repair.target_diag
           (Analysis.Kernelcheck.check_module ~report_possible:true m)
       in
       if errs <> [] then begin
         incr nracy;
         let c0 = Unix.gettimeofday () in
         let validate m =
           match Oracle.run_module ~options ~timeout_ms m with
           | Oracle.Passed -> Ok ()
           | Oracle.Failed f -> Error (Oracle.failure_to_string f)
         in
         let out = Core.Repair.run ~validate m in
         let secs = Unix.gettimeofday () -. c0 in
         let pedits, presult =
           match out.Core.Repair.status with
           | Core.Repair.Clean -> (0, Ok [])
           | Core.Repair.Repaired edits ->
             ( List.length edits
             , Ok
                 (List.map
                    (Core.Repair.edit_to_string
                       ~file:(Printf.sprintf "<seed %d>" case_seed))
                    edits) )
           | Core.Repair.Failed why -> (0, Error why)
         in
         findings :=
           { pseed = case_seed
           ; perrors = List.length errs
           ; pedits
           ; ptried = out.Core.Repair.stats.Core.Repair.candidates_tried
           ; psecs = secs
           ; presult
           }
           :: !findings
       end);
    progress !scanned !nracy
  done;
  { rscanned = !scanned
  ; rracy = !nracy
  ; rfindings = List.rev !findings
  ; rsecs = Unix.gettimeofday () -. t0
  }

let repair_report_to_string (r : repair_report) : string =
  let b = Buffer.create 256 in
  let repaired =
    List.length (List.filter (fun f -> Result.is_ok f.presult) r.rfindings)
  in
  let median =
    match List.sort compare (List.map (fun f -> f.psecs) r.rfindings) with
    | [] -> 0.0
    | l -> List.nth l (List.length l / 2)
  in
  Buffer.add_string b
    (Printf.sprintf
       "repair: %d racy mutant%s from %d seeds, %d repaired (%.0f ms median \
        search), %.1fs total\n"
       r.rracy
       (if r.rracy = 1 then "" else "s")
       r.rscanned repaired (median *. 1000.0) r.rsecs);
  List.iter
    (fun f ->
      match f.presult with
      | Ok lines ->
        Buffer.add_string b
          (Printf.sprintf
             "  seed %d: %d error%s fixed with %d edit%s (%d candidates \
              tried)\n"
             f.pseed f.perrors
             (if f.perrors = 1 then "" else "s")
             f.pedits
             (if f.pedits = 1 then "" else "s")
             f.ptried);
        List.iter
          (fun l -> Buffer.add_string b (Printf.sprintf "    %s\n" l))
          lines
      | Error why ->
        Buffer.add_string b
          (Printf.sprintf "  seed %d: NOT repaired (%d candidates tried): %s\n"
             f.pseed f.ptried why))
    r.rfindings;
  Buffer.contents b

(* Replaying a fuzz bundle: re-run the oracle on the embedded (reduced)
   source and check the same stage and class still fail.  Used by the
   driver's [--replay] when it meets a bundle whose rung is "fuzz". *)
let replay (b : Core.Crashbundle.t) : (string, string) result =
  let timeout_ms =
    match b.runtime with
    | Some { rtimeout_ms = Some ms; _ } -> ms
    | _ -> 5000
  in
  let want_class =
    match String.index_opt b.exn_text ':' with
    | Some i -> String.sub b.exn_text 0 i
    | None -> b.exn_text
  in
  match Oracle.run ~options:b.options ~timeout_ms b.source with
  | Oracle.Failed f
    when String.equal f.f_stage b.stage && String.equal f.f_class want_class ->
    Ok (Oracle.failure_to_string f)
  | Oracle.Failed f ->
    Error
      (Printf.sprintf "different failure: recorded [%s] %s, got %s" b.stage
         want_class
         (Oracle.failure_to_string f))
  | Oracle.Passed -> Error "stale: embedded source now passes the oracle"
