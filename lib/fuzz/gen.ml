(* Seeded generator of well-formed mini-CUDA kernels for differential
   fuzzing.  Every generated program is race-free and deterministic by
   construction — the same discipline as [test_random]: within one
   barrier interval a thread only touches its own slot of each shared
   array, and any cross-thread read is fenced by [__syncthreads] on both
   sides.  That makes the GPU-semantics interpreter's result the unique
   correct answer, so any divergence after a pipeline stage is a
   transformation bug, never generator noise.

   The phase mix is deliberately biased toward the constructs the
   barrier-lowering passes have to get right:

   - values live across a barrier (the min-cut splitter must cache
     exactly the crossing set),
   - [for]/[while] loops containing uniform barriers (loop interchange,
     including the thread-0 condition capture for [while]),
   - barriers whose only job is protecting a write-after-read (the
     redundant-barrier eliminator must keep them),
   - thread-0 reductions and block-uniform [if]s (divergent-looking but
     uniform barrier positions).

   The frontend has no atomics, so the guarded thread-0 reduction phase
   stands in for the atomic-update pattern. *)

let blocks = 2

type cfg =
  { threads : int
  ; n : int (* total elements: blocks * threads *)
  }

let cfg_of_seed seed =
  let rng = Random.State.make [| 0x5eed; seed |] in
  let threads = if Random.State.bool rng then 4 else 8 in
  { threads; n = blocks * threads }

(* Each phase is a string of statements; [fresh] keeps scalar names
   unique so mem2reg sees straight-line SSA-able locals. *)
type st =
  { rng : Random.State.t
  ; t : int (* threads per block *)
  ; mutable fresh : int
  }

let fv st prefix =
  st.fresh <- st.fresh + 1;
  Printf.sprintf "%s%d" prefix st.fresh

let pick st l = List.nth l (Random.State.int st.rng (List.length l))
let int st n = Random.State.int st.rng n

(* Race-free without synchronization: reads/writes only index [t]. *)
let per_thread_stmt st =
  let dst = pick st [ "s1"; "s2" ] in
  let src = pick st [ "s1"; "s2" ] in
  let c = 1 + int st 5 in
  pick st
    [ Printf.sprintf "%s[t] = %s[t] + %d.0f;" dst src c
    ; Printf.sprintf "%s[t] = %s[t] * 0.%df + in[b * %d + t];" dst src c st.t
    ; Printf.sprintf "%s[t] = in[b * %d + t] - %s[t] * 0.5f;" dst st.t src
    ; Printf.sprintf "if (t < %d) { %s[t] = %s[t] + 1.0f; }"
        (1 + int st (st.t - 1))
        dst dst
    ]

(* Rotated read fenced on both sides.  The trailing barrier protects the
   next interval's writes to [src] against this interval's reads — a
   write-after-read dependence, exactly what an over-eager
   redundant-barrier eliminator would drop. *)
let cross_thread_phase st =
  let k = 1 + int st (st.t - 1) in
  let dst, src = if Random.State.bool st.rng then ("s1", "s2") else ("s2", "s1") in
  Printf.sprintf
    "__syncthreads();\n  %s[t] = %s[(t + %d) %% %d] * 0.5f;\n  __syncthreads();"
    dst src k st.t

(* A scalar computed before the barrier and used after it: the splitter
   must carry it across the cut (min-cut picks the crossing values). *)
let live_across_phase st =
  let v = fv st "v" in
  let c = 1 + int st 7 in
  let k = 1 + int st (st.t - 1) in
  Printf.sprintf
    "float %s = s1[t] * 0.%df + s2[t];\n\
    \  __syncthreads();\n\
    \  s2[t] = %s + s1[(t + %d) %% %d] * 0.5f;\n\
    \  __syncthreads();"
    v c v k st.t

(* Serial loop whose body contains barriers: loop interchange must
   distribute the loop around each barrier interval.  Interval 1 reads a
   rotated slot into a private scalar (reads only), interval 2 writes the
   thread's own slot — race-free per interval, racy without the fences.
   The leading barrier fences the first iteration's rotated read against
   the previous phase's (own-slot) writes. *)
let for_barrier_phase st =
  let i = fv st "i" and w = fv st "w" in
  let trips = 1 + int st 3 in
  let k = int st st.t in
  Printf.sprintf
    "__syncthreads();\n\
    \  for (int %s = 0; %s < %d; %s++) {\n\
    \    float %s = s2[(t + %s + %d) %% %d];\n\
    \    __syncthreads();\n\
    \    s2[t] = %s * 0.75f + 1.0f;\n\
    \    __syncthreads();\n\
    \  }"
    i i trips i w i k st.t w

(* While loop with a uniform private condition and barriers in the body:
   interchange of [while] captures the condition once (from thread 0)
   per trip — the thread-0 capture is load-bearing. *)
let while_barrier_phase st =
  let c = fv st "c" in
  let trips = 1 + int st 3 in
  Printf.sprintf
    "int %s = 0;\n\
    \  while (%s < %d) {\n\
    \    s1[t] = s1[t] * 0.5f + s2[t] * 0.25f;\n\
    \    __syncthreads();\n\
    \    s2[t] = s2[t] + s1[(t + 1) %% %d] * 0.125f;\n\
    \    __syncthreads();\n\
    \    %s = %s + 1;\n\
    \  }"
    c c trips st.t c c

(* Guarded single-writer reduction: thread 0 folds the whole array while
   everyone else waits at the fences.  Divergent-looking control flow
   around uniform barriers, and the atomics stand-in. *)
let reduction_phase st =
  let a = fv st "r" and j = fv st "j" in
  let dst, src = if Random.State.bool st.rng then ("s1", "s2") else ("s2", "s1") in
  Printf.sprintf
    "__syncthreads();\n\
    \  if (t == 0) {\n\
    \    float %s = 0.0f;\n\
    \    for (int %s = 0; %s < %d; %s++) { %s = %s + %s[%s]; }\n\
    \    %s[0] = %s[0] * 0.5f + %s * 0.125f;\n\
    \  }\n\
    \  __syncthreads();"
    a j j st.t j a a src j dst dst a

(* Block-uniform branch containing barriers: every thread of a block
   takes the same arm, so the barrier is uniform even though the program
   point is control-dependent. *)
let uniform_if_phase st =
  let k = 1 + int st (st.t - 1) in
  Printf.sprintf
    "if (b %% 2 == 0) {\n\
    \    __syncthreads();\n\
    \    s1[t] = s2[(t + %d) %% %d] * 0.5f + s1[t];\n\
    \    __syncthreads();\n\
    \  }"
    k st.t

(* Plain serial compute loop, occasionally nested — grist for licm,
   mem2reg and the affine passes, no synchronization involved. *)
let serial_loop_phase st =
  let i = fv st "i" in
  let trips = 1 + int st 3 in
  let body = per_thread_stmt st in
  if Random.State.bool st.rng then
    Printf.sprintf "for (int %s = 0; %s < %d; %s++) {\n    %s\n  }" i i trips i
      body
  else begin
    let j = fv st "j" in
    Printf.sprintf
      "for (int %s = 0; %s < %d; %s++) {\n\
      \    for (int %s = 0; %s < 2; %s++) {\n\
      \      %s\n\
      \    }\n\
      \  }"
      i i trips i j j j body
  end

let phase st =
  match int st 10 with
  | 0 | 1 -> per_thread_stmt st
  | 2 -> cross_thread_phase st
  | 3 | 4 -> live_across_phase st
  | 5 -> for_barrier_phase st
  | 6 -> while_barrier_phase st
  | 7 -> reduction_phase st
  | 8 -> uniform_if_phase st
  | _ -> serial_loop_phase st

(* All start offsets of [needle] in [hay], left to right. *)
let find_all ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i acc =
    if i + nl > hl then List.rev acc
    else if String.equal (String.sub hay i nl) needle then
      go (i + nl) (i :: acc)
    else go (i + 1) acc
  in
  go 0 []

let source ~seed =
  let cfg = cfg_of_seed seed in
  let st =
    { rng = Random.State.make [| 0x5eed; seed |]; t = cfg.threads; fresh = 0 }
  in
  (* burn the draw [cfg_of_seed] made so phases differ across seeds with
     equal thread counts *)
  ignore (Random.State.bool st.rng);
  let n_phases = 3 + int st 4 in
  let phases = List.init n_phases (fun _ -> phase st) in
  Printf.sprintf
    {|
__global__ void k(float* out, float* in) {
  __shared__ float s1[%d];
  __shared__ float s2[%d];
  int t = threadIdx.x;
  int b = blockIdx.x;
  s1[t] = in[b * %d + t];
  s2[t] = in[b * %d + t] * 0.25f;
  __syncthreads();
  %s
  __syncthreads();
  out[b * %d + t] = s1[t] + s2[t];
}
void launch(float* out, float* in) { k<<<%d, %d>>>(out, in); }
|}
    cfg.threads cfg.threads cfg.threads cfg.threads
    (String.concat "\n  " phases)
    cfg.threads blocks cfg.threads

(* --- tensor-shaped programs ([fuzz --gen-tensor]) ---

   The same race-free discipline, but with the dataflow shapes of the
   MocCUDA kernel tier: cooperative-load shared-memory GEMM, a ring
   stencil with double buffering, and an unrolled tree reduction.
   These stress what the phase mix above cannot: 2D thread blocks with
   partial-tile guards, barrier-separated load/compute epochs, and
   log-depth single-writer fan-in. *)

(* dim3(N, M) block; A (MxK) at in[0], B (KxN) at in[32]; threads with
   tx < K (resp. ty < K) cooperatively stage the tiles, so K <= min(M,N)
   keeps every element covered.  One barrier between load and use. *)
let tensor_gemm rng =
  let m = 3 + Random.State.int rng 3 in
  let n = 3 + Random.State.int rng 3 in
  let k = 2 + Random.State.int rng (min m n - 1) in
  let c = 1 + Random.State.int rng 7 in
  Printf.sprintf
    {|
__global__ void k(float* out, float* in) {
  __shared__ float As[%d][%d];
  __shared__ float Bs[%d][%d];
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  if (tx < %d) { As[ty][tx] = in[ty * %d + tx]; }
  if (ty < %d) { Bs[ty][tx] = in[32 + ty * %d + tx]; }
  __syncthreads();
  float acc = 0.0f;
  for (int i = 0; i < %d; i++) {
    acc = acc + As[ty][i] * Bs[i][tx];
  }
  out[ty * %d + tx] = acc * 0.%df;
}
void launch(float* out, float* in) { k<<<1, dim3(%d, %d)>>>(out, in); }
|}
    m k k n k k k n k n c n m

(* Ring stencil with double buffering: rotated reads and own-slot
   writes alternate across the fences, [iters] trips of the
   barrier-carrying loop. *)
let tensor_stencil rng =
  let t = if Random.State.bool rng then 8 else 16 in
  let iters = 2 + Random.State.int rng 3 in
  let c = 1 + Random.State.int rng 7 in
  Printf.sprintf
    {|
__global__ void k(float* out, float* in) {
  __shared__ float s[%d];
  __shared__ float d[%d];
  int t = threadIdx.x;
  int b = blockIdx.x;
  s[t] = in[b * %d + t];
  __syncthreads();
  for (int i = 0; i < %d; i++) {
    d[t] = (s[(t + 1) %% %d] + s[(t + %d) %% %d]) * 0.25f + s[t] * 0.%df;
    __syncthreads();
    s[t] = d[t];
    __syncthreads();
  }
  out[b * %d + t] = s[t];
}
void launch(float* out, float* in) { k<<<2, %d>>>(out, in); }
|}
    t t t iters t (t - 1) t c t t

(* Tree reduction, unrolled level by level (the strides are compile-time
   constants): each fenced interval has a single writer per slot, and
   every thread reads the root after the last fence. *)
let tensor_reduction rng =
  let t = if Random.State.bool rng then 4 else 8 in
  let c = 1 + Random.State.int rng 7 in
  let levels =
    let rec go stride acc =
      if stride = 0 then List.rev acc
      else
        go (stride / 2)
          (Printf.sprintf
             "if (t < %d) { s[t] = s[t] + s[t + %d]; }\n  __syncthreads();"
             stride stride
           :: acc)
    in
    go (t / 2) []
  in
  Printf.sprintf
    {|
__global__ void k(float* out, float* in) {
  __shared__ float s[%d];
  int t = threadIdx.x;
  int b = blockIdx.x;
  s[t] = in[b * %d + t];
  __syncthreads();
  %s
  out[b * %d + t] = s[0] * 0.%df + in[b * %d + t] * 0.5f;
}
void launch(float* out, float* in) { k<<<2, %d>>>(out, in); }
|}
    t t
    (String.concat "\n  " levels)
    t c t t

let tensor_source ~seed =
  let rng = Random.State.make [| 0x7e45; seed |] in
  match Random.State.int rng 3 with
  | 0 -> tensor_gemm rng
  | 1 -> tensor_stencil rng
  | _ -> tensor_reduction rng

(* A racy mutant of [source ~seed]: the same program with one
   [__syncthreads] deleted, chosen by the seed.  Since every generated
   program is race-free exactly BECAUSE of its fences, dropping one
   usually — not always (some fences are redundant for the phases that
   happened to be drawn) — introduces a real cross-thread race whose
   known-good minimal repair is re-inserting the deleted barrier.  The
   repair campaign keeps only the mutants the sanitizer flags. *)
let racy_source ~seed =
  let src = source ~seed in
  let needle = "__syncthreads();" in
  match find_all ~needle src with
  | [] -> src
  | occs ->
    let rng = Random.State.make [| 0xbad; seed |] in
    let at = List.nth occs (Random.State.int rng (List.length occs)) in
    String.sub src 0 at
    ^ String.sub src
        (at + String.length needle)
        (String.length src - at - String.length needle)
