(* The non-convolution layers ResNet-50 needs (Sec. V-B): batch
   normalization, ReLU, max pooling, the final linear layer, softmax, and
   the negative log-likelihood loss.  Each has a compute implementation
   and a cost descriptor. *)

let f = float_of_int

(* --- ReLU --- *)

let relu (t : Tensor.t) : Tensor.t =
  Tensor.of_array (Array.copy t.Tensor.shape)
    (Array.map (fun x -> if x > 0.0 then x else 0.0) t.Tensor.data)

let cost_relu (numel : int) : Opcost.t =
  { Opcost.vflops = f numel
  ; sflops = 0.0
  ; stream_bytes = 8.0 *. f numel
  ; latency_bytes = 0.0
  ; launches = 1
  }

(* --- bias + ReLU (the fused elementwise epilogue of a conv) --- *)

let bias_relu ~(bias : float array) (t : Tensor.t) : Tensor.t =
  let out = Tensor.copy t in
  let c = t.Tensor.shape.(1) in
  let hw = t.Tensor.shape.(2) * t.Tensor.shape.(3) in
  Array.iteri
    (fun i x ->
      let v = x +. bias.(i / hw mod c) in
      out.Tensor.data.(i) <- (if v > 0.0 then v else 0.0))
    t.Tensor.data;
  out

let cost_bias_relu (numel : int) : Opcost.t =
  { Opcost.vflops = 2.0 *. f numel
  ; sflops = 0.0
  ; stream_bytes = 8.0 *. f numel
  ; latency_bytes = 0.0
  ; launches = 1
  }

(* --- batch normalization (inference form) --- *)

let batchnorm ~(gamma : float array) ~(beta : float array)
    ~(mean : float array) ~(var : float array) (t : Tensor.t) : Tensor.t =
  let out = Tensor.copy t in
  let n = t.Tensor.shape.(0) and c = t.Tensor.shape.(1) in
  let hw = t.Tensor.shape.(2) * t.Tensor.shape.(3) in
  for ni = 0 to n - 1 do
    for ci = 0 to c - 1 do
      let scale = gamma.(ci) /. sqrt (var.(ci) +. 1e-5) in
      let shift = beta.(ci) -. (scale *. mean.(ci)) in
      let base = ((ni * c) + ci) * hw in
      for i = 0 to hw - 1 do
        out.Tensor.data.(base + i) <-
          (scale *. t.Tensor.data.(base + i)) +. shift
      done
    done
  done;
  out

let cost_batchnorm (numel : int) : Opcost.t =
  { Opcost.vflops = 2.0 *. f numel
  ; sflops = 0.0
  ; stream_bytes = 8.0 *. f numel
  ; latency_bytes = 0.0
  ; launches = 1
  }

(* --- max pooling --- *)

let maxpool ~(size : int) ~(stride : int) (t : Tensor.t) : Tensor.t =
  let n = t.Tensor.shape.(0) and c = t.Tensor.shape.(1) in
  let h = t.Tensor.shape.(2) and w = t.Tensor.shape.(3) in
  let oh = ((h - size) / stride) + 1 and ow = ((w - size) / stride) + 1 in
  let out = Tensor.create [| n; c; oh; ow |] in
  for ni = 0 to n - 1 do
    for ci = 0 to c - 1 do
      for y = 0 to oh - 1 do
        for x = 0 to ow - 1 do
          let m = ref neg_infinity in
          for dy = 0 to size - 1 do
            for dx = 0 to size - 1 do
              m :=
                Float.max !m
                  (Tensor.get4 t ni ci ((y * stride) + dy) ((x * stride) + dx))
            done
          done;
          Tensor.set4 out ni ci y x !m
        done
      done
    done
  done;
  out

(* --- global average pooling (NCHW -> NC) --- *)

let avgpool_global (t : Tensor.t) : Tensor.t =
  let n = t.Tensor.shape.(0) and c = t.Tensor.shape.(1) in
  let hw = t.Tensor.shape.(2) * t.Tensor.shape.(3) in
  let out = Tensor.create [| n; c |] in
  for ni = 0 to n - 1 do
    for ci = 0 to c - 1 do
      let acc = ref 0.0 in
      for i = 0 to hw - 1 do
        acc := !acc +. t.Tensor.data.((((ni * c) + ci) * hw) + i)
      done;
      Tensor.set2 out ni ci (!acc /. f hw)
    done
  done;
  out

let cost_avgpool (numel_in : int) : Opcost.t =
  { Opcost.vflops = f numel_in
  ; sflops = 0.0
  ; stream_bytes = 8.0 *. f numel_in
  ; latency_bytes = 0.0
  ; launches = 1
  }

let cost_maxpool ~(size : int) (numel_out : int) : Opcost.t =
  { Opcost.vflops = f (numel_out * size * size)
  ; sflops = 0.0
  ; stream_bytes = 4.0 *. f (numel_out * ((size * size) + 1))
  ; latency_bytes = 0.0
  ; launches = 1
  }

(* --- linear --- *)

let linear ~(weight : Tensor.t) (t : Tensor.t) : Tensor.t =
  (* t: N x F, weight: O x F *)
  let n = t.Tensor.shape.(0) and fdim = t.Tensor.shape.(1) in
  let o = weight.Tensor.shape.(0) in
  let out = Tensor.create [| n; o |] in
  for ni = 0 to n - 1 do
    for oi = 0 to o - 1 do
      let acc = ref 0.0 in
      for k = 0 to fdim - 1 do
        acc := !acc +. (Tensor.get2 t ni k *. Tensor.get2 weight oi k)
      done;
      Tensor.set2 out ni oi !acc
    done
  done;
  out

let cost_linear ~(n : int) ~(infeat : int) ~(outfeat : int) : Opcost.t =
  Gemm.cost ~m:n ~n:outfeat ~k:infeat

(* --- softmax (rows) --- *)

let softmax (t : Tensor.t) : Tensor.t =
  let n = t.Tensor.shape.(0) and c = t.Tensor.shape.(1) in
  let out = Tensor.copy t in
  for i = 0 to n - 1 do
    let m = ref neg_infinity in
    for j = 0 to c - 1 do
      m := Float.max !m (Tensor.get2 t i j)
    done;
    let z = ref 0.0 in
    for j = 0 to c - 1 do
      z := !z +. exp (Tensor.get2 t i j -. !m)
    done;
    for j = 0 to c - 1 do
      Tensor.set2 out i j (exp (Tensor.get2 t i j -. !m) /. !z)
    done
  done;
  out

let cost_softmax (numel : int) : Opcost.t =
  { Opcost.vflops = 0.0
  ; sflops = 8.0 *. f numel
  ; stream_bytes = 8.0 *. f numel
  ; latency_bytes = 0.0
  ; launches = 1
  }

(* --- negative log-likelihood loss (the ClassNLLCriterion kernel) --- *)

(* Reference implementation: mean of -log p[target] over the batch. *)
let nll_loss ~(log_probs : Tensor.t) ~(targets : int array) : float =
  let n = log_probs.Tensor.shape.(0) in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc -. Tensor.get2 log_probs i targets.(i)
  done;
  !acc /. f n

let cost_nll (batch : int) : Opcost.t =
  { Opcost.vflops = 0.0
  ; sflops = 2.0 *. f batch
  ; stream_bytes = 8.0 *. f batch
  ; latency_bytes = 0.0
  ; launches = 1
  }
