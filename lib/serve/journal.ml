(* In-flight job journal: the daemon's flight recorder.

   Every accepted job writes an S (start) record at admission and an E
   (end) record when its terminal reply is handed to the responder,
   each fsynced before the daemon proceeds.  After a hard crash
   (SIGKILL — no drain, no compaction), [recover] reads the previous
   journal and reports exactly which tickets were in flight: the S
   records with no matching E.  Restart can then say "jobs 17 and 42
   were accepted but never answered" instead of silently forgetting
   them — the accepted-implies-reported half of the serving tier's
   delivery guarantee, extended across process death.

   Same hardening as the cache journal: every record carries a digest
   of its own fields, so a torn tail or bit flip is skipped (and
   counted), never misread.  [open_] truncates, so recovery must be
   read before the new journal is opened. *)

let file (dir : string) : string = Filename.concat dir "inflight.v1"
let magic = "polygeist-serve inflight journal v1"

type t =
  { fd : Unix.file_descr
  ; m : Mutex.t (* admissions and completions race across domains *)
  }

type recovery =
  { lost : (int * string) list (* ticket id, job digest: S without E *)
  ; completed : int (* S records with a matching E *)
  ; skipped : int (* records dropped by the digest check *)
  }

let digest (s : string) : string = Digest.to_hex (Digest.string s)

let write_all (fd : Unix.file_descr) (s : string) : unit =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

(* Records: "S <id> <digest> <crc>" / "E <id> <status> <crc>" where crc
   covers the preceding fields. *)
let line3 (tag : string) (id : int) (v : string) : string =
  let body = Printf.sprintf "%s %d %s" tag id v in
  Printf.sprintf "%s %s\n" body (digest body)

let parse (line : string) : [ `S of int * string | `E of int * string ] option
  =
  match String.split_on_char ' ' line with
  | [ tag; id; v; crc ] when tag = "S" || tag = "E" -> begin
    match int_of_string_opt id with
    | None -> None
    | Some id ->
      if digest (Printf.sprintf "%s %d %s" tag id v) <> crc then None
      else if tag = "S" then Some (`S (id, v))
      else Some (`E (id, v))
  end
  | _ -> None

let rec mkdir_p (dir : string) : unit =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

(* Read the journal a previous process left behind.  Call BEFORE
   [open_]: opening truncates. *)
let recover ~(dir : string) : recovery =
  match In_channel.with_open_bin (file dir) In_channel.input_all with
  | exception Sys_error _ -> { lost = []; completed = 0; skipped = 0 }
  | text -> begin
    match String.split_on_char '\n' text with
    | m :: lines when m = magic ->
      let started : (int, string) Hashtbl.t = Hashtbl.create 64 in
      let ended : (int, unit) Hashtbl.t = Hashtbl.create 64 in
      let skipped = ref 0 in
      List.iter
        (fun line ->
          if line <> "" then
            match parse line with
            | Some (`S (id, d)) -> Hashtbl.replace started id d
            | Some (`E (id, _)) -> Hashtbl.replace ended id ()
            | None -> incr skipped)
        lines;
      let lost =
        Hashtbl.fold
          (fun id d acc ->
            if Hashtbl.mem ended id then acc else (id, d) :: acc)
          started []
        |> List.sort compare
      in
      { lost
      ; completed = Hashtbl.length ended
      ; skipped = !skipped
      }
    | _ -> { lost = []; completed = 0; skipped = 0 }
  end

let open_ ~(dir : string) : (t, string) result =
  try
    mkdir_p dir;
    let fd =
      Unix.openfile (file dir) [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644
    in
    write_all fd (magic ^ "\n");
    Unix.fsync fd;
    Ok { fd; m = Mutex.create () }
  with
  | Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "cannot open inflight journal: %s" (Unix.error_message e))
  | Sys_error e -> Error (Printf.sprintf "cannot open inflight journal: %s" e)

let append (t : t) (line : string) : unit =
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      try
        write_all t.fd line;
        Unix.fsync t.fd
      with Unix.Unix_error _ | Sys_error _ -> ())

(* Admission: ticket [id] for the job with cache digest [digest] is now
   the daemon's responsibility. *)
let start (t : t) ~(id : int) ~(digest : string) : unit =
  append t (line3 "S" id digest)

(* Terminal reply handed off; [status] is a short word like "done",
   "failed", "overloaded", "wedged". *)
let finish (t : t) ~(id : int) ~(status : string) : unit =
  append t (line3 "E" id status)

let close (t : t) : unit =
  try Unix.close t.fd with Unix.Unix_error _ -> ()
