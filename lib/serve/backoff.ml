(* Retry policy of the job fault wall: which failures are worth
   retrying, how many times, and how long to wait between attempts.

   The delay schedule is decorrelated-jitter exponential backoff
   (min(cap, uniform(base, 3 * previous))): each delay is drawn from a
   window that grows with the previous delay, which spreads retries of
   concurrently-failing jobs apart instead of synchronizing them the
   way plain exponential backoff does.  The draw is seeded from
   (seed, attempt), so a daemon run is deterministic end to end — the
   same job stream produces the same delays, which is what makes the
   fault matrix and the smoke test replayable.

   This module is pure (no sleeping, no clock): the supervisor owns the
   actual [Unix.sleepf].  That is what makes the policy property-testable
   — see the QCheck suite in test/test_serve.ml. *)

type policy =
  { base_ms : int (* lower bound of every delay window *)
  ; cap_ms : int (* upper bound on any delay *)
  ; max_retries : int (* retries after the first attempt *)
  }

let default = { base_ms = 25; cap_ms = 1000; max_retries = 2 }

(* Failure classes.  Transient failures (a watchdog timeout, an injected
   fault, a corrupted artifact that a re-run will regenerate) are worth
   retrying; deterministic failures (parse errors, codegen errors, a
   kernel that divides by zero) will fail identically every time, so
   retrying them only burns the queue's service capacity. *)
type cls =
  | Transient
  | Deterministic

let cls_to_string = function
  | Transient -> "transient"
  | Deterministic -> "deterministic"

(* [retryable p cls ~attempt] — may attempt [attempt + 1] be made?
   [attempt] counts completed failed attempts (1 = the first failure). *)
let retryable (p : policy) (cls : cls) ~(attempt : int) : bool =
  match cls with
  | Deterministic -> false
  | Transient -> attempt <= p.max_retries

(* Deterministic decorrelated jitter.  [prev_ms] is the previous delay
   (pass [p.base_ms] before the first retry).  The result is always in
   [base_ms, cap_ms] for any well-formed policy (base <= cap). *)
let delay_ms (p : policy) ~(seed : int) ~(attempt : int) ~(prev_ms : int) : int
    =
  let base = max 0 p.base_ms in
  let cap = max base p.cap_ms in
  let hi = min cap (max (base + 1) (prev_ms * 3)) in
  let rng = Random.State.make [| seed; attempt; 0xb0ff |] in
  let d = base + Random.State.int rng (max 1 (hi - base)) in
  min cap (max base d)

(* Upper bound on the total delay the whole retry schedule can insert:
   every delay is capped at [cap_ms] and there are at most [max_retries]
   of them.  The serving fleet's executor-wedge deadline is derived
   from this — an executor is only declared wedged once its job has
   outlived every legitimate retry the policy could have scheduled. *)
let worst_case_total_ms (p : policy) : int =
  max 0 p.max_retries * max (max 0 p.base_ms) p.cap_ms
