(* One-shot client for the compile daemon: connect, send one request,
   read one response.  Used by `polygeist_cpu client` and by the smoke
   test's cross-process leg.

   Requests carry an [id] (wire v2) that the daemon echoes back; the
   client checks the echo so a daemon bug that cross-wires responses
   between connections surfaces as a structured error, never as a
   silently mismatched result. *)

let request ?(id = 0) ~(socket : string) (req : Proto.request) :
  (Proto.response, string) result =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) ->
    Error ("socket: " ^ Unix.error_message e)
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        match Unix.connect fd (Unix.ADDR_UNIX socket) with
        | exception Unix.Unix_error (e, _, _) ->
          Error
            (Printf.sprintf "cannot connect to %s: %s" socket
               (Unix.error_message e))
        | () -> begin
          match Proto.send fd (Proto.request_to_string ~id req) with
          | exception _ -> Error "connection closed while sending"
          | () -> begin
            match Proto.recv fd with
            | Error e -> Error e
            | Ok payload -> begin
              match Proto.response_of_string payload with
              | Error e -> Error e
              | Ok (echoed, resp) ->
                if echoed <> id then
                  Error
                    (Printf.sprintf
                       "response id %d does not match request id %d" echoed id)
                else Ok resp
            end
          end
        end)

(* Poll until the daemon accepts connections (it may still be binding
   the socket when we first try).  Returns false on timeout. *)
let wait_ready ~(socket : string) ~(timeout_ms : int) : bool =
  let deadline = Unix.gettimeofday () +. (float_of_int timeout_ms /. 1000.) in
  let rec poll () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let ok =
      match Unix.connect fd (Unix.ADDR_UNIX socket) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    if ok then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Unix.sleepf 0.02;
      poll ()
    end
  in
  poll ()
