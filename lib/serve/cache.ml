(* Content-addressed artifact cache for the compile service.

   Two tables: [arts] stores artifact payloads keyed by the MD5 digest
   of their own bytes (content addressing), and [index] maps a job key —
   the digest of source + flags — to the artifact digest holding that
   job's result.  A lookup re-hashes the payload and compares it to the
   digest it is stored under, so a corrupted artifact (bit rot, or the
   serve:corrupt fault injected by tests) can never be served: the
   entry is dropped, the corruption is counted, and the job re-executes
   as a cache miss.  This is the property the fault matrix leans on —
   one poisoned job must not corrupt what other jobs read.

   The index (and artifacts) can be flushed to a single text file on
   graceful drain and loaded back at startup; the on-disk format reuses
   the digest check, so a truncated or hand-edited file loads the
   entries that still verify and silently drops the rest. *)

type stats =
  { entries : int
  ; hits : int
  ; misses : int
  ; corrupt_dropped : int (* artifacts that failed their digest check *)
  }

type t =
  { arts : (string, string) Hashtbl.t (* artifact digest -> payload *)
  ; index : (string, string) Hashtbl.t (* job key -> artifact digest *)
  ; mutable hits : int
  ; mutable misses : int
  ; mutable corrupt_dropped : int
  ; m : Mutex.t (* the daemon reads from several domains *)
  }

let create () : t =
  { arts = Hashtbl.create 64
  ; index = Hashtbl.create 64
  ; hits = 0
  ; misses = 0
  ; corrupt_dropped = 0
  ; m = Mutex.create ()
  }

let digest (s : string) : string = Digest.to_hex (Digest.string s)

(* The job key: source and flags hashed together.  Two jobs with the
   same key are the same computation, so they may share an artifact. *)
let key ~(source : string) ~(flags : string) : string =
  digest (Printf.sprintf "%d:%s|%s" (String.length source) source flags)

let locked (t : t) (f : unit -> 'a) : 'a =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let find (t : t) (k : string) : string option =
  locked t (fun () ->
      match Hashtbl.find_opt t.index k with
      | None ->
        t.misses <- t.misses + 1;
        None
      | Some d -> begin
        match Hashtbl.find_opt t.arts d with
        | None ->
          (* index points at a missing artifact: treat as corruption *)
          Hashtbl.remove t.index k;
          t.corrupt_dropped <- t.corrupt_dropped + 1;
          t.misses <- t.misses + 1;
          None
        | Some payload ->
          if digest payload = d then begin
            t.hits <- t.hits + 1;
            Some payload
          end
          else begin
            (* content no longer matches its address: drop, never serve *)
            Hashtbl.remove t.arts d;
            Hashtbl.remove t.index k;
            t.corrupt_dropped <- t.corrupt_dropped + 1;
            t.misses <- t.misses + 1;
            None
          end
      end)

let store (t : t) (k : string) (payload : string) : unit =
  locked t (fun () ->
      let d = digest payload in
      Hashtbl.replace t.arts d payload;
      Hashtbl.replace t.index k d)

(* Test hook for the serve:corrupt fault matrix: flip one byte of the
   artifact a key points at, in place, WITHOUT updating its address.
   Returns false when the key has no artifact. *)
let corrupt (t : t) (k : string) : bool =
  locked t (fun () ->
      match Hashtbl.find_opt t.index k with
      | None -> false
      | Some d -> begin
        match Hashtbl.find_opt t.arts d with
        | None -> false
        | Some payload when payload = "" -> false
        | Some payload ->
          let b = Bytes.of_string payload in
          Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x40));
          Hashtbl.replace t.arts d (Bytes.to_string b);
          true
      end)

let stats (t : t) : stats =
  locked t (fun () ->
      { entries = Hashtbl.length t.index
      ; hits = t.hits
      ; misses = t.misses
      ; corrupt_dropped = t.corrupt_dropped
      })

(* --- persistence --- *)

let index_file (dir : string) : string = Filename.concat dir "cache-index.v1"
let index_magic = "polygeist-serve cache index v1"

let rec mkdir_p (dir : string) : unit =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

(* One entry per line: job key, artifact digest, escaped payload.  The
   digest is re-checked at load, so damage to the file degrades to a
   smaller cache, never to wrong results. *)
let flush (t : t) ~(dir : string) : (string, string) result =
  try
    mkdir_p dir;
    let path = index_file dir in
    let b = Buffer.create 4096 in
    Buffer.add_string b (index_magic ^ "\n");
    locked t (fun () ->
        Hashtbl.iter
          (fun k d ->
            match Hashtbl.find_opt t.arts d with
            | None -> ()
            | Some payload ->
              Buffer.add_string b
                (Printf.sprintf "%s %s %s\n" k d (String.escaped payload)))
          t.index);
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (Buffer.contents b));
    Ok path
  with Sys_error e -> Error (Printf.sprintf "cannot flush cache index: %s" e)

let load (t : t) ~(dir : string) : int =
  match In_channel.with_open_text (index_file dir) In_channel.input_all with
  | exception Sys_error _ -> 0
  | text -> begin
    match String.split_on_char '\n' text with
    | m :: lines when m = index_magic ->
      let loaded = ref 0 in
      List.iter
        (fun line ->
          match String.split_on_char ' ' line with
          (* key and digest are hex (no spaces); the escaped payload is
             everything after them and may itself contain spaces *)
          | k :: d :: (_ :: _ as rest) -> begin
            let escaped = String.concat " " rest in
            match Scanf.unescaped escaped with
            | exception (Scanf.Scan_failure _ | Failure _) -> ()
            | payload ->
              if digest payload = d then begin
                locked t (fun () ->
                    Hashtbl.replace t.arts d payload;
                    Hashtbl.replace t.index k d);
                incr loaded
              end
          end
          | _ -> ())
        lines;
      !loaded
    | _ -> 0
  end
