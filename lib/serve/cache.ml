(* Content-addressed artifact cache for the compile service.

   Two tables: [arts] stores artifact payloads keyed by the MD5 digest
   of their own bytes (content addressing), and [index] maps a job key —
   the digest of source + flags — to the artifact digest holding that
   job's result.  A lookup re-hashes the payload and compares it to the
   digest it is stored under, so a corrupted artifact (bit rot, or the
   serve:corrupt fault injected by tests) can never be served: the
   entry is quarantined, the corruption is counted, and the job
   re-executes as a cache miss.  This is the property the fault matrix
   leans on — one poisoned job must not corrupt what other jobs read.

   Durability is a write-ahead journal (cache-journal.v2): every
   [store] with a directory attached appends one digest-checked record
   and fsyncs before returning, so a SIGKILL at any point loses at most
   the record being written — replay after a hard crash recovers every
   completed store.  Replay is truncation tolerant (a torn final record
   is skipped and counted, earlier records still load), idempotent
   (duplicate appends collapse via replace), and generation aware: a
   clean shutdown compacts the journal by writing a gen+1 snapshot to a
   temp file and renaming it into place, and the loader finishes an
   interrupted compaction (temp newer than main) or discards a stale
   temp (temp older).  The flush-on-shutdown cache-index.v1 format this
   replaces still loads when no journal exists.

   Corrupt artifacts are not silently dropped: when a directory is
   attached, the bad bytes are persisted under quarantine/<digest> so
   the evidence survives for debugging, and the quarantined count is
   reported in stats. *)

type stats =
  { entries : int
  ; hits : int
  ; misses : int
  ; corrupt_dropped : int (* artifacts that failed their digest check *)
  ; quarantined : int (* corrupt artifacts whose bytes were persisted *)
  ; journal_skipped : int (* journal records dropped at replay *)
  }

type t =
  { arts : (string, string) Hashtbl.t (* artifact digest -> payload *)
  ; index : (string, string) Hashtbl.t (* job key -> artifact digest *)
  ; mutable hits : int
  ; mutable misses : int
  ; mutable corrupt_dropped : int
  ; mutable quarantined : int
  ; mutable journal_skipped : int
  ; mutable wal : Unix.file_descr option (* open journal, append mode *)
  ; mutable dir : string option (* attached persistence directory *)
  ; mutable gen : int (* journal generation (bumped by compaction) *)
  ; m : Mutex.t (* the daemon reads from several domains *)
  }

let create () : t =
  { arts = Hashtbl.create 64
  ; index = Hashtbl.create 64
  ; hits = 0
  ; misses = 0
  ; corrupt_dropped = 0
  ; quarantined = 0
  ; journal_skipped = 0
  ; wal = None
  ; dir = None
  ; gen = 0
  ; m = Mutex.create ()
  }

let digest (s : string) : string = Digest.to_hex (Digest.string s)

(* The job key: source and flags hashed together.  Two jobs with the
   same key are the same computation, so they may share an artifact. *)
let key ~(source : string) ~(flags : string) : string =
  digest (Printf.sprintf "%d:%s|%s" (String.length source) source flags)

let locked (t : t) (f : unit -> 'a) : 'a =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* --- on-disk layout --- *)

let index_file (dir : string) : string = Filename.concat dir "cache-index.v1"
let index_magic = "polygeist-serve cache index v1"

let journal_file (dir : string) : string =
  Filename.concat dir "cache-journal.v2"

let journal_tmp (dir : string) : string = journal_file dir ^ ".tmp"
let journal_magic = "polygeist-serve cache journal v2"
let quarantine_dir (dir : string) : string = Filename.concat dir "quarantine"

let rec mkdir_p (dir : string) : unit =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let write_all (fd : Unix.file_descr) (s : string) : unit =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

(* A journal record: "A <key> <digest> <escaped-payload> <crc>".  The
   crc is the digest of everything before it, so a torn or bit-flipped
   record fails closed at replay.  Key/digest/crc are hex (no spaces);
   the escaped payload may contain spaces, so the parser takes the
   first two and last fields and joins the middle back together. *)
let record_body (k : string) (d : string) (escaped : string) : string =
  Printf.sprintf "A %s %s %s" k d escaped

let record_line (k : string) (d : string) (payload : string) : string =
  let body = record_body k d (String.escaped payload) in
  Printf.sprintf "%s %s\n" body (digest body)

let parse_record (line : string) : (string * string * string) option =
  match String.split_on_char ' ' line with
  | "A" :: k :: d :: (_ :: _ as rest) -> begin
    (* last field is the crc; the middle fields are the payload *)
    let n = List.length rest in
    let crc = List.nth rest (n - 1) in
    let escaped = String.concat " " (List.filteri (fun i _ -> i < n - 1) rest) in
    if digest (record_body k d escaped) <> crc then None
    else
      match Scanf.unescaped escaped with
      | exception (Scanf.Scan_failure _ | Failure _) -> None
      | payload -> if digest payload = d then Some (k, d, payload) else None
  end
  | _ -> None

let header_line (gen : int) : string =
  Printf.sprintf "%s gen=%d\n" journal_magic gen

let parse_header (line : string) : int option =
  let prefix = journal_magic ^ " gen=" in
  let plen = String.length prefix in
  if String.length line > plen && String.sub line 0 plen = prefix then
    int_of_string_opt (String.sub line plen (String.length line - plen))
  else None

(* Generation of an on-disk journal, or None if absent/headerless. *)
let journal_gen (path : string) : int option =
  match In_channel.with_open_bin path In_channel.input_line with
  | exception Sys_error _ -> None
  | None -> None
  | Some first -> parse_header first

(* --- quarantine --- *)

(* Persist a corrupt artifact's bytes so the evidence outlives the
   drop.  Returns true when the bytes reached disk. *)
let quarantine (t : t) (d : string) (payload : string) : bool =
  match t.dir with
  | None -> false
  | Some dir -> begin
    try
      let qdir = quarantine_dir dir in
      mkdir_p qdir;
      Out_channel.with_open_bin (Filename.concat qdir d) (fun oc ->
          Out_channel.output_string oc payload);
      true
    with Sys_error _ -> false
  end

(* Caller holds the lock.  Drop [k -> d] as corrupt, quarantining the
   payload if one is on hand. *)
let drop_corrupt (t : t) (k : string) (d : string) (payload : string option) :
  unit =
  Hashtbl.remove t.index k;
  (match payload with
   | None -> ()
   | Some p ->
     Hashtbl.remove t.arts d;
     if quarantine t d p then t.quarantined <- t.quarantined + 1);
  t.corrupt_dropped <- t.corrupt_dropped + 1;
  t.misses <- t.misses + 1

(* --- lookups and stores --- *)

let find (t : t) (k : string) : string option =
  locked t (fun () ->
      match Hashtbl.find_opt t.index k with
      | None ->
        t.misses <- t.misses + 1;
        None
      | Some d -> begin
        match Hashtbl.find_opt t.arts d with
        | None ->
          (* index points at a missing artifact: treat as corruption *)
          drop_corrupt t k d None;
          None
        | Some payload ->
          if digest payload = d then begin
            t.hits <- t.hits + 1;
            Some payload
          end
          else begin
            (* content no longer matches its address: never serve it *)
            drop_corrupt t k d (Some payload);
            None
          end
      end)

(* Caller holds the lock.  Append one record to the open journal and
   fsync so the store is durable before the caller's reply goes out.
   Journal write failures (disk full, fd gone) degrade to an in-memory
   cache rather than failing the store. *)
let wal_append (t : t) (k : string) (d : string) (payload : string) : unit =
  match t.wal with
  | None -> ()
  | Some fd -> (
    try
      write_all fd (record_line k d payload);
      Unix.fsync fd
    with Unix.Unix_error _ | Sys_error _ -> ())

let store (t : t) (k : string) (payload : string) : unit =
  locked t (fun () ->
      let d = digest payload in
      Hashtbl.replace t.arts d payload;
      Hashtbl.replace t.index k d;
      wal_append t k d payload)

(* Test hook for the serve:corrupt fault matrix: flip one byte of the
   artifact a key points at, in place, WITHOUT updating its address.
   Returns false when the key has no artifact. *)
let corrupt (t : t) (k : string) : bool =
  locked t (fun () ->
      match Hashtbl.find_opt t.index k with
      | None -> false
      | Some d -> begin
        match Hashtbl.find_opt t.arts d with
        | None -> false
        | Some payload when payload = "" -> false
        | Some payload ->
          let b = Bytes.of_string payload in
          Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x40));
          Hashtbl.replace t.arts d (Bytes.to_string b);
          true
      end)

(* Re-verify every artifact against its address; corrupt ones are
   dropped (and quarantined).  Returns how many were dropped.  The
   chaos harness runs this after a journal replay to assert the
   recovered cache is internally consistent. *)
let verify_all (t : t) : int =
  locked t (fun () ->
      let bad =
        Hashtbl.fold
          (fun k d acc ->
            match Hashtbl.find_opt t.arts d with
            | None -> (k, d, None) :: acc
            | Some p -> if digest p = d then acc else (k, d, Some p) :: acc)
          t.index []
      in
      List.iter
        (fun (k, d, p) ->
          drop_corrupt t k d p;
          (* verify_all is not a lookup; undo the miss accounting *)
          t.misses <- t.misses - 1)
        bad;
      List.length bad)

let stats (t : t) : stats =
  locked t (fun () ->
      { entries = Hashtbl.length t.index
      ; hits = t.hits
      ; misses = t.misses
      ; corrupt_dropped = t.corrupt_dropped
      ; quarantined = t.quarantined
      ; journal_skipped = t.journal_skipped
      })

(* --- journal replay / compaction --- *)

(* Replay a journal file into the tables.  Returns (gen, loaded,
   skipped); a missing or headerless file is (None, 0, 0).  Bad records
   — torn tail after a crash, bit flips, duplicate keys resolved by
   replace — never abort the replay. *)
let replay_file (t : t) (path : string) : int option * int * int =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ -> (None, 0, 0)
  | text -> begin
    match String.split_on_char '\n' text with
    | header :: lines -> begin
      match parse_header header with
      | None -> (None, 0, 0)
      | Some gen ->
        let loaded = ref 0 and skipped = ref 0 in
        List.iter
          (fun line ->
            if line <> "" then
              match parse_record line with
              | Some (k, d, payload) ->
                locked t (fun () ->
                    Hashtbl.replace t.arts d payload;
                    Hashtbl.replace t.index k d);
                incr loaded
              | None -> incr skipped)
          lines;
        (Some gen, !loaded, !skipped)
    end
    | [] -> (None, 0, 0)
  end

(* Legacy cache-index.v1 loader: one entry per line, key, digest,
   escaped payload; entries that fail their digest check are dropped. *)
let load_v1 (t : t) ~(dir : string) : int =
  match In_channel.with_open_text (index_file dir) In_channel.input_all with
  | exception Sys_error _ -> 0
  | text -> begin
    match String.split_on_char '\n' text with
    | m :: lines when m = index_magic ->
      let loaded = ref 0 in
      List.iter
        (fun line ->
          match String.split_on_char ' ' line with
          (* key and digest are hex (no spaces); the escaped payload is
             everything after them and may itself contain spaces *)
          | k :: d :: (_ :: _ as rest) -> begin
            let escaped = String.concat " " rest in
            match Scanf.unescaped escaped with
            | exception (Scanf.Scan_failure _ | Failure _) -> ()
            | payload ->
              if digest payload = d then begin
                locked t (fun () ->
                    Hashtbl.replace t.arts d payload;
                    Hashtbl.replace t.index k d);
                incr loaded
              end
          end
          | _ -> ())
        lines;
      !loaded
    | _ -> 0
  end

(* Open (creating if needed) the journal for appending and remember the
   attachment, so subsequent [store]s are durable. *)
let open_wal (t : t) ~(dir : string) ~(gen : int) : unit =
  (match t.wal with
   | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
   | None -> ());
  t.dir <- Some dir;
  t.gen <- gen;
  let path = journal_file dir in
  let fresh = not (Sys.file_exists path) in
  match Unix.openfile path [ O_WRONLY; O_CREAT; O_APPEND ] 0o644 with
  | exception Unix.Unix_error _ -> t.wal <- None
  | fd ->
    if fresh then (
      try
        write_all fd (header_line gen);
        Unix.fsync fd
      with Unix.Unix_error _ | Sys_error _ -> ());
    t.wal <- Some fd

(* Load persisted state from [dir] and attach the journal for appends.
   Preference order: finish an interrupted compaction if the temp
   journal's generation is newer than the main one's, then replay the
   journal, then fall back to the legacy v1 index.  Returns the number
   of entries loaded. *)
let load (t : t) ~(dir : string) : int =
  mkdir_p dir;
  let main = journal_file dir and tmp = journal_tmp dir in
  (match (journal_gen tmp, journal_gen main) with
   | Some tg, Some mg when tg > mg ->
     (* crash between compaction write and rename: the temp snapshot is
        complete (it was fsynced before the rename was attempted) *)
     (try Sys.rename tmp main with Sys_error _ -> ())
   | Some _, None -> ( try Sys.rename tmp main with Sys_error _ -> ())
   | Some _, Some _ -> ( try Sys.remove tmp with Sys_error _ -> ())
   | None, _ -> if Sys.file_exists tmp then ( try Sys.remove tmp with Sys_error _ -> ()));
  let gen, loaded, skipped = replay_file t main in
  locked t (fun () -> t.journal_skipped <- t.journal_skipped + skipped);
  match gen with
  | Some g ->
    open_wal t ~dir ~gen:g;
    loaded
  | None ->
    (* no journal yet: migrate from the legacy index if present *)
    let migrated = load_v1 t ~dir in
    open_wal t ~dir ~gen:0;
    migrated

(* Compact the journal: write a gen+1 snapshot of the live entries to a
   temp file, fsync it, and rename it over the main journal.  A crash
   at any point leaves either the old journal (temp discarded at next
   load) or the new one (rename finished, possibly by the next load).
   Called on clean shutdown; also the [flush] entry point.  Returns the
   journal path. *)
let flush (t : t) ~(dir : string) : (string, string) result =
  try
    mkdir_p dir;
    let tmp = journal_tmp dir in
    let next_gen = (if t.dir = Some dir then t.gen else 0) + 1 in
    let b = Buffer.create 4096 in
    Buffer.add_string b (header_line next_gen);
    locked t (fun () ->
        Hashtbl.iter
          (fun k d ->
            match Hashtbl.find_opt t.arts d with
            | None -> ()
            | Some payload -> Buffer.add_string b (record_line k d payload))
          t.index);
    let fd = Unix.openfile tmp [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        write_all fd (Buffer.contents b);
        Unix.fsync fd);
    Sys.rename tmp (journal_file dir);
    (* appends after a compaction must land in the new journal *)
    open_wal t ~dir ~gen:next_gen;
    Ok (journal_file dir)
  with
  | Sys_error e -> Error (Printf.sprintf "cannot compact cache journal: %s" e)
  | Unix.Unix_error (e, _, _) ->
    Error
      (Printf.sprintf "cannot compact cache journal: %s" (Unix.error_message e))

let close (t : t) : unit =
  match t.wal with
  | None -> ()
  | Some fd ->
    t.wal <- None;
    (try Unix.close fd with Unix.Unix_error _ -> ())
