(* Wire format of the compile service.

   One message per frame; a frame is an ASCII decimal byte count, a
   newline, and exactly that many payload bytes.  The payload is a line
   oriented key=value record where every value is OCaml-escaped
   ([String.escaped]), so sources and logs with newlines survive the
   round trip.  The format is deliberately dumb: it is diffable in a
   crash report, trivially versioned (the first line names the message
   kind), and every parser failure is a structured [Error] — a malformed
   frame must never take the daemon down.

   Wire version 2 adds a per-request [id] that the daemon echoes in
   every response.  With a fleet of executors, completions arrive out
   of submission order, and the id is what lets the responder (and any
   future pipelined client) match a response to its request instead of
   relying on FIFO completion.  Version-1 frames (no id) still parse —
   they get id 0 — so old clients keep working against a new daemon
   and vice versa.

   The same [outcome] serialization doubles as the cache's artifact
   payload: the content-addressed store hashes exactly these bytes
   (the request-scoped id deliberately lives in the response envelope,
   NOT in the outcome), so "cache hit is bit-identical to the cold
   result" is checkable by digest. *)

(* A compile(/run) job, mirroring the one-shot CLI surface. *)
type job =
  { source : string (* CUDA translation unit *)
  ; entry : string option (* -run entry point; None = compile only *)
  ; sizes : int list (* --size arguments *)
  ; mode : string (* "inner-serial" | "inner-parallel" | "no-opt" *)
  ; exec : string (* "interp" | "parallel" *)
  ; domains : int
  ; schedule : string (* "static" | "dynamic" | "guided" *)
  ; faults : string (* Fault.plan syntax; "" = none *)
  }

let default_job =
  { source = ""
  ; entry = None
  ; sizes = []
  ; mode = "inner-serial"
  ; exec = "parallel"
  ; domains = 4
  ; schedule = "static"
  ; faults = ""
  }

(* The part of [job] that, together with the source, determines the
   result — the cache key material. *)
let job_flags (j : job) : string =
  Printf.sprintf "entry=%s;sizes=%s;mode=%s;exec=%s;domains=%d;schedule=%s;faults=%s"
    (match j.entry with None -> "-" | Some e -> e)
    (String.concat "," (List.map string_of_int j.sizes))
    j.mode j.exec j.domains j.schedule j.faults

type request =
  | Submit of job
  | Shutdown (* graceful drain: finish queued jobs, flush the cache, exit *)

type outcome =
  { exit_code : int (* the one-shot CLI's exit code for this job *)
  ; checksum : string (* "%.9g" output checksum, or "-" when nothing ran *)
  ; cached : bool (* served from the artifact cache *)
  ; retries : int (* retries the fault wall performed *)
  ; breaker : bool (* served via a tripped circuit breaker (conservative) *)
  ; log : string (* the job's human-readable output *)
  }

type response =
  | Done of outcome
  | Overloaded of
      { depth : int (* admission-queue depth at rejection *)
      ; cap : int
      }
  | Rejected of string (* malformed request, or the daemon is draining *)

(* --- key=value record (de)serialization --- *)

let kv (b : Buffer.t) (k : string) (v : string) : unit =
  Buffer.add_string b k;
  Buffer.add_char b '=';
  Buffer.add_string b (String.escaped v);
  Buffer.add_char b '\n'

let fields_of_string (s : string) : (string * string) list =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
      if line = "" then None
      else
        match String.index_opt line '=' with
        | None -> None
        | Some i ->
          let k = String.sub line 0 i in
          let v = String.sub line (i + 1) (String.length line - i - 1) in
          let v = try Scanf.unescaped v with Scanf.Scan_failure _ | Failure _ -> v in
          Some (k, v))

let field fields k = List.assoc_opt k fields
let field_int fields k ~default =
  match field fields k with
  | Some v -> Option.value ~default (int_of_string_opt v)
  | None -> default

(* --- job --- *)

let job_to_string (j : job) : string =
  let b = Buffer.create 256 in
  kv b "entry" (match j.entry with None -> "-" | Some e -> e);
  kv b "sizes" (String.concat "," (List.map string_of_int j.sizes));
  kv b "mode" j.mode;
  kv b "exec" j.exec;
  kv b "domains" (string_of_int j.domains);
  kv b "schedule" j.schedule;
  kv b "faults" j.faults;
  kv b "source" j.source;
  Buffer.contents b

let job_of_fields (fields : (string * string) list) : (job, string) result =
  match field fields "source" with
  | None -> Error "job has no source field"
  | Some source ->
    let entry =
      match field fields "entry" with
      | None | Some "-" | Some "" -> None
      | Some e -> Some e
    in
    let sizes =
      match field fields "sizes" with
      | None | Some "" -> []
      | Some s ->
        String.split_on_char ',' s |> List.filter_map int_of_string_opt
    in
    Ok
      { source
      ; entry
      ; sizes
      ; mode = Option.value ~default:default_job.mode (field fields "mode")
      ; exec = Option.value ~default:default_job.exec (field fields "exec")
      ; domains = field_int fields "domains" ~default:default_job.domains
      ; schedule =
          Option.value ~default:default_job.schedule (field fields "schedule")
      ; faults = Option.value ~default:"" (field fields "faults")
      }

(* --- request --- *)

(* The id is an envelope field: it rides next to the job/outcome fields
   in the kv record but belongs to the request/response pair, not to
   the cached computation. *)

let request_to_string ?(id = 0) (r : request) : string =
  match r with
  | Shutdown -> Printf.sprintf "polygeist-serve/2 shutdown\nid=%d\n" id
  | Submit j ->
    Printf.sprintf "polygeist-serve/2 submit\nid=%d\n%s" id (job_to_string j)

(* Returns the request together with its id (0 for version-1 frames,
   which predate ids). *)
let request_of_string (s : string) : (int * request, string) result =
  match String.index_opt s '\n' with
  | None -> Error "empty request"
  | Some i -> begin
    let head = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    let id () = field_int (fields_of_string rest) "id" ~default:0 in
    match head with
    | "polygeist-serve/1 shutdown" -> Ok (0, Shutdown)
    | "polygeist-serve/2 shutdown" -> Ok (id (), Shutdown)
    | "polygeist-serve/1 submit" | "polygeist-serve/2 submit" ->
      let rid = if head = "polygeist-serve/1 submit" then 0 else id () in
      Result.map
        (fun j -> (rid, Submit j))
        (job_of_fields (fields_of_string rest))
    | _ -> Error (Printf.sprintf "unknown request kind %S" head)
  end

(* --- outcome (also the cache artifact payload) --- *)

let outcome_to_string (o : outcome) : string =
  let b = Buffer.create 256 in
  kv b "exit" (string_of_int o.exit_code);
  kv b "checksum" o.checksum;
  kv b "cached" (string_of_bool o.cached);
  kv b "retries" (string_of_int o.retries);
  kv b "breaker" (string_of_bool o.breaker);
  kv b "log" o.log;
  Buffer.contents b

let outcome_of_string (s : string) : (outcome, string) result =
  let fields = fields_of_string s in
  match field fields "exit" with
  | None -> Error "outcome has no exit field"
  | Some _ ->
    Ok
      { exit_code = field_int fields "exit" ~default:2
      ; checksum = Option.value ~default:"-" (field fields "checksum")
      ; cached = field fields "cached" = Some "true"
      ; retries = field_int fields "retries" ~default:0
      ; breaker = field fields "breaker" = Some "true"
      ; log = Option.value ~default:"" (field fields "log")
      }

(* --- response --- *)

(* [id] echoes the request's id so an interleaving responder (or a
   pipelined client) can pair responses with requests. *)
let response_to_string ?(id = 0) (r : response) : string =
  match r with
  | Done o ->
    Printf.sprintf "polygeist-serve/2 done\nid=%d\n%s" id (outcome_to_string o)
  | Overloaded { depth; cap } ->
    Printf.sprintf "polygeist-serve/2 overloaded\nid=%d\ndepth=%d\ncap=%d\n" id
      depth cap
  | Rejected why ->
    let b = Buffer.create 64 in
    Buffer.add_string b (Printf.sprintf "polygeist-serve/2 rejected\nid=%d\n" id);
    kv b "why" why;
    Buffer.contents b

(* Returns the echoed id (0 for version-1 frames) and the response. *)
let response_of_string (s : string) : (int * response, string) result =
  match String.index_opt s '\n' with
  | None -> Error "empty response"
  | Some i -> begin
    let head = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    let fields () = fields_of_string rest in
    let version_of = function
      | "polygeist-serve/1" -> Some 1
      | "polygeist-serve/2" -> Some 2
      | _ -> None
    in
    let kind, version =
      match String.index_opt head ' ' with
      | None -> (head, None)
      | Some sp ->
        ( String.sub head (sp + 1) (String.length head - sp - 1)
        , version_of (String.sub head 0 sp) )
    in
    match version with
    | None -> Error (Printf.sprintf "unknown response kind %S" head)
    | Some v -> begin
      let id = if v = 1 then 0 else field_int (fields ()) "id" ~default:0 in
      match kind with
      | "done" -> Result.map (fun o -> (id, Done o)) (outcome_of_string rest)
      | "overloaded" ->
        let f = fields () in
        Ok
          ( id
          , Overloaded
              { depth = field_int f "depth" ~default:0
              ; cap = field_int f "cap" ~default:0
              } )
      | "rejected" ->
        Ok (id, Rejected (Option.value ~default:"" (field (fields ()) "why")))
      | _ -> Error (Printf.sprintf "unknown response kind %S" head)
    end
  end

(* --- framing over a file descriptor --- *)

(* Upper bound on a frame: a malicious or corrupt length header must
   not make the daemon allocate unboundedly. *)
let max_frame = 16 * 1024 * 1024

exception Closed

let write_all (fd : Unix.file_descr) (s : string) : unit =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    let w = Unix.write_substring fd s !off (n - !off) in
    if w = 0 then raise Closed;
    off := !off + w
  done

let read_exact (fd : Unix.file_descr) (n : int) : string =
  let buf = Bytes.create n in
  let off = ref 0 in
  while !off < n do
    let r = Unix.read fd buf !off (n - !off) in
    if r = 0 then raise Closed;
    off := !off + r
  done;
  Bytes.to_string buf

let send (fd : Unix.file_descr) (payload : string) : unit =
  write_all fd (Printf.sprintf "%d\n%s" (String.length payload) payload)

let recv (fd : Unix.file_descr) : (string, string) result =
  (* read the length header byte by byte (it is < 10 bytes; saving
     syscalls here does not matter next to a compile job) *)
  let header = Buffer.create 12 in
  let rec header_loop () =
    let c = read_exact fd 1 in
    if c = "\n" then Buffer.contents header
    else begin
      if Buffer.length header > 10 then failwith "oversized frame header";
      Buffer.add_string header c;
      header_loop ()
    end
  in
  match header_loop () with
  | exception Closed -> Error "connection closed"
  | exception Failure e -> Error e
  | h -> begin
    match int_of_string_opt h with
    | None -> Error (Printf.sprintf "bad frame header %S" h)
    | Some n when n < 0 || n > max_frame ->
      Error (Printf.sprintf "frame length %d out of bounds" n)
    | Some n -> begin
      match read_exact fd n with
      | s -> Ok s
      | exception Closed -> Error "connection closed mid-frame"
    end
  end
