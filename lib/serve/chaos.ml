(* Seeded chaos campaign against the in-process daemon core.

   The campaign drives a fleet-configured {!Server.t} through a
   deterministic (seed-derived) schedule of events — clean submits,
   fault-plan submits (serve:raise / serve:corrupt / serve:exhaust /
   serve:hang), executor wedges (executor:hang) and crashes
   (executor:raise), and admission bursts past the queue cap — then
   drains and checks the serving tier's delivery invariants:

     1. LIVENESS: the daemon survives (we are in-process: no uncaught
        exception, [drain] returns).
     2. DELIVERY: every accepted ticket holds a terminal outcome after
        drain.  An empty ticket is a lost job — the exact bug the
        supervision layer exists to rule out.
     3. CORRECTNESS: every clean job's checksum is bit-identical to the
        one-shot (unsupervised, uncached) execution of the same job,
        and cache hits are bit-identical to cold results.
     4. SUPERVISION: every injected executor wedge was detected and the
        wedged incarnation replaced (kills >= wedges injected).
     5. DURABILITY (when a state dir is given): reloading the cache
        journal into a fresh cache yields only digest-verified entries
        ([Cache.verify_all] = 0), and the in-flight journal reports
        nothing lost after a clean drain.

   Randomness comes only from [Random.State.make [| seed |]], so a
   seed is a complete reproducer.  The schedule is quota-adjusted after
   generation: a campaign always contains at least [min_faults] fault
   events and [min_wedges] wedge events regardless of seed, so the
   acceptance bar ("the campaign exercised the machinery") cannot be
   dodged by an unlucky draw. *)

type config =
  { seed : int
  ; events : int (* schedule length (bursts count as one event) *)
  ; executors : int
  ; queue_cap : int
  ; state_dir : string option (* cache + journal dir; None = in-memory *)
  ; crash_dir : string option
  ; min_faults : int
  ; min_wedges : int
  }

let default_config =
  { seed = 42
  ; events = 60
  ; executors = 4
  ; queue_cap = 16
  ; state_dir = None
  ; crash_dir = None
  ; min_faults = 20
  ; min_wedges = 2
  }

type report =
  { submitted : int
  ; accepted : int
  ; overloaded : int
  ; faults_injected : int
  ; wedges_injected : int
  ; crashes_injected : int
  ; executor_kills : int
  ; completed_ok : int
  ; completed_failed : int
  ; cache_hits : int
  ; violations : string list (* empty = campaign passed *)
  }

let report_to_string (r : report) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "chaos: %d submitted (%d accepted, %d overloaded), %d faults, %d \
        wedges, %d crashes injected; %d executor kill(s); %d ok / %d failed; \
        %d cache hit(s)\n"
       r.submitted r.accepted r.overloaded r.faults_injected r.wedges_injected
       r.crashes_injected r.executor_kills r.completed_ok r.completed_failed
       r.cache_hits);
  (match r.violations with
   | [] -> Buffer.add_string b "chaos: all invariants held\n"
   | vs ->
     List.iter
       (fun v -> Buffer.add_string b (Printf.sprintf "chaos VIOLATION: %s\n" v))
       vs);
  Buffer.contents b

(* --- the job pool --- *)

(* Several distinct sources so source-hash affinity spreads the
   campaign across lanes (and the cache holds several keys). *)
let sources : string array =
  [| {|__global__ void saxpy(float* x, float* y, int n) {
  int i = blockIdx.x * 64 + threadIdx.x;
  if (i < n) y[i] = 2.0f * x[i] + y[i];
}
void run(float* x, float* y, int n) {
  saxpy<<<(n + 63) / 64, 64>>>(x, y, n);
}
|}
   ; {|__global__ void scale(float* x, float* y, int n) {
  int i = blockIdx.x * 64 + threadIdx.x;
  if (i < n) y[i] = 3.0f * x[i];
}
void run(float* x, float* y, int n) {
  scale<<<(n + 63) / 64, 64>>>(x, y, n);
}
|}
   ; {|__global__ void offset(float* x, float* y, int n) {
  int i = blockIdx.x * 64 + threadIdx.x;
  if (i < n) y[i] = x[i] + 1.5f;
}
void run(float* x, float* y, int n) {
  offset<<<(n + 63) / 64, 64>>>(x, y, n);
}
|}
   ; {|__global__ void square(float* x, float* y, int n) {
  int i = blockIdx.x * 64 + threadIdx.x;
  if (i < n) y[i] = x[i] * x[i];
}
void run(float* x, float* y, int n) {
  square<<<(n + 63) / 64, 64>>>(x, y, n);
}
|}
  |]

let mk_job ?(faults = "") (src : int) : Proto.job =
  { Proto.source = sources.(src mod Array.length sources)
  ; entry = Some "run"
  ; sizes = [ 96 ]
  ; mode = "inner-serial"
  ; exec = "interp" (* serial engine: fast and deterministic under load *)
  ; domains = 2
  ; schedule = "static"
  ; faults
  }

(* --- the schedule --- *)

type event =
  | Clean of int (* source index *)
  | Faulty of int * string (* source, serve:* fault kind *)
  | Wedge of int (* executor:hang — the lane must be killed/replaced *)
  | Crash of int (* executor:raise — the lane loop dies, is respawned *)
  | Burst of int (* n rapid clean submits; > queue_cap forces overloads *)

let schedule (cfg : config) : event list =
  let rng = Random.State.make [| cfg.seed; 0xc4a05 |] in
  let pick () =
    let src = Random.State.int rng (Array.length sources) in
    match Random.State.int rng 10 with
    | 0 | 1 | 2 | 3 ->
      let kinds = [| "raise"; "corrupt"; "exhaust"; "hang" |] in
      Faulty (src, kinds.(Random.State.int rng 4))
    | 4 -> Wedge src
    | 5 -> Crash src
    | 6 -> Burst (cfg.queue_cap + 4 + Random.State.int rng 8)
    | _ -> Clean src
  in
  let evs = Array.init cfg.events (fun _ -> pick ()) in
  (* quota top-up: deterministically overwrite leading events so every
     campaign meets its fault/wedge floor whatever the draw *)
  let count p = Array.fold_left (fun n e -> if p e then n + 1 else n) 0 evs in
  let is_fault = function Faulty _ -> true | _ -> false in
  let is_wedge = function Wedge _ -> true | _ -> false in
  let is_burst = function Burst _ -> true | _ -> false in
  let place p mk need =
    let missing = ref (need - count p) in
    Array.iteri
      (fun i e ->
        if !missing > 0 && (not (p e)) && (not (is_wedge e)) && not (is_burst e)
        then begin
          evs.(i) <- mk i;
          decr missing
        end)
      evs
  in
  place is_wedge (fun i -> Wedge i) cfg.min_wedges;
  place is_fault
    (fun i ->
      let kinds = [| "raise"; "corrupt"; "exhaust"; "hang" |] in
      Faulty (i, kinds.(i mod 4)))
    cfg.min_faults;
  Array.to_list evs

(* --- references: the one-shot answer for every clean job --- *)

(* The unsupervised, uncached execution of a source is the oracle the
   daemon's answers must match bit for bit. *)
let reference_checksums () : string array =
  Array.mapi
    (fun i _ ->
      match Supervisor.replay_attempt ~deadline_ms:30_000 (mk_job i) with
      | Ok o -> o.Proto.checksum
      | Error e -> failwith ("chaos: reference job died: " ^ e))
    sources

(* --- the campaign --- *)

type pending =
  { psrc : int
  ; pclean : bool
  ; ptk : Server.ticket
  }

let run (cfg : config) : report =
  let refs = reference_checksums () in
  let server_cfg =
    { Server.queue_cap = cfg.queue_cap
    ; cache_dir = cfg.state_dir
    ; executors = cfg.executors
    ; executor_deadline_ms = 1500
      (* far above any legitimate job here (deadline 150 ms, 1 retry,
         5 ms backoff cap), far below the test-suite budget *)
    ; sup =
        { Supervisor.default_config with
          deadline_ms = 150
        ; crash_dir = cfg.crash_dir
        ; backoff = { Backoff.base_ms = 1; cap_ms = 5; max_retries = 1 }
        ; seed = cfg.seed
        }
    }
  in
  let t = Server.create server_cfg in
  let submitted = ref 0
  and overloaded = ref 0
  and faults = ref 0
  and wedges = ref 0
  and crashes = ref 0 in
  let pend : pending list ref = ref [] in
  let submit ?(faults = "") ~clean src : bool =
    incr submitted;
    match Server.submit t (mk_job ~faults src) with
    | `Ticket tk ->
      pend := { psrc = src; pclean = clean; ptk = tk } :: !pend;
      true
    | `Overloaded _ | `Draining ->
      incr overloaded;
      false
  in
  (* The campaign is the daemon's only client, so waiting for queue
     space guarantees the next submit is admitted.  Non-burst events
     are paced this way — an injection that bounces off admission
     control exercises nothing — while bursts deliberately slam past
     the cap to exercise exactly that. *)
  let wait_space () =
    while Server.queue_depth t >= cfg.queue_cap do
      Unix.sleepf 0.005
    done
  in
  List.iter
    (fun ev ->
      match ev with
      | Clean src ->
        wait_space ();
        ignore (submit ~clean:true src)
      | Faulty (src, kind) ->
        wait_space ();
        if submit ~faults:("serve:" ^ kind) ~clean:false src then incr faults
      | Wedge src ->
        wait_space ();
        if submit ~faults:"executor:hang" ~clean:false src then incr wedges
      | Crash src ->
        wait_space ();
        if submit ~faults:"executor:raise" ~clean:false src then incr crashes
      | Burst n ->
        for i = 0 to n - 1 do
          ignore (submit ~clean:true i)
        done)
    (schedule cfg);
  Server.drain t;
  (* --- invariants --- *)
  let violations = ref [] in
  let violate fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let ok = ref 0 and failed = ref 0 and hits = ref 0 in
  List.iter
    (fun p ->
      match Server.peek p.ptk with
      | None ->
        (* invariant 2: accepted => answered *)
        violate "ticket %d accepted but never answered (lost job)"
          (Server.ticket_id p.ptk)
      | Some o ->
        if o.Proto.cached then incr hits;
        if o.Proto.exit_code = 2 then begin
          incr failed;
          if p.pclean then
            violate "clean ticket %d failed: %s" (Server.ticket_id p.ptk)
              (String.concat " | " (String.split_on_char '\n' o.Proto.log))
        end
        else begin
          incr ok;
          (* invariant 3: clean answers match the one-shot oracle *)
          if p.pclean && o.Proto.checksum <> refs.(p.psrc mod Array.length refs)
          then
            violate "clean ticket %d checksum %s, one-shot reference %s"
              (Server.ticket_id p.ptk) o.Proto.checksum
              refs.(p.psrc mod Array.length refs)
        end)
    !pend;
  (* invariant 4: every wedge was detected (over-detection — a kill of
     a merely slow lane — is allowed; losing a wedge is not) *)
  let kills = Server.executor_kills t in
  if kills < !wedges then
    violate "%d executor wedge(s) injected but only %d kill(s) recorded"
      !wedges kills;
  (* invariant 5: the journal a restart would replay is verified *)
  (match cfg.state_dir with
   | None -> ()
   | Some dir ->
     let fresh = Cache.create () in
     let loaded = Cache.load fresh ~dir in
     let bad = Cache.verify_all fresh in
     if bad <> 0 then
       violate "cache journal replay produced %d corrupt entr(ies)" bad;
     if loaded = 0 && !ok > 0 then
       violate "cache journal replay loaded nothing after %d completed jobs"
         !ok;
     Cache.close fresh;
     let rec_ = Journal.recover ~dir in
     if rec_.Journal.lost <> [] then
       violate "in-flight journal reports %d lost ticket(s) after a CLEAN drain"
         (List.length rec_.Journal.lost));
  { submitted = !submitted
  ; accepted = List.length !pend
  ; overloaded = !overloaded
  ; faults_injected = !faults
  ; wedges_injected = !wedges
  ; crashes_injected = !crashes
  ; executor_kills = kills
  ; completed_ok = !ok
  ; completed_failed = !failed
  ; cache_hits = !hits
  ; violations = List.rev !violations
  }
