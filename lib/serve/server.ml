(* The compile daemon: bounded-queue admission control in front of the
   {!Supervisor} fault wall.

   Structure: the in-process core ([create] / [submit] / [await] /
   [drain]) is what the bench harness and the smoke test drive
   directly; [serve_unix] wraps it in a Unix-domain-socket front end
   for `polygeist_cpu serve`.

   Three threads of control:
     - the caller (or the socket accept loop) submits jobs; admission
       is a bounded FIFO — a full queue is an immediate, explicit
       [`Overloaded] rejection, never unbounded latency;
     - ONE executor domain pops jobs and runs them through
       {!Supervisor.run_job}.  A single executor is a deliberate
       choice: compile jobs are CPU-bound and themselves fan out over
       the domain pool, so serving them one at a time keeps the
       parallel runtime's team stable and makes job results
       deterministic (which the cache's bit-identity check relies on);
     - a responder domain (socket mode only) writes each job's
       response back and closes the connection, so a slow client never
       stalls the executor.

   The executor is fault-walled twice: [Supervisor.run_job] never
   raises by contract, and the loop around it catches anyway — a bug
   in the supervisor must degrade to a failed job, not a dead daemon. *)

type config =
  { queue_cap : int (* admission bound; jobs beyond it are rejected *)
  ; sup : Supervisor.config
  ; cache_dir : string option (* persist the artifact cache here *)
  }

let default_config =
  { queue_cap = 32; sup = Supervisor.default_config; cache_dir = None }

(* A submitted job's future result. *)
type ticket =
  { tm : Mutex.t
  ; tcv : Condition.t
  ; mutable result : Proto.outcome option
  }

type t =
  { cfg : config
  ; sup : Supervisor.t
  ; cache : Cache.t
  ; q : (int * Proto.job * ticket) Queue.t
  ; qm : Mutex.t
  ; qcv : Condition.t
  ; mutable draining : bool
  ; mutable next_id : int
  ; mutable overloaded : int (* submissions rejected by admission control *)
  ; mutable executor : unit Domain.t option
  }

let fulfill (tk : ticket) (o : Proto.outcome) : unit =
  Mutex.lock tk.tm;
  tk.result <- Some o;
  Condition.broadcast tk.tcv;
  Mutex.unlock tk.tm

let await (tk : ticket) : Proto.outcome =
  Mutex.lock tk.tm;
  while tk.result = None do
    Condition.wait tk.tcv tk.tm
  done;
  let o = Option.get tk.result in
  Mutex.unlock tk.tm;
  o

let executor_loop (t : t) : unit =
  let rec loop () =
    Mutex.lock t.qm;
    while Queue.is_empty t.q && not t.draining do
      Condition.wait t.qcv t.qm
    done;
    if Queue.is_empty t.q then begin
      (* draining and nothing left: done *)
      Mutex.unlock t.qm
    end
    else begin
      let id, job, tk = Queue.pop t.q in
      let depth = Queue.length t.q in
      Mutex.unlock t.qm;
      let outcome =
        (* second wall: run_job never raises by contract, but a dead
           executor would wedge every future ticket, so catch anyway *)
        try Supervisor.run_job t.sup ~cache:t.cache ~queue_depth:depth ~job_id:id job
        with e ->
          { Proto.exit_code = 2
          ; checksum = "-"
          ; cached = false
          ; retries = 0
          ; breaker = false
          ; log = "internal error: supervisor raised " ^ Printexc.to_string e
          }
      in
      fulfill tk outcome;
      loop ()
    end
  in
  loop ()

let create (cfg : config) : t =
  let t =
    { cfg
    ; sup = Supervisor.create cfg.sup
    ; cache = Cache.create ()
    ; q = Queue.create ()
    ; qm = Mutex.create ()
    ; qcv = Condition.create ()
    ; draining = false
    ; next_id = 0
    ; overloaded = 0
    ; executor = None
    }
  in
  (match cfg.cache_dir with
   | Some dir -> ignore (Cache.load t.cache ~dir)
   | None -> ());
  t.executor <- Some (Domain.spawn (fun () -> executor_loop t));
  t

(* Admission control: accept into the bounded queue or reject NOW. *)
let submit (t : t) (job : Proto.job) :
  [ `Ticket of ticket | `Overloaded of int * int | `Draining ] =
  Mutex.lock t.qm;
  if t.draining then begin
    Mutex.unlock t.qm;
    `Draining
  end
  else begin
    let depth = Queue.length t.q in
    if depth >= t.cfg.queue_cap then begin
      t.overloaded <- t.overloaded + 1;
      Mutex.unlock t.qm;
      `Overloaded (depth, t.cfg.queue_cap)
    end
    else begin
      let id = t.next_id in
      t.next_id <- id + 1;
      let tk = { tm = Mutex.create (); tcv = Condition.create (); result = None } in
      Queue.push (id, job, tk) t.q;
      Condition.signal t.qcv;
      Mutex.unlock t.qm;
      `Ticket tk
    end
  end

(* Synchronous submit for in-process callers (bench, tests). *)
let run (t : t) (job : Proto.job) : Proto.response =
  match submit t job with
  | `Ticket tk -> Proto.Done (await tk)
  | `Overloaded (depth, cap) -> Proto.Overloaded { depth; cap }
  | `Draining -> Proto.Rejected "draining"

(* Graceful drain: stop admitting, finish every queued job, stop the
   executor, flush the cache index. *)
let drain (t : t) : unit =
  Mutex.lock t.qm;
  t.draining <- true;
  Condition.broadcast t.qcv;
  Mutex.unlock t.qm;
  (match t.executor with
   | Some d ->
     Domain.join d;
     t.executor <- None
   | None -> ());
  (match t.cfg.cache_dir with
   | Some dir -> ignore (Cache.flush t.cache ~dir)
   | None -> ());
  Runtime.Pool.shutdown_cached ()

let queue_depth (t : t) : int =
  Mutex.lock t.qm;
  let d = Queue.length t.q in
  Mutex.unlock t.qm;
  d

let overloaded_count (t : t) : int = t.overloaded
let supervisor (t : t) : Supervisor.t = t.sup
let cache (t : t) : Cache.t = t.cache

(* --- Unix-domain-socket front end --- *)

(* The responder: a FIFO of (connection, ticket) pairs.  Tickets are
   enqueued in submission order and the single executor fulfills them
   in submission order, so the responder's head ticket is always the
   next one to complete — it never waits on the wrong job. *)
type responder_q =
  { rq : (Unix.file_descr * ticket) option Queue.t
  ; rm : Mutex.t
  ; rcv : Condition.t
  }

let responder_push (r : responder_q) (item : (Unix.file_descr * ticket) option)
    : unit =
  Mutex.lock r.rm;
  Queue.push item r.rq;
  Condition.signal r.rcv;
  Mutex.unlock r.rm

let responder_loop (r : responder_q) : unit =
  let rec loop () =
    Mutex.lock r.rm;
    while Queue.is_empty r.rq do
      Condition.wait r.rcv r.rm
    done;
    let item = Queue.pop r.rq in
    Mutex.unlock r.rm;
    match item with
    | None -> () (* sentinel: drain complete *)
    | Some (fd, tk) ->
      let o = await tk in
      (try Proto.send fd (Proto.response_to_string (Proto.Done o))
       with _ -> () (* client went away; its job still ran and cached *));
      (try Unix.close fd with Unix.Unix_error _ -> ());
      loop ()
  in
  loop ()

let reply_and_close (fd : Unix.file_descr) (resp : Proto.response) : unit =
  (try Proto.send fd (Proto.response_to_string resp) with _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Run the daemon on [socket] until a shutdown request or SIGTERM /
   SIGINT, then drain.  Returns the number of jobs admitted.  [ready]
   (if given) is called once the socket is listening — the smoke test
   uses it; external clients use {!Client.wait_ready}. *)
let serve_unix ?(ready : (unit -> unit) option) ~(socket : string)
    (t : t) : int =
  let stop = Atomic.make false in
  (* a client that disconnects before its response is written must
     surface as EPIPE (caught around every send), not as a fatal
     SIGPIPE — readiness probes do exactly this *)
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let old_term =
    Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> Atomic.set stop true))
  in
  let old_int =
    Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> Atomic.set stop true))
  in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX socket);
  Unix.listen sock 16;
  (match ready with Some f -> f () | None -> ());
  let responder = { rq = Queue.create (); rm = Mutex.create (); rcv = Condition.create () } in
  let responder_d = Domain.spawn (fun () -> responder_loop responder) in
  let admitted = ref 0 in
  let rec accept_loop () =
    if Atomic.get stop then ()
    else begin
      match Unix.select [ sock ] [] [] 0.25 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | [], _, _ -> accept_loop ()
      | _ -> begin
        match Unix.accept sock with
        | exception Unix.Unix_error _ -> accept_loop ()
        | conn, _ ->
          (* a silent client must not wedge the accept loop *)
          (try Unix.setsockopt_float conn Unix.SO_RCVTIMEO 10.0
           with Unix.Unix_error _ -> ());
          (match Proto.recv conn with
           | Error e -> reply_and_close conn (Proto.Rejected e)
           | Ok payload -> begin
             match Proto.request_of_string payload with
             | Error e -> reply_and_close conn (Proto.Rejected e)
             | Ok Proto.Shutdown ->
               reply_and_close conn
                 (Proto.Done
                    { Proto.exit_code = 0
                    ; checksum = "-"
                    ; cached = false
                    ; retries = 0
                    ; breaker = false
                    ; log = "draining: shutdown accepted"
                    });
               Atomic.set stop true
             | Ok (Proto.Submit job) -> begin
               match submit t job with
               | `Ticket tk ->
                 incr admitted;
                 (* response is sent by the responder once the job runs *)
                 responder_push responder (Some (conn, tk))
               | `Overloaded (depth, cap) ->
                 reply_and_close conn (Proto.Overloaded { depth; cap })
               | `Draining -> reply_and_close conn (Proto.Rejected "draining")
             end
           end);
          if not (Atomic.get stop) then accept_loop ()
      end
    end
  in
  accept_loop ();
  (* drain: queued jobs finish and their responses go out, then the
     responder sees the sentinel *)
  drain t;
  responder_push responder None;
  Domain.join responder_d;
  (try Unix.close sock with Unix.Unix_error _ -> ());
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  Sys.set_signal Sys.sigterm old_term;
  Sys.set_signal Sys.sigint old_int;
  Sys.set_signal Sys.sigpipe old_pipe;
  !admitted
