(* The compile daemon: bounded-queue admission control in front of a
   supervised FLEET of executor lanes.

   Structure: the in-process core ([create] / [submit] / [await] /
   [drain]) is what the bench harness, the smoke test and the chaos
   campaign drive directly; [serve_unix] wraps it in a
   Unix-domain-socket front end for `polygeist_cpu serve`.

   Threads of control:

     - the caller (or the socket accept loop) submits jobs; admission
       is a bounded count across all lanes — a full queue is an
       immediate, explicit [`Overloaded] rejection, never unbounded
       latency;

     - [executors] EXECUTOR LANES, each a domain that pops jobs from
       its own queue and runs them through {!Supervisor.run_job}.  Each
       lane owns its own {!Supervisor.t} (so circuit-breaker state
       needs no cross-domain locking) and — via the domain-local pool
       cache — its own {!Runtime.Pool} team, so a poisoned or rebuilt
       pool in one lane never stalls another.  Jobs are routed by
       SOURCE-HASH AFFINITY: the same source always lands on the same
       lane, which keeps per-source results deterministic (the cache's
       bit-identity check relies on it) and keeps each source's breaker
       history in one place.  [--executors 1] is bit-identical to the
       old single-executor daemon;

     - a MONITOR domain watches every lane's heartbeat.  A lane whose
       job outlives the executor deadline (derived from the supervisor
       deadline and the worst-case retry schedule, so it only fires
       beyond any legitimate work) is declared wedged: the monitor
       fails the in-flight ticket with a rung="serve" crash bundle,
       marks the incarnation dead, and spawns a replacement executor on
       the same queue.  Fulfilling the ticket is first-write-wins and
       doubles as the race linearization: the monitor only kills after
       its failure-fulfill WON, and a zombie executor whose late
       fulfill LOSES sees its incarnation is dead and exits instead of
       touching the lane.  (An OCaml domain cannot be killed, so a
       truly wedged executor is leaked — exactly like the pool's
       leaked-worker accounting.)  The monitor also replaces executors
       whose loop crashed outright;

     - a responder domain (socket mode only) writes each completed
       job's response — in COMPLETION order, paired to its connection
       by the ticket, echoing the request's wire id — so neither a slow
       client nor a slow job stalls the others.

   Durability: accepted tickets are recorded in an in-flight journal
   (S at admission, E at terminal reply, fsynced), and the artifact
   cache appends to a write-ahead journal on every store, so a SIGKILL
   loses neither completed work nor the identity of in-flight work:
   restart reports exactly which tickets died with the process.

   The executor is fault-walled twice: [Supervisor.run_job] never
   raises by contract, and the lane loop catches anyway — a bug in the
   supervisor must degrade to a failed job, not a dead lane (and a dead
   lane degrades to a replaced lane, not a dead daemon). *)

type config =
  { queue_cap : int (* admission bound; jobs beyond it are rejected *)
  ; sup : Supervisor.config
  ; cache_dir : string option (* persist cache + in-flight journal here *)
  ; executors : int (* executor lanes (>= 1) *)
  ; executor_deadline_ms : int
    (* wall-clock bound on one lane's job before the monitor declares
       the lane wedged; 0 derives it from the supervisor deadline and
       the worst-case retry schedule (and disables monitoring when the
       supervisor deadline is itself 0) *)
  }

let default_config =
  { queue_cap = 32
  ; sup = Supervisor.default_config
  ; cache_dir = None
  ; executors = 1
  ; executor_deadline_ms = 0
  }

(* The monitor must not declare a lane wedged while its job could still
   be doing legitimate work: a job may burn the full supervisor
   deadline on every attempt plus every backoff delay in between. *)
let derived_executor_deadline (cfg : config) : int =
  if cfg.executor_deadline_ms > 0 then cfg.executor_deadline_ms
  else if cfg.sup.Supervisor.deadline_ms <= 0 then 0
  else
    ((1 + cfg.sup.Supervisor.backoff.Backoff.max_retries)
     * cfg.sup.Supervisor.deadline_ms)
    + Backoff.worst_case_total_ms cfg.sup.Supervisor.backoff
    + 2000

(* A submitted job's future result.  [id] is the daemon-wide ticket id
   (also the in-flight journal key).  [notify] lets the socket
   responder subscribe to completion instead of parking a domain per
   connection; it is invoked outside the ticket lock and must be
   cheap. *)
type ticket =
  { id : int
  ; tm : Mutex.t
  ; tcv : Condition.t
  ; mutable result : Proto.outcome option
  ; mutable notify : (Proto.outcome -> unit) option
  }

(* One executor incarnation.  A lane can go through several: the
   monitor replaces an incarnation when it wedges or crashes.  [dead]
   is the kill switch (set only after the monitor won the in-flight
   ticket); [exited] is the incarnation's own "my loop returned";
   [crashed] marks an uncaught exception (the monitor spawns a
   replacement). *)
type incarnation =
  { dead : bool Atomic.t
  ; exited : bool Atomic.t
  ; crashed : bool Atomic.t
  ; mutable domain : unit Domain.t option
  }

type lane =
  { lq : (Proto.job * ticket) Queue.t
  ; lm : Mutex.t
  ; lcv : Condition.t
  ; lsup : Supervisor.t (* lane-private: breaker state needs no lock *)
  ; mutable busy_since : float (* heartbeat; 0.0 = idle (under lm) *)
  ; mutable current : (Proto.job * ticket) option (* under lm *)
  ; mutable inc : incarnation (* written by create/monitor only *)
  ; mutable kills : int (* incarnations the monitor replaced *)
  }

type t =
  { cfg : config
  ; cache : Cache.t
  ; lanes : lane array
  ; qm : Mutex.t (* admission: draining / next_id / overloaded *)
  ; mutable draining : bool
  ; mutable next_id : int
  ; mutable overloaded : int (* submissions rejected by admission *)
  ; queued : int Atomic.t (* admitted, not yet popped by a lane *)
  ; exec_deadline_ms : int
  ; journal : Journal.t option
  ; recovery : Journal.recovery option (* what the previous run lost *)
  ; mstop : bool Atomic.t
  ; mutable monitor : unit Domain.t option
  }

(* --- tickets --- *)

(* First write wins; the bool is the linearization every kill decision
   hangs off. *)
let fulfill (tk : ticket) (o : Proto.outcome) : bool =
  Mutex.lock tk.tm;
  if tk.result <> None then begin
    Mutex.unlock tk.tm;
    false
  end
  else begin
    tk.result <- Some o;
    Condition.broadcast tk.tcv;
    let n = tk.notify in
    tk.notify <- None;
    Mutex.unlock tk.tm;
    (match n with Some f -> f o | None -> ());
    true
  end

(* Non-blocking result read; the chaos harness uses it after drain,
   when "no result yet" means a lost ticket (an invariant violation),
   not "still running". *)
let peek (tk : ticket) : Proto.outcome option =
  Mutex.lock tk.tm;
  let r = tk.result in
  Mutex.unlock tk.tm;
  r

let ticket_id (tk : ticket) : int = tk.id

let await (tk : ticket) : Proto.outcome =
  Mutex.lock tk.tm;
  while tk.result = None do
    Condition.wait tk.tcv tk.tm
  done;
  let o = Option.get tk.result in
  Mutex.unlock tk.tm;
  o

(* Subscribe to completion; fires immediately if the result already
   landed.  Used by the socket responder. *)
let on_complete (tk : ticket) (f : Proto.outcome -> unit) : unit =
  Mutex.lock tk.tm;
  match tk.result with
  | Some o ->
    Mutex.unlock tk.tm;
    f o
  | None ->
    tk.notify <- Some f;
    Mutex.unlock tk.tm

let journal_finish (t : t) (tk : ticket) (status : string) : unit =
  match t.journal with
  | Some j -> Journal.finish j ~id:tk.id ~status
  | None -> ()

let status_of (o : Proto.outcome) : string =
  if o.Proto.exit_code = 2 then "failed" else "done"

let internal_failure (what : string) : Proto.outcome =
  { Proto.exit_code = 2
  ; checksum = "-"
  ; cached = false
  ; retries = 0
  ; breaker = false
  ; log = what
  }

(* --- executor lanes --- *)

(* Lane-level fault injection (the chaos campaign's wedge lever):
   executor:hang wedges the lane itself — run_job never starts, the
   monitor must notice; executor:raise kills the lane loop — the crash
   wall must answer the ticket and the monitor must respawn. *)
let executor_fault (job : Proto.job) : Core.Fault.kind option =
  match Core.Fault.plan_of_string job.Proto.faults with
  | Error _ -> None
  | Ok plan ->
    List.find_map (fun (s, k) -> if s = "executor" then Some k else None) plan

exception Lane_crash of string

let executor_body (t : t) (lane : lane) (inc : incarnation) : unit =
  let rec loop () =
    Mutex.lock lane.lm;
    while
      Queue.is_empty lane.lq && (not t.draining) && not (Atomic.get inc.dead)
    do
      Condition.wait lane.lcv lane.lm
    done;
    if Atomic.get inc.dead || Queue.is_empty lane.lq then
      (* killed, or draining with nothing left *)
      Mutex.unlock lane.lm
    else begin
      let (job, tk) = Queue.pop lane.lq in
      Atomic.decr t.queued;
      lane.busy_since <- Unix.gettimeofday ();
      lane.current <- Some (job, tk);
      Mutex.unlock lane.lm;
      match executor_fault job with
      | Some Core.Fault.Hang ->
        (* wedged executor: spin (not block — there is nothing to block
           on) until the monitor fails our ticket and declares this
           incarnation dead, then exit as a zombie without touching the
           lane.  If no monitor is armed, drain's force-kill is the
           backstop. *)
        while not (Atomic.get inc.dead) do
          Unix.sleepf 0.002
        done
      | ef ->
        if ef = Some Core.Fault.Raise then
          raise (Lane_crash "injected fault: executor:raise");
        let outcome =
          (* second wall: run_job never raises by contract, but a dead
             executor would wedge every future ticket, so catch anyway *)
          try
            Supervisor.run_job lane.lsup ~cache:t.cache
              ~queue_depth:(Atomic.get t.queued) ~job_id:tk.id job
          with e ->
            internal_failure
              ("internal error: supervisor raised " ^ Printexc.to_string e)
        in
        if fulfill tk outcome then journal_finish t tk (status_of outcome);
        Mutex.lock lane.lm;
        if not (Atomic.get inc.dead) then begin
          lane.current <- None;
          lane.busy_since <- 0.0
        end;
        Mutex.unlock lane.lm;
        loop ()
    end
  in
  loop ()

(* The incarnation wall: even a crash of the lane LOOP (not just a job)
   answers the in-flight ticket and leaves a respawnable lane behind. *)
let executor_main (t : t) (lane : lane) (inc : incarnation) : unit =
  (match executor_body t lane inc with
   | () -> ()
   | exception e ->
     Atomic.set inc.crashed true;
     Mutex.lock lane.lm;
     let cur = if Atomic.get inc.dead then None else lane.current in
     (match cur with
      | Some _ ->
        lane.current <- None;
        lane.busy_since <- 0.0
      | None -> ());
     Mutex.unlock lane.lm;
     (match cur with
      | Some (_job, tk) ->
        let what =
          match e with
          | Lane_crash w -> w
          | e -> Printexc.to_string e
        in
        let o = internal_failure ("executor crashed: " ^ what) in
        if fulfill tk o then journal_finish t tk "failed"
      | None -> ()));
  (* the lane's cached pool is domain-local: tear it down with the
     incarnation so worker domains don't outlive their lane *)
  Runtime.Pool.shutdown_cached ();
  Atomic.set inc.exited true

let spawn_incarnation (t : t) (lane : lane) : unit =
  let inc =
    { dead = Atomic.make false
    ; exited = Atomic.make false
    ; crashed = Atomic.make false
    ; domain = None
    }
  in
  lane.inc <- inc;
  inc.domain <- Some (Domain.spawn (fun () -> executor_main t lane inc))

(* --- the monitor --- *)

let wedge_outcome ~(elapsed_ms : int) : Proto.outcome =
  internal_failure
    (Printf.sprintf
       "job failed: executor wedged: job still running after %d ms (fleet \
        deadline); executor replaced"
       elapsed_ms)

(* Declare [lane]'s incarnation wedged IF the monitor wins the
   in-flight ticket.  Winning is the license to kill: if the job
   completed in the race window, the executor's fulfill won, nothing
   happens, and the next tick re-evaluates a fresh heartbeat. *)
let kill_lane (t : t) (lane : lane) ~(job : Proto.job) ~(tk : ticket)
    ~(elapsed_ms : int) : unit =
  if fulfill tk (wedge_outcome ~elapsed_ms) then begin
    let inc = lane.inc in
    Atomic.set inc.dead true;
    Mutex.lock lane.lm;
    lane.current <- None;
    lane.busy_since <- 0.0;
    Condition.broadcast lane.lcv;
    Mutex.unlock lane.lm;
    lane.kills <- lane.kills + 1;
    ignore (Supervisor.wedge_bundle lane.lsup ~job ~elapsed_ms);
    journal_finish t tk "wedged";
    spawn_incarnation t lane
  end

let monitor_loop (t : t) : unit =
  while not (Atomic.get t.mstop) do
    Unix.sleepf 0.02;
    Array.iter
      (fun lane ->
        let inc = lane.inc in
        if
          Atomic.get inc.crashed
          && Atomic.get inc.exited
          && not (Atomic.get inc.dead)
        then begin
          (* the lane loop died; its queue may still hold jobs *)
          Atomic.set inc.dead true;
          lane.kills <- lane.kills + 1;
          spawn_incarnation t lane
        end
        else if t.exec_deadline_ms > 0 then begin
          Mutex.lock lane.lm;
          let cur = lane.current and since = lane.busy_since in
          Mutex.unlock lane.lm;
          match cur with
          | Some (job, tk) when since > 0.0 ->
            let elapsed_ms =
              int_of_float ((Unix.gettimeofday () -. since) *. 1000.)
            in
            if elapsed_ms > t.exec_deadline_ms then
              kill_lane t lane ~job ~tk ~elapsed_ms
          | _ -> ()
        end)
      t.lanes
  done

(* --- construction --- *)

let create (cfg : config) : t =
  let n = max 1 cfg.executors in
  let lanes =
    Array.init n (fun _ ->
        { lq = Queue.create ()
        ; lm = Mutex.create ()
        ; lcv = Condition.create ()
        ; lsup = Supervisor.create cfg.sup
        ; busy_since = 0.0
        ; current = None
        ; inc =
            (* placeholder, replaced before any job can arrive *)
            { dead = Atomic.make true
            ; exited = Atomic.make true
            ; crashed = Atomic.make false
            ; domain = None
            }
        ; kills = 0
        })
  in
  let recovery, journal =
    match cfg.cache_dir with
    | None -> (None, None)
    | Some dir ->
      (* read what the previous process left behind BEFORE open_
         truncates it *)
      let r = Journal.recover ~dir in
      let j = match Journal.open_ ~dir with Ok j -> Some j | Error _ -> None in
      (Some r, j)
  in
  let t =
    { cfg
    ; cache = Cache.create ()
    ; lanes
    ; qm = Mutex.create ()
    ; draining = false
    ; next_id = 0
    ; overloaded = 0
    ; queued = Atomic.make 0
    ; exec_deadline_ms = derived_executor_deadline cfg
    ; journal
    ; recovery
    ; mstop = Atomic.make false
    ; monitor = None
    }
  in
  (match cfg.cache_dir with
   | Some dir -> ignore (Cache.load t.cache ~dir)
   | None -> ());
  Array.iter (fun lane -> spawn_incarnation t lane) t.lanes;
  t.monitor <- Some (Domain.spawn (fun () -> monitor_loop t));
  t

(* --- admission --- *)

(* Source-hash affinity: a given source always runs on the same lane,
   so its results stay deterministic and its breaker history stays in
   one supervisor. *)
let lane_index (t : t) (job : Proto.job) : int =
  Hashtbl.hash (Supervisor.source_hash job) mod Array.length t.lanes

(* Admission control: accept into the bounded (fleet-wide) queue or
   reject NOW. *)
let submit (t : t) (job : Proto.job) :
  [ `Ticket of ticket | `Overloaded of int * int | `Draining ] =
  Mutex.lock t.qm;
  if t.draining then begin
    Mutex.unlock t.qm;
    `Draining
  end
  else begin
    let depth = Atomic.get t.queued in
    if depth >= t.cfg.queue_cap then begin
      t.overloaded <- t.overloaded + 1;
      Mutex.unlock t.qm;
      `Overloaded (depth, t.cfg.queue_cap)
    end
    else begin
      let id = t.next_id in
      t.next_id <- id + 1;
      Atomic.incr t.queued;
      Mutex.unlock t.qm;
      let tk =
        { id
        ; tm = Mutex.create ()
        ; tcv = Condition.create ()
        ; result = None
        ; notify = None
        }
      in
      (* accepted => journaled: after a SIGKILL, this ticket is either
         E-terminated or reported lost — never silently forgotten *)
      (match t.journal with
       | Some j ->
         Journal.start j ~id
           ~digest:(Cache.key ~source:job.Proto.source ~flags:(Proto.job_flags job))
       | None -> ());
      let lane = t.lanes.(lane_index t job) in
      Mutex.lock lane.lm;
      Queue.push (job, tk) lane.lq;
      Condition.signal lane.lcv;
      Mutex.unlock lane.lm;
      `Ticket tk
    end
  end

(* Synchronous submit for in-process callers (bench, tests). *)
let run (t : t) (job : Proto.job) : Proto.response =
  match submit t job with
  | `Ticket tk -> Proto.Done (await tk)
  | `Overloaded (depth, cap) -> Proto.Overloaded { depth; cap }
  | `Draining -> Proto.Rejected "draining"

(* --- drain --- *)

(* Graceful drain: stop admitting, finish every queued job (the monitor
   stays up so wedges during the drain are still replaced), stop the
   lanes and the monitor, compact the cache journal.  A lane that is
   wedged with no monitor armed is force-killed here — its ticket is
   failed, never lost. *)
let drain (t : t) : unit =
  Mutex.lock t.qm;
  t.draining <- true;
  Mutex.unlock t.qm;
  Array.iter
    (fun lane ->
      Mutex.lock lane.lm;
      Condition.broadcast lane.lcv;
      Mutex.unlock lane.lm)
    t.lanes;
  (* settle: every lane empty, idle, and its incarnation exited *)
  let settled lane =
    Mutex.lock lane.lm;
    let empty = Queue.is_empty lane.lq && lane.current = None in
    Mutex.unlock lane.lm;
    empty && Atomic.get lane.inc.exited
  in
  let deadline =
    Unix.gettimeofday ()
    +. (float_of_int (max 30_000 (3 * t.exec_deadline_ms)) /. 1000.)
  in
  let rec settle () =
    if Array.for_all settled t.lanes then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Unix.sleepf 0.01;
      settle ()
    end
  in
  let clean = settle () in
  if not clean then
    (* force-kill what never settled so no ticket is left unanswered *)
    Array.iter
      (fun lane ->
        if not (settled lane) then begin
          let inc = lane.inc in
          Atomic.set inc.dead true;
          Mutex.lock lane.lm;
          let cur = lane.current in
          lane.current <- None;
          lane.busy_since <- 0.0;
          let leftovers = Queue.fold (fun acc it -> it :: acc) [] lane.lq in
          Queue.clear lane.lq;
          Condition.broadcast lane.lcv;
          Mutex.unlock lane.lm;
          let fail (_job, tk) =
            Atomic.decr t.queued;
            if
              fulfill tk
                (internal_failure "job failed: daemon drained while executor wedged")
            then journal_finish t tk "wedged"
          in
          (match cur with
           | Some (job, tk) ->
             lane.kills <- lane.kills + 1;
             if fulfill tk (wedge_outcome ~elapsed_ms:0) then begin
               ignore
                 (Supervisor.wedge_bundle lane.lsup ~job ~elapsed_ms:0);
               journal_finish t tk "wedged"
             end
           | None -> ());
          List.iter fail (List.rev leftovers)
        end)
      t.lanes;
  Atomic.set t.mstop true;
  (match t.monitor with
   | Some d ->
     Domain.join d;
     t.monitor <- None
   | None -> ());
  (* join the incarnations that exited; wedged zombies are leaked *)
  Array.iter
    (fun lane ->
      let inc = lane.inc in
      if Atomic.get inc.exited then
        match inc.domain with
        | Some d ->
          (try Domain.join d with _ -> ());
          inc.domain <- None
        | None -> ())
    t.lanes;
  (match t.cfg.cache_dir with
   | Some dir -> ignore (Cache.flush t.cache ~dir)
   | None -> ());
  (match t.journal with Some j -> Journal.close j | None -> ());
  Cache.close t.cache;
  Runtime.Pool.shutdown_cached ()

(* --- introspection --- *)

let queue_depth (t : t) : int = Atomic.get t.queued
let overloaded_count (t : t) : int = t.overloaded
let cache (t : t) : Cache.t = t.cache
let executors (t : t) : int = Array.length t.lanes
let recovered (t : t) : Journal.recovery option = t.recovery

let executor_kills (t : t) : int =
  Array.fold_left (fun acc lane -> acc + lane.kills) 0 t.lanes

(* Fleet-wide supervisor stats: the sum over the lanes' private
   supervisors. *)
let agg_stats (t : t) : Supervisor.stats =
  let z =
    { Supervisor.jobs = 0
    ; completed = 0
    ; failed = 0
    ; retries = 0
    ; bundles = 0
    ; pool_rebuilds = 0
    ; leaked_domains = 0
    ; breaker_served = 0
    }
  in
  Array.iter
    (fun lane ->
      let s = lane.lsup.Supervisor.stats in
      z.Supervisor.jobs <- z.Supervisor.jobs + s.Supervisor.jobs;
      z.Supervisor.completed <- z.Supervisor.completed + s.Supervisor.completed;
      z.Supervisor.failed <- z.Supervisor.failed + s.Supervisor.failed;
      z.Supervisor.retries <- z.Supervisor.retries + s.Supervisor.retries;
      z.Supervisor.bundles <- z.Supervisor.bundles + s.Supervisor.bundles;
      z.Supervisor.pool_rebuilds <-
        z.Supervisor.pool_rebuilds + s.Supervisor.pool_rebuilds;
      z.Supervisor.leaked_domains <-
        z.Supervisor.leaked_domains + s.Supervisor.leaked_domains;
      z.Supervisor.breaker_served <-
        z.Supervisor.breaker_served + s.Supervisor.breaker_served)
    t.lanes;
  z

let breaker_trips (t : t) : int =
  Array.fold_left
    (fun acc lane -> acc + Supervisor.breaker_trips lane.lsup)
    0 t.lanes

(* The lane supervisor a given job would run under — tests use this to
   inspect per-source breaker state. *)
let supervisor_for (t : t) (job : Proto.job) : Supervisor.t =
  t.lanes.(lane_index t job).lsup

(* --- Unix-domain-socket front end --- *)

(* The responder: completions (not submissions) are queued, so a
   10-second job on lane 0 never delays the reply of a 10-ms job that
   finished on lane 1.  Each entry pairs the finished outcome with its
   connection and the client's wire id. *)
type responder_q =
  { rq : (Unix.file_descr * int * Proto.outcome) option Queue.t
  ; rm : Mutex.t
  ; rcv : Condition.t
  }

let responder_push (r : responder_q)
    (item : (Unix.file_descr * int * Proto.outcome) option) : unit =
  Mutex.lock r.rm;
  Queue.push item r.rq;
  Condition.signal r.rcv;
  Mutex.unlock r.rm

let responder_loop (r : responder_q) : unit =
  let rec loop () =
    Mutex.lock r.rm;
    while Queue.is_empty r.rq do
      Condition.wait r.rcv r.rm
    done;
    let item = Queue.pop r.rq in
    Mutex.unlock r.rm;
    match item with
    | None -> () (* sentinel: drain complete *)
    | Some (fd, wire_id, o) ->
      (try Proto.send fd (Proto.response_to_string ~id:wire_id (Proto.Done o))
       with _ -> () (* client went away; its job still ran and cached *));
      (try Unix.close fd with Unix.Unix_error _ -> ());
      loop ()
  in
  loop ()

let reply_and_close (fd : Unix.file_descr) ~(id : int) (resp : Proto.response)
    : unit =
  (try Proto.send fd (Proto.response_to_string ~id resp) with _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Run the daemon on [socket] until a shutdown request or SIGTERM /
   SIGINT, then drain.  Returns the number of jobs admitted.  [ready]
   (if given) is called once the socket is listening — the smoke test
   uses it; external clients use {!Client.wait_ready}. *)
let serve_unix ?(ready : (unit -> unit) option) ~(socket : string)
    (t : t) : int =
  let stop = Atomic.make false in
  (* a client that disconnects before its response is written must
     surface as EPIPE (caught around every send), not as a fatal
     SIGPIPE — readiness probes do exactly this *)
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let old_term =
    Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> Atomic.set stop true))
  in
  let old_int =
    Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> Atomic.set stop true))
  in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX socket);
  Unix.listen sock 16;
  (match ready with Some f -> f () | None -> ());
  let responder =
    { rq = Queue.create (); rm = Mutex.create (); rcv = Condition.create () }
  in
  let responder_d = Domain.spawn (fun () -> responder_loop responder) in
  let admitted = ref 0 in
  let rec accept_loop () =
    if Atomic.get stop then ()
    else begin
      match Unix.select [ sock ] [] [] 0.25 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | [], _, _ -> accept_loop ()
      | _ -> begin
        match Unix.accept sock with
        | exception Unix.Unix_error _ -> accept_loop ()
        | conn, _ ->
          (* a silent client must not wedge the accept loop *)
          (try Unix.setsockopt_float conn Unix.SO_RCVTIMEO 10.0
           with Unix.Unix_error _ -> ());
          (match Proto.recv conn with
           | Error e -> reply_and_close conn ~id:0 (Proto.Rejected e)
           | Ok payload -> begin
             match Proto.request_of_string payload with
             | Error e -> reply_and_close conn ~id:0 (Proto.Rejected e)
             | Ok (wire_id, Proto.Shutdown) ->
               reply_and_close conn ~id:wire_id
                 (Proto.Done
                    { Proto.exit_code = 0
                    ; checksum = "-"
                    ; cached = false
                    ; retries = 0
                    ; breaker = false
                    ; log = "draining: shutdown accepted"
                    });
               Atomic.set stop true
             | Ok (wire_id, Proto.Submit job) -> begin
               match submit t job with
               | `Ticket tk ->
                 incr admitted;
                 (* the responder sends the reply — in completion
                    order, echoing the client's id — once the job
                    lands *)
                 on_complete tk (fun o ->
                     responder_push responder (Some (conn, wire_id, o)))
               | `Overloaded (depth, cap) ->
                 reply_and_close conn ~id:wire_id
                   (Proto.Overloaded { depth; cap })
               | `Draining ->
                 reply_and_close conn ~id:wire_id (Proto.Rejected "draining")
             end
           end);
          if not (Atomic.get stop) then accept_loop ()
      end
    end
  in
  accept_loop ();
  (* drain: queued jobs finish (every ticket is fulfilled, so every
     pending on_complete fires), then the responder sees the
     sentinel *)
  drain t;
  responder_push responder None;
  Domain.join responder_d;
  (try Unix.close sock with Unix.Unix_error _ -> ());
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  Sys.set_signal Sys.sigterm old_term;
  Sys.set_signal Sys.sigint old_int;
  Sys.set_signal Sys.sigpipe old_pipe;
  !admitted
