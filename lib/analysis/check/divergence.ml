(* Barrier-divergence check, on top of the {!Mhp} interval analysis.

   [polygeist.barrier] (CUDA [__syncthreads]) requires that every thread
   of the block reach the same barrier the same number of times.  A
   barrier nested under control flow whose condition (or trip count)
   depends on the thread id can be reached by only a subset of the
   threads — the classic divergent-barrier bug, which the fiber-based
   interpreter only detects at run time as a deadlock.

   The thread-dependence taint lives in {!Mhp.mk_taint} (shared with
   the race check); every barrier's ancestor chain up to the
   block-parallel op is inspected: a tainted [If] condition, [For]
   bound, or [While] condition flags the barrier.  Each finding records
   the offending barrier and the divergent ancestor, plus the barrier's
   interval pair (what it closes / what it opens) — the handles the
   repair search uses to propose hoisting the barrier out of the
   divergent construct. *)

open Ir

type finding =
  { dv_barrier : Op.op
  ; dv_anchor : Op.op (* the thread-dependent control ancestor *)
  ; dv_diag : Diag.t
  }

let findings (mhp : Mhp.t) : finding list =
  let ctx = Mhp.ctx mhp in
  let par = Mhp.par mhp in
  let taint = Mhp.taint mhp in
  let acc = ref [] in
  let intervals_of (b : Op.op) =
    (* what the barrier closes and what it opens: the span a hoisted
       replacement has to cover *)
    match Mhp.barrier_closes mhp b, Mhp.barrier_opens mhp b with
    | Some (u, s), Some opened ->
      let closed = match u @ s with [] -> 0 | l -> List.fold_left min max_int l in
      Some (closed, opened)
    | _ -> None
  in
  let flag (barrier : Op.op) (anc : Op.op) msg =
    let notes =
      [ Diag.note ?loc:anc.Op.loc "thread-dependent control flow is here" ]
    in
    let diag =
      Diag.mk ?loc:barrier.Op.loc ~notes ?intervals:(intervals_of barrier)
        Diag.Error "divergence" msg
    in
    acc := { dv_barrier = barrier; dv_anchor = anc; dv_diag = diag } :: !acc
  in
  Op.iter_region
    (fun (b : Op.op) ->
      if b.Op.kind = Op.Barrier then
        List.iter
          (fun (anc : Op.op) ->
            match anc.Op.kind with
            | Op.If ->
              if taint anc.Op.operands.(0) then
                flag b anc
                  "barrier under a thread-dependent condition: threads may \
                   diverge at __syncthreads"
            | Op.For ->
              if
                taint (Op.for_lo anc) || taint (Op.for_hi anc)
                || taint (Op.for_step anc)
              then
                flag b anc
                  "barrier inside a loop with thread-dependent trip count: \
                   threads may execute __syncthreads a different number of \
                   times"
            | Op.While -> begin
              match Mhp.while_cond_value anc with
              | Some c when taint c ->
                flag b anc
                  "barrier inside a loop with thread-dependent condition: \
                   threads may execute __syncthreads a different number of \
                   times"
              | _ -> ()
            end
            | _ -> ())
          (Info.ancestors_up_to ctx.Effects.info ~stop:par b))
    par.Op.regions.(0);
  List.rev !acc

let check (mhp : Mhp.t) : Diag.t list =
  List.map (fun f -> f.dv_diag) (findings mhp)
