(* Barrier-divergence check.

   [polygeist.barrier] (CUDA [__syncthreads]) requires that every thread
   of the block reach the same barrier the same number of times.  A
   barrier nested under control flow whose condition (or trip count)
   depends on the thread id can be reached by only a subset of the
   threads — the classic divergent-barrier bug, which the fiber-based
   interpreter only detects at run time as a deadlock.

   The check computes a thread-dependence taint over SSA values: thread
   ivs of the block-parallel loop (minus those with extent 1) are
   tainted, and taint propagates through pure arithmetic, loads (memory
   may hold thread-dependent data), and calls.  Every barrier's ancestor
   chain up to the block-parallel op is then inspected: a tainted [If]
   condition, [For] bound, or [While] condition flags the barrier. *)

open Ir

(* The condition value of a While op: the operand of the Condition
   terminator of its cond region. *)
let while_cond_value (op : Op.op) : Value.t option =
  let found = ref None in
  List.iter
    (fun (o : Op.op) ->
      if o.Op.kind = Op.Condition then found := Some o.Op.operands.(0))
    op.Op.regions.(0).Op.body;
  !found

(* Is the memref a per-thread instance: an allocation made strictly
   inside the block-parallel region (every thread materializes its own
   copy)? *)
let thread_private (ctx : Effects.ctx) (par : Op.op) (v : Value.t) : bool =
  let rec chase (v : Value.t) =
    match Info.defining_op ctx.info v with
    | Some ({ Op.kind = Op.Alloc | Op.Alloca; _ } as o) -> Some o
    | Some { Op.kind = Op.Cast _; operands; _ } -> chase operands.(0)
    | _ -> None
  in
  match chase v with
  | Some o -> Info.is_ancestor ctx.info ~anc:par o
  | None -> false

(* Thread-dependence taint: can the value differ between two threads of
   one block (at the same point of the lock-step execution)?  Memoized
   per value.

   Anything defined outside the block-parallel region is launch-uniform.
   Inside, taint starts at the non-unit thread ivs and propagates
   through arithmetic and through memory when the frontend spilled a
   value to a stack slot: a load from a thread-private slot is tainted
   iff some store to the slot stores a tainted value or executes under
   tainted control (divergent threads then disagree on whether the store
   happened at all).  Loads from anything shared between threads are
   conservatively tainted. *)
let mk_taint (ctx : Effects.ctx) : Value.t -> bool =
  let non_unit = Value.Set.diff ctx.tids (Effects.unit_tids ctx) in
  let memo = Hashtbl.create 64 in
  (* Stores to (and escapes of) each memref inside the parallel region,
     for the private-slot rule. *)
  let slot_stores : (int, Op.op list ref) Hashtbl.t = Hashtbl.create 16 in
  let escaped : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  (match ctx.par with
   | Some par ->
     Op.iter
       (fun (o : Op.op) ->
         match o.Op.kind with
         | Op.Store ->
           let b = o.Op.operands.(1) in
           let r =
             match Hashtbl.find_opt slot_stores b.Value.id with
             | Some r -> r
             | None ->
               let r = ref [] in
               Hashtbl.replace slot_stores b.Value.id r;
               r
           in
           r := o :: !r
         | Op.Copy -> Hashtbl.replace escaped o.Op.operands.(1).Value.id ()
         | Op.Call _ ->
           Array.iter
             (fun (v : Value.t) -> Hashtbl.replace escaped v.Value.id ())
             o.Op.operands
         | _ -> ())
       par
   | None -> ());
  let rec go (v : Value.t) : bool =
    match Hashtbl.find_opt memo v.Value.id with
    | Some b -> b
    | None ->
      (* cycle guard: assume uniform while computing *)
      Hashtbl.replace memo v.Value.id false;
      let r =
        if Value.Set.mem v non_unit then true
        else if Value.Set.mem v ctx.tids then false (* unit-extent tid *)
        else begin
          match Info.def ctx.info v with
          | Info.Def_external -> false (* defined above the kernel *)
          | Info.Def_arg (op, _) when outside op -> false
          | Info.Def_op op when outside op -> false
          | Info.Def_arg (op, _) -> begin
            match op.Op.kind with
            | Op.Func _ -> false (* parameters are launch-uniform *)
            | Op.Parallel Op.Grid -> false (* same block for all threads *)
            | Op.Parallel _ | Op.OmpWsloop | Op.OmpParallel -> true
            | Op.For ->
              (* uniform bounds => all threads see the same iv sequence
                 (same-iteration/lock-step comparison) *)
              go (Op.for_lo op) || go (Op.for_hi op) || go (Op.for_step op)
            | _ -> true
          end
          | Info.Def_op op -> begin
            match op.Op.kind with
            | Op.Constant _ -> false
            | Op.Alloc | Op.Alloca -> false (* the memref value itself *)
            | Op.Load -> load_tainted op
            | Op.Call _ -> true
            | Op.Dim _ -> go op.Op.operands.(0)
            | Op.Binop _ | Op.Cmp _ | Op.Select | Op.Cast _ | Op.Math _ ->
              Array.exists go op.Op.operands
            | _ -> true
          end
        end
      in
      Hashtbl.replace memo v.Value.id r;
      r
  and outside (op : Op.op) : bool =
    match ctx.par with
    | Some par -> not (Info.is_ancestor ctx.info ~anc:par op)
    | None -> false
  and load_tainted (load : Op.op) : bool =
    match ctx.par with
    | None -> true
    | Some par ->
      let b = load.Op.operands.(0) in
      if not (thread_private ctx par b) || Hashtbl.mem escaped b.Value.id
      then true (* other threads may have written the loaded value *)
      else begin
        let stores =
          match Hashtbl.find_opt slot_stores b.Value.id with
          | Some r -> !r
          | None -> []
        in
        List.exists
          (fun (s : Op.op) -> go s.Op.operands.(0) || ctrl_tainted par s)
          stores
      end
  and ctrl_tainted (par : Op.op) (op : Op.op) : bool =
    List.exists
      (fun (anc : Op.op) ->
        match anc.Op.kind with
        | Op.If -> go anc.Op.operands.(0)
        | Op.For ->
          go (Op.for_lo anc) || go (Op.for_hi anc) || go (Op.for_step anc)
        | Op.While -> begin
          match while_cond_value anc with
          | Some c -> go c
          | None -> true
        end
        | _ -> false)
      (Info.ancestors_up_to ctx.info ~stop:par op)
  in
  go

let check (ctx : Effects.ctx) (par : Op.op) : Diag.t list =
  let taint = mk_taint ctx in
  let diags = ref [] in
  let flag (barrier : Op.op) (anc : Op.op) msg =
    let notes =
      [ Diag.note ?loc:anc.Op.loc "thread-dependent control flow is here" ]
    in
    diags := Diag.mk ?loc:barrier.Op.loc ~notes Diag.Error "divergence" msg :: !diags
  in
  Op.iter_region
    (fun (b : Op.op) ->
      if b.Op.kind = Op.Barrier then
        List.iter
          (fun (anc : Op.op) ->
            match anc.Op.kind with
            | Op.If ->
              if taint anc.Op.operands.(0) then
                flag b anc
                  "barrier under a thread-dependent condition: threads may \
                   diverge at __syncthreads"
            | Op.For ->
              if
                taint (Op.for_lo anc) || taint (Op.for_hi anc)
                || taint (Op.for_step anc)
              then
                flag b anc
                  "barrier inside a loop with thread-dependent trip count: \
                   threads may execute __syncthreads a different number of \
                   times"
            | Op.While -> begin
              match while_cond_value anc with
              | Some c when taint c ->
                flag b anc
                  "barrier inside a loop with thread-dependent condition: \
                   threads may execute __syncthreads a different number of \
                   times"
              | _ -> ()
            end
            | _ -> ())
          (Info.ancestors_up_to ctx.info ~stop:par b))
    par.Op.regions.(0);
  List.rev !diags
