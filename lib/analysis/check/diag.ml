(* Diagnostics emitted by the static kernel checker (kernelcheck).

   A diagnostic carries a severity, the name of the check that produced
   it, a primary source location (from the op the frontend stamped), a
   message, and optional notes pointing at related program points — e.g.
   the second access of a racing pair. *)

open Ir

type severity =
  | Error
  | Warning

type note =
  { n_loc : Srcloc.t option
  ; n_msg : string
  }

type t =
  { severity : severity
  ; check : string (* "race" | "divergence" | "shared-init" *)
  ; loc : Srcloc.t option
  ; message : string
  ; notes : note list
  }

let mk ?loc ?(notes = []) severity check message =
  { severity; check; loc; message; notes }

let note ?loc msg = { n_loc = loc; n_msg = msg }

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"

let loc_to_string ~file = function
  | Some l when Srcloc.is_known l ->
    Printf.sprintf "%s:%s" file (Srcloc.to_string l)
  | _ -> Printf.sprintf "%s:?:?" file

let to_string ~file (d : t) =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "%s: %s: [%s] %s"
       (loc_to_string ~file d.loc)
       (severity_to_string d.severity)
       d.check d.message);
  List.iter
    (fun n ->
      Buffer.add_string b
        (Printf.sprintf "\n%s: note: %s" (loc_to_string ~file n.n_loc) n.n_msg))
    d.notes;
  Buffer.contents b

let is_error d = d.severity = Error

(* Stable ordering for reporting: by location, then check name. *)
let compare_diag (a : t) (b : t) =
  let lc =
    match a.loc, b.loc with
    | Some la, Some lb -> Srcloc.compare la lb
    | Some _, None -> -1
    | None, Some _ -> 1
    | None, None -> 0
  in
  if lc <> 0 then lc
  else
    match compare a.check b.check with
    | 0 -> compare a.message b.message
    | c -> c
