(* Diagnostics emitted by the static kernel checker (kernelcheck).

   A diagnostic carries a severity, the name of the check that produced
   it, a primary source location (from the op the frontend stamped), a
   message, optional notes pointing at related program points — e.g.
   the second access of a racing pair — and, for interval-aware checks,
   the pair of barrier intervals the finding spans (see {!Mhp}).

   Two renderings: the classic [file:line:col: severity: [check] msg]
   text, and a machine-readable JSON object per finding for CI
   ([--check-format json]). *)

open Ir

type severity =
  | Error
  | Warning

type note =
  { n_loc : Srcloc.t option
  ; n_msg : string
  }

type t =
  { severity : severity
  ; check : string (* "race" | "divergence" | "shared-init" *)
  ; loc : Srcloc.t option
  ; message : string
  ; notes : note list
  ; intervals : (int * int) option
    (* barrier intervals of the two program points of the finding
       (racing pair; divergent barrier's closing/opening), when the
       producing check is interval-aware *)
  }

let mk ?loc ?(notes = []) ?intervals severity check message =
  { severity; check; loc; message; notes; intervals }

let note ?loc msg = { n_loc = loc; n_msg = msg }

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"

let loc_to_string ~file = function
  | Some l when Srcloc.is_known l ->
    Printf.sprintf "%s:%s" file (Srcloc.to_string l)
  | _ -> Printf.sprintf "%s:?:?" file

let to_string ~file (d : t) =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "%s: %s: [%s] %s"
       (loc_to_string ~file d.loc)
       (severity_to_string d.severity)
       d.check d.message);
  (match d.intervals with
   | Some (i, j) ->
     Buffer.add_string b
       (if i = j then Printf.sprintf " (barrier interval %d)" i
        else Printf.sprintf " (barrier intervals %d and %d)" i j)
   | None -> ());
  List.iter
    (fun n ->
      Buffer.add_string b
        (Printf.sprintf "\n%s: note: %s" (loc_to_string ~file n.n_loc) n.n_msg))
    d.notes;
  Buffer.contents b

(* --- machine-readable rendering --- *)

let json_escape (s : string) : string =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_loc_fields = function
  | Some (l : Srcloc.t) when Srcloc.is_known l ->
    Printf.sprintf "\"line\":%d,\"col\":%d" l.Srcloc.line l.Srcloc.col
  | _ -> "\"line\":null,\"col\":null"

(* One JSON object per finding: kind, severity, location, message,
   intervals (or null), notes.  Key order is fixed so the output is
   byte-stable. *)
let to_json ~file (d : t) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "{\"kind\":\"%s\",\"severity\":\"%s\",\"file\":\"%s\",%s"
       (json_escape d.check)
       (severity_to_string d.severity)
       (json_escape file)
       (json_loc_fields d.loc));
  Buffer.add_string b
    (Printf.sprintf ",\"message\":\"%s\"" (json_escape d.message));
  (match d.intervals with
   | Some (i, j) -> Buffer.add_string b (Printf.sprintf ",\"intervals\":[%d,%d]" i j)
   | None -> Buffer.add_string b ",\"intervals\":null");
  Buffer.add_string b ",\"notes\":[";
  List.iteri
    (fun k n ->
      if k > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{%s,\"message\":\"%s\"}" (json_loc_fields n.n_loc)
           (json_escape n.n_msg)))
    d.notes;
  Buffer.add_string b "]}";
  Buffer.contents b

(* A JSON array of all findings, one object per line (stable, diffable). *)
let list_to_json ~file (ds : t list) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b "[";
  List.iteri
    (fun k d ->
      Buffer.add_string b (if k = 0 then "\n" else ",\n");
      Buffer.add_string b (to_json ~file d))
    ds;
  Buffer.add_string b (if ds = [] then "]" else "\n]");
  Buffer.contents b

let is_error d = d.severity = Error

let compare_loc a b =
  match a, b with
  | Some la, Some lb -> Srcloc.compare la lb
  | Some _, None -> -1
  | None, Some _ -> 1
  | None, None -> 0

(* Stable ordering for reporting: by location, then check name, then
   severity/message/notes/intervals — a total order, so sorting is
   byte-deterministic regardless of discovery order. *)
let compare_diag (a : t) (b : t) =
  let cmp l = List.fold_left (fun acc c -> if acc <> 0 then acc else c ()) 0 l in
  cmp
    [ (fun () -> compare_loc a.loc b.loc)
    ; (fun () -> compare a.check b.check)
    ; (fun () -> compare a.severity b.severity)
    ; (fun () -> compare a.message b.message)
    ; (fun () -> compare a.intervals b.intervals)
    ; (fun () ->
        compare
          (List.map (fun n -> (n.n_loc, n.n_msg)) a.notes)
          (List.map (fun n -> (n.n_loc, n.n_msg)) b.notes))
    ]

(* Deduplicate and deterministically sort a diagnostic list (by file
   order = location, then kind): every checker output goes through this
   so repeated runs are byte-identical. *)
let normalize (ds : t list) : t list = List.sort_uniq compare_diag ds
