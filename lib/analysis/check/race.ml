(* Static cross-thread data-race check, built on the {!Mhp} interval
   analysis.

   Two accesses race when they can touch the same address from two
   different threads with at least one write and no barrier on any path
   between them.  The candidate pairs — accesses that may share a
   dynamic barrier-interval instance — come from {!Mhp.conflicts},
   which pairs every access-bearing leaf with its own accesses (the
   same statement executed by several threads) and with everything
   reachable forward of it before the next barrier, and annotates each
   pair with the static intervals of its two sides.

   Conflicts are then classified:

   - [Definite]: both bases have the same known origin, every index
     dimension is fully affine and either identically thread-invariant
     or forced equal by the injectivity argument, and after accounting
     for forced/pinned/unit thread ivs some thread iv remains free — so
     two distinct threads provably collide.  Reported as an error.
   - [Possible]: the conservative conflict test fires but the analysis
     lost precision (unknown base, non-affine index, thread-dependent
     guard, ...).  Suppressed by default to keep the checker quiet on
     the benchmark suite; [~report_possible:true] surfaces them as
     warnings.

   Each racing op pair yields ONE diagnostic carrying its strongest
   classification, the interval pair, and — through {!findings} — the
   source ops the repair search feeds to
   {!Mhp.separation_points}. *)

open Ir

type strength =
  | Definite
  | Possible

(* Static extent of a thread iv of [par] ([Some hi] when bounds are the
   constants [0, hi)), feeding the mixed-radix injectivity argument. *)
let tid_extent (ctx : Effects.ctx) (par : Op.op) (v : Value.t) : int option =
  let n = Op.par_dims par in
  let res = ref None in
  let cint value =
    match Info.defining_op ctx.info value with
    | Some { Op.kind = Op.Constant (Op.Cint (c, _)); _ } -> Some c
    | _ -> None
  in
  for i = 0 to n - 1 do
    if Value.equal par.Op.regions.(0).rargs.(i) v then begin
      match cint (Op.par_lo par i), cint (Op.par_hi par i) with
      | Some 0, Some hi when hi > 0 -> res := Some hi
      | _ -> ()
    end
  done;
  !res

let classify (ctx : Effects.ctx) ~(taint : Value.t -> bool)
    ~(extent : Value.t -> int option) (a : Effects.access) (ga : bool)
    (b : Effects.access) (gb : bool) : strength =
  let open Effects in
  let same_known_origin =
    match a.base, b.base with
    | Some ba, Some bb -> begin
      match origin ctx.info ba, origin ctx.info bb with
      | Ounknown, _ | _, Ounknown -> false
      | oa, ob -> oa = ob
    end
    | _ -> false
  in
  (* The affine comparison treats every non-tid variable as having the
     same value in both executions.  That only holds for thread-uniform
     values (parameters, block ids, lock-step serial ivs) — a
     thread-dependent variable (e.g. a load result) in an index keeps a
     conflict merely possible. *)
  let vars_ok e =
    List.for_all
      (fun v -> Value.Set.mem v ctx.tids || not (taint v))
      (Affine.variables e)
  in
  let tid_free e =
    List.for_all
      (fun v -> not (Value.Set.mem v ctx.tids))
      (Affine.variables e)
  in
  let definite =
    (not ga) && (not gb) && (not a.shifted) && (not b.shifted)
    && same_known_origin
    &&
    match a.idx, b.idx with
    | Some da, Some db when List.length da = List.length db ->
      let forced =
        ref
          (Value.Set.union (unit_tids ctx) (Value.Set.inter a.pinned b.pinned))
      in
      let ok =
        List.for_all2
          (fun xa xb ->
            match xa, xb with
            | Some ea, Some eb when vars_ok ea && vars_ok eb ->
              if Affine.equal ea eb && tid_free ea then true
              else begin
                match Affine.compare_dim ~tids:ctx.tids ~extent ea eb with
                | Affine.Forces s ->
                  forced := Value.Set.union !forced s;
                  true
                | Affine.Disjoint | Affine.Maybe -> false
              end
            | _ -> false)
          da db
      in
      (* Some thread iv remains unconstrained: two DISTINCT threads reach
         the same address. *)
      ok && not (Value.Set.subset ctx.tids !forced)
    | _ -> false
  in
  if definite then Definite else Possible

(* A reported race with the handles the repair search needs: the two
   source ops (write side first, as in the diagnostic) and whether the
   pairing crossed a loop back-edge. *)
type finding =
  { f_diag : Diag.t
  ; f_strength : strength
  ; f_a : Op.op option (* the write side *)
  ; f_b : Op.op option
  ; f_shifted : bool
  }

let findings ?(report_possible = false) (mhp : Mhp.t) : finding list =
  let ctx = Mhp.ctx mhp in
  let taint = Mhp.taint mhp in
  let extent = tid_extent ctx (Mhp.par mhp) in
  (* one finding per op pair, keeping the strongest classification (an
     early Possible pairing must not mask a later Definite one) *)
  let best : (int * int, strength * Mhp.conflict) Hashtbl.t =
    Hashtbl.create 64
  in
  let order = ref [] in
  List.iter
    (fun (c : Mhp.conflict) ->
      let oid (x : Effects.access) =
        match x.Effects.src with Some o -> o.Op.oid | None -> -1
      in
      let key =
        (min (oid c.Mhp.cf_a) (oid c.Mhp.cf_b),
         max (oid c.Mhp.cf_a) (oid c.Mhp.cf_b))
      in
      let strength =
        classify ctx ~taint ~extent c.Mhp.cf_a c.Mhp.cf_ga c.Mhp.cf_b
          c.Mhp.cf_gb
      in
      match Hashtbl.find_opt best key with
      | None ->
        order := key :: !order;
        Hashtbl.replace best key (strength, c)
      | Some (Possible, _) when strength = Definite ->
        Hashtbl.replace best key (strength, c)
      | Some _ -> ())
    (Mhp.conflicts mhp);
  List.filter_map
    (fun key ->
      let strength, (c : Mhp.conflict) = Hashtbl.find best key in
      if strength = Possible && not report_possible then None
      else begin
        let a = c.Mhp.cf_a and b = c.Mhp.cf_b in
        let p, q =
          if a.Effects.acc_kind = Effects.Write then (a, b) else (b, a)
        in
        let loc_of (x : Effects.access) =
          Option.bind x.Effects.src (fun o -> o.Op.loc)
        in
        let base_name =
          match p.Effects.base with
          | Some v -> Value.to_string v
          | None -> "<unknown>"
        in
        let kindstr = function
          | Effects.Write -> "write"
          | Effects.Read -> "read"
        in
        let sev, adj =
          match strength with
          | Definite -> (Diag.Error, "")
          | Possible -> (Diag.Warning, "possible ")
        in
        let msg =
          Printf.sprintf
            "%scross-thread data race on %s: %s conflicts with a %s by \
             another thread, with no intervening barrier"
            adj base_name (kindstr p.Effects.acc_kind)
            (kindstr q.Effects.acc_kind)
        in
        let notes =
          match p.Effects.src, q.Effects.src with
          | Some x, Some y when x.Op.oid = y.Op.oid ->
            [ Diag.note
                "both accesses come from the same statement, executed by \
                 multiple threads"
            ]
          | _ ->
            [ Diag.note ?loc:(loc_of q)
                (Printf.sprintf "conflicting %s is here"
                   (kindstr q.Effects.acc_kind))
            ]
        in
        let intervals =
          (* report in (write, other) order to match the message *)
          if p == a then c.Mhp.cf_intervals
          else begin
            let i, j = c.Mhp.cf_intervals in
            (j, i)
          end
        in
        Some
          { f_diag = Diag.mk ?loc:(loc_of p) ~notes ~intervals sev "race" msg
          ; f_strength = strength
          ; f_a = p.Effects.src
          ; f_b = q.Effects.src
          ; f_shifted = c.Mhp.cf_shifted
          }
      end)
    (List.rev !order)

let check_mhp ?report_possible (mhp : Mhp.t) : Diag.t list =
  List.map (fun f -> f.f_diag) (findings ?report_possible mhp)

let check ?report_possible (ctx : Effects.ctx) (par : Op.op) : Diag.t list =
  check_mhp ?report_possible (Mhp.analyze ctx par)
