(* Static cross-thread data-race check.

   Two accesses race when they can touch the same address from two
   different threads with at least one write and no barrier on any path
   between them.  Candidate pairs come from {!Effects}: for every
   access-bearing op, its own accesses are paired with themselves (the
   same statement executed by several threads) and with everything
   reachable forward of it before the next barrier
   ({!Effects.effects_after}, which follows branch, loop-exit and
   wrap-around paths).

   Conflicts are then classified:

   - [Definite]: both bases have the same known origin, every index
     dimension is fully affine and either identically thread-invariant
     or forced equal by the injectivity argument, and after accounting
     for forced/pinned/unit thread ivs some thread iv remains free — so
     two distinct threads provably collide.  Reported as an error.
   - [Possible]: the conservative conflict test fires but the analysis
     lost precision (unknown base, non-affine index, thread-dependent
     guard, ...).  Suppressed by default to keep the checker quiet on
     the benchmark suite; [~report_possible:true] surfaces them as
     warnings. *)

open Ir

type strength =
  | Definite
  | Possible

(* Static extent of a thread iv of [par] ([Some hi] when bounds are the
   constants [0, hi)), feeding the mixed-radix injectivity argument. *)
let tid_extent (ctx : Effects.ctx) (par : Op.op) (v : Value.t) : int option =
  let n = Op.par_dims par in
  let res = ref None in
  let cint value =
    match Info.defining_op ctx.info value with
    | Some { Op.kind = Op.Constant (Op.Cint (c, _)); _ } -> Some c
    | _ -> None
  in
  for i = 0 to n - 1 do
    if Value.equal par.Op.regions.(0).rargs.(i) v then begin
      match cint (Op.par_lo par i), cint (Op.par_hi par i) with
      | Some 0, Some hi when hi > 0 -> res := Some hi
      | _ -> ()
    end
  done;
  !res

(* A base allocated strictly inside the block-parallel region
   ({!Divergence.thread_private}) is a per-thread instance: every thread
   materializes its own copy, so two DIFFERENT threads can never touch
   the same address through it.  The conservative conflict test does not
   know this — it only has to be sound for barrier removal — but for
   race reporting these are pure noise (typically loop-carried scalars
   mem2reg cannot promote). *)
let thread_private = Divergence.thread_private

(* An access-bearing leaf op, with the guard context the plain effect
   scan does not track: the pinned thread ivs of enclosing equality
   guards and whether any enclosing condition is thread-dependent
   WITHOUT pinning (such a guard may restrict execution to fewer threads
   than the analysis assumes, so a conflict under it is never
   definite). *)
type leaf =
  { l_op : Op.op
  ; l_accs : Effects.access list
  ; l_pinned : Value.Set.t
  ; l_guarded : bool
  }

let collect_leaves (ctx : Effects.ctx) (taint : Value.t -> bool)
    (par : Op.op) : leaf list =
  let leaves = ref [] in
  let shared_visible (a : Effects.access) =
    match a.Effects.base with
    | Some b -> not (thread_private ctx par b)
    | None -> true
  in
  let rec go_op ~pinned ~guarded (op : Op.op) =
    match op.Op.kind with
    | Op.Load | Op.Store | Op.Copy | Op.Dealloc | Op.Call _ ->
      let accs =
        List.filter shared_visible (Effects.collect_op ctx ~pinned op)
      in
      if accs <> [] then
        leaves :=
          { l_op = op; l_accs = accs; l_pinned = pinned; l_guarded = guarded }
          :: !leaves
    | Op.If ->
      let extra = Effects.pinned_by_cond ctx op.Op.operands.(0) in
      let cond_tainted = taint op.Op.operands.(0) in
      (* A pinning guard (tid == e) is fully accounted for by [pinned];
         any other thread-dependent guard forfeits definiteness. *)
      let then_guarded =
        guarded || (cond_tainted && Value.Set.is_empty extra)
      in
      go_region ~pinned:(Value.Set.union pinned extra) ~guarded:then_guarded
        op.Op.regions.(0);
      go_region ~pinned ~guarded:(guarded || cond_tainted) op.Op.regions.(1)
    | _ -> Array.iter (go_region ~pinned ~guarded) op.Op.regions
  and go_region ~pinned ~guarded (r : Op.region) =
    List.iter (go_op ~pinned ~guarded) r.body
  in
  go_region ~pinned:Value.Set.empty ~guarded:false par.Op.regions.(0);
  List.rev !leaves

let classify (ctx : Effects.ctx) ~(taint : Value.t -> bool)
    ~(extent : Value.t -> int option) (a : Effects.access) (ga : bool)
    (b : Effects.access) (gb : bool) : strength =
  let open Effects in
  let same_known_origin =
    match a.base, b.base with
    | Some ba, Some bb -> begin
      match origin ctx.info ba, origin ctx.info bb with
      | Ounknown, _ | _, Ounknown -> false
      | oa, ob -> oa = ob
    end
    | _ -> false
  in
  (* The affine comparison treats every non-tid variable as having the
     same value in both executions.  That only holds for thread-uniform
     values (parameters, block ids, lock-step serial ivs) — a
     thread-dependent variable (e.g. a load result) in an index keeps a
     conflict merely possible. *)
  let vars_ok e =
    List.for_all
      (fun v -> Value.Set.mem v ctx.tids || not (taint v))
      (Affine.variables e)
  in
  let tid_free e =
    List.for_all
      (fun v -> not (Value.Set.mem v ctx.tids))
      (Affine.variables e)
  in
  let definite =
    (not ga) && (not gb) && (not a.shifted) && (not b.shifted)
    && same_known_origin
    &&
    match a.idx, b.idx with
    | Some da, Some db when List.length da = List.length db ->
      let forced =
        ref
          (Value.Set.union (unit_tids ctx) (Value.Set.inter a.pinned b.pinned))
      in
      let ok =
        List.for_all2
          (fun xa xb ->
            match xa, xb with
            | Some ea, Some eb when vars_ok ea && vars_ok eb ->
              if Affine.equal ea eb && tid_free ea then true
              else begin
                match Affine.compare_dim ~tids:ctx.tids ~extent ea eb with
                | Affine.Forces s ->
                  forced := Value.Set.union !forced s;
                  true
                | Affine.Disjoint | Affine.Maybe -> false
              end
            | _ -> false)
          da db
      in
      (* Some thread iv remains unconstrained: two DISTINCT threads reach
         the same address. *)
      ok && not (Value.Set.subset ctx.tids !forced)
    | _ -> false
  in
  if definite then Definite else Possible

let check ?(report_possible = false) (ctx : Effects.ctx) (par : Op.op) :
  Diag.t list =
  let taint = Divergence.mk_taint ctx in
  let extent = tid_extent ctx par in
  let leaves = collect_leaves ctx taint par in
  let table = Hashtbl.create 64 in
  List.iter (fun l -> Hashtbl.replace table l.l_op.Op.oid l) leaves;
  let seen = Hashtbl.create 64 in
  let diags = ref [] in
  let report strength (a : Effects.access) (b : Effects.access) =
    let oid (x : Effects.access) =
      match x.Effects.src with Some o -> o.Op.oid | None -> -1
    in
    let key = (min (oid a) (oid b), max (oid a) (oid b)) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      let p, q = if a.Effects.acc_kind = Effects.Write then (a, b) else (b, a) in
      let loc_of (x : Effects.access) =
        Option.bind x.Effects.src (fun o -> o.Op.loc)
      in
      let base_name =
        match p.Effects.base with
        | Some v -> Value.to_string v
        | None -> "<unknown>"
      in
      let kindstr = function
        | Effects.Write -> "write"
        | Effects.Read -> "read"
      in
      let sev, adj =
        match strength with
        | Definite -> (Diag.Error, "")
        | Possible -> (Diag.Warning, "possible ")
      in
      let msg =
        Printf.sprintf
          "%scross-thread data race on %s: %s conflicts with a %s by another \
           thread, with no intervening barrier"
          adj base_name (kindstr p.Effects.acc_kind)
          (kindstr q.Effects.acc_kind)
      in
      let notes =
        match p.Effects.src, q.Effects.src with
        | Some x, Some y when x.Op.oid = y.Op.oid ->
          [ Diag.note
              "both accesses come from the same statement, executed by \
               multiple threads"
          ]
        | _ ->
          [ Diag.note ?loc:(loc_of q)
              (Printf.sprintf "conflicting %s is here"
                 (kindstr q.Effects.acc_kind))
          ]
      in
      diags := Diag.mk ?loc:(loc_of p) ~notes sev "race" msg :: !diags
    end
  in
  List.iter
    (fun l ->
      let after = Effects.effects_after ctx ~par ~shifted:false l.l_op in
      (* The forward scan collects accesses with empty pin/guard context;
         recover it from the leaf table via the access's source op. *)
      let resolve (b : Effects.access) : Effects.access * bool =
        match b.Effects.src with
        | Some o -> begin
          match Hashtbl.find_opt table o.Op.oid with
          | Some lb ->
            (* pins rely on the guard value being the same in both
               executions; a wrap-around copy crosses an iteration
               boundary, so drop them *)
            let pinned =
              if b.Effects.shifted then Value.Set.empty else lb.l_pinned
            in
            ({ b with Effects.pinned }, lb.l_guarded)
          | None -> (b, true)
        end
        | None -> (b, true)
      in
      let candidates =
        List.map (fun x -> (x, l.l_guarded)) l.l_accs
        @ List.map resolve
            (List.filter
               (fun (a : Effects.access) ->
                 match a.Effects.base with
                 | Some b -> not (thread_private ctx par b)
                 | None -> true)
               after)
      in
      List.iter
        (fun a ->
          List.iter
            (fun (b, gb) ->
              if Effects.cross_thread_conflict ctx a b then begin
                match classify ctx ~taint ~extent a l.l_guarded b gb with
                | Definite -> report Definite a b
                | Possible -> if report_possible then report Possible a b
              end)
            candidates)
        l.l_accs)
    leaves;
  List.rev !diags
