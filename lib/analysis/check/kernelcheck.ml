(* Facade of the static kernel sanitizer.

   Runs the race, barrier-divergence and shared-init checks over every
   block-parallel region of a module and returns the merged, sorted
   diagnostic list.

   The checks read index expressions syntactically, so they are only as
   precise as the IR is clean: callers should run the standard cleanup
   pipeline (canonicalize, cse, mem2reg) BEFORE checking — the analysis
   layer cannot invoke those passes itself (core depends on analysis,
   not the other way round). *)

open Ir

(* Every block-parallel op of the module, in program order.  These are
   the regions [__syncthreads] synchronizes, hence the scope of all
   three checks. *)
let block_pars (m : Op.op) : Op.op list =
  let acc = ref [] in
  Op.iter
    (fun o ->
      match o.Op.kind with
      | Op.Parallel Op.Block -> acc := o :: !acc
      | _ -> ())
    m;
  List.rev !acc

(* The interval analysis is shared by the race and divergence checks:
   build it once per parallel region. *)
let check_par ?report_possible (ctx : Effects.ctx) (par : Op.op) :
  Diag.t list =
  let mhp = Mhp.analyze ctx par in
  Race.check_mhp ?report_possible mhp
  @ Divergence.check mhp
  @ Shared_init.check ctx par

(** All diagnostics for the module, deduplicated and deterministically
    sorted by source location then check name ({!Diag.normalize}).
    [report_possible] also surfaces conservative maybe-races as
    warnings (default: only definite races, divergence and
    shared-init). *)
let check_module ?report_possible (m : Op.op) : Diag.t list =
  let info = Info.build m in
  Diag.normalize
    (List.concat_map
       (fun par ->
         let ctx = Effects.make_ctx ~modul:m ~par info in
         check_par ?report_possible ctx par)
       (block_pars m))

(** Race check only, for re-running after transformation passes
    ([-check-after-each-pass]): divergence/shared-init diagnostics lose
    meaning mid-lowering (passes legitimately move barriers), but a
    definite race must never appear in a race-free program. *)
let check_module_races (m : Op.op) : Diag.t list =
  let info = Info.build m in
  Diag.normalize
    (List.concat_map
       (fun par ->
         let ctx = Effects.make_ctx ~modul:m ~par info in
         Race.check ctx par)
       (block_pars m))

let has_errors (diags : Diag.t list) = List.exists Diag.is_error diags
