(* Shared-memory initialization check.

   [__shared__] memory is uninitialized at block start.  A load from a
   shared allocation that no store can precede reads garbage.  Program
   order within one thread is pre-order over the structured IR (a While
   op's cond region runs first, matching the region order), and the
   program is SPMD — every thread runs the same statement sequence — so
   a load whose pre-order position precedes every store to the same
   allocation reads uninitialized memory on its first execution, loops
   or not.

   Two tiers:
   - the allocation is never written anywhere in the kernel: error;
   - stores exist but only at later program points: warning (exclusive
     branches can make this a false alarm, so it is not an error).

   Whether an earlier store is *cross-thread visible* (separated by a
   barrier) is the race check's business; this check only covers the
   definitely-before-any-write reads. *)

open Ir

let is_shared_base (ctx : Effects.ctx) (v : Value.t) : bool =
  match v.Value.typ with
  | Types.Memref { space = Types.Shared; _ } -> begin
    match Info.defining_op ctx.info v with
    | Some { Op.kind = Op.Alloc | Op.Alloca; _ } -> true
    | _ -> false
  end
  | _ -> false

(* The subtree to scan: the enclosing grid-parallel op when there is one
   (shared allocas are hoisted to block scope there), else the
   block-parallel op itself. *)
let scan_root (ctx : Effects.ctx) (par : Op.op) : Op.op =
  let rec up (o : Op.op) =
    match Info.parent ctx.info o with
    | Some ({ Op.kind = Op.Parallel Op.Grid; _ } as g) -> g
    | Some { Op.kind = Op.Func _ | Op.Module; _ } | None -> par
    | Some p -> up p
  in
  up par

let check (ctx : Effects.ctx) (par : Op.op) : Diag.t list =
  let root = scan_root ctx par in
  (* pre-order walk with position counter *)
  let counter = ref 0 in
  let first_store : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let loads : (Value.t * int * Op.op) list ref = ref [] in
  let record_store (v : Value.t) =
    if is_shared_base ctx v && not (Hashtbl.mem first_store v.Value.id) then
      Hashtbl.replace first_store v.Value.id !counter
  in
  let record_load (v : Value.t) (op : Op.op) =
    if is_shared_base ctx v then loads := (v, !counter, op) :: !loads
  in
  Op.iter
    (fun (o : Op.op) ->
      incr counter;
      match o.Op.kind with
      | Op.Load -> record_load o.Op.operands.(0) o
      | Op.Store -> record_store o.Op.operands.(1)
      | Op.Copy ->
        record_load o.Op.operands.(0) o;
        record_store o.Op.operands.(1)
      | Op.Call _ ->
        (* a callee may write through any shared argument: count it as a
           store (conservatively silencing later loads) *)
        Array.iter record_store o.Op.operands
      | _ -> ())
    root;
  List.rev_map
    (fun ((v : Value.t), pos, (op : Op.op)) ->
      let name = Value.to_string v in
      match Hashtbl.find_opt first_store v.Value.id with
      | None ->
        Some
          (Diag.mk ?loc:op.Op.loc Diag.Error "shared-init"
             (Printf.sprintf
                "read of __shared__ %s, which is never written in this \
                 kernel: shared memory is uninitialized at block start"
                name))
      | Some s when pos < s ->
        Some
          (Diag.mk ?loc:op.Op.loc Diag.Warning "shared-init"
             (Printf.sprintf
                "read of __shared__ %s before any write to it: the first \
                 write appears only later in the kernel" name))
      | Some _ -> None)
    !loads
  |> List.filter_map Fun.id
