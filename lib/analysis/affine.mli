(** Affine forms over SSA values, used to reason about memory addresses
    around barriers (Sec. III-A of the paper): linear combinations
    [sum coeff_i * v_i + const] whose variables are thread induction
    variables or thread-invariant symbols. *)

module VM : Map.S with type key = Ir.Value.t

type expr =
  { terms : int VM.t (** coefficient per variable; never 0 *)
  ; const : int
  }

val const : int -> expr
val var : Ir.Value.t -> expr
val add : expr -> expr -> expr
val neg : expr -> expr
val sub : expr -> expr -> expr
val scale : int -> expr -> expr
val equal : expr -> expr -> bool
val coeff : expr -> Ir.Value.t -> int
val is_const : expr -> bool
val variables : expr -> Ir.Value.t list
val to_string : expr -> string

(** Derive the affine form of a value by walking its def chain through
    pure integer arithmetic.  [classify] labels each leaf: [`Sym] usable
    as a variable, [`Expand] look through the defining op, [`Opaque] not
    expressible (derivation returns [None]). *)
val of_value :
  Info.t ->
  classify:(Ir.Value.t -> [ `Sym | `Expand | `Opaque ]) ->
  Ir.Value.t ->
  expr option

(** Verdict when comparing one index dimension of two accesses evaluated
    in two (possibly different) threads:
    - [Disjoint]: the dimension can never be equal — no conflict at all;
    - [Forces s]: equality implies [t1.v = t2.v] for each thread iv in
      [s] (the paper's injectivity argument, Fig. 5);
    - [Maybe]: may coincide for distinct threads (e.g. the offset-by-one
      case). *)
type dim_verdict =
  | Disjoint
  | Forces of Ir.Value.Set.t
  | Maybe

(** [extent] gives the static trip count of a thread iv (iv ranges over
    [0, extent)), enabling the mixed-radix injectivity argument for
    linearized indices over several ivs (e.g. [ty * BX + tx]): when every
    coefficient dominates the reach of the smaller terms, equality forces
    ALL involved ivs equal. *)
val compare_dim :
  tids:Ir.Value.Set.t ->
  ?extent:(Ir.Value.t -> int option) ->
  expr ->
  expr ->
  dim_verdict

(** Can the two expressions coincide when evaluated in ONE thread (all
    variables shared)?  [false] only when provably a nonzero constant
    apart. *)
val may_coincide_same_thread : expr -> expr -> bool
