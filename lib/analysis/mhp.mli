(** May-happen-in-parallel analysis over one block-parallel region.

    The kernel body is partitioned into {e barrier intervals}: interval
    0 opens at the region entry, and every [polygeist.barrier] closes
    the intervals reaching it and opens a fresh one.  A forward dataflow
    computes, for every op, which intervals can be {e live} when the op
    executes — as two sets, the intervals reached without crossing a
    loop back-edge ([unshifted]) and those reached after at least one
    back-edge since the interval opened ([shifted], where serial-loop iv
    equalities no longer hold).  Loops around barriers converge by a
    fixpoint over the back-edge; a barrier under a branch splits
    membership along the two paths, which is exactly the guarded-barrier
    interval structure the repair search needs.

    Two accesses can race only when their ops may occupy the same
    dynamic interval instance; the candidate pairs come from the same
    barrier-free forward reachability the effect analysis uses
    ({!Effects.effects_after}), and the dataflow annotates each pair
    with its interval ids and with the legal barrier insertion points
    that would separate it.  {!Race} keeps the classification policy;
    this module owns the mechanism. *)

(** {2 Thread-dependence helpers}

    (Shared by the divergence and race checks; the taint is the
    may-differ-between-threads relation of DESIGN.md §4.) *)

(** The condition value of a [While] op: the operand of the [Condition]
    terminator of its cond region. *)
val while_cond_value : Ir.Op.op -> Ir.Value.t option

(** Is the memref a per-thread instance — an allocation made strictly
    inside the block-parallel region? *)
val thread_private : Effects.ctx -> Ir.Op.op -> Ir.Value.t -> bool

(** Memoized thread-dependence taint: can the value differ between two
    threads of one block at the same lock-step point? *)
val mk_taint : Effects.ctx -> Ir.Value.t -> bool

(** {2 The interval dataflow} *)

type t

(** Run the dataflow over [par] (a [Parallel Block] op); [ctx] must have
    been built with [~par]. *)
val analyze : Effects.ctx -> Ir.Op.op -> t

val ctx : t -> Effects.ctx
val par : t -> Ir.Op.op

(** The taint used during the analysis (same relation as {!mk_taint}). *)
val taint : t -> Ir.Value.t -> bool

(** Number of intervals: 1 (entry) + one per reachable barrier. *)
val interval_count : t -> int

(** The barrier that opens interval [i]; [None] for the entry interval
    0 (and out-of-range ids). *)
val opener : t -> int -> Ir.Op.op option

(** The interval a barrier opens, when the dataflow reached it. *)
val barrier_opens : t -> Ir.Op.op -> int option

(** Intervals arriving at a barrier — the ones it closes — as
    (unshifted, shifted) sorted id lists. *)
val barrier_closes : t -> Ir.Op.op -> (int list * int list) option

(** Interval membership of an op inside [par]: (unshifted, shifted)
    sorted id lists; [None] when the op was not reached (not in the
    region). *)
val intervals_at : t -> Ir.Op.op -> (int list * int list) option

(** The op's static home interval: the smallest unshifted id at it.
    Defaults to 0 for unreached ops. *)
val home : t -> Ir.Op.op -> int

(** {2 Per-interval shared-memory access sets} *)

(** All shared-visible accesses whose op can execute in interval [i];
    accesses contributed through a back-edge come shifted (loop-iv
    index dimensions dropped).  Sorted by source op. *)
val interval_accesses : t -> int -> Effects.access list

(** {2 Access-bearing leaves} *)

(** A load/store/copy/dealloc/call with shared-visible accesses, plus
    the guard context the plain effect scan does not track. *)
type leaf =
  { l_op : Ir.Op.op
  ; l_accs : Effects.access list
  ; l_pinned : Ir.Value.Set.t
        (** thread ivs pinned by enclosing [if (tid == e)] guards *)
  ; l_guarded : bool
        (** some enclosing condition is thread-dependent without
            pinning — a conflict under it is never definite *)
  }

val leaves : t -> leaf list

(** {2 Conflict candidates} *)

(** A conservatively conflicting access pair that may share a dynamic
    interval instance ({!Effects.cross_thread_conflict} holds).  The
    [cf_a] side is the leaf the pair was discovered from; [cf_b] either
    a sibling access of the same leaf or one reachable forward of it
    before the next barrier.  Shifted pairs cross a loop back-edge:
    both accesses have loop-iv dimensions dropped and pins cleared. *)
type conflict =
  { cf_a : Effects.access
  ; cf_ga : bool (** [l_guarded] of the [cf_a] leaf *)
  ; cf_b : Effects.access
  ; cf_gb : bool
  ; cf_intervals : int * int (** static home intervals of the two ops *)
  ; cf_shifted : bool (** pairing crosses a loop back-edge *)
  }

(** All candidate racing pairs of the region, in deterministic program
    order.  The race check classifies these; repair consumes the
    intervals and {!separation_points}. *)
val conflicts : t -> conflict list

(** {2 Barrier placement} *)

(** A legal barrier insertion point: inserting [Barrier] at [pt_index]
    of [pt_region]'s body (i.e. before the current [pt_index]-th op,
    or at the end when [pt_index] equals the body length) is
    verifier-legal and divergence-free (all enclosing control uniform).
    [pt_loc] is the location of the op the barrier lands before (the
    region holder's location for end-of-body points); [pt_rank] orders
    candidates, best (closest separating point) first. *)
type point =
  { pt_region : Ir.Op.region
  ; pt_index : int
  ; pt_loc : Ir.Srcloc.t option
  ; pt_rank : int
  }

(** Candidate insertion points separating the two ops of a conflicting
    pair, ranked.  For an unshifted pair these lie between the two
    subtrees in their deepest common region; for a shifted pair they
    cut the back-edge of the innermost common loop.  Empty when no
    barrier can separate them (same statement, exclusive branches,
    thread-dependent enclosing control). *)
val separation_points :
  t -> shifted:bool -> Ir.Op.op -> Ir.Op.op -> point list

(** {2 Redundant barriers} *)

(** Barriers whose closed-interval access set does not cross-thread
    conflict with their opened-interval access set: removing any single
    one of them cannot introduce a race.  (Removing several at once
    can — re-analyze after each removal.) *)
val redundant_barriers : t -> Ir.Op.op list
