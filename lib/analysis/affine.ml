(* Affine forms over SSA values, used to reason about memory addresses
   around barriers (Sec. III-A of the paper).

   An expression is a linear combination [sum coeff_i * v_i + const].  The
   variables are SSA values; the emptiness/injectivity reasoning below
   additionally classifies each variable as thread-dependent (a thread
   induction variable of the block-parallel loop under analysis) or
   thread-invariant (equal across the threads of a block at a given
   synchronization point). *)

open Ir

module VM = Value.Map

type expr =
  { terms : int VM.t (* coeff per variable; coeff never 0 *)
  ; const : int
  }

let const n = { terms = VM.empty; const = n }
let var v = { terms = VM.singleton v 1; const = 0 }

let add a b =
  { terms =
      VM.union (fun _ c1 c2 -> if c1 + c2 = 0 then None else Some (c1 + c2))
        a.terms b.terms
  ; const = a.const + b.const
  }

let neg a = { terms = VM.map (fun c -> -c) a.terms; const = -a.const }
let sub a b = add a (neg b)

let scale k a =
  if k = 0 then const 0
  else { terms = VM.map (fun c -> k * c) a.terms; const = k * a.const }

let equal a b = a.const = b.const && VM.equal Int.equal a.terms b.terms

let coeff a v = match VM.find_opt v a.terms with Some c -> c | None -> 0

let is_const a = VM.is_empty a.terms

let variables a = VM.fold (fun v _ acc -> v :: acc) a.terms []

let to_string a =
  let ts =
    VM.fold
      (fun v c acc -> Printf.sprintf "%d*%s" c (Value.to_string v) :: acc)
      a.terms []
  in
  String.concat " + " (ts @ [ string_of_int a.const ])

(* Derive the affine form of an SSA value by walking its def chain.
   [classify] decides how to treat a leaf value:
   - [`Sym]     : usable as an affine variable (thread iv or invariant)
   - [`Expand]  : look through the defining op (pure integer arithmetic)
   - [`Opaque]  : not expressible — derivation fails.

   The walk expands through Constant, Add/Sub/Mul-by-const, and
   index-preserving casts. *)
let rec of_value (info : Info.t)
    ~(classify : Value.t -> [ `Sym | `Expand | `Opaque ]) (v : Value.t) :
  expr option =
  match classify v with
  | `Opaque -> None
  | `Sym -> Some (var v)
  | `Expand -> begin
    match Info.defining_op info v with
    | None -> Some (var v)
    | Some op -> begin
      match op.kind with
      | Op.Constant (Op.Cint (n, _)) -> Some (const n)
      | Op.Binop Op.Add -> binary info ~classify op add
      | Op.Binop Op.Sub -> binary info ~classify op sub
      | Op.Binop Op.Mul -> begin
        match
          ( of_value info ~classify op.operands.(0)
          , of_value info ~classify op.operands.(1) )
        with
        | Some a, Some b when is_const a -> Some (scale a.const b)
        | Some a, Some b when is_const b -> Some (scale b.const a)
        | _ -> None
      end
      | Op.Cast (Types.Index | Types.I32 | Types.I64) ->
        if
          match op.operands.(0).typ with
          | Types.Scalar d -> Types.is_int_dtype d
          | Types.Memref _ -> false
        then of_value info ~classify op.operands.(0)
        else None
      | _ -> None
    end
  end

and binary info ~classify (op : Op.op) f =
  match
    ( of_value info ~classify op.operands.(0)
    , of_value info ~classify op.operands.(1) )
  with
  | Some a, Some b -> Some (f a b)
  | _ -> None

(* Per-dimension verdict when comparing one index dimension of two
   accesses across two (possibly different) threads t1, t2:

   - [Disjoint]: the two index expressions can never be equal, so the
     whole accesses cannot conflict.
   - [Forces s]: equality of this dimension implies t1.v = t2.v for every
     thread iv v in s.
   - [Maybe]: the dimension may be equal for distinct threads.

   With a = f(t1) + s and b = g(t2) + s' (f, g over thread ivs; s, s'
   thread-invariant at the synchronization point):

   - no thread ivs on either side: equal iff s = s'; a nonzero constant
     difference proves Disjoint, otherwise Maybe.
   - identical coefficients on every thread iv and s - s' = 0: equality
     forces f(t1) = f(t2); if f depends on exactly one iv with nonzero
     coefficient this forces that iv equal (Forces), the paper's
     injectivity argument (Fig. 5).  Multiple ivs may compensate each
     other, so Maybe.
   - anything else (shifted by a constant, different coefficients,
     unknown symbols): Maybe — this is exactly the "offset by 1" case the
     paper gives as requiring the barrier. *)
type dim_verdict =
  | Disjoint
  | Forces of Value.Set.t
  | Maybe

(* Multi-iv injectivity over a bounded box: f(t) = sum c_i * v_i with each
   v_i ranging over [0, B_i).  Writing the terms in ascending |c|, f is
   injective when every coefficient dominates the largest value the
   smaller terms can jointly reach:

     |c_k| > sum_{i<k} |c_i| * (B_i - 1)

   (the mixed-radix positional argument; linearized indices like
   [ty * BX + tx] with B_tx <= BX satisfy it).  Equality of two such
   forms across threads then forces every iv equal. *)
let box_injective ~(extent : Value.t -> int option) (terms : int VM.t) : bool
    =
  let with_extents =
    VM.fold
      (fun v c acc ->
        match acc with
        | None -> None
        | Some l -> begin
          match extent v with
          | Some b when b >= 1 -> Some ((abs c, b) :: l)
          | _ -> None
        end)
      terms (Some [])
  in
  match with_extents with
  | None -> false
  | Some l ->
    let sorted = List.sort (fun (c1, _) (c2, _) -> compare c1 c2) l in
    let reach = ref 0 in
    List.for_all
      (fun (c, b) ->
        let ok = c > !reach in
        reach := !reach + (c * (b - 1));
        ok)
      sorted

let compare_dim ~(tids : Value.Set.t) ?extent (a : expr) (b : expr) :
  dim_verdict =
  let split e =
    let tid, inv = VM.partition (fun v _ -> Value.Set.mem v tids) e.terms in
    (tid, { terms = inv; const = e.const })
  in
  let tid_a, inv_a = split a in
  let tid_b, inv_b = split b in
  let inv_diff = sub inv_a inv_b in
  if VM.is_empty tid_a && VM.is_empty tid_b then begin
    if is_const inv_diff && inv_diff.const <> 0 then Disjoint else Maybe
  end
  else if VM.equal Int.equal tid_a tid_b && is_const inv_diff
          && inv_diff.const = 0 then begin
    if VM.cardinal tid_a = 1 then
      Forces (Value.Set.singleton (fst (VM.choose tid_a)))
    else begin
      (* several ivs may compensate each other — unless the iv ranges are
         known and the coefficients are mixed-radix injective *)
      match extent with
      | Some extent when box_injective ~extent tid_a ->
        Forces (VM.fold (fun v _ s -> Value.Set.add v s) tid_a Value.Set.empty)
      | _ -> Maybe
    end
  end
  else Maybe

(* Same-thread coincidence: both expressions evaluated in one thread, all
   variables shared.  Addresses differ definitely iff the difference is a
   nonzero constant. *)
let may_coincide_same_thread (a : expr) (b : expr) : bool =
  let d = sub a b in
  not (is_const d) || d.const = 0
