(** Memory-effect analysis: the semantic foundation of
    [polygeist.barrier].

    A barrier's behaviour is defined as the union of read/write effects
    of the code reachable before it (up to the previous barrier or the
    region start) and after it (up to the next barrier or the region
    end), excluding accesses provably made only by the executing thread
    (Sec. III-A).  Barrier elimination, motion, and forwarding across
    barriers all reduce to conflict queries between access collections. *)

type kind =
  | Read
  | Write

type access =
  { base : Ir.Value.t option (** [None]: may touch any location *)
  ; acc_kind : kind
  ; idx : Affine.expr option list option
    (** [None]: unknown indexing; otherwise one affine form per dim *)
  ; pinned : Ir.Value.Set.t
    (** thread ivs pinned by enclosing [if (tid == e)] guards *)
  ; livs : Ir.Value.Set.t
    (** serial-loop ivs (inside the parallel region) used in [idx] *)
  ; shifted : bool (** collected through loop wrap-around *)
  ; src : Ir.Op.op option
    (** the load/store/call the access was collected from, for
        diagnostics; [None] for synthetic/unknown accesses *)
  }

val mk_access :
  ?base:Ir.Value.t ->
  ?idx:Affine.expr option list ->
  ?pinned:Ir.Value.Set.t ->
  ?livs:Ir.Value.Set.t ->
  ?shifted:bool ->
  ?src:Ir.Op.op ->
  kind ->
  access

(** The access as seen across a loop wrap-around: [shifted] set and
    every index dimension that mentions a serial-loop iv dropped (iv
    equalities do not hold across iterations). *)
val shift_access : access -> access

(** {2 Call effect summaries} *)

type summary_item =
  { s_kind : kind
  ; s_param : int option (** [None]: unknown base *)
  }

type summaries

val new_summaries : unit -> summaries

(** Effects of calling the named function, in terms of its parameters;
    accesses to function-private allocations are omitted.  Recursive
    cycles and unknown callees degrade to unknown read+write. *)
val summarize : Ir.Op.op -> summaries -> string -> summary_item list

(** {2 Analysis context} *)

type ctx =
  { info : Info.t
  ; modul : Ir.Op.op option
  ; summaries : summaries
  ; par : Ir.Op.op option (** the block-parallel loop under analysis *)
  ; tids : Ir.Value.Set.t
  }

val make_ctx : ?modul:Ir.Op.op -> ?par:Ir.Op.op -> Info.t -> ctx

(** Thread ivs whose extent is statically 1 (always equal across
    threads). *)
val unit_tids : ctx -> Ir.Value.Set.t

(** Per-dimension affine forms (and serial-loop ivs used) of the index
    operands of a load/store. *)
val derive_idx :
  ctx -> Ir.Value.t array -> Affine.expr option list * Ir.Value.Set.t

(** Thread ivs pinned to an invariant value by an [if] condition: the
    condition is an equality comparison between a bare thread iv and a
    thread-invariant expression. *)
val pinned_by_cond : ctx -> Ir.Value.t -> Ir.Value.Set.t

(** {2 Effect collection} *)

val collect_op : ctx -> pinned:Ir.Value.Set.t -> Ir.Op.op -> access list
val collect : ctx -> Ir.Op.op list -> access list

(** {2 Aliasing} *)

(** Where a memref base comes from, chasing casts. *)
type origin =
  | Oalloc of int (** oid of the allocating op *)
  | Oparam of int (** value id: function parameter / external value *)
  | Ounknown

val origin : Info.t -> Ir.Value.t -> origin

(** May two base pointers overlap?  Distinct allocations never; an
    allocation never aliases a parameter; distinct parameters are assumed
    noalias (documented in DESIGN.md). *)
val bases_may_alias : Info.t -> Ir.Value.t -> Ir.Value.t -> bool

(** {2 Conflict queries} *)

(** Can the accesses, executed by two DIFFERENT threads, touch the same
    address with at least one write?  The test behind barrier
    elimination/motion. *)
val cross_thread_conflict : ctx -> access -> access -> bool

(** Can they touch the same address at all (same or different thread)?
    Used by the lock-step LICM check and the forwarding pass. *)
val any_thread_conflict : ctx -> access -> access -> bool

val conflicts_cross : ctx -> access list -> access list -> bool

(** Accesses reachable strictly forward of [at] (exclusive) before the
    next barrier / the end of [par], following branch, loop-exit and
    wrap-around paths; wrap-around copies come back with
    [shifted = true].  Pass [~shifted:false] at the top level. *)
val effects_after :
  ctx -> par:Ir.Op.op -> shifted:bool -> Ir.Op.op -> access list

(** {2 Barrier interval sets} *)

(** The two interval sets of a barrier (Sec. IV-A): effects reachable
    backward to the previous barrier / region start, and forward to the
    next barrier / region end, following loop entry, exit and wrap-around
    paths. *)
val barrier_intervals :
  ctx -> par:Ir.Op.op -> Ir.Op.op -> access list * access list
