(* Memory-effect analysis: the semantic foundation of the paper's
   [polygeist.barrier].

   A barrier's behaviour is *defined* as: the union of the read and write
   effects of the code reachable before it (up to the previous barrier or
   the start of the parallel region) and after it (up to the next barrier
   or the end of the region), excluding accesses provably made only by the
   executing thread (Sec. III-A).  All barrier transformations —
   elimination, motion, store-to-load forwarding across barriers — reduce
   to conflict queries between collections of accesses. *)

open Ir

type kind =
  | Read
  | Write

type access =
  { base : Value.t option (* None: may touch any location *)
  ; acc_kind : kind
  ; idx : Affine.expr option list option
    (* None: unknown indexing; Some dims: per-dimension affine forms *)
  ; pinned : Value.Set.t
    (* thread ivs pinned to an invariant value by enclosing guards
       (e.g. accesses under [if (tx == 0)]) *)
  ; livs : Value.Set.t
    (* serial-loop ivs (inside the parallel region) appearing in [idx];
       their cross-thread equality only holds within one iteration *)
  ; shifted : bool (* collected through loop wrap-around *)
  ; src : Op.op option
    (* the load/store/call the access was collected from, for
       diagnostics; None for synthetic/unknown accesses *)
  }

let mk_access ?base ?idx ?(pinned = Value.Set.empty)
    ?(livs = Value.Set.empty) ?(shifted = false) ?src acc_kind =
  { base; acc_kind; idx; pinned; livs; shifted; src }

let unknown_rw = [ mk_access Read; mk_access Write ]

(* --- call effect summaries --- *)

type summary_item =
  { s_kind : kind
  ; s_param : int option (* None: unknown base *)
  }

type summaries = (string, summary_item list option ref) Hashtbl.t
(* [None] marks an in-progress summary (recursion): treated as unknown. *)

let new_summaries () : summaries = Hashtbl.create 16

let unknown_summary = [ { s_kind = Read; s_param = None }; { s_kind = Write; s_param = None } ]

(* Is [v] (a memref) a private allocation made inside [func]? *)
let rec base_origin_in_func (defs : Op.op Value.Tbl.t) (params : Value.t array)
    (v : Value.t) : [ `Param of int | `Private | `Unknown ] =
  match Array.find_index (fun p -> Value.equal p v) params with
  | Some i -> `Param i
  | None -> begin
    match Value.Tbl.find_opt defs v with
    | Some { Op.kind = Op.Alloc | Op.Alloca; _ } -> `Private
    | Some { Op.kind = Op.Cast _; operands; _ } ->
      base_origin_in_func defs params operands.(0)
    | _ -> `Unknown
  end

let rec summarize (modul : Op.op) (tbl : summaries) (name : string) :
  summary_item list =
  match Hashtbl.find_opt tbl name with
  | Some { contents = Some s } -> s
  | Some { contents = None } -> unknown_summary (* recursive cycle *)
  | None -> begin
    match Op.find_func modul name with
    | None -> unknown_summary
    | Some f ->
      let cell = ref None in
      Hashtbl.replace tbl name cell;
      let params = f.regions.(0).rargs in
      let defs = Value.Tbl.create 64 in
      Op.iter
        (fun o -> Array.iter (fun r -> Value.Tbl.replace defs r o) o.results)
        f;
      let acc = ref [] in
      let add k p = acc := { s_kind = k; s_param = p } :: !acc in
      let add_base k (v : Value.t) =
        match base_origin_in_func defs params v with
        | `Param i -> add k (Some i)
        | `Private -> ()
        | `Unknown -> add k None
      in
      Op.iter
        (fun (o : Op.op) ->
          match o.kind with
          | Op.Load -> add_base Read o.operands.(0)
          | Op.Store -> add_base Write o.operands.(1)
          | Op.Copy ->
            add_base Read o.operands.(0);
            add_base Write o.operands.(1)
          | Op.Call callee ->
            let cs = summarize modul tbl callee in
            List.iter
              (fun (it : summary_item) ->
                match it.s_param with
                | None -> add it.s_kind None
                | Some i ->
                  if i < Array.length o.operands then
                    add_base it.s_kind o.operands.(i))
              cs
          | _ -> ())
        f;
      (* dedupe *)
      let s = List.sort_uniq compare !acc in
      cell := Some s;
      s
  end

(* --- analysis context --- *)

type ctx =
  { info : Info.t
  ; modul : Op.op option (* for call summaries *)
  ; summaries : summaries
  ; par : Op.op option (* the block-parallel loop under analysis *)
  ; tids : Value.Set.t
  }

let make_ctx ?modul ?par (info : Info.t) : ctx =
  let tids =
    match par with
    | Some p -> Array.to_list p.Op.regions.(0).rargs |> Value.Set.of_list
    | None -> Value.Set.empty
  in
  { info; modul; summaries = new_summaries (); par; tids }

(* Thread ivs whose extent is statically 1 (e.g. the unused z dimension of
   a 2-D launch): always equal across threads. *)
let unit_tids (ctx : ctx) : Value.Set.t =
  match ctx.par with
  | None -> Value.Set.empty
  | Some p ->
    let n = Op.par_dims p in
    let set = ref Value.Set.empty in
    for i = 0 to n - 1 do
      let is_const_k (v : Value.t) k =
        match Info.defining_op ctx.info v with
        | Some { Op.kind = Op.Constant (Op.Cint (c, _)); _ } -> c = k
        | _ -> false
      in
      if is_const_k (Op.par_lo p i) 0 && is_const_k (Op.par_hi p i) 1 then
        set := Value.Set.add p.Op.regions.(0).rargs.(i) !set
    done;
    !set

(* Affine classification for index derivation: thread ivs and serial-loop
   ivs are symbols; anything defined outside the parallel region is an
   invariant symbol; the rest is expanded through pure integer
   arithmetic. *)
let classify (ctx : ctx) (v : Value.t) : [ `Sym | `Expand | `Opaque ] =
  if Value.Set.mem v ctx.tids then `Sym
  else
    match Info.defining_op ctx.info v with
    (* A constant is a constant wherever it is defined: expanding it
       keeps [i * c] affine even when canonicalize hoisted [c] out of
       the parallel region (a bare symbol would make the product
       var*var and the whole index opaque). *)
    | Some { Op.kind = Op.Constant _; _ } -> `Expand
    | _ -> begin
      match ctx.par with
      | None -> `Sym (* no parallel context: every leaf is a plain symbol *)
      | Some par ->
        if not (Info.defined_inside ctx.info ~container:par v) then `Sym
        else begin
          match Info.def ctx.info v with
          | Info.Def_arg ({ Op.kind = Op.For; _ }, _) -> `Sym
          | Info.Def_arg _ -> `Opaque
          | Info.Def_op _ | Info.Def_external -> `Expand
        end
    end

let derive_idx (ctx : ctx) (idx_operands : Value.t array) :
  Affine.expr option list * Value.Set.t =
  let livs = ref Value.Set.empty in
  let dims =
    Array.to_list idx_operands
    |> List.map (fun v ->
        match Affine.of_value ctx.info ~classify:(classify ctx) v with
        | None -> None
        | Some e ->
          List.iter
            (fun sym ->
              match Info.def ctx.info sym with
              | Info.Def_arg ({ Op.kind = Op.For; _ }, _)
                when (match ctx.par with
                      | Some par ->
                        Info.defined_inside ctx.info ~container:par sym
                      | None -> false) ->
                livs := Value.Set.add sym !livs
              | _ -> ())
            (Affine.variables e);
          Some e)
  in
  (dims, !livs)

(* Guard pinning: if an access is nested under [if (tx == e)] with [e]
   thread-invariant, then in any two executions of the access the value of
   tx is equal.  Recognizes conditions that are equality comparisons
   between a bare thread iv and an invariant expression. *)
let pinned_by_cond (ctx : ctx) (cond : Value.t) : Value.Set.t =
  match Info.defining_op ctx.info cond with
  | Some { Op.kind = Op.Cmp Op.Eq; operands; _ } ->
    let side v other =
      if Value.Set.mem v ctx.tids then begin
        (* other side must be invariant across threads *)
        match Affine.of_value ctx.info ~classify:(classify ctx) other with
        | Some e
          when List.for_all
                 (fun s -> not (Value.Set.mem s ctx.tids))
                 (Affine.variables e) ->
          Value.Set.singleton v
        | _ -> Value.Set.empty
      end
      else Value.Set.empty
    in
    Value.Set.union
      (side operands.(0) operands.(1))
      (side operands.(1) operands.(0))
  | _ -> Value.Set.empty

(* --- collecting the effects of an op subtree --- *)

let shift_access (a : access) : access =
  (* wrap-around: loop-iv symbols are no longer comparable across the
     barrier — drop the affine info of dimensions that mention them. *)
  if Value.Set.is_empty a.livs then { a with shifted = true }
  else
    { a with
      shifted = true
    ; idx =
        Option.map
          (List.map (fun d ->
               match d with
               | Some e
                 when List.exists
                        (fun v -> Value.Set.mem v a.livs)
                        (Affine.variables e) ->
                 None
               | d -> d))
          a.idx
    }

let rec collect_op (ctx : ctx) ~(pinned : Value.Set.t) (op : Op.op) :
  access list =
  match op.kind with
  | Op.Load ->
    let dims, livs =
      derive_idx ctx (Array.sub op.operands 1 (Array.length op.operands - 1))
    in
    [ mk_access ~base:op.operands.(0) ~idx:dims ~pinned ~livs ~src:op Read ]
  | Op.Store ->
    let dims, livs =
      derive_idx ctx (Array.sub op.operands 2 (Array.length op.operands - 2))
    in
    [ mk_access ~base:op.operands.(1) ~idx:dims ~pinned ~livs ~src:op Write ]
  | Op.Copy ->
    [ mk_access ~base:op.operands.(0) ~pinned ~src:op Read
    ; mk_access ~base:op.operands.(1) ~pinned ~src:op Write
    ]
  | Op.Dealloc -> [ mk_access ~base:op.operands.(0) ~pinned ~src:op Write ]
  | Op.Call name -> begin
    match ctx.modul with
    | None -> unknown_rw
    | Some m ->
      summarize m ctx.summaries name
      |> List.map (fun (it : summary_item) ->
          match it.s_param with
          | Some i when i < Array.length op.operands ->
            mk_access ~base:op.operands.(i) ~pinned ~src:op it.s_kind
          | _ -> mk_access ~pinned ~src:op it.s_kind)
  end
  | Op.If ->
    let extra = pinned_by_cond ctx op.operands.(0) in
    let then_pin = Value.Set.union pinned extra in
    collect_region ctx ~pinned:then_pin op.regions.(0)
    @ collect_region ctx ~pinned op.regions.(1)
  | Op.Constant _ | Op.Binop _ | Op.Cmp _ | Op.Select | Op.Cast _ | Op.Math _
  | Op.Alloc | Op.Alloca | Op.Dim _ | Op.Barrier | Op.OmpBarrier | Op.Yield
  | Op.Condition | Op.Return ->
    []
  | Op.Module | Op.Func _ | Op.For | Op.While | Op.Parallel _
  | Op.OmpParallel | Op.OmpWsloop ->
    Array.to_list op.regions
    |> List.concat_map (fun r -> collect_region ctx ~pinned r)

and collect_region ctx ~pinned (r : Op.region) : access list =
  List.concat_map (collect_op ctx ~pinned) r.body

let collect (ctx : ctx) (ops : Op.op list) : access list =
  List.concat_map (collect_op ctx ~pinned:Value.Set.empty) ops

(* --- aliasing of bases --- *)

type origin =
  | Oalloc of int (* oid of the allocating op *)
  | Oparam of int (* value id: function parameter / region argument *)
  | Ounknown

let origin (info : Info.t) (v : Value.t) : origin =
  let rec go (v : Value.t) =
    match Info.def info v with
    | Info.Def_op { Op.kind = Op.Alloc | Op.Alloca; oid; _ } -> Oalloc oid
    | Info.Def_op { Op.kind = Op.Cast _; operands; _ } -> go operands.(0)
    | Info.Def_arg ({ Op.kind = Op.Func _; _ }, _) -> Oparam v.Value.id
    | Info.Def_external -> Oparam v.Value.id
    | Info.Def_op _ | Info.Def_arg _ -> Ounknown
  in
  go v

(* May two base pointers refer to overlapping memory?  Distinct
   allocations never alias; an allocation made inside the function cannot
   alias a parameter; distinct parameters are assumed noalias (CUDA kernel
   arguments and Rodinia-style C code satisfy this; documented in
   DESIGN.md). *)
let bases_may_alias (info : Info.t) (a : Value.t) (b : Value.t) : bool =
  if Value.equal a b then true
  else
    match origin info a, origin info b with
    | Oalloc x, Oalloc y -> x = y
    | Oalloc _, Oparam _ | Oparam _, Oalloc _ -> false
    | Oparam x, Oparam y -> x = y
    | Ounknown, _ | _, Ounknown -> true

(* --- conflict queries --- *)

let is_rar a b = a.acc_kind = Read && b.acc_kind = Read

(* Cross-thread conflict: can accesses [a] and [b], executed by two
   *different* threads, touch the same address (with at least one write)?
   This is the test behind barrier elimination and motion. *)
let cross_thread_conflict (ctx : ctx) (a : access) (b : access) : bool =
  if is_rar a b then false
  else
    match a.base, b.base with
    | None, _ | _, None -> true
    | Some ba, Some bb ->
      if not (bases_may_alias ctx.info ba bb) then false
      else if not (Value.equal ba bb) then true
      else begin
        match a.idx, b.idx with
        | None, _ | _, None -> true
        | Some da, Some db ->
          if List.length da <> List.length db then true
          else begin
            let verdicts =
              List.map2
                (fun xa xb ->
                  match xa, xb with
                  | Some ea, Some eb -> Affine.compare_dim ~tids:ctx.tids ea eb
                  | _ -> Affine.Maybe)
                da db
            in
            if List.mem Affine.Disjoint verdicts then false
            else begin
              let forced =
                List.fold_left
                  (fun acc v ->
                    match v with
                    | Affine.Forces s -> Value.Set.union acc s
                    | Affine.Disjoint | Affine.Maybe -> acc)
                  (Value.Set.union (unit_tids ctx)
                     (Value.Set.inter a.pinned b.pinned))
                  verdicts
              in
              (* all thread ivs forced equal => the "conflict" is within a
                 single thread: program order handles it. *)
              not (Value.Set.subset ctx.tids forced)
            end
          end
      end

(* Any-thread conflict: can the two accesses touch the same address at
   all (same or different thread)?  Used by the lock-step LICM check. *)
let any_thread_conflict (ctx : ctx) (a : access) (b : access) : bool =
  if is_rar a b then false
  else
    match a.base, b.base with
    | None, _ | _, None -> true
    | Some ba, Some bb ->
      if not (bases_may_alias ctx.info ba bb) then false
      else if not (Value.equal ba bb) then true
      else begin
        match a.idx, b.idx with
        | None, _ | _, None -> true
        | Some da, Some db ->
          if List.length da <> List.length db then true
          else begin
            (* definitely-disjoint only when some dimension can never be
               equal under any thread assignment: exactly the [Disjoint]
               verdict (thread-iv-free index expressions a nonzero
               constant apart). *)
            let dim_disjoint xa xb =
              match xa, xb with
              | Some ea, Some eb ->
                Affine.compare_dim ~tids:ctx.tids ea eb = Affine.Disjoint
              | _ -> false
            in
            not (List.exists2 dim_disjoint da db)
          end
      end

let conflicts_cross ctx (xs : access list) (ys : access list) : bool =
  List.exists (fun a -> List.exists (cross_thread_conflict ctx a) ys) xs

(* --- barrier before/after interval sets --- *)

(* Does this serial loop provably execute at least one iteration?
   (constant bounds after canonicalization) *)
let trip_nonzero ctx (op : Op.op) : bool =
  let cint (v : Value.t) =
    match Info.defining_op ctx.info v with
    | Some { Op.kind = Op.Constant (Op.Cint (n, _)); _ } -> Some n
    | _ -> None
  in
  match op.Op.kind with
  | Op.For -> begin
    match cint (Op.for_lo op), cint (Op.for_hi op) with
    | Some lo, Some hi -> lo < hi
    | _ -> false
  end
  | _ -> false

(* Scan backward from just before [idx] in [ops]; stop at a barrier.
   A sibling construct that itself contains barriers only contributes its
   "tail" — the effects after its last barrier along each path — and
   shields earlier code exactly when every path through it passes a
   barrier (e.g. a loop whose body ends in __syncthreads and whose trip
   count is provably nonzero). *)
let rec scan_ops_back ctx ~(shifted : bool) (ops : Op.op list) (idx : int) :
  access list * bool =
  let acc = ref [] in
  let stopped = ref false in
  let i = ref (idx - 1) in
  let arr = Array.of_list ops in
  while !i >= 0 && not !stopped do
    let o = arr.(!i) in
    if o.Op.kind = Op.Barrier then stopped := true
    else if Op.contains_barrier o then begin
      let t, s = tail_effects ctx ~shifted o in
      acc := t @ !acc;
      if s then stopped := true
      else begin
        (* barrier-free paths may bypass it: fall back to its full
           effects and keep scanning *)
        let effs = collect_op ctx ~pinned:Value.Set.empty o in
        let effs = if shifted then List.map shift_access effs else effs in
        acc := effs @ !acc
      end
    end
    else begin
      let effs = collect_op ctx ~pinned:Value.Set.empty o in
      let effs = if shifted then List.map shift_access effs else effs in
      acc := effs @ !acc
    end;
    decr i
  done;
  (!acc, !stopped)

(* Effects of [op] seen when arriving from *after* it, up to its last
   barrier; the bool says whether every path through [op] hits a
   barrier. *)
and tail_effects ctx ~(shifted : bool) (op : Op.op) : access list * bool =
  match op.Op.kind with
  | Op.For ->
    let body = op.Op.regions.(0).body in
    let t, s = scan_ops_back ctx ~shifted body (List.length body) in
    (t, s && trip_nonzero ctx op)
  | Op.If ->
    let scan r =
      let body = op.Op.regions.(r).Op.body in
      if body = [] then ([], false)
      else scan_ops_back ctx ~shifted body (List.length body)
    in
    let t0, s0 = scan 0 in
    let t1, s1 = scan 1 in
    (t0 @ t1, s0 && s1)
  | Op.While ->
    (* the cond region always runs last before exiting *)
    let cond = op.Op.regions.(0).Op.body in
    let tc, sc = scan_ops_back ctx ~shifted cond (List.length cond) in
    if sc then (tc, true)
    else begin
      (* the last iteration's tail precedes the exit in program order —
         not a wrap path, so keep the incoming flag (like For) *)
      let body = op.Op.regions.(1).Op.body in
      let tb, _ = scan_ops_back ctx ~shifted body (List.length body) in
      (tc @ tb, false) (* the body may have run zero times *)
    end
  | _ ->
    (collect_op ctx ~pinned:Value.Set.empty op, false)

let rec scan_ops_fwd ctx ~(shifted : bool) (ops : Op.op list) (idx : int) :
  access list * bool =
  let acc = ref [] in
  let stopped = ref false in
  let arr = Array.of_list ops in
  let i = ref (idx + 1) in
  while !i < Array.length arr && not !stopped do
    let o = arr.(!i) in
    if o.Op.kind = Op.Barrier then stopped := true
    else if Op.contains_barrier o then begin
      let h, s = head_effects ctx ~shifted o in
      acc := !acc @ h;
      if s then stopped := true
      else begin
        let effs = collect_op ctx ~pinned:Value.Set.empty o in
        let effs = if shifted then List.map shift_access effs else effs in
        acc := !acc @ effs
      end
    end
    else begin
      let effs = collect_op ctx ~pinned:Value.Set.empty o in
      let effs = if shifted then List.map shift_access effs else effs in
      acc := !acc @ effs;
      if Op.contains_barrier o then stopped := true
    end;
    incr i
  done;
  (!acc, !stopped)

(* Effects of [op] seen when arriving from *before* it, up to its first
   barrier. *)
and head_effects ctx ~(shifted : bool) (op : Op.op) : access list * bool =
  match op.Op.kind with
  | Op.For ->
    let h, s = scan_ops_fwd ctx ~shifted op.Op.regions.(0).body (-1) in
    (h, s && trip_nonzero ctx op)
  | Op.If ->
    let scan r =
      let body = op.Op.regions.(r).Op.body in
      if body = [] then ([], false) else scan_ops_fwd ctx ~shifted body (-1)
    in
    let h0, s0 = scan 0 in
    let h1, s1 = scan 1 in
    (h0 @ h1, s0 && s1)
  | Op.While ->
    (* the cond region always runs first *)
    let hc, sc = scan_ops_fwd ctx ~shifted op.Op.regions.(0).body (-1) in
    if sc then (hc, true)
    else begin
      (* first-iteration body head: the entry path, not a wrap (like
         For) — later iterations are covered by the in-loop wrap walk *)
      let hb, _ = scan_ops_fwd ctx ~shifted op.Op.regions.(1).body (-1) in
      (hc @ hb, false)
    end
  | _ ->
    (collect_op ctx ~pinned:Value.Set.empty op, false)

(* Position of [op] within its parent's regions. *)
let position_in_parent (info : Info.t) (op : Op.op) :
  (Op.op * int (* region index *) * int (* op index *)) option =
  match Info.parent info op with
  | None -> None
  | Some parent ->
    let found = ref None in
    Array.iteri
      (fun ri (r : Op.region) ->
        List.iteri
          (fun oi (o : Op.op) ->
            if o.Op.oid = op.Op.oid then found := Some (parent, ri, oi))
          r.body)
      parent.Op.regions;
    !found

(* Effects reachable backward from (just before) op [at], stopping at
   barriers and at the parallel region start; follows wrap-around edges of
   enclosing loops. *)
let rec effects_before ctx ~(par : Op.op) ~(shifted : bool) (at : Op.op) :
  access list =
  match position_in_parent ctx.info at with
  | None -> []
  | Some (parent, ri, oi) ->
    let ops = parent.Op.regions.(ri).body in
    let here, stopped = scan_ops_back ctx ~shifted ops oi in
    if stopped || parent.Op.oid = par.Op.oid then here
    else begin
      match parent.Op.kind with
      | Op.If -> here @ effects_before ctx ~par ~shifted parent
      | Op.For ->
        (* Predecessors of the loop-body start are BOTH the loop entry
           (always — the first iteration comes from before the loop) and
           the back edge (the tail of the previous iteration, up to a
           barrier).  The entry path must always be explored. *)
        let body = parent.Op.regions.(0).body in
        let wrap, _wrap_stopped =
          scan_ops_back ctx ~shifted:true body (List.length body)
        in
        (* only the back edge is a wrap: the entry path keeps the
           incoming flag — accesses before the loop are ordered with the
           leaf by plain program order, so a barrier between them
           separates the pair (see [Mhp.separation_points]) *)
        here @ wrap @ effects_before ctx ~par ~shifted parent
      | Op.While ->
        if ri = 0 then begin
          (* cond-start predecessors: the while entry (always) and the
             body end (wrap) *)
          let body = parent.Op.regions.(1).body in
          let wrap, _ =
            scan_ops_back ctx ~shifted:true body (List.length body)
          in
          here @ wrap @ effects_before ctx ~par ~shifted parent
        end
        else begin
          (* body-start predecessor: the cond region end (the cond always
             runs immediately before the body) *)
          let cond = parent.Op.regions.(0).body in
          let c, c_stopped =
            scan_ops_back ctx ~shifted cond (List.length cond)
          in
          let beyond =
            if c_stopped then []
            else begin
              (* before the cond: the while entry and the body-end wrap *)
              let wrap, _ =
                scan_ops_back ctx ~shifted:true
                  parent.Op.regions.(1).body
                  (List.length parent.Op.regions.(1).body)
              in
              wrap @ effects_before ctx ~par ~shifted parent
            end
          in
          here @ c @ beyond
        end
      | _ -> here @ effects_before ctx ~par ~shifted parent
    end

let rec effects_after ctx ~(par : Op.op) ~(shifted : bool) (at : Op.op) :
  access list =
  match position_in_parent ctx.info at with
  | None -> []
  | Some (parent, ri, oi) ->
    let ops = parent.Op.regions.(ri).body in
    let here, stopped = scan_ops_fwd ctx ~shifted ops oi in
    if stopped || parent.Op.oid = par.Op.oid then here
    else begin
      match parent.Op.kind with
      | Op.If -> here @ effects_after ctx ~par ~shifted parent
      | Op.For ->
        (* Successors of the loop-body end are BOTH the loop exit (always)
           and the back edge (the head of the next iteration, up to a
           barrier).  The exit path must always be explored. *)
        let body = parent.Op.regions.(0).body in
        let wrap, _ = scan_ops_fwd ctx ~shifted:true body (-1) in
        (* the wrap scan is shifted; the exit path keeps the incoming
           flag — post-loop accesses follow the leaf in program order *)
        here @ wrap @ effects_after ctx ~par ~shifted parent
      | Op.While ->
        if ri = 0 then begin
          (* after the cond: the body (if true, wrap) and whatever follows
             the while (if false — always possible) *)
          let body = parent.Op.regions.(1).body in
          let b, _ = scan_ops_fwd ctx ~shifted:true body (-1) in
          here @ b @ effects_after ctx ~par ~shifted parent
        end
        else begin
          (* after the body: the cond region of the next iteration; if the
             cond has no barrier, the body head (next iteration) and the
             while exit follow *)
          let cond = parent.Op.regions.(0).body in
          let c, c_stopped = scan_ops_fwd ctx ~shifted:true cond (-1) in
          let beyond =
            if c_stopped then []
            else begin
              let bh, _ =
                scan_ops_fwd ctx ~shifted:true parent.Op.regions.(1).body (-1)
              in
              bh @ effects_after ctx ~par ~shifted parent
            end
          in
          here @ c @ beyond
        end
      | _ -> here @ effects_after ctx ~par ~shifted parent
    end

(* The two interval sets of a barrier (Sec. IV-A): effects before it up to
   the previous barrier / region start, and after it up to the next
   barrier / region end. *)
let barrier_intervals ctx ~(par : Op.op) (barrier : Op.op) :
  access list * access list =
  ( effects_before ctx ~par ~shifted:false barrier
  , effects_after ctx ~par ~shifted:false barrier )
