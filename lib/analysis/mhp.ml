(* May-happen-in-parallel analysis: barrier-interval dataflow over one
   block-parallel region.

   Interval 0 opens at the region entry; every barrier closes the
   intervals reaching it and opens a fresh one (numbered in first-visit
   program order, so the numbering is deterministic and readable in
   diagnostics).  The dataflow state at an op is a pair of id sets:
   [u] — intervals that can be live at the op with no loop back-edge
   crossed since they opened (lock-step serial-iv equality still
   holds), and [s] — intervals still live but only through at least one
   back-edge (their loop-iv comparisons are void, matching
   {!Effects.shift_access}).  Loops run to a fixpoint over
   [in' = in ∪ shift(out)]; both sets only grow and ids are bounded by
   the barrier count, so convergence is immediate in practice.

   The same traversal collects the access-bearing leaves with their
   guard context (pinning [if (tid == e)] guards, thread-dependent
   non-pinning guards) — previously private to the race check — and
   per-interval shared access sets, which make barrier redundancy a
   per-barrier conflict query.

   Candidate racing pairs are NOT derived from interval co-membership
   alone: two ops can share an interval id through incompatible branch
   choices (e.g. [if (u) { A; barrier }] followed by [B] — A and B both
   carry interval 0, but every execution that runs A fences it from B).
   Membership is a may-property per op, not per path.  The pair source
   stays the barrier-free forward reachability of
   {!Effects.effects_after}, which follows real paths; the dataflow
   then annotates each pair with its interval ids and computes the
   separating insertion points the repair search tries. *)

open Ir

(* --- thread-dependence helpers (shared with the divergence check) --- *)

let while_cond_value (op : Op.op) : Value.t option =
  let found = ref None in
  List.iter
    (fun (o : Op.op) ->
      if o.Op.kind = Op.Condition then found := Some o.Op.operands.(0))
    op.Op.regions.(0).Op.body;
  !found

let thread_private (ctx : Effects.ctx) (par : Op.op) (v : Value.t) : bool =
  let rec chase (v : Value.t) =
    match Info.defining_op ctx.info v with
    | Some ({ Op.kind = Op.Alloc | Op.Alloca; _ } as o) -> Some o
    | Some { Op.kind = Op.Cast _; operands; _ } -> chase operands.(0)
    | _ -> None
  in
  match chase v with
  | Some o -> Info.is_ancestor ctx.info ~anc:par o
  | None -> false

(* Thread-dependence taint: can the value differ between two threads of
   one block (at the same point of the lock-step execution)?  Memoized
   per value.

   Anything defined outside the block-parallel region is launch-uniform.
   Inside, taint starts at the non-unit thread ivs and propagates
   through arithmetic and through memory when the frontend spilled a
   value to a stack slot: a load from a thread-private slot is tainted
   iff some store to the slot stores a tainted value or executes under
   tainted control (divergent threads then disagree on whether the store
   happened at all).  Loads from anything shared between threads are
   conservatively tainted. *)
let mk_taint (ctx : Effects.ctx) : Value.t -> bool =
  let non_unit = Value.Set.diff ctx.tids (Effects.unit_tids ctx) in
  let memo = Hashtbl.create 64 in
  (* Stores to (and escapes of) each memref inside the parallel region,
     for the private-slot rule. *)
  let slot_stores : (int, Op.op list ref) Hashtbl.t = Hashtbl.create 16 in
  let escaped : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  (match ctx.par with
   | Some par ->
     Op.iter
       (fun (o : Op.op) ->
         match o.Op.kind with
         | Op.Store ->
           let b = o.Op.operands.(1) in
           let r =
             match Hashtbl.find_opt slot_stores b.Value.id with
             | Some r -> r
             | None ->
               let r = ref [] in
               Hashtbl.replace slot_stores b.Value.id r;
               r
           in
           r := o :: !r
         | Op.Copy -> Hashtbl.replace escaped o.Op.operands.(1).Value.id ()
         | Op.Call _ ->
           Array.iter
             (fun (v : Value.t) -> Hashtbl.replace escaped v.Value.id ())
             o.Op.operands
         | _ -> ())
       par
   | None -> ());
  let rec go (v : Value.t) : bool =
    match Hashtbl.find_opt memo v.Value.id with
    | Some b -> b
    | None ->
      (* cycle guard: assume uniform while computing *)
      Hashtbl.replace memo v.Value.id false;
      let r =
        if Value.Set.mem v non_unit then true
        else if Value.Set.mem v ctx.tids then false (* unit-extent tid *)
        else begin
          match Info.def ctx.info v with
          | Info.Def_external -> false (* defined above the kernel *)
          | Info.Def_arg (op, _) when outside op -> false
          | Info.Def_op op when outside op -> false
          | Info.Def_arg (op, _) -> begin
            match op.Op.kind with
            | Op.Func _ -> false (* parameters are launch-uniform *)
            | Op.Parallel Op.Grid -> false (* same block for all threads *)
            | Op.Parallel _ | Op.OmpWsloop | Op.OmpParallel -> true
            | Op.For ->
              (* uniform bounds => all threads see the same iv sequence
                 (same-iteration/lock-step comparison) *)
              go (Op.for_lo op) || go (Op.for_hi op) || go (Op.for_step op)
            | _ -> true
          end
          | Info.Def_op op -> begin
            match op.Op.kind with
            | Op.Constant _ -> false
            | Op.Alloc | Op.Alloca -> false (* the memref value itself *)
            | Op.Load -> load_tainted op
            | Op.Call _ -> true
            | Op.Dim _ -> go op.Op.operands.(0)
            | Op.Binop _ | Op.Cmp _ | Op.Select | Op.Cast _ | Op.Math _ ->
              Array.exists go op.Op.operands
            | _ -> true
          end
        end
      in
      Hashtbl.replace memo v.Value.id r;
      r
  and outside (op : Op.op) : bool =
    match ctx.par with
    | Some par -> not (Info.is_ancestor ctx.info ~anc:par op)
    | None -> false
  and load_tainted (load : Op.op) : bool =
    match ctx.par with
    | None -> true
    | Some par ->
      let b = load.Op.operands.(0) in
      if not (thread_private ctx par b) || Hashtbl.mem escaped b.Value.id
      then true (* other threads may have written the loaded value *)
      else begin
        let stores =
          match Hashtbl.find_opt slot_stores b.Value.id with
          | Some r -> !r
          | None -> []
        in
        List.exists
          (fun (s : Op.op) -> go s.Op.operands.(0) || ctrl_tainted par s)
          stores
      end
  and ctrl_tainted (par : Op.op) (op : Op.op) : bool =
    List.exists
      (fun (anc : Op.op) ->
        match anc.Op.kind with
        | Op.If -> go anc.Op.operands.(0)
        | Op.For ->
          go (Op.for_lo anc) || go (Op.for_hi anc) || go (Op.for_step anc)
        | Op.While -> begin
          match while_cond_value anc with
          | Some c -> go c
          | None -> true
        end
        | _ -> false)
      (Info.ancestors_up_to ctx.info ~stop:par op)
  in
  go

(* --- interval dataflow --- *)

module IS = Set.Make (Int)

type state =
  { u : IS.t (* intervals live, no back-edge crossed since opening *)
  ; s : IS.t (* live only through at least one back-edge *)
  }

let empty_state = { u = IS.empty; s = IS.empty }
let union_state a b = { u = IS.union a.u b.u; s = IS.union a.s b.s }
let equal_state a b = IS.equal a.u b.u && IS.equal a.s b.s

(* Crossing a loop back-edge: every live interval loses its lock-step
   iv equalities. *)
let shift_state st = { u = IS.empty; s = IS.union st.u st.s }

type leaf =
  { l_op : Op.op
  ; l_accs : Effects.access list
  ; l_pinned : Value.Set.t
  ; l_guarded : bool
  }

type t =
  { t_ctx : Effects.ctx
  ; t_par : Op.op
  ; t_taint : Value.t -> bool
  ; mutable t_n : int (* number of intervals *)
  ; t_openers : (int, Op.op) Hashtbl.t (* id -> opening barrier *)
  ; t_opens : (int, int) Hashtbl.t (* barrier oid -> opened id *)
  ; t_closes : (int, state) Hashtbl.t (* barrier oid -> in-state *)
  ; t_at : (int, state) Hashtbl.t (* op oid -> in-state *)
  ; mutable t_leaves : leaf list
  ; t_iaccs : (int, Effects.access list ref) Hashtbl.t
  }

let ctx t = t.t_ctx
let par t = t.t_par
let taint t = t.t_taint
let interval_count t = t.t_n
let opener t i = Hashtbl.find_opt t.t_openers i
let barrier_opens t (b : Op.op) = Hashtbl.find_opt t.t_opens b.Op.oid

let sets_of_state st = (IS.elements st.u, IS.elements st.s)

let barrier_closes t (b : Op.op) =
  Option.map sets_of_state (Hashtbl.find_opt t.t_closes b.Op.oid)

let intervals_at t (o : Op.op) =
  Option.map sets_of_state (Hashtbl.find_opt t.t_at o.Op.oid)

let home t (o : Op.op) =
  match Hashtbl.find_opt t.t_at o.Op.oid with
  | Some st when not (IS.is_empty st.u) -> IS.min_elt st.u
  | _ -> 0

(* Does this serial loop provably execute at least one iteration?
   (mirrors the private test the effect analysis applies to loop-exit
   paths) *)
let trip_nonzero (ctx : Effects.ctx) (op : Op.op) : bool =
  let cint (v : Value.t) =
    match Info.defining_op ctx.info v with
    | Some { Op.kind = Op.Constant (Op.Cint (n, _)); _ } -> Some n
    | _ -> None
  in
  match op.Op.kind with
  | Op.For -> begin
    match cint (Op.for_lo op), cint (Op.for_hi op) with
    | Some lo, Some hi -> lo < hi
    | _ -> false
  end
  | _ -> false

(* The fixpoint cap is a safety net only: states grow monotonically in
   a lattice of height <= 2 * interval count, so real kernels converge
   in two or three passes. *)
let max_fix = 100

let dataflow (t : t) : unit =
  let record tbl oid st =
    let cur =
      Option.value ~default:empty_state (Hashtbl.find_opt tbl oid)
    in
    Hashtbl.replace tbl oid (union_state cur st)
  in
  let id_of (b : Op.op) : int =
    match Hashtbl.find_opt t.t_opens b.Op.oid with
    | Some i -> i
    | None ->
      let i = t.t_n in
      t.t_n <- t.t_n + 1;
      Hashtbl.replace t.t_opens b.Op.oid i;
      Hashtbl.replace t.t_openers i b;
      i
  in
  let rec walk_region st (r : Op.region) : state =
    List.fold_left walk_op st r.Op.body
  and walk_op st (o : Op.op) : state =
    record t.t_at o.Op.oid st;
    match o.Op.kind with
    | Op.Barrier ->
      record t.t_closes o.Op.oid st;
      { u = IS.singleton (id_of o); s = IS.empty }
    | Op.If ->
      union_state
        (walk_region st o.Op.regions.(0))
        (walk_region st o.Op.regions.(1))
    | Op.For | Op.Parallel _ | Op.OmpWsloop | Op.OmpParallel ->
      (* one body region; iterations chain through the back-edge *)
      let body = o.Op.regions.(Array.length o.Op.regions - 1) in
      let rec fix st_in n =
        let st_out = walk_region st_in body in
        let st_in' = union_state st_in (shift_state st_out) in
        if equal_state st_in' st_in || n >= max_fix then st_out
        else fix st_in' (n + 1)
      in
      let st_out = fix st 0 in
      if trip_nonzero t.t_ctx o then st_out else union_state st st_out
    | Op.While ->
      (* cond runs first and again after each body iteration; the loop
         exits from the cond region *)
      let cond = o.Op.regions.(0) and body = o.Op.regions.(1) in
      let rec fix st_c n =
        let st_c_out = walk_region st_c cond in
        let st_b_out = walk_region st_c_out body in
        let st_c' = union_state st_c (shift_state st_b_out) in
        if equal_state st_c' st_c || n >= max_fix then st_c_out
        else fix st_c' (n + 1)
      in
      fix st 0
    | _ ->
      (* region-less ops pass the state through; any other region op
         (none occur inside kernels today) is treated as optional
         straight-line code *)
      Array.fold_left
        (fun acc r -> union_state acc (walk_region st r))
        st o.Op.regions
  in
  ignore (walk_region { u = IS.singleton 0; s = IS.empty } t.t_par.Op.regions.(0))

(* --- leaves (with guard context) and per-interval access sets --- *)

let collect_leaves (t : t) : unit =
  let ctx = t.t_ctx in
  let shared_visible (a : Effects.access) =
    match a.Effects.base with
    | Some b -> not (thread_private ctx t.t_par b)
    | None -> true
  in
  let leaves = ref [] in
  let rec go_op ~pinned ~guarded (op : Op.op) =
    match op.Op.kind with
    | Op.Load | Op.Store | Op.Copy | Op.Dealloc | Op.Call _ ->
      let accs =
        List.filter shared_visible (Effects.collect_op ctx ~pinned op)
      in
      if accs <> [] then
        leaves :=
          { l_op = op; l_accs = accs; l_pinned = pinned; l_guarded = guarded }
          :: !leaves
    | Op.If ->
      let extra = Effects.pinned_by_cond ctx op.Op.operands.(0) in
      let cond_tainted = t.t_taint op.Op.operands.(0) in
      (* a pinning guard (tid == e) is fully accounted for by [pinned];
         any other thread-dependent guard forfeits definiteness *)
      let then_guarded =
        guarded || (cond_tainted && Value.Set.is_empty extra)
      in
      go_region ~pinned:(Value.Set.union pinned extra) ~guarded:then_guarded
        op.Op.regions.(0);
      go_region ~pinned ~guarded:(guarded || cond_tainted) op.Op.regions.(1)
    | _ -> Array.iter (go_region ~pinned ~guarded) op.Op.regions
  and go_region ~pinned ~guarded (r : Op.region) =
    List.iter (go_op ~pinned ~guarded) r.body
  in
  go_region ~pinned:Value.Set.empty ~guarded:false t.t_par.Op.regions.(0);
  t.t_leaves <- List.rev !leaves;
  (* per-interval shared access sets: a leaf contributes as-is to every
     interval it can occupy lock-step, and iv-stripped to the intervals
     it only reaches through a back-edge *)
  List.iter
    (fun l ->
      match Hashtbl.find_opt t.t_at l.l_op.Op.oid with
      | None -> ()
      | Some st ->
        let add shifted i =
          let r =
            match Hashtbl.find_opt t.t_iaccs i with
            | Some r -> r
            | None ->
              let r = ref [] in
              Hashtbl.replace t.t_iaccs i r;
              r
          in
          let accs =
            if shifted then List.map Effects.shift_access l.l_accs
            else l.l_accs
          in
          r := !r @ accs
        in
        IS.iter (add false) st.u;
        IS.iter (add true) (IS.diff st.s st.u))
    t.t_leaves

let leaves t = t.t_leaves

let interval_accesses t i =
  match Hashtbl.find_opt t.t_iaccs i with Some r -> !r | None -> []

let analyze (ctx : Effects.ctx) (par : Op.op) : t =
  let t =
    { t_ctx = ctx
    ; t_par = par
    ; t_taint = mk_taint ctx
    ; t_n = 1 (* interval 0 = region entry *)
    ; t_openers = Hashtbl.create 8
    ; t_opens = Hashtbl.create 8
    ; t_closes = Hashtbl.create 8
    ; t_at = Hashtbl.create 64
    ; t_leaves = []
    ; t_iaccs = Hashtbl.create 8
    }
  in
  dataflow t;
  collect_leaves t;
  t

(* --- conflict candidates --- *)

type conflict =
  { cf_a : Effects.access
  ; cf_ga : bool
  ; cf_b : Effects.access
  ; cf_gb : bool
  ; cf_intervals : int * int
  ; cf_shifted : bool
  }

let conflicts (t : t) : conflict list =
  let ctx = t.t_ctx in
  let table = Hashtbl.create 64 in
  List.iter (fun l -> Hashtbl.replace table l.l_op.Op.oid l) t.t_leaves;
  let home_of (x : Effects.access) =
    match x.Effects.src with Some o -> home t o | None -> 0
  in
  let out = ref [] in
  List.iter
    (fun l ->
      let after = Effects.effects_after ctx ~par:t.t_par ~shifted:false l.l_op in
      (* the forward scan collects accesses with empty pin/guard
         context; recover it from the leaf table via the source op *)
      let resolve (b : Effects.access) : Effects.access * bool =
        match b.Effects.src with
        | Some o -> begin
          match Hashtbl.find_opt table o.Op.oid with
          | Some lb ->
            (* pins rely on the guard value being the same in both
               executions; a wrap-around copy crosses an iteration
               boundary, so drop them *)
            let pinned =
              if b.Effects.shifted then Value.Set.empty else lb.l_pinned
            in
            ({ b with Effects.pinned }, lb.l_guarded)
          | None -> (b, true)
        end
        | None -> (b, true)
      in
      let candidates =
        List.map (fun x -> (x, l.l_guarded)) l.l_accs
        @ List.map resolve
            (List.filter
               (fun (a : Effects.access) ->
                 match a.Effects.base with
                 | Some b -> not (thread_private ctx t.t_par b)
                 | None -> true)
               after)
      in
      List.iter
        (fun a ->
          List.iter
            (fun (b, gb) ->
              if Effects.cross_thread_conflict ctx a b then
                out :=
                  { cf_a = a
                  ; cf_ga = l.l_guarded
                  ; cf_b = b
                  ; cf_gb = gb
                  ; cf_intervals = (home_of a, home_of b)
                  ; cf_shifted = a.Effects.shifted || b.Effects.shifted
                  }
                  :: !out)
            candidates)
        l.l_accs)
    t.t_leaves;
  List.rev !out

(* --- barrier placement --- *)

type point =
  { pt_region : Op.region
  ; pt_index : int
  ; pt_loc : Srcloc.t option
  ; pt_rank : int
  }

(* Ancestor chain of [op] inside [par], outermost first, ending at the
   op itself; empty when the op is not inside the region. *)
let chain (t : t) (op : Op.op) : Op.op list =
  if not (Info.is_ancestor t.t_ctx.Effects.info ~anc:t.t_par op) then []
  else
    List.rev
      (op :: Info.ancestors_up_to t.t_ctx.Effects.info ~stop:t.t_par op)

(* Would a barrier inserted as a sibling of [child] (a direct child of
   the common region) be divergence-free?  Every control construct
   strictly above it, up to the parallel op, must be uniform. *)
let uniform_context (t : t) (child : Op.op) : bool =
  let tainted (anc : Op.op) =
    match anc.Op.kind with
    | Op.If -> t.t_taint anc.Op.operands.(0)
    | Op.For ->
      t.t_taint (Op.for_lo anc)
      || t.t_taint (Op.for_hi anc)
      || t.t_taint (Op.for_step anc)
    | Op.While -> begin
      match while_cond_value anc with
      | Some c -> t.t_taint c
      | None -> true
    end
    | _ -> false
  in
  not
    (List.exists tainted
       (Info.ancestors_up_to t.t_ctx.Effects.info ~stop:t.t_par child))

let index_in (r : Op.region) (child : Op.op) : int option =
  let rec go i = function
    | [] -> None
    | (o : Op.op) :: _ when o.Op.oid = child.Op.oid -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 r.Op.body

(* The region of [d] holding [child] (d = None means the parallel
   region itself). *)
let region_of (t : t) (d : Op.op option) (child : Op.op) : Op.region option =
  let holder = match d with Some d -> d | None -> t.t_par in
  Array.find_opt
    (fun (r : Op.region) ->
      List.exists (fun (o : Op.op) -> o.Op.oid = child.Op.oid) r.Op.body)
    holder.Op.regions

let mk_point (r : Op.region) idx rank holder_loc =
  let loc =
    match List.nth_opt r.Op.body idx with
    | Some (o : Op.op) -> o.Op.loc
    | None -> holder_loc
  in
  { pt_region = r; pt_index = idx; pt_loc = loc; pt_rank = rank }

let separation_points (t : t) ~(shifted : bool) (a : Op.op) (b : Op.op) :
  point list =
  match chain t a, chain t b with
  | [], _ | _, [] -> []
  | ca, cb ->
    (* peel the common prefix: [d] is the deepest common ancestor,
       [childa]/[childb] the subtrees below it holding each op *)
    let rec peel d ca cb =
      match ca, cb with
      | (x : Op.op) :: ca', (y : Op.op) :: cb' when x.Op.oid = y.Op.oid ->
        peel (Some x) ca' cb'
      | _ -> (d, ca, cb)
    in
    let d, resta, restb = peel None ca cb in
    begin
      match resta, restb with
      | [], _ | _, [] ->
        (* one op contains (or is) the other: the same statement raced
           by two threads — no barrier placement separates that *)
        []
      | childa :: _, childb :: _ -> begin
        match region_of t d childa, region_of t d childb with
        | Some ra, Some rb when ra == rb -> begin
          match index_in ra childa, index_in ra childb with
          | Some ia, Some ib when uniform_context t childa ->
            let holder_loc =
              match d with Some d -> d.Op.loc | None -> t.t_par.Op.loc
            in
            let n = List.length ra.Op.body in
            if not shifted then begin
              (* separate the two subtrees: any position strictly
                 between them; best = just before the later one *)
              let lo = min ia ib and hi = max ia ib in
              if lo = hi then []
              else
                List.init (hi - lo)
                  (fun k -> mk_point ra (hi - k) k holder_loc)
            end
            else begin
              (* cut the wrap-around path: positions after the first
                 subtree or before the second, body end first.  When
                 the pair does not sit under a common loop these still
                 separate straight-line wrap sources conservatively;
                 candidates are validated by re-checking anyway. *)
              let hi = max ia ib and lo = min ia ib in
              let upper = List.init (n - hi) (fun k -> n - k) in
              let lower = List.init (lo + 1) (fun k -> k) in
              List.mapi (fun rank idx -> mk_point ra idx rank holder_loc)
                (upper @ lower)
            end
          | _ -> []
        end
        | _ ->
          (* different regions of the common ancestor: exclusive
             branches of an If (or cond/body of a While) — a barrier
             cannot interleave between them *)
          []
      end
    end

(* --- redundant barriers --- *)

let redundant_barriers (t : t) : Op.op list =
  let ctx = t.t_ctx in
  let acc = ref [] in
  Op.iter_region
    (fun (b : Op.op) ->
      if b.Op.kind = Op.Barrier then begin
        match Hashtbl.find_opt t.t_closes b.Op.oid, barrier_opens t b with
        | Some closed, Some opened ->
          let before =
            List.concat_map (interval_accesses t)
              (IS.elements (IS.union closed.u closed.s))
          in
          let after = interval_accesses t opened in
          if not (Effects.conflicts_cross ctx before after) then
            acc := b :: !acc
        | _ -> ()
      end)
    t.t_par.Op.regions.(0);
  List.rev !acc
