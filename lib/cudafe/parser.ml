(* Recursive-descent parser for mini-CUDA.  Expressions use precedence
   climbing; statements and declarations follow C syntax closely enough
   that the Rodinia kernels can be written naturally. *)

exception Error of string

type state =
  { toks : Lexer.postoken array
  ; mutable pos : int
  }

let fail st fmt =
  let t = st.toks.(st.pos) in
  Printf.ksprintf
    (fun s ->
      raise
        (Error
           (Printf.sprintf "parse error at line %d col %d (near '%s'): %s"
              t.line t.col
              (Lexer.token_to_string t.tok)
              s)))
    fmt

let peek st = st.toks.(st.pos).tok
let peek2 st =
  if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1).tok
  else Lexer.EOF

let advance st = st.pos <- st.pos + 1

let eat_punct st p =
  match peek st with
  | Lexer.PUNCT q when q = p -> advance st
  | _ -> fail st "expected '%s'" p

let eat_kw st k =
  match peek st with
  | Lexer.KW q when q = k -> advance st
  | _ -> fail st "expected '%s'" k

let accept_punct st p =
  match peek st with
  | Lexer.PUNCT q when q = p ->
    advance st;
    true
  | _ -> false

let accept_kw st k =
  match peek st with
  | Lexer.KW q when q = k ->
    advance st;
    true
  | _ -> false

let expect_ident st =
  match peek st with
  | Lexer.IDENT s ->
    advance st;
    s
  | _ -> fail st "expected identifier"

(* --- types --- *)

let is_type_start st =
  match peek st with
  | Lexer.KW ("void" | "bool" | "int" | "long" | "float" | "double"
             | "unsigned" | "const" | "static") ->
    true
  | _ -> false

let rec parse_base_type st =
  if accept_kw st "const" || accept_kw st "static" then parse_base_type st
  else if accept_kw st "unsigned" then begin
    (* unsigned int / unsigned long / bare unsigned *)
    if accept_kw st "int" then Ast.Tint
    else if accept_kw st "long" then Ast.Tlong
    else Ast.Tint
  end
  else if accept_kw st "void" then Ast.Tvoid
  else if accept_kw st "bool" then Ast.Tbool
  else if accept_kw st "int" then Ast.Tint
  else if accept_kw st "long" then begin
    ignore (accept_kw st "long");
    ignore (accept_kw st "int");
    Ast.Tlong
  end
  else if accept_kw st "float" then Ast.Tfloat
  else if accept_kw st "double" then Ast.Tdouble
  else fail st "expected type"

let parse_type st =
  let base = parse_base_type st in
  let rec stars t =
    if accept_punct st "*" then begin
      ignore (accept_kw st "const");
      ignore (accept_kw st "__restrict__");
      stars (Ast.Tptr t)
    end
    else t
  in
  stars base

(* --- expressions --- *)

let builtin_of_ident = function
  | "threadIdx" -> Some Ast.Thread_idx
  | "blockIdx" -> Some Ast.Block_idx
  | "blockDim" -> Some Ast.Block_dim
  | "gridDim" -> Some Ast.Grid_dim
  | _ -> None

let dim_of_field st = function
  | "x" -> Ast.X
  | "y" -> Ast.Y
  | "z" -> Ast.Z
  | f -> fail st "unknown SIMT field '.%s'" f

(* Binary operator precedence (higher binds tighter). *)
let binop_prec = function
  | "*" -> Some (10, Ast.Bmul)
  | "/" -> Some (10, Ast.Bdiv)
  | "%" -> Some (10, Ast.Bmod)
  | "+" -> Some (9, Ast.Badd)
  | "-" -> Some (9, Ast.Bsub)
  | "<<" -> Some (8, Ast.Bshl)
  | ">>" -> Some (8, Ast.Bshr)
  | "<" -> Some (7, Ast.Blt)
  | "<=" -> Some (7, Ast.Ble)
  | ">" -> Some (7, Ast.Bgt)
  | ">=" -> Some (7, Ast.Bge)
  | "==" -> Some (6, Ast.Beq)
  | "!=" -> Some (6, Ast.Bne)
  | "&" -> Some (5, Ast.Bband)
  | "^" -> Some (4, Ast.Bxor)
  | "|" -> Some (3, Ast.Bbor)
  | "&&" -> Some (2, Ast.Bland)
  | "||" -> Some (1, Ast.Blor)
  | _ -> None

let rec parse_expr st = parse_assign st

and parse_assign st =
  let lhs = parse_ternary st in
  match peek st with
  | Lexer.PUNCT "=" ->
    advance st;
    Ast.E_assign (lhs, parse_assign st)
  | Lexer.PUNCT "+=" ->
    advance st;
    Ast.E_opassign (Ast.Badd, lhs, parse_assign st)
  | Lexer.PUNCT "-=" ->
    advance st;
    Ast.E_opassign (Ast.Bsub, lhs, parse_assign st)
  | Lexer.PUNCT "*=" ->
    advance st;
    Ast.E_opassign (Ast.Bmul, lhs, parse_assign st)
  | Lexer.PUNCT "/=" ->
    advance st;
    Ast.E_opassign (Ast.Bdiv, lhs, parse_assign st)
  | Lexer.PUNCT "%=" ->
    advance st;
    Ast.E_opassign (Ast.Bmod, lhs, parse_assign st)
  | Lexer.PUNCT "&=" ->
    advance st;
    Ast.E_opassign (Ast.Bband, lhs, parse_assign st)
  | Lexer.PUNCT "|=" ->
    advance st;
    Ast.E_opassign (Ast.Bbor, lhs, parse_assign st)
  | Lexer.PUNCT "^=" ->
    advance st;
    Ast.E_opassign (Ast.Bxor, lhs, parse_assign st)
  | _ -> lhs

and parse_ternary st =
  let c = parse_binary st 0 in
  if accept_punct st "?" then begin
    let a = parse_assign st in
    eat_punct st ":";
    let b = parse_ternary st in
    Ast.E_cond (c, a, b)
  end
  else c

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Lexer.PUNCT p ->
      (match binop_prec p with
       | Some (prec, op) when prec >= min_prec ->
         advance st;
         let rhs = parse_binary st (prec + 1) in
         lhs := Ast.E_bin (op, !lhs, rhs)
       | _ -> continue_ := false)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st =
  match peek st with
  | Lexer.PUNCT "-" ->
    advance st;
    Ast.E_un (Ast.Uneg, parse_unary st)
  | Lexer.PUNCT "+" ->
    advance st;
    parse_unary st
  | Lexer.PUNCT "!" ->
    advance st;
    Ast.E_un (Ast.Unot, parse_unary st)
  | Lexer.PUNCT "~" ->
    advance st;
    Ast.E_un (Ast.Ubnot, parse_unary st)
  | Lexer.PUNCT "*" ->
    advance st;
    Ast.E_deref (parse_unary st)
  | Lexer.PUNCT "++" ->
    advance st;
    Ast.E_incr (parse_unary st)
  | Lexer.PUNCT "--" ->
    advance st;
    Ast.E_decr (parse_unary st)
  | Lexer.PUNCT "(" when is_cast st -> begin
    advance st;
    let t = parse_type st in
    eat_punct st ")";
    Ast.E_cast (t, parse_unary st)
  end
  | _ -> parse_postfix st

(* A '(' starts a cast iff the next token is a type keyword. *)
and is_cast st =
  match peek2 st with
  | Lexer.KW ("void" | "bool" | "int" | "long" | "float" | "double"
             | "unsigned") ->
    true
  | _ -> false

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Lexer.PUNCT "[" ->
      advance st;
      let idx = parse_expr st in
      eat_punct st "]";
      (* collapse chained subscripts into one E_index for 2-D arrays *)
      (e :=
         match !e with
         | Ast.E_index (b, idxs) -> Ast.E_index (b, idxs @ [ idx ])
         | b -> Ast.E_index (b, [ idx ]))
    | Lexer.PUNCT "++" ->
      advance st;
      e := Ast.E_incr !e
    | Lexer.PUNCT "--" ->
      advance st;
      e := Ast.E_decr !e
    | Lexer.PUNCT "." -> begin
      advance st;
      let f = expect_ident st in
      match !e with
      | Ast.E_id id -> begin
        match builtin_of_ident id with
        | Some b -> e := Ast.E_builtin (b, dim_of_field st f)
        | None -> fail st "member access only supported on SIMT builtins"
      end
      | _ -> fail st "member access only supported on SIMT builtins"
    end
    | _ -> continue_ := false
  done;
  !e

and parse_primary st =
  match peek st with
  | Lexer.INT n ->
    advance st;
    Ast.E_int n
  | Lexer.FLOAT (f, d) ->
    advance st;
    Ast.E_float (f, d)
  | Lexer.PUNCT "(" ->
    advance st;
    let e = parse_expr st in
    eat_punct st ")";
    e
  | Lexer.IDENT name -> begin
    advance st;
    match peek st with
    | Lexer.PUNCT "(" ->
      advance st;
      let args = parse_args st in
      Ast.E_call (name, args)
    | _ -> Ast.E_id name
  end
  | Lexer.KW "sizeof" ->
    advance st;
    eat_punct st "(";
    let t = parse_type st in
    eat_punct st ")";
    let bytes =
      match t with
      | Ast.Tbool -> 1
      | Ast.Tint | Ast.Tfloat -> 4
      | Ast.Tlong | Ast.Tdouble | Ast.Tptr _ -> 8
      | Ast.Tvoid -> fail st "sizeof(void)"
    in
    Ast.E_int bytes
  | t -> fail st "unexpected token '%s' in expression" (Lexer.token_to_string t)

and parse_args st =
  if accept_punct st ")" then []
  else begin
    let rec loop acc =
      let e = parse_expr st in
      if accept_punct st "," then loop (e :: acc)
      else begin
        eat_punct st ")";
        List.rev (e :: acc)
      end
    in
    loop []
  end

(* --- statements --- *)

(* Location of the token the parser is currently looking at. *)
let cur_loc st : Ir.Srcloc.t =
  let t = st.toks.(st.pos) in
  Ir.Srcloc.v ~line:t.line ~col:t.col

let parse_dim3 st : Ast.dim3 =
  match peek st with
  | Lexer.KW "dim3" ->
    advance st;
    eat_punct st "(";
    let a = parse_expr st in
    let b = if accept_punct st "," then Some (parse_expr st) else None in
    let c = if accept_punct st "," then Some (parse_expr st) else None in
    eat_punct st ")";
    (a, b, c)
  | _ -> (parse_expr st, None, None)

let rec parse_stmt st : Ast.stmt =
  let loc = cur_loc st in
  match peek st with
  | Lexer.PRAGMA p -> begin
    advance st;
    (* recognized: "omp parallel for" (with optional clauses); other
       pragmas are ignored *)
    let is_par_for =
      String.length p >= 16 && String.sub p 0 16 = "omp parallel for"
    in
    if not is_par_for then parse_stmt st
    else begin
      let s = parse_stmt st in
      match s.s with
      | Ast.S_for (h, body) -> { s with s = Ast.S_omp_for (h, body) }
      | _ -> fail st "#pragma omp parallel for must precede a for loop"
    end
  end
  | Lexer.PUNCT "{" ->
    advance st;
    Ast.at loc (Ast.S_block (parse_block st))
  | Lexer.PUNCT ";" ->
    advance st;
    Ast.at loc (Ast.S_block [])
  | Lexer.KW "if" ->
    advance st;
    eat_punct st "(";
    let c = parse_expr st in
    eat_punct st ")";
    let then_ = parse_stmt_as_block st in
    let else_ =
      if accept_kw st "else" then parse_stmt_as_block st else []
    in
    Ast.at loc (Ast.S_if (c, then_, else_))
  | Lexer.KW "while" ->
    advance st;
    eat_punct st "(";
    let c = parse_expr st in
    eat_punct st ")";
    Ast.at loc (Ast.S_while (c, parse_stmt_as_block st))
  | Lexer.KW "do" ->
    advance st;
    let body = parse_stmt_as_block st in
    eat_kw st "while";
    eat_punct st "(";
    let c = parse_expr st in
    eat_punct st ")";
    eat_punct st ";";
    Ast.at loc (Ast.S_do_while (body, c))
  | Lexer.KW "for" ->
    advance st;
    eat_punct st "(";
    let init =
      if accept_punct st ";" then None
      else begin
        let iloc = cur_loc st in
        let s =
          if is_type_start st then parse_decl_stmt st
          else Ast.at iloc (Ast.S_expr (parse_expr st))
        in
        (match s.s with Ast.S_decl _ -> () | _ -> eat_punct st ";");
        Some s
      end
    in
    let cond =
      if accept_punct st ";" then None
      else begin
        let e = parse_expr st in
        eat_punct st ";";
        Some e
      end
    in
    let step =
      match peek st with
      | Lexer.PUNCT ")" ->
        advance st;
        None
      | _ ->
        let e = parse_expr st in
        eat_punct st ")";
        Some e
    in
    let body = parse_stmt_as_block st in
    Ast.at loc (Ast.S_for ({ f_init = init; f_cond = cond; f_step = step }, body))
  | Lexer.KW "return" ->
    advance st;
    if accept_punct st ";" then Ast.at loc (Ast.S_return None)
    else begin
      let e = parse_expr st in
      eat_punct st ";";
      Ast.at loc (Ast.S_return (Some e))
    end
  | Lexer.KW "break" -> fail st "break is not supported"
  | Lexer.KW "continue" -> fail st "continue is not supported"
  | Lexer.KW "__shared__" -> parse_decl_stmt st
  | Lexer.KW _ when is_type_start st -> parse_decl_stmt st
  | Lexer.IDENT "__syncthreads" when peek2 st = Lexer.PUNCT "(" ->
    advance st;
    eat_punct st "(";
    eat_punct st ")";
    eat_punct st ";";
    Ast.at loc Ast.S_sync
  | Lexer.IDENT name when peek2 st = Lexer.PUNCT "<<<" ->
    advance st;
    advance st;
    let grid = parse_dim3 st in
    eat_punct st ",";
    let block = parse_dim3 st in
    eat_punct st ">>>";
    eat_punct st "(";
    let args = parse_args st in
    eat_punct st ";";
    Ast.at loc (Ast.S_launch (name, grid, block, args))
  | _ ->
    let e = parse_expr st in
    eat_punct st ";";
    Ast.at loc (Ast.S_expr e)

and parse_stmt_as_block st : Ast.stmt list =
  let s = parse_stmt st in
  match s.s with
  | Ast.S_block b -> b
  | _ -> [ s ]

and parse_block st : Ast.stmt list =
  let rec loop acc =
    if accept_punct st "}" then List.rev acc else loop (parse_stmt st :: acc)
  in
  loop []

and parse_decl_stmt st : Ast.stmt =
  let loc = cur_loc st in
  let shared = accept_kw st "__shared__" in
  let shared = shared || accept_kw st "__shared__" in
  let t = parse_type st in
  let rec one_decl acc =
    let dloc = cur_loc st in
    let name = expect_ident st in
    let dims = ref [] in
    while accept_punct st "[" do
      let d = parse_expr st in
      eat_punct st "]";
      dims := !dims @ [ d ]
    done;
    let init = if accept_punct st "=" then Some (parse_expr st) else None in
    let d =
      { Ast.d_type = t
      ; d_shared = shared
      ; d_name = name
      ; d_dims = !dims
      ; d_init = init
      ; d_loc = dloc
      }
    in
    if accept_punct st "," then one_decl (d :: acc)
    else begin
      eat_punct st ";";
      List.rev (d :: acc)
    end
  in
  match one_decl [] with
  | [ d ] -> Ast.at loc (Ast.S_decl d)
  | ds ->
    Ast.at loc
      (Ast.S_block (List.map (fun d -> Ast.at d.Ast.d_loc (Ast.S_decl d)) ds))

(* --- top level --- *)

let parse_qualifier st =
  if accept_kw st "__global__" then Some Ast.Q_global
  else if accept_kw st "__device__" then Some Ast.Q_device
  else if accept_kw st "__host__" then Some Ast.Q_host
  else None

let parse_func st : Ast.func =
  let loc = cur_loc st in
  let qual = match parse_qualifier st with Some q -> q | None -> Ast.Q_host in
  let ret = parse_type st in
  let name = expect_ident st in
  eat_punct st "(";
  let params =
    if accept_punct st ")" then []
    else begin
      let rec loop acc =
        let t = parse_type st in
        let n = expect_ident st in
        (* accept trailing [] on parameters: decays to pointer *)
        let t =
          if accept_punct st "[" then begin
            eat_punct st "]";
            Ast.Tptr t
          end
          else t
        in
        if accept_punct st "," then loop ((t, n) :: acc)
        else begin
          eat_punct st ")";
          List.rev ((t, n) :: acc)
        end
      in
      loop []
    end
  in
  eat_punct st "{";
  let body = parse_block st in
  { fn_qual = qual; fn_ret = ret; fn_name = name; fn_params = params
  ; fn_body = body; fn_loc = loc
  }

let parse_program (src : string) : Ast.program =
  let st = { toks = Lexer.tokenize src; pos = 0 } in
  let rec loop acc =
    match peek st with
    | Lexer.EOF -> List.rev acc
    | _ -> loop (parse_func st :: acc)
  in
  loop []
