(* Abstract syntax for mini-CUDA: the C-like CUDA subset the frontend
   accepts.  This plays the role of Clang's AST in Polygeist; the subset
   covers everything the Rodinia kernels and PyTorch custom kernels of the
   paper need: scalar/pointer/array types, [__global__]/[__device__]/
   [__shared__] qualifiers, SIMT builtin indices, [__syncthreads], kernel
   launches, and structured control flow. *)

type ctype =
  | Tvoid
  | Tbool
  | Tint
  | Tlong
  | Tfloat
  | Tdouble
  | Tptr of ctype

type dim =
  | X
  | Y
  | Z

type builtin =
  | Thread_idx
  | Block_idx
  | Block_dim
  | Grid_dim

type binop =
  | Badd
  | Bsub
  | Bmul
  | Bdiv
  | Bmod
  | Blt
  | Ble
  | Bgt
  | Bge
  | Beq
  | Bne
  | Bland (* && *)
  | Blor (* || *)
  | Bband
  | Bbor
  | Bxor
  | Bshl
  | Bshr

type unop =
  | Uneg
  | Unot (* ! *)
  | Ubnot (* ~ *)

type expr =
  | E_int of int
  | E_float of float * bool (* is_double *)
  | E_id of string
  | E_builtin of builtin * dim
  | E_bin of binop * expr * expr
  | E_un of unop * expr
  | E_call of string * expr list
  | E_index of expr * expr list (* a[i] or a[i][j] for 2-D arrays *)
  | E_deref of expr (* *p, equivalent to p[0] *)
  | E_cast of ctype * expr
  | E_cond of expr * expr * expr
  | E_assign of expr * expr
  | E_opassign of binop * expr * expr (* lhs op= rhs *)
  | E_incr of expr (* ++x / x++; value unused *)
  | E_decr of expr

(* Grid/block launch configuration: up to three extents. *)
type dim3 = expr * expr option * expr option

(* Statements carry the source position of their first token ([sloc]);
   expressions inherit the location of their enclosing statement, which is
   precise enough for access-level diagnostics.  Statements synthesized by
   AST rewrites (desugaring, return elimination) reuse the location of the
   construct they were derived from. *)
type stmt =
  { s : stmt_kind
  ; sloc : Ir.Srcloc.t
  }

and stmt_kind =
  | S_decl of decl
  | S_expr of expr
  | S_if of expr * stmt list * stmt list
  | S_for of for_header * stmt list
  | S_while of expr * stmt list
  | S_do_while of stmt list * expr
  | S_return of expr option
  | S_sync (* __syncthreads() *)
  | S_block of stmt list
  | S_launch of string * dim3 * dim3 * expr list
  | S_omp_for of for_header * stmt list
    (* a [#pragma omp parallel for] loop in host code: the hand-written
       OpenMP baselines of the Rodinia comparison *)

and decl =
  { d_type : ctype
  ; d_shared : bool
  ; d_name : string
  ; d_dims : expr list (* array dimensions; [] for scalars *)
  ; d_init : expr option
  ; d_loc : Ir.Srcloc.t
  }

and for_header =
  { f_init : stmt option (* S_decl or S_expr *)
  ; f_cond : expr option
  ; f_step : expr option
  }

(* Attach a location to a statement kind. *)
let at sloc s = { s; sloc }

(* A synthesized statement inheriting the location of [from_]. *)
let like (from_ : stmt) s = { s; sloc = from_.sloc }

type qualifier =
  | Q_global
  | Q_device
  | Q_host

type func =
  { fn_qual : qualifier
  ; fn_ret : ctype
  ; fn_name : string
  ; fn_params : (ctype * string) list
  ; fn_body : stmt list
  ; fn_loc : Ir.Srcloc.t
  }

type program = func list

let rec ctype_to_string = function
  | Tvoid -> "void"
  | Tbool -> "bool"
  | Tint -> "int"
  | Tlong -> "long"
  | Tfloat -> "float"
  | Tdouble -> "double"
  | Tptr t -> ctype_to_string t ^ "*"

let is_integer_type = function
  | Tbool | Tint | Tlong -> true
  | Tvoid | Tfloat | Tdouble | Tptr _ -> false

let is_float_type = function
  | Tfloat | Tdouble -> true
  | Tvoid | Tbool | Tint | Tlong | Tptr _ -> false
