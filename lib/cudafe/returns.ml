(* Early-return elimination at the AST level.

   The IR has structured control flow only, so [return] may appear solely
   as the last statement of a function.  This pass rewrites arbitrary
   returns (the idiomatic CUDA [if (tid >= n) return;] guard in
   particular) into flag-and-guard form:

   - a [__ret_flag] variable is set by every return (and [__ret_val]
     stores the returned value for non-void functions);
   - the statements following a may-return statement are guarded by
     [if (!__ret_flag)];
   - loops whose body may return get [&& !__ret_flag] folded into their
     condition ([for] loops are converted to [while] first).

   Synthesized statements inherit the source location of the statement
   they were derived from, so diagnostics still point at user code. *)

let flag = "__ret_flag"
let retv = "__ret_val"

let rec stmt_may_return (s : Ast.stmt) =
  match s.s with
  | Ast.S_return _ -> true
  | Ast.S_decl _ | Ast.S_expr _ | Ast.S_sync | Ast.S_launch _ -> false
  | Ast.S_if (_, a, b) -> stmts_may_return a || stmts_may_return b
  | Ast.S_for (_, b) | Ast.S_while (_, b) | Ast.S_do_while (b, _)
  | Ast.S_block b | Ast.S_omp_for (_, b) ->
    stmts_may_return b

and stmts_may_return l = List.exists stmt_may_return l

let not_flag = Ast.E_un (Ast.Unot, Ast.E_id flag)

let set_flag_at loc = Ast.at loc (Ast.S_expr (Ast.E_assign (Ast.E_id flag, Ast.E_int 1)))

(* Rewrite one statement; returns the replacement list. *)
let rec rewrite_stmt (s : Ast.stmt) : Ast.stmt list =
  let like k = Ast.like s k in
  match s.s with
  | Ast.S_return None -> [ set_flag_at s.sloc ]
  | Ast.S_return (Some e) ->
    [ like (Ast.S_expr (Ast.E_assign (Ast.E_id retv, e))); set_flag_at s.sloc ]
  | Ast.S_if (c, a, b) -> [ like (Ast.S_if (c, rewrite_stmts a, rewrite_stmts b)) ]
  | Ast.S_block b -> [ like (Ast.S_block (rewrite_stmts b)) ]
  | Ast.S_while (c, b) when stmts_may_return b ->
    [ like (Ast.S_while (Ast.E_bin (Ast.Bland, c, not_flag), rewrite_stmts b)) ]
  | Ast.S_do_while (b, c) when stmts_may_return b ->
    [ like (Ast.S_do_while (rewrite_stmts b, Ast.E_bin (Ast.Bland, c, not_flag))) ]
  | Ast.S_for (h, b) when stmts_may_return b ->
    (* for -> { init; while (cond && !flag) { body'; if (!flag) step; } } *)
    let cond = match h.f_cond with Some c -> c | None -> Ast.E_int 1 in
    let step =
      match h.f_step with
      | Some e -> [ like (Ast.S_if (not_flag, [ like (Ast.S_expr e) ], [])) ]
      | None -> []
    in
    let while_ =
      like
        (Ast.S_while
           (Ast.E_bin (Ast.Bland, cond, not_flag), rewrite_stmts b @ step))
    in
    [ like (Ast.S_block (Option.to_list h.f_init @ [ while_ ])) ]
  | Ast.S_omp_for (_, b) when stmts_may_return b ->
    invalid_arg "return inside #pragma omp parallel for is not supported"
  | Ast.S_decl _ | Ast.S_expr _ | Ast.S_sync | Ast.S_launch _ | Ast.S_for _
  | Ast.S_while _ | Ast.S_do_while _ | Ast.S_omp_for _ ->
    [ s ]

(* Rewrite a statement list, guarding the remainder after each may-return
   statement. *)
and rewrite_stmts (l : Ast.stmt list) : Ast.stmt list =
  match l with
  | [] -> []
  | s :: rest ->
    let s' = rewrite_stmt s in
    let rest' = rewrite_stmts rest in
    if stmt_may_return s && rest' <> [] then
      s' @ [ Ast.like s (Ast.S_if (not_flag, rest', [])) ]
    else s' @ rest'

(* Is [return] already only in the trivial position (last top-level
   statement, or absent)?  Then no rewriting is needed. *)
let trivial (body : Ast.stmt list) =
  let rec check = function
    | [] -> true
    | [ { Ast.s = Ast.S_return _; _ } ] -> true
    | s :: rest -> (not (stmt_may_return s)) && check rest
  in
  check body

let eliminate (f : Ast.func) : Ast.func =
  if trivial f.fn_body then f
  else begin
    let loc = f.fn_loc in
    let decls =
      Ast.at loc
        (Ast.S_decl
           { d_type = Ast.Tint; d_shared = false; d_name = flag; d_dims = []
           ; d_init = Some (Ast.E_int 0); d_loc = loc
           })
      ::
      (if f.fn_ret = Ast.Tvoid then []
       else
         [ Ast.at loc
             (Ast.S_decl
                { d_type = f.fn_ret; d_shared = false; d_name = retv
                ; d_dims = []
                ; d_init = Some (Ast.E_int 0); d_loc = loc
                })
         ])
    in
    let body = rewrite_stmts f.fn_body in
    let final_return =
      if f.fn_ret = Ast.Tvoid then []
      else [ Ast.at loc (Ast.S_return (Some (Ast.E_id retv))) ]
    in
    { f with fn_body = decls @ body @ final_return }
  end
