(* Lowering of the mini-CUDA AST into the parallel IR, following Sec. III
   of the paper.  A kernel launch becomes, directly at the host call site:

     scf.parallel<grid> (%bx,%by,%bz) = (0,0,0) to (gx,gy,gz) {
       %shared.. = memref.alloca        // one per __shared__ declaration
       scf.parallel<block> (%tx,%ty,%tz) = (0,0,0) to (bx,by,bz) {
         <kernel body with __syncthreads -> polygeist.barrier>
       }
     }

   Mutable C locals become rank-0 allocas with loads/stores (Polygeist
   does the same); the mem2reg pass later promotes them to SSA, including
   across barriers.  Canonical [for] loops are raised to [scf.for] with an
   SSA induction variable; everything else becomes [scf.while]. *)

open Ir

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let dtype_of_ctype = function
  | Ast.Tbool -> Types.I1
  | Ast.Tint | Ast.Tlong -> Types.Index
  | Ast.Tfloat -> Types.F32
  | Ast.Tdouble -> Types.F64
  | Ast.Tvoid -> fail "void has no runtime type"
  | Ast.Tptr _ -> fail "pointer is not a scalar type"

type varinfo =
  | Direct of Value.t * Ast.ctype (* immutable SSA: loop iv, pointer param *)
  | Slot of Value.t * Ast.ctype (* rank-0 memref holding a mutable scalar *)
  | Arr of Value.t * Ast.ctype (* rank-n memref; ctype is the element type *)

type simt =
  { tid : Value.t array (* threadIdx.{x,y,z} *)
  ; bid : Value.t array
  ; bdim : Value.t array
  ; gdim : Value.t array
  ; shfl_scratch : Value.t option
    (* per-block scratch backing the warp shuffle emulation *)
  ; block_size : Value.t option (* bx*by*bz, for shuffle bounds *)
  }

type env =
  { program : Ast.program
  ; mutable vars : (string * varinfo) list
  ; mutable seq : Builder.Seq.t
  ; simt : simt option
  ; mutable cur_loc : Srcloc.t
    (* location of the statement currently being lowered; stamped onto
       every op emitted for it *)
  }

let lookup env name =
  match List.assoc_opt name env.vars with
  | Some v -> v
  | None -> fail "undeclared identifier '%s'" name

let bind env name info = env.vars <- (name, info) :: env.vars

let scoped env f =
  let saved = env.vars in
  let r = f () in
  env.vars <- saved;
  r

let locate env (op : Op.op) =
  if op.loc = None && Srcloc.is_known env.cur_loc then
    op.loc <- Some env.cur_loc;
  op

let emit env op = ignore (Builder.Seq.emit env.seq (locate env op))
let emitv env op = Builder.Seq.emitv env.seq (locate env op)

(* Emit into a fresh sequence, returning the op list. *)
let in_seq env f =
  let saved = env.seq in
  env.seq <- Builder.Seq.create ();
  f ();
  let ops = Builder.Seq.to_list env.seq in
  env.seq <- saved;
  ops

let find_fn env name =
  List.find_opt (fun (f : Ast.func) -> f.fn_name = name) env.program

(* --- constant evaluation (for shared array dims) --- *)

let rec eval_const (e : Ast.expr) : int option =
  match e with
  | Ast.E_int n -> Some n
  | Ast.E_bin (op, a, b) -> begin
    match eval_const a, eval_const b with
    | Some a, Some b -> begin
      match op with
      | Ast.Badd -> Some (a + b)
      | Ast.Bsub -> Some (a - b)
      | Ast.Bmul -> Some (a * b)
      | Ast.Bdiv -> if b = 0 then None else Some (a / b)
      | Ast.Bmod -> if b = 0 then None else Some (a mod b)
      | Ast.Bshl -> Some (a lsl b)
      | Ast.Bshr -> Some (a asr b)
      | _ -> None
    end
    | _ -> None
  end
  | Ast.E_un (Ast.Uneg, a) -> Option.map (fun x -> -x) (eval_const a)
  | Ast.E_cast (_, a) -> eval_const a
  | _ -> None

(* --- numeric coercions --- *)

let unify_arith (ta : Ast.ctype) (tb : Ast.ctype) : Ast.ctype =
  match ta, tb with
  | Ast.Tdouble, _ | _, Ast.Tdouble -> Ast.Tdouble
  | Ast.Tfloat, _ | _, Ast.Tfloat -> Ast.Tfloat
  | Ast.Tlong, _ | _, Ast.Tlong -> Ast.Tlong
  | _ -> Ast.Tint

let coerce env (v : Value.t) (from_ : Ast.ctype) (to_ : Ast.ctype) : Value.t =
  match from_, to_ with
  | a, b when a = b -> v
  | (Ast.Tint | Ast.Tlong), (Ast.Tint | Ast.Tlong) -> v
  | Ast.Tbool, (Ast.Tint | Ast.Tlong) -> emitv env (Builder.cast Types.Index v)
  | (Ast.Tint | Ast.Tlong | Ast.Tbool), (Ast.Tfloat | Ast.Tdouble) ->
    emitv env (Builder.cast (dtype_of_ctype to_) v)
  | (Ast.Tfloat | Ast.Tdouble), (Ast.Tint | Ast.Tlong) ->
    emitv env (Builder.cast Types.Index v)
  | (Ast.Tfloat | Ast.Tdouble), (Ast.Tfloat | Ast.Tdouble) ->
    emitv env (Builder.cast (dtype_of_ctype to_) v)
  | (Ast.Tint | Ast.Tlong | Ast.Tfloat | Ast.Tdouble), Ast.Tbool ->
    let zero =
      if Ast.is_float_type from_ then
        emitv env (Builder.const_float ~dtype:(dtype_of_ctype from_) 0.0)
      else emitv env (Builder.const_int 0)
    in
    emitv env (Builder.cmp Op.Ne v zero)
  | Ast.Tptr _, Ast.Tptr _ -> v
  | _ -> fail "unsupported conversion %s -> %s" (Ast.ctype_to_string from_)
           (Ast.ctype_to_string to_)

(* --- expression codegen --- *)

let warp_size = 32

(* Does the statement tree call a warp-level primitive?  If so the launch
   allocates a per-block scratch buffer for the shuffle emulation. *)
let rec uses_warp_primitive (s : Ast.stmt) : bool =
  let rec in_expr = function
    | Ast.E_call (("__shfl_down_sync" | "__shfl_up_sync" | "__shfl_xor_sync"), _)
      ->
      true
    | Ast.E_call (_, l) -> List.exists in_expr l
    | Ast.E_bin (_, a, b) | Ast.E_assign (a, b) | Ast.E_opassign (_, a, b) ->
      in_expr a || in_expr b
    | Ast.E_un (_, a) | Ast.E_deref a | Ast.E_cast (_, a) | Ast.E_incr a
    | Ast.E_decr a ->
      in_expr a
    | Ast.E_cond (a, b, c) -> in_expr a || in_expr b || in_expr c
    | Ast.E_index (a, l) -> in_expr a || List.exists in_expr l
    | Ast.E_int _ | Ast.E_float _ | Ast.E_id _ | Ast.E_builtin _ -> false
  in
  match s.s with
  | Ast.S_decl { d_init = Some e; _ } -> in_expr e
  | Ast.S_decl _ | Ast.S_sync | Ast.S_return None -> false
  | Ast.S_expr e | Ast.S_return (Some e) -> in_expr e
  | Ast.S_if (c, a, b) ->
    in_expr c || List.exists uses_warp_primitive (a @ b)
  | Ast.S_for (h, b) | Ast.S_omp_for (h, b) ->
    Option.fold ~none:false ~some:in_expr h.f_cond
    || Option.fold ~none:false ~some:in_expr h.f_step
    || Option.fold ~none:false ~some:uses_warp_primitive h.f_init
    || List.exists uses_warp_primitive b
  | Ast.S_while (c, b) | Ast.S_do_while (b, c) ->
    in_expr c || List.exists uses_warp_primitive b
  | Ast.S_block b -> List.exists uses_warp_primitive b
  | Ast.S_launch (_, _, _, args) -> List.exists in_expr args

let math_builtins =
  [ "sqrtf", Op.Sqrt; "sqrt", Op.Sqrt; "expf", Op.Exp; "exp", Op.Exp
  ; "logf", Op.Log; "log", Op.Log; "log2f", Op.Log2; "log2", Op.Log2
  ; "fabsf", Op.Fabs; "fabs", Op.Fabs; "floorf", Op.Floor; "floor", Op.Floor
  ; "sinf", Op.Sin; "sin", Op.Sin; "cosf", Op.Cos; "cos", Op.Cos
  ; "tanhf", Op.Tanh; "tanh", Op.Tanh; "erff", Op.Erf; "erf", Op.Erf
  ]

let rec gen_expr env (e : Ast.expr) : Value.t * Ast.ctype =
  match e with
  | Ast.E_int n -> (emitv env (Builder.const_int n), Ast.Tint)
  | Ast.E_float (f, is_double) ->
    let d = if is_double then Types.F64 else Types.F32 in
    (emitv env (Builder.const_float ~dtype:d f), if is_double then Ast.Tdouble else Ast.Tfloat)
  | Ast.E_id name -> begin
    match lookup env name with
    | Direct (v, ct) -> (v, ct)
    | Slot (m, ct) -> (emitv env (Builder.load m []), ct)
    | Arr (m, elem) -> (m, Ast.Tptr elem)
  end
  | Ast.E_builtin (b, d) -> begin
    match env.simt with
    | None -> fail "SIMT builtin used outside a kernel"
    | Some s ->
      let i = match d with Ast.X -> 0 | Ast.Y -> 1 | Ast.Z -> 2 in
      let arr =
        match b with
        | Ast.Thread_idx -> s.tid
        | Ast.Block_idx -> s.bid
        | Ast.Block_dim -> s.bdim
        | Ast.Grid_dim -> s.gdim
      in
      (arr.(i), Ast.Tint)
  end
  | Ast.E_bin ((Ast.Bland | Ast.Blor) as op, a, b) -> gen_shortcircuit env op a b
  | Ast.E_bin (op, a, b) -> gen_binop env op a b
  | Ast.E_un (Ast.Uneg, a) ->
    let v, t = gen_expr env a in
    if Ast.is_float_type t then (emitv env (Builder.math Op.Neg [ v ]), t)
    else begin
      let z = emitv env (Builder.const_int 0) in
      (emitv env (Builder.binop Op.Sub z v), t)
    end
  | Ast.E_un (Ast.Unot, a) ->
    let v, t = gen_expr env a in
    let b = coerce env v t Ast.Tbool in
    let one = emitv env (Builder.const_int ~dtype:Types.I1 1) in
    (emitv env (Builder.binop Op.Xor b one), Ast.Tbool)
  | Ast.E_un (Ast.Ubnot, a) ->
    let v, t = gen_expr env a in
    let m1 = emitv env (Builder.const_int (-1)) in
    (emitv env (Builder.binop Op.Xor v m1), t)
  | Ast.E_deref e' -> begin
    (* *(p + off) is p[off] *)
    match e' with
    | Ast.E_bin (Ast.Badd, p, off) -> gen_expr env (Ast.E_index (p, [ off ]))
    | _ -> gen_expr env (Ast.E_index (e', [ Ast.E_int 0 ]))
  end
  | Ast.E_index _ ->
    let base, idxs, elem = gen_lvalue_mem env e in
    (emitv env (Builder.load base idxs), elem)
  | Ast.E_cast (t, e') -> gen_cast env t e'
  | Ast.E_cond (c, a, b) ->
    (* C ternary is lazy: a branch may guard an out-of-bounds access, so
       each side lowers into its own region of an scf.if feeding a
       temporary slot. *)
    let cv, ct = gen_expr env c in
    let cb = coerce env cv ct Ast.Tbool in
    let in_seq_v f =
      let saved = env.seq in
      env.seq <- Builder.Seq.create ();
      let r = f () in
      let ops = Builder.Seq.to_list env.seq in
      env.seq <- saved;
      (ops, r)
    in
    let a_ops, (av, at) = in_seq_v (fun () -> gen_expr env a) in
    let b_ops, (bv, bt) = in_seq_v (fun () -> gen_expr env b) in
    let t = unify_arith at bt in
    let slot = emitv env (Builder.alloca (dtype_of_ctype t) []) in
    let a_cast, av' = in_seq_v (fun () -> coerce env av at t) in
    let b_cast, bv' = in_seq_v (fun () -> coerce env bv bt t) in
    emit env
      (Builder.if_ cb
         (a_ops @ a_cast @ [ locate env (Builder.store av' slot []) ])
         ~else_:(b_ops @ b_cast @ [ locate env (Builder.store bv' slot []) ]));
    (emitv env (Builder.load slot []), t)
  | Ast.E_assign (lhs, rhs) ->
    let v, t = gen_expr env rhs in
    gen_store env lhs v t
  | Ast.E_opassign (op, lhs, rhs) ->
    let cur, _ = gen_expr env lhs in
    ignore cur;
    gen_expr env (Ast.E_assign (lhs, Ast.E_bin (op, lhs, rhs)))
  | Ast.E_incr lhs ->
    gen_expr env (Ast.E_assign (lhs, Ast.E_bin (Ast.Badd, lhs, Ast.E_int 1)))
  | Ast.E_decr lhs ->
    gen_expr env (Ast.E_assign (lhs, Ast.E_bin (Ast.Bsub, lhs, Ast.E_int 1)))
  | Ast.E_call (name, args) -> gen_call env name args

(* Warp shuffle emulation (the warp-level primitives COX handles): every
   thread publishes its value in a per-block scratch slot, a block barrier
   (stronger than the warp sync the primitive implies) orders the
   exchange, and each thread reads its partner's slot.  Out-of-warp
   partners return the thread's own value, as CUDA specifies.  Shuffles
   must sit in uniform control flow, which CUDA requires anyway. *)
and gen_shuffle env (name : string) (v_expr : Ast.expr)
    (lane_expr : Ast.expr) : Value.t * Ast.ctype =
  match env.simt with
  | None -> fail "%s outside a kernel" name
  | Some simt -> begin
    match simt.shfl_scratch, simt.block_size with
    | Some scratch, Some bsize ->
      let v, vt = gen_expr env v_expr in
      let v = coerce env v vt Ast.Tfloat in
      let d, dt = gen_expr env lane_expr in
      let d = coerce env d dt Ast.Tint in
      (* linear thread id within the block *)
      let bx = simt.bdim.(0) and by = simt.bdim.(1) in
      let tz_part = emitv env (Builder.binop Op.Mul simt.tid.(2) by) in
      let yz = emitv env (Builder.binop Op.Add simt.tid.(1) tz_part) in
      let yz_scaled = emitv env (Builder.binop Op.Mul yz bx) in
      let lin = emitv env (Builder.binop Op.Add simt.tid.(0) yz_scaled) in
      let cw = emitv env (Builder.const_int warp_size) in
      let lane = emitv env (Builder.binop Op.Rem lin cw) in
      emit env (Builder.store v scratch [ lin ]);
      emit env (Builder.barrier ());
      let target_lane =
        match name with
        | "__shfl_down_sync" -> emitv env (Builder.binop Op.Add lane d)
        | "__shfl_up_sync" -> emitv env (Builder.binop Op.Sub lane d)
        | _ -> emitv env (Builder.binop Op.Xor lane d)
      in
      let c0 = emitv env (Builder.const_int 0) in
      let in_warp_lo = emitv env (Builder.cmp Op.Ge target_lane c0) in
      let in_warp_hi = emitv env (Builder.cmp Op.Lt target_lane cw) in
      let in_warp = emitv env (Builder.binop Op.And in_warp_lo in_warp_hi) in
      let base = emitv env (Builder.binop Op.Sub lin lane) in
      let partner = emitv env (Builder.binop Op.Add base target_lane) in
      let c1b = emitv env (Builder.const_int 1) in
      let bmax = emitv env (Builder.binop Op.Sub bsize c1b) in
      let clamped0 = emitv env (Builder.binop Op.Max partner c0) in
      let clamped = emitv env (Builder.binop Op.Min clamped0 bmax) in
      let in_block = emitv env (Builder.cmp Op.Lt partner bsize) in
      let ok = emitv env (Builder.binop Op.And in_warp in_block) in
      let ld = emitv env (Builder.load scratch [ clamped ]) in
      let res = emitv env (Builder.select ok ld v) in
      (* a second barrier keeps later scratch writes from racing earlier
         reads *)
      emit env (Builder.barrier ());
      (res, Ast.Tfloat)
    | _ -> fail "internal: shuffle scratch missing"
  end

and gen_store env (lhs : Ast.expr) (v : Value.t) (t : Ast.ctype) :
  Value.t * Ast.ctype =
  match lhs with
  | Ast.E_id name -> begin
    match lookup env name with
    | Slot (m, ct) ->
      let v' = coerce env v t ct in
      emit env (Builder.store v' m []);
      (v', ct)
    | Direct _ -> fail "cannot assign to immutable binding '%s'" name
    | Arr _ -> fail "cannot assign to array '%s'" name
  end
  | Ast.E_index _ | Ast.E_deref _ ->
    let base, idxs, elem = gen_lvalue_mem env lhs in
    let v' = coerce env v t elem in
    emit env (Builder.store v' base idxs);
    (v', elem)
  | _ -> fail "unsupported assignment target"

and gen_lvalue_mem env (e : Ast.expr) : Value.t * Value.t list * Ast.ctype =
  match e with
  | Ast.E_deref (Ast.E_bin (Ast.Badd, p, off)) ->
    gen_lvalue_mem env (Ast.E_index (p, [ off ]))
  | Ast.E_deref p -> gen_lvalue_mem env (Ast.E_index (p, [ Ast.E_int 0 ]))
  | Ast.E_index (base, idxs) ->
    let bv, bt = gen_expr env base in
    let elem =
      match bt with
      | Ast.Tptr t -> t
      | _ -> fail "indexing a non-pointer value"
    in
    let rank = Types.rank bv.typ in
    if List.length idxs <> rank then
      fail "expected %d indices, got %d" rank (List.length idxs);
    let idxs =
      List.map
        (fun i ->
          let v, t = gen_expr env i in
          coerce env v t Ast.Tint)
        idxs
    in
    (bv, idxs, elem)
  | _ -> fail "unsupported memory lvalue"

and gen_binop env op a b : Value.t * Ast.ctype =
  let av, at = gen_expr env a in
  let bv, bt = gen_expr env b in
  let arith kind =
    let t = unify_arith at bt in
    let av = coerce env av at t in
    let bv = coerce env bv bt t in
    (emitv env (Builder.binop kind av bv), t)
  in
  let int_only kind =
    if Ast.is_float_type at || Ast.is_float_type bt then
      fail "bitwise operator on float";
    let av = coerce env av at Ast.Tint in
    let bv = coerce env bv bt Ast.Tint in
    (emitv env (Builder.binop kind av bv), Ast.Tint)
  in
  let compare pred =
    let t = unify_arith at bt in
    let av = coerce env av at t in
    let bv = coerce env bv bt t in
    (emitv env (Builder.cmp pred av bv), Ast.Tbool)
  in
  match op with
  | Ast.Badd -> arith Op.Add
  | Ast.Bsub -> arith Op.Sub
  | Ast.Bmul -> arith Op.Mul
  | Ast.Bdiv -> arith Op.Div
  | Ast.Bmod -> int_only Op.Rem
  | Ast.Bband -> int_only Op.And
  | Ast.Bbor -> int_only Op.Or
  | Ast.Bxor -> int_only Op.Xor
  | Ast.Bshl -> int_only Op.Shl
  | Ast.Bshr -> int_only Op.Shr
  | Ast.Blt -> compare Op.Lt
  | Ast.Ble -> compare Op.Le
  | Ast.Bgt -> compare Op.Gt
  | Ast.Bge -> compare Op.Ge
  | Ast.Beq -> compare Op.Eq
  | Ast.Bne -> compare Op.Ne
  | Ast.Bland | Ast.Blor -> assert false

(* Short-circuit evaluation through a temporary slot, so that the RHS is
   only evaluated when needed (guarding patterns like
   [i < n && data[i] > 0]). *)
and gen_shortcircuit env op a b : Value.t * Ast.ctype =
  let slot = emitv env (Builder.alloca Types.I1 []) in
  let av, at = gen_expr env a in
  let ab = coerce env av at Ast.Tbool in
  let rhs_ops =
    in_seq env (fun () ->
        let bv, bt = gen_expr env b in
        let bb = coerce env bv bt Ast.Tbool in
        emit env (Builder.store bb slot []))
  in
  (match op with
   | Ast.Bland ->
     (* slot := false; if a then slot := b *)
     let f = emitv env (Builder.const_int ~dtype:Types.I1 0) in
     emit env (Builder.store f slot []);
     emit env (Builder.if_ ab rhs_ops)
   | Ast.Blor ->
     (* slot := true; if !a then slot := b *)
     let t = emitv env (Builder.const_int ~dtype:Types.I1 1) in
     emit env (Builder.store t slot []);
     let one = emitv env (Builder.const_int ~dtype:Types.I1 1) in
     let na = emitv env (Builder.binop Op.Xor ab one) in
     emit env (Builder.if_ na rhs_ops)
   | _ -> assert false);
  (emitv env (Builder.load slot []), Ast.Tbool)

and gen_cast env (t : Ast.ctype) (e : Ast.expr) : Value.t * Ast.ctype =
  match t, e with
  (* casting malloc(bytes) to a pointer: allocate count = bytes / sizeof *)
  | Ast.Tptr elem, Ast.E_call ("malloc", [ size ]) ->
    let sv, st = gen_expr env size in
    let sv = coerce env sv st Ast.Tint in
    let bytes = Types.dtype_bytes (dtype_of_ctype elem) in
    let bv = emitv env (Builder.const_int bytes) in
    let count = emitv env (Builder.binop Op.Div sv bv) in
    let a =
      emitv env (Builder.alloc (dtype_of_ctype elem) [ None ] [ count ])
    in
    (a, Ast.Tptr elem)
  | Ast.Tptr _, _ ->
    let v, t' = gen_expr env e in
    (match t' with
     | Ast.Tptr _ -> (v, t)
     | _ -> fail "unsupported pointer cast")
  | _, _ ->
    let v, t' = gen_expr env e in
    (coerce env v t' t, t)

and gen_call env name (args : Ast.expr list) : Value.t * Ast.ctype =
  match name, args with
  | ("min" | "fminf" | "fmin"), [ a; b ] ->
    let av, at = gen_expr env a in
    let bv, bt = gen_expr env b in
    let t = unify_arith at bt in
    (emitv env (Builder.binop Op.Min (coerce env av at t) (coerce env bv bt t)), t)
  | ("max" | "fmaxf" | "fmax"), [ a; b ] ->
    let av, at = gen_expr env a in
    let bv, bt = gen_expr env b in
    let t = unify_arith at bt in
    (emitv env (Builder.binop Op.Max (coerce env av at t) (coerce env bv bt t)), t)
  | ("powf" | "pow"), [ a; b ] ->
    let av, at = gen_expr env a in
    let bv, bt = gen_expr env b in
    let ft = if at = Ast.Tdouble || bt = Ast.Tdouble then Ast.Tdouble else Ast.Tfloat in
    (emitv env (Builder.math Op.Pow [ coerce env av at ft; coerce env bv bt ft ]), ft)
  | "abs", [ a ] ->
    let av, at = gen_expr env a in
    if Ast.is_float_type at then (emitv env (Builder.math Op.Fabs [ av ]), at)
    else begin
      let z = emitv env (Builder.const_int 0) in
      let n = emitv env (Builder.binop Op.Sub z av) in
      (emitv env (Builder.binop Op.Max av n), at)
    end
  | "rsqrtf", [ a ] ->
    let av, at = gen_expr env a in
    let av = coerce env av at Ast.Tfloat in
    let s = emitv env (Builder.math Op.Sqrt [ av ]) in
    let one = emitv env (Builder.const_float 1.0) in
    (emitv env (Builder.binop Op.Div one s), Ast.Tfloat)
  | ("cudaDeviceSynchronize" | "cudaThreadSynchronize"), [] ->
    (emitv env (Builder.const_int 0), Ast.Tint)
  | "__syncwarp", _ -> begin
    (* a block barrier over-synchronizes a warp sync, which is always
       legal (extra barriers only reduce parallelism) *)
    match env.simt with
    | None -> fail "__syncwarp outside a kernel"
    | Some _ ->
      emit env (Builder.barrier ());
      (emitv env (Builder.const_int 0), Ast.Tint)
  end
  | ("__shfl_down_sync" | "__shfl_up_sync" | "__shfl_xor_sync"), [ _mask; v; lane_arg ]
    ->
    gen_shuffle env name v lane_arg
  | "free", [ p ] ->
    let pv, _ = gen_expr env p in
    emit env (Builder.dealloc pv);
    (emitv env (Builder.const_int 0), Ast.Tint)
  | _, _ -> begin
    match List.assoc_opt name math_builtins with
    | Some fn ->
      let a = match args with [ a ] -> a | _ -> fail "%s expects 1 arg" name in
      let av, at = gen_expr env a in
      let ft = if at = Ast.Tdouble then Ast.Tdouble else Ast.Tfloat in
      (emitv env (Builder.math fn [ coerce env av at ft ]), ft)
    | None -> begin
      match find_fn env name with
      | Some f ->
        if List.length args <> List.length f.fn_params then
          fail "call to %s: wrong arity" name;
        let vals =
          List.map2
            (fun (pt, _) a ->
              let v, t = gen_expr env a in
              match pt with
              | Ast.Tptr _ -> v
              | _ -> coerce env v t pt)
            f.fn_params args
        in
        let ret =
          match f.fn_ret with
          | Ast.Tvoid -> None
          | t -> Some (Types.Scalar (dtype_of_ctype t))
        in
        let c = Builder.call name ?ret vals in
        emit env c;
        (match f.fn_ret with
         | Ast.Tvoid -> (emitv env (Builder.const_int 0), Ast.Tint)
         | t -> (Op.result c, t))
      | None -> fail "call to unknown function '%s'" name
    end
  end

(* --- statements --- *)

let rec assigns_var name (s : Ast.stmt) : bool =
  let rec in_expr (e : Ast.expr) =
    match e with
    | Ast.E_assign (Ast.E_id n, _) | Ast.E_opassign (_, Ast.E_id n, _)
    | Ast.E_incr (Ast.E_id n)
    | Ast.E_decr (Ast.E_id n)
      when n = name ->
      true
    | Ast.E_assign (a, b) | Ast.E_opassign (_, a, b) | Ast.E_bin (_, a, b) ->
      in_expr a || in_expr b
    | Ast.E_un (_, a) | Ast.E_deref a | Ast.E_cast (_, a) | Ast.E_incr a
    | Ast.E_decr a ->
      in_expr a
    | Ast.E_cond (a, b, c) -> in_expr a || in_expr b || in_expr c
    | Ast.E_call (_, l) -> List.exists in_expr l
    | Ast.E_index (a, l) -> in_expr a || List.exists in_expr l
    | Ast.E_int _ | Ast.E_float _ | Ast.E_id _ | Ast.E_builtin _ -> false
  in
  match s.s with
  | Ast.S_decl { d_init = Some e; _ } -> in_expr e
  | Ast.S_decl _ -> false
  | Ast.S_expr e -> in_expr e
  | Ast.S_if (c, a, b) ->
    in_expr c || List.exists (assigns_var name) a
    || List.exists (assigns_var name) b
  | Ast.S_for (h, b) | Ast.S_omp_for (h, b) ->
    Option.fold ~none:false ~some:(assigns_var name) h.f_init
    || Option.fold ~none:false ~some:in_expr h.f_cond
    || Option.fold ~none:false ~some:in_expr h.f_step
    || List.exists (assigns_var name) b
  | Ast.S_while (c, b) -> in_expr c || List.exists (assigns_var name) b
  | Ast.S_do_while (b, c) -> in_expr c || List.exists (assigns_var name) b
  | Ast.S_return (Some e) -> in_expr e
  | Ast.S_return None | Ast.S_sync -> false
  | Ast.S_block b -> List.exists (assigns_var name) b
  | Ast.S_launch (_, _, _, args) -> List.exists in_expr args

(* Recognize a canonical counted loop that can be raised to scf.for. *)
type canonical =
  { c_var : string
  ; c_type : Ast.ctype
  ; c_lo : Ast.expr
  ; c_hi : Ast.expr (* exclusive *)
  ; c_step : Ast.expr
  }

let canonical_for (h : Ast.for_header) (body : Ast.stmt list) :
  canonical option =
  let var_and_lo =
    match h.f_init with
    | Some { Ast.s =
               Ast.S_decl
                 { d_name; d_type; d_dims = []; d_init = Some lo
                 ; d_shared = false; _ }
           ; _ }
      when Ast.is_integer_type d_type ->
      Some (d_name, d_type, lo)
    | _ -> None
  in
  match var_and_lo with
  | None -> None
  | Some (name, t, lo) ->
    let hi =
      match h.f_cond with
      | Some (Ast.E_bin (Ast.Blt, Ast.E_id n, hi)) when n = name -> Some hi
      | Some (Ast.E_bin (Ast.Ble, Ast.E_id n, hi)) when n = name ->
        Some (Ast.E_bin (Ast.Badd, hi, Ast.E_int 1))
      | _ -> None
    in
    let step =
      match h.f_step with
      | Some (Ast.E_incr (Ast.E_id n)) when n = name -> Some (Ast.E_int 1)
      | Some (Ast.E_opassign (Ast.Badd, Ast.E_id n, s)) when n = name ->
        Some s
      | Some (Ast.E_assign (Ast.E_id n, Ast.E_bin (Ast.Badd, Ast.E_id n', s)))
        when n = name && n' = name ->
        Some s
      | Some (Ast.E_assign (Ast.E_id n, Ast.E_bin (Ast.Badd, s, Ast.E_id n')))
        when n = name && n' = name ->
        Some s
      | _ -> None
    in
    (* hi and step must not depend on the iv; body must not assign it. *)
    let uses_var e =
      let rec go = function
        | Ast.E_id n -> n = name
        | Ast.E_int _ | Ast.E_float _ | Ast.E_builtin _ -> false
        | Ast.E_bin (_, a, b) | Ast.E_assign (a, b) | Ast.E_opassign (_, a, b)
          -> go a || go b
        | Ast.E_un (_, a) | Ast.E_deref a | Ast.E_cast (_, a) | Ast.E_incr a
        | Ast.E_decr a -> go a
        | Ast.E_cond (a, b, c) -> go a || go b || go c
        | Ast.E_call (_, l) -> List.exists go l
        | Ast.E_index (a, l) -> go a || List.exists go l
      in
      go e
    in
    (match hi, step with
     | Some hi, Some step
       when (not (uses_var hi)) && (not (uses_var step))
            && not (List.exists (assigns_var name) body) ->
       Some { c_var = name; c_type = t; c_lo = lo; c_hi = hi; c_step = step }
     | _ -> None)

let gen_index_expr env e =
  let v, t = gen_expr env e in
  coerce env v t Ast.Tint

let rec gen_stmt env (s : Ast.stmt) : unit =
  env.cur_loc <- s.sloc;
  (* Lowering a body mutates [cur_loc]; reinstate the statement's own
     location before emitting its structured op. *)
  let emit_here env op =
    env.cur_loc <- s.sloc;
    emit env op
  in
  match s.s with
  | Ast.S_decl d -> gen_decl env d
  | Ast.S_expr e -> ignore (gen_expr env e)
  | Ast.S_if (c, then_, else_) ->
    let cv, ct = gen_expr env c in
    let cb = coerce env cv ct Ast.Tbool in
    let then_ops =
      in_seq env (fun () -> scoped env (fun () -> List.iter (gen_stmt env) then_))
    in
    let else_ops =
      in_seq env (fun () -> scoped env (fun () -> List.iter (gen_stmt env) else_))
    in
    emit_here env (Builder.if_ cb then_ops ~else_:else_ops)
  | Ast.S_for (h, body) -> begin
    match canonical_for h body with
    | Some c ->
      let lo = gen_index_expr env c.c_lo in
      let hi = gen_index_expr env c.c_hi in
      let step = gen_index_expr env c.c_step in
      let loop =
        Builder.for_ ~lo ~hi ~step (fun iv ->
            in_seq env (fun () ->
                scoped env (fun () ->
                    bind env c.c_var (Direct (iv, c.c_type));
                    List.iter (gen_stmt env) body)))
      in
      emit_here env loop
    | None ->
      (* generic lowering: { init; while (cond) { body; step; } } *)
      scoped env (fun () ->
          Option.iter (gen_stmt env) h.f_init;
          let cond = match h.f_cond with Some c -> c | None -> Ast.E_int 1 in
          let step =
            match h.f_step with
            | Some e -> [ Ast.like s (Ast.S_expr e) ]
            | None -> []
          in
          gen_stmt env (Ast.like s (Ast.S_while (cond, body @ step))))
  end
  | Ast.S_while (c, body) ->
    let cond_ops =
      in_seq env (fun () ->
          env.cur_loc <- s.sloc;
          let cv, ct = gen_expr env c in
          let cb = coerce env cv ct Ast.Tbool in
          emit env (Builder.condition cb))
    in
    let body_ops =
      in_seq env (fun () -> scoped env (fun () -> List.iter (gen_stmt env) body))
    in
    emit_here env (Builder.while_ ~cond_body:cond_ops ~body:body_ops)
  | Ast.S_do_while (body, c) ->
    (* do-while maps to a while whose condition region performs the body
       first (MLIR scf.while "before" region). *)
    let cond_ops =
      in_seq env (fun () ->
          scoped env (fun () ->
              List.iter (gen_stmt env) body;
              env.cur_loc <- s.sloc;
              let cv, ct = gen_expr env c in
              let cb = coerce env cv ct Ast.Tbool in
              emit env (Builder.condition cb)))
    in
    emit_here env (Builder.while_ ~cond_body:cond_ops ~body:[])
  | Ast.S_return None -> emit env (Builder.return_ [])
  | Ast.S_return (Some e) ->
    let v, _ = gen_expr env e in
    emit env (Builder.return_ [ v ])
  | Ast.S_sync ->
    if env.simt = None then fail "__syncthreads outside a kernel";
    emit env (Builder.barrier ())
  | Ast.S_block b -> scoped env (fun () -> List.iter (gen_stmt env) b)
  | Ast.S_launch (name, grid, block, args) -> gen_launch env name grid block args
  | Ast.S_omp_for (h, body) -> begin
    (* hand-written OpenMP baseline loop: a flat parallel loop *)
    match canonical_for h body with
    | Some c ->
      let lo = gen_index_expr env c.c_lo in
      let hi = gen_index_expr env c.c_hi in
      let step = gen_index_expr env c.c_step in
      let loop =
        Builder.parallel Op.Flat ~lbs:[ lo ] ~ubs:[ hi ] ~steps:[ step ]
          (fun ivs ->
            in_seq env (fun () ->
                scoped env (fun () ->
                    bind env c.c_var (Direct (ivs.(0), c.c_type));
                    List.iter (gen_stmt env) body)))
      in
      emit_here env loop
    | None ->
      fail "#pragma omp parallel for requires a canonical counted loop"
  end

and gen_decl env (d : Ast.decl) : unit =
  if d.d_shared then fail "__shared__ declaration must be at kernel top level";
  match d.d_type with
  | Ast.Tptr _ when d.d_dims = [] ->
    (* Pointer locals are bound immutably to their initializer (pointer
       reassignment is rejected at the later assignment). *)
    let init =
      match d.d_init with
      | Some e -> e
      | None -> fail "pointer variable '%s' must be initialized" d.d_name
    in
    let v, t = gen_expr env init in
    (match t with
     | Ast.Tptr _ -> bind env d.d_name (Direct (v, t))
     | _ -> fail "initializing pointer '%s' with non-pointer" d.d_name)
  | _ -> gen_scalar_or_array_decl env d

and gen_scalar_or_array_decl env (d : Ast.decl) : unit =
  let elem = dtype_of_ctype d.d_type in
  if d.d_dims = [] then begin
    let slot = emitv env (Builder.alloca elem []) in
    bind env d.d_name (Slot (slot, d.d_type));
    match d.d_init with
    | None -> ()
    | Some e ->
      let v, t = gen_expr env e in
      let v = coerce env v t d.d_type in
      emit env (Builder.store v slot [])
  end
  else begin
    let dims =
      List.map
        (fun e ->
          match eval_const e with
          | Some n -> n
          | None -> fail "array dimension of '%s' must be constant" d.d_name)
        d.d_dims
    in
    let arr =
      emitv env (Builder.alloca elem (List.map (fun n -> Some n) dims))
    in
    bind env d.d_name (Arr (arr, d.d_type));
    if d.d_init <> None then fail "array initializers are not supported"
  end

and gen_launch env name (grid : Ast.dim3) (block : Ast.dim3) args : unit =
  let launch_loc = env.cur_loc in
  let kernel =
    match find_fn env name with
    | Some f when f.fn_qual = Ast.Q_global -> Returns.eliminate f
    | Some _ -> fail "launch of non-kernel function '%s'" name
    | None -> fail "launch of unknown kernel '%s'" name
  in
  let dim3_vals (a, b, c) =
    let one () = Ast.E_int 1 in
    [ a
    ; (match b with Some e -> e | None -> one ())
    ; (match c with Some e -> e | None -> one ())
    ]
    |> List.map (gen_index_expr env)
  in
  let gdims = dim3_vals grid in
  let bdims = dim3_vals block in
  (* Evaluate kernel arguments once, in host code. *)
  let arg_vals =
    if List.length args <> List.length kernel.fn_params then
      fail "launch of %s: wrong arity" name
    else
      List.map2
        (fun (pt, _) a ->
          let v, t = gen_expr env a in
          match pt with
          | Ast.Tptr _ -> v
          | _ -> coerce env v t pt)
        kernel.fn_params args
  in
  let c0 = emitv env (Builder.const_int 0) in
  let c1 = emitv env (Builder.const_int 1) in
  (* Split kernel body into top-level __shared__ declarations (hoisted to
     block level, per Sec. III) and the rest. *)
  let shared_decls, rest =
    List.partition
      (fun (s : Ast.stmt) ->
        match s.s with Ast.S_decl { d_shared = true; _ } -> true | _ -> false)
      kernel.fn_body
  in
  (* Reject __shared__ nested deeper than kernel top level. *)
  let rec has_nested_shared (s : Ast.stmt) =
    match s.s with
    | Ast.S_decl { d_shared = true; _ } -> true
    | Ast.S_if (_, a, b) -> List.exists has_nested_shared (a @ b)
    | Ast.S_for (_, b) | Ast.S_while (_, b) | Ast.S_do_while (b, _)
    | Ast.S_block b | Ast.S_omp_for (_, b) ->
      List.exists has_nested_shared b
    | Ast.S_decl _ | Ast.S_expr _ | Ast.S_return _ | Ast.S_sync
    | Ast.S_launch _ ->
      false
  in
  if List.exists has_nested_shared rest then
    fail "__shared__ declaration must be at kernel top level";
  let needs_shfl = List.exists uses_warp_primitive kernel.fn_body in
  let block_size =
    if not needs_shfl then None
    else begin
      match bdims with
      | [ bx; by; bz ] ->
        let p1 = emitv env (Builder.binop Op.Mul bx by) in
        Some (emitv env (Builder.binop Op.Mul p1 bz))
      | _ -> None
    end
  in
  let grid_loop =
    Builder.parallel Op.Grid ~lbs:[ c0; c0; c0 ] ~ubs:gdims
      ~steps:[ c1; c1; c1 ] (fun bids ->
        in_seq env (fun () ->
            scoped env (fun () ->
                (* Warp shuffle emulation scratch, one slot per thread. *)
                let shfl_scratch =
                  match block_size with
                  | Some bs ->
                    Some
                      (emitv env
                         (Builder.alloc ~space:Types.Shared Types.F32 [ None ]
                            [ bs ]))
                  | None -> None
                in
                (* Shared memory: one stack allocation per block. *)
                let shared_bindings =
                  List.map
                    (fun (sd : Ast.stmt) ->
                      match sd.s with
                      | Ast.S_decl d ->
                        let dims =
                          List.map
                            (fun e ->
                              match eval_const e with
                              | Some n -> Some n
                              | None ->
                                fail "shared array dims must be constant")
                            d.d_dims
                        in
                        env.cur_loc <- d.d_loc;
                        let a =
                          emitv env
                            (Builder.alloca ~space:Types.Shared
                               (dtype_of_ctype d.d_type) dims)
                        in
                        (d, a)
                      | _ -> assert false)
                    shared_decls
                in
                let block_loop =
                  Builder.parallel Op.Block ~lbs:[ c0; c0; c0 ] ~ubs:bdims
                    ~steps:[ c1; c1; c1 ] (fun tids ->
                      in_seq env (fun () ->
                          scoped env (fun () ->
                              let simt =
                                { tid = tids
                                ; bid = bids
                                ; bdim = Array.of_list bdims
                                ; gdim = Array.of_list gdims
                                ; shfl_scratch
                                ; block_size
                                }
                              in
                              let env = { env with simt = Some simt } in
                              (* Bind shared arrays and scalars. *)
                              List.iter
                                (fun ((d : Ast.decl), a) ->
                                  if d.d_dims = [] then
                                    bind env d.d_name (Slot (a, d.d_type))
                                  else bind env d.d_name (Arr (a, d.d_type)))
                                shared_bindings;
                              (* Thread-private copies of scalar params. *)
                              env.cur_loc <- kernel.fn_loc;
                              List.iter2
                                (fun (pt, pn) v ->
                                  match pt with
                                  | Ast.Tptr t -> bind env pn (Direct (v, Ast.Tptr t))
                                  | _ ->
                                    let slot =
                                      emitv env
                                        (Builder.alloca (dtype_of_ctype pt) [])
                                    in
                                    emit env (Builder.store v slot []);
                                    bind env pn (Slot (slot, pt)))
                                kernel.fn_params arg_vals;
                              List.iter (gen_stmt env) rest)))
                in
                env.cur_loc <- launch_loc;
                emit env block_loop)))
  in
  env.cur_loc <- launch_loc;
  emit env grid_loop

(* --- functions and modules --- *)

let memref_of_ptr (t : Ast.ctype) : Types.typ =
  match t with
  | Ast.Tptr (Ast.Tptr _) -> fail "pointer-to-pointer parameters unsupported"
  | Ast.Tptr e -> Types.memref (dtype_of_ctype e) [ None ]
  | _ -> Types.Scalar (dtype_of_ctype t)

let gen_func (program : Ast.program) (f : Ast.func) : Op.op =
  let f = Returns.eliminate f in
  let params =
    List.map (fun (t, n) -> (n, memref_of_ptr t)) f.fn_params
  in
  let ret =
    match f.fn_ret with
    | Ast.Tvoid -> None
    | t -> Some (Types.Scalar (dtype_of_ctype t))
  in
  Builder.func f.fn_name params ?ret (fun args ->
      let env =
        { program; vars = []; seq = Builder.Seq.create (); simt = None
        ; cur_loc = f.fn_loc
        }
      in
      (* Scalar parameters are mutable in C: give them slots. *)
      List.iteri
        (fun i (t, n) ->
          match t with
          | Ast.Tptr _ -> bind env n (Direct (args.(i), t))
          | _ ->
            let slot = emitv env (Builder.alloca (dtype_of_ctype t) []) in
            emit env (Builder.store args.(i) slot []);
            bind env n (Slot (slot, t)))
        f.fn_params;
      List.iter (gen_stmt env) f.fn_body;
      let body = Builder.Seq.to_list env.seq in
      (* Ensure a trailing return for void functions. *)
      match f.fn_ret, List.rev body with
      | Ast.Tvoid, ({ kind = Op.Return; _ } :: _) -> body
      | Ast.Tvoid, _ -> body @ [ Builder.return_ [] ]
      | _, ({ kind = Op.Return; _ } :: _) -> body
      | _, _ -> fail "function %s must end with a return" f.fn_name)

(* Compile a whole program.  [__global__] kernels are inlined at their
   launch sites and not emitted as standalone functions. *)
let gen_program (program : Ast.program) : Op.op =
  let funcs =
    List.filter_map
      (fun (f : Ast.func) ->
        match f.fn_qual with
        | Ast.Q_global -> None
        | Ast.Q_device | Ast.Q_host -> Some (gen_func program f))
      program
  in
  Builder.module_ funcs

let compile (src : string) : Op.op =
  let prog = Parser.parse_program src in
  gen_program prog
