(* The graph executor: a small static dataflow graph over the
   {!Kernels} op set.  Nodes are added in execution order with shape
   inference (and shape-mismatch errors) at construction time; [run]
   walks them, grabbing intermediates from an {!Arena} and launching
   every op through a {!Kmgr} — so an op executes as a transpiled
   mini-CUDA kernel through the full pipeline, never as OCaml loops.

   Alongside the computation the graph accumulates the analytic
   {!Tensorlib.Opcost} of its ops, so a caller can print the machine
   model's predicted time next to the measured one. *)

open Tensorlib

type vid = int

type kind =
  | Kf (* f64 tensor *)
  | Ki (* int tensor (targets) *)

type opkind =
  | Conv2d of Conv.params
  | Relu
  | Bias_relu
  | Add
  | Maxpool of
      { size : int
      ; stride : int
      }
  | Global_avgpool
  | Batchnorm
  | Linear
  | Softmax
  | Log
  | Nll_loss

type node =
  { op : opkind
  ; ins : vid list
  ; out : vid
  }

type info =
  { shape : int array
  ; kind : kind
  }

type t =
  { vals : (vid, info) Hashtbl.t
  ; mutable nodes : node list (* reversed; run re-reverses *)
  ; mutable nvals : int
  ; mutable cost : Opcost.t
  }

let create () : t =
  { vals = Hashtbl.create 32; nodes = []; nvals = 0; cost = Opcost.zero }

let fail fmt = Printf.ksprintf (fun s -> invalid_arg ("graph: " ^ s)) fmt

let shape (g : t) (v : vid) : int array =
  match Hashtbl.find_opt g.vals v with
  | Some i -> i.shape
  | None -> fail "unknown value v%d" v

let numel (s : int array) = Array.fold_left ( * ) 1 s

let shape_str (s : int array) =
  String.concat "x" (Array.to_list (Array.map string_of_int s))

let new_val (g : t) (shape : int array) (kind : kind) : vid =
  let v = g.nvals in
  g.nvals <- g.nvals + 1;
  Hashtbl.replace g.vals v { shape; kind };
  v

let add_node (g : t) (op : opkind) (ins : vid list) (oshape : int array)
    (cost : Opcost.t) : vid =
  let out = new_val g oshape Kf in
  g.nodes <- { op; ins; out } :: g.nodes;
  g.cost <- Opcost.(g.cost ++ cost);
  out

let cost (g : t) : Opcost.t = g.cost

(* --- construction --- *)

let input (g : t) (shape : int array) : vid = new_val g shape Kf
let input_int (g : t) (len : int) : vid = new_val g [| len |] Ki

let rank4 g name v =
  let s = shape g v in
  if Array.length s <> 4 then
    fail "%s: expected a rank-4 NCHW tensor, got rank %d (%s)" name
      (Array.length s) (shape_str s);
  s

let rank2 g name v =
  let s = shape g v in
  if Array.length s <> 2 then
    fail "%s: expected a rank-2 tensor, got rank %d (%s)" name
      (Array.length s) (shape_str s);
  s

let conv2d (g : t) ~(input : vid) ~(weight : vid) ~(p : Conv.params) : vid =
  let si = rank4 g "conv2d" input and sw = rank4 g "conv2d" weight in
  if si.(1) <> sw.(1) then
    fail "conv2d: input has %d channels but the weight expects %d" si.(1)
      sw.(1);
  let sh =
    { Conv.n = si.(0); c = si.(1); h = si.(2); w = si.(3); k = sw.(0)
    ; r = sw.(2); s = sw.(3); p
    }
  in
  let oh, ow = Conv.out_dims sh in
  if oh <= 0 || ow <= 0 then
    fail "conv2d: a %dx%d kernel at stride %d pad %d does not fit the %dx%d \
          input"
      sh.Conv.r sh.Conv.s p.Conv.stride p.Conv.pad si.(2) si.(3);
  add_node g (Conv2d p) [ input; weight ]
    [| sh.Conv.n; sh.Conv.k; oh; ow |]
    (Conv.cost_im2col_gemm sh)

let relu (g : t) (x : vid) : vid =
  let s = shape g x in
  add_node g Relu [ x ] (Array.copy s) (Layers.cost_relu (numel s))

let bias_relu (g : t) ~(input : vid) ~(bias : vid) : vid =
  let s = rank4 g "bias_relu" input in
  let sb = shape g bias in
  if Array.length sb <> 1 || sb.(0) <> s.(1) then
    fail "bias_relu: bias has %d elements but the input has %d channels"
      (numel sb) s.(1);
  add_node g Bias_relu [ input; bias ] (Array.copy s)
    (Layers.cost_bias_relu (numel s))

let add (g : t) (a : vid) (b : vid) : vid =
  let sa = shape g a and sb = shape g b in
  if numel sa <> numel sb then
    fail "add: operand shapes %s and %s differ in element count"
      (shape_str sa) (shape_str sb);
  add_node g Add [ a; b ] (Array.copy sa) (Layers.cost_relu (numel sa))

let maxpool (g : t) ~(size : int) ~(stride : int) (x : vid) : vid =
  let s = rank4 g "maxpool" x in
  if s.(2) < size || s.(3) < size then
    fail "maxpool: window %d exceeds the %dx%d input" size s.(2) s.(3);
  let oh = ((s.(2) - size) / stride) + 1 in
  let ow = ((s.(3) - size) / stride) + 1 in
  add_node g (Maxpool { size; stride }) [ x ]
    [| s.(0); s.(1); oh; ow |]
    (Layers.cost_maxpool ~size (s.(0) * s.(1) * oh * ow))

let global_avgpool (g : t) (x : vid) : vid =
  let s = rank4 g "global_avgpool" x in
  add_node g Global_avgpool [ x ]
    [| s.(0); s.(1) |]
    (Layers.cost_avgpool (numel s))

let batchnorm (g : t) ~(input : vid) ~(gamma : vid) ~(beta : vid)
    ~(mean : vid) ~(var : vid) : vid =
  let s = rank4 g "batchnorm" input in
  List.iter
    (fun (name, v) ->
      let sv = shape g v in
      if numel sv <> s.(1) then
        fail "batchnorm: %s has %d elements but the input has %d channels"
          name (numel sv) s.(1))
    [ ("gamma", gamma); ("beta", beta); ("mean", mean); ("var", var) ];
  add_node g Batchnorm
    [ input; gamma; beta; mean; var ]
    (Array.copy s)
    (Layers.cost_batchnorm (numel s))

let linear (g : t) ~(input : vid) ~(weight : vid) : vid =
  let si = rank2 g "linear" input and sw = rank2 g "linear" weight in
  if si.(1) <> sw.(1) then
    fail "linear: input has %d features but the weight expects %d" si.(1)
      sw.(1);
  add_node g Linear [ input; weight ]
    [| si.(0); sw.(0) |]
    (Layers.cost_linear ~n:si.(0) ~infeat:si.(1) ~outfeat:sw.(0))

let softmax (g : t) (x : vid) : vid =
  let s = rank2 g "softmax" x in
  add_node g Softmax [ x ] (Array.copy s) (Layers.cost_softmax (numel s))

let log_ (g : t) (x : vid) : vid =
  let s = shape g x in
  add_node g Log [ x ] (Array.copy s) (Layers.cost_relu (numel s))

let nll_loss (g : t) ~(log_probs : vid) ~(targets : vid) : vid =
  let s = rank2 g "nll_loss" log_probs in
  let st = shape g targets in
  (match Hashtbl.find g.vals targets with
   | { kind = Ki; _ } -> ()
   | _ -> fail "nll_loss: targets must be an integer input");
  if st.(0) <> s.(0) then
    fail "nll_loss: %d targets for a batch of %d" st.(0) s.(0);
  add_node g Nll_loss [ log_probs; targets ] [| 1 |]
    (Layers.cost_nll s.(0))

(* --- feed helpers --- *)

let buffer_of_tensor (t : Tensor.t) : Interp.Mem.buffer =
  let n = Tensor.numel t in
  let b = Interp.Mem.alloc_buffer Ir.Types.F64 [| n |] in
  for i = 0 to n - 1 do
    Interp.Mem.set_f b i t.Tensor.data.(i)
  done;
  b

let buffer_of_ints (a : int array) : Interp.Mem.buffer =
  Interp.Mem.of_int_array (Array.copy a)

let buffer_of_floats (a : float array) : Interp.Mem.buffer =
  let b = Interp.Mem.alloc_buffer Ir.Types.F64 [| Array.length a |] in
  Array.iteri (fun i v -> Interp.Mem.set_f b i v) a;
  b

let tensor_of_buffer ~(shape : int array) (b : Interp.Mem.buffer) : Tensor.t
  =
  Tensor.of_array (Array.copy shape) (Interp.Mem.float_contents b)

(* --- execution --- *)

let run (g : t) (km : Kmgr.t) (ar : Arena.t)
    ~(feeds : (vid * Interp.Mem.buffer) list) (outs : vid list) :
  Interp.Mem.buffer list =
  let env : Interp.Mem.buffer option array = Array.make g.nvals None in
  List.iter
    (fun (v, b) ->
      let info =
        match Hashtbl.find_opt g.vals v with
        | Some i -> i
        | None -> fail "feed for unknown value v%d" v
      in
      let want = numel info.shape in
      if Interp.Mem.size b <> want then
        fail "feed for v%d has %d elements, expected %d (%s)" v
          (Interp.Mem.size b) want (shape_str info.shape);
      env.(v) <- Some b)
    feeds;
  let get v =
    match env.(v) with
    | Some b -> b
    | None -> fail "value v%d used before it was computed or fed" v
  in
  let buf v = Interp.Mem.Buf (get v) in
  let exec (nd : node) : unit =
    let oshape = shape g nd.out in
    let out = Arena.grab ar (numel oshape) in
    (match (nd.op, nd.ins) with
     | Conv2d p, [ x; w ] ->
       let si = shape g x and sw = shape g w in
       let sh =
         { Conv.n = si.(0); c = si.(1); h = si.(2); w = si.(3)
         ; k = sw.(0); r = sw.(2); s = sw.(3); p
         }
       in
       let oh, ow = Conv.out_dims sh in
       let rows = sh.Conv.c * sh.Conv.r * sh.Conv.s in
       let cols = sh.Conv.n * oh * ow in
       let patches = Arena.grab ar (rows * cols) in
       Kmgr.launch km (Kernels.im2col sh)
         [ Interp.Mem.Buf patches; buf x ];
       let gout = Arena.grab ar (sh.Conv.k * cols) in
       Kmgr.launch km
         (Kernels.gemm ~m:sh.Conv.k ~n:cols ~k:rows)
         [ Interp.Mem.Buf gout; buf w; Interp.Mem.Buf patches ];
       Kmgr.launch km
         (Kernels.col2im ~n:sh.Conv.n ~k:sh.Conv.k ~oh ~ow)
         [ Interp.Mem.Buf out; Interp.Mem.Buf gout ]
     | Relu, [ x ] ->
       Kmgr.launch km
         (Kernels.relu ~numel:(numel oshape))
         [ Interp.Mem.Buf out; buf x ]
     | Bias_relu, [ x; b ] ->
       let s = shape g x in
       Kmgr.launch km
         (Kernels.bias_relu ~numel:(numel s) ~c:s.(1)
            ~hw:(s.(2) * s.(3)))
         [ Interp.Mem.Buf out; buf x; buf b ]
     | Add, [ a; b ] ->
       Kmgr.launch km
         (Kernels.add ~numel:(numel oshape))
         [ Interp.Mem.Buf out; buf a; buf b ]
     | Maxpool { size; stride }, [ x ] ->
       let s = shape g x in
       Kmgr.launch km
         (Kernels.maxpool ~n:s.(0) ~c:s.(1) ~h:s.(2) ~w:s.(3) ~size
            ~stride)
         [ Interp.Mem.Buf out; buf x ]
     | Global_avgpool, [ x ] ->
       let s = shape g x in
       Kmgr.launch km
         (Kernels.avgpool_global ~n:s.(0) ~c:s.(1) ~hw:(s.(2) * s.(3)))
         [ Interp.Mem.Buf out; buf x ]
     | Batchnorm, [ x; ga; be; mu; va ] ->
       let s = shape g x in
       Kmgr.launch km
         (Kernels.batchnorm ~numel:(numel s) ~c:s.(1) ~hw:(s.(2) * s.(3)))
         [ Interp.Mem.Buf out; buf x; buf ga; buf be; buf mu; buf va ]
     | Linear, [ x; w ] ->
       let si = shape g x and sw = shape g w in
       Kmgr.launch km
         (Kernels.linear ~n:si.(0) ~infeat:si.(1) ~outfeat:sw.(0))
         [ Interp.Mem.Buf out; buf x; buf w ]
     | Softmax, [ x ] ->
       let s = shape g x in
       Kmgr.launch km
         (Kernels.softmax ~rows:s.(0) ~cols:s.(1))
         [ Interp.Mem.Buf out; buf x ]
     | Log, [ x ] ->
       Kmgr.launch km
         (Kernels.logk ~numel:(numel oshape))
         [ Interp.Mem.Buf out; buf x ]
     | Nll_loss, [ lp; tg ] ->
       let s = shape g lp in
       let per = Arena.grab ar s.(0) in
       Kmgr.launch km
         (Kernels.nll ~n:s.(0) ~classes:s.(1))
         [ Interp.Mem.Buf out; Interp.Mem.Buf per; buf lp; buf tg ]
     | _ -> fail "malformed node (operand count)");
    env.(nd.out) <- Some out
  in
  List.iter exec (List.rev g.nodes);
  List.map get outs
