(** Tensor arena for the graph executor: rank-1 F64 buffers pooled by
    element count.  Grab intermediates during a pass, read the outputs,
    then {!reset}; after the first pass every grab is a reuse, so warm
    passes allocate no tensor storage. *)

type t

val create : unit -> t

(** A zero-filled F64 buffer of [n] elements, owned by the caller until
    the next {!reset}. *)
val grab : t -> int -> Interp.Mem.buffer

(** Return every buffer grabbed since the last reset to the pool.
    Buffers handed out before the call must not be read afterwards. *)
val reset : t -> unit

val allocs : t -> int (** fresh allocations so far *)

val reuses : t -> int (** grabs served from the pool *)

val live : t -> int (** buffers currently held out *)
