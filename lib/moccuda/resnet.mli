(** ResNet-50 structure (53 convolutions at 224x224) and the Fig. 15
    synthetic-training throughput harness, plus a miniature functional
    model used for backend-agreement tests. *)

type conv_layer =
  { c_in : int
  ; c_out : int
  ; ksize : int
  ; stride : int
  ; hw : int
  }

val conv_layers : conv_layer list
val n_convs : int
val conv_shape : batch:int -> conv_layer -> Tensorlib.Conv.shape

(** Simulated cost of one training step (forward + backward). *)
val step_cost :
  Backends.t -> Runtime.Machine.t -> batch:int -> Tensorlib.Opcost.t

(** Images per second of synthetic training (the Benchmarker metric). *)
val throughput :
  Backends.t -> Runtime.Machine.t -> batch:int -> threads:int -> float

type mini_model =
  { stem_w : Tensorlib.Tensor.t
  ; block_w1 : Tensorlib.Tensor.t
  ; block_w2 : Tensorlib.Tensor.t
  ; fc_w : Tensorlib.Tensor.t
  }

val mini_model : channels:int -> mini_model

(** Forward pass of the miniature network; returns the NLL loss. *)
val mini_forward :
  Backends.t ->
  mini_model ->
  images:Tensorlib.Tensor.t ->
  targets:int array ->
  float

(** The miniature network with every op lowered to a transpiled kernel:
    a {!Graph} built once, weights converted to buffers once. *)
type compiled_mini

val mini_compiled : mini_model -> batch:int -> hw:int -> compiled_mini

(** Analytic cost of one forward pass of the compiled graph. *)
val mini_cost : compiled_mini -> Tensorlib.Opcost.t

(** One forward pass through the kernel tier; returns the NLL loss.
    Warm calls hit the kernel cache (zero recompiles) and the arena
    pool (zero tensor allocations). *)
val run_mini_compiled :
  compiled_mini ->
  Kmgr.t ->
  Arena.t ->
  images:Interp.Mem.buffer ->
  targets:Interp.Mem.buffer ->
  float

(** One convolution of the real ResNet-50 table run through the kernel
    tier (dims optionally capped so the compiled engine finishes in
    test time), with the Tensorlib reference checksum alongside. *)
type layer_run =
  { lr_shape : Tensorlib.Conv.shape
  ; lr_checksum : float
  ; lr_ref_checksum : float
  ; lr_secs : float
  }

val run_conv_layer :
  ?hw_cap:int ->
  ?channel_cap:int ->
  Kmgr.t ->
  Arena.t ->
  batch:int ->
  conv_layer ->
  layer_run
