(* The kernel manager: compile-once cache over {!Kernels} sources with
   the full transpile pipeline behind every entry.

   Compilation path (no pass bypassed): Cudafe frontend ->
   {!Core.Passmgr.run_pipeline} (the fault-tolerant barrier-lowering
   ladder; a degraded kernel is recorded on its entry) ->
   {!Core.Omp_lower} -> {!Core.Canonicalize} -> {!Ir.Verifier} ->
   {!Runtime.Exec.compile}.  If the compiled engine rejects the lowered
   module ([Unsupported]), the entry degrades once more to the serial
   interpreter — the same rung the driver uses.

   Cache discipline follows [Serve.Cache]: entries are keyed by an MD5
   digest of (op name, baked shape, entry, pipeline options), sealed
   with a digest of the lowered IR text, and the seal is re-verified on
   every hit — a corrupt entry is dropped, counted, and recompiled
   rather than trusted.  Every launch runs under a
   {!Runtime.Watchdog} deadline via [Exec.run ~timeout_ms]. *)

type engine =
  | Engine_compiled of Runtime.Exec.compiled
  | Engine_interp (* Exec rejected the lowered IR: serial-interpreter rung *)

type entry =
  { ename : string
  ; eshape : int list
  ; modul : Ir.Op.op
  ; engine : engine
  ; seal : string (* digest of the lowered IR text, checked per hit *)
  ; erung : string (* "primary", "degraded:STAGE", "fallback"; "+interp" *)
  ; mutable elaunches : int
  ; mutable esecs : float
  }

type stats =
  { mutable compiles : int
  ; mutable hits : int
  ; mutable misses : int
  ; mutable corrupt_dropped : int
  ; mutable degraded : int (* kernels that did not compile at Primary *)
  ; mutable interp_fallbacks : int
  ; mutable launches : int
  }

type t =
  { table : (string, entry) Hashtbl.t
  ; options : Core.Cpuify.options
  ; domains : int
  ; deadline_ms : int
  ; stats : stats
  }

type kernel_info =
  { kname : string
  ; kshape : int list
  ; krung : string
  ; klaunches : int
  ; ksecs : float
  }

let create ?(domains = 4) ?(deadline_ms = 60_000)
    ?(options = Core.Cpuify.default_options) () : t =
  { table = Hashtbl.create 32
  ; options
  ; domains
  ; deadline_ms
  ; stats =
      { compiles = 0
      ; hits = 0
      ; misses = 0
      ; corrupt_dropped = 0
      ; degraded = 0
      ; interp_fallbacks = 0
      ; launches = 0
      }
  }

let stats t = t.stats
let domains t = t.domains

let options_tag (o : Core.Cpuify.options) : string =
  Printf.sprintf "mincut=%b;belim=%b;mem2reg=%b;licm=%b;budget=%d"
    o.Core.Cpuify.opt_mincut o.Core.Cpuify.opt_barrier_elim
    o.Core.Cpuify.opt_mem2reg o.Core.Cpuify.opt_licm
    o.Core.Cpuify.opt_budget

(* op + shape + pipeline hash; source length keeps the key honest about
   what was compiled (the Serve.Cache keying discipline). *)
let key (t : t) (k : Kernels.t) : string =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%d:%s|%s|%s|%s"
          (String.length k.Kernels.src)
          k.Kernels.name
          (String.concat "x" (List.map string_of_int k.Kernels.shape))
          k.Kernels.entry (options_tag t.options)))

let seal_of (m : Ir.Op.op) : string =
  Digest.to_hex (Digest.string (Ir.Printer.op_to_string m))

let build (t : t) (k : Kernels.t) : entry =
  let m = Cudafe.Codegen.compile k.Kernels.src in
  let rung =
    match
      Core.Passmgr.run_pipeline ~options:t.options ~source:k.Kernels.src
        ~repro:(Printf.sprintf "moccuda kernel %s" k.Kernels.name)
        m
    with
    | Ok r ->
      if r.Core.Passmgr.fell_back then "fallback"
      else begin
        match r.Core.Passmgr.degradations with
        | [] -> "primary"
        | d :: _ ->
          "degraded:" ^ d.Core.Passmgr.failure.Core.Passmgr.stage
      end
    | Error (_, f) ->
      Interp.Mem.fail "moccuda: kernel %s failed at every rung: %s"
        k.Kernels.name
        (Core.Passmgr.failure_to_string f)
  in
  ignore (Core.Omp_lower.run m);
  Core.Canonicalize.run m;
  (match Ir.Verifier.verify_result m with
   | Ok () -> ()
   | Error e ->
     Interp.Mem.fail "moccuda: kernel %s does not verify after lowering: %s"
       k.Kernels.name e);
  let engine, rung =
    match Runtime.Exec.compile m k.Kernels.entry with
    | c -> (Engine_compiled c, rung)
    | exception Runtime.Exec.Unsupported _ ->
      t.stats.interp_fallbacks <- t.stats.interp_fallbacks + 1;
      (Engine_interp, rung ^ "+interp")
  in
  if not (String.equal rung "primary") then
    t.stats.degraded <- t.stats.degraded + 1;
  t.stats.compiles <- t.stats.compiles + 1;
  { ename = k.Kernels.name
  ; eshape = k.Kernels.shape
  ; modul = m
  ; engine
  ; seal = seal_of m
  ; erung = rung
  ; elaunches = 0
  ; esecs = 0.0
  }

let lookup (t : t) (k : Kernels.t) : entry =
  let ekey = key t k in
  match Hashtbl.find_opt t.table ekey with
  | Some e when String.equal (seal_of e.modul) e.seal ->
    t.stats.hits <- t.stats.hits + 1;
    e
  | Some _ ->
    (* the cached module no longer digests to its seal: drop, recount,
       recompile — never run IR we cannot re-verify *)
    Hashtbl.remove t.table ekey;
    t.stats.corrupt_dropped <- t.stats.corrupt_dropped + 1;
    let e = build t k in
    Hashtbl.replace t.table ekey e;
    e
  | None ->
    t.stats.misses <- t.stats.misses + 1;
    let e = build t k in
    Hashtbl.replace t.table ekey e;
    e

let launch ?domains (t : t) (k : Kernels.t) (args : Interp.Mem.rv list) :
  unit =
  let e = lookup t k in
  let domains = match domains with Some d -> d | None -> t.domains in
  let t0 = Unix.gettimeofday () in
  (match e.engine with
   | Engine_compiled c ->
     ignore
       (Runtime.Exec.run ~domains ~timeout_ms:t.deadline_ms c args)
   | Engine_interp -> ignore (Interp.Eval.run e.modul k.Kernels.entry args));
  e.esecs <- e.esecs +. (Unix.gettimeofday () -. t0);
  e.elaunches <- e.elaunches + 1;
  t.stats.launches <- t.stats.launches + 1

let kernels (t : t) : kernel_info list =
  Hashtbl.fold
    (fun _ e acc ->
      { kname = e.ename
      ; kshape = e.eshape
      ; krung = e.erung
      ; klaunches = e.elaunches
      ; ksecs = e.esecs
      }
      :: acc)
    t.table []
  |> List.sort (fun a b ->
         match compare a.kname b.kname with
         | 0 -> compare a.kshape b.kshape
         | c -> c)

let stats_to_string (s : stats) : string =
  Printf.sprintf
    "kernels: %d compiles, %d hits, %d misses, %d corrupt dropped, %d \
     degraded, %d interp fallbacks, %d launches"
    s.compiles s.hits s.misses s.corrupt_dropped s.degraded
    s.interp_fallbacks s.launches
