(* ResNet-50 model structure (He et al. 2016) and the synthetic training
   throughput harness — the paper's Fig. 15 workload (Horovod synthetic
   benchmark, 224x224 ImageNet-shaped inputs, forward + backward).


   The layer table below is the standard ResNet-50: a 7x7/2 stem, four
   bottleneck stages of [1x1, 3x3, 1x1] blocks (3, 4, 6, 3 of them) with
   1x1 downsampling projections, global pooling and a 1000-way FC. *)

open Tensorlib

type conv_layer =
  { c_in : int
  ; c_out : int
  ; ksize : int
  ; stride : int
  ; hw : int (* input spatial size *)
  }

let bottleneck ~(cin : int) ~(mid : int) ~(cout : int) ~(hw : int)
    ~(stride : int) ~(first : bool) : conv_layer list =
  [ { c_in = cin; c_out = mid; ksize = 1; stride = 1; hw }
  ; { c_in = mid; c_out = mid; ksize = 3; stride; hw }
  ; { c_in = mid; c_out = cout; ksize = 1; stride = 1; hw = hw / stride }
  ]
  @ (if first then
       [ { c_in = cin; c_out = cout; ksize = 1; stride; hw } ]
     else [])

let stage ~(blocks : int) ~(cin : int) ~(mid : int) ~(cout : int)
    ~(hw : int) ~(stride : int) : conv_layer list =
  List.concat
    (List.init blocks (fun i ->
         if i = 0 then bottleneck ~cin ~mid ~cout ~hw ~stride ~first:true
         else bottleneck ~cin:cout ~mid ~cout ~hw:(hw / stride) ~stride:1
                ~first:false))

(* All convolutions of ResNet-50 at 224x224. *)
let conv_layers : conv_layer list =
  ({ c_in = 3; c_out = 64; ksize = 7; stride = 2; hw = 224 }
   :: stage ~blocks:3 ~cin:64 ~mid:64 ~cout:256 ~hw:56 ~stride:1)
  @ stage ~blocks:4 ~cin:256 ~mid:128 ~cout:512 ~hw:56 ~stride:2
  @ stage ~blocks:6 ~cin:512 ~mid:256 ~cout:1024 ~hw:28 ~stride:2
  @ stage ~blocks:3 ~cin:1024 ~mid:512 ~cout:2048 ~hw:14 ~stride:2

let n_convs = List.length conv_layers

let conv_shape ~(batch : int) (l : conv_layer) : Conv.shape =
  { Conv.n = batch
  ; c = l.c_in
  ; h = l.hw
  ; w = l.hw
  ; k = l.c_out
  ; r = l.ksize
  ; s = l.ksize
  ; p = { Conv.stride = l.stride; pad = l.ksize / 2 }
  }

(* Total simulated cost of one training step (forward + backward) of
   ResNet-50 with the given backend. *)
let step_cost (backend : Backends.t) (machine : Runtime.Machine.t)
    ~(batch : int) : Opcost.t =
  let conv_cost =
    List.fold_left
      (fun acc l ->
        let sh = conv_shape ~batch l in
        let fwd = Backends.conv2d_cost backend machine sh in
        let bwd = Conv.cost_backward fwd in
        Opcost.(acc ++ fwd ++ bwd))
      Opcost.zero conv_layers
  in
  (* batchnorm + relu after each conv (fwd+bwd ~ 2x) *)
  let act_cost =
    List.fold_left
      (fun acc l ->
        let oh = l.hw / l.stride in
        let numel = batch * l.c_out * oh * oh in
        let base = Opcost.(Layers.cost_batchnorm numel ++ Layers.cost_relu numel) in
        let base =
          match backend with
          | Backends.Native ->
            (* the native backend's elementwise kernels are scalar *)
            Opcost.scalarize base
          | _ -> base
        in
        Opcost.(acc ++ base ++ base))
      Opcost.zero conv_layers
  in
  let head =
    Opcost.(
      Layers.cost_maxpool ~size:3 (batch * 64 * 56 * 56)
      ++ Layers.cost_linear ~n:batch ~infeat:2048 ~outfeat:1000
      ++ Layers.cost_softmax (batch * 1000)
      ++ Layers.cost_nll batch)
  in
  Opcost.(conv_cost ++ act_cost ++ head)

(* Images per second of synthetic training (the Benchmarker metric). *)
let throughput (backend : Backends.t) (machine : Runtime.Machine.t)
    ~(batch : int) ~(threads : int) : float =
  let cost = step_cost backend machine ~batch in
  let secs = Opcost.seconds machine ~threads cost in
  float_of_int batch /. secs

(* --- a small functional model for correctness tests: a stem conv +
   bottleneck + classifier computed with real tensors --- *)

type mini_model =
  { stem_w : Tensor.t
  ; block_w1 : Tensor.t
  ; block_w2 : Tensor.t
  ; fc_w : Tensor.t
  }

let mini_model ~(channels : int) : mini_model =
  { stem_w = Tensor.rand 1 [| channels; 3; 3; 3 |]
  ; block_w1 = Tensor.rand 2 [| channels; channels; 3; 3 |]
  ; block_w2 = Tensor.rand 3 [| channels; channels; 3; 3 |]
  ; fc_w = Tensor.rand 4 [| 10; channels |]
  }

(* Forward pass of the miniature network under a backend; ends with
   softmax + NLL against the given targets. *)
let mini_forward (backend : Backends.t) (m : mini_model)
    ~(images : Tensor.t) ~(targets : int array) : float =
  let p = { Conv.stride = 1; pad = 1 } in
  let x = Backends.conv2d backend ~input:images ~weight:m.stem_w ~p in
  let x = Layers.relu x in
  let y = Backends.conv2d backend ~input:x ~weight:m.block_w1 ~p in
  let y = Layers.relu y in
  let y = Backends.conv2d backend ~input:y ~weight:m.block_w2 ~p in
  Tensor.add_inplace y x;
  let y = Layers.relu y in
  (* global average pool *)
  let n = y.Tensor.shape.(0) and c = y.Tensor.shape.(1) in
  let hw = y.Tensor.shape.(2) * y.Tensor.shape.(3) in
  let pooled = Tensor.create [| n; c |] in
  for ni = 0 to n - 1 do
    for ci = 0 to c - 1 do
      let acc = ref 0.0 in
      for i = 0 to hw - 1 do
        acc := !acc +. y.Tensor.data.((((ni * c) + ci) * hw) + i)
      done;
      Tensor.set2 pooled ni ci (!acc /. float_of_int hw)
    done
  done;
  let logits = Layers.linear ~weight:m.fc_w pooled in
  let probs = Layers.softmax logits in
  let log_probs =
    Tensor.of_array (Array.copy probs.Tensor.shape)
      (Array.map log probs.Tensor.data)
  in
  Backends.nll_loss backend ~log_probs ~targets

(* --- the same miniature network with every op a transpiled kernel:
   built once as a graph, weights converted to buffers once, so warm
   passes touch neither the compiler nor the allocator --- *)

type compiled_mini =
  { cm_graph : Graph.t
  ; cm_images : Graph.vid
  ; cm_targets : Graph.vid
  ; cm_loss : Graph.vid
  ; cm_feeds : (Graph.vid * Interp.Mem.buffer) list
  }

let mini_compiled (m : mini_model) ~(batch : int) ~(hw : int) : compiled_mini
  =
  let g = Graph.create () in
  let images = Graph.input g [| batch; 3; hw; hw |] in
  let targets = Graph.input_int g batch in
  let weight t = (Graph.input g t.Tensor.shape, Graph.buffer_of_tensor t) in
  let stem_v, stem_b = weight m.stem_w in
  let w1_v, w1_b = weight m.block_w1 in
  let w2_v, w2_b = weight m.block_w2 in
  let fc_v, fc_b = weight m.fc_w in
  let p = { Conv.stride = 1; pad = 1 } in
  let x = Graph.relu g (Graph.conv2d g ~input:images ~weight:stem_v ~p) in
  let y = Graph.relu g (Graph.conv2d g ~input:x ~weight:w1_v ~p) in
  let y = Graph.conv2d g ~input:y ~weight:w2_v ~p in
  let y = Graph.relu g (Graph.add g y x) in
  let pooled = Graph.global_avgpool g y in
  let logits = Graph.linear g ~input:pooled ~weight:fc_v in
  let log_probs = Graph.log_ g (Graph.softmax g logits) in
  let loss = Graph.nll_loss g ~log_probs ~targets in
  { cm_graph = g
  ; cm_images = images
  ; cm_targets = targets
  ; cm_loss = loss
  ; cm_feeds =
      [ (stem_v, stem_b); (w1_v, w1_b); (w2_v, w2_b); (fc_v, fc_b) ]
  }

let mini_cost (cm : compiled_mini) : Opcost.t = Graph.cost cm.cm_graph

let run_mini_compiled (cm : compiled_mini) (km : Kmgr.t) (ar : Arena.t)
    ~(images : Interp.Mem.buffer) ~(targets : Interp.Mem.buffer) : float =
  let feeds =
    (cm.cm_images, images) :: (cm.cm_targets, targets) :: cm.cm_feeds
  in
  match Graph.run cm.cm_graph km ar ~feeds [ cm.cm_loss ] with
  | [ loss ] ->
    let v = Interp.Mem.get_f loss 0 in
    Arena.reset ar;
    v
  | _ -> assert false

(* --- the ResNet layer sweep: one convolution of the real table, dims
   optionally capped so the compiled engine finishes in test time, run
   through the kernel tier and checked against the Tensorlib
   reference --- *)

type layer_run =
  { lr_shape : Conv.shape
  ; lr_checksum : float
  ; lr_ref_checksum : float
  ; lr_secs : float
  }

let run_conv_layer ?(hw_cap = max_int) ?(channel_cap = max_int) (km : Kmgr.t)
    (ar : Arena.t) ~(batch : int) (l : conv_layer) : layer_run =
  let hw = min l.hw hw_cap in
  let cin = min l.c_in channel_cap in
  let cout = min l.c_out channel_cap in
  let ksize = min l.ksize hw in
  let p = { Conv.stride = l.stride; pad = ksize / 2 } in
  let xs = Tensor.rand (hw + cin) [| batch; cin; hw; hw |] in
  let ws = Tensor.rand (ksize + cout) [| cout; cin; ksize; ksize |] in
  let g = Graph.create () in
  let x = Graph.input g xs.Tensor.shape in
  let w = Graph.input g ws.Tensor.shape in
  let out = Graph.conv2d g ~input:x ~weight:w ~p in
  let t0 = Unix.gettimeofday () in
  let b =
    match
      Graph.run g km ar
        ~feeds:
          [ (x, Graph.buffer_of_tensor xs); (w, Graph.buffer_of_tensor ws) ]
        [ out ]
    with
    | [ b ] -> b
    | _ -> assert false
  in
  let secs = Unix.gettimeofday () -. t0 in
  let cs = Interp.Mem.checksum [| b |] in
  Arena.reset ar;
  let reference = Conv.im2col_gemm ~input:xs ~weight:ws ~p in
  let ref_cs =
    Interp.Mem.checksum [| Graph.buffer_of_tensor reference |]
  in
  { lr_shape = Conv.shape_of_tensors ~input:xs ~weight:ws ~p
  ; lr_checksum = cs
  ; lr_ref_checksum = ref_cs
  ; lr_secs = secs
  }
