(* The MocCUDA kernel library (Sec. V-B): every tensor op of the
   mini-PyTorch inference path as a mini-CUDA kernel source, compiled
   through the full frontend -> Cpuify -> OpenMP -> Exec stack by
   {!Kmgr} — not hand-written OCaml.

   Shapes are baked into each source as integer literals (the
   [Nll_kernel]/[Rodinia.Matmul] idiom): the affine passes see constant
   loop bounds, and the (op, shape) pair becomes the kernel cache key.

   Numerics contract: every kernel is written in [double] with
   unsuffixed float constants.  The interpreter and the compiled engine
   do all float arithmetic in double precision and round only at f32
   constants and casts-to-f32, so a kernel whose per-element
   accumulation order matches the [Tensorlib] reference is bit-identical
   to it — the differential tests compare [Interp.Mem.checksum]s, not
   tolerances.  Concretely: GEMM/linear/conv accumulate k in ascending
   order from 0.0 (as [Gemm.naive]/[Gemm.blocked] do), pooling and
   softmax fold [fmax]/sums in the reference's index order, and the NLL
   fold is a single-thread ordered sum. *)

open Tensorlib

type t =
  { name : string (* op name, the human half of the cache key *)
  ; shape : int list (* baked-in shape parameters, the other half *)
  ; src : string
  ; entry : string (* host entry point, always [run] *)
  }

let block = 64
let tile = 8

let mk name shape src = { name; shape; src; entry = "run" }

(* Grid size for one thread per element at [block] threads per block. *)
let grid total = (total + block - 1) / block

(* --- GEMM: C(mxn) = A(mxk) * B(kxn) ---

   The flagship barrier kernel: 8x8 tiles staged through shared memory
   with two __syncthreads per tile step (the canonical pattern the
   min-cut splitter and interchange must lower).  Ragged edges are
   handled by guarded loads plus a uniform in-range test on the
   accumulation step, so the products folded into [acc] are exactly the
   reference's — k ascending, nothing else — and the result is bitwise
   [Gemm.naive]. *)
let gemm ~(m : int) ~(n : int) ~(k : int) : t =
  let kt = (k + tile - 1) / tile in
  let src =
    Printf.sprintf
      {|
__global__ void gemm(double* C, double* A, double* B) {
  __shared__ double As[%d][%d];
  __shared__ double Bs[%d][%d];
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  int row = blockIdx.y * %d + ty;
  int col = blockIdx.x * %d + tx;
  double acc = 0.0;
  for (int t = 0; t < %d; t++) {
    double av = 0.0;
    if (row < %d && t * %d + tx < %d) { av = A[row * %d + t * %d + tx]; }
    As[ty][tx] = av;
    double bv = 0.0;
    if (t * %d + ty < %d && col < %d) { bv = B[(t * %d + ty) * %d + col]; }
    Bs[ty][tx] = bv;
    __syncthreads();
    for (int kk = 0; kk < %d; kk++) {
      if (t * %d + kk < %d) { acc = acc + As[ty][kk] * Bs[kk][tx]; }
    }
    __syncthreads();
  }
  if (row < %d && col < %d) { C[row * %d + col] = acc; }
}
void run(double* C, double* A, double* B) {
  gemm<<<dim3(%d, %d), dim3(%d, %d)>>>(C, A, B);
}
|}
      tile tile tile tile tile tile kt m tile k k tile tile k n tile n tile
      tile k m n n
      ((n + tile - 1) / tile)
      ((m + tile - 1) / tile)
      tile tile
  in
  mk "gemm" [ m; n; k ] src

(* --- im2col: patch matrix (C*R*S) x (N*OH*OW), zero-padded --- *)
let im2col (sh : Conv.shape) : t =
  let oh, ow = Conv.out_dims sh in
  let rows = sh.Conv.c * sh.Conv.r * sh.Conv.s in
  let cols = sh.Conv.n * oh * ow in
  let total = rows * cols in
  let src =
    Printf.sprintf
      {|
__global__ void im2col(double* P, double* X) {
  int idx = blockIdx.x * %d + threadIdx.x;
  if (idx < %d) {
    int col = idx %% %d;
    int row = idx / %d;
    int s = row %% %d;
    int r = (row / %d) %% %d;
    int c = row / %d;
    int x = col %% %d;
    int y = (col / %d) %% %d;
    int n = col / %d;
    int iy = y * %d + r - %d;
    int ix = x * %d + s - %d;
    double v = 0.0;
    if (iy >= 0 && iy < %d && ix >= 0 && ix < %d) {
      v = X[((n * %d + c) * %d + iy) * %d + ix];
    }
    P[idx] = v;
  }
}
void run(double* P, double* X) { im2col<<<%d, %d>>>(P, X); }
|}
      block total cols cols sh.Conv.s sh.Conv.s sh.Conv.r
      (sh.Conv.s * sh.Conv.r) ow ow oh (ow * oh) sh.Conv.p.Conv.stride
      sh.Conv.p.Conv.pad sh.Conv.p.Conv.stride sh.Conv.p.Conv.pad sh.Conv.h
      sh.Conv.w sh.Conv.c sh.Conv.h sh.Conv.w (grid total) block
  in
  mk "im2col"
    [ sh.Conv.n; sh.Conv.c; sh.Conv.h; sh.Conv.w; sh.Conv.r; sh.Conv.s
    ; sh.Conv.p.Conv.stride; sh.Conv.p.Conv.pad
    ]
    src

(* --- reshape the GEMM result K x (N*OH*OW) into NCHW (a pure copy) --- *)
let col2im ~(n : int) ~(k : int) ~(oh : int) ~(ow : int) : t =
  let total = n * k * oh * ow in
  let cols = n * oh * ow in
  let src =
    Printf.sprintf
      {|
__global__ void col2im(double* Y, double* G) {
  int idx = blockIdx.x * %d + threadIdx.x;
  if (idx < %d) {
    int x = idx %% %d;
    int y = (idx / %d) %% %d;
    int k = (idx / %d) %% %d;
    int n = idx / %d;
    Y[idx] = G[k * %d + (n * %d + y) * %d + x];
  }
}
void run(double* Y, double* G) { col2im<<<%d, %d>>>(Y, G); }
|}
      block total ow ow oh (ow * oh) k (ow * oh * k) cols oh ow (grid total)
      block
  in
  mk "col2im" [ n; k; oh; ow ] src

(* --- elementwise ReLU --- *)
let relu ~(numel : int) : t =
  let src =
    Printf.sprintf
      {|
__global__ void relu(double* Y, double* X) {
  int idx = blockIdx.x * %d + threadIdx.x;
  if (idx < %d) {
    double v = X[idx];
    Y[idx] = v > 0.0 ? v : 0.0;
  }
}
void run(double* Y, double* X) { relu<<<%d, %d>>>(Y, X); }
|}
      block numel (grid numel) block
  in
  mk "relu" [ numel ] src

(* --- fused bias + ReLU (per-channel bias over NCHW) --- *)
let bias_relu ~(numel : int) ~(c : int) ~(hw : int) : t =
  let src =
    Printf.sprintf
      {|
__global__ void bias_relu(double* Y, double* X, double* B) {
  int idx = blockIdx.x * %d + threadIdx.x;
  if (idx < %d) {
    double v = X[idx] + B[(idx / %d) %% %d];
    Y[idx] = v > 0.0 ? v : 0.0;
  }
}
void run(double* Y, double* X, double* B) { bias_relu<<<%d, %d>>>(Y, X, B); }
|}
      block numel hw c (grid numel) block
  in
  mk "bias_relu" [ numel; c; hw ] src

(* --- elementwise add (the residual connection) --- *)
let add ~(numel : int) : t =
  let src =
    Printf.sprintf
      {|
__global__ void add(double* Y, double* A, double* B) {
  int idx = blockIdx.x * %d + threadIdx.x;
  if (idx < %d) { Y[idx] = A[idx] + B[idx]; }
}
void run(double* Y, double* A, double* B) { add<<<%d, %d>>>(Y, A, B); }
|}
      block numel (grid numel) block
  in
  mk "add" [ numel ] src

(* --- max pooling (one thread per output element; fmax fold in the
   reference's dy, dx order, seeded with the window's first element) --- *)
let maxpool ~(n : int) ~(c : int) ~(h : int) ~(w : int) ~(size : int)
    ~(stride : int) : t =
  let oh = ((h - size) / stride) + 1 and ow = ((w - size) / stride) + 1 in
  let total = n * c * oh * ow in
  let src =
    Printf.sprintf
      {|
__global__ void maxpool(double* Y, double* X) {
  int idx = blockIdx.x * %d + threadIdx.x;
  if (idx < %d) {
    int x = idx %% %d;
    int y = (idx / %d) %% %d;
    int c = (idx / %d) %% %d;
    int n = idx / %d;
    double m = X[((n * %d + c) * %d + y * %d) * %d + x * %d];
    for (int dy = 0; dy < %d; dy++) {
      for (int dx = 0; dx < %d; dx++) {
        double v = X[((n * %d + c) * %d + y * %d + dy) * %d + x * %d + dx];
        m = fmax(m, v);
      }
    }
    Y[idx] = m;
  }
}
void run(double* Y, double* X) { maxpool<<<%d, %d>>>(Y, X); }
|}
      block total ow ow oh (ow * oh) c (ow * oh * c) c h stride w stride size
      size c h stride w stride (grid total) block
  in
  mk "maxpool" [ n; c; h; w; size; stride ] src

(* --- global average pooling NCHW -> NC (ordered per-row sum) --- *)
let avgpool_global ~(n : int) ~(c : int) ~(hw : int) : t =
  let total = n * c in
  let src =
    Printf.sprintf
      {|
__global__ void avgpool(double* Y, double* X) {
  int idx = blockIdx.x * %d + threadIdx.x;
  if (idx < %d) {
    double acc = 0.0;
    for (int i = 0; i < %d; i++) { acc = acc + X[idx * %d + i]; }
    Y[idx] = acc / %d.0;
  }
}
void run(double* Y, double* X) { avgpool<<<%d, %d>>>(Y, X); }
|}
      block total hw hw hw (grid total) block
  in
  mk "avgpool_global" [ n; c; hw ] src

(* --- batch normalization, inference form --- *)
let batchnorm ~(numel : int) ~(c : int) ~(hw : int) : t =
  let src =
    Printf.sprintf
      {|
__global__ void batchnorm(double* Y, double* X, double* G, double* B,
                          double* M, double* V) {
  int idx = blockIdx.x * %d + threadIdx.x;
  if (idx < %d) {
    int c = (idx / %d) %% %d;
    double scale = G[c] / sqrt(V[c] + 0.00001);
    double shift = B[c] - scale * M[c];
    Y[idx] = scale * X[idx] + shift;
  }
}
void run(double* Y, double* X, double* G, double* B, double* M, double* V) {
  batchnorm<<<%d, %d>>>(Y, X, G, B, M, V);
}
|}
      block numel hw c (grid numel) block
  in
  mk "batchnorm" [ numel; c; hw ] src

(* --- linear: out(n x o) = t(n x f) * w(o x f)^T --- *)
let linear ~(n : int) ~(infeat : int) ~(outfeat : int) : t =
  let total = n * outfeat in
  let src =
    Printf.sprintf
      {|
__global__ void linear(double* Y, double* T, double* W) {
  int idx = blockIdx.x * %d + threadIdx.x;
  if (idx < %d) {
    int oi = idx %% %d;
    int ni = idx / %d;
    double acc = 0.0;
    for (int k = 0; k < %d; k++) {
      acc = acc + T[ni * %d + k] * W[oi * %d + k];
    }
    Y[idx] = acc;
  }
}
void run(double* Y, double* T, double* W) { linear<<<%d, %d>>>(Y, T, W); }
|}
      block total outfeat outfeat infeat infeat infeat (grid total) block
  in
  mk "linear" [ n; infeat; outfeat ] src

(* --- row softmax (one thread per row, the reference's three passes) --- *)
let softmax ~(rows : int) ~(cols : int) : t =
  let src =
    Printf.sprintf
      {|
__global__ void softmax(double* Y, double* X) {
  int i = blockIdx.x * %d + threadIdx.x;
  if (i < %d) {
    double m = X[i * %d];
    for (int j = 1; j < %d; j++) { m = fmax(m, X[i * %d + j]); }
    double z = 0.0;
    for (int j = 0; j < %d; j++) { z = z + exp(X[i * %d + j] - m); }
    for (int j = 0; j < %d; j++) {
      Y[i * %d + j] = exp(X[i * %d + j] - m) / z;
    }
  }
}
void run(double* Y, double* X) { softmax<<<%d, %d>>>(Y, X); }
|}
      block rows cols cols cols cols cols cols cols cols (grid rows) block
  in
  mk "softmax" [ rows; cols ] src

(* --- elementwise log (between softmax and the NLL criterion) --- *)
let logk ~(numel : int) : t =
  let src =
    Printf.sprintf
      {|
__global__ void logk(double* Y, double* X) {
  int idx = blockIdx.x * %d + threadIdx.x;
  if (idx < %d) { Y[idx] = log(X[idx]); }
}
void run(double* Y, double* X) { logk<<<%d, %d>>>(Y, X); }
|}
      block numel (grid numel) block
  in
  mk "log" [ numel ] src

(* --- NLL loss: parallel per-sample pick, then a single-thread ordered
   fold (two launches from one host entry), matching the reference's
   accumulation order exactly --- *)
let nll ~(n : int) ~(classes : int) : t =
  let src =
    Printf.sprintf
      {|
__global__ void nll_pick(double* per, double* LP, int* tg) {
  int i = blockIdx.x * %d + threadIdx.x;
  if (i < %d) { per[i] = 0.0 - LP[i * %d + tg[i]]; }
}
__global__ void nll_fold(double* loss, double* per) {
  int i = threadIdx.x;
  if (i == 0) {
    double acc = 0.0;
    for (int j = 0; j < %d; j++) { acc = acc + per[j]; }
    loss[0] = acc / %d.0;
  }
}
void run(double* loss, double* per, double* LP, int* tg) {
  nll_pick<<<%d, %d>>>(per, LP, tg);
  nll_fold<<<1, 1>>>(loss, per);
}
|}
      block n classes n n (grid n) block
  in
  mk "nll" [ n; classes ] src
