(** The MocCUDA kernel library: every tensor op as a shape-specialized
    mini-CUDA source, compiled through the full transpile stack by
    {!Kmgr}.

    Shapes are baked in as literals, so [(name, shape)] identifies a
    kernel and the affine passes see constant loop bounds.  All kernels
    are written in [double] with unsuffixed constants and match the
    [Tensorlib] reference's per-element accumulation order, which makes
    their results bit-identical to the reference (the engine computes
    in double precision and rounds only at f32 constants/casts). *)

type t =
  { name : string (** op name — the human half of the cache key *)
  ; shape : int list (** baked-in shape parameters — the other half *)
  ; src : string
  ; entry : string (** host entry point, always ["run"] *)
  }

(** Threads per block of the flat (one-thread-per-element) kernels. *)
val block : int

(** Tile width of the shared-memory GEMM. *)
val tile : int

(** [C(mxn) = A(mxk) * B(kxn)]: 8x8 shared-memory tiles with two
    [__syncthreads] per tile step; args [C; A; B]. *)
val gemm : m:int -> n:int -> k:int -> t

(** Patch matrix [(C*R*S) x (N*OH*OW)] of a convolution; args
    [patches; input]. *)
val im2col : Tensorlib.Conv.shape -> t

(** Reshape a GEMM result [K x (N*OH*OW)] into NCHW; args [out; gemm]. *)
val col2im : n:int -> k:int -> oh:int -> ow:int -> t

(** Elementwise max(x, 0); args [out; in]. *)
val relu : numel:int -> t

(** Per-channel bias add fused with ReLU over NCHW; args
    [out; in; bias]. *)
val bias_relu : numel:int -> c:int -> hw:int -> t

(** Elementwise sum (the residual connection); args [out; a; b]. *)
val add : numel:int -> t

(** Max pooling over NCHW; args [out; in]. *)
val maxpool :
  n:int -> c:int -> h:int -> w:int -> size:int -> stride:int -> t

(** Global average pooling NCHW -> NC; args [out; in]. *)
val avgpool_global : n:int -> c:int -> hw:int -> t

(** Inference-form batch normalization; args
    [out; in; gamma; beta; mean; var]. *)
val batchnorm : numel:int -> c:int -> hw:int -> t

(** [out(n x o) = t(n x f) * w(o x f)^T]; args [out; in; weight]. *)
val linear : n:int -> infeat:int -> outfeat:int -> t

(** Row softmax; args [out; in]. *)
val softmax : rows:int -> cols:int -> t

(** Elementwise natural log; args [out; in]. *)
val logk : numel:int -> t

(** NLL loss over log-probabilities: a parallel per-sample pick then a
    single-thread ordered fold (two launches from one host entry); args
    [loss(1); per(n); log_probs(n*classes); targets(n, int)]. *)
val nll : n:int -> classes:int -> t
