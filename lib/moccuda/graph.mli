(** A small static dataflow graph over the {!Kernels} op set.

    Nodes are appended in execution order; shapes are inferred (and
    mismatches rejected with [Invalid_argument]) at construction time.
    {!run} executes the graph against a {!Kmgr}, grabbing every
    intermediate from an {!Arena} — each op runs as a transpiled
    mini-CUDA kernel through the full pipeline.  The graph also
    accumulates the analytic {!Tensorlib.Opcost} of its ops. *)

open Tensorlib

type t

(** A value in the graph: an input or a node output. *)
type vid

val create : unit -> t

(** Analytic cost of every node added so far. *)
val cost : t -> Opcost.t

(** {1 Construction}

    All constructors raise [Invalid_argument "graph: ..."] on shape
    mismatch. *)

(** A float tensor input of the given shape. *)
val input : t -> int array -> vid

(** An integer input of [len] elements (class targets). *)
val input_int : t -> int -> vid

(** NCHW convolution (im2col + GEMM + reshape, three kernel launches). *)
val conv2d : t -> input:vid -> weight:vid -> p:Conv.params -> vid

val relu : t -> vid -> vid

(** Per-channel bias add fused with ReLU on an NCHW tensor. *)
val bias_relu : t -> input:vid -> bias:vid -> vid

(** Elementwise sum of two same-sized tensors (residual join). *)
val add : t -> vid -> vid -> vid

val maxpool : t -> size:int -> stride:int -> vid -> vid

(** NCHW -> NC mean over the spatial dims. *)
val global_avgpool : t -> vid -> vid

(** Inference batchnorm from per-channel gamma/beta/mean/var. *)
val batchnorm :
  t -> input:vid -> gamma:vid -> beta:vid -> mean:vid -> var:vid -> vid

(** [N x IN] by [OUT x IN] weight -> [N x OUT]. *)
val linear : t -> input:vid -> weight:vid -> vid

(** Row-wise max-subtracted softmax on a rank-2 tensor. *)
val softmax : t -> vid -> vid

(** Elementwise natural log. *)
val log_ : t -> vid -> vid

(** Mean negative log-likelihood of [log_probs] (rank-2) at integer
    [targets]; yields a single-element value. *)
val nll_loss : t -> log_probs:vid -> targets:vid -> vid

(** {1 Feeds and results}

    The executor works on rank-1 buffers; these convert to and from
    [Tensorlib] values. *)

val buffer_of_tensor : Tensor.t -> Interp.Mem.buffer
val buffer_of_floats : float array -> Interp.Mem.buffer
val buffer_of_ints : int array -> Interp.Mem.buffer
val tensor_of_buffer : shape:int array -> Interp.Mem.buffer -> Tensor.t

(** {1 Execution} *)

(** [run g km arena ~feeds outs] executes every node in order and
    returns the buffers of [outs].  Returned buffers live in the arena:
    copy results out (e.g. {!tensor_of_buffer}) before
    [Arena.reset]. *)
val run :
  t ->
  Kmgr.t ->
  Arena.t ->
  feeds:(vid * Interp.Mem.buffer) list ->
  vid list ->
  Interp.Mem.buffer list
