(* Tensor arena for the graph executor: rank-1 F64 buffers pooled by
   element count.  A forward pass grabs its intermediates, reads its
   outputs, then [reset]s — after the first pass every grab is a reuse,
   so warm passes allocate no tensor storage (mirroring the compiled
   engine's zero-allocation warm launches). *)

type t =
  { free : (int, Interp.Mem.buffer Queue.t) Hashtbl.t
  ; mutable held : Interp.Mem.buffer list
  ; mutable allocs : int
  ; mutable reuses : int
  }

let create () : t =
  { free = Hashtbl.create 16; held = []; allocs = 0; reuses = 0 }

let zero (b : Interp.Mem.buffer) =
  for i = 0 to Interp.Mem.size b - 1 do
    Interp.Mem.set_f b i 0.0
  done

(* A zero-filled F64 buffer of [n] elements, owned by the caller until
   the next [reset]. *)
let grab (t : t) (n : int) : Interp.Mem.buffer =
  let q =
    match Hashtbl.find_opt t.free n with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.replace t.free n q;
      q
  in
  let b =
    if Queue.is_empty q then begin
      t.allocs <- t.allocs + 1;
      Interp.Mem.alloc_buffer Ir.Types.F64 [| n |]
    end
    else begin
      t.reuses <- t.reuses + 1;
      let b = Queue.pop q in
      zero b;
      b
    end
  in
  t.held <- b :: t.held;
  b

(* Return every held buffer to its free list.  Buffers handed out since
   the last reset must not be read afterwards — copy results out first. *)
let reset (t : t) : unit =
  List.iter
    (fun (b : Interp.Mem.buffer) ->
      Queue.push b (Hashtbl.find t.free (Interp.Mem.size b)))
    t.held;
  t.held <- []

let allocs t = t.allocs
let reuses t = t.reuses
let live t = List.length t.held
