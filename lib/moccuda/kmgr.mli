(** The kernel manager: a compile-once cache over {!Kernels} sources,
    each compiled through the full pipeline (frontend -> fault-tolerant
    barrier lowering via {!Core.Passmgr} -> OpenMP lowering -> verifier
    -> the compiled multicore engine) and launched under a
    {!Runtime.Watchdog} deadline.

    Cache discipline follows [Serve.Cache]: MD5 keys over
    (op, shape, entry, pipeline options), a digest seal over the
    lowered IR re-verified on every hit, corrupt entries dropped and
    counted rather than trusted. *)

type t

type stats =
  { mutable compiles : int
  ; mutable hits : int
  ; mutable misses : int
  ; mutable corrupt_dropped : int
  ; mutable degraded : int
        (** kernels that did not compile at the Primary rung *)
  ; mutable interp_fallbacks : int
        (** entries the compiled engine rejected, running on the serial
            interpreter rung *)
  ; mutable launches : int
  }

type kernel_info =
  { kname : string
  ; kshape : int list
  ; krung : string
        (** ["primary"], ["degraded:STAGE"] or ["fallback"], with
            ["+interp"] appended when the engine rejected the entry *)
  ; klaunches : int
  ; ksecs : float (** cumulative wall-clock inside launches *)
  }

(** [create ()] makes an empty manager.  [domains] (default 4) is the
    team size of every launch, [deadline_ms] (default 60000) the
    watchdog bound per launch, [options] the barrier-lowering pipeline
    configuration (part of the cache key). *)
val create :
  ?domains:int ->
  ?deadline_ms:int ->
  ?options:Core.Cpuify.options ->
  unit ->
  t

(** The cache key of a kernel under this manager's pipeline options. *)
val key : t -> Kernels.t -> string

(** Launch a kernel with the given arguments (buffer layout per the
    {!Kernels} constructor), compiling and caching it on first use.
    [domains] overrides the manager's team size for this launch.
    @raise Runtime.Exec.Timeout when the watchdog deadline expires.
    @raise Interp.Mem.Runtime_error on kernel failure. *)
val launch : ?domains:int -> t -> Kernels.t -> Interp.Mem.rv list -> unit

val stats : t -> stats
val domains : t -> int

(** Per-kernel cache entries (name order): rung, launches, seconds. *)
val kernels : t -> kernel_info list

val stats_to_string : stats -> string
