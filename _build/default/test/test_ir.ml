(* Unit tests for the IR core: builder, printer, verifier, clone. *)

open Ir

let scalar_f32 = Types.Scalar Types.F32

let build_simple_func () =
  Builder.func "axpy"
    [ ("a", scalar_f32)
    ; ("x", Types.memref Types.F32 [ None ])
    ; ("y", Types.memref Types.F32 [ None ])
    ; ("n", Types.Scalar Types.Index)
    ]
    (fun args ->
      let seq = Builder.Seq.create () in
      let ev op = Builder.Seq.emitv seq op in
      let e op = ignore (Builder.Seq.emit seq op) in
      let c0 = ev (Builder.const_int 0) in
      let c1 = ev (Builder.const_int 1) in
      let loop =
        Builder.for_ ~lo:c0 ~hi:args.(3) ~step:c1 (fun iv ->
            let s = Builder.Seq.create () in
            let ev' op = Builder.Seq.emitv s op in
            let xi = ev' (Builder.load args.(1) [ iv ]) in
            let yi = ev' (Builder.load args.(2) [ iv ]) in
            let ax = ev' (Builder.binop Op.Mul args.(0) xi) in
            let r = ev' (Builder.binop Op.Add ax yi) in
            ignore (Builder.Seq.emit s (Builder.store r args.(2) [ iv ]));
            Builder.Seq.to_list s)
      in
      e loop;
      e (Builder.return_ []);
      Builder.Seq.to_list seq)

let test_verify_ok () =
  let m = Builder.module_ [ build_simple_func () ] in
  match Verifier.verify_result m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "verifier rejected valid IR: %s" e

let test_verify_rejects_use_before_def () =
  let dangling = Value.fresh (Types.Scalar Types.Index) in
  let f =
    Builder.func "bad" [] (fun _ ->
        let op = Builder.binop Op.Add dangling dangling in
        [ op; Builder.return_ [] ])
  in
  let m = Builder.module_ [ f ] in
  match Verifier.verify_result m with
  | Ok () -> Alcotest.fail "verifier accepted use-before-def"
  | Error _ -> ()

let test_verify_rejects_barrier_outside_parallel () =
  let f = Builder.func "bad" [] (fun _ -> [ Builder.barrier (); Builder.return_ [] ]) in
  let m = Builder.module_ [ f ] in
  match Verifier.verify_result m with
  | Ok () -> Alcotest.fail "verifier accepted stray barrier"
  | Error _ -> ()

let test_printer_mentions_structure () =
  let m = Builder.module_ [ build_simple_func () ] in
  let s = Printer.op_to_string m in
  List.iter
    (fun frag ->
      let found =
        let fl = String.length frag and sl = String.length s in
        let rec go i = i + fl <= sl && (String.sub s i fl = frag || go (i + 1)) in
        go 0
      in
      if not found then Alcotest.failf "printed IR missing %S:\n%s" frag s)
    [ "func.func @axpy"; "scf.for"; "memref.load"; "memref.store"
    ; "arith.mulf"; "func.return" ]

let test_clone_remaps_values () =
  let f = build_simple_func () in
  let f' = Clone.clone_op_fresh f in
  (* Collect all value ids of both; they must be disjoint. *)
  let ids op =
    let acc = ref [] in
    Op.iter
      (fun o ->
        Array.iter (fun (v : Value.t) -> acc := v.id :: !acc) o.results;
        Array.iter
          (fun (r : Op.region) ->
            Array.iter (fun (v : Value.t) -> acc := v.id :: !acc) r.rargs)
          o.regions)
      op;
    !acc
  in
  let a = ids f and b = ids f' in
  List.iter
    (fun id ->
      if List.mem id a then Alcotest.failf "clone shares value id %d" id)
    b;
  (* And the clone must still verify. *)
  match Verifier.verify_result (Builder.module_ [ f' ]) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "clone does not verify: %s" e

let test_free_values () =
  let x = Value.fresh (Types.Scalar Types.Index) in
  let op1 = Builder.const_int 4 in
  let op2 = Builder.binop Op.Add (Op.result op1) x in
  let free = Rewrite.free_values [ op1; op2 ] in
  Alcotest.(check bool) "x is free" true (Value.Set.mem x free);
  Alcotest.(check bool)
    "op1 result is not free" false
    (Value.Set.mem (Op.result op1) free)

let tests =
  [ Alcotest.test_case "verify ok" `Quick test_verify_ok
  ; Alcotest.test_case "verify rejects use-before-def" `Quick
      test_verify_rejects_use_before_def
  ; Alcotest.test_case "verify rejects stray barrier" `Quick
      test_verify_rejects_barrier_outside_parallel
  ; Alcotest.test_case "printer structure" `Quick test_printer_mentions_structure
  ; Alcotest.test_case "clone remaps values" `Quick test_clone_remaps_values
  ; Alcotest.test_case "free values" `Quick test_free_values
  ]
