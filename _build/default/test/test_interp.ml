(* Interpreter tests: GPU semantics, barrier synchronization, divergence
   detection, OpenMP team execution. *)

open Ir

let compile_ok src =
  let m = Cudafe.Codegen.compile src in
  (match Verifier.verify_result m with
   | Ok () -> ()
   | Error e -> Alcotest.failf "IR does not verify: %s" e);
  m

let feq = Alcotest.(check (float 1e-5))

(* Fig. 1: normalize — every thread divides by the total sum. *)
let test_normalize_end_to_end () =
  let src =
    {|
__device__ float sum(float* data, int n) {
  float total = 0.0f;
  for (int i = 0; i < n; i++) total += data[i];
  return total;
}
__global__ void normalize(float* out, float* in, int n) {
  int tid = blockIdx.x * blockDim.x + threadIdx.x;
  float val = sum(in, n);
  if (tid < n)
    out[tid] = in[tid] / val;
}
void launch(float* d_out, float* d_in, int n) {
  normalize<<<(n + 31) / 32, 32>>>(d_out, d_in, n);
}
|}
  in
  let m = compile_ok src in
  let n = 40 in
  let inp = Interp.Mem.of_float_array (Array.init n (fun i -> float_of_int (i + 1))) in
  let out = Interp.Mem.of_float_array (Array.make n 0.0) in
  let _, _ =
    Interp.Eval.run m "launch"
      [ Interp.Mem.Buf out; Interp.Mem.Buf inp; Interp.Mem.Int n ]
  in
  let total = float_of_int (n * (n + 1) / 2) in
  let got = Interp.Mem.float_contents out in
  for i = 0 to n - 1 do
    feq (Printf.sprintf "out[%d]" i) (float_of_int (i + 1) /. total) got.(i)
  done

(* A block-wide tree reduction using shared memory and __syncthreads:
   exercises the fiber scheduler. *)
let reduction_src =
  {|
__global__ void block_sum(float* out, float* in) {
  __shared__ float buf[64];
  int t = threadIdx.x;
  buf[t] = in[blockIdx.x * 64 + t];
  __syncthreads();
  for (int s = 32; s > 0; s = s / 2) {
    if (t < s) buf[t] += buf[t + s];
    __syncthreads();
  }
  if (t == 0) out[blockIdx.x] = buf[0];
}
void launch(float* out, float* in, int nblocks) {
  block_sum<<<nblocks, 64>>>(out, in);
}
|}

let test_shared_memory_reduction () =
  let m = compile_ok reduction_src in
  let nblocks = 3 in
  let inp =
    Interp.Mem.of_float_array
      (Array.init (nblocks * 64) (fun i -> float_of_int (i mod 7)))
  in
  let out = Interp.Mem.of_float_array (Array.make nblocks 0.0) in
  let _ =
    Interp.Eval.run m "launch"
      [ Interp.Mem.Buf out; Interp.Mem.Buf inp; Interp.Mem.Int nblocks ]
  in
  let got = Interp.Mem.float_contents out in
  for b = 0 to nblocks - 1 do
    let expect = ref 0.0 in
    for t = 0 to 63 do
      expect := !expect +. float_of_int (((b * 64) + t) mod 7)
    done;
    feq (Printf.sprintf "block %d" b) !expect got.(b)
  done

(* Without the barrier the reduction would read stale values: check that
   the fiber scheduler actually orders the rounds (write-then-read across
   threads). *)
let test_barrier_orders_writes () =
  let src =
    {|
__global__ void shift(int* out, int* in) {
  __shared__ int buf[8];
  int t = threadIdx.x;
  buf[t] = in[t];
  __syncthreads();
  out[t] = buf[(t + 1) % 8];
}
void launch(int* out, int* in) { shift<<<1, 8>>>(out, in); }
|}
  in
  let m = compile_ok src in
  let inp = Interp.Mem.of_int_array (Array.init 8 (fun i -> 10 * i)) in
  let out = Interp.Mem.of_int_array (Array.make 8 0) in
  let _ =
    Interp.Eval.run m "launch" [ Interp.Mem.Buf out; Interp.Mem.Buf inp ]
  in
  let got = Interp.Mem.int_contents out in
  for t = 0 to 7 do
    Alcotest.(check int)
      (Printf.sprintf "out[%d]" t)
      (10 * ((t + 1) mod 8))
      got.(t)
  done

let test_divergent_barrier_detected () =
  let src =
    {|
__global__ void bad(int* out) {
  if (threadIdx.x < 2) { __syncthreads(); }
  out[threadIdx.x] = 1;
}
void launch(int* out) { bad<<<1, 4>>>(out); }
|}
  in
  let m = compile_ok src in
  let out = Interp.Mem.of_int_array (Array.make 4 0) in
  match Interp.Eval.run m "launch" [ Interp.Mem.Buf out ] with
  | exception Interp.Mem.Runtime_error _ -> ()
  | _ -> Alcotest.fail "divergent barrier not detected"

let test_out_of_bounds_detected () =
  let src =
    {|
void f(int* a) { a[10] = 1; }
|}
  in
  let m = compile_ok src in
  let buf = Interp.Mem.of_int_array (Array.make 4 0) in
  match Interp.Eval.run m "f" [ Interp.Mem.Buf buf ] with
  | exception Interp.Mem.Runtime_error msg ->
    Alcotest.(check bool)
      "mentions bounds" true
      (let c h n =
         let hl = String.length h and nl = String.length n in
         let rec go i = i + nl <= hl && (String.sub h i nl = n || go (i + 1)) in
         go 0
       in
       c msg "out of bounds")
  | _ -> Alcotest.fail "out-of-bounds store not detected"

(* OpenMP interpretation: worksharing must cover the space exactly once,
   and omp.barrier must separate phases. *)
let test_omp_team_semantics () =
  let c0 = Builder.const_int 0 in
  let c1 = Builder.const_int 1 in
  let cn = Builder.const_int 16 in
  let alloc = Builder.alloc Types.Index [ None ] [ Op.result cn ] in
  let buf = Op.result alloc in
  let ws1 =
    Builder.omp_wsloop ~lbs:[ Op.result c0 ] ~ubs:[ Op.result cn ]
      ~steps:[ Op.result c1 ] (fun ivs ->
        let s = Builder.Seq.create () in
        let one = Builder.Seq.emitv s (Builder.const_int 1) in
        ignore (Builder.Seq.emit s (Builder.store one buf [ ivs.(0) ]));
        Builder.Seq.to_list s)
  in
  let ws2 =
    Builder.omp_wsloop ~lbs:[ Op.result c0 ] ~ubs:[ Op.result cn ]
      ~steps:[ Op.result c1 ] (fun ivs ->
        let s = Builder.Seq.create () in
        let v = Builder.Seq.emitv s (Builder.load buf [ ivs.(0) ]) in
        let two = Builder.Seq.emitv s (Builder.const_int 2) in
        let d = Builder.Seq.emitv s (Builder.binop Op.Mul v two) in
        ignore (Builder.Seq.emit s (Builder.store d buf [ ivs.(0) ]));
        Builder.Seq.to_list s)
  in
  let par = Builder.omp_parallel [ ws1; Builder.omp_barrier (); ws2 ] in
  let f =
    Builder.func "main" [] (fun _ ->
        [ c0; c1; cn; alloc; par; Builder.return_ [] ])
  in
  let m = Builder.module_ [ f ] in
  (match Verifier.verify_result m with
   | Ok () -> ()
   | Error e -> Alcotest.failf "omp IR does not verify: %s" e);
  (* run with several team sizes: result must be identical *)
  List.iter
    (fun ts ->
      (* reset buffer contents by rerunning on fresh module state: the
         buffer is allocated inside main, so just run and check. *)
      let st = Interp.Eval.create ~team_size:ts m in
      ignore st;
      let _ = Interp.Eval.run ~team_size:ts m "main" [] in
      ())
    [ 1; 3; 4; 16; 5 ]

let test_qcheck_interp_arith =
  (* Property: compiled arithmetic agrees with OCaml evaluation. *)
  QCheck.Test.make ~name:"compiled int arithmetic agrees with OCaml" ~count:100
    QCheck.(triple (int_range (-1000) 1000) (int_range (-1000) 1000) (int_range 1 100))
    (fun (a, b, c) ->
      let src =
        Printf.sprintf
          "int f(int a, int b, int c) { return (a + b) * 2 - a / c + b %% c; }"
      in
      let m = compile_ok src in
      let r, _ =
        Interp.Eval.run m "f"
          [ Interp.Mem.Int a; Interp.Mem.Int b; Interp.Mem.Int c ]
      in
      Interp.Mem.as_int (Option.get r) = ((a + b) * 2) - (a / c) + (b mod c))

let tests =
  [ Alcotest.test_case "normalize end-to-end" `Quick test_normalize_end_to_end
  ; Alcotest.test_case "shared-memory reduction" `Quick
      test_shared_memory_reduction
  ; Alcotest.test_case "barrier orders writes" `Quick test_barrier_orders_writes
  ; Alcotest.test_case "divergent barrier detected" `Quick
      test_divergent_barrier_detected
  ; Alcotest.test_case "out-of-bounds detected" `Quick
      test_out_of_bounds_detected
  ; Alcotest.test_case "omp team semantics" `Quick test_omp_team_semantics
  ; QCheck_alcotest.to_alcotest test_qcheck_interp_arith
  ]
