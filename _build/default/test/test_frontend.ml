(* Frontend tests: lexer, parser, return elimination, codegen structure. *)

open Ir

let contains hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let compile_ok src =
  let m = Cudafe.Codegen.compile src in
  (match Verifier.verify_result m with
   | Ok () -> ()
   | Error e ->
     Alcotest.failf "generated IR does not verify: %s\n%s" e
       (Printer.op_to_string m));
  m

let fig1_src =
  {|
__device__ float sum(float* data, int n) {
  float total = 0.0f;
  for (int i = 0; i < n; i++) total += data[i];
  return total;
}
__global__ void normalize(float* out, float* in, int n) {
  int tid = blockIdx.x * blockDim.x + threadIdx.x;
  float val = sum(in, n);
  if (tid < n)
    out[tid] = in[tid] / val;
}
void launch(float* d_out, float* d_in, int n) {
  normalize<<<(n + 31) / 32, 32>>>(d_out, d_in, n);
}
|}

let test_lexer_launch_tokens () =
  let toks = Cudafe.Lexer.tokenize "k<<<a, b>>>(x);" in
  let kinds =
    Array.to_list toks
    |> List.map (fun (t : Cudafe.Lexer.postoken) ->
        Cudafe.Lexer.token_to_string t.tok)
  in
  Alcotest.(check (list string))
    "tokens"
    [ "k"; "<<<"; "a"; ","; "b"; ">>>"; "("; "x"; ")"; ";"; "<eof>" ]
    kinds

let test_parse_fig1 () =
  let prog = Cudafe.Parser.parse_program fig1_src in
  Alcotest.(check int) "3 functions" 3 (List.length prog);
  let k = List.nth prog 1 in
  Alcotest.(check string) "kernel name" "normalize" k.Cudafe.Ast.fn_name;
  Alcotest.(check bool)
    "kernel qualifier" true
    (k.Cudafe.Ast.fn_qual = Cudafe.Ast.Q_global)

let test_codegen_fig1_structure () =
  let m = compile_ok fig1_src in
  let s = Printer.op_to_string m in
  List.iter
    (fun frag ->
      if not (contains s frag) then
        Alcotest.failf "missing %S in:\n%s" frag s)
    [ "func.func @launch"; "func.func @sum"; "scf.parallel<grid>"
    ; "scf.parallel<block>"; "func.call @sum" ];
  (* the kernel is inlined at the launch site, not emitted standalone *)
  if contains s "func.func @normalize" then
    Alcotest.fail "kernel should be inlined, not emitted"

let test_precedence () =
  (* 2 + 3 * 4 == 14, (2 + 3) * 4 == 20 *)
  let src =
    {|
int f() { return 2 + 3 * 4; }
int g() { return (2 + 3) * 4; }
|}
  in
  let m = compile_ok src in
  let r, _ = Interp.Eval.run m "f" [] in
  Alcotest.(check int) "f" 14 (Interp.Mem.as_int (Option.get r));
  let r, _ = Interp.Eval.run m "g" [] in
  Alcotest.(check int) "g" 20 (Interp.Mem.as_int (Option.get r))

let test_early_return_elimination () =
  let src =
    {|
int f(int x) {
  if (x < 0) return -1;
  int y = x * 2;
  if (y > 10) return 10;
  return y;
}
|}
  in
  let m = compile_ok src in
  let run n =
    let r, _ = Interp.Eval.run m "f" [ Interp.Mem.Int n ] in
    Interp.Mem.as_int (Option.get r)
  in
  Alcotest.(check int) "negative" (-1) (run (-5));
  Alcotest.(check int) "clamped" 10 (run 7);
  Alcotest.(check int) "normal" 6 (run 3)

let test_return_in_loop () =
  let src =
    {|
int find(int* a, int n, int key) {
  for (int i = 0; i < n; i++) {
    if (a[i] == key) return i;
  }
  return -1;
}
|}
  in
  let m = compile_ok src in
  let buf = Interp.Mem.of_int_array [| 5; 7; 9; 11 |] in
  let run key =
    let r, _ =
      Interp.Eval.run m "find"
        [ Interp.Mem.Buf buf; Interp.Mem.Int 4; Interp.Mem.Int key ]
    in
    Interp.Mem.as_int (Option.get r)
  in
  Alcotest.(check int) "found" 2 (run 9);
  Alcotest.(check int) "missing" (-1) (run 8)

let test_shortcircuit_guard () =
  (* i < n && a[i] > 0 must not read a[i] when i >= n *)
  let src =
    {|
int f(int* a, int n, int i) {
  if (i < n && a[i] > 0) return 1;
  return 0;
}
|}
  in
  let m = compile_ok src in
  let buf = Interp.Mem.of_int_array [| 3 |] in
  let run i =
    let r, _ =
      Interp.Eval.run m "f"
        [ Interp.Mem.Buf buf; Interp.Mem.Int 1; Interp.Mem.Int i ]
    in
    Interp.Mem.as_int (Option.get r)
  in
  Alcotest.(check int) "in range" 1 (run 0);
  (* out of range must not fault *)
  Alcotest.(check int) "out of range" 0 (run 5)

let test_ternary_and_casts () =
  let src =
    {|
float f(int x) {
  float y = x > 2 ? 1.5f : 0.5f;
  return y + (float)(x / 2);
}
|}
  in
  let m = compile_ok src in
  let run n =
    let r, _ = Interp.Eval.run m "f" [ Interp.Mem.Int n ] in
    Interp.Mem.as_float (Option.get r)
  in
  Alcotest.(check (float 1e-6)) "x=5" 3.5 (run 5);
  Alcotest.(check (float 1e-6)) "x=1" 0.5 (run 1)

let test_while_and_do_while () =
  let src =
    {|
int collatz_steps(int n) {
  int steps = 0;
  while (n != 1) {
    if (n % 2 == 0) n = n / 2;
    else n = 3 * n + 1;
    steps = steps + 1;
  }
  return steps;
}
int do_once(int n) {
  int c = 0;
  do { c = c + 1; } while (c < n);
  return c;
}
|}
  in
  let m = compile_ok src in
  let run f n =
    let r, _ = Interp.Eval.run m f [ Interp.Mem.Int n ] in
    Interp.Mem.as_int (Option.get r)
  in
  Alcotest.(check int) "collatz 6" 8 (run "collatz_steps" 6);
  Alcotest.(check int) "do-while executes once" 1 (run "do_once" 0);
  Alcotest.(check int) "do-while loops" 5 (run "do_once" 5)

let test_parse_errors_are_positioned () =
  match Cudafe.Parser.parse_program "int f( { return 0; }" with
  | exception Cudafe.Parser.Error msg ->
    Alcotest.(check bool) "mentions line" true (contains msg "line 1")
  | _ -> Alcotest.fail "expected parse error"

let test_malloc_free () =
  let src =
    {|
float f(int n) {
  float* a = (float*)malloc(n * sizeof(float));
  for (int i = 0; i < n; i++) a[i] = (float)i;
  float s = 0.0f;
  for (int i = 0; i < n; i++) s += a[i];
  free(a);
  return s;
}
|}
  in
  let m = compile_ok src in
  let r, _ = Interp.Eval.run m "f" [ Interp.Mem.Int 5 ] in
  Alcotest.(check (float 1e-6)) "sum" 10.0 (Interp.Mem.as_float (Option.get r))

let tests =
  [ Alcotest.test_case "lexer launch tokens" `Quick test_lexer_launch_tokens
  ; Alcotest.test_case "parse fig1" `Quick test_parse_fig1
  ; Alcotest.test_case "codegen fig1 structure" `Quick
      test_codegen_fig1_structure
  ; Alcotest.test_case "precedence" `Quick test_precedence
  ; Alcotest.test_case "early return elimination" `Quick
      test_early_return_elimination
  ; Alcotest.test_case "return in loop" `Quick test_return_in_loop
  ; Alcotest.test_case "short-circuit guard" `Quick test_shortcircuit_guard
  ; Alcotest.test_case "ternary and casts" `Quick test_ternary_and_casts
  ; Alcotest.test_case "while and do-while" `Quick test_while_and_do_while
  ; Alcotest.test_case "positioned parse errors" `Quick
      test_parse_errors_are_positioned
  ; Alcotest.test_case "malloc/free" `Quick test_malloc_free
  ]

(* appended: warp-primitive emulation tests *)
let warp_reduce_src =
  {|
__global__ void warp_sum(float* out, float* in) {
  int t = threadIdx.x;
  float v = in[blockIdx.x * 32 + t];
  for (int d = 16; d > 0; d = d / 2) {
    v += __shfl_down_sync(0xffffffff, v, d);
  }
  __syncwarp();
  if (t == 0) out[blockIdx.x] = v;
}
void launch(float* out, float* in, int nblocks) {
  warp_sum<<<nblocks, 32>>>(out, in);
}
|}

let run_warp m =
  let nblocks = 2 in
  let inp =
    Interp.Mem.of_float_array
      (Array.init (nblocks * 32) (fun i -> float_of_int (i mod 5)))
  in
  let out = Interp.Mem.of_float_array (Array.make nblocks 0.0) in
  let _ =
    Interp.Eval.run m "launch"
      [ Interp.Mem.Buf out; Interp.Mem.Buf inp; Interp.Mem.Int nblocks ]
  in
  Interp.Mem.float_contents out

let test_warp_shuffle_reduction () =
  let m = compile_ok warp_reduce_src in
  let got = run_warp m in
  for b = 0 to 1 do
    let expect = ref 0.0 in
    for t = 0 to 31 do
      expect := !expect +. float_of_int (((b * 32) + t) mod 5)
    done;
    Alcotest.(check (float 1e-4)) (Printf.sprintf "block %d" b) !expect got.(b)
  done

let test_warp_shuffle_xor () =
  let src =
    {|
__global__ void bfly(float* data) {
  int t = threadIdx.x;
  float v = data[t];
  v += __shfl_xor_sync(0xffffffff, v, 1);
  data[t] = v;
}
void launch(float* data) { bfly<<<1, 32>>>(data); }
|}
  in
  let m = compile_ok src in
  let buf = Interp.Mem.of_float_array (Array.init 32 float_of_int) in
  let _ = Interp.Eval.run m "launch" [ Interp.Mem.Buf buf ] in
  let got = Interp.Mem.float_contents buf in
  for t = 0 to 31 do
    Alcotest.(check (float 1e-6))
      (Printf.sprintf "lane %d" t)
      (float_of_int (t + (t lxor 1)))
      got.(t)
  done

let tests =
  tests
  @ [ Alcotest.test_case "warp shuffle reduction" `Quick
        test_warp_shuffle_reduction
    ; Alcotest.test_case "warp shuffle xor butterfly" `Quick
        test_warp_shuffle_xor
    ]
