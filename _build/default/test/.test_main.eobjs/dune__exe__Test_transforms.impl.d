test/test_transforms.ml: Alcotest Analysis Array Core Cudafe Float Interp Ir List Op Option Printer Printf Verifier
