test/test_moccuda.ml: Alcotest Array Conv Float Gemm Layers List Moccuda Option Printf Runtime Tensor Tensorlib
