test/test_frontend.ml: Alcotest Array Cudafe Interp Ir List Option Printer Printf String Verifier
