test/test_random.ml: Array Core Cudafe Float Interp Ir List Mcuda Printf QCheck QCheck_alcotest Random String
