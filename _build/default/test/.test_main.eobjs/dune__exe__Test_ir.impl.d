test/test_ir.ml: Alcotest Array Builder Clone Ir List Op Printer Rewrite String Types Value Verifier
