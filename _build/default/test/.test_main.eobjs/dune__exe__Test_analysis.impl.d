test/test_analysis.ml: Affine Alcotest Analysis Array Core Cudafe Effects Info Ir List Op Option QCheck QCheck_alcotest Types Value
