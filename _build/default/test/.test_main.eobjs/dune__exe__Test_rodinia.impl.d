test/test_rodinia.ml: Alcotest Core Cudafe Float Interp Ir List Mcuda Op Rodinia Verifier
