test/test_omp.ml: Alcotest Analysis Array Core Cudafe Float Interp Ir List Op Printer Printf Rodinia Runtime Verifier
