test/test_interp.ml: Alcotest Array Builder Cudafe Interp Ir List Op Option Printf QCheck QCheck_alcotest String Types Verifier
