(* OpenMP lowering tests: differential against GPU semantics under several
   team sizes, structural checks for the Sec. IV-D optimizations, and
   sanity properties of the simulated-time cost model. *)

open Ir

let compile_ok src =
  let m = Cudafe.Codegen.compile src in
  (match Verifier.verify_result m with
   | Ok () -> ()
   | Error e -> Alcotest.failf "IR does not verify: %s" e);
  m

let verify_ok m =
  match Verifier.verify_result m with
  | Ok () -> ()
  | Error e ->
    Alcotest.failf "lowered IR does not verify: %s\n%s" e (Printer.op_to_string m)

let lower ?(options = Core.Omp_lower.default_options) m =
  Core.Cpuify.pipeline m;
  ignore (Core.Omp_lower.run ~options m);
  Core.Canonicalize.run m;
  verify_ok m

let count p m =
  let n = ref 0 in
  Op.iter (fun o -> if p o then incr n) m;
  !n

let reduction_src =
  {|
__global__ void block_sum(float* out, float* in) {
  __shared__ float buf[64];
  int t = threadIdx.x;
  buf[t] = in[blockIdx.x * 64 + t];
  __syncthreads();
  for (int s = 32; s > 0; s = s / 2) {
    if (t < s) buf[t] += buf[t + s];
    __syncthreads();
  }
  if (t == 0) out[blockIdx.x] = buf[0];
}
void launch(float* out, float* in, int nblocks) {
  block_sum<<<nblocks, 64>>>(out, in);
}
|}

let saxpy_src =
  {|
__global__ void saxpy(float* y, float* x, float a, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) y[i] = a * x[i] + y[i];
}
void launch(float* y, float* x, int n) {
  saxpy<<<(n + 63) / 64, 64>>>(y, x, 2.0f, n);
}
|}

let run_buffers ?(team_size = 4) m fname (bufs : float array array) scalars =
  let copies = Array.map Array.copy bufs in
  let rbufs = Array.map Interp.Mem.of_float_array copies in
  let args =
    Array.to_list (Array.map (fun b -> Interp.Mem.Buf b) rbufs)
    @ List.map (fun n -> Interp.Mem.Int n) scalars
  in
  let _ = Interp.Eval.run ~team_size m fname args in
  Array.map Interp.Mem.float_contents rbufs

let check_differential ?(eps = 1e-4) src fname bufs scalars options =
  let reference =
    let m = compile_ok src in
    run_buffers m fname bufs scalars
  in
  let m = compile_ok src in
  lower ~options m;
  Alcotest.(check int)
    "no scf.parallel left" 0
    (count (fun o -> match o.Op.kind with Op.Parallel _ -> true | _ -> false) m);
  List.iter
    (fun ts ->
      let got = run_buffers ~team_size:ts m fname bufs scalars in
      Array.iteri
        (fun bi exp ->
          Array.iteri
            (fun i e ->
              if Float.abs (e -. got.(bi).(i)) > eps then
                Alcotest.failf "team=%d buffer %d index %d: expected %g, got %g"
                  ts bi i e got.(bi).(i))
            exp)
        reference)
    [ 1; 2; 4; 7 ]

let reduction_bufs () =
  [| Array.make 2 0.0; Array.init 128 (fun i -> float_of_int (i mod 9)) |]

let test_lower_reduction_inner_serial () =
  check_differential reduction_src "launch" (reduction_bufs ()) [ 2 ]
    Core.Omp_lower.default_options

let test_lower_reduction_inner_parallel () =
  check_differential reduction_src "launch" (reduction_bufs ()) [ 2 ]
    Core.Omp_lower.inner_par_options

let test_lower_saxpy_collapses () =
  let m = compile_ok saxpy_src in
  Core.Cpuify.pipeline m;
  let report = Core.Omp_lower.run m in
  verify_ok m;
  Alcotest.(check bool) "collapsed grid+block" true
    (report.Core.Omp_lower.collapsed >= 1);
  (* a collapsed saxpy is a single parallel region with a single 6-D (or
     2-D) worksharing loop *)
  Alcotest.(check int) "one omp.parallel" 1
    (count (fun o -> o.Op.kind = Op.OmpParallel) m)

let test_lower_saxpy_differential () =
  let n = 100 in
  check_differential saxpy_src "launch"
    [| Array.init n (fun i -> float_of_int i)
     ; Array.init n (fun i -> float_of_int (n - i))
    |]
    [ n ] Core.Omp_lower.default_options

let test_fusion_counts () =
  (* the reduction pipeline fissions into several adjacent parallel loops:
     with nested regions kept parallel, fusion and hoisting must merge
     thread-team startups *)
  let m = compile_ok reduction_src in
  Core.Cpuify.pipeline m;
  let report = Core.Omp_lower.run ~options:Core.Omp_lower.inner_par_options m in
  verify_ok m;
  Alcotest.(check bool)
    (Printf.sprintf "fused (%d) + hoisted (%d) > 0" report.Core.Omp_lower.fused
       report.Core.Omp_lower.hoisted)
    true
    (report.Core.Omp_lower.fused + report.Core.Omp_lower.hoisted > 0)

(* --- cost model sanity --- *)

let cost_of ?(threads = 8) ?(options = Core.Omp_lower.default_options) src n =
  let m = compile_ok src in
  lower ~options m;
  let r =
    Runtime.Cost.of_func Runtime.Machine.commodity ~threads m "launch"
      [ Runtime.Cost.Unk; Runtime.Cost.Unk; Runtime.Cost.Ki n ]
  in
  r.Runtime.Cost.seconds

let test_cost_scales_with_threads () =
  let t1 = cost_of ~threads:1 saxpy_src 100_000 in
  let t8 = cost_of ~threads:8 saxpy_src 100_000 in
  let t32 = cost_of ~threads:32 saxpy_src 100_000 in
  Alcotest.(check bool)
    (Printf.sprintf "1t %.3e > 8t %.3e > 32t*0.9 %.3e" t1 t8 t32)
    true
    (t1 > t8 && t8 >= t32 *. 0.9)

let test_cost_scales_with_size () =
  let small = cost_of saxpy_src 10_000 in
  let large = cost_of saxpy_src 1_000_000 in
  Alcotest.(check bool)
    (Printf.sprintf "small %.3e < large %.3e" small large)
    true (small < large)

let test_inner_serial_cheaper () =
  (* nested parallelism pays nested-team spawns; serialization avoids
     them (the paper's InnerSer vs InnerPar, Fig. 12) *)
  let ser =
    cost_of ~options:Core.Omp_lower.default_options reduction_src 64
  in
  let par =
    cost_of ~options:Core.Omp_lower.inner_par_options reduction_src 64
  in
  Alcotest.(check bool)
    (Printf.sprintf "serial %.3e <= parallel %.3e" ser par)
    true (ser <= par)

let tests =
  [ Alcotest.test_case "reduction lowering (inner serial)" `Quick
      test_lower_reduction_inner_serial
  ; Alcotest.test_case "reduction lowering (inner parallel)" `Quick
      test_lower_reduction_inner_parallel
  ; Alcotest.test_case "saxpy collapses" `Quick test_lower_saxpy_collapses
  ; Alcotest.test_case "saxpy lowering differential" `Quick
      test_lower_saxpy_differential
  ; Alcotest.test_case "fusion/hoist fire" `Quick test_fusion_counts
  ; Alcotest.test_case "cost scales with threads" `Quick
      test_cost_scales_with_threads
  ; Alcotest.test_case "cost scales with size" `Quick test_cost_scales_with_size
  ; Alcotest.test_case "inner serialization cheaper" `Quick
      test_inner_serial_cheaper
  ]

(* appended: suite-wide cost-model sanity *)

(* Simulated time must never increase with more threads, for every
   benchmark in the suite, under both lowering modes. *)
let test_cost_monotonic_across_suite () =
  List.iter
    (fun (b : Rodinia.Bench_def.t) ->
      let m = compile_ok b.cuda_src in
      Core.Cpuify.pipeline m;
      ignore (Core.Omp_lower.run m);
      Core.Canonicalize.run m;
      let args = Rodinia.Bench_def.cost_args b b.paper_size in
      let t threads =
        (Runtime.Cost.of_func Runtime.Machine.commodity ~threads m b.entry args)
          .Runtime.Cost.seconds
      in
      let prev = ref (t 1) in
      List.iter
        (fun th ->
          let cur = t th in
          if cur > !prev *. 1.0001 then
            Alcotest.failf "%s: time grew from %g to %g at %d threads" b.name
              !prev cur th;
          prev := cur)
        [ 2; 4; 8; 16; 32 ])
    Rodinia.Registry.all

(* Fig. 7/8 shape: lowering a barrier inside a serial loop interchanges
   the loops — the lowered reduction contains a serial loop (the
   descending tile loop is non-canonical, so it becomes an scf.while and
   takes the Fig. 8 helper path) whose body contains worksharing, not the
   other way around. *)
let test_interchange_shape () =
  let m = compile_ok reduction_src in
  Core.Cpuify.pipeline m;
  ignore (Core.Omp_lower.run ~options:Core.Omp_lower.inner_par_options m);
  let info = Analysis.Info.build m in
  let found = ref false in
  Ir.Op.iter
    (fun o ->
      if o.Ir.Op.kind = Ir.Op.OmpWsloop then begin
        (* some worksharing loop has a serial loop as ancestor *)
        let rec up (x : Ir.Op.op) =
          match Analysis.Info.parent info x with
          | None -> ()
          | Some p -> begin
            match p.Ir.Op.kind with
            | Ir.Op.For | Ir.Op.While -> found := true
            | _ -> up p
          end
        in
        up o
      end)
    m;
  Alcotest.(check bool) "serial loop encloses worksharing (Fig. 7/8)" true
    !found

let tests =
  tests
  @ [ Alcotest.test_case "cost monotonic across suite" `Quick
        test_cost_monotonic_across_suite
    ; Alcotest.test_case "interchange shape (Fig. 7/8)" `Quick
        test_interchange_shape
    ]
