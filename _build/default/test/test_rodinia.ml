(* Suite-wide integration tests: every Rodinia benchmark (and matmul)
   compiles through the frontend, survives the full optimization + barrier
   lowering + OpenMP pipeline, and produces the same results as the
   original CUDA program executed under GPU semantics.  The hand-written
   OpenMP references must also compile and run. *)

open Ir

let all = Rodinia.Registry.all @ [ Rodinia.Registry.matmul ]

let compile_ok name src =
  match Cudafe.Codegen.compile src with
  | m -> begin
    match Verifier.verify_result m with
    | Ok () -> m
    | Error e -> Alcotest.failf "%s: IR does not verify: %s" name e
  end
  | exception Cudafe.Parser.Error e -> Alcotest.failf "%s: parse: %s" name e
  | exception Cudafe.Codegen.Error e -> Alcotest.failf "%s: codegen: %s" name e

let run_and_checksum ?(team_size = 3) (m : Op.op) (b : Rodinia.Bench_def.t) :
  float =
  let w = b.mk_workload b.test_size in
  let args = Rodinia.Bench_def.args_of_workload w in
  (match Interp.Eval.run ~team_size m b.entry args with
   | _ -> ()
   | exception Interp.Mem.Runtime_error e ->
     Alcotest.failf "%s: runtime error: %s" b.name e);
  Rodinia.Bench_def.checksum w

let close a b =
  let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) /. scale < 1e-4

let test_differential (b : Rodinia.Bench_def.t) () =
  let reference = run_and_checksum (compile_ok b.name b.cuda_src) b in
  (* full Polygeist pipeline, inner serialization *)
  let m = compile_ok b.name b.cuda_src in
  Core.Cpuify.pipeline m;
  ignore (Core.Omp_lower.run m);
  Core.Canonicalize.run m;
  (match Verifier.verify_result m with
   | Ok () -> ()
   | Error e -> Alcotest.failf "%s: lowered IR does not verify: %s" b.name e);
  Alcotest.(check int)
    (b.name ^ ": barriers eliminated") 0
    (let n = ref 0 in
     Op.iter (fun o -> if o.Op.kind = Op.Barrier then incr n) m;
     !n);
  let got = run_and_checksum m b in
  if not (close reference got) then
    Alcotest.failf "%s: pipeline changed results: %g vs %g" b.name reference
      got;
  (* inner-parallel variant *)
  let m2 = compile_ok b.name b.cuda_src in
  Core.Cpuify.pipeline m2;
  ignore (Core.Omp_lower.run ~options:Core.Omp_lower.inner_par_options m2);
  let got2 = run_and_checksum m2 b in
  if not (close reference got2) then
    Alcotest.failf "%s: inner-parallel pipeline changed results: %g vs %g"
      b.name reference got2

let test_mcuda_differential (b : Rodinia.Bench_def.t) () =
  let reference = run_and_checksum (compile_ok b.name b.cuda_src) b in
  let m = compile_ok b.name b.cuda_src in
  Mcuda.lower m;
  let got = run_and_checksum m b in
  if not (close reference got) then
    Alcotest.failf "%s: MCUDA lowering changed results: %g vs %g" b.name
      reference got

let test_omp_reference (b : Rodinia.Bench_def.t) () =
  match b.omp_src with
  | None -> ()
  | Some src ->
    let m = compile_ok (b.name ^ "-omp") src in
    ignore (Core.Omp_lower.run m);
    let _ = run_and_checksum m b in
    ()

let tests =
  List.concat_map
    (fun (b : Rodinia.Bench_def.t) ->
      [ Alcotest.test_case (b.name ^ " differential") `Quick
          (test_differential b)
      ; Alcotest.test_case (b.name ^ " omp reference runs") `Quick
          (test_omp_reference b)
      ])
    all
  @ [ Alcotest.test_case "matmul mcuda differential" `Quick
        (test_mcuda_differential Rodinia.Registry.matmul)
    ]
