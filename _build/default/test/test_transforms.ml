(* Transformation tests: each optimization is checked structurally (did it
   do the thing) and differentially (results after the pass equal results
   under the original GPU semantics). *)

open Ir

let compile_ok src =
  let m = Cudafe.Codegen.compile src in
  (match Verifier.verify_result m with
   | Ok () -> ()
   | Error e -> Alcotest.failf "IR does not verify: %s" e);
  m

let verify_ok ?(what = "IR") m =
  match Verifier.verify_result m with
  | Ok () -> ()
  | Error e ->
    Alcotest.failf "%s does not verify: %s\n%s" what e (Printer.op_to_string m)

let count p m =
  let n = ref 0 in
  Op.iter (fun o -> if p o then incr n) m;
  !n

let count_barriers = count (fun o -> o.Op.kind = Op.Barrier)
let count_calls name =
  count (fun o -> match o.Op.kind with Op.Call n -> n = name | _ -> false)

(* Run [fname] on float buffers; returns final contents of each buffer. *)
let run_buffers m fname (bufs : float array array) (scalars : int list) :
  float array array =
  let copies = Array.map Array.copy bufs in
  let args =
    Array.to_list (Array.map (fun a -> Interp.Mem.Buf (Interp.Mem.of_float_array a)) copies)
    @ List.map (fun n -> Interp.Mem.Int n) scalars
  in
  let bufs_rt =
    List.filteri (fun i _ -> i < Array.length copies) args
    |> List.map (function Interp.Mem.Buf b -> b | _ -> assert false)
  in
  let _ = Interp.Eval.run m fname args in
  Array.of_list (List.map Interp.Mem.float_contents bufs_rt)

let check_same_results ?(eps = 1e-4) src fname bufs scalars transform =
  let m1 = compile_ok src in
  let expected = run_buffers m1 fname bufs scalars in
  let m2 = compile_ok src in
  transform m2;
  verify_ok ~what:"transformed IR" m2;
  let got = run_buffers m2 fname bufs scalars in
  Array.iteri
    (fun bi exp ->
      Array.iteri
        (fun i e ->
          if Float.abs (e -. got.(bi).(i)) > eps then
            Alcotest.failf "buffer %d index %d: expected %g, got %g" bi i e
              got.(bi).(i))
        exp)
    expected

(* --- canonicalize / cse --- *)

let test_constant_folding () =
  let src = "int f() { return (2 + 3) * 4 - 6 / 2; }" in
  let m = compile_ok src in
  Core.Canonicalize.run m;
  verify_ok m;
  (* everything folds to one constant + return *)
  let consts = count (fun o -> match o.Op.kind with Op.Constant _ -> true | _ -> false) m in
  let binops = count (fun o -> match o.Op.kind with Op.Binop _ -> true | _ -> false) m in
  Alcotest.(check int) "no binops left" 0 binops;
  Alcotest.(check bool) "some constant" true (consts >= 1);
  let r, _ = Interp.Eval.run m "f" [] in
  Alcotest.(check int) "value" 17 (Interp.Mem.as_int (Option.get r))

let test_if_folding () =
  let src = "int f(int x) { if (1 < 2) { x = x + 1; } else { x = x - 1; } return x; }" in
  let m = compile_ok src in
  Core.Canonicalize.run m;
  verify_ok m;
  Alcotest.(check int) "no ifs left" 0
    (count (fun o -> o.Op.kind = Op.If) m);
  let r, _ = Interp.Eval.run m "f" [ Interp.Mem.Int 10 ] in
  Alcotest.(check int) "value" 11 (Interp.Mem.as_int (Option.get r))

let test_cse_unifies () =
  let src =
    {|
float f(float* a, int i) {
  float x = a[i] * 2.0f;
  float y = a[i] * 2.0f;
  return x + y;
}
|}
  in
  let m = compile_ok src in
  Core.Canonicalize.run m;
  ignore (Core.Mem2reg.run m);
  Core.Canonicalize.run m;
  Core.Cse.run m;
  Core.Canonicalize.run m;
  verify_ok m;
  let loads = count (fun o -> o.Op.kind = Op.Load) m in
  Alcotest.(check int) "single load of a[i]" 1 loads;
  let b = Interp.Mem.of_float_array [| 1.0; 3.0 |] in
  let r, _ = Interp.Eval.run m "f" [ Interp.Mem.Buf b; Interp.Mem.Int 1 ] in
  Alcotest.(check (float 1e-6)) "value" 12.0 (Interp.Mem.as_float (Option.get r))

(* --- mem2reg --- *)

let test_mem2reg_slots_disappear () =
  let src =
    {|
int f(int x) {
  int a = x + 1;
  int b = a * 2;
  return b - x;
}
|}
  in
  let m = compile_ok src in
  ignore (Core.Mem2reg.run m);
  Core.Canonicalize.run m;
  verify_ok m;
  Alcotest.(check int) "no allocas left" 0
    (count (fun o -> o.Op.kind = Op.Alloca) m);
  let r, _ = Interp.Eval.run m "f" [ Interp.Mem.Int 5 ] in
  Alcotest.(check int) "value" 7 (Interp.Mem.as_int (Option.get r))

(* Fig. 9 pattern: store/load of shared[ty][tx] across a barrier forwards
   because the address is injective in the thread ids. *)
let test_forwarding_across_barrier () =
  let src =
    {|
__global__ void k(float* out, float* in) {
  __shared__ float w[4][8];
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  w[ty][tx] = in[ty * 8 + tx];
  __syncthreads();
  w[ty][tx] = w[ty][tx] * 2.0f;
  __syncthreads();
  out[ty * 8 + tx] = w[ty][tx];
}
void launch(float* out, float* in) { k<<<1, dim3(8, 4)>>>(out, in); }
|}
  in
  let m = compile_ok src in
  Core.Canonicalize.run m;
  let before = count (fun o -> o.Op.kind = Op.Load) m in
  let r = Core.Mem2reg.run m in
  Core.Canonicalize.run m;
  verify_ok m;
  Alcotest.(check bool)
    (Printf.sprintf "forwarded some loads (%d -> report %d)" before
       r.Core.Mem2reg.forwarded_loads)
    true
    (r.Core.Mem2reg.forwarded_loads >= 1);
  (* and the result still matches *)
  check_same_results src "launch"
    [| Array.make 32 0.0; Array.init 32 (fun i -> float_of_int i) |]
    []
    (fun m ->
      ignore (Core.Mem2reg.run m);
      Core.Canonicalize.run m)

(* --- barrier elimination: the Fig. 9 backprop shape --- *)

let backprop_like_src =
  {|
__global__ void layerforward(float* input, float* hidden, float* output, float* weights_in) {
  __shared__ float node[4];
  __shared__ float w[4][8];
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  int index = ty * 8 + tx;
  if (tx == 0)
    node[ty] = input[ty];
  __syncthreads();
  w[ty][tx] = weights_in[index];
  __syncthreads();
  w[ty][tx] = w[ty][tx] * node[ty];
  __syncthreads();
  for (int i = 1; i <= 2; i++) {
    if (ty % (1 << i) == 0)
      w[ty][tx] = w[ty][tx] + w[ty + (1 << (i - 1))][tx];
    __syncthreads();
  }
  hidden[index] = w[ty][tx];
  __syncthreads();
  if (tx == 0)
    output[ty] = w[tx][ty];
}
void launch(float* input, float* hidden, float* output, float* weights_in) {
  layerforward<<<1, dim3(8, 4)>>>(input, hidden, output, weights_in);
}
|}

let test_barrier_elimination_backprop () =
  let m = compile_ok backprop_like_src in
  Core.Canonicalize.run m;
  Core.Cse.run m;
  ignore (Core.Mem2reg.run m);
  Core.Canonicalize.run m;
  Core.Cse.run m;
  let before = count_barriers m in
  let eliminated = Core.Barrier_elim.run m in
  verify_ok m;
  Alcotest.(check bool)
    (Printf.sprintf "eliminated >= 2 of %d barriers (got %d)" before eliminated)
    true (eliminated >= 2)

let test_barrier_elim_preserves_semantics () =
  let input = Array.init 4 (fun i -> float_of_int (i + 1)) in
  let weights = Array.init 32 (fun i -> float_of_int (i mod 5) /. 4.0) in
  check_same_results backprop_like_src "launch"
    [| input; Array.make 32 0.0; Array.make 4 0.0; weights |]
    []
    (fun m ->
      Core.Canonicalize.run m;
      Core.Cse.run m;
      ignore (Core.Mem2reg.run m);
      Core.Canonicalize.run m;
      ignore (Core.Barrier_elim.run m))

(* A barrier that is genuinely required must never be eliminated. *)
let test_required_barrier_kept () =
  let src =
    {|
__global__ void shift(int* out, int* in) {
  __shared__ int buf[8];
  int t = threadIdx.x;
  buf[t] = in[t];
  __syncthreads();
  out[t] = buf[(t + 1) % 8];
}
void launch(int* out, int* in) { shift<<<1, 8>>>(out, in); }
|}
  in
  let m = compile_ok src in
  Core.Canonicalize.run m;
  Core.Cse.run m;
  ignore (Core.Mem2reg.run m);
  Core.Canonicalize.run m;
  let eliminated = Core.Barrier_elim.run m in
  Alcotest.(check int) "kept the required barrier" 0 eliminated

(* --- parallel LICM: Fig. 1 --- *)

let fig1_src =
  {|
__device__ float sum(float* data, int n) {
  float total = 0.0f;
  for (int i = 0; i < n; i++) total += data[i];
  return total;
}
__global__ void normalize(float* out, float* in, int n) {
  int tid = blockIdx.x * blockDim.x + threadIdx.x;
  float val = sum(in, n);
  if (tid < n)
    out[tid] = in[tid] / val;
}
void launch(float* d_out, float* d_in, int n) {
  normalize<<<(n + 31) / 32, 32>>>(d_out, d_in, n);
}
|}

let licm_prep m =
  Core.Canonicalize.run m;
  Core.Cse.run m;
  ignore (Core.Mem2reg.run m);
  Core.Canonicalize.run m;
  Core.Cse.run m;
  ignore (Core.Licm.run m)

(* After lock-step LICM the O(N) call to @sum must sit outside both
   parallel loops: O(N^2) total work becomes O(N). *)
let test_parallel_licm_hoists_sum () =
  let m = compile_ok fig1_src in
  licm_prep m;
  verify_ok m;
  (* find the call and check no Parallel ancestor *)
  let info = Analysis.Info.build m in
  let ok = ref false in
  Op.iter
    (fun o ->
      match o.Op.kind with
      | Op.Call "sum" ->
        let rec no_par (x : Op.op) =
          match Analysis.Info.parent info x with
          | None -> true
          | Some p -> (match p.Op.kind with Op.Parallel _ -> false | _ -> no_par p)
        in
        if no_par o then ok := true
      | _ -> ())
    m;
  Alcotest.(check int) "one call to sum" 1 (count_calls "sum" m);
  Alcotest.(check bool) "call hoisted out of all parallel loops" true !ok

let test_licm_preserves_normalize () =
  let n = 40 in
  check_same_results fig1_src "launch"
    [| Array.make n 0.0; Array.init n (fun i -> float_of_int (i + 1)) |]
    [ n ] licm_prep

(* --- cpuify: splitting + interchange, differential --- *)

let reduction_src =
  {|
__global__ void block_sum(float* out, float* in) {
  __shared__ float buf[64];
  int t = threadIdx.x;
  buf[t] = in[blockIdx.x * 64 + t];
  __syncthreads();
  for (int s = 32; s > 0; s = s / 2) {
    if (t < s) buf[t] += buf[t + s];
    __syncthreads();
  }
  if (t == 0) out[blockIdx.x] = buf[0];
}
void launch(float* out, float* in, int nblocks) {
  block_sum<<<nblocks, 64>>>(out, in);
}
|}

let cpuify_full m = Core.Cpuify.pipeline m

let test_cpuify_removes_barriers_reduction () =
  let m = compile_ok reduction_src in
  cpuify_full m;
  verify_ok m;
  Alcotest.(check int) "no barriers" 0 (count_barriers m)

let test_cpuify_preserves_reduction () =
  let nblocks = 2 in
  check_same_results reduction_src "launch"
    [| Array.make nblocks 0.0
     ; Array.init (nblocks * 64) (fun i -> float_of_int (i mod 9))
    |]
    [ nblocks ] cpuify_full

let test_cpuify_preserves_backprop () =
  let input = Array.init 4 (fun i -> float_of_int (i + 1)) in
  let weights = Array.init 32 (fun i -> float_of_int (i mod 5) /. 4.0) in
  check_same_results backprop_like_src "launch"
    [| input; Array.make 32 0.0; Array.make 4 0.0; weights |]
    [] cpuify_full

(* barrier inside a while loop (the Fig. 8 pattern) *)
let while_barrier_src =
  {|
__global__ void iterate(float* data, int n) {
  __shared__ float maxval[1];
  int t = threadIdx.x;
  do {
    data[t] = data[t] * 0.5f;
    __syncthreads();
    if (t == 0) {
      float m = 0.0f;
      for (int i = 0; i < n; i++) {
        if (data[i] > m) m = data[i];
      }
      maxval[0] = m;
    }
    __syncthreads();
  } while (maxval[0] > 1.0f);
}
void launch(float* data, int n) { iterate<<<1, 8>>>(data, n); }
|}

let test_cpuify_preserves_while_barrier () =
  check_same_results while_barrier_src "launch"
    [| Array.init 8 (fun i -> float_of_int (i + 1)) |]
    [ 8 ] cpuify_full;
  let m = compile_ok while_barrier_src in
  cpuify_full m;
  Alcotest.(check int) "no barriers" 0 (count_barriers m)

(* --- min-cut cache minimization (Fig. 6) --- *)

let mincut_src =
  {|
__global__ void k(float* data, float* out) {
  int t = threadIdx.x;
  float x = data[t];
  float y = data[2 * t];
  float a = x * x;
  float b = y * y;
  float c = x - y;
  __syncthreads();
  data[t] = 0.0f;
  out[t] = a + b + c;
}
void launch(float* data, float* out) { k<<<1, 8>>>(data, out); }
|}

let split_only m = Core.Cpuify.run ~use_mincut:true m

let test_mincut_stores_two_of_five () =
  let m = compile_ok mincut_src in
  Core.Canonicalize.run m;
  Core.Cse.run m;
  ignore (Core.Mem2reg.run m);
  Core.Canonicalize.run m;
  Core.Cse.run m;
  Core.Split.reset_stats ();
  Core.Cpuify.run ~use_mincut:true m;
  verify_ok m;
  (* x and y must be cached; a, b, c recomputed *)
  Alcotest.(check int) "cached values" 2 Core.Split.stats.Core.Split.cached_values;
  Alcotest.(check bool) "recomputed >= 3" true
    (Core.Split.stats.Core.Split.recomputed_ops >= 3)

let test_mincut_differential () =
  check_same_results mincut_src "launch"
    [| Array.init 16 (fun i -> float_of_int i /. 3.0); Array.make 8 0.0 |]
    []
    (fun m ->
      Core.Canonicalize.run m;
      Core.Cse.run m;
      ignore (Core.Mem2reg.run m);
      Core.Canonicalize.run m;
      split_only m)

let test_no_mincut_stores_all () =
  let m = compile_ok mincut_src in
  Core.Canonicalize.run m;
  Core.Cse.run m;
  ignore (Core.Mem2reg.run m);
  Core.Canonicalize.run m;
  Core.Cse.run m;
  Core.Split.reset_stats ();
  Core.Cpuify.run ~use_mincut:false m;
  verify_ok m;
  Alcotest.(check bool)
    (Printf.sprintf "caches more without min-cut (%d)"
       Core.Split.stats.Core.Split.cached_values)
    true
    (Core.Split.stats.Core.Split.cached_values >= 3)

let tests =
  [ Alcotest.test_case "constant folding" `Quick test_constant_folding
  ; Alcotest.test_case "if folding" `Quick test_if_folding
  ; Alcotest.test_case "cse unifies" `Quick test_cse_unifies
  ; Alcotest.test_case "mem2reg slots disappear" `Quick
      test_mem2reg_slots_disappear
  ; Alcotest.test_case "forwarding across barrier" `Quick
      test_forwarding_across_barrier
  ; Alcotest.test_case "barrier elimination backprop" `Quick
      test_barrier_elimination_backprop
  ; Alcotest.test_case "barrier elim differential" `Quick
      test_barrier_elim_preserves_semantics
  ; Alcotest.test_case "required barrier kept" `Quick test_required_barrier_kept
  ; Alcotest.test_case "parallel licm hoists sum" `Quick
      test_parallel_licm_hoists_sum
  ; Alcotest.test_case "licm differential" `Quick test_licm_preserves_normalize
  ; Alcotest.test_case "cpuify removes barriers" `Quick
      test_cpuify_removes_barriers_reduction
  ; Alcotest.test_case "cpuify reduction differential" `Quick
      test_cpuify_preserves_reduction
  ; Alcotest.test_case "cpuify backprop differential" `Quick
      test_cpuify_preserves_backprop
  ; Alcotest.test_case "cpuify while-barrier differential" `Quick
      test_cpuify_preserves_while_barrier
  ; Alcotest.test_case "mincut stores two of five" `Quick
      test_mincut_stores_two_of_five
  ; Alcotest.test_case "mincut differential" `Quick test_mincut_differential
  ; Alcotest.test_case "no-mincut stores all" `Quick test_no_mincut_stores_all
  ]

(* appended: the warp-shuffle emulation must survive the whole pipeline *)
let warp_reduce_src =
  {|
__global__ void warp_sum(float* out, float* in) {
  int t = threadIdx.x;
  float v = in[blockIdx.x * 32 + t];
  for (int d = 16; d > 0; d = d / 2) {
    v += __shfl_down_sync(0xffffffff, v, d);
  }
  if (t == 0) out[blockIdx.x] = v;
}
void launch(float* out, float* in, int nblocks) {
  warp_sum<<<nblocks, 32>>>(out, in);
}
|}

let test_cpuify_preserves_warp_shuffle () =
  check_same_results warp_reduce_src "launch"
    [| Array.make 2 0.0; Array.init 64 (fun i -> float_of_int (i mod 7)) |]
    [ 2 ] cpuify_full;
  let m = compile_ok warp_reduce_src in
  cpuify_full m;
  Alcotest.(check int) "no barriers" 0 (count_barriers m)

let tests =
  tests
  @ [ Alcotest.test_case "cpuify warp-shuffle differential" `Quick
        test_cpuify_preserves_warp_shuffle
    ]
