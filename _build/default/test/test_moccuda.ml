(* Tensor / MocCUDA tests: the conv backends agree numerically, the
   transpiled NLL kernel matches the reference loss, the CUDART emulation
   behaves, and the cost model reproduces the Fig.-15 ordering on the
   A64FX machine model. *)

open Tensorlib

let feq = Alcotest.(check (float 1e-4))

let test_gemm_blocked_matches_naive () =
  let a = Tensor.rand 1 [| 13; 17 |] in
  let b = Tensor.rand 2 [| 17; 9 |] in
  let c1 = Tensor.create [| 13; 9 |] in
  let c2 = Tensor.create [| 13; 9 |] in
  Gemm.naive ~a ~b ~c:c1;
  Gemm.blocked ~tile:4 ~a ~b ~c:c2 ();
  Alcotest.(check bool) "identical" true (Tensor.max_abs_diff c1 c2 < 1e-9)

let test_conv_backends_agree () =
  let input = Tensor.rand 3 [| 2; 3; 9; 9 |] in
  let weight = Tensor.rand 4 [| 4; 3; 3; 3 |] in
  List.iter
    (fun p ->
      let reference = Conv.naive ~input ~weight ~p in
      let gemm = Conv.im2col_gemm ~input ~weight ~p in
      Alcotest.(check bool)
        (Printf.sprintf "stride %d pad %d" p.Conv.stride p.Conv.pad)
        true
        (Tensor.max_abs_diff reference gemm < 1e-6))
    [ { Conv.stride = 1; pad = 1 }; { Conv.stride = 2; pad = 1 }
    ; { Conv.stride = 1; pad = 0 } ]

let test_nll_kernel_matches_reference () =
  let n = 20 and classes = 10 in
  let probs = Tensor.rand 7 [| n; classes |] in
  let log_probs =
    Tensor.of_array [| n; classes |]
      (Array.map (fun x -> log (Float.abs x +. 0.1)) probs.Tensor.data)
  in
  let targets = Array.init n (fun i -> (i * 3) mod classes) in
  let expected = Layers.nll_loss ~log_probs ~targets in
  let got = Moccuda.Nll_kernel.forward ~log_probs ~targets in
  feq "loss" expected got;
  (* gradient: -1/n at target positions, 0 elsewhere *)
  let grad = Moccuda.Nll_kernel.backward ~n ~nclasses:classes ~targets in
  for i = 0 to n - 1 do
    for j = 0 to classes - 1 do
      let expect = if j = targets.(i) then -1.0 /. float_of_int n else 0.0 in
      feq (Printf.sprintf "grad[%d][%d]" i j) expect (Tensor.get2 grad i j)
    done
  done

let test_mini_resnet_backends_agree () =
  let m = Moccuda.Resnet.mini_model ~channels:4 in
  let images = Tensor.rand 10 [| 2; 3; 8; 8 |] in
  let targets = [| 3; 7 |] in
  let losses =
    List.map
      (fun b -> Moccuda.Resnet.mini_forward b m ~images ~targets)
      Moccuda.Backends.all
  in
  match losses with
  | reference :: rest ->
    List.iteri
      (fun i l -> feq (Printf.sprintf "backend %d" (i + 1)) reference l)
      rest
  | [] -> assert false

let test_cudart_memory_and_streams () =
  let st = Moccuda.Cudart.create () in
  let _, count = Moccuda.Cudart.cuda_get_device_count st in
  Alcotest.(check int) "one device per NUMA domain" 4 count;
  let _, props = Moccuda.Cudart.cuda_get_device_properties st 0 in
  Alcotest.(check string)
    "props dump" "NVIDIA GeForce RTX 2080 Ti"
    (Option.get props).Moccuda.Cudart.prop_name;
  let err, ptr = Moccuda.Cudart.cuda_malloc st 64 in
  Alcotest.(check bool) "malloc ok" true (err = Moccuda.Cudart.Success);
  let host = Array.init 16 float_of_int in
  let err =
    Moccuda.Cudart.cuda_memcpy st ~dst:(`Device ptr) ~src:(`Host host)
      ~count:64 Moccuda.Cudart.Host_to_device
  in
  Alcotest.(check bool) "h2d ok" true (err = Moccuda.Cudart.Success);
  let back = Array.make 16 0.0 in
  let _ =
    Moccuda.Cudart.cuda_memcpy st ~dst:(`Host back) ~src:(`Device ptr)
      ~count:64 Moccuda.Cudart.Device_to_host
  in
  Alcotest.(check bool) "roundtrip" true (back = host);
  (* stream ordering *)
  let _, sid = Moccuda.Cudart.cuda_stream_create st in
  let log = ref [] in
  ignore (Moccuda.Cudart.enqueue st sid (fun () -> log := 1 :: !log));
  ignore (Moccuda.Cudart.enqueue st sid (fun () -> log := 2 :: !log));
  Alcotest.(check (list int)) "lazy until sync" [] !log;
  ignore (Moccuda.Cudart.cuda_stream_synchronize st sid);
  Alcotest.(check (list int)) "FIFO order" [ 2; 1 ] !log;
  Alcotest.(check bool) "free ok" true
    (Moccuda.Cudart.cuda_free st ptr = Moccuda.Cudart.Success);
  Alcotest.(check bool) "double free rejected" true
    (Moccuda.Cudart.cuda_free st ptr = Moccuda.Cudart.Invalid_value)

(* Fig. 15 shape: on the A64FX model MocCUDA beats tuned oneDNN clearly
   (paper: geomean 2.7x, min 1.2x, max 4.5x), and the native backend is
   far slower than everything. *)
let test_fig15_ordering_on_a64fx () =
  let machine = Runtime.Machine.a64fx in
  List.iter
    (fun batch ->
      let t b = Moccuda.Resnet.throughput b machine ~batch ~threads:12 in
      let moc = t Moccuda.Backends.Moccuda_polygeist in
      let onednn = t Moccuda.Backends.One_dnn in
      let native = t Moccuda.Backends.Native in
      let ratio = moc /. onednn in
      Alcotest.(check bool)
        (Printf.sprintf "batch %d: moc/onednn = %.2f in [1.2, 6]" batch ratio)
        true
        (ratio >= 1.2 && ratio <= 6.0);
      Alcotest.(check bool)
        (Printf.sprintf "batch %d: native slowest (%.1f vs %.1f)" batch native
           onednn)
        true (native < onednn))
    [ 1; 4; 12 ]

let test_expert_close_to_polygeist () =
  let machine = Runtime.Machine.a64fx in
  let t b = Moccuda.Resnet.throughput b machine ~batch:8 ~threads:12 in
  let e = t Moccuda.Backends.Moccuda_expert in
  let p = t Moccuda.Backends.Moccuda_polygeist in
  Alcotest.(check bool)
    (Printf.sprintf "expert %.1f ~ polygeist %.1f" e p)
    true
    (p /. e > 0.85 && p /. e <= 1.0)

let test_resnet50_has_53_convs () =
  (* 1 stem + 3*3+1 + 4*3+1 + 6*3+1 + 3*3+1 = 53 *)
  Alcotest.(check int) "conv count" 53 Moccuda.Resnet.n_convs

let tests =
  [ Alcotest.test_case "blocked gemm = naive" `Quick
      test_gemm_blocked_matches_naive
  ; Alcotest.test_case "conv backends agree" `Quick test_conv_backends_agree
  ; Alcotest.test_case "transpiled NLL kernel" `Quick
      test_nll_kernel_matches_reference
  ; Alcotest.test_case "mini resnet backends agree" `Quick
      test_mini_resnet_backends_agree
  ; Alcotest.test_case "cudart memory and streams" `Quick
      test_cudart_memory_and_streams
  ; Alcotest.test_case "fig15 ordering on a64fx" `Quick
      test_fig15_ordering_on_a64fx
  ; Alcotest.test_case "expert ~ polygeist" `Quick
      test_expert_close_to_polygeist
  ; Alcotest.test_case "resnet50 conv count" `Quick test_resnet50_has_53_convs
  ]
