(* polygeist-cpu: the command-line driver, mirroring the paper's drop-in
   usage (Sec. III-C).  It accepts a mini-CUDA file and, like the real
   tool, [-cuda-lower] selects GPU-to-CPU translation while [-cpuify]
   picks the lowering/optimization recipe.

     polygeist-cpu kernel.cu -cuda-lower -emit-ir
     polygeist-cpu kernel.cu -cuda-lower -cpuify=inner-serial -run main 1024
     polygeist-cpu kernel.cu -mcuda -time 32 *)

open Cmdliner

type cpuify_mode =
  | Inner_serial
  | Inner_parallel
  | No_opt

let build ~(mcuda : bool) ~(cuda_lower : bool) ~(mode : cpuify_mode)
    (src : string) : Ir.Op.op =
  let m = Cudafe.Codegen.compile src in
  if mcuda then Mcuda.lower m
  else if cuda_lower then begin
    (match mode with
     | Inner_serial ->
       Core.Cpuify.pipeline m;
       ignore (Core.Omp_lower.run m)
     | Inner_parallel ->
       Core.Cpuify.pipeline m;
       ignore (Core.Omp_lower.run ~options:Core.Omp_lower.inner_par_options m)
     | No_opt ->
       Core.Cpuify.run ~use_mincut:false m;
       ignore (Core.Omp_lower.run m));
    Core.Canonicalize.run m
  end;
  (match Ir.Verifier.verify_result m with
   | Ok () -> ()
   | Error e -> failwith ("internal error: lowered IR does not verify: " ^ e));
  m

let run_entry (m : Ir.Op.op) (entry : string) (sizes : int list) =
  (* integer arguments are passed through; every pointer parameter gets a
     zero-initialized float/int buffer of the first size argument *)
  let f =
    match Ir.Op.find_func m entry with
    | Some f -> f
    | None -> failwith ("no function @" ^ entry)
  in
  let default_n = match sizes with n :: _ -> n | [] -> 64 in
  let sizes = ref sizes in
  let args =
    Array.to_list f.Ir.Op.regions.(0).rargs
    |> List.map (fun (p : Ir.Value.t) ->
        match p.Ir.Value.typ with
        | Ir.Types.Memref { elem; _ } ->
          if Ir.Types.is_float_dtype elem then
            Interp.Mem.Buf (Interp.Mem.of_float_array (Array.make default_n 0.0))
          else Interp.Mem.Buf (Interp.Mem.of_int_array (Array.make default_n 0))
        | Ir.Types.Scalar d when Ir.Types.is_int_dtype d -> begin
          match !sizes with
          | n :: rest ->
            sizes := rest;
            Interp.Mem.Int n
          | [] -> Interp.Mem.Int default_n
        end
        | Ir.Types.Scalar _ -> Interp.Mem.Flt 1.0)
  in
  let _, stats = Interp.Eval.run m entry args in
  Printf.printf
    "executed @%s: %d ops, %d loads, %d stores, %d barrier waits\n" entry
    stats.Interp.Eval.ops stats.Interp.Eval.loads stats.Interp.Eval.stores
    stats.Interp.Eval.barriers

let main file cuda_lower mcuda cpuify emit_ir run_name sizes time_threads
    machine =
  let src = In_channel.with_open_text file In_channel.input_all in
  let mode =
    match cpuify with
    | "inner-serial" -> Inner_serial
    | "inner-parallel" -> Inner_parallel
    | "no-opt" -> No_opt
    | other -> failwith ("unknown -cpuify mode: " ^ other)
  in
  let m = build ~mcuda ~cuda_lower:(cuda_lower || mcuda) ~mode src in
  if emit_ir then print_string (Ir.Printer.op_to_string m);
  (match run_name with
   | Some entry -> run_entry m entry sizes
   | None -> ());
  match time_threads with
  | Some threads ->
    let mach = Runtime.Machine.by_name machine in
    let entry =
      match run_name with
      | Some e -> e
      | None -> begin
        match Ir.Op.funcs m with
        | f :: _ -> Ir.Op.func_name f
        | [] -> failwith "empty module"
      end
    in
    let f = Option.get (Ir.Op.find_func m entry) in
    let sizes = ref sizes in
    let args =
      Array.to_list f.Ir.Op.regions.(0).rargs
      |> List.map (fun (p : Ir.Value.t) ->
          match p.Ir.Value.typ with
          | Ir.Types.Scalar d when Ir.Types.is_int_dtype d -> begin
            match !sizes with
            | n :: rest ->
              sizes := rest;
              Runtime.Cost.Ki n
            | [] -> Runtime.Cost.Ki 1024
          end
          | _ -> Runtime.Cost.Unk)
    in
    let r = Runtime.Cost.of_func mach ~threads m entry args in
    Printf.printf "simulated time @%s on %s with %d threads: %.4e s\n" entry
      mach.Runtime.Machine.name threads r.Runtime.Cost.seconds
  | None -> ()

let cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.cu"
           ~doc:"mini-CUDA source file")
  in
  let cuda_lower =
    Arg.(value & flag & info [ "cuda-lower" ]
           ~doc:"translate GPU constructs to CPU (the paper's -cuda-lower)")
  in
  let mcuda =
    Arg.(value & flag & info [ "mcuda" ]
           ~doc:"use the MCUDA-style baseline lowering instead")
  in
  let cpuify =
    Arg.(value & opt string "inner-serial" & info [ "cpuify" ]
           ~doc:"lowering recipe: inner-serial | inner-parallel | no-opt")
  in
  let emit_ir =
    Arg.(value & flag & info [ "emit-ir" ] ~doc:"print the (lowered) IR")
  in
  let run_name =
    Arg.(value & opt (some string) None & info [ "run" ]
           ~doc:"interpret the given host function")
  in
  let sizes =
    Arg.(value & opt_all int [] & info [ "size" ]
           ~doc:"integer argument(s) for -run/-time (repeatable)")
  in
  let time_threads =
    Arg.(value & opt (some int) None & info [ "time" ]
           ~doc:"report simulated time with this many threads")
  in
  let machine =
    Arg.(value & opt string "commodity" & info [ "machine" ]
           ~doc:"machine model: commodity | a64fx")
  in
  Cmd.v
    (Cmd.info "polygeist-cpu" ~doc:"CUDA to CPU transpiler (paper reproduction)")
    Term.(
      const main $ file $ cuda_lower $ mcuda $ cpuify $ emit_ir $ run_name
      $ sizes $ time_threads $ machine)

let () = exit (Cmd.eval cmd)
