(* SSA values.  Identity is the unique [id]; [name] is only a printing
   hint.  Values are created by [Builder] (op results and region
   arguments). *)

type t =
  { id : int
  ; typ : Types.typ
  ; name : string option
  }

let counter = ref 0

let fresh ?name typ =
  incr counter;
  { id = !counter; typ; name }

let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let hash a = a.id

let to_string v =
  match v.name with
  | Some n -> Printf.sprintf "%%%s_%d" n v.id
  | None -> Printf.sprintf "%%%d" v.id

module Map = Map.Make (struct
    type nonrec t = t

    let compare = compare
  end)

module Set = Set.Make (struct
    type nonrec t = t

    let compare = compare
  end)

module Tbl = Hashtbl.Make (struct
    type nonrec t = t

    let equal = equal
    let hash = hash
  end)
