lib/ir/verifier.mli: Op
