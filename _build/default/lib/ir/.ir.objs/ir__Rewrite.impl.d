lib/ir/rewrite.ml: Array Clone List Op Value
