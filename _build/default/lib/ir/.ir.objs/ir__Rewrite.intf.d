lib/ir/rewrite.mli: Clone Op Value
