lib/ir/printer.ml: Array Buffer List Op Printf String Types Value
