lib/ir/builder.ml: Array List Op Printf Types Value
