lib/ir/verifier.ml: Array List Op Printer Printf String Types Value
