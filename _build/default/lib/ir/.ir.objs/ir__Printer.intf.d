lib/ir/printer.mli: Op
