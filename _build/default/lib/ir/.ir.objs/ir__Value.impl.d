lib/ir/value.ml: Hashtbl Int Map Printf Set Types
