lib/ir/types.mli:
