lib/ir/op.mli: Types Value
