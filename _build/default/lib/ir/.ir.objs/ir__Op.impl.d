lib/ir/op.ml: Array List Types Value
