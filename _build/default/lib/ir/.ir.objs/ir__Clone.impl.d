lib/ir/clone.ml: Array List Op Value
