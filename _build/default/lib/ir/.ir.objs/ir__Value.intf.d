lib/ir/value.mli: Hashtbl Map Set Types
