lib/ir/clone.mli: Op Value
