lib/ir/types.ml: List Printf String
