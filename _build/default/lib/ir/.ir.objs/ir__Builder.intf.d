lib/ir/builder.mli: Op Types Value
