(** Region-rebuilding utilities shared by the transformation passes.

    Passes are bottom-up rewrites: a function [Op.op -> Op.op list] is
    applied to every op (innermost first) and each region body is rebuilt
    from the concatenated results — return [[op]] to keep, [[]] to
    delete, several ops to splice a replacement. *)

val rewrite_op : (Op.op -> Op.op list) -> Op.op -> Op.op list
val rewrite_region : (Op.op -> Op.op list) -> Op.region -> unit

(** Top-down variant: the callback sees an op before its regions. *)
val rewrite_topdown : (Op.op -> Op.op list) -> Op.op -> Op.op list

(** Apply a substitution to every operand in an op tree, in place. *)
val substitute : Clone.subst -> Op.op -> unit

val substitute_region : Clone.subst -> Op.region -> unit

(** Values used by the ops (including nested regions) but not defined by
    them — their free values. *)
val free_values : Op.op list -> Value.Set.t
