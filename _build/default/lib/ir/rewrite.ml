(* Region-rebuilding utilities shared by all transformation passes.

   The passes in this project are expressed as bottom-up rewrites: a
   function [Op.op -> Op.op list] is applied to every op (innermost
   first), and each region body is rebuilt from the concatenated
   results.  Returning [[op]] keeps the op, [[]] deletes it, and several
   ops splice a replacement sequence in place. *)

let rec rewrite_op (f : Op.op -> Op.op list) (op : Op.op) : Op.op list =
  Array.iter
    (fun (r : Op.region) -> r.body <- List.concat_map (rewrite_op f) r.body)
    op.regions;
  f op

let rewrite_region f (r : Op.region) =
  r.body <- List.concat_map (rewrite_op f) r.body

(* Top-down variant: [f] sees the op before its regions are processed. *)
let rec rewrite_topdown (f : Op.op -> Op.op list) (op : Op.op) : Op.op list =
  let replaced = f op in
  List.iter
    (fun (o : Op.op) ->
      Array.iter
        (fun (r : Op.region) ->
          r.body <- List.concat_map (rewrite_topdown f) r.body)
        o.regions)
    replaced;
  replaced

(* Substitute values in-place through an op tree (operands only). *)
let substitute (s : Clone.subst) op =
  Op.iter
    (fun (o : Op.op) -> o.operands <- Array.map (Clone.lookup s) o.operands)
    op

let substitute_region (s : Clone.subst) (r : Op.region) =
  List.iter (substitute s) r.body

(* The set of values used by [op] (including in nested regions) that are
   not defined inside it — its free values. *)
let free_values (ops : Op.op list) : Value.Set.t =
  let defined = ref Value.Set.empty in
  let used = ref Value.Set.empty in
  let rec go (o : Op.op) =
    Array.iter (fun v -> used := Value.Set.add v !used) o.operands;
    Array.iter (fun v -> defined := Value.Set.add v !defined) o.results;
    Array.iter
      (fun (r : Op.region) ->
        Array.iter (fun v -> defined := Value.Set.add v !defined) r.rargs;
        List.iter go r.body)
      o.regions
  in
  List.iter go ops;
  Value.Set.diff !used !defined
