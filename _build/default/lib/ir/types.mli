(** Types of the mini-MLIR: scalars and multi-dimensional memory
    references with a memory space, mirroring the MLIR subset the
    Polygeist GPU-to-CPU pipeline manipulates. *)

(** Scalar element types. *)
type dtype =
  | I1
  | I32
  | I64
  | Index
  | F32
  | F64

(** Memory space of a memref.  [Shared] corresponds to CUDA [__shared__]
    memory (a per-block stack allocation after lowering); [Local] is
    per-thread scratch (mutable-local slots, fission caches); [Global] is
    ordinary heap/parameter memory. *)
type space =
  | Global
  | Shared
  | Local

type typ =
  | Scalar of dtype
  | Memref of
      { elem : dtype
      ; shape : int option list
        (** [Some n] static extent, [None] dynamic ([?]) *)
      ; space : space
      }

val is_float_dtype : dtype -> bool
val is_int_dtype : dtype -> bool

(** Size in bytes of one element (used by the cost model). *)
val dtype_bytes : dtype -> int

(** [memref ?space elem shape] builds a memref type ([space] defaults to
    [Global]). *)
val memref : ?space:space -> dtype -> int option list -> typ

val dtype_to_string : dtype -> string
val space_to_string : space -> string
val to_string : typ -> string
val equal : typ -> typ -> bool

(** Element type of a memref. @raise Invalid_argument on scalars. *)
val elem_dtype : typ -> dtype

(** Underlying dtype of a scalar. @raise Invalid_argument on memrefs. *)
val scalar_dtype : typ -> dtype

(** Rank of a memref. @raise Invalid_argument on scalars. *)
val rank : typ -> int
