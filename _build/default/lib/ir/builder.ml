(* Convenience constructors.  Each function builds a fully-typed op and
   returns it (and, for value-producing ops, its result value).

   These are deliberately pure constructors: sequencing into a region body
   is done by the caller (usually via an accumulating [Seq] buffer, below),
   which keeps transformation code that rebuilds regions straightforward. *)

let const_int ?(dtype = Types.Index) n =
  Op.mk (Constant (Cint (n, dtype)))
    ~results:[| Value.fresh ~name:"c" (Types.Scalar dtype) |]

let const_float ?(dtype = Types.F32) f =
  Op.mk (Constant (Cfloat (f, dtype)))
    ~results:[| Value.fresh ~name:"cst" (Types.Scalar dtype) |]

let binop kind (a : Value.t) (b : Value.t) =
  Op.mk (Binop kind) ~operands:[| a; b |]
    ~results:[| Value.fresh ~name:(Op.binop_to_string kind) a.typ |]

let cmp pred (a : Value.t) (b : Value.t) =
  Op.mk (Cmp pred) ~operands:[| a; b |]
    ~results:[| Value.fresh ~name:"cmp" (Types.Scalar Types.I1) |]

let select (c : Value.t) (a : Value.t) (b : Value.t) =
  Op.mk Select ~operands:[| c; a; b |]
    ~results:[| Value.fresh ~name:"sel" a.typ |]

let cast dtype (a : Value.t) =
  Op.mk (Cast dtype) ~operands:[| a |]
    ~results:[| Value.fresh ~name:"cast" (Types.Scalar dtype) |]

let math fn (args : Value.t list) =
  let a = List.hd args in
  Op.mk (Math fn) ~operands:(Array.of_list args)
    ~results:[| Value.fresh ~name:(Op.math_to_string fn) a.typ |]

let alloc ?(space = Types.Global) elem shape dyn_sizes =
  let t = Types.memref ~space elem shape in
  Op.mk Alloc ~operands:(Array.of_list dyn_sizes)
    ~results:[| Value.fresh ~name:"alloc" t |]

let alloca ?(space = Types.Local) elem shape =
  let t = Types.memref ~space elem shape in
  Op.mk Alloca ~results:[| Value.fresh ~name:"alloca" t |]

let dealloc (m : Value.t) = Op.mk Dealloc ~operands:[| m |]

let load (m : Value.t) idxs =
  let elem = Types.elem_dtype m.typ in
  Op.mk Load
    ~operands:(Array.of_list (m :: idxs))
    ~results:[| Value.fresh ~name:"ld" (Types.Scalar elem) |]

let store (v : Value.t) (m : Value.t) idxs =
  Op.mk Store ~operands:(Array.of_list (v :: m :: idxs))

let copy ~src ~dst = Op.mk Copy ~operands:[| src; dst |]

let dim (m : Value.t) i =
  Op.mk (Dim i) ~operands:[| m |]
    ~results:[| Value.fresh ~name:"dim" (Types.Scalar Types.Index) |]

let for_ ~lo ~hi ~step body_of_iv =
  let iv = Value.fresh ~name:"i" (Types.Scalar Types.Index) in
  let body = body_of_iv iv in
  Op.mk For ~operands:[| lo; hi; step |]
    ~regions:[| Op.region ~args:[| iv |] body |]

let while_ ~cond_body ~body =
  Op.mk While ~regions:[| Op.region cond_body; Op.region body |]

let condition (c : Value.t) = Op.mk Condition ~operands:[| c |]

let if_ ?(else_ = []) (c : Value.t) then_ =
  Op.mk If ~operands:[| c |] ~regions:[| Op.region then_; Op.region else_ |]

let parallel kind ~lbs ~ubs ~steps body_of_ivs =
  let n = List.length lbs in
  assert (List.length ubs = n && List.length steps = n);
  let ivs =
    Array.init n (fun i ->
        Value.fresh ~name:(Printf.sprintf "iv%d" i) (Types.Scalar Types.Index))
  in
  let body = body_of_ivs ivs in
  Op.mk (Parallel kind)
    ~operands:(Array.of_list (lbs @ ubs @ steps))
    ~regions:[| Op.region ~args:ivs body |]

let barrier () = Op.mk Barrier

let call name ?ret args =
  let results =
    match ret with
    | None -> [||]
    | Some t -> [| Value.fresh ~name:"call" t |]
  in
  Op.mk (Call name) ~operands:(Array.of_list args) ~results

let return_ args = Op.mk Return ~operands:(Array.of_list args)

let func ?(is_kernel = false) name params ?ret body_of_params =
  let args =
    Array.of_list (List.map (fun (n, t) -> Value.fresh ~name:n t) params)
  in
  let body = body_of_params args in
  Op.mk (Func { name; ret; is_kernel }) ~regions:[| Op.region ~args body |]

let module_ funcs = Op.mk Module ~regions:[| Op.region funcs |]

let omp_parallel body = Op.mk OmpParallel ~regions:[| Op.region body |]

let omp_wsloop ~lbs ~ubs ~steps body_of_ivs =
  let n = List.length lbs in
  let ivs =
    Array.init n (fun i ->
        Value.fresh ~name:(Printf.sprintf "wi%d" i) (Types.Scalar Types.Index))
  in
  let body = body_of_ivs ivs in
  Op.mk OmpWsloop
    ~operands:(Array.of_list (lbs @ ubs @ steps))
    ~regions:[| Op.region ~args:ivs body |]

let omp_barrier () = Op.mk OmpBarrier

(* Mutable sequence of ops: the standard way to emit code.  [emit] appends
   an op and returns it, [emitv] returns the op's single result. *)
module Seq = struct
  type t = Op.op list ref

  let create () : t = ref []
  let emit (s : t) op = s := op :: !s; op
  let emitv (s : t) op = ignore (emit s op); Op.result op
  let to_list (s : t) = List.rev !s
end
