(** Structural verifier.  Checks the invariants every pass must preserve:
    single definition per SSA value, lexical def-before-use within the
    region nesting, operand/result/region arities and types per op kind,
    [polygeist.barrier] only inside a block-level parallel loop, and
    [scf.condition] only as the terminator of a while condition region. *)

exception Error of string

(** @raise Error on the first violation. *)
val verify : Op.op -> unit

val verify_exn : Op.op -> unit
val verify_result : Op.op -> (unit, string) result
