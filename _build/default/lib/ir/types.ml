(* Types for the mini-MLIR used throughout the transpiler.

   The type system intentionally mirrors the subset of MLIR that the
   Polygeist GPU-to-CPU pipeline manipulates: scalar types and
   multi-dimensional memory references with a memory space. *)

type dtype =
  | I1
  | I32
  | I64
  | Index
  | F32
  | F64

(* Memory space of a memref.  [Shared] corresponds to CUDA [__shared__]
   memory: after the Sec. III lowering it becomes a stack allocation scoped
   to the block-parallel loop.  [Local] is per-thread scratch. *)
type space =
  | Global
  | Shared
  | Local

type typ =
  | Scalar of dtype
  (* [shape] entries are [Some n] for static dimensions and [None] for
     dynamic ones (MLIR's [?]). *)
  | Memref of
      { elem : dtype
      ; shape : int option list
      ; space : space
      }

let is_float_dtype = function
  | F32 | F64 -> true
  | I1 | I32 | I64 | Index -> false

let is_int_dtype d = not (is_float_dtype d)

let dtype_bytes = function
  | I1 -> 1
  | I32 | F32 -> 4
  | I64 | F64 | Index -> 8

let memref ?(space = Global) elem shape = Memref { elem; shape; space }

let dtype_to_string = function
  | I1 -> "i1"
  | I32 -> "i32"
  | I64 -> "i64"
  | Index -> "index"
  | F32 -> "f32"
  | F64 -> "f64"

let space_to_string = function
  | Global -> ""
  | Shared -> ", 3"
  | Local -> ", 5"

let to_string = function
  | Scalar d -> dtype_to_string d
  | Memref { elem; shape; space } ->
    let dims =
      List.map
        (function Some n -> string_of_int n ^ "x" | None -> "?x")
        shape
    in
    Printf.sprintf "memref<%s%s%s>" (String.concat "" dims)
      (dtype_to_string elem) (space_to_string space)

let equal (a : typ) (b : typ) = a = b

let elem_dtype = function
  | Memref { elem; _ } -> elem
  | Scalar _ -> invalid_arg "Types.elem_dtype: not a memref"

let scalar_dtype = function
  | Scalar d -> d
  | Memref _ -> invalid_arg "Types.scalar_dtype: not a scalar"

let rank = function
  | Memref { shape; _ } -> List.length shape
  | Scalar _ -> invalid_arg "Types.rank: not a memref"
