(** MLIR-flavoured textual printer, used for golden tests, debugging and
    the CLI's [--emit-ir] mode.  The format is write-only; programs are
    constructed through {!Builder} or the CUDA frontend. *)

val op_to_string : Op.op -> string
val region_to_string : Op.region -> string
