(** Convenience constructors for fully-typed ops.

    Each function builds one op and returns it; value-producing ops get a
    fresh result value of the right type.  Constructors are pure —
    sequencing into a region body is the caller's job, usually through
    {!Seq}, which keeps transformation code that rebuilds regions
    straightforward. *)

val const_int : ?dtype:Types.dtype -> int -> Op.op
val const_float : ?dtype:Types.dtype -> float -> Op.op
val binop : Op.binop -> Value.t -> Value.t -> Op.op
val cmp : Op.cmp_pred -> Value.t -> Value.t -> Op.op
val select : Value.t -> Value.t -> Value.t -> Op.op
val cast : Types.dtype -> Value.t -> Op.op
val math : Op.math_fn -> Value.t list -> Op.op

(** [alloc ?space elem shape dyn_sizes] heap-allocates a memref; one
    element of [dyn_sizes] per [None] in [shape]. *)
val alloc :
  ?space:Types.space -> Types.dtype -> int option list -> Value.t list -> Op.op

(** Stack allocation; static shape only. *)
val alloca : ?space:Types.space -> Types.dtype -> int option list -> Op.op

val dealloc : Value.t -> Op.op
val load : Value.t -> Value.t list -> Op.op

(** [store v m idxs] stores [v] into [m] at [idxs]. *)
val store : Value.t -> Value.t -> Value.t list -> Op.op

val copy : src:Value.t -> dst:Value.t -> Op.op
val dim : Value.t -> int -> Op.op

(** [for_ ~lo ~hi ~step body] builds an [scf.for]; [body] receives the
    fresh induction variable. *)
val for_ : lo:Value.t -> hi:Value.t -> step:Value.t -> (Value.t -> Op.op list) -> Op.op

(** [while_ ~cond_body ~body]: [cond_body] must end in {!condition}. *)
val while_ : cond_body:Op.op list -> body:Op.op list -> Op.op

val condition : Value.t -> Op.op
val if_ : ?else_:Op.op list -> Value.t -> Op.op list -> Op.op

(** [parallel kind ~lbs ~ubs ~steps body] builds an n-D parallel loop;
    [body] receives the fresh induction variables. *)
val parallel :
  Op.par_kind ->
  lbs:Value.t list ->
  ubs:Value.t list ->
  steps:Value.t list ->
  (Value.t array -> Op.op list) ->
  Op.op

(** The [polygeist.barrier] op. *)
val barrier : unit -> Op.op

val call : string -> ?ret:Types.typ -> Value.t list -> Op.op
val return_ : Value.t list -> Op.op

(** [func ?is_kernel name params ?ret body] builds a function; [body]
    receives the parameter values. *)
val func :
  ?is_kernel:bool ->
  string ->
  (string * Types.typ) list ->
  ?ret:Types.typ ->
  (Value.t array -> Op.op list) ->
  Op.op

val module_ : Op.op list -> Op.op
val omp_parallel : Op.op list -> Op.op

val omp_wsloop :
  lbs:Value.t list ->
  ubs:Value.t list ->
  steps:Value.t list ->
  (Value.t array -> Op.op list) ->
  Op.op

val omp_barrier : unit -> Op.op

(** Mutable op sequence: the standard way to emit code.  [emit] appends
    and returns the op; [emitv] appends and returns its single result. *)
module Seq : sig
  type t

  val create : unit -> t
  val emit : t -> Op.op -> Op.op
  val emitv : t -> Op.op -> Value.t
  val to_list : t -> Op.op list
end
