(** SSA values.  Identity is the unique [id]; [name] is only a printing
    hint.  Values are created by {!Builder} (op results) and by region
    construction (block arguments). *)

type t =
  { id : int
  ; typ : Types.typ
  ; name : string option
  }

(** Allocate a fresh value with a new unique id. *)
val fresh : ?name:string -> Types.typ -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** Printed form, e.g. [%tid_42]. *)
val to_string : t -> string

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Tbl : Hashtbl.S with type key = t
