(* Structural verifier.  Checks the invariants every pass must preserve:

   - SSA: each value has a single definition, and every operand is defined
     by a lexically earlier op in the same region or in an enclosing one.
   - arity/typing: operand and result shapes of each op kind.
   - placement: [Barrier] only appears inside a [Parallel Block] (or
     [Parallel Grid] for grid-level sync, which we do not generate) and
     [Condition] only terminates a [While] condition region. *)

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let check_index what (v : Value.t) =
  match v.typ with
  | Types.Scalar (Types.Index | Types.I32 | Types.I64) -> ()
  | _ -> fail "%s: expected integer/index, got %s" what (Types.to_string v.typ)

let check_memref what (v : Value.t) =
  match v.typ with
  | Types.Memref _ -> ()
  | Types.Scalar _ -> fail "%s: expected memref, got %s" what (Types.to_string v.typ)

let check_i1 what (v : Value.t) =
  if v.typ <> Types.Scalar Types.I1 then
    fail "%s: expected i1, got %s" what (Types.to_string v.typ)

type ctx =
  { mutable in_scope : Value.Set.t
  ; mutable defined : Value.Set.t (* across the whole module: single-def *)
  ; mutable inside_block_par : bool
  ; mutable inside_while_cond : bool
  }

let define ctx (v : Value.t) =
  if Value.Set.mem v ctx.defined then
    fail "value %s defined twice" (Value.to_string v);
  ctx.defined <- Value.Set.add v ctx.defined;
  ctx.in_scope <- Value.Set.add v ctx.in_scope

let use ctx what (v : Value.t) =
  if not (Value.Set.mem v ctx.in_scope) then
    fail "%s: use of %s before definition / out of scope" what
      (Value.to_string v)

let check_op_shape (op : Op.op) =
  let nops = Array.length op.operands in
  let nres = Array.length op.results in
  let nreg = Array.length op.regions in
  let expect ?(operands = -1) ?(results = -1) ?(regions = -1) name =
    if operands >= 0 && nops <> operands then
      fail "%s: expected %d operands, got %d" name operands nops;
    if results >= 0 && nres <> results then
      fail "%s: expected %d results, got %d" name results nres;
    if regions >= 0 && nreg <> regions then
      fail "%s: expected %d regions, got %d" name regions nreg
  in
  match op.kind with
  | Op.Module -> expect ~operands:0 ~results:0 ~regions:1 "module"
  | Op.Func _ -> expect ~operands:0 ~results:0 ~regions:1 "func"
  | Op.Return -> expect ~results:0 ~regions:0 "return"
  | Op.Call _ -> expect ~regions:0 "call"
  | Op.Constant _ -> expect ~operands:0 ~results:1 ~regions:0 "constant"
  | Op.Binop _ ->
    expect ~operands:2 ~results:1 ~regions:0 "binop";
    if not (Types.equal op.operands.(0).typ op.operands.(1).typ) then
      fail "binop: operand type mismatch (%s vs %s)"
        (Types.to_string op.operands.(0).typ)
        (Types.to_string op.operands.(1).typ)
  | Op.Cmp _ -> expect ~operands:2 ~results:1 ~regions:0 "cmp"
  | Op.Select ->
    expect ~operands:3 ~results:1 ~regions:0 "select";
    check_i1 "select cond" op.operands.(0)
  | Op.Cast _ -> expect ~operands:1 ~results:1 ~regions:0 "cast"
  | Op.Math _ -> expect ~results:1 ~regions:0 "math"
  | Op.Alloc -> expect ~results:1 ~regions:0 "alloc"
  | Op.Alloca -> expect ~operands:0 ~results:1 ~regions:0 "alloca"
  | Op.Dealloc -> expect ~operands:1 ~results:0 ~regions:0 "dealloc"
  | Op.Load ->
    expect ~results:1 ~regions:0 "load";
    check_memref "load base" op.operands.(0);
    if nops - 1 <> Types.rank op.operands.(0).typ then
      fail "load: %d indices for rank-%d memref" (nops - 1)
        (Types.rank op.operands.(0).typ)
  | Op.Store ->
    expect ~results:0 ~regions:0 "store";
    check_memref "store base" op.operands.(1);
    if nops - 2 <> Types.rank op.operands.(1).typ then
      fail "store: %d indices for rank-%d memref" (nops - 2)
        (Types.rank op.operands.(1).typ)
  | Op.Copy ->
    expect ~operands:2 ~results:0 ~regions:0 "copy";
    check_memref "copy src" op.operands.(0);
    check_memref "copy dst" op.operands.(1)
  | Op.Dim _ -> expect ~operands:1 ~results:1 ~regions:0 "dim"
  | Op.For ->
    expect ~operands:3 ~results:0 ~regions:1 "for";
    Array.iter (check_index "for bound") op.operands;
    if Array.length op.regions.(0).rargs <> 1 then
      fail "for: expected 1 region arg"
  | Op.While ->
    expect ~operands:0 ~results:0 ~regions:2 "while"
  | Op.If ->
    expect ~operands:1 ~results:0 ~regions:2 "if";
    check_i1 "if cond" op.operands.(0)
  | Op.Parallel _ | Op.OmpWsloop ->
    expect ~results:0 ~regions:1 "parallel";
    let n = Array.length op.regions.(0).rargs in
    if nops <> 3 * n then
      fail "parallel: %d operands for %d ivs (want %d)" nops n (3 * n);
    Array.iter (check_index "parallel bound") op.operands
  | Op.Barrier -> expect ~operands:0 ~results:0 ~regions:0 "barrier"
  | Op.Yield -> expect ~results:0 ~regions:0 "yield"
  | Op.Condition ->
    expect ~operands:1 ~results:0 ~regions:0 "condition";
    check_i1 "condition" op.operands.(0)
  | Op.OmpParallel -> expect ~operands:0 ~results:0 ~regions:1 "omp.parallel"
  | Op.OmpBarrier -> expect ~operands:0 ~results:0 ~regions:0 "omp.barrier"

let rec check_op ctx (op : Op.op) =
  Array.iter (use ctx (Printer.op_to_string op |> String.trim)) op.operands;
  check_op_shape op;
  (match op.kind with
   | Op.Barrier ->
     if not ctx.inside_block_par then
       fail "barrier outside of a block-level parallel loop"
   | Op.Condition ->
     if not ctx.inside_while_cond then fail "condition outside while cond"
   | Op.Module | Op.Func _ | Op.Return | Op.Call _ | Op.Constant _
   | Op.Binop _ | Op.Cmp _ | Op.Select | Op.Cast _ | Op.Math _ | Op.Alloc
   | Op.Alloca | Op.Dealloc | Op.Load | Op.Store | Op.Copy | Op.Dim _
   | Op.For | Op.While | Op.If | Op.Parallel _ | Op.Yield | Op.OmpParallel
   | Op.OmpWsloop | Op.OmpBarrier -> ());
  Array.iter (define ctx) op.results;
  Array.iteri
    (fun i (r : Op.region) ->
      let saved_scope = ctx.in_scope in
      let saved_block = ctx.inside_block_par in
      let saved_cond = ctx.inside_while_cond in
      (match op.kind with
       | Op.Parallel Op.Block -> ctx.inside_block_par <- true
       | Op.Parallel _ | Op.OmpParallel | Op.OmpWsloop | Op.Func _ ->
         ctx.inside_block_par <- false
       | _ -> ());
      (match op.kind with
       | Op.While when i = 0 -> ctx.inside_while_cond <- true
       | _ -> ctx.inside_while_cond <- false);
      Array.iter (define ctx) r.rargs;
      List.iter (check_op ctx) r.body;
      (match op.kind, i with
       | Op.While, 0 ->
         (match List.rev r.body with
          | { kind = Op.Condition; _ } :: _ -> ()
          | _ -> fail "while cond region must end in scf.condition")
       | _ -> ());
      ctx.in_scope <- saved_scope;
      ctx.inside_block_par <- saved_block;
      ctx.inside_while_cond <- saved_cond)
    op.regions

let verify (m : Op.op) =
  let ctx =
    { in_scope = Value.Set.empty
    ; defined = Value.Set.empty
    ; inside_block_par = false
    ; inside_while_cond = false
    }
  in
  check_op ctx m

let verify_exn = verify

let verify_result m =
  match verify m with
  | () -> Ok ()
  | exception Error e -> Error e
