lib/runtime/cost.mli: Ir Machine
