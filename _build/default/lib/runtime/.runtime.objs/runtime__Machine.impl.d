lib/runtime/machine.ml:
