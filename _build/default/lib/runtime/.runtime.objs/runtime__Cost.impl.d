lib/runtime/cost.ml: Array Float Ir List Machine Op Types Value
